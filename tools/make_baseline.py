#!/usr/bin/env python3
"""Regenerate BENCH_baseline.json from the figure benches' JSONL output.

The baseline pins the single-server throughput/latency numbers that the
sharded scale-out is compared against (see EXPERIMENTS.md "Shard
scaling"). Reproduce it from a build directory with:

    CATFISH_QUICK=1 ./bench/bench_fig10_search_throughput \
        --telemetry-json fig10.jsonl > /dev/null
    CATFISH_QUICK=1 ./bench/bench_fig12_hybrid_throughput \
        --telemetry-json fig12.jsonl > /dev/null
    CATFISH_QUICK=1 ./bench/bench_fig08_multi_issue \
        --telemetry-json fig08.jsonl > /dev/null
    python3 ../tools/make_baseline.py fig10.jsonl fig12.jsonl \
        fig08.jsonl > ../BENCH_baseline.json

CATFISH_QUICK=1 fixes dataset=200,000 rects and 100 requests/client;
the seed is the bench default (20260705). The numbers are virtual-time
simulation results, so they are bit-stable across machines for a given
source tree.
"""
import json
import sys


def cell(line):
    d = json.loads(line)
    out = {
        "figure": d["figure"],
        "scheme": d["scheme"],
        "workload": d["workload"],
        "insert_ratio": d.get("insert_ratio", 0),
        "clients": d["clients"],
        "throughput_kops": round(d["throughput_kops"], 3),
        "latency_p50_us": round(d["latency_us"]["p50"], 3),
        "latency_p99_us": round(d["latency_us"]["p99"], 3),
    }
    # Ablation rows (e.g. fig08's doorbell variants) key on a variant
    # label too; carry it so compare_baseline.py can match them.
    if "variant" in d:
        out["variant"] = d["variant"]
    return out


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    cells = []
    settings = None
    for path in argv[1:]:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                d = json.loads(line)
                s = {
                    "dataset": d["dataset"],
                    "requests_per_client": d["requests_per_client"],
                    "seed": 20260705,
                }
                if settings is None:
                    settings = s
                elif settings != s:
                    sys.stderr.write(
                        "error: mixed bench settings across inputs\n")
                    return 1
                cells.append(cell(line))
    doc = {
        "comment": "Single-server baseline for the shard-scaling "
                   "comparison; regenerate with tools/make_baseline.py "
                   "(see its docstring for the exact recipe).",
        "settings": settings,
        "cells": cells,
    }
    json.dump(doc, sys.stdout, indent=1)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Diff fresh figure-bench JSONL against the pinned BENCH_baseline.json.

The baseline pins the single-server numbers the repo's perf claims rest
on. This script re-matches a fresh pinned-seed run against it cell by
cell and warns on drift, so a refactor that quietly regresses p99 or
throughput shows up in CI output instead of months later.

Usage (from a build directory):

    CATFISH_QUICK=1 ./bench/bench_fig10_search_throughput \
        --telemetry-json fig10.jsonl > /dev/null
    python3 ../tools/compare_baseline.py ../BENCH_baseline.json fig10.jsonl

Cells are matched on (figure, scheme, variant, workload, insert_ratio,
clients). Fresh cells with no baseline counterpart (new variants, new
figures) are reported and skipped, as are fresh lines without the
compared fields (e.g. shard-scaling rows, which report
search_latency_us rather than latency_us); baseline cells the fresh run
did not produce are only reported when the fresh run covered their
figure.

By default the exit code is 0 no matter what drifts — the baseline is
warn-only, the simulation is deterministic but the model is allowed to
be recalibrated deliberately. Pass --strict to exit 1 on any warning
(for local use when you expect a perfect match), or --strict-cells
<patterns.json> to enforce only a curated stable-cell subset: warnings
on cells matching any pattern fail the run, the rest stay warn-only.
CI uses the latter with tools/stable_cells.json, so the load-bearing
figures are gated while recalibration-prone cells keep warning.
"""
import argparse
import json
import sys

# Drift beyond these fractions of the baseline value is warned about.
# The simulator is virtual-time deterministic, so any drift is a real
# source change; the thresholds just separate "recalibrated cost model"
# noise from "broke the hot path" signal.
THROUGHPUT_TOL = 0.05   # throughput_kops may drop by up to 5 %
LATENCY_TOL = 0.05      # p50/p99 may rise by up to 5 %


def key(cell):
    return (
        cell["figure"],
        cell["scheme"],
        cell.get("variant", ""),
        str(cell["workload"]),
        float(cell.get("insert_ratio", 0)),
        int(cell["clients"]),
    )


def load_fresh(paths):
    """Returns (cells, skipped): comparable cells keyed by `key`, plus
    human-readable notes for lines that could not be compared (missing
    match keys or missing compared fields) rather than crashing on
    them — bench JSONL schemas are allowed to grow."""
    cells = {}
    skipped = []
    for path in paths:
        with open(path) as f:
            for n, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                d = json.loads(line)
                try:
                    k = key(d)
                except (KeyError, TypeError, ValueError) as e:
                    skipped.append(f"{path}:{n}: unkeyable cell ({e})")
                    continue
                try:
                    cells[k] = {
                        "throughput_kops": d["throughput_kops"],
                        "latency_p50_us": d["latency_us"]["p50"],
                        "latency_p99_us": d["latency_us"]["p99"],
                    }
                except (KeyError, TypeError) as e:
                    skipped.append(
                        f"{path}:{n}: {fmt_key(k)} lacks compared field "
                        f"{e}")
    return cells, skipped


def load_patterns(path):
    """Returns the curated stable-cell patterns: a list of dicts whose
    given fields must all equal the cell's key fields to match."""
    with open(path) as f:
        doc = json.load(f)
    return doc["patterns"]


def matches(k, pattern):
    figure, scheme, variant, workload, insert_ratio, clients = k
    fields = {
        "figure": figure,
        "scheme": scheme,
        "variant": variant,
        "workload": workload,
        "insert_ratio": insert_ratio,
        "clients": clients,
    }
    for field, want in pattern.items():
        got = fields[field]
        if field == "insert_ratio":
            if float(got) != float(want):
                return False
        elif field == "clients":
            if int(got) != int(want):
                return False
        elif str(got) != str(want):
            return False
    return True


def is_stable(k, patterns):
    return any(matches(k, p) for p in patterns)


def fmt_key(k):
    figure, scheme, variant, workload, insert_ratio, clients = k
    bits = [figure, scheme]
    if variant:
        bits.append(variant)
    bits.append(f"scale={workload}")
    if insert_ratio:
        bits.append(f"ins={insert_ratio:g}")
    bits.append(f"c={clients}")
    return " ".join(bits)


def main(argv):
    ap = argparse.ArgumentParser(
        description="Warn-only diff of fresh bench JSONL vs the pinned "
                    "baseline.")
    ap.add_argument("baseline", help="path to BENCH_baseline.json")
    ap.add_argument("jsonl", nargs="+", help="fresh --telemetry-json files")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 if anything drifted or went missing")
    ap.add_argument("--strict-cells", metavar="PATTERNS_JSON",
                    help="exit 1 only when a warning hits a cell matching "
                         "the curated patterns (tools/stable_cells.json); "
                         "other warnings stay warn-only")
    args = ap.parse_args(argv[1:])

    with open(args.baseline) as f:
        doc = json.load(f)
    base = {key(c): c for c in doc["cells"]}
    fresh, skipped = load_fresh(args.jsonl)
    fresh_figures = {k[0] for k in fresh}
    patterns = load_patterns(args.strict_cells) if args.strict_cells else []

    warnings = []  # (key, message) pairs

    compared = 0
    unmatched_fresh = []
    for k, got in sorted(fresh.items()):
        want = base.get(k)
        if want is None:
            unmatched_fresh.append(k)
            continue
        compared += 1
        tput, base_tput = got["throughput_kops"], want["throughput_kops"]
        if tput < base_tput * (1 - THROUGHPUT_TOL):
            warnings.append(
                (k, f"{fmt_key(k)}: throughput {tput:.1f} kops vs baseline "
                    f"{base_tput:.1f} ({tput / base_tput - 1:+.1%})"))
        for field, label in (("latency_p50_us", "p50"),
                             ("latency_p99_us", "p99")):
            lat, base_lat = got[field], want[field]
            if lat > base_lat * (1 + LATENCY_TOL):
                warnings.append(
                    (k, f"{fmt_key(k)}: {label} {lat:.1f} us vs baseline "
                        f"{base_lat:.1f} ({lat / base_lat - 1:+.1%})"))

    missing = [k for k in sorted(base)
               if k not in fresh and k[0] in fresh_figures]

    print(f"compared {compared} cells "
          f"({len(unmatched_fresh)} fresh-only, {len(skipped)} "
          f"incomparable, {len(missing)} baseline-only within covered "
          f"figures)")
    for k in unmatched_fresh:
        print(f"  note: no baseline for {fmt_key(k)}")
    for note in skipped:
        print(f"  note: skipped {note}")
    for k in missing:
        warnings.append((k, f"baseline cell not produced: {fmt_key(k)}"))
    if warnings:
        strict_hits = 0
        for k, w in warnings:
            if patterns and is_stable(k, patterns):
                strict_hits += 1
                print(f"  FAIL: {w}")
            else:
                print(f"  WARN: {w}")
        if args.strict:
            print(f"{len(warnings)} warning(s) (--strict: failing)")
            return 1
        if strict_hits:
            print(f"{strict_hits} of {len(warnings)} warning(s) hit the "
                  f"curated stable-cell subset (--strict-cells: failing)")
            return 1
        print(f"{len(warnings)} warning(s); none on curated cells"
              if patterns else
              f"{len(warnings)} warning(s); baseline is warn-only")
        return 0
    print("all compared cells within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Summarize Chrome/Perfetto trace-event JSON emitted by the benches.

Consumes the {"traceEvents":[...]} documents written by --trace-json
(bench_shard_scaling, any CellExporter bench) or scraped from a stats
server's /traces endpoint, and answers the three questions a tail hunt
starts with:

  1. Which sampled queries were slowest, and what did each one's
     critical path look like (stage-by-stage, with shard and self-time)?
  2. Across all traces, which stage contributes the critical-path time
     (p50/p99 of per-hop self-time, share of total)?
  3. Which shard is the straggler — how often does each shard's
     sub-query sit on the critical path, and at what p99?

The emitter marks critical-path spans args.critical=1 (the C++
TraceAssembler already ran the gating walk: last-ending child gates the
parent's end, the sibling ending last before it gates its start), so
this script aggregates rather than re-deriving the path. A hop's
exclusive self-time is its duration minus the durations of the critical
spans nested directly inside it. Spans land on tid = shard + 1 (tid 0 =
client side).

Usage:

    tools/analyze_traces.py traces.json [--top 5]
    curl -s localhost:9100/traces | tools/analyze_traces.py -
"""
import argparse
import json
import sys
from collections import defaultdict


def percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def load_events(path):
    f = sys.stdin if path == "-" else open(path)
    with f:
        doc = json.load(f)
    if isinstance(doc, dict):
        return doc.get("traceEvents", [])
    return doc  # bare array form is also valid Chrome JSON


def main(argv):
    ap = argparse.ArgumentParser(
        description="Critical-path summary of --trace-json output.")
    ap.add_argument("traces", help="trace-event JSON file, or - for stdin")
    ap.add_argument("--top", type=int, default=5,
                    help="slowest traces to detail (default 5)")
    args = ap.parse_args(argv[1:])

    events = load_events(args.traces)
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        print("no complete spans in input")
        return 1

    traces = defaultdict(list)  # pid -> spans
    for s in spans:
        traces[s["pid"]].append(s)

    # Per-trace shape: the root is the span that starts first and ends
    # last (the emitter writes one request tree per pid).
    summaries = []
    for pid, ss in traces.items():
        t0 = min(s["ts"] for s in ss)
        t1 = max(s["ts"] + s["dur"] for s in ss)
        root = max(ss, key=lambda s: s["dur"])
        crit = sorted((s for s in ss if s.get("args", {}).get("critical")),
                      key=lambda s: (s["ts"], -s["dur"]))
        summaries.append({
            "pid": pid,
            "name": root["name"],
            "dur": t1 - t0,
            "spans": ss,
            "critical": crit,
        })
    summaries.sort(key=lambda t: -t["dur"])

    # Each critical hop's exclusive self-time: its duration minus the
    # durations of critical spans nested directly inside it. Nesting is
    # recovered from intervals — a hop's parent is the shortest critical
    # span whose [ts, ts+dur] contains it.
    def self_times(crit):
        order = sorted(range(len(crit)), key=lambda i: crit[i]["dur"])
        child_sum = [0] * len(crit)
        for pos, i in enumerate(order):
            s = crit[i]
            for j in order[pos + 1:]:  # candidates no shorter than s
                p = crit[j]
                if (p["ts"] <= s["ts"]
                        and s["ts"] + s["dur"] <= p["ts"] + p["dur"]):
                    child_sum[j] += s["dur"]
                    break
        return [max(0, s["dur"] - child_sum[i])
                for i, s in enumerate(crit)]

    stage_self = defaultdict(list)   # stage -> [self_us]
    shard_crit = defaultdict(int)    # shard -> times on a critical path
    for t in summaries:
        crit = t["critical"]
        t["self"] = self_times(crit)
        for s, self_us in zip(crit, t["self"]):
            stage_self[s["name"]].append(self_us)
            if s["name"] == "subquery":
                shard_crit[s["tid"] - 1] += 1

    print(f"{len(summaries)} traces, "
          f"{sum(len(t['spans']) for t in summaries)} spans")

    print(f"\n=== top {min(args.top, len(summaries))} slowest traces ===")
    for t in summaries[:args.top]:
        print(f"  {t['name']} (pid {t['pid']}): {t['dur']} us")
        crit = t["critical"]
        for s, self_us in zip(crit, t["self"]):
            shard = s["tid"] - 1
            where = "client" if shard < 0 else f"shard {shard}"
            print(f"    {s['name']:<16} {where:<9} dur {s['dur']:>8} us  "
                  f"self {self_us:>8} us")
        if not crit:
            print("    (no critical-path marks in this trace)")

    print("\n=== critical-path self-time by stage ===")
    total_self = sum(sum(v) for v in stage_self.values()) or 1
    print(f"  {'stage':<16} {'hops':>6} {'p50_us':>8} {'p99_us':>8} "
          f"{'share':>7}")
    for stage, vals in sorted(stage_self.items(),
                              key=lambda kv: -sum(kv[1])):
        vals = sorted(vals)
        print(f"  {stage:<16} {len(vals):>6} "
              f"{percentile(vals, 0.5):>8.0f} "
              f"{percentile(vals, 0.99):>8.0f} "
              f"{sum(vals) / total_self:>6.1%}")

    # Straggler table: every subquery span by shard, vs how often that
    # shard was the one the join waited on.
    sub_dur = defaultdict(list)
    for t in summaries:
        for s in t["spans"]:
            if s["name"] == "subquery":
                sub_dur[s["tid"] - 1].append(s["dur"])
    if sub_dur:
        print("\n=== per-shard sub-queries ===")
        print(f"  {'shard':>5} {'count':>6} {'p50_us':>8} {'p99_us':>8} "
              f"{'on critical path':>17}")
        for shard in sorted(sub_dur):
            vals = sorted(sub_dur[shard])
            print(f"  {shard:>5} {len(vals):>6} "
                  f"{percentile(vals, 0.5):>8.0f} "
                  f"{percentile(vals, 0.99):>8.0f} "
                  f"{shard_crit.get(shard, 0):>17}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

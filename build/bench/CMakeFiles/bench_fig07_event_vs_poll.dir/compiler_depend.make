# Empty compiler generated dependencies file for bench_fig07_event_vs_poll.
# This may be replaced when dependencies are built.

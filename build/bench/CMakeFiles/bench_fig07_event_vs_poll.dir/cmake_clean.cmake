file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_event_vs_poll.dir/bench_fig07_event_vs_poll.cc.o"
  "CMakeFiles/bench_fig07_event_vs_poll.dir/bench_fig07_event_vs_poll.cc.o.d"
  "bench_fig07_event_vs_poll"
  "bench_fig07_event_vs_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_event_vs_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

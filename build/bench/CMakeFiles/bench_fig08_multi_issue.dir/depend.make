# Empty dependencies file for bench_fig08_multi_issue.
# This may be replaced when dependencies are built.

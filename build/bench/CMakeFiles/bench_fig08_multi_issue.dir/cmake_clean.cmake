file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_multi_issue.dir/bench_fig08_multi_issue.cc.o"
  "CMakeFiles/bench_fig08_multi_issue.dir/bench_fig08_multi_issue.cc.o.d"
  "bench_fig08_multi_issue"
  "bench_fig08_multi_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_multi_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

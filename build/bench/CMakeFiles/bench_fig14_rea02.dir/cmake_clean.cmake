file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_rea02.dir/bench_fig14_rea02.cc.o"
  "CMakeFiles/bench_fig14_rea02.dir/bench_fig14_rea02.cc.o.d"
  "bench_fig14_rea02"
  "bench_fig14_rea02.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rea02.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig14_rea02.
# This may be replaced when dependencies are built.

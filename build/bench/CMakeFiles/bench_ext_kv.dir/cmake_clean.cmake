file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_kv.dir/bench_ext_kv.cc.o"
  "CMakeFiles/bench_ext_kv.dir/bench_ext_kv.cc.o.d"
  "bench_ext_kv"
  "bench_ext_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_kv.
# This may be replaced when dependencies are built.

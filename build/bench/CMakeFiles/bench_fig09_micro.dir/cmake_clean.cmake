file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_micro.dir/bench_fig09_micro.cc.o"
  "CMakeFiles/bench_fig09_micro.dir/bench_fig09_micro.cc.o.d"
  "bench_fig09_micro"
  "bench_fig09_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

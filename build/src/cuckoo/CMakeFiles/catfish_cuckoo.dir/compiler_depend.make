# Empty compiler generated dependencies file for catfish_cuckoo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcatfish_cuckoo.a"
)

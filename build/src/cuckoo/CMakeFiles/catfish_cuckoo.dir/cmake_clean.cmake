file(REMOVE_RECURSE
  "CMakeFiles/catfish_cuckoo.dir/cuckoo.cc.o"
  "CMakeFiles/catfish_cuckoo.dir/cuckoo.cc.o.d"
  "libcatfish_cuckoo.a"
  "libcatfish_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcatfish_rdmasim.a"
)

# Empty compiler generated dependencies file for catfish_rdmasim.
# This may be replaced when dependencies are built.

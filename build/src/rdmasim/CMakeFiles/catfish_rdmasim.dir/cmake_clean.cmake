file(REMOVE_RECURSE
  "CMakeFiles/catfish_rdmasim.dir/rdma.cc.o"
  "CMakeFiles/catfish_rdmasim.dir/rdma.cc.o.d"
  "libcatfish_rdmasim.a"
  "libcatfish_rdmasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_rdmasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

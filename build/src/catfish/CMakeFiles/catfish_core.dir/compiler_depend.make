# Empty compiler generated dependencies file for catfish_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcatfish_core.a"
)

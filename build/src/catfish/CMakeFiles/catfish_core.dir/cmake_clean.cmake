file(REMOVE_RECURSE
  "CMakeFiles/catfish_core.dir/bootstrap.cc.o"
  "CMakeFiles/catfish_core.dir/bootstrap.cc.o.d"
  "CMakeFiles/catfish_core.dir/client.cc.o"
  "CMakeFiles/catfish_core.dir/client.cc.o.d"
  "CMakeFiles/catfish_core.dir/server.cc.o"
  "CMakeFiles/catfish_core.dir/server.cc.o.d"
  "libcatfish_core.a"
  "libcatfish_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

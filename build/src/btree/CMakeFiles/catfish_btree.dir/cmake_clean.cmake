file(REMOVE_RECURSE
  "CMakeFiles/catfish_btree.dir/bplus.cc.o"
  "CMakeFiles/catfish_btree.dir/bplus.cc.o.d"
  "libcatfish_btree.a"
  "libcatfish_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for catfish_btree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcatfish_btree.a"
)

file(REMOVE_RECURSE
  "libcatfish_msg.a"
)

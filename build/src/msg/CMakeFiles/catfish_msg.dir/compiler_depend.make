# Empty compiler generated dependencies file for catfish_msg.
# This may be replaced when dependencies are built.

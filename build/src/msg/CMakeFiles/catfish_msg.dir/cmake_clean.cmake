file(REMOVE_RECURSE
  "CMakeFiles/catfish_msg.dir/protocol.cc.o"
  "CMakeFiles/catfish_msg.dir/protocol.cc.o.d"
  "CMakeFiles/catfish_msg.dir/ring.cc.o"
  "CMakeFiles/catfish_msg.dir/ring.cc.o.d"
  "libcatfish_msg.a"
  "libcatfish_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

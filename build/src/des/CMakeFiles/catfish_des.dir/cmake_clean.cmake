file(REMOVE_RECURSE
  "CMakeFiles/catfish_des.dir/resources.cc.o"
  "CMakeFiles/catfish_des.dir/resources.cc.o.d"
  "CMakeFiles/catfish_des.dir/scheduler.cc.o"
  "CMakeFiles/catfish_des.dir/scheduler.cc.o.d"
  "libcatfish_des.a"
  "libcatfish_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

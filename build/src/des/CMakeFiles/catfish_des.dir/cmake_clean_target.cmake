file(REMOVE_RECURSE
  "libcatfish_des.a"
)

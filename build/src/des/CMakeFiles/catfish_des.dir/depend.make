# Empty dependencies file for catfish_des.
# This may be replaced when dependencies are built.

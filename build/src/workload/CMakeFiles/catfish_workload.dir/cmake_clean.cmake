file(REMOVE_RECURSE
  "CMakeFiles/catfish_workload.dir/generators.cc.o"
  "CMakeFiles/catfish_workload.dir/generators.cc.o.d"
  "libcatfish_workload.a"
  "libcatfish_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcatfish_workload.a"
)

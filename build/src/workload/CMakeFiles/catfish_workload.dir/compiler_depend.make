# Empty compiler generated dependencies file for catfish_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcatfish_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/catfish_common.dir/stats.cc.o"
  "CMakeFiles/catfish_common.dir/stats.cc.o.d"
  "libcatfish_common.a"
  "libcatfish_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

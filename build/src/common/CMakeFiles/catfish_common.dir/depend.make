# Empty dependencies file for catfish_common.
# This may be replaced when dependencies are built.

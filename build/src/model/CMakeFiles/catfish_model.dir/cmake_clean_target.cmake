file(REMOVE_RECURSE
  "libcatfish_model.a"
)

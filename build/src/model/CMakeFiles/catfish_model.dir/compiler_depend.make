# Empty compiler generated dependencies file for catfish_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/catfish_model.dir/cluster_sim.cc.o"
  "CMakeFiles/catfish_model.dir/cluster_sim.cc.o.d"
  "libcatfish_model.a"
  "libcatfish_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

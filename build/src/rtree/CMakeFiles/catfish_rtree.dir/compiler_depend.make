# Empty compiler generated dependencies file for catfish_rtree.
# This may be replaced when dependencies are built.

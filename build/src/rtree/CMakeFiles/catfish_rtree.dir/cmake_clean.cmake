file(REMOVE_RECURSE
  "CMakeFiles/catfish_rtree.dir/arena.cc.o"
  "CMakeFiles/catfish_rtree.dir/arena.cc.o.d"
  "CMakeFiles/catfish_rtree.dir/bulk_load.cc.o"
  "CMakeFiles/catfish_rtree.dir/bulk_load.cc.o.d"
  "CMakeFiles/catfish_rtree.dir/layout.cc.o"
  "CMakeFiles/catfish_rtree.dir/layout.cc.o.d"
  "CMakeFiles/catfish_rtree.dir/node.cc.o"
  "CMakeFiles/catfish_rtree.dir/node.cc.o.d"
  "CMakeFiles/catfish_rtree.dir/rstar.cc.o"
  "CMakeFiles/catfish_rtree.dir/rstar.cc.o.d"
  "libcatfish_rtree.a"
  "libcatfish_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtree/arena.cc" "src/rtree/CMakeFiles/catfish_rtree.dir/arena.cc.o" "gcc" "src/rtree/CMakeFiles/catfish_rtree.dir/arena.cc.o.d"
  "/root/repo/src/rtree/bulk_load.cc" "src/rtree/CMakeFiles/catfish_rtree.dir/bulk_load.cc.o" "gcc" "src/rtree/CMakeFiles/catfish_rtree.dir/bulk_load.cc.o.d"
  "/root/repo/src/rtree/layout.cc" "src/rtree/CMakeFiles/catfish_rtree.dir/layout.cc.o" "gcc" "src/rtree/CMakeFiles/catfish_rtree.dir/layout.cc.o.d"
  "/root/repo/src/rtree/node.cc" "src/rtree/CMakeFiles/catfish_rtree.dir/node.cc.o" "gcc" "src/rtree/CMakeFiles/catfish_rtree.dir/node.cc.o.d"
  "/root/repo/src/rtree/rstar.cc" "src/rtree/CMakeFiles/catfish_rtree.dir/rstar.cc.o" "gcc" "src/rtree/CMakeFiles/catfish_rtree.dir/rstar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/catfish_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

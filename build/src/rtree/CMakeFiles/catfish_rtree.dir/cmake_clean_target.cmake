file(REMOVE_RECURSE
  "libcatfish_rtree.a"
)

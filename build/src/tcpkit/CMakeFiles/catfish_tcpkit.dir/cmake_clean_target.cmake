file(REMOVE_RECURSE
  "libcatfish_tcpkit.a"
)

# Empty dependencies file for catfish_tcpkit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/catfish_tcpkit.dir/stream.cc.o"
  "CMakeFiles/catfish_tcpkit.dir/stream.cc.o.d"
  "CMakeFiles/catfish_tcpkit.dir/tcp_rtree.cc.o"
  "CMakeFiles/catfish_tcpkit.dir/tcp_rtree.cc.o.d"
  "libcatfish_tcpkit.a"
  "libcatfish_tcpkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_tcpkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

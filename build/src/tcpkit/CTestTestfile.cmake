# CMake generated Testfile for 
# Source directory: /root/repo/src/tcpkit
# Build directory: /root/repo/build/src/tcpkit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

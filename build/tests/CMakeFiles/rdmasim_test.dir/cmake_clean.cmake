file(REMOVE_RECURSE
  "CMakeFiles/rdmasim_test.dir/rdmasim_test.cc.o"
  "CMakeFiles/rdmasim_test.dir/rdmasim_test.cc.o.d"
  "rdmasim_test"
  "rdmasim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmasim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rdmasim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/catfish_integration_test.dir/catfish_integration_test.cc.o"
  "CMakeFiles/catfish_integration_test.dir/catfish_integration_test.cc.o.d"
  "catfish_integration_test"
  "catfish_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catfish_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catfish_integration_test.cc" "tests/CMakeFiles/catfish_integration_test.dir/catfish_integration_test.cc.o" "gcc" "tests/CMakeFiles/catfish_integration_test.dir/catfish_integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catfish/CMakeFiles/catfish_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpkit/CMakeFiles/catfish_tcpkit.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/catfish_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/catfish_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/rdmasim/CMakeFiles/catfish_rdmasim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/catfish_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

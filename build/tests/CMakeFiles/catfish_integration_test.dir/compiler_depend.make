# Empty compiler generated dependencies file for catfish_integration_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for tcpkit_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tcpkit_test.dir/tcpkit_test.cc.o"
  "CMakeFiles/tcpkit_test.dir/tcpkit_test.cc.o.d"
  "tcpkit_test"
  "tcpkit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hybrid_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hybrid_workload.dir/hybrid_workload.cpp.o"
  "CMakeFiles/hybrid_workload.dir/hybrid_workload.cpp.o.d"
  "hybrid_workload"
  "hybrid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/area_monitor.dir/area_monitor.cpp.o"
  "CMakeFiles/area_monitor.dir/area_monitor.cpp.o.d"
  "area_monitor"
  "area_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for area_monitor.
# This may be replaced when dependencies are built.

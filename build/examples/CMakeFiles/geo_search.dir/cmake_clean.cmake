file(REMOVE_RECURSE
  "CMakeFiles/geo_search.dir/geo_search.cpp.o"
  "CMakeFiles/geo_search.dir/geo_search.cpp.o.d"
  "geo_search"
  "geo_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

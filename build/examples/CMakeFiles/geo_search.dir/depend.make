# Empty dependencies file for geo_search.
# This may be replaced when dependencies are built.

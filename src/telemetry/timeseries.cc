#include "telemetry/timeseries.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "telemetry/export.h"

namespace catfish::telemetry {
namespace {

template <typename V>
const V* FindByName(const std::vector<std::pair<std::string, V>>& v,
                    std::string_view name) noexcept {
  auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& p, std::string_view n) { return p.first < n; });
  if (it == v.end() || it->first != name) return nullptr;
  return &it->second;
}

}  // namespace

uint64_t MetricWindow::counter(std::string_view name) const noexcept {
  const uint64_t* v = FindByName(counters, name);
  return v ? *v : 0;
}

double MetricWindow::rate(std::string_view name) const noexcept {
  const double secs = seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(counter(name)) / secs;
}

double MetricWindow::gauge(std::string_view name) const noexcept {
  const double* v = FindByName(gauges, name);
  return v ? *v : 0.0;
}

const LogHistogram* MetricWindow::timer(std::string_view name) const noexcept {
  return FindByName(timers, name);
}

MetricsSampler::MetricsSampler(Registry* reg, SamplerConfig cfg)
    : reg_(reg), cfg_(cfg) {
  if (cfg_.window_us == 0) cfg_.window_us = 1;
  if (cfg_.retain == 0) cfg_.retain = 1;
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Tick(uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  TickLocked(now_us);
}

void MetricsSampler::TickLocked(uint64_t now_us) {
  Snapshot cur = reg_->TakeSnapshot();
  if (!primed_) {
    prev_ = std::move(cur);
    prev_t_us_ = now_us;
    primed_ = true;
    return;
  }
  if (now_us <= prev_t_us_) return;

  MetricWindow w;
  w.seq = next_seq_++;
  w.start_us = prev_t_us_;
  w.end_us = now_us;

  // Counters: keep only the ones that moved. Both snapshots are
  // name-sorted, so a merge walk pairs them up; a counter absent from
  // the previous snapshot was created this window (baseline 0).
  w.counters.reserve(cur.counters.size());
  {
    size_t j = 0;
    for (const auto& [name, val] : cur.counters) {
      while (j < prev_.counters.size() && prev_.counters[j].first < name) ++j;
      const uint64_t before =
          (j < prev_.counters.size() && prev_.counters[j].first == name)
              ? prev_.counters[j].second
              : 0;
      const uint64_t delta = val > before ? val - before : 0;
      if (delta != 0) w.counters.emplace_back(name, delta);
    }
  }

  w.gauges = cur.gauges;

  w.timers.reserve(cur.timers.size());
  {
    size_t j = 0;
    for (const auto& [name, hist] : cur.timers) {
      while (j < prev_.timers.size() && prev_.timers[j].first < name) ++j;
      LogHistogram delta =
          (j < prev_.timers.size() && prev_.timers[j].first == name)
              ? hist.Diff(prev_.timers[j].second)
              : hist;
      if (delta.count() != 0) w.timers.emplace_back(name, std::move(delta));
    }
  }

  ring_.push_back(std::move(w));
  while (ring_.size() > cfg_.retain) {
    ring_.pop_front();
    ++evicted_;
  }
  prev_ = std::move(cur);
  prev_t_us_ = now_us;
}

void MetricsSampler::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_ = false;
  }
  Tick(NowMicros());  // prime the baseline before the first window
  thread_ = std::thread(&MetricsSampler::ThreadMain, this);
}

void MetricsSampler::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  Tick(NowMicros());  // flush the partial final window
}

void MetricsSampler::ThreadMain() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lk, std::chrono::microseconds(cfg_.window_us),
                          [this] { return stop_; }))
      break;
    lk.unlock();
    Tick(NowMicros());
    lk.lock();
  }
}

void MetricsSampler::Rebaseline(uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  prev_ = reg_->TakeSnapshot();
  prev_t_us_ = now_us;
  primed_ = true;
}

std::vector<MetricWindow> MetricsSampler::Windows() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t MetricsSampler::window_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

uint64_t MetricsSampler::evicted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evicted_;
}

void WriteWindow(JsonWriter& w, const MetricWindow& window) {
  w.BeginObject();
  w.Key("seq").Value(window.seq);
  w.Key("start_us").Value(window.start_us);
  w.Key("end_us").Value(window.end_us);
  const double secs = window.seconds();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, delta] : window.counters) {
    w.Key(name);
    w.BeginObject();
    w.Key("delta").Value(delta);
    w.Key("rate").Value(secs > 0.0 ? static_cast<double>(delta) / secs : 0.0);
    w.EndObject();
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : window.gauges) w.Key(name).Value(v);
  w.EndObject();
  w.Key("timers");
  w.BeginObject();
  for (const auto& [name, h] : window.timers) {
    w.Key(name);
    WriteHistogram(w, h);
  }
  w.EndObject();
  w.EndObject();
}

std::string WindowToJson(const MetricWindow& window) {
  JsonWriter w;
  WriteWindow(w, window);
  return w.str();
}

std::string TimelineToJson(const std::vector<MetricWindow>& windows) {
  std::string out;
  for (const MetricWindow& w : windows) {
    out += WindowToJson(w);
    out += '\n';
  }
  return out;
}

}  // namespace catfish::telemetry

// Bounded wire codec for a completed span tree.
//
// A server that honored a sampled trace-context tail ships its span
// tree back to the client inside a kTraceResp ring message; this codec
// turns a Trace into a flat, size-capped blob and back. The format is
// creation-order spans with a parent index (parents always precede
// children, matching Trace's id assignment):
//
//   u64  trace_id
//   u32  span_count
//   per span:
//     u8   name_len, name bytes            (names capped at 48 bytes)
//     u32  parent                          (kNoParent for the root)
//     u64  start_us, u64 end_us
//     u8   attr_count                      (capped at 16)
//     per attr: u8 key_len, key bytes, i64 value
//
// Encode truncates oversized traces instead of failing: dropping the
// *last* spans keeps every surviving parent link valid. Decode is
// strictly bounds-checked — a torn or hostile blob yields nullopt, not
// UB. The codec depends only on the Trace container, so it compiles
// (and round-trips) identically with CATFISH_TELEMETRY=OFF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "telemetry/trace.h"

namespace catfish::telemetry {

inline constexpr uint32_t kTraceWireMaxSpans = 128;
inline constexpr size_t kTraceWireMaxName = 48;
inline constexpr size_t kTraceWireMaxAttrs = 16;
inline constexpr uint32_t kTraceWireNoParent = ~uint32_t{0};

/// Serializes `trace` (first kTraceWireMaxSpans spans; names/attrs
/// clamped to the caps above). Appends to `out`, reusing its capacity.
void EncodeTrace(const Trace& trace, std::vector<std::byte>& out);

/// Parses a blob produced by EncodeTrace. Returns nullopt on any
/// structural violation: short reads, span_count over the cap,
/// a parent index that is not an earlier span, or trailing bytes.
std::optional<Trace> DecodeTrace(std::span<const std::byte> wire);

}  // namespace catfish::telemetry

#include "telemetry/trace.h"

#include <algorithm>

namespace catfish::telemetry {

// ---------------------------------------------------------------------------
// Span / Trace
// ---------------------------------------------------------------------------

int64_t Span::AttrOr(std::string_view key, int64_t def) const noexcept {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return def;
}

Trace::Trace(std::string_view name, uint64_t id, uint64_t start_us)
    : id_(id) {
  Span root;
  root.name.assign(name);
  root.start_us = start_us;
  spans_.push_back(std::move(root));
}

SpanId Trace::StartSpan(SpanId parent, std::string_view name,
                        uint64_t now_us) {
  const SpanId id = static_cast<SpanId>(spans_.size());
  Span s;
  s.name.assign(name);
  s.start_us = now_us;
  spans_.push_back(std::move(s));
  spans_[parent].children.push_back(id);
  return id;
}

void Trace::EndSpan(SpanId id, uint64_t now_us) {
  // A span observed for zero microseconds still reads as ended.
  spans_[id].end_us = std::max<uint64_t>(now_us, spans_[id].start_us + 1);
}

void Trace::SetAttr(SpanId id, std::string_view key, int64_t value) {
  for (auto& [k, v] : spans_[id].attrs) {
    if (k == key) {
      v = value;
      return;
    }
  }
  spans_[id].attrs.emplace_back(std::string(key), value);
}

void Trace::IncAttr(SpanId id, std::string_view key, int64_t delta) {
  for (auto& [k, v] : spans_[id].attrs) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  spans_[id].attrs.emplace_back(std::string(key), delta);
}

SpanId Trace::Graft(
    SpanId parent, const Trace& remote,
    std::initializer_list<std::pair<std::string_view, int64_t>> extra_attrs) {
  // Remote span ids are creation-order indices with parents always
  // earlier, so a flat copy with an index offset preserves the tree.
  const SpanId base = static_cast<SpanId>(spans_.size());
  for (SpanId i = 0; i < remote.span_count(); ++i) {
    Span copy = remote.span(i);
    for (SpanId& child : copy.children) child += base;
    spans_.push_back(std::move(copy));
  }
  if (remote.span_count() == 0) return kInvalidSpan;
  spans_[parent].children.push_back(base);
  for (const auto& [k, v] : extra_attrs) SetAttr(base, k, v);
  return base;
}

const Span* Trace::Find(std::string_view name) const noexcept {
  for (const Span& s : spans_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

size_t Trace::CountSpans(std::string_view name) const noexcept {
  size_t n = 0;
  for (const Span& s : spans_) n += s.name == name;
  return n;
}

bool Trace::Complete() const noexcept {
  for (const Span& s : spans_) {
    if (!s.ended()) return false;
  }
  return !spans_.empty();
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(TracerConfig cfg, ClockFn clock)
    : cfg_(cfg), clock_(clock) {
  if (cfg_.sample_every == 0) cfg_.sample_every = 1;
  if (cfg_.retain == 0) cfg_.retain = 1;
}

std::shared_ptr<Trace> Tracer::StartTrace(std::string_view name) {
#if !CATFISH_TELEMETRY_ENABLED
  (void)name;
  return nullptr;
#else
  uint64_t id;
  {
    const std::scoped_lock lock(mu_);
    ++started_;
    if ((started_ - 1) % cfg_.sample_every != 0) return nullptr;
    ++sampled_;
    id = next_id_++;
  }
  return std::make_shared<Trace>(name, id, clock_());
#endif
}

std::shared_ptr<Trace> Tracer::StartTraceForced(std::string_view name) {
#if !CATFISH_TELEMETRY_ENABLED
  (void)name;
  return nullptr;
#else
  uint64_t id;
  {
    const std::scoped_lock lock(mu_);
    ++started_;
    ++sampled_;
    id = next_id_++;
  }
  return std::make_shared<Trace>(name, id, clock_());
#endif
}

void Tracer::Finish(const std::shared_ptr<Trace>& trace) {
  if (!trace) return;
  trace->EndSpan(trace->root(), clock_());
  const std::scoped_lock lock(mu_);
  ++finished_;
  ring_.push_back(trace);
  while (ring_.size() > cfg_.retain) {
    ring_.pop_front();
    ++evicted_;
  }
}

std::vector<std::shared_ptr<Trace>> Tracer::Finished() const {
  const std::scoped_lock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::shared_ptr<Trace> Tracer::Latest(std::string_view name) const {
  const std::scoped_lock lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (name.empty() || (*it)->span((*it)->root()).name == name) return *it;
  }
  return nullptr;
}

void Tracer::Clear() {
  const std::scoped_lock lock(mu_);
  ring_.clear();
}

uint64_t Tracer::started() const noexcept {
  const std::scoped_lock lock(mu_);
  return started_;
}
uint64_t Tracer::sampled() const noexcept {
  const std::scoped_lock lock(mu_);
  return sampled_;
}
uint64_t Tracer::finished() const noexcept {
  const std::scoped_lock lock(mu_);
  return finished_;
}
uint64_t Tracer::evicted() const noexcept {
  const std::scoped_lock lock(mu_);
  return evicted_;
}

}  // namespace catfish::telemetry

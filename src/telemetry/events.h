// Flight recorder: bounded, per-thread rings of fixed-payload events.
//
// Counters say *how many* back-off escalations happened; they cannot say
// whether the mode switch came before or after the heartbeat that should
// have triggered it. The flight recorder keeps the last N structured
// events per thread — mode transitions, heartbeat arrivals, back-off
// escalations/resets, remote-engine retry exhaustion, ring-buffer
// stalls — and merges them time-sorted on drain, so a failing test or a
// stuck bench can be read like a black box after the crash.
//
// Design mirrors the metrics registry: Record() touches only a
// thread-local shard (one uncontended mutex, fixed-size ring, no
// allocation after warm-up), Drain()/Peek() pay the merge cost. The
// payload is fixed (two doubles + an actor id) so recording never
// formats strings on the hot path; EventTypeName() and the exporters
// attach meaning at read time.
//
// Instrumentation sites use CATFISH_EVENT(...), which compiles to
// nothing under -DCATFISH_TELEMETRY=OFF like the metric macros.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef CATFISH_TELEMETRY_ENABLED
#define CATFISH_TELEMETRY_ENABLED 1
#endif

namespace catfish::telemetry {

enum class EventType : uint8_t {
  kModeSwitch = 0,     // a=1 offload / 0 fast, b=r_off at switch
  kHeartbeat = 1,      // a=cpu_util, b=heartbeat seq (when known)
  kBackoffEscalate = 2,  // a=r_busy after escalation, b=new r_off
  kBackoffReset = 3,   // a=r_busy before reset, b=predicted util
  kRetryExhausted = 4,  // a=attempts, b=batch size
  kRingStall = 5,      // a=bytes needed, b=bytes free at stall start
  kUtilization = 6,    // a=measured util, b=advertised util
  kCustom = 7,
  kQpError = 8,        // actor=qp_num; QP dropped into the error state
  kWatchdogTrip = 9,   // a=state (0 connected/1 suspect/2 disconnected),
                       // b=missed heartbeat intervals
  kReconnect = 10,     // actor=new server generation, a=old generation,
                       // b=re-bootstrap duration (us)
  kRequestTimeout = 11,  // a=1 ring stalled / 0 response timeout,
                         // b=deadline budget (us)
  kWalStall = 12,      // actor=lsn, a=commit wait (us), b=stall threshold
  kCheckpoint = 13,    // actor=applied_lsn, a=checkpoint bytes,
                       // b=WAL bytes dropped by truncation
  kReplay = 14,        // actor=records replayed, a=replay duration (us),
                       // b=torn tail bytes truncated
  kShardMapRefresh = 15,  // actor=client id, a=new map version,
                          // b=old map version
  kShed = 16,          // actor=req_id, a=queued_us (0 when shed for an
                       // expired deadline), b=retry_after hint (us)
  kBreakerOpen = 17,   // actor=client id, a=new state (0 closed /
                       // 1 open / 2 half-open), b=open duration (us)
  kHedge = 18,         // actor=shard id, a=hedge delay used (us),
                       // b=1 hedge won / 0 primary won (wasted)
};

/// Stable lower-case name for JSON / table export, e.g. "mode_switch".
const char* EventTypeName(EventType t) noexcept;

/// Fixed-payload record. `actor` identifies who emitted it (client id,
/// engine hash, ...) — 0 when there is no meaningful identity.
struct Event {
  uint64_t t_us = 0;
  uint64_t actor = 0;
  double a = 0.0;
  double b = 0.0;
  uint32_t thread = 0;  // recorder-local thread ordinal
  EventType type = EventType::kCustom;
};

struct EventRecorderConfig {
  /// Events kept per recording thread; older ones are overwritten.
  size_t per_thread_capacity = 8192;
};

class EventRecorder {
 public:
  explicit EventRecorder(EventRecorderConfig cfg = {});
  ~EventRecorder();

  EventRecorder(const EventRecorder&) = delete;
  EventRecorder& operator=(const EventRecorder&) = delete;

  /// The process-wide recorder all CATFISH_EVENT sites report to.
  /// Never destroyed (worker threads may outlive static teardown).
  static EventRecorder& Global();

  void Record(EventType type, uint64_t t_us, uint64_t actor = 0,
              double a = 0.0, double b = 0.0) noexcept;

  /// Removes and returns every retained event, merged and stably sorted
  /// by timestamp.
  std::vector<Event> Drain();
  /// Same view without consuming it (what /events serves).
  std::vector<Event> Peek() const;
  void Clear();

  /// Total events ever recorded / overwritten-before-read.
  uint64_t recorded() const;
  uint64_t dropped() const;

  const EventRecorderConfig& config() const noexcept { return cfg_; }

 private:
  struct Shard;
  Shard& LocalShard();
  std::vector<Event> Collect(bool consume) const;

  const uint64_t uid_;
  EventRecorderConfig cfg_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// One JSON document: {"dropped":u64,"events":[{"t_us","type","actor",
/// "a","b","thread"}]} — events must already be sorted (Drain/Peek are).
std::string EventsToJson(const std::vector<Event>& events,
                         uint64_t dropped = 0);

/// Human-readable table of the same events, one line each, to `f`.
void DumpEvents(std::FILE* f, const std::vector<Event>& events);

/// Dumps the global recorder to stderr with a header line; the helper
/// tests and benches call from failure paths (and what the SIGABRT hook
/// below installs), so assertion failures ship the flight recorder.
void DumpGlobalEventsToStderr(const char* why);

/// Installs a SIGABRT handler that dumps the global recorder to stderr
/// before re-raising. Idempotent. Best effort: the handler formats text,
/// which is fine for the debugging contexts abort() implies.
void InstallAbortDump();

}  // namespace catfish::telemetry

#if CATFISH_TELEMETRY_ENABLED

/// Records one flight-recorder event on the global recorder. Arguments
/// are not evaluated when telemetry is compiled out.
#define CATFISH_EVENT(type, t_us, actor, a, b)                       \
  ::catfish::telemetry::EventRecorder::Global().Record(              \
      ::catfish::telemetry::EventType::type, (t_us), (actor), (a), (b))

#else  // !CATFISH_TELEMETRY_ENABLED

#define CATFISH_EVENT(type, t_us, actor, a, b) \
  do {                                         \
  } while (0)

#endif  // CATFISH_TELEMETRY_ENABLED

// Metrics registry: named counters, gauges and LogHistogram-backed
// timers with thread-local sharding.
//
// Catfish's whole value proposition is a runtime tradeoff (server CPU vs
// client RTTs, §IV-A); this registry is how every layer reports its side
// of that tradeoff without perturbing it:
//
//  * a Counter increment is one uncontended relaxed fetch_add on a slot
//    private to the calling thread — no shared cache line ever bounces
//    between worker threads on the hot path;
//  * a Timer records into a per-thread LogHistogram under a per-shard
//    mutex that only a snapshot ever contends for;
//  * TakeSnapshot() merges every thread's shard into one consistent
//    view — the exporters (telemetry/export.h) turn that into JSON
//    lines or a human table.
//
// Instrumentation sites use the CATFISH_COUNT / CATFISH_TIMER macros
// below: each site resolves its metric handle once (function-local
// static) and compiles to nothing when the build disables telemetry
// (-DCATFISH_TELEMETRY=OFF sets CATFISH_TELEMETRY_ENABLED=0), keeping
// the hot path byte-identical to an uninstrumented build.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/stats.h"

#ifndef CATFISH_TELEMETRY_ENABLED
#define CATFISH_TELEMETRY_ENABLED 1
#endif

namespace catfish::telemetry {

class Registry;

/// Monotonically increasing event count. Handles are created by a
/// Registry, have stable addresses for the registry's lifetime, and are
/// safe to use from any thread.
class Counter {
 public:
  void Add(uint64_t n = 1) noexcept;
  void Increment() noexcept { Add(1); }

 private:
  friend class Registry;
  Counter(Registry* reg, uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_;
  uint32_t id_;
};

/// Last-write-wins instantaneous value (e.g. utilization). Not sharded:
/// a gauge is a single atomic the owner overwrites.
class Gauge {
 public:
  Gauge() = default;
  void Set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Duration/value distribution backed by a per-thread LogHistogram.
class Timer {
 public:
  void RecordUs(double us) noexcept;

 private:
  friend class Registry;
  Timer(Registry* reg, uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_;
  uint32_t id_;
};

/// A merged, point-in-time view of every metric. Name-sorted so exports
/// are deterministic.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LogHistogram>> timers;

  /// Counter value by name; 0 when the counter does not exist.
  uint64_t counter(std::string_view name) const noexcept;
  /// Timer histogram by name; nullptr when absent.
  const LogHistogram* timer(std::string_view name) const noexcept;
  /// Gauge value by name; 0.0 when absent.
  double gauge(std::string_view name) const noexcept;
};

class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry all CATFISH_* macros report to.
  /// Never destroyed (worker threads may outlive static teardown).
  static Registry& Global();

  /// Finds or creates the named metric. Returned handles live as long as
  /// the registry and are shared: two calls with one name return the
  /// same handle.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Timer* timer(std::string_view name);

  /// Merges every thread's shard into one consistent view.
  Snapshot TakeSnapshot() const;

  /// Zeroes all values (counters, timers, gauges) while keeping every
  /// handle valid — benches call this between cells.
  void Reset();

 private:
  friend class Counter;
  friend class Timer;

  /// One thread's slice of the registry: counters are per-slot atomics
  /// only the owning thread adds to; timer histograms are guarded by the
  /// shard mutex (uncontended except while a snapshot merges).
  struct Shard {
    std::mutex mu;
    std::deque<std::atomic<uint64_t>> counters;  // indexed by counter id
    std::deque<LogHistogram> timers;             // indexed by timer id
    void GrowCounters(uint32_t id);
    void GrowTimers(uint32_t id);
  };

  Shard& LocalShard();

  const uint64_t uid_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint32_t> counter_ids_;
  std::unordered_map<std::string, uint32_t> gauge_ids_;
  std::unordered_map<std::string, uint32_t> timer_ids_;
  std::deque<Counter> counter_handles_;
  std::deque<Gauge> gauge_handles_;
  std::deque<Timer> timer_handles_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> timer_names_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// RAII wall-clock timer recording elapsed microseconds at scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* t) noexcept : t_(t), t0_(NowNanos()) {}
  ~ScopedTimer() {
    t_->RecordUs(static_cast<double>(NowNanos() - t0_) * 1e-3);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* t_;
  uint64_t t0_;
};

}  // namespace catfish::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros. Each site pays one hash lookup ever (static
// init), then a thread-local relaxed add. With telemetry compiled out
// they expand to nothing — arguments are not evaluated.
// ---------------------------------------------------------------------------

#define CATFISH_TM_CONCAT2(a, b) a##b
#define CATFISH_TM_CONCAT(a, b) CATFISH_TM_CONCAT2(a, b)

#if CATFISH_TELEMETRY_ENABLED

#define CATFISH_COUNT_ADD(name, n)                                      \
  do {                                                                  \
    static ::catfish::telemetry::Counter* const CATFISH_TM_CONCAT(      \
        catfish_tm_c_, __LINE__) =                                      \
        ::catfish::telemetry::Registry::Global().counter(name);         \
    CATFISH_TM_CONCAT(catfish_tm_c_, __LINE__)->Add(n);                 \
  } while (0)

#define CATFISH_COUNT(name) CATFISH_COUNT_ADD(name, 1)

#define CATFISH_GAUGE_SET(name, v)                                      \
  do {                                                                  \
    static ::catfish::telemetry::Gauge* const CATFISH_TM_CONCAT(        \
        catfish_tm_g_, __LINE__) =                                      \
        ::catfish::telemetry::Registry::Global().gauge(name);           \
    CATFISH_TM_CONCAT(catfish_tm_g_, __LINE__)->Set(v);                 \
  } while (0)

#define CATFISH_TIMER_RECORD_US(name, us)                               \
  do {                                                                  \
    static ::catfish::telemetry::Timer* const CATFISH_TM_CONCAT(        \
        catfish_tm_t_, __LINE__) =                                      \
        ::catfish::telemetry::Registry::Global().timer(name);           \
    CATFISH_TM_CONCAT(catfish_tm_t_, __LINE__)->RecordUs(us);           \
  } while (0)

/// Declares a scope-exit wall-clock timer; `name` must be a literal.
#define CATFISH_SCOPED_TIMER_US(name)                                   \
  static ::catfish::telemetry::Timer* const CATFISH_TM_CONCAT(          \
      catfish_tm_sth_, __LINE__) =                                      \
      ::catfish::telemetry::Registry::Global().timer(name);             \
  ::catfish::telemetry::ScopedTimer CATFISH_TM_CONCAT(                  \
      catfish_tm_st_, __LINE__)(CATFISH_TM_CONCAT(catfish_tm_sth_,      \
                                                  __LINE__))

#else  // !CATFISH_TELEMETRY_ENABLED

#define CATFISH_COUNT_ADD(name, n) \
  do {                             \
  } while (0)
#define CATFISH_COUNT(name) \
  do {                      \
  } while (0)
#define CATFISH_GAUGE_SET(name, v) \
  do {                             \
  } while (0)
#define CATFISH_TIMER_RECORD_US(name, us) \
  do {                                    \
  } while (0)
#define CATFISH_SCOPED_TIMER_US(name) \
  do {                                \
  } while (0)

#endif  // CATFISH_TELEMETRY_ENABLED

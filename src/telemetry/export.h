// Machine-readable and human-readable sinks for metrics and traces.
//
// The JSON writer is a small streaming emitter (objects/arrays with
// automatic commas, string escaping, finite-number enforcement) — enough
// for benches, examples and tests to share one export schema instead of
// each printing its own ad-hoc text. Schema (documented in README.md
// §Telemetry):
//
//   SnapshotToJson  → {"counters":{name:u64,...},
//                      "gauges":{name:f64,...},
//                      "timers":{name:{"count","mean","min","max",
//                                      "p50","p90","p95","p99"},...}}
//   TraceToJson     → {"trace_id":u64,"spans":[{"name","start_us",
//                      "end_us","attrs":{...},"children":[ids]}]}
//
// JsonLinesWriter appends one JSON document per line (JSONL), the format
// the benches emit under --telemetry-json so the perf trajectory of the
// repo is machine-diffable run over run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace catfish::telemetry {

/// Streaming JSON emitter. Usage:
///   JsonWriter w;
///   w.BeginObject(); w.Key("x"); w.Value(1); w.EndObject();
///   w.str() == R"({"x":1})"
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  JsonWriter& Key(std::string_view k);
  void Value(std::string_view s);
  void Value(const char* s) { Value(std::string_view(s)); }
  void Value(double d);
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(unsigned v) { Value(static_cast<uint64_t>(v)); }
  void Value(bool b);
  /// Splices a pre-rendered JSON document in as one value (no escaping).
  void Raw(std::string_view json);

  const std::string& str() const noexcept { return out_; }

 private:
  void Separator();
  void Escape(std::string_view s);

  std::string out_;
  std::vector<bool> first_;  // per open container: no element emitted yet
  bool after_key_ = false;
};

/// Writes {"count","mean","min","max","p50","p90","p95","p99"} for `h`
/// as one JSON object value (call after Key()).
void WriteHistogram(JsonWriter& w, const LogHistogram& h);

/// One JSON object covering every metric in the snapshot.
std::string SnapshotToJson(const Snapshot& s);

/// Aligned human-readable table of the same snapshot.
std::string SnapshotToTable(const Snapshot& s);

/// One JSON object for a span tree (spans flattened, children by index).
std::string TraceToJson(const Trace& t);

/// Append-style JSON-lines file sink. Opens (truncates) on construction;
/// "-" writes to stdout.
class JsonLinesWriter {
 public:
  explicit JsonLinesWriter(const std::string& path);
  ~JsonLinesWriter();

  JsonLinesWriter(const JsonLinesWriter&) = delete;
  JsonLinesWriter& operator=(const JsonLinesWriter&) = delete;

  bool ok() const noexcept { return f_ != nullptr; }
  /// Writes one document plus the line terminator and flushes.
  void WriteLine(std::string_view json);

 private:
  std::FILE* f_ = nullptr;
  bool owned_ = false;
};

}  // namespace catfish::telemetry

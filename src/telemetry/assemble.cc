#include "telemetry/assemble.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace catfish::telemetry {

TraceAssembler::TraceAssembler(size_t retain)
    : retain_(retain == 0 ? 1 : retain) {}

AssembledTrace TraceAssembler::Assemble(const std::shared_ptr<Trace>& root,
                                        std::span<const RemoteTree> remotes) {
  // Resolve every graft target before the first graft: grafted remote
  // roots carry the same "shard" attribute as the client spans they
  // hang under, and must not themselves be matched.
  std::unordered_map<int64_t, SpanId> target;
  for (SpanId i = 0; i < root->span_count(); ++i) {
    const int64_t shard = root->span(i).AttrOr("shard", -1);
    if (shard >= 0) target.emplace(shard, i);  // first span wins
  }
  for (const RemoteTree& rt : remotes) {
    if (!rt.tree) continue;
    const auto it = target.find(rt.shard);
    const SpanId parent = it != target.end() ? it->second : root->root();
    root->Graft(parent, *rt.tree, {{"shard", rt.shard}, {"remote", 1}});
  }
  AssembledTrace at{root, ComputeCriticalPath(*root)};
  Retain(at);
  return at;
}

AssembledTrace TraceAssembler::Add(const std::shared_ptr<Trace>& trace) {
  AssembledTrace at{trace, ComputeCriticalPath(*trace)};
  Retain(at);
  return at;
}

void TraceAssembler::Retain(AssembledTrace at) {
  const std::scoped_lock lock(mu_);
  ring_.push_back(std::move(at));
  while (ring_.size() > retain_) ring_.pop_front();
}

std::vector<AssembledTrace> TraceAssembler::Assembled() const {
  const std::scoped_lock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

size_t TraceAssembler::size() const {
  const std::scoped_lock lock(mu_);
  return ring_.size();
}

void TraceAssembler::Clear() {
  const std::scoped_lock lock(mu_);
  ring_.clear();
}

CriticalPath TraceAssembler::ComputeCriticalPath(const Trace& t) {
  CriticalPath cp;
  if (t.span_count() == 0) return cp;
  const Span& root = t.span(t.root());
  cp.total_us = root.ended() ? root.end_us - root.start_us : 0;

  // Gating walk (classic trace critical-path analysis): a span's end is
  // gated by its last-ending child; *that* child's start is in turn
  // gated by the sibling that ended last before it started, and so on
  // back to the span's own start. Walking the cursor backwards like
  // this yields, per span, the chain of non-overlapping children that
  // actually serialized its completion — in a fan-out join that is the
  // slowest sub-query; in a sequential stage chain (dequeue → traverse
  // → reply) it is every stage, so a slow middle stage lands on the
  // path instead of being lumped into its parent's self-time.
  //
  // Each path span's exclusive self-time is its duration minus the time
  // its gating children cover; the shard context flows down the path
  // (client spans inherit -1 until a "shard"-tagged span is crossed).
  const auto dur_of = [&t](SpanId id) -> uint64_t {
    const Span& s = t.span(id);
    return s.ended() ? s.end_us - s.start_us : 0;
  };
  // Explicit stack of (span, inherited shard); children pushed so the
  // walk emits parent first, then gating children in start order.
  std::vector<std::pair<SpanId, int64_t>> stack{{t.root(), -1}};
  while (!stack.empty()) {
    auto [id, shard] = stack.back();
    stack.pop_back();
    const Span& s = t.span(id);
    shard = s.AttrOr("shard", shard);
    cp.spans.push_back(id);

    std::vector<SpanId> gating;  // latest first
    uint64_t covered = 0;
    uint64_t cursor = s.ended() ? s.end_us : 0;
    for (;;) {
      SpanId next = kInvalidSpan;
      uint64_t best = s.start_us;
      for (SpanId child : s.children) {
        const Span& c = t.span(child);
        if (!c.ended()) continue;
        if (c.end_us <= cursor && c.end_us > best) {
          best = c.end_us;
          next = child;
        }
      }
      if (next == kInvalidSpan) break;
      gating.push_back(next);
      covered += dur_of(next);
      cursor = t.span(next).start_us;  // strictly decreases: terminates
    }
    const uint64_t dur = dur_of(id);
    const uint64_t self = dur > covered ? dur - covered : 0;
    cp.stages.push_back({s.name, shard, self});
    // Prefer non-root hops, and later (deeper) hops on ties: the
    // leaf-most stage is the root cause.
    if (self >= cp.slowest_self_us && id != t.root()) {
      cp.slowest_self_us = self;
      cp.slowest_stage = s.name;
      cp.slowest_shard = shard;
    }
    // gating is latest-first; pushing it as-is makes the stack pop the
    // earliest child next (chronological emit order).
    for (SpanId g : gating) stack.push_back({g, shard});
  }
  // A single-span trace: the root is the only candidate stage.
  if (cp.slowest_stage.empty() && !cp.stages.empty()) {
    cp.slowest_stage = cp.stages[0].stage;
    cp.slowest_shard = cp.stages[0].shard;
    cp.slowest_self_us = cp.stages[0].self_us;
  }
  return cp;
}

namespace {

void AppendChromeEvents(JsonWriter& w, const AssembledTrace& at,
                        uint64_t pid) {
  const Trace& t = *at.trace;
  std::unordered_set<SpanId> critical(at.critical.spans.begin(),
                                      at.critical.spans.end());
  // DFS with inherited shard so every span lands on its shard's track
  // (tid = shard + 1; pure client spans on tid 0).
  std::vector<std::pair<SpanId, int64_t>> stack{{t.root(), -1}};
  std::unordered_set<int64_t> tids;
  while (!stack.empty()) {
    auto [id, shard] = stack.back();
    stack.pop_back();
    const Span& s = t.span(id);
    shard = s.AttrOr("shard", shard);
    tids.insert(shard);
    for (SpanId child : s.children) stack.push_back({child, shard});
    if (!s.ended()) continue;
    w.BeginObject();
    w.Key("name");
    w.Value(s.name);
    w.Key("cat");
    w.Value("catfish");
    w.Key("ph");
    w.Value("X");
    w.Key("ts");
    w.Value(s.start_us);
    w.Key("dur");
    w.Value(s.end_us - s.start_us);
    w.Key("pid");
    w.Value(pid);
    w.Key("tid");
    w.Value(static_cast<uint64_t>(shard + 1));
    w.Key("args");
    w.BeginObject();
    w.Key("trace_id");
    w.Value(t.id());
    if (critical.count(id)) {
      w.Key("critical");
      w.Value(1);
    }
    for (const auto& [k, v] : s.attrs) {
      w.Key(k);
      w.Value(v);
    }
    w.EndObject();
    w.EndObject();
  }
  // Thread-name metadata makes Perfetto tracks self-describing.
  for (int64_t shard : tids) {
    w.BeginObject();
    w.Key("name");
    w.Value("thread_name");
    w.Key("ph");
    w.Value("M");
    w.Key("pid");
    w.Value(pid);
    w.Key("tid");
    w.Value(static_cast<uint64_t>(shard + 1));
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.Value(shard < 0 ? std::string("client")
                      : "shard " + std::to_string(shard));
    w.EndObject();
    w.EndObject();
  }
}

}  // namespace

std::string TracesToChromeJson(std::span<const AssembledTrace> traces) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  uint64_t pid = 1;
  for (const AssembledTrace& at : traces) {
    if (at.trace) AppendChromeEvents(w, at, pid++);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string TracesToChromeJson(
    std::span<const std::shared_ptr<Trace>> traces) {
  std::vector<AssembledTrace> assembled;
  assembled.reserve(traces.size());
  for (const auto& t : traces) {
    if (t) assembled.push_back({t, TraceAssembler::ComputeCriticalPath(*t)});
  }
  return TracesToChromeJson(std::span<const AssembledTrace>(assembled));
}

}  // namespace catfish::telemetry

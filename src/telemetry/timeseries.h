// Windowed metrics timeline: the time axis for the registry.
//
// A point-in-time Snapshot cannot distinguish an adaptive controller
// that converges smoothly from one that oscillates wildly — both end a
// run with the same aggregates. MetricsSampler closes that gap: it
// snapshots a Registry on a fixed cadence and diffs each snapshot
// against the previous one, producing a bounded ring of MetricWindows
// holding per-window counter deltas/rates, gauge values, and *windowed*
// timer percentiles (via LogHistogram::Diff, which subtracts cumulative
// bucket counts).
//
// Two clock domains are supported with one code path:
//  * live runs call Start(), which spawns a thread ticking on wall
//    clock (NowMicros);
//  * the DES calls Tick(now_us) by hand with virtual time, so simulated
//    milliseconds produce the same timeline shape real ones would.
//
// TimelineToJson renders the ring as JSONL (one window per line), the
// format bench --timeline-json emits and EXPERIMENTS.md plots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "telemetry/metrics.h"

namespace catfish::telemetry {

class JsonWriter;

/// One closed sampling window: everything that changed in the registry
/// between two consecutive ticks. Name-sorted like Snapshot; counters
/// with a zero delta and timers with no new samples are omitted.
struct MetricWindow {
  uint64_t seq = 0;       // monotonically increasing window number
  uint64_t start_us = 0;  // tick that opened the window
  uint64_t end_us = 0;    // tick that closed it

  std::vector<std::pair<std::string, uint64_t>> counters;  // deltas
  std::vector<std::pair<std::string, double>> gauges;      // value at close
  std::vector<std::pair<std::string, LogHistogram>> timers;  // windowed

  double seconds() const noexcept {
    return static_cast<double>(end_us - start_us) * 1e-6;
  }
  /// Counter delta by name; 0 when the counter did not move.
  uint64_t counter(std::string_view name) const noexcept;
  /// Counter delta divided by window length; 0 for empty windows.
  double rate(std::string_view name) const noexcept;
  /// Gauge value at window close; 0.0 when absent.
  double gauge(std::string_view name) const noexcept;
  /// Windowed timer histogram; nullptr when no samples landed.
  const LogHistogram* timer(std::string_view name) const noexcept;
};

struct SamplerConfig {
  /// Window length. Virtual microseconds under the DES, wall-clock
  /// microseconds for Start()-driven live sampling.
  uint64_t window_us = 10'000;
  /// Ring capacity; the oldest window is evicted (and counted) beyond it.
  size_t retain = 4096;
};

/// Periodic snapshot-and-diff over one Registry. Tick() is the whole
/// engine; Start()/Stop() merely run it on a wall-clock thread.
class MetricsSampler {
 public:
  explicit MetricsSampler(Registry* reg = &Registry::Global(),
                          SamplerConfig cfg = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Advances the timeline to `now_us`. The first call primes the
  /// baseline snapshot and emits nothing; every later call with
  /// now_us > the previous tick closes one window. Calls that do not
  /// advance time are ignored.
  void Tick(uint64_t now_us);

  /// Spawns a thread calling Tick(NowMicros()) every cfg.window_us.
  /// Idempotent; pair with Stop() (the destructor also stops).
  void Start();
  void Stop();
  bool running() const noexcept { return thread_.joinable(); }

  /// Drops all windows and re-primes the baseline at `now_us`, so the
  /// next window never spans a registry Reset().
  void Rebaseline(uint64_t now_us);

  /// Copy of the retained windows, oldest first.
  std::vector<MetricWindow> Windows() const;
  size_t window_count() const;
  /// Windows evicted from the ring so far.
  uint64_t evicted() const;

  const SamplerConfig& config() const noexcept { return cfg_; }

 private:
  void TickLocked(uint64_t now_us);
  void ThreadMain();

  Registry* reg_;
  SamplerConfig cfg_;

  mutable std::mutex mu_;
  Snapshot prev_;
  bool primed_ = false;
  uint64_t prev_t_us_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t evicted_ = 0;
  std::deque<MetricWindow> ring_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Writes one window as a JSON object value (call standalone or after
/// Key()): {"seq","start_us","end_us","counters":{name:{"delta","rate"}},
/// "gauges":{name:value},"timers":{name:{histogram}}}.
void WriteWindow(JsonWriter& w, const MetricWindow& window);

/// One window as a standalone JSON document.
std::string WindowToJson(const MetricWindow& window);

/// JSONL: one WindowToJson document per line, oldest first.
std::string TimelineToJson(const std::vector<MetricWindow>& windows);

}  // namespace catfish::telemetry

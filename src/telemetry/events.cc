#include "telemetry/events.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cinttypes>

#include "telemetry/export.h"

namespace catfish::telemetry {
namespace {

std::atomic<uint64_t> g_next_recorder_uid{1};

/// Thread-local shard cache, keyed by recorder uid like the metrics
/// registry (a test recorder may die and a new one reuse its address).
struct TlsEntry {
  uint64_t rec_uid;
  std::shared_ptr<void> shard;  // EventRecorder::Shard, type-erased
};
thread_local std::vector<TlsEntry> tls_shards;

}  // namespace

const char* EventTypeName(EventType t) noexcept {
  switch (t) {
    case EventType::kModeSwitch:
      return "mode_switch";
    case EventType::kHeartbeat:
      return "heartbeat";
    case EventType::kBackoffEscalate:
      return "backoff_escalate";
    case EventType::kBackoffReset:
      return "backoff_reset";
    case EventType::kRetryExhausted:
      return "retry_exhausted";
    case EventType::kRingStall:
      return "ring_stall";
    case EventType::kUtilization:
      return "utilization";
    case EventType::kCustom:
      return "custom";
    case EventType::kQpError:
      return "qp_error";
    case EventType::kWatchdogTrip:
      return "watchdog_trip";
    case EventType::kReconnect:
      return "reconnect";
    case EventType::kRequestTimeout:
      return "request_timeout";
    case EventType::kWalStall:
      return "wal_stall";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kReplay:
      return "replay";
    case EventType::kShardMapRefresh:
      return "shard_map_refresh";
    case EventType::kShed:
      return "shed";
    case EventType::kBreakerOpen:
      return "breaker_open";
    case EventType::kHedge:
      return "hedge";
  }
  return "unknown";
}

/// One thread's slice: a fixed ring only the owning thread writes,
/// guarded by a mutex only Drain/Peek ever contend for.
struct EventRecorder::Shard {
  explicit Shard(size_t capacity, uint32_t ordinal)
      : ring(capacity), thread_ordinal(ordinal) {}
  std::mutex mu;
  std::vector<Event> ring;  // slot = head % capacity
  uint64_t head = 0;        // events ever written to this shard
  uint64_t base = 0;        // events already consumed by Drain/Clear
  uint64_t lost = 0;        // overwritten before a Drain/Clear saw them
  uint32_t thread_ordinal;
};

EventRecorder::EventRecorder(EventRecorderConfig cfg)
    : uid_(g_next_recorder_uid.fetch_add(1, std::memory_order_relaxed)),
      cfg_(cfg) {
  if (cfg_.per_thread_capacity == 0) cfg_.per_thread_capacity = 1;
}

EventRecorder::~EventRecorder() = default;

EventRecorder& EventRecorder::Global() {
  // Leaked on purpose, same as Registry::Global(): instrumented worker
  // threads may still be recording during static destruction.
  static EventRecorder* const g = new EventRecorder();
  return *g;
}

EventRecorder::Shard& EventRecorder::LocalShard() {
  for (const TlsEntry& e : tls_shards) {
    if (e.rec_uid == uid_) return *static_cast<Shard*>(e.shard.get());
  }
  std::shared_ptr<Shard> shard;
  {
    const std::scoped_lock lock(mu_);
    shard = std::make_shared<Shard>(cfg_.per_thread_capacity,
                                    static_cast<uint32_t>(shards_.size()));
    shards_.push_back(shard);
  }
  tls_shards.push_back(TlsEntry{uid_, shard});
  return *shard;
}

void EventRecorder::Record(EventType type, uint64_t t_us, uint64_t actor,
                           double a, double b) noexcept {
  Shard& s = LocalShard();
  const std::scoped_lock lock(s.mu);  // uncontended except while draining
  Event& slot = s.ring[s.head % s.ring.size()];
  slot.t_us = t_us;
  slot.actor = actor;
  slot.a = a;
  slot.b = b;
  slot.thread = s.thread_ordinal;
  slot.type = type;
  ++s.head;
}

std::vector<Event> EventRecorder::Collect(bool consume) const {
  std::vector<Event> out;
  const std::scoped_lock lock(mu_);
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    const uint64_t cap = shard->ring.size();
    const uint64_t oldest = shard->head > cap ? shard->head - cap : 0;
    for (uint64_t i = std::max(oldest, shard->base); i < shard->head; ++i) {
      out.push_back(shard->ring[i % cap]);
    }
    if (consume) {
      if (oldest > shard->base) shard->lost += oldest - shard->base;
      shard->base = shard->head;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     return x.t_us < y.t_us;
                   });
  return out;
}

std::vector<Event> EventRecorder::Drain() { return Collect(true); }

std::vector<Event> EventRecorder::Peek() const { return Collect(false); }

void EventRecorder::Clear() {
  const std::scoped_lock lock(mu_);
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    shard->base = shard->head;
    shard->lost = 0;
  }
}

uint64_t EventRecorder::recorded() const {
  const std::scoped_lock lock(mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    total += shard->head;
  }
  return total;
}

uint64_t EventRecorder::dropped() const {
  const std::scoped_lock lock(mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    const uint64_t cap = shard->ring.size();
    total += shard->lost;
    if (shard->head > shard->base + cap) {
      total += shard->head - cap - shard->base;
    }
  }
  return total;
}

std::string EventsToJson(const std::vector<Event>& events, uint64_t dropped) {
  JsonWriter w;
  w.BeginObject();
  w.Key("dropped").Value(dropped);
  w.Key("events");
  w.BeginArray();
  for (const Event& e : events) {
    w.BeginObject();
    w.Key("t_us").Value(e.t_us);
    w.Key("type").Value(EventTypeName(e.type));
    w.Key("actor").Value(e.actor);
    w.Key("a").Value(e.a);
    w.Key("b").Value(e.b);
    w.Key("thread").Value(e.thread);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void DumpEvents(std::FILE* f, const std::vector<Event>& events) {
  for (const Event& e : events) {
    std::fprintf(f,
                 "  t=%12" PRIu64 "us  %-16s actor=%-6" PRIu64
                 " a=%-12.4g b=%-12.4g thr=%u\n",
                 e.t_us, EventTypeName(e.type), e.actor, e.a, e.b, e.thread);
  }
}

void DumpGlobalEventsToStderr(const char* why) {
  EventRecorder& rec = EventRecorder::Global();
  const std::vector<Event> events = rec.Peek();
  std::fprintf(stderr,
               "--- flight recorder (%s): %zu events, %" PRIu64
               " dropped ---\n",
               why ? why : "dump", events.size(), rec.dropped());
  DumpEvents(stderr, events);
  std::fprintf(stderr, "--- end flight recorder ---\n");
}

namespace {

void (*g_prev_abort_handler)(int) = nullptr;

void AbortDumpHandler(int signo) {
  DumpGlobalEventsToStderr("SIGABRT");
  std::signal(signo, g_prev_abort_handler ? g_prev_abort_handler : SIG_DFL);
  std::raise(signo);
}

}  // namespace

void InstallAbortDump() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  g_prev_abort_handler = std::signal(SIGABRT, AbortDumpHandler);
  if (g_prev_abort_handler == SIG_ERR) g_prev_abort_handler = nullptr;
}

}  // namespace catfish::telemetry

// Request tracing: per-request span trees with sampling and bounded
// retention.
//
// A Trace is one request's tree of timed spans ("search" → "decide" /
// "ring_write" / "offload_round[level]" …), each carrying integer
// attributes (read counts, retry counts, result sizes). The client and
// server each own a Tracer. Single-node traces can still be joined by
// req_id, but since the wire protocol grew an optional trace-context
// tail (trace_id, parent span, sampled bit — see msg/protocol.h) a
// sampled client request forces a server-side span tree which is
// shipped back over the ring (msg kTraceResp) and grafted into the
// client's trace with Trace::Graft — one causally-ordered distributed
// trace per fan-out query.
//
// Tracer::StartTrace applies sampling (keep 1 in N) and Finish retains
// the trace in a fixed-size ring, overwriting the oldest — tracing a
// million-request run costs bounded memory.
//
// A Trace is built by exactly one thread; the Tracer's ring is
// thread-safe. With telemetry compiled out StartTrace always returns
// nullptr, so instrumentation sites guarded by `if (trace)` vanish into
// a never-taken branch.
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "telemetry/metrics.h"  // CATFISH_TELEMETRY_ENABLED

namespace catfish::telemetry {

using SpanId = uint32_t;
inline constexpr SpanId kInvalidSpan = ~SpanId{0};

struct Span {
  std::string name;
  uint64_t start_us = 0;
  uint64_t end_us = 0;  ///< 0 while the span is still open
  std::vector<std::pair<std::string, int64_t>> attrs;
  std::vector<SpanId> children;

  bool ended() const noexcept { return end_us != 0; }
  /// Attribute value by key; `def` when absent.
  int64_t AttrOr(std::string_view key, int64_t def = 0) const noexcept;
};

/// One request's span tree. Span 0 is the root.
class Trace {
 public:
  Trace(std::string_view name, uint64_t id, uint64_t start_us);

  uint64_t id() const noexcept { return id_; }
  SpanId root() const noexcept { return 0; }

  SpanId StartSpan(SpanId parent, std::string_view name, uint64_t now_us);
  void EndSpan(SpanId id, uint64_t now_us);
  /// Sets (or overwrites) an integer attribute on a span.
  void SetAttr(SpanId id, std::string_view key, int64_t value);
  /// Adds `delta` to an attribute, creating it at 0 first.
  void IncAttr(SpanId id, std::string_view key, int64_t delta = 1);

  const Span& span(SpanId id) const { return spans_[id]; }
  size_t span_count() const noexcept { return spans_.size(); }

  /// Grafts a copy of `remote`'s whole span tree under `parent`: remote
  /// spans are appended with their ids re-indexed, the remote root
  /// becomes a child of `parent`, and `extra_attrs` (e.g. the shard id)
  /// are stamped onto the grafted root. Both sides must share a clock
  /// domain (same-process NowMicros, or the same virtual DES clock) for
  /// the merged timestamps to be comparable. Returns the grafted root's
  /// new id.
  SpanId Graft(SpanId parent, const Trace& remote,
               std::initializer_list<std::pair<std::string_view, int64_t>>
                   extra_attrs = {});

  /// First span with this name in creation order; nullptr when absent.
  const Span* Find(std::string_view name) const noexcept;
  /// Number of spans with this name.
  size_t CountSpans(std::string_view name) const noexcept;
  /// True when the root and every descendant span has been ended.
  bool Complete() const noexcept;

 private:
  uint64_t id_;
  std::deque<Span> spans_;  // deque: spans keep stable addresses
};

struct TracerConfig {
  /// Finished traces retained (ring buffer; oldest overwritten).
  size_t retain = 128;
  /// Keep 1 of every `sample_every` traces (1 = trace everything).
  uint64_t sample_every = 1;
};

class Tracer {
 public:
  using ClockFn = uint64_t (*)();

  /// `clock` supplies span timestamps (microseconds); the default is the
  /// process monotonic clock. Tests inject a fake.
  explicit Tracer(TracerConfig cfg = {}, ClockFn clock = &NowMicros);

  /// Begins a trace, or returns nullptr when this request is sampled
  /// out (or telemetry is compiled out). The root span is started.
  std::shared_ptr<Trace> StartTrace(std::string_view name);

  /// Begins a trace unconditionally (no sampling): the remote side
  /// already made the sampling decision and set the wire context's
  /// sampled bit. Still nullptr when telemetry is compiled out.
  std::shared_ptr<Trace> StartTraceForced(std::string_view name);

  /// Ends the root span and retains the trace in the ring.
  void Finish(const std::shared_ptr<Trace>& trace);

  uint64_t now_us() const { return clock_(); }

  /// All retained traces, oldest first.
  std::vector<std::shared_ptr<Trace>> Finished() const;
  /// Most recently finished trace (optionally filtered by root-span
  /// name); nullptr when none.
  std::shared_ptr<Trace> Latest(std::string_view name = {}) const;
  void Clear();

  uint64_t started() const noexcept;   ///< StartTrace calls
  uint64_t sampled() const noexcept;   ///< traces actually created
  uint64_t finished() const noexcept;  ///< Finish calls
  uint64_t evicted() const noexcept;   ///< traces pushed out of the ring

 private:
  TracerConfig cfg_;
  ClockFn clock_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  uint64_t started_ = 0;
  uint64_t sampled_ = 0;
  uint64_t finished_ = 0;
  uint64_t evicted_ = 0;
  std::deque<std::shared_ptr<Trace>> ring_;
};

}  // namespace catfish::telemetry

#include "telemetry/metrics.h"

#include <algorithm>

namespace catfish::telemetry {

namespace {

std::atomic<uint64_t> g_next_registry_uid{1};

/// Thread-local shard cache. Keyed by registry uid (not pointer: a test
/// registry may die and a new one land at the same address). A handful
/// of registries per process at most, so a linear scan wins.
struct TlsEntry {
  uint64_t reg_uid;
  std::shared_ptr<void> shard;  // Registry::Shard, type-erased
};
thread_local std::vector<TlsEntry> tls_shards;

}  // namespace

// ---------------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------------

void Registry::Shard::GrowCounters(uint32_t id) {
  const std::scoped_lock lock(mu);
  while (counters.size() <= id) counters.emplace_back(0);
}

void Registry::Shard::GrowTimers(uint32_t id) {
  const std::scoped_lock lock(mu);
  while (timers.size() <= id) timers.emplace_back();
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

void Counter::Add(uint64_t n) noexcept {
  Registry::Shard& s = reg_->LocalShard();
  // Only the owning thread grows its shard, so the unlocked size read
  // cannot race a concurrent resize.
  if (id_ >= s.counters.size()) s.GrowCounters(id_);
  s.counters[id_].fetch_add(n, std::memory_order_relaxed);
}

void Timer::RecordUs(double us) noexcept {
  Registry::Shard& s = reg_->LocalShard();
  if (id_ >= s.timers.size()) s.GrowTimers(id_);
  const std::scoped_lock lock(s.mu);
  s.timers[id_].Add(us);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Registry()
    : uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry& Registry::Global() {
  // Leaked on purpose: instrumented worker threads may still be running
  // during static destruction.
  static Registry* const g = new Registry();
  return *g;
}

Registry::Shard& Registry::LocalShard() {
  for (const TlsEntry& e : tls_shards) {
    if (e.reg_uid == uid_) return *static_cast<Shard*>(e.shard.get());
  }
  auto shard = std::make_shared<Shard>();
  {
    const std::scoped_lock lock(mu_);
    shards_.push_back(shard);
  }
  tls_shards.push_back(TlsEntry{uid_, shard});
  return *shard;
}

Counter* Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  const auto it = counter_ids_.find(std::string(name));
  if (it != counter_ids_.end()) return &counter_handles_[it->second];
  const uint32_t id = static_cast<uint32_t>(counter_handles_.size());
  counter_handles_.push_back(Counter(this, id));
  counter_names_.emplace_back(name);
  counter_ids_.emplace(std::string(name), id);
  return &counter_handles_[id];
}

Gauge* Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  const auto it = gauge_ids_.find(std::string(name));
  if (it != gauge_ids_.end()) return &gauge_handles_[it->second];
  const uint32_t id = static_cast<uint32_t>(gauge_handles_.size());
  gauge_handles_.emplace_back();
  gauge_names_.emplace_back(name);
  gauge_ids_.emplace(std::string(name), id);
  return &gauge_handles_[id];
}

Timer* Registry::timer(std::string_view name) {
  const std::scoped_lock lock(mu_);
  const auto it = timer_ids_.find(std::string(name));
  if (it != timer_ids_.end()) return &timer_handles_[it->second];
  const uint32_t id = static_cast<uint32_t>(timer_handles_.size());
  timer_handles_.push_back(Timer(this, id));
  timer_names_.emplace_back(name);
  timer_ids_.emplace(std::string(name), id);
  return &timer_handles_[id];
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot out;
  const std::scoped_lock lock(mu_);

  std::vector<uint64_t> counts(counter_names_.size(), 0);
  std::vector<LogHistogram> hists(timer_names_.size());
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    const size_t nc = std::min(counts.size(), shard->counters.size());
    for (size_t i = 0; i < nc; ++i) {
      counts[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    const size_t nt = std::min(hists.size(), shard->timers.size());
    for (size_t i = 0; i < nt; ++i) hists[i].Merge(shard->timers[i]);
  }

  for (size_t i = 0; i < counter_names_.size(); ++i) {
    out.counters.emplace_back(counter_names_[i], counts[i]);
  }
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    out.gauges.emplace_back(gauge_names_[i], gauge_handles_[i].value());
  }
  for (size_t i = 0; i < timer_names_.size(); ++i) {
    out.timers.emplace_back(timer_names_[i], std::move(hists[i]));
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.timers.begin(), out.timers.end(), by_name);
  return out;
}

void Registry::Reset() {
  const std::scoped_lock lock(mu_);
  for (const auto& shard : shards_) {
    const std::scoped_lock shard_lock(shard->mu);
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& t : shard->timers) t = LogHistogram();
  }
  for (auto& g : gauge_handles_) g.Set(0.0);
}

// ---------------------------------------------------------------------------
// Snapshot lookups
// ---------------------------------------------------------------------------

namespace {

template <typename Vec>
auto FindByName(const Vec& v, std::string_view name) ->
    typename Vec::const_pointer {
  const auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (it == v.end() || it->first != name) return nullptr;
  return &*it;
}

}  // namespace

uint64_t Snapshot::counter(std::string_view name) const noexcept {
  const auto* e = FindByName(counters, name);
  return e ? e->second : 0;
}

const LogHistogram* Snapshot::timer(std::string_view name) const noexcept {
  const auto* e = FindByName(timers, name);
  return e ? &e->second : nullptr;
}

double Snapshot::gauge(std::string_view name) const noexcept {
  const auto* e = FindByName(gauges, name);
  return e ? e->second : 0.0;
}

}  // namespace catfish::telemetry

#include "telemetry/trace_wire.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

namespace catfish::telemetry {

namespace {

template <typename T>
void Put(std::vector<std::byte>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t off = out.size();
  out.resize(off + sizeof(T));
  std::memcpy(out.data() + off, &v, sizeof(T));
}

void PutName(std::vector<std::byte>& out, std::string_view s, size_t cap) {
  const size_t n = std::min(s.size(), cap);
  Put<uint8_t>(out, static_cast<uint8_t>(n));
  const size_t off = out.size();
  out.resize(off + n);
  std::memcpy(out.data() + off, s.data(), n);
}

// Every read is bounds-checked; a short blob reads as failure, never UB.
class SafeReader {
 public:
  explicit SafeReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  bool Read(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(&out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string& out) {
    uint8_t len = 0;
    if (!Read(len)) return false;
    if (data_.size() - pos_ < len) return false;
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace

void EncodeTrace(const Trace& trace, std::vector<std::byte>& out) {
  const uint32_t count = static_cast<uint32_t>(
      std::min<size_t>(trace.span_count(), kTraceWireMaxSpans));
  // Parent index per span, recovered from the children lists. Children
  // always have larger ids than their parent, so one forward pass fills
  // every slot. Stack storage (the cap bounds it) keeps the encoder
  // allocation-free once `out` has capacity (tests/alloc_test.cc).
  std::array<uint32_t, kTraceWireMaxSpans> parent;
  parent.fill(kTraceWireNoParent);
  for (uint32_t i = 0; i < count; ++i) {
    for (SpanId child : trace.span(i).children) {
      if (child < count) parent[child] = i;
    }
  }
  Put<uint64_t>(out, trace.id());
  Put<uint32_t>(out, count);
  for (uint32_t i = 0; i < count; ++i) {
    const Span& s = trace.span(i);
    PutName(out, s.name, kTraceWireMaxName);
    Put<uint32_t>(out, parent[i]);
    Put<uint64_t>(out, s.start_us);
    Put<uint64_t>(out, s.end_us);
    const uint8_t attrs = static_cast<uint8_t>(
        std::min(s.attrs.size(), kTraceWireMaxAttrs));
    Put<uint8_t>(out, attrs);
    for (uint8_t a = 0; a < attrs; ++a) {
      PutName(out, s.attrs[a].first, kTraceWireMaxName);
      Put<int64_t>(out, s.attrs[a].second);
    }
  }
}

std::optional<Trace> DecodeTrace(std::span<const std::byte> wire) {
  SafeReader r(wire);
  uint64_t trace_id = 0;
  uint32_t count = 0;
  if (!r.Read(trace_id) || !r.Read(count)) return std::nullopt;
  if (count == 0 || count > kTraceWireMaxSpans) return std::nullopt;

  std::optional<Trace> trace;
  std::string name;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t parent = 0;
    uint64_t start = 0, end = 0;
    uint8_t attrs = 0;
    if (!r.ReadString(name) || !r.Read(parent) || !r.Read(start) ||
        !r.Read(end) || !r.Read(attrs)) {
      return std::nullopt;
    }
    SpanId id;
    if (i == 0) {
      if (parent != kTraceWireNoParent) return std::nullopt;
      trace.emplace(name, trace_id, start);
      id = trace->root();
    } else {
      if (parent >= i) return std::nullopt;  // parents precede children
      id = trace->StartSpan(parent, name, start);
    }
    if (end != 0) trace->EndSpan(id, end);
    if (attrs > kTraceWireMaxAttrs) return std::nullopt;
    for (uint8_t a = 0; a < attrs; ++a) {
      int64_t value = 0;
      if (!r.ReadString(name) || !r.Read(value)) return std::nullopt;
      trace->SetAttr(id, name, value);
    }
  }
  if (!r.AtEnd()) return std::nullopt;  // trailing bytes: torn frame
  return trace;
}

}  // namespace catfish::telemetry

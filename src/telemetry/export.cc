#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

namespace catfish::telemetry {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::Separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

void JsonWriter::Escape(std::string_view s) {
  out_.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::BeginObject() {
  Separator();
  out_.push_back('{');
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  first_.pop_back();
}

void JsonWriter::BeginArray() {
  Separator();
  out_.push_back('[');
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  first_.pop_back();
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  Separator();
  Escape(k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

void JsonWriter::Value(std::string_view s) {
  Separator();
  Escape(s);
}

void JsonWriter::Value(double d) {
  Separator();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", d);
  out_ += buf;
}

void JsonWriter::Value(uint64_t v) {
  Separator();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::Value(int64_t v) {
  Separator();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::Value(bool b) {
  Separator();
  out_ += b ? "true" : "false";
}

void JsonWriter::Raw(std::string_view json) {
  Separator();
  out_ += json;
}

// ---------------------------------------------------------------------------
// Metric exports
// ---------------------------------------------------------------------------

void WriteHistogram(JsonWriter& w, const LogHistogram& h) {
  w.BeginObject();
  w.Key("count").Value(h.count());
  w.Key("mean").Value(h.mean());
  w.Key("min").Value(h.min());
  w.Key("max").Value(h.max());
  w.Key("p50").Value(h.p50());
  w.Key("p90").Value(h.Quantile(0.90));
  w.Key("p95").Value(h.p95());
  w.Key("p99").Value(h.p99());
  w.EndObject();
}

std::string SnapshotToJson(const Snapshot& s) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, v] : s.counters) w.Key(name).Value(v);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : s.gauges) w.Key(name).Value(v);
  w.EndObject();
  w.Key("timers");
  w.BeginObject();
  for (const auto& [name, h] : s.timers) {
    w.Key(name);
    WriteHistogram(w, h);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string SnapshotToTable(const Snapshot& s) {
  std::string out;
  char line[256];
  size_t width = 8;
  for (const auto& [name, v] : s.counters) width = std::max(width, name.size());
  for (const auto& [name, v] : s.gauges) width = std::max(width, name.size());
  for (const auto& [name, h] : s.timers) width = std::max(width, name.size());
  const int w = static_cast<int>(width);

  for (const auto& [name, v] : s.counters) {
    std::snprintf(line, sizeof line, "%-*s %20" PRIu64 "\n", w, name.c_str(),
                  v);
    out += line;
  }
  for (const auto& [name, v] : s.gauges) {
    std::snprintf(line, sizeof line, "%-*s %20.4f\n", w, name.c_str(), v);
    out += line;
  }
  for (const auto& [name, h] : s.timers) {
    std::snprintf(line, sizeof line, "%-*s %s\n", w, name.c_str(),
                  h.Summary().c_str());
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Trace export
// ---------------------------------------------------------------------------

std::string TraceToJson(const Trace& t) {
  JsonWriter w;
  w.BeginObject();
  w.Key("trace_id").Value(t.id());
  w.Key("spans");
  w.BeginArray();
  for (size_t i = 0; i < t.span_count(); ++i) {
    const Span& s = t.span(static_cast<SpanId>(i));
    w.BeginObject();
    w.Key("name").Value(s.name);
    w.Key("start_us").Value(s.start_us);
    w.Key("end_us").Value(s.end_us);
    if (!s.attrs.empty()) {
      w.Key("attrs");
      w.BeginObject();
      for (const auto& [k, v] : s.attrs) w.Key(k).Value(v);
      w.EndObject();
    }
    if (!s.children.empty()) {
      w.Key("children");
      w.BeginArray();
      for (const SpanId c : s.children) w.Value(static_cast<uint64_t>(c));
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// JsonLinesWriter
// ---------------------------------------------------------------------------

JsonLinesWriter::JsonLinesWriter(const std::string& path) {
  if (path == "-") {
    f_ = stdout;
  } else {
    f_ = std::fopen(path.c_str(), "w");
    owned_ = true;
  }
}

JsonLinesWriter::~JsonLinesWriter() {
  if (f_ && owned_) std::fclose(f_);
}

void JsonLinesWriter::WriteLine(std::string_view json) {
  if (!f_) return;
  // On stdout the stream is shared with human-readable reporting that may
  // have left the cursor mid-line; break to column 0 so every record is
  // greppable as a whole line (`grep '^{'`).
  if (!owned_) std::fputc('\n', f_);
  std::fwrite(json.data(), 1, json.size(), f_);
  std::fputc('\n', f_);
  std::fflush(f_);
}

}  // namespace catfish::telemetry

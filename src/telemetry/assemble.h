// Cross-shard trace assembly and fan-out critical-path analysis.
//
// A sharded query produces one client-side trace (root + one "subquery"
// span per contacted shard) and up to N server-side span trees shipped
// back over the wire (telemetry/trace_wire.h). The TraceAssembler joins
// them into one causally-ordered distributed trace — each remote tree is
// grafted under the client span carrying the matching "shard" attribute
// — then computes the critical path through the fan-out join with a
// gating walk: a span's end is gated by its last-ending child, whose
// start is gated by the sibling that ended last before it, and so on
// back to the span's own start. In a fan-out join that selects the
// slowest sub-query; in a sequential stage chain it keeps every stage,
// so a slow middle stage (a straggling traverse) is attributed directly
// instead of hiding in its parent's self-time. Each hop's exclusive
// cost (duration minus its gating children's) attributes tail latency
// to a {shard, stage} pair; retry and doorbell-wait show up as span
// attributes along the path.
//
// Assembled traces are retained in a bounded ring and exported as
// Chrome/Perfetto trace-event JSON ({"traceEvents":[{"ph":"X",...}]}),
// loadable in chrome://tracing or ui.perfetto.dev; critical-path spans
// carry args.critical=1 so tools/analyze_traces.py can aggregate
// per-stage contributions without re-deriving the path.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/trace.h"

namespace catfish::telemetry {

/// One hop of the critical path: the span's exclusive contribution
/// (its duration minus its gating children's) and the shard it ran on
/// (-1 = client side).
struct StageCost {
  std::string stage;
  int64_t shard = -1;
  uint64_t self_us = 0;
};

struct CriticalPath {
  std::vector<SpanId> spans;  ///< gating walk, parent before children
  uint64_t total_us = 0;      ///< root span duration
  /// The costliest hop on the path: where the tail actually went.
  std::string slowest_stage;
  int64_t slowest_shard = -1;
  uint64_t slowest_self_us = 0;
  std::vector<StageCost> stages;  ///< per-hop exclusive costs, root → leaf
};

/// A server-side span tree returned by shard `shard`.
struct RemoteTree {
  int64_t shard = -1;
  std::shared_ptr<const Trace> tree;
};

struct AssembledTrace {
  std::shared_ptr<Trace> trace;
  CriticalPath critical;
};

class TraceAssembler {
 public:
  explicit TraceAssembler(size_t retain = 64);

  /// Grafts each remote tree under the first span of `root` whose
  /// "shard" attribute matches (under the root span when none does),
  /// computes the critical path, and retains the result. `root` is
  /// mutated in place; the caller must be its only writer.
  AssembledTrace Assemble(const std::shared_ptr<Trace>& root,
                          std::span<const RemoteTree> remotes);

  /// Retains an already-merged trace (the DES simulators build the
  /// whole distributed tree in one Trace) after computing its path.
  AssembledTrace Add(const std::shared_ptr<Trace>& trace);

  std::vector<AssembledTrace> Assembled() const;  ///< oldest first
  size_t size() const;
  void Clear();

  static CriticalPath ComputeCriticalPath(const Trace& t);

 private:
  void Retain(AssembledTrace at);

  size_t retain_;
  mutable std::mutex mu_;
  std::deque<AssembledTrace> ring_;
};

/// Renders assembled traces as one Chrome trace-event JSON document.
/// pid = 1-based trace index, tid = shard + 1 (0 = client side, spans
/// inherit their parent's shard); critical-path spans get
/// args.critical=1.
std::string TracesToChromeJson(std::span<const AssembledTrace> traces);

/// Convenience for raw traces (computes each critical path first).
std::string TracesToChromeJson(
    std::span<const std::shared_ptr<Trace>> traces);

}  // namespace catfish::telemetry

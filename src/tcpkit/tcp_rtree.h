// The TCP/IP baseline R-tree service (paper §III, "TCP/IP-1G/40G").
//
// Thread-per-connection server blocking on recv, the same request
// protocol as the RDMA paths, responses segmented with CONT/END. All
// searches are served by server threads — there is no offloading over a
// socket, which is exactly why the paper leaves TCP behind.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "msg/protocol.h"
#include "rtree/rstar.h"
#include "tcpkit/stream.h"

namespace catfish::tcpkit {

struct TcpServerConfig {
  /// Largest response-segment payload before CONT/END splitting.
  size_t max_segment_payload = 64 * 1024;
};

class TcpRTreeServer {
 public:
  explicit TcpRTreeServer(rtree::RStarTree& tree, TcpServerConfig cfg = {});
  ~TcpRTreeServer();

  TcpRTreeServer(const TcpRTreeServer&) = delete;
  TcpRTreeServer& operator=(const TcpRTreeServer&) = delete;

  /// Accepts a new connection: returns the client-side endpoint and
  /// spawns a dedicated worker thread (the paper's server model).
  std::shared_ptr<Stream> Connect();

  void Stop();
  uint64_t searches() const { return searches_.load(); }
  uint64_t inserts() const { return inserts_.load(); }
  uint64_t deletes() const { return deletes_.load(); }

 private:
  void WorkerLoop(std::shared_ptr<Stream> endpoint);
  void Handle(FramedConnection& conn, const msg::Message& m);

  rtree::RStarTree* tree_;
  TcpServerConfig cfg_;
  std::atomic<bool> stop_{false};
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> searches_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> deletes_{0};
};

/// Synchronous client mirroring RTreeClient's server-path API.
class TcpRTreeClient {
 public:
  explicit TcpRTreeClient(TcpRTreeServer& server);

  std::vector<rtree::Entry> Search(const geo::Rect& rect);
  bool Insert(const geo::Rect& rect, uint64_t id);
  bool Delete(const geo::Rect& rect, uint64_t id);

 private:
  msg::Message Await();

  FramedConnection conn_;
  uint64_t next_req_id_ = 0;
  /// Exactly-once write-session id (process-unique); the TCP baseline
  /// never retries, but requests must still carry a well-formed identity
  /// so a durable server can dedup them correctly.
  uint64_t client_gen_ = 0;
};

}  // namespace catfish::tcpkit

#include "tcpkit/tcp_rtree.h"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace catfish::tcpkit {

using namespace std::chrono_literals;

namespace {
std::atomic<uint64_t> g_next_tcp_client_gen{1u << 20};  // disjoint from rdma clients
}  // namespace

TcpRTreeServer::TcpRTreeServer(rtree::RStarTree& tree, TcpServerConfig cfg)
    : tree_(&tree), cfg_(cfg) {}

TcpRTreeServer::~TcpRTreeServer() { Stop(); }

void TcpRTreeServer::Stop() {
  if (stop_.exchange(true)) return;
  const std::scoped_lock lock(workers_mu_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::shared_ptr<Stream> TcpRTreeServer::Connect() {
  auto [server_end, client_end] = Stream::CreatePair();
  const std::scoped_lock lock(workers_mu_);
  if (stop_.load()) {
    throw std::runtime_error("TcpRTreeServer: connect after stop");
  }
  workers_.emplace_back(
      [this, endpoint = std::move(server_end)]() mutable {
        WorkerLoop(std::move(endpoint));
      });
  return client_end;
}

void TcpRTreeServer::WorkerLoop(std::shared_ptr<Stream> endpoint) {
  FramedConnection conn(std::move(endpoint));
  while (!stop_.load(std::memory_order_relaxed)) {
    auto m = conn.RecvFrame(1ms);
    if (!m) {
      if (conn.closed()) return;
      continue;
    }
    Handle(conn, *m);
  }
}

void TcpRTreeServer::Handle(FramedConnection& conn, const msg::Message& m) {
  switch (static_cast<msg::MsgType>(m.type)) {
    case msg::MsgType::kSearchReq: {
      const auto req = msg::DecodeSearchRequest(m.payload);
      if (!req) return;
      std::vector<rtree::Entry> results;
      tree_->Search(req->rect, results);
      searches_.fetch_add(1, std::memory_order_relaxed);
      const auto segments = msg::EncodeSearchResponse(
          req->req_id, results, cfg_.max_segment_payload);
      for (size_t i = 0; i < segments.size(); ++i) {
        const uint16_t flags =
            i + 1 < segments.size() ? msg::kFlagCont : msg::kFlagEnd;
        conn.SendFrame(static_cast<uint16_t>(msg::MsgType::kSearchResp),
                       flags, segments[i]);
      }
      return;
    }
    case msg::MsgType::kInsertReq: {
      const auto req = msg::DecodeInsertRequest(m.payload);
      if (!req) return;
      tree_->Insert(req->rect, req->rect_id);
      inserts_.fetch_add(1, std::memory_order_relaxed);
      conn.SendFrame(static_cast<uint16_t>(msg::MsgType::kInsertAck),
                     msg::kFlagEnd, msg::Encode(msg::WriteAck{req->req_id, 1}));
      return;
    }
    case msg::MsgType::kDeleteReq: {
      const auto req = msg::DecodeDeleteRequest(m.payload);
      if (!req) return;
      const bool ok = tree_->Delete(req->rect, req->rect_id);
      deletes_.fetch_add(1, std::memory_order_relaxed);
      conn.SendFrame(
          static_cast<uint16_t>(msg::MsgType::kDeleteAck), msg::kFlagEnd,
          msg::Encode(msg::WriteAck{req->req_id, ok ? uint8_t{1} : uint8_t{0}}));
      return;
    }
    default:
      return;
  }
}

TcpRTreeClient::TcpRTreeClient(TcpRTreeServer& server)
    : conn_(server.Connect()),
      client_gen_(
          g_next_tcp_client_gen.fetch_add(1, std::memory_order_relaxed)) {}

msg::Message TcpRTreeClient::Await() {
  auto m = conn_.RecvFrame(30s);
  if (!m) throw std::runtime_error("tcp client: response timed out");
  return std::move(*m);
}

std::vector<rtree::Entry> TcpRTreeClient::Search(const geo::Rect& rect) {
  CATFISH_SCOPED_TIMER_US("tcp.client.search_us");
  CATFISH_COUNT("tcp.client.search");
  const uint64_t req_id = ++next_req_id_;
  conn_.SendFrame(static_cast<uint16_t>(msg::MsgType::kSearchReq),
                  msg::kFlagEnd,
                  msg::Encode(msg::SearchRequest{req_id, rect, {}}));
  std::vector<rtree::Entry> results;
  for (;;) {
    const msg::Message m = Await();
    if (static_cast<msg::MsgType>(m.type) != msg::MsgType::kSearchResp) {
      throw std::logic_error("tcp client: expected search response");
    }
    const auto seg = msg::DecodeSearchResponseSegment(m.payload);
    if (!seg || seg->req_id != req_id) {
      throw std::logic_error("tcp client: response id mismatch");
    }
    results.insert(results.end(), seg->entries.begin(), seg->entries.end());
    if (m.flags & msg::kFlagEnd) break;
  }
  return results;
}

bool TcpRTreeClient::Insert(const geo::Rect& rect, uint64_t id) {
  const uint64_t req_id = ++next_req_id_;
  conn_.SendFrame(
      static_cast<uint16_t>(msg::MsgType::kInsertReq), msg::kFlagEnd,
      msg::Encode(msg::InsertRequest{req_id, client_gen_, rect, id, {}}));
  const msg::Message m = Await();
  const auto ack = msg::DecodeWriteAck(m.payload);
  if (!ack || ack->req_id != req_id) {
    throw std::logic_error("tcp client: ack mismatch");
  }
  return ack->ok != 0;
}

bool TcpRTreeClient::Delete(const geo::Rect& rect, uint64_t id) {
  const uint64_t req_id = ++next_req_id_;
  conn_.SendFrame(
      static_cast<uint16_t>(msg::MsgType::kDeleteReq), msg::kFlagEnd,
      msg::Encode(msg::DeleteRequest{req_id, client_gen_, rect, id, {}}));
  const msg::Message m = Await();
  const auto ack = msg::DecodeWriteAck(m.payload);
  if (!ack || ack->req_id != req_id) {
    throw std::logic_error("tcp client: ack mismatch");
  }
  return ack->ok != 0;
}

}  // namespace catfish::tcpkit

#include "tcpkit/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "telemetry/export.h"

namespace catfish::tcpkit {
namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map
/// dots (and anything else) to underscores.
std::string PromName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty() || (name[0] >= '0' && name[0] <= '9')) out.push_back('_');
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendNumber(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

StatsServer::StatsServer(StatsServerConfig cfg) : cfg_(cfg) {
  if (cfg_.registry == nullptr) cfg_.registry = &telemetry::Registry::Global();
  if (cfg_.events == nullptr) cfg_.events = &telemetry::EventRecorder::Global();

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 16) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  thread_ = std::thread(&StatsServer::Serve, this);
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  if (fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  // Unblock accept(): shut the listener down, then close it.
  ::shutdown(fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void StatsServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (stop_.load(std::memory_order_relaxed)) break;
      continue;
    }
    timeval tv{};
    tv.tv_sec = 2;  // a stalled scraper cannot wedge the acceptor
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      // "GET <target> HTTP/1.x" — everything else 404s via Respond.
      std::string target = "/";
      if (std::strncmp(buf, "GET ", 4) == 0) {
        const char* start = buf + 4;
        const char* end = std::strchr(start, ' ');
        if (end != nullptr) target.assign(start, end);
      }
      const std::string resp = Respond(target);
      size_t off = 0;
      while (off < resp.size()) {
        const ssize_t sent =
            ::send(client, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
        if (sent <= 0) break;
        off += static_cast<size_t>(sent);
      }
    }
    ::close(client);
  }
}

std::string StatsServer::MetricsText() const {
  const telemetry::Snapshot s = cfg_.registry->TakeSnapshot();
  std::string out;
  const auto type_line = [&out](const std::string& p, const char* kind) {
    out += "# TYPE ";
    out += p;
    out += ' ';
    out += kind;
    out += '\n';
  };
  for (const auto& [name, v] : s.counters) {
    const std::string p = PromName(name);
    type_line(p, "counter");
    out += p;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& [name, v] : s.gauges) {
    const std::string p = PromName(name);
    type_line(p, "gauge");
    out += p;
    out += ' ';
    AppendNumber(out, v);
    out += '\n';
  }
  for (const auto& [name, h] : s.timers) {
    const std::string p = PromName(name);
    type_line(p, "summary");
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.50},
          {"0.95", 0.95},
          {"0.99", 0.99}}) {
      out += p;
      out += "{quantile=\"";
      out += label;
      out += "\"} ";
      AppendNumber(out, h.Quantile(q));
      out += '\n';
    }
    out += p;
    out += "_sum ";
    AppendNumber(out, h.mean() * static_cast<double>(h.count()));
    out += '\n';
    out += p;
    out += "_count ";
    out += std::to_string(h.count());
    out += '\n';
  }
  return out;
}

std::string StatsServer::SnapshotJson() const {
  return telemetry::SnapshotToJson(cfg_.registry->TakeSnapshot());
}

std::string StatsServer::TimelineJson() const {
  if (cfg_.sampler == nullptr) return "";
  return telemetry::TimelineToJson(cfg_.sampler->Windows());
}

std::string StatsServer::EventsJson() const {
  return telemetry::EventsToJson(cfg_.events->Peek(), cfg_.events->dropped());
}

std::string StatsServer::TracesJson() const {
  if (cfg_.assembler != nullptr) {
    const auto assembled = cfg_.assembler->Assembled();
    return telemetry::TracesToChromeJson(assembled);
  }
  if (cfg_.tracer != nullptr) {
    const auto finished = cfg_.tracer->Finished();
    return telemetry::TracesToChromeJson(finished);
  }
  return "{\"traceEvents\":[]}";
}

std::string StatsServer::HealthzJson(bool* ready) const {
  const telemetry::Snapshot s = cfg_.registry->TakeSnapshot();
  // Readiness mirrors the admission rule: both live gauges must agree
  // before the probe declares the node unfit for traffic. Cumulative
  // counters are deliberately not part of the verdict — a node that
  // shed an hour ago is not degraded now.
  const double util = s.gauge("catfish.server.utilization");
  const double queue_delay = s.gauge("overload.server.queue_delay_us");
  const bool ok = !(util >= cfg_.healthz_min_utilization &&
                    queue_delay >= cfg_.healthz_max_queue_delay_us);
  if (ready != nullptr) *ready = ok;

  const uint64_t served = s.counter("catfish.server.search") +
                          s.counter("catfish.server.insert") +
                          s.counter("catfish.server.delete");
  std::string out = "{\"status\":\"";
  out += ok ? "ok" : "overloaded";
  out += "\",\"utilization\":";
  AppendNumber(out, util);
  out += ",\"queue_delay_us\":";
  AppendNumber(out, queue_delay);
  out += ",\"served\":";
  out += std::to_string(served);
  out += ",\"overload\":{\"sheds\":";
  out += std::to_string(s.counter("overload.server.sheds"));
  out += ",\"deadline_drops\":";
  out += std::to_string(s.counter("overload.server.deadline_drops"));
  out += ",\"client_shed_replies\":";
  out += std::to_string(s.counter("overload.client.shed_replies"));
  out += ",\"client_deadline_expired\":";
  out += std::to_string(s.counter("overload.client.deadline_expired"));
  out += "},\"breaker\":{\"opens\":";
  out += std::to_string(s.counter("breaker.opens"));
  out += ",\"fast_fails\":";
  out += std::to_string(s.counter("breaker.fast_fails"));
  out += ",\"search_brownouts\":";
  out += std::to_string(s.counter("breaker.search_brownouts"));
  out += "},\"hedge\":{\"issued\":";
  out += std::to_string(s.counter("shard.client.hedges_issued"));
  out += ",\"won\":";
  out += std::to_string(s.counter("shard.client.hedges_won"));
  out += ",\"wasted\":";
  out += std::to_string(s.counter("shard.client.hedges_wasted"));
  out += "}}";
  return out;
}

std::string StatsServer::Respond(const std::string& target) const {
  if (target == "/metrics" || target == "/") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        MetricsText());
  }
  if (target == "/snapshot") {
    return HttpResponse(200, "OK", "application/json", SnapshotJson());
  }
  if (target == "/timeline") {
    return HttpResponse(200, "OK", "application/x-ndjson", TimelineJson());
  }
  if (target == "/events") {
    return HttpResponse(200, "OK", "application/json", EventsJson());
  }
  if (target == "/traces") {
    return HttpResponse(200, "OK", "application/json", TracesJson());
  }
  if (target == "/healthz") {
    bool ready = true;
    const std::string body = HealthzJson(&ready);
    // 503 lets a dumb load balancer act on the status line alone; the
    // JSON body explains why to anyone who looks.
    return ready
               ? HttpResponse(200, "OK", "application/json", body)
               : HttpResponse(503, "Service Unavailable", "application/json",
                              body);
  }
  return HttpResponse(404, "Not Found", "text/plain", "not found\n");
}

}  // namespace catfish::tcpkit

// Live stats endpoint: scrape a running server or bench over HTTP.
//
// The in-process Streams above carry the paper's TCP baseline, but an
// external scraper (curl, Prometheus) needs a real socket — so this is
// the one place in the tree that opens one. A single acceptor thread
// serves tiny HTTP/1.0 responses, each rendered from the telemetry
// layer at request time:
//
//   /metrics   Prometheus text exposition of the registry snapshot
//              (counters, gauges, timer quantile summaries)
//   /snapshot  the SnapshotToJson document
//   /timeline  TimelineToJson of the attached MetricsSampler (JSONL)
//   /events    EventsToJson of the attached EventRecorder (Peek — the
//              flight recorder is not consumed by scraping)
//   /traces    Chrome/Perfetto trace-event JSON of the attached
//              TraceAssembler's ring (falls back to the attached
//              Tracer's finished traces; empty document when neither)
//   /healthz   readiness view for load balancers: 200 + JSON while the
//              node should receive traffic, 503 once the overload
//              gauges (worker utilization + queue-delay EWMA) cross
//              the same thresholds admission control sheds at. The
//              body carries the overload/breaker/hedge counters so a
//              probe failure is diagnosable from the probe itself.
//
// Rendering is exposed as plain methods so tests can validate output
// without a socket, and so a port-less environment degrades gracefully
// (ok() is false; nothing else changes).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "telemetry/assemble.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace catfish::tcpkit {

struct StatsServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Registry to expose; nullptr means Registry::Global().
  telemetry::Registry* registry = nullptr;
  /// Optional timeline source for /timeline (empty document when null).
  telemetry::MetricsSampler* sampler = nullptr;
  /// Event source for /events; nullptr means EventRecorder::Global().
  telemetry::EventRecorder* events = nullptr;
  /// Optional assembled-trace source for /traces (distributed traces
  /// with critical paths). Preferred over `tracer` when both are set.
  telemetry::TraceAssembler* assembler = nullptr;
  /// Optional raw-trace fallback for /traces when no assembler is
  /// attached (single-node traces; critical paths computed on render).
  telemetry::Tracer* tracer = nullptr;
  /// /healthz readiness thresholds, mirroring AdmissionConfig's
  /// defaults: the probe goes not-ready exactly when admission control
  /// would be shedding — utilization at least this…
  double healthz_min_utilization = 0.85;
  /// …while the queue-delay EWMA gauge is at least this. Both gauges
  /// must agree, like the two admission signals.
  double healthz_max_queue_delay_us = 2'000.0;
};

class StatsServer {
 public:
  explicit StatsServer(StatsServerConfig cfg = {});
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// False when the listen socket could not be opened (the server is
  /// inert but safe to keep around).
  bool ok() const noexcept { return fd_ >= 0; }
  /// The bound port (resolves port 0 to the ephemeral choice).
  uint16_t port() const noexcept { return port_; }

  /// Stops the acceptor and closes the socket. Idempotent; the
  /// destructor calls it.
  void Stop();

  // Renderers behind the endpoints, usable without a socket.
  std::string MetricsText() const;
  std::string SnapshotJson() const;
  std::string TimelineJson() const;
  std::string EventsJson() const;
  std::string TracesJson() const;
  /// The /healthz body; `ready` (when non-null) receives the verdict
  /// that picks the HTTP status (true → 200, false → 503).
  std::string HealthzJson(bool* ready = nullptr) const;

  /// Full HTTP response (status line through body) for a request
  /// target, 404 for unknown paths. Exposed for socket-free tests.
  std::string Respond(const std::string& target) const;

 private:
  void Serve();

  StatsServerConfig cfg_;
  int fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace catfish::tcpkit

// In-process TCP-like byte streams and message framing.
//
// This is the transport of the paper's TCP/IP baseline (§III): a
// connected, reliable, ordered duplex byte stream with blocking receive
// — the same abstraction a kernel socket gives, minus the kernel. The
// performance characteristics of kernel TCP (per-message CPU cost, wire
// latency) are modeled in the discrete-event benchmarks; this layer
// provides the functional baseline server/client for tests and examples.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "msg/ring.h"  // msg::Message

namespace catfish::tcpkit {

/// One endpoint of a duplex byte pipe. Thread-safe: any thread may send
/// while another receives.
class Stream {
 public:
  /// Creates a connected pair (like socketpair()).
  static std::pair<std::shared_ptr<Stream>, std::shared_ptr<Stream>>
  CreatePair();

  /// Appends bytes to the peer's receive buffer. Returns false when the
  /// connection is closed.
  bool Send(std::span<const std::byte> data);

  /// Blocking read of up to out.size() bytes; returns the count read,
  /// 0 on timeout or when the stream is closed and drained.
  size_t Recv(std::span<std::byte> out, std::chrono::microseconds timeout);

  /// Half-close from this side; both directions stop accepting sends.
  void Close();
  bool closed() const;

 private:
  struct Shared;
  Stream(std::shared_ptr<Shared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  std::shared_ptr<Shared> shared_;
  int side_;  // 0 or 1
};

/// Length-prefixed message framing over a Stream:
///   u32 frame_len (payload bytes) | u16 type | u16 flags | payload
class FramedConnection {
 public:
  explicit FramedConnection(std::shared_ptr<Stream> stream)
      : stream_(std::move(stream)) {}

  bool SendFrame(uint16_t type, uint16_t flags,
                 std::span<const std::byte> payload);

  /// Receives one whole frame; nullopt on timeout/close.
  std::optional<msg::Message> RecvFrame(std::chrono::microseconds timeout);

  void Close() { stream_->Close(); }
  bool closed() const { return stream_->closed(); }

 private:
  bool RecvExact(std::span<std::byte> out, std::chrono::microseconds timeout);

  std::shared_ptr<Stream> stream_;
  std::vector<std::byte> pending_;  // partially received frame bytes
};

}  // namespace catfish::tcpkit

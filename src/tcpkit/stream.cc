#include "tcpkit/stream.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "telemetry/metrics.h"

namespace catfish::tcpkit {

struct Stream::Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::byte> buf[2];  // buf[i] holds bytes flowing toward side i
  bool closed = false;
};

std::pair<std::shared_ptr<Stream>, std::shared_ptr<Stream>>
Stream::CreatePair() {
  auto shared = std::make_shared<Shared>();
  auto a = std::shared_ptr<Stream>(new Stream(shared, 0));
  auto b = std::shared_ptr<Stream>(new Stream(shared, 1));
  return {std::move(a), std::move(b)};
}

bool Stream::Send(std::span<const std::byte> data) {
  {
    const std::scoped_lock lock(shared_->mu);
    if (shared_->closed) return false;
    auto& peer_buf = shared_->buf[1 - side_];
    peer_buf.insert(peer_buf.end(), data.begin(), data.end());
  }
  shared_->cv.notify_all();
  return true;
}

size_t Stream::Recv(std::span<std::byte> out,
                    std::chrono::microseconds timeout) {
  std::unique_lock lock(shared_->mu);
  auto& my_buf = shared_->buf[side_];
  if (!shared_->cv.wait_for(lock, timeout, [&] {
        return !my_buf.empty() || shared_->closed;
      })) {
    return 0;
  }
  const size_t n = std::min(out.size(), my_buf.size());
  for (size_t i = 0; i < n; ++i) {
    out[i] = my_buf.front();
    my_buf.pop_front();
  }
  return n;
}

void Stream::Close() {
  {
    const std::scoped_lock lock(shared_->mu);
    shared_->closed = true;
  }
  shared_->cv.notify_all();
}

bool Stream::closed() const {
  const std::scoped_lock lock(shared_->mu);
  return shared_->closed;
}

bool FramedConnection::SendFrame(uint16_t type, uint16_t flags,
                                 std::span<const std::byte> payload) {
  std::vector<std::byte> frame(8 + payload.size());
  StorePod(frame, 0, static_cast<uint32_t>(payload.size()));
  StorePod(frame, 4, type);
  StorePod(frame, 6, flags);
  std::memcpy(frame.data() + 8, payload.data(), payload.size());
  const bool ok = stream_->Send(frame);
  if (ok) {
    CATFISH_COUNT("tcp.frames_sent");
    CATFISH_COUNT_ADD("tcp.bytes_sent", frame.size());
  }
  return ok;
}

bool FramedConnection::RecvExact(std::span<std::byte> out,
                                 std::chrono::microseconds timeout) {
  // A single deadline covers the whole frame (streams deliver partial
  // reads like real sockets).
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  size_t got = 0;
  while (got < out.size()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remain =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    const size_t n = stream_->Recv(out.subspan(got), remain);
    if (n == 0 && stream_->closed()) return false;
    got += n;
  }
  return true;
}

std::optional<msg::Message> FramedConnection::RecvFrame(
    std::chrono::microseconds timeout) {
  std::byte header[8];
  if (!RecvExact(header, timeout)) return std::nullopt;
  const auto len = LoadPod<uint32_t>(header, 0);
  msg::Message m;
  m.type = LoadPod<uint16_t>(header, 4);
  m.flags = LoadPod<uint16_t>(header, 6);
  m.payload.resize(len);
  if (len > 0 && !RecvExact(m.payload, timeout)) return std::nullopt;
  CATFISH_COUNT("tcp.frames_received");
  CATFISH_COUNT_ADD("tcp.bytes_received", sizeof(header) + len);
  return m;
}

}  // namespace catfish::tcpkit

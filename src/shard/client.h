// ShardedRTreeClient: client-side routing + cross-shard fan-out.
//
// Owns one RTreeClient per shard (each with its own QP, rings, adaptive
// controller, liveness watchdog and exactly-once write session) and a
// cached copy of the routing table learned from the bootstrap hello.
//
// Routing: point ops (insert/delete) go to the shard owning the
// rectangle's center — exactly one shard, so the single-node
// (client_gen, req_id) exactly-once protocol carries through unchanged:
// this layer NEVER retries a write itself (a retry here would mint a
// fresh req_id and could double-apply); all resends happen inside the
// owning shard's RTreeClient with the original id. Range queries fan
// out to every shard whose cells the (slop-widened) query touches:
// fast-path sub-queries are staged on all of them first
// (SearchFastBegin) so their server-side traversals overlap, offloaded
// sub-queries run while those are in flight, then the fast responses
// are collected. Shards partition the data (center ownership, no
// duplication), so merging is pure concatenation.
//
// Stale-map handling: every operation that touches a shard compares the
// connection's server generation against the map entry. A mismatch
// means the shard restarted since the map was published — the
// underlying client has already re-bootstrapped (PR 4 watchdog +
// Reconnect), and its fresh hello carries the republished map, which is
// adopted when its version is newer. Heartbeats additionally piggyback
// the host's current table version (msg::Heartbeat::map_version), so a
// healthy connection learns that *another* shard republished within one
// heartbeat interval and re-bootstraps proactively — queries that later
// fan out to the restarted shard route correctly on the first try.
// Failures surface as ShardError
// (shard id + the underlying typed status) so callers know *which*
// sub-query failed without losing the rest of the fan-out.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "catfish/bootstrap.h"
#include "catfish/client.h"
#include "shard/partition.h"
#include "telemetry/assemble.h"

namespace catfish::shard {

/// A failed sub-operation, tagged with the shard it ran against.
class ShardError : public std::runtime_error {
 public:
  ShardError(uint32_t shard, ClientStatus status, const std::string& what)
      : std::runtime_error(what), shard_(shard), status_(status) {}
  uint32_t shard() const noexcept { return shard_; }
  ClientStatus status() const noexcept { return status_; }

 private:
  uint32_t shard_;
  ClientStatus status_;
};

/// Dials follower `replica` of `shard` (typically a closure over
/// ShardHost::DialReplica). Re-invoked on every lazy follower connect.
using ReplicaDialFn =
    std::function<std::shared_ptr<tcpkit::Stream>(uint32_t shard,
                                                  uint32_t replica)>;

/// Straggler hedging for fan-out reads. A fast-path sub-query that has
/// not answered after an adaptive delay (a percentile of recently
/// observed sub-query latencies) is re-issued as a one-sided read
/// against a caught-up follower of the same shard; the first result
/// wins and the loser is abandoned (its late frames drain through the
/// stale-response filter). Shards partition the data, so the hedge
/// returns exactly the rows the original would have — duplicate
/// suppression is "use exactly one of the two", never a merge.
struct HedgeConfig {
  /// Off by default: hedging burns follower read capacity to buy tail
  /// latency, a trade only fan-out callers should opt into.
  bool enabled = false;
  /// Latency percentile of the recent-sub-query window that arms the
  /// hedge timer: 0.95 means "slower than 95% of recent sub-queries".
  double percentile = 0.95;
  /// Clamp on the adaptive delay. The floor keeps a fast warm-up from
  /// hedging everything; the ceiling bounds how long a gray-failing
  /// shard can stall a fan-out before the hedge fires. The ceiling is
  /// also used verbatim until `min_samples` latencies are observed.
  uint64_t min_delay_us = 200;
  uint64_t max_delay_us = 20'000;
  /// Sliding window of recent fast sub-query latencies (ring buffer).
  uint32_t window = 64;
  uint32_t min_samples = 8;
};

struct ShardedClientConfig {
  /// Per-shard connection config (mode, watchdog, write_attempts, ...).
  /// Leave client.tracer null here: the fan-out trace is owned by this
  /// layer (see tracer below), and a per-shard tracer would record each
  /// sub-query twice.
  ClientConfig client;
  /// Per-query deadline budget (µs of wall time per top-level Search /
  /// NearestNeighbors / routed write). The budget is armed once at op
  /// entry and the resulting *absolute* deadline is pushed into every
  /// sub-operation (SetOpDeadline on the per-shard clients, followers
  /// included), so concurrent fan-out legs share one expiry and the
  /// sequential offload legs consume the remaining budget — a straggler
  /// cannot spend the whole budget twice. 0 = no budget (sub-ops still
  /// honor cfg.client.op_deadline_us individually if set).
  uint64_t op_budget_us = 0;
  HedgeConfig hedge;
  /// Graceful degradation: when true, Search() returns whatever the
  /// healthy shards answered instead of throwing on the first failed
  /// sub-query (counted in shard.client.partial_results). Callers that
  /// need per-shard error detail use SearchPartial() directly.
  bool allow_partial = false;
  /// Follower read routing: offloaded fan-out sub-queries are spread
  /// over the shard's followers (advertised in the v2 map) instead of
  /// always hitting the primary. Requires `replica_dial`. Reads fall
  /// back to the primary on any follower failure, role/epoch mismatch,
  /// or replication lag beyond `max_replica_lag` — a stale or torn
  /// follower read is never silently returned (the fetch engine's
  /// version validation catches torn pages; the lag bound catches
  /// wholesale staleness).
  bool read_from_followers = false;
  /// Max advertised durable-LSN gap (primary minus follower, both from
  /// heartbeats) before a follower is skipped for reads. 0 = the
  /// follower must have acked everything the primary has advertised.
  uint64_t max_replica_lag = 0;
  ReplicaDialFn replica_dial;
  /// When set, sampled cross-shard operations build one *distributed*
  /// trace: a "shard.search" (or shard.insert/shard.delete) root, one
  /// "subquery" child span per contacted shard, and — for fast-path
  /// sub-queries — the server's own span tree, forced by a sampled wire
  /// trace context and shipped back in a kTraceResp frame. Null = no
  /// tracing. Must outlive the client.
  telemetry::Tracer* tracer = nullptr;
  /// When set (and tracer is set), finished distributed traces are
  /// joined here: remote trees grafted under their subquery spans and
  /// the fan-out critical path computed (which shard/stage the query
  /// actually waited on). Without an assembler the remote trees are
  /// still grafted, but no critical path is derived. Must outlive the
  /// client.
  telemetry::TraceAssembler* assembler = nullptr;
};

struct ShardedClientStats {
  uint64_t searches = 0;
  uint64_t fanout_subqueries = 0;  ///< sum of fan-out widths
  uint64_t map_refreshes = 0;      ///< newer routing tables adopted
  /// Re-bootstraps triggered by a heartbeat advertising a newer table
  /// version (vs. waiting for an op against the restarted shard to fail
  /// its generation check). A healthy connection learns about *another*
  /// shard's restart this way.
  uint64_t proactive_refreshes = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t knn_queries = 0;
  uint64_t shard_errors = 0;       ///< failed sub-operations observed
  uint64_t assembled_traces = 0;   ///< distributed traces joined
  uint64_t partial_results = 0;    ///< fan-outs delivered incomplete
  uint64_t follower_reads = 0;     ///< sub-queries served by a follower
  uint64_t follower_fallbacks = 0; ///< follower failed → primary retried
  uint64_t follower_lag_skips = 0; ///< follower too stale, primary used
  uint64_t hedges_issued = 0;      ///< straggler re-issues against followers
  uint64_t hedges_won = 0;         ///< hedge answered first (primary abandoned)
  uint64_t hedges_wasted = 0;      ///< primary answered during the hedge
};

/// A fan-out answer that tolerates per-shard failures: the union of the
/// healthy shards' results plus one ShardError per failed sub-query.
struct PartialResult {
  std::vector<rtree::Entry> entries;
  std::vector<ShardError> errors;

  bool complete() const noexcept { return errors.empty(); }
};

class ShardedRTreeClient {
 public:
  /// Dials shard `i`'s bootstrap endpoint (typically a closure over
  /// ShardHost::Dial). Re-invoked on every per-shard re-bootstrap, so it
  /// must resolve the *current* acceptor of that shard.
  using ShardDialFn =
      std::function<std::shared_ptr<tcpkit::Stream>(uint32_t shard)>;

  /// Connects to every shard: shard 0's hello supplies the initial
  /// routing table (throws std::runtime_error if the hello carries none
  /// or it fails to decode), then one connection per remaining shard.
  /// All connections share `node` — each gets its own QP and rings.
  ShardedRTreeClient(std::shared_ptr<rdma::SimNode> node, ShardDialFn dial,
                     ShardedClientConfig cfg = {});

  ShardedRTreeClient(const ShardedRTreeClient&) = delete;
  ShardedRTreeClient& operator=(const ShardedRTreeClient&) = delete;

  /// Cross-shard range query; exact union of the per-shard answers.
  /// Throws the first ShardError on any failed sub-query unless
  /// cfg.allow_partial, in which case the healthy shards' union is
  /// returned (and shard.client.partial_results counts the degradation).
  std::vector<rtree::Entry> Search(const geo::Rect& rect);

  /// Like Search, but never throws on sub-query failure: every failed
  /// shard is reported alongside the surviving results.
  PartialResult SearchPartial(const geo::Rect& rect);

  /// k nearest neighbors, closest first. Every shard answers its local
  /// top-k (cell geometry gives no distance bound that is both simple
  /// and correct under slop), then the union is re-ranked by MINDIST.
  std::vector<rtree::Entry> NearestNeighbors(const geo::Point& point,
                                             uint32_t k);

  /// Routed to the owning shard; exactly-once via that shard's session.
  bool Insert(const geo::Rect& rect, uint64_t id);
  bool Delete(const geo::Rect& rect, uint64_t id);

  /// The routing table currently in use.
  const ShardMap& map() const noexcept { return map_; }
  uint32_t shard_count() const noexcept { return map_.shard_count(); }
  ShardedClientStats stats() const noexcept { return stats_; }
  /// Fan-out width of the last Search().
  uint32_t last_fanout() const noexcept { return last_fanout_; }
  /// The per-shard connection (tests poke controllers and stats).
  RTreeClient& shard_client(uint32_t shard) { return *clients_[shard]; }
  /// The lazily-dialed follower connection, or null if none was made.
  RTreeClient* replica_client(uint32_t shard, uint32_t replica) {
    if (shard >= replica_clients_.size()) return nullptr;
    if (replica >= replica_clients_[shard].size()) return nullptr;
    return replica_clients_[shard][replica].get();
  }

 private:
  /// Per-shard adaptive decision, mirroring RTreeClient::Search: the
  /// configured mode, overridden to offload while that connection is
  /// degraded (one-sided reads are the only useful work left).
  AccessMode DecideMode(uint32_t shard);

  /// Adopts a newer routing table after `shard`'s connection observed a
  /// generation the map predates. No-op while generations agree.
  void RefreshIfStale(uint32_t shard);

  /// The fan-out body shared by Search and SearchPartial: all errors
  /// accumulated, nothing thrown.
  PartialResult DoSearch(const geo::Rect& rect);

  /// Picks a usable follower connection for an offloaded read on
  /// `shard` (round-robin over the map's follower list, lazily dialed,
  /// role/epoch/generation-checked, lag-bounded), or null when the read
  /// must go to the primary.
  RTreeClient* FollowerFor(uint32_t shard);

  /// Feeds one observed fast sub-query latency into the hedge window.
  void RecordSubLatency(uint64_t us);
  /// Adaptive hedge delay: cfg_.hedge.percentile of the window, clamped
  /// to [min_delay_us, max_delay_us]; max_delay_us until warmed up.
  uint64_t HedgeDelayUs();

  /// Shared Insert/Delete scaffolding: trace the routed write (root +
  /// subquery span + grafted server tree when sampled), run `op` on the
  /// owning shard, wrap failures in ShardError.
  bool ExecuteRoutedWrite(const char* trace_name, uint32_t owner,
                          const std::function<bool(RTreeClient&)>& op);

  std::shared_ptr<rdma::SimNode> node_;
  ShardDialFn dial_;
  ShardedClientConfig cfg_;
  ShardMap map_;
  std::vector<std::unique_ptr<RTreeClient>> clients_;
  /// [shard][replica] lazy follower connections; dropped wholesale on a
  /// map refresh (the follower set may have changed under promotion).
  std::vector<std::vector<std::unique_ptr<RTreeClient>>> replica_clients_;
  ShardedClientStats stats_;
  uint32_t last_fanout_ = 0;
  uint32_t follower_rr_ = 0;  ///< round-robin cursor for follower reads
  std::vector<uint32_t> targets_;  // fan-out scratch
  /// Ring of recent fast sub-query latencies (µs) feeding HedgeDelayUs.
  std::vector<uint64_t> sub_lat_;
  size_t sub_lat_next_ = 0;
  std::vector<uint64_t> sub_lat_scratch_;  // percentile scratch
};

}  // namespace catfish::shard

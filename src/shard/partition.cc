#include "shard/partition.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"

namespace catfish::shard {

namespace {

/// Index of the interval `v` falls in given strictly ascending interior
/// cuts: cuts[i-1] < v <= cuts[i] → i (outer intervals are unbounded).
uint32_t IntervalOf(const std::vector<double>& cuts, double v) noexcept {
  uint32_t lo = 0, hi = static_cast<uint32_t>(cuts.size());
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (v <= cuts[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool CutsValid(const std::vector<double>& cuts) noexcept {
  for (size_t i = 0; i < cuts.size(); ++i) {
    if (!std::isfinite(cuts[i])) return false;
    if (i > 0 && cuts[i] <= cuts[i - 1]) return false;
  }
  return true;
}

/// Interior quantile cuts over `vals` (sorted in place): positions that
/// split it into `parts` runs of near-equal length, deduplicated so the
/// strict-ascending invariant holds even for constant data.
std::vector<double> QuantileCuts(std::vector<double>& vals, uint32_t parts) {
  std::vector<double> cuts;
  if (parts <= 1) return cuts;
  std::sort(vals.begin(), vals.end());
  for (uint32_t i = 1; i < parts; ++i) {
    const size_t idx = vals.size() * i / parts;
    const double c = vals.empty()
                         ? static_cast<double>(i) / static_cast<double>(parts)
                         : vals[std::min(idx, vals.size() - 1)];
    if (cuts.empty() || c > cuts.back()) cuts.push_back(c);
  }
  return cuts;
}

}  // namespace

const char* ToString(MapDecodeStatus s) noexcept {
  switch (s) {
    case MapDecodeStatus::kOk: return "ok";
    case MapDecodeStatus::kTruncated: return "truncated";
    case MapDecodeStatus::kBadMagic: return "bad_magic";
    case MapDecodeStatus::kVersionSkew: return "version_skew";
    case MapDecodeStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

bool ShardMap::Valid() const noexcept {
  if (shards.empty() || shards.size() > kMaxShards) return false;
  if (x_cuts.size() + 1 > kMaxGridDim || y_cuts.size() + 1 > kMaxGridDim) {
    return false;
  }
  if (!CutsValid(x_cuts) || !CutsValid(y_cuts)) return false;
  if (cells.size() != static_cast<size_t>(cols()) * rows()) return false;
  for (const uint32_t s : cells) {
    if (s >= shards.size()) return false;
  }
  for (const auto& s : shards) {
    if (s.node_name.empty() || s.node_name.size() > kMaxShardNameLen) {
      return false;
    }
    if (s.followers.size() > kMaxFollowers) return false;
    for (const auto& f : s.followers) {
      if (f.node_name.empty() || f.node_name.size() > kMaxShardNameLen) {
        return false;
      }
    }
  }
  return std::isfinite(slop) && slop >= 0.0;
}

uint32_t ShardMap::CellIndex(const geo::Point& p) const noexcept {
  const uint32_t col = IntervalOf(x_cuts, p.x);
  const uint32_t row = IntervalOf(y_cuts, p.y);
  return row * cols() + col;
}

uint32_t ShardMap::OwnerOf(const geo::Rect& r) const noexcept {
  return cells[CellIndex(r.Center())];
}

void ShardMap::QueryShards(const geo::Rect& q,
                           std::vector<uint32_t>& out) const {
  out.clear();
  const uint32_t c0 = IntervalOf(x_cuts, q.min_x - slop);
  const uint32_t c1 = IntervalOf(x_cuts, q.max_x + slop);
  const uint32_t r0 = IntervalOf(y_cuts, q.min_y - slop);
  const uint32_t r1 = IntervalOf(y_cuts, q.max_y + slop);
  for (uint32_t row = r0; row <= r1; ++row) {
    for (uint32_t col = c0; col <= c1; ++col) {
      out.push_back(cells[row * cols() + col]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<std::byte> EncodeShardMap(const ShardMap& map) {
  ByteWriter w(128 + map.cells.size() * 4 + map.shards.size() * 32);
  w.Append(kShardMapMagic);
  w.Append(kShardMapFormatVersion);
  w.Append(static_cast<uint16_t>(0));  // reserved
  w.Append(map.version);
  w.Append(map.bounds.min_x);
  w.Append(map.bounds.min_y);
  w.Append(map.bounds.max_x);
  w.Append(map.bounds.max_y);
  w.Append(map.slop);
  w.Append(static_cast<uint16_t>(map.cols()));
  w.Append(static_cast<uint16_t>(map.rows()));
  for (const double c : map.x_cuts) w.Append(c);
  for (const double c : map.y_cuts) w.Append(c);
  for (const uint32_t s : map.cells) w.Append(s);
  w.Append(static_cast<uint16_t>(map.shards.size()));
  for (const auto& s : map.shards) {
    w.Append(static_cast<uint16_t>(s.node_name.size()));
    w.AppendBytes(std::as_bytes(
        std::span(s.node_name.data(), s.node_name.size())));
    w.Append(s.generation);
    w.Append(s.arena_rkey);
    // v2 extension per shard: replication epoch + follower endpoints.
    w.Append(s.epoch);
    w.Append(static_cast<uint8_t>(s.followers.size()));
    for (const auto& f : s.followers) {
      w.Append(static_cast<uint16_t>(f.node_name.size()));
      w.AppendBytes(std::as_bytes(
          std::span(f.node_name.data(), f.node_name.size())));
      w.Append(f.generation);
      w.Append(f.arena_rkey);
    }
  }
  return w.Take();
}

MapDecodeStatus DecodeShardMap(std::span<const std::byte> payload,
                               ShardMap& out) {
  ByteReader r(payload);
  if (r.remaining() < 8) return MapDecodeStatus::kTruncated;
  if (r.Read<uint32_t>() != kShardMapMagic) return MapDecodeStatus::kBadMagic;
  const uint16_t fmt = r.Read<uint16_t>();
  if (fmt != 1 && fmt != kShardMapFormatVersion) {
    return MapDecodeStatus::kVersionSkew;
  }
  r.Read<uint16_t>();  // reserved

  ShardMap m;
  if (r.remaining() < 8 + 5 * 8 + 4) return MapDecodeStatus::kTruncated;
  m.version = r.Read<uint64_t>();
  m.bounds.min_x = r.Read<double>();
  m.bounds.min_y = r.Read<double>();
  m.bounds.max_x = r.Read<double>();
  m.bounds.max_y = r.Read<double>();
  m.slop = r.Read<double>();
  const uint32_t cols = r.Read<uint16_t>();
  const uint32_t rows = r.Read<uint16_t>();
  if (cols == 0 || rows == 0 || cols > kMaxGridDim || rows > kMaxGridDim) {
    return MapDecodeStatus::kCorrupt;
  }
  const size_t cut_bytes =
      (static_cast<size_t>(cols - 1) + (rows - 1)) * sizeof(double);
  const size_t cell_bytes = static_cast<size_t>(cols) * rows * 4;
  if (r.remaining() < cut_bytes + cell_bytes + 2) {
    return MapDecodeStatus::kTruncated;
  }
  m.x_cuts.resize(cols - 1);
  for (auto& c : m.x_cuts) c = r.Read<double>();
  m.y_cuts.resize(rows - 1);
  for (auto& c : m.y_cuts) c = r.Read<double>();
  m.cells.resize(static_cast<size_t>(cols) * rows);
  for (auto& c : m.cells) c = r.Read<uint32_t>();

  const uint32_t nshards = r.Read<uint16_t>();
  if (nshards == 0 || nshards > kMaxShards) return MapDecodeStatus::kCorrupt;
  m.shards.resize(nshards);
  for (auto& s : m.shards) {
    if (r.remaining() < 2) return MapDecodeStatus::kTruncated;
    const uint32_t name_len = r.Read<uint16_t>();
    if (name_len == 0 || name_len > kMaxShardNameLen) {
      return MapDecodeStatus::kCorrupt;
    }
    if (r.remaining() < name_len + 8 + 4) return MapDecodeStatus::kTruncated;
    const auto name = r.ReadBytes(name_len);
    s.node_name.assign(reinterpret_cast<const char*>(name.data()), name_len);
    s.generation = r.Read<uint64_t>();
    s.arena_rkey = r.Read<uint32_t>();
    if (fmt >= 2) {
      if (r.remaining() < 8 + 1) return MapDecodeStatus::kTruncated;
      s.epoch = r.Read<uint64_t>();
      const uint32_t nfollowers = r.Read<uint8_t>();
      if (nfollowers > kMaxFollowers) return MapDecodeStatus::kCorrupt;
      s.followers.resize(nfollowers);
      for (auto& f : s.followers) {
        if (r.remaining() < 2) return MapDecodeStatus::kTruncated;
        const uint32_t flen = r.Read<uint16_t>();
        if (flen == 0 || flen > kMaxShardNameLen) {
          return MapDecodeStatus::kCorrupt;
        }
        if (r.remaining() < flen + 8 + 4) return MapDecodeStatus::kTruncated;
        const auto fname = r.ReadBytes(flen);
        f.node_name.assign(reinterpret_cast<const char*>(fname.data()),
                           flen);
        f.generation = r.Read<uint64_t>();
        f.arena_rkey = r.Read<uint32_t>();
      }
    }
  }
  if (!r.AtEnd()) return MapDecodeStatus::kCorrupt;
  if (!m.Valid()) return MapDecodeStatus::kCorrupt;
  out = std::move(m);
  return MapDecodeStatus::kOk;
}

ShardMap BuildGridMap(std::span<const rtree::Entry> items,
                      uint32_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  ShardMap map;
  // Near-square factorization: cols × rows cells, striped over shards so
  // cols*rows need not equal num_shards exactly.
  uint32_t cols = 1;
  while (cols * cols < num_shards) ++cols;
  const uint32_t rows = (num_shards + cols - 1) / cols;

  geo::Rect bounds = geo::Rect::Empty();
  double max_half = 0.0;
  std::vector<double> xs, ys;
  xs.reserve(items.size());
  ys.reserve(items.size());
  for (const auto& e : items) {
    bounds = bounds.Union(e.mbr);
    const geo::Point c = e.mbr.Center();
    xs.push_back(c.x);
    ys.push_back(c.y);
    max_half = std::max(max_half,
                        std::max(e.mbr.width(), e.mbr.height()) / 2.0);
  }
  if (items.empty()) bounds = geo::Rect{0.0, 0.0, 1.0, 1.0};

  map.bounds = bounds;
  map.slop = max_half;
  map.x_cuts = QuantileCuts(xs, cols);
  map.y_cuts = QuantileCuts(ys, rows);
  // Dedup in QuantileCuts can shrink a dimension (constant data); the
  // cell table follows the *actual* grid.
  const uint32_t actual_cols = map.cols();
  const uint32_t actual_rows = map.rows();
  map.cells.resize(static_cast<size_t>(actual_cols) * actual_rows);
  for (uint32_t row = 0; row < actual_rows; ++row) {
    for (uint32_t col = 0; col < actual_cols; ++col) {
      map.cells[row * actual_cols + col] =
          (row * actual_cols + col) % num_shards;
    }
  }
  map.shards.resize(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    map.shards[i].node_name = "shard-" + std::to_string(i);
  }
  return map;
}

std::vector<std::vector<rtree::Entry>> PartitionItems(
    const ShardMap& map, std::span<const rtree::Entry> items) {
  std::vector<std::vector<rtree::Entry>> buckets(map.shard_count());
  for (const auto& e : items) {
    buckets[map.OwnerOf(e.mbr)].push_back(e);
  }
  return buckets;
}

}  // namespace catfish::shard

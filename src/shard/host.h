// ShardHost: one process hosting N shards of a sharded R-tree.
//
// Lifts the single-node stack (arena + RStarTree + RTreeServer +
// BootstrapAcceptor, optionally a per-shard durable WAL) behind one
// object so a DES process — or a test — can stand up a whole sharded
// deployment. Each shard is a full independent Catfish server: its own
// fabric node ("shard-<i>"), its own registered arena, its own adaptive
// heartbeats, its own bootstrap endpoint. Nothing is shared between
// shards but the fabric and the routing table.
//
// The host owns the authoritative ShardMap. Every shard's acceptor
// publishes it through the bootstrap hello extension, so any client
// handshake — against any shard — delivers the current table.
// RestartShard() models a single-shard crash: the node restarts (rkeys
// and QPNs die, generation bumps), durable shards recover from their
// disks, and the host republishes the map with a bumped version — the
// stale-map signal clients converge on.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "catfish/bootstrap.h"
#include "catfish/server.h"
#include "durable/manager.h"
#include "durable/storage.h"
#include "rdmasim/rdma.h"
#include "rtree/arena.h"
#include "rtree/rstar.h"
#include "shard/partition.h"

namespace catfish::shard {

struct ShardHostConfig {
  uint32_t num_shards = 1;
  /// Per-shard server config (heartbeat interval, ring capacity, ...).
  /// The `durability` pointer is managed by the host; leave it null.
  ServerConfig server;
  /// Chunks per shard arena. Each shard holds ~1/num_shards of the data,
  /// so this can shrink as the shard count grows.
  size_t arena_chunks = 1 << 13;
  /// When true each shard gets its own WAL + checkpoint store (both
  /// in-memory "disks" that survive RestartShard), and writes are
  /// exactly-once across shard crashes.
  bool durable = false;
  durable::DurabilityConfig durability;
  /// Floor for the map's query expansion; raise it when post-load
  /// inserts may be larger than anything in the bulk-loaded dataset.
  double min_slop = 0.0;
};

class ShardHost {
 public:
  ShardHost(rdma::Fabric& fabric, ShardHostConfig cfg = {});
  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// Builds the routing table over `items`, partitions them by center
  /// ownership, bulk-loads every shard (durable shards additionally seed
  /// their checkpoint store so the first incarnation is recoverable),
  /// and starts all servers + bootstrap acceptors. Call once.
  void Load(std::span<const rtree::Entry> items);

  /// Dials shard `i`'s bootstrap endpoint (thread-safe against
  /// RestartShard; throws while the shard is between incarnations).
  std::shared_ptr<tcpkit::Stream> Dial(uint32_t shard);

  /// Full crash/reboot of one shard: stop serving, kill the fabric node
  /// (stale rkeys/QPNs die, generation bumps), rebuild state — from the
  /// durable stores when cfg.durable, else keeping the volatile tree —
  /// restart the server, and republish the map with a bumped version.
  void RestartShard(uint32_t shard);

  void Stop();

  /// Current routing table (copy: the authoritative one may be
  /// republished concurrently by RestartShard).
  ShardMap map() const;
  uint64_t map_version() const;

  uint32_t shard_count() const noexcept { return cfg_.num_shards; }
  RTreeServer& server(uint32_t shard) { return *shards_[shard]->server; }
  rtree::RStarTree& tree(uint32_t shard) { return *shards_[shard]->tree; }

 private:
  struct Shard {
    uint32_t id = 0;
    std::shared_ptr<rdma::SimNode> node;
    std::unique_ptr<rtree::NodeArena> arena;
    std::unique_ptr<rtree::RStarTree> tree;
    /// Durable mode: the shard's "disks", surviving incarnations.
    std::shared_ptr<durable::MemLogStorage> wal_disk;
    std::shared_ptr<durable::MemCheckpointStore> ckpt_disk;
    std::unique_ptr<durable::DurabilityManager> durability;
    std::unique_ptr<RTreeServer> server;
    std::unique_ptr<BootstrapAcceptor> acceptor;
    std::mutex boot_mu;  ///< server/acceptor swap vs dialing threads
  };

  void StartServer(Shard& s);
  void StopServer(Shard& s);
  /// Rebuilds arena + manager + tree from the shard's disks (the crash
  /// recovery path; durable mode only).
  void RecoverState(Shard& s);
  /// Re-encodes and republishes the map after `shard`'s identity
  /// changed; bumps the version.
  void Republish(uint32_t shard);

  rdma::Fabric* fabric_;
  ShardHostConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex map_mu_;
  ShardMap map_;
  /// Lock-free mirror of map_.version: every shard's server monitor
  /// thread reads it on each heartbeat (ServerConfig::map_version), so
  /// clients hear about a republish from *any* live connection without
  /// the monitor contending on map_mu_.
  std::atomic<uint64_t> published_version_{0};
  bool loaded_ = false;
};

}  // namespace catfish::shard

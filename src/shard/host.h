// ShardHost: one process hosting N shards of a sharded R-tree.
//
// Lifts the single-node stack (arena + RStarTree + RTreeServer +
// BootstrapAcceptor, optionally a per-shard durable WAL) behind one
// object so a DES process — or a test — can stand up a whole sharded
// deployment. Each shard is a full independent Catfish server: its own
// fabric node ("shard-<i>"), its own registered arena, its own adaptive
// heartbeats, its own bootstrap endpoint. Nothing is shared between
// shards but the fabric and the routing table.
//
// The host owns the authoritative ShardMap. Every shard's acceptor
// publishes it through the bootstrap hello extension, so any client
// handshake — against any shard — delivers the current table.
// RestartShard() models a single-shard crash: the node restarts (rkeys
// and QPNs die, generation bumps), durable shards recover from their
// disks, and the host republishes the map with a bumped version — the
// stale-map signal clients converge on.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "catfish/bootstrap.h"
#include "catfish/server.h"
#include "durable/manager.h"
#include "durable/replication.h"
#include "durable/storage.h"
#include "rdmasim/rdma.h"
#include "rtree/arena.h"
#include "rtree/rstar.h"
#include "shard/partition.h"

namespace catfish::shard {

struct ShardHostConfig {
  uint32_t num_shards = 1;
  /// Per-shard server config (heartbeat interval, ring capacity, ...).
  /// The `durability` pointer is managed by the host; leave it null.
  ServerConfig server;
  /// Chunks per shard arena. Each shard holds ~1/num_shards of the data,
  /// so this can shrink as the shard count grows.
  size_t arena_chunks = 1 << 13;
  /// When true each shard gets its own WAL + checkpoint store (both
  /// in-memory "disks" that survive RestartShard), and writes are
  /// exactly-once across shard crashes.
  bool durable = false;
  durable::DurabilityConfig durability;
  /// Floor for the map's query expansion; raise it when post-load
  /// inserts may be larger than anything in the bulk-loaded dataset.
  double min_slop = 0.0;
  /// Follower replicas per shard (0–2 in practice). Non-zero forces
  /// durable mode: replication is WAL log shipping, so there must be a
  /// WAL. Each replica is a full server stack on its own fabric node
  /// ("shard-<i>-r<j>") serving one-sided offloaded reads; a write acks
  /// only after `replication.ack_followers` of them have it durable.
  uint32_t num_replicas = 0;
  /// Shipper knobs (batch size, in-flight window, retry, quorum). The
  /// per-shard `shard` field is filled by the host.
  durable::ReplicationShipperConfig replication;
  /// When true the host runs a failover watchdog: a primary that has
  /// been down (KillPrimary) for `failover_grace_us` with a live
  /// follower is promoted automatically — the control-plane half of
  /// failover, mirroring the client watchdog's Disconnected trip.
  bool auto_failover = false;
  uint64_t failover_grace_us = 20'000;
  uint64_t failover_check_interval_us = 5'000;
};

class ShardHost {
 public:
  ShardHost(rdma::Fabric& fabric, ShardHostConfig cfg = {});
  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// Builds the routing table over `items`, partitions them by center
  /// ownership, bulk-loads every shard (durable shards additionally seed
  /// their checkpoint store so the first incarnation is recoverable),
  /// and starts all servers + bootstrap acceptors. Call once.
  void Load(std::span<const rtree::Entry> items);

  /// Dials shard `i`'s bootstrap endpoint (thread-safe against
  /// RestartShard; throws while the shard is between incarnations).
  std::shared_ptr<tcpkit::Stream> Dial(uint32_t shard);

  /// Full crash/reboot of one shard: stop serving, kill the fabric node
  /// (stale rkeys/QPNs die, generation bumps), rebuild state — from the
  /// durable stores when cfg.durable, else keeping the volatile tree —
  /// restart the server, and republish the map with a bumped version.
  void RestartShard(uint32_t shard);

  void Stop();

  /// Current routing table (copy: the authoritative one may be
  /// republished concurrently by RestartShard).
  ShardMap map() const;
  uint64_t map_version() const;

  /// Crash the primary of `shard` without recovery: the server and
  /// shipper stop, the fabric node dies (stale rkeys/QPNs invalid), and
  /// nothing restarts. Heartbeats go silent — the client watchdog is what
  /// notices. The shard stays write-dead until Promote() (or the
  /// auto-failover watchdog) installs a follower as the new primary.
  void KillPrimary(uint32_t shard);

  /// Fails `shard` over to its most-caught-up live follower (highest
  /// durable LSN wins). Bumps the replication epoch — a zombie of the
  /// old primary is fenced, its late acks rejected — rewires the
  /// remaining followers to ship from the new primary, and republishes
  /// the map under a bumped version + epoch. Returns the index the
  /// promoted replica had, or UINT32_MAX if no live follower exists.
  uint32_t Promote(uint32_t shard);

  /// Dials follower `replica` of `shard` for read bootstraps.
  std::shared_ptr<tcpkit::Stream> DialReplica(uint32_t shard,
                                              uint32_t replica);

  uint32_t shard_count() const noexcept { return cfg_.num_shards; }
  uint32_t replica_count(uint32_t shard) const {
    return static_cast<uint32_t>(shards_[shard]->replicas.size());
  }
  RTreeServer& server(uint32_t shard) { return *shards_[shard]->server; }
  rtree::RStarTree& tree(uint32_t shard) { return *shards_[shard]->tree; }
  rtree::RStarTree& replica_tree(uint32_t shard, uint32_t replica) {
    return *shards_[shard]->replicas[replica]->tree;
  }
  durable::DurabilityManager& durability(uint32_t shard) {
    return *shards_[shard]->durability;
  }
  const durable::ReplicationShipper* shipper(uint32_t shard) const {
    return shards_[shard]->shipper.get();
  }
  /// Total failover promotions performed so far (all shards).
  uint64_t promotions() const noexcept {
    return promotions_.load(std::memory_order_relaxed);
  }

 private:
  /// One follower replica: a full server stack on its own fabric node.
  /// Reads are served exactly like a primary's (one-sided offload against
  /// its arena, epoch-stamped by its VersionedFetchEngine); writes only
  /// ever arrive through the applier, as shipped WAL records.
  struct Replica {
    uint32_t shard = 0;
    uint32_t idx = 0;  ///< stable index within the shard ("shard-<i>-r<j>")
    bool dead = false;  ///< former primary corpse parked after failover
    std::shared_ptr<rdma::SimNode> node;
    std::unique_ptr<rtree::NodeArena> arena;
    std::unique_ptr<rtree::RStarTree> tree;
    std::shared_ptr<durable::MemLogStorage> wal_disk;
    std::shared_ptr<durable::MemCheckpointStore> ckpt_disk;
    std::unique_ptr<durable::DurabilityManager> durability;
    std::unique_ptr<RTreeServer> server;
    std::unique_ptr<BootstrapAcceptor> acceptor;
    std::unique_ptr<durable::ReplChannel> channel;
    std::unique_ptr<durable::FollowerApplier> applier;
    std::mutex boot_mu;  ///< server/acceptor swap vs dialing threads
  };

  struct Shard {
    uint32_t id = 0;
    std::shared_ptr<rdma::SimNode> node;
    std::unique_ptr<rtree::NodeArena> arena;
    std::unique_ptr<rtree::RStarTree> tree;
    /// Durable mode: the shard's "disks", surviving incarnations.
    std::shared_ptr<durable::MemLogStorage> wal_disk;
    std::shared_ptr<durable::MemCheckpointStore> ckpt_disk;
    std::unique_ptr<durable::DurabilityManager> durability;
    std::unique_ptr<RTreeServer> server;
    std::unique_ptr<BootstrapAcceptor> acceptor;
    std::mutex boot_mu;  ///< server/acceptor swap vs dialing threads
    /// Replication (num_replicas > 0): the primary's shipper plus the
    /// follower stacks. Protected by the host-level repl_mu_ for
    /// promotion vs accessor races.
    std::unique_ptr<durable::ReplicationShipper> shipper;
    std::vector<std::unique_ptr<Replica>> replicas;
    /// Microsecond timestamp of KillPrimary, 0 while the primary is up.
    /// The auto-failover watchdog promotes once now - this > grace.
    std::atomic<uint64_t> primary_down_since_us{0};
  };

  void StartServer(Shard& s);
  void StopServer(Shard& s);
  void StartReplicaServer(Shard& s, Replica& r);
  void StopReplicaServer(Replica& r);
  /// Rebuilds arena + manager + tree from the shard's disks (the crash
  /// recovery path; durable mode only).
  void RecoverState(Shard& s);
  /// Wires channel + applier from the shard's current primary to `r` and
  /// registers it with the shard's shipper.
  void AttachFollower(Shard& s, Replica& r);
  /// Tears down and rebuilds the shard's whole replication plane
  /// (shipper + channels + appliers) against the current primary.
  void RewireReplication(Shard& s);
  /// Re-encodes and republishes the map after `shard`'s identity
  /// changed; bumps the version.
  void Republish(uint32_t shard);
  void FailoverLoop();

  rdma::Fabric* fabric_;
  ShardHostConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Serializes KillPrimary / Promote / RestartShard against each other
  /// and against the failover watchdog.
  std::mutex repl_mu_;
  std::atomic<uint64_t> promotions_{0};
  std::thread failover_thread_;
  std::atomic<bool> failover_stop_{true};

  mutable std::mutex map_mu_;
  ShardMap map_;
  /// Lock-free mirror of map_.version: every shard's server monitor
  /// thread reads it on each heartbeat (ServerConfig::map_version), so
  /// clients hear about a republish from *any* live connection without
  /// the monitor contending on map_mu_.
  std::atomic<uint64_t> published_version_{0};
  bool loaded_ = false;
};

}  // namespace catfish::shard

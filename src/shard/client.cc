#include "shard/client.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "common/clock.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::shard {

namespace {

ShardError Wrap(uint32_t shard, const ClientError& e) {
  return ShardError(shard, e.status(),
                    "shard " + std::to_string(shard) + ": " + e.what());
}

}  // namespace

ShardedRTreeClient::ShardedRTreeClient(std::shared_ptr<rdma::SimNode> node,
                                       ShardDialFn dial,
                                       ShardedClientConfig cfg)
    : node_(std::move(node)), dial_(std::move(dial)), cfg_(cfg) {
  // Shard 0 first: its hello extension is the routing table. Without a
  // decodable map nothing can be routed, so this is fatal.
  auto first = ConnectViaBootstrap([this] { return dial_(0); }, node_,
                                   cfg_.client);
  const MapDecodeStatus st = DecodeShardMap(first->hello_extension(), map_);
  if (st != MapDecodeStatus::kOk) {
    throw std::runtime_error(
        std::string("sharded client: bootstrap hello carried no usable "
                    "routing table: ") +
        ToString(st));
  }
  clients_.resize(map_.shard_count());
  clients_[0] = std::move(first);
  for (uint32_t i = 1; i < map_.shard_count(); ++i) {
    clients_[i] = ConnectViaBootstrap(
        [this, i] { return dial_(i); }, node_, cfg_.client);
  }
}

AccessMode ShardedRTreeClient::DecideMode(uint32_t shard) {
  RTreeClient& c = *clients_[shard];
  if (c.conn_state() != ConnState::kConnected) {
    return AccessMode::kRdmaOffloading;
  }
  switch (cfg_.client.mode) {
    case ClientMode::kFastOnly:
      return AccessMode::kFastMessaging;
    case ClientMode::kOffloadOnly:
      return AccessMode::kRdmaOffloading;
    case ClientMode::kAdaptive:
    default:
      return c.controller().NextMode(NowMicros());
  }
}

void ShardedRTreeClient::RefreshIfStale(uint32_t shard) {
  RTreeClient& c = *clients_[shard];
  if (c.server_generation() == map_.shards[shard].generation) {
    // The connection itself is current, but its server's heartbeats may
    // advertise a newer table version — some *other* shard restarted and
    // the host republished. Re-bootstrap now to fetch the fresh hello,
    // so a later fan-out to the restarted shard routes correctly on the
    // first try instead of eating a generation-mismatch round trip.
    if (c.conn_state() != ConnState::kConnected ||
        c.advertised_map_version() <= map_.version) {
      return;
    }
    if (c.Reconnect() != ClientStatus::kOk) return;  // retried next op
    ++stats_.proactive_refreshes;
    CATFISH_COUNT("shard.client.proactive_refreshes");
  }
  // Either the connection outlived our map (the shard restarted and the
  // client re-bootstrapped) or we just re-bootstrapped proactively; the
  // latest hello carries the republished table.
  ShardMap fresh;
  if (DecodeShardMap(c.hello_extension(), fresh) != MapDecodeStatus::kOk) {
    return;  // malformed/absent; generations stay split, retried next op
  }
  if (fresh.version < map_.version) {
    // The *connection* is the stale side: our map was adopted from
    // another shard's hello after a republish (e.g. a heartbeat-driven
    // refresh), while this shard's link still points at the dead
    // incarnation. Re-bootstrap it now — adopting its old hello's
    // generation would poison the fresher map.
    if (c.Reconnect() != ClientStatus::kOk) return;  // retried next op
    if (DecodeShardMap(c.hello_extension(), fresh) != MapDecodeStatus::kOk) {
      return;
    }
  }
  if (fresh.version <= map_.version) {
    // Same-version hello (e.g. our own reconnect raced the republish):
    // patch just this shard's identity so the staleness check converges.
    map_.shards[shard].generation = c.server_generation();
    return;
  }
  [[maybe_unused]] const uint64_t old_version = map_.version;
  map_ = std::move(fresh);
  ++stats_.map_refreshes;
  CATFISH_COUNT("shard.client.map_refreshes");
  CATFISH_EVENT(kShardMapRefresh, NowMicros(), 0,
                static_cast<double>(map_.version),
                static_cast<double>(old_version));
}

std::vector<rtree::Entry> ShardedRTreeClient::Search(const geo::Rect& rect) {
  CATFISH_SCOPED_TIMER_US("shard.client.search_us");
  // Refresh before staging: a heartbeat may have advertised a newer
  // table, or a prior op may have adopted one while some shard's link
  // still pointed at a dead incarnation. Healing first lets the first
  // post-republish fan-out succeed outright instead of surfacing a
  // one-shot ShardError; the common case is two relaxed loads per shard.
  map_.QueryShards(rect, targets_);
  for (const uint32_t shard : targets_) RefreshIfStale(shard);
  map_.QueryShards(rect, targets_);  // re-route on the possibly-fresher map
  last_fanout_ = static_cast<uint32_t>(targets_.size());
  ++stats_.searches;
  stats_.fanout_subqueries += targets_.size();
  CATFISH_COUNT("shard.client.searches");
  CATFISH_TIMER_RECORD_US("shard.client.fanout_width", targets_.size());

  // Phase 1 — stage a fast-path sub-query on every shard whose
  // controller picks messaging, so all their server-side traversals run
  // concurrently. Shards picking offload are deferred to phase 2. Each
  // staged sub-query is one ring doorbell on its shard's QP (even when
  // the ring wraps, the pad + message WRs ride a single batched post),
  // so a fan-out of N costs N doorbells, not 2N posts.
  struct Pending {
    uint32_t shard;
    uint64_t req_id;
  };
  std::vector<Pending> pending;
  std::vector<uint32_t> offload;
  std::optional<ShardError> err;
  for (const uint32_t shard : targets_) {
    if (DecideMode(shard) != AccessMode::kFastMessaging) {
      offload.push_back(shard);
      continue;
    }
    try {
      pending.push_back({shard, clients_[shard]->SearchFastBegin(rect)});
    } catch (const ClientError& e) {
      ++stats_.shard_errors;
      CATFISH_COUNT("shard.client.subquery_errors");
      if (!err) err = Wrap(shard, e);
    }
  }

  if (!pending.empty()) {
    CATFISH_COUNT_ADD("shard.client.staged_subqueries", pending.size());
  }

  // Phase 2 — offloaded sub-queries traverse with one-sided READs while
  // the staged fast sub-queries are being served remotely. Each
  // traversal level flushes one doorbell for its whole frontier
  // (engine-side Stage/Flush batching).
  std::vector<rtree::Entry> results;
  for (const uint32_t shard : offload) {
    try {
      CATFISH_SCOPED_TIMER_US("shard.client.subquery_us");
      const auto part = clients_[shard]->SearchOffloaded(rect);
      results.insert(results.end(), part.begin(), part.end());
    } catch (const ClientError& e) {
      ++stats_.shard_errors;
      CATFISH_COUNT("shard.client.subquery_errors");
      if (!err) err = Wrap(shard, e);
    }
  }

  // Phase 3 — collect the fast responses. Collection must run even
  // after an earlier failure: an uncollected response would poison the
  // next request on that connection (it is dropped as stale instead).
  for (const Pending& p : pending) {
    try {
      CATFISH_SCOPED_TIMER_US("shard.client.subquery_us");
      const auto part = clients_[p.shard]->SearchFastCollect(p.req_id);
      results.insert(results.end(), part.begin(), part.end());
    } catch (const ClientError& e) {
      ++stats_.shard_errors;
      CATFISH_COUNT("shard.client.subquery_errors");
      if (!err) err = Wrap(p.shard, e);
    }
  }

  for (const uint32_t shard : targets_) RefreshIfStale(shard);
  if (err) throw *err;
  return results;
}

std::vector<rtree::Entry> ShardedRTreeClient::NearestNeighbors(
    const geo::Point& point, uint32_t k) {
  ++stats_.knn_queries;
  CATFISH_COUNT("shard.client.knn");
  std::vector<rtree::Entry> all;
  std::optional<ShardError> err;
  for (uint32_t shard = 0; shard < map_.shard_count(); ++shard) {
    try {
      const auto part = clients_[shard]->NearestNeighbors(point, k);
      all.insert(all.end(), part.begin(), part.end());
    } catch (const ClientError& e) {
      ++stats_.shard_errors;
      if (!err) err = Wrap(shard, e);
    }
    RefreshIfStale(shard);
  }
  if (err) throw *err;
  std::sort(all.begin(), all.end(),
            [&point](const rtree::Entry& a, const rtree::Entry& b) {
              const double da = geo::MinDist2(a.mbr, point);
              const double db = geo::MinDist2(b.mbr, point);
              return da != db ? da < db : a.id < b.id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

bool ShardedRTreeClient::Insert(const geo::Rect& rect, uint64_t id) {
  const uint32_t owner = map_.OwnerOf(rect);
  ++stats_.inserts;
  CATFISH_COUNT("shard.client.inserts");
  // Exactly-once lives below: the owning shard's client retries with the
  // original (client_gen, req_id); ownership is stable, so the write's
  // destination never moves between attempts.
  try {
    const bool ok = clients_[owner]->Insert(rect, id);
    RefreshIfStale(owner);
    return ok;
  } catch (const ClientError& e) {
    ++stats_.shard_errors;
    RefreshIfStale(owner);
    throw Wrap(owner, e);
  }
}

bool ShardedRTreeClient::Delete(const geo::Rect& rect, uint64_t id) {
  const uint32_t owner = map_.OwnerOf(rect);
  ++stats_.deletes;
  CATFISH_COUNT("shard.client.deletes");
  try {
    const bool ok = clients_[owner]->Delete(rect, id);
    RefreshIfStale(owner);
    return ok;
  } catch (const ClientError& e) {
    ++stats_.shard_errors;
    RefreshIfStale(owner);
    throw Wrap(owner, e);
  }
}

}  // namespace catfish::shard

#include "shard/client.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/clock.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::shard {

namespace {

ShardError Wrap(uint32_t shard, const ClientError& e) {
  return ShardError(shard, e.status(),
                    "shard " + std::to_string(shard) + ": " + e.what());
}

}  // namespace

ShardedRTreeClient::ShardedRTreeClient(std::shared_ptr<rdma::SimNode> node,
                                       ShardDialFn dial,
                                       ShardedClientConfig cfg)
    : node_(std::move(node)), dial_(std::move(dial)), cfg_(cfg) {
  // Shard 0 first: its hello extension is the routing table. Without a
  // decodable map nothing can be routed, so this is fatal.
  auto first = ConnectViaBootstrap([this] { return dial_(0); }, node_,
                                   cfg_.client);
  const MapDecodeStatus st = DecodeShardMap(first->hello_extension(), map_);
  if (st != MapDecodeStatus::kOk) {
    throw std::runtime_error(
        std::string("sharded client: bootstrap hello carried no usable "
                    "routing table: ") +
        ToString(st));
  }
  clients_.resize(map_.shard_count());
  clients_[0] = std::move(first);
  for (uint32_t i = 1; i < map_.shard_count(); ++i) {
    clients_[i] = ConnectViaBootstrap(
        [this, i] { return dial_(i); }, node_, cfg_.client);
  }
  replica_clients_.resize(map_.shard_count());
}

AccessMode ShardedRTreeClient::DecideMode(uint32_t shard) {
  RTreeClient& c = *clients_[shard];
  if (c.conn_state() != ConnState::kConnected) {
    return AccessMode::kRdmaOffloading;
  }
  switch (cfg_.client.mode) {
    case ClientMode::kFastOnly:
      return AccessMode::kFastMessaging;
    case ClientMode::kOffloadOnly:
      return AccessMode::kRdmaOffloading;
    case ClientMode::kAdaptive:
    default:
      return c.controller().NextMode(NowMicros());
  }
}

void ShardedRTreeClient::RefreshIfStale(uint32_t shard) {
  RTreeClient& c = *clients_[shard];
  if (c.server_generation() == map_.shards[shard].generation) {
    // The connection itself is current, but its server's heartbeats may
    // advertise a newer table version — some *other* shard restarted and
    // the host republished. Re-bootstrap now to fetch the fresh hello,
    // so a later fan-out to the restarted shard routes correctly on the
    // first try instead of eating a generation-mismatch round trip.
    if (c.conn_state() != ConnState::kConnected ||
        c.advertised_map_version() <= map_.version) {
      return;
    }
    if (c.Reconnect() != ClientStatus::kOk) return;  // retried next op
    ++stats_.proactive_refreshes;
    CATFISH_COUNT("shard.client.proactive_refreshes");
  }
  // Either the connection outlived our map (the shard restarted and the
  // client re-bootstrapped) or we just re-bootstrapped proactively; the
  // latest hello carries the republished table.
  ShardMap fresh;
  if (DecodeShardMap(c.hello_extension(), fresh) != MapDecodeStatus::kOk) {
    return;  // malformed/absent; generations stay split, retried next op
  }
  if (fresh.version < map_.version) {
    // The *connection* is the stale side: our map was adopted from
    // another shard's hello after a republish (e.g. a heartbeat-driven
    // refresh), while this shard's link still points at the dead
    // incarnation. Re-bootstrap it now — adopting its old hello's
    // generation would poison the fresher map.
    if (c.Reconnect() != ClientStatus::kOk) return;  // retried next op
    if (DecodeShardMap(c.hello_extension(), fresh) != MapDecodeStatus::kOk) {
      return;
    }
  }
  if (fresh.version <= map_.version) {
    // Same-version hello (e.g. our own reconnect raced the republish):
    // patch just this shard's identity so the staleness check converges.
    map_.shards[shard].generation = c.server_generation();
    return;
  }
  [[maybe_unused]] const uint64_t old_version = map_.version;
  map_ = std::move(fresh);
  // The follower set may have changed (a promotion consumes one, a
  // republish re-keys generations); drop all follower links and let
  // them re-dial lazily against the fresh table.
  replica_clients_.clear();
  replica_clients_.resize(map_.shard_count());
  ++stats_.map_refreshes;
  CATFISH_COUNT("shard.client.map_refreshes");
  CATFISH_EVENT(kShardMapRefresh, NowMicros(), 0,
                static_cast<double>(map_.version),
                static_cast<double>(old_version));
}

std::vector<rtree::Entry> ShardedRTreeClient::Search(const geo::Rect& rect) {
  PartialResult pr = DoSearch(rect);
  if (!pr.complete()) {
    if (!cfg_.allow_partial) throw pr.errors.front();
    ++stats_.partial_results;
    CATFISH_COUNT("shard.client.partial_results");
  }
  return std::move(pr.entries);
}

PartialResult ShardedRTreeClient::SearchPartial(const geo::Rect& rect) {
  PartialResult pr = DoSearch(rect);
  if (!pr.complete()) {
    ++stats_.partial_results;
    CATFISH_COUNT("shard.client.partial_results");
  }
  return pr;
}

RTreeClient* ShardedRTreeClient::FollowerFor(uint32_t shard) {
  if (!cfg_.read_from_followers || !cfg_.replica_dial) return nullptr;
  const auto& followers = map_.shards[shard].followers;
  if (followers.empty()) return nullptr;
  if (replica_clients_.size() <= shard) {
    replica_clients_.resize(map_.shard_count());
  }
  auto& conns = replica_clients_[shard];
  conns.resize(followers.size());

  const uint64_t primary_lsn = clients_[shard]->advertised_durable_lsn();
  const uint32_t n = static_cast<uint32_t>(followers.size());
  for (uint32_t probe = 0; probe < n; ++probe) {
    const uint32_t j = (follower_rr_++) % n;
    auto& conn = conns[j];
    if (!conn) {
      try {
        conn = ConnectViaBootstrap(
            [this, shard, j] { return cfg_.replica_dial(shard, j); }, node_,
            cfg_.client);
      } catch (const std::exception&) {
        continue;  // follower down or between incarnations; try the next
      }
    }
    if (conn->conn_state() != ConnState::kConnected) continue;
    // Identity + role checks: the link must point at the incarnation the
    // map advertised, and that incarnation must still be a follower (a
    // promoted one is now the primary under another name).
    if (conn->server_generation() != followers[j].generation) {
      conn.reset();  // stale incarnation; re-dialed on a later read
      continue;
    }
    if (conn->repl_role() !=
        static_cast<uint8_t>(msg::ReplRole::kFollower)) {
      continue;
    }
    // Staleness bound: a follower whose heartbeat-advertised durable LSN
    // trails the primary's by more than the configured lag serves
    // arbitrarily old state — skip it rather than return it.
    const uint64_t follower_lsn = conn->advertised_durable_lsn();
    if (primary_lsn > follower_lsn &&
        primary_lsn - follower_lsn > cfg_.max_replica_lag) {
      ++stats_.follower_lag_skips;
      CATFISH_COUNT("shard.client.follower_lag_skips");
      continue;
    }
    // Epoch check: a follower still on an older reign may be feeding off
    // a zombie primary; only read from one that has caught up with the
    // epoch the map was published under.
    const uint64_t follower_epoch =
        std::max(conn->advertised_repl_epoch(), conn->repl_epoch());
    if (follower_epoch < map_.shards[shard].epoch) continue;
    return conn.get();
  }
  return nullptr;
}

void ShardedRTreeClient::RecordSubLatency(uint64_t us) {
  const uint32_t w = cfg_.hedge.window > 0 ? cfg_.hedge.window : 1;
  if (sub_lat_.size() < w) {
    sub_lat_.push_back(us);
  } else {
    sub_lat_[sub_lat_next_ % w] = us;
  }
  ++sub_lat_next_;
}

uint64_t ShardedRTreeClient::HedgeDelayUs() {
  const HedgeConfig& h = cfg_.hedge;
  if (sub_lat_.size() < h.min_samples) return h.max_delay_us;
  sub_lat_scratch_ = sub_lat_;
  const double p = std::clamp(h.percentile, 0.0, 1.0);
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sub_lat_scratch_.size() - 1));
  std::nth_element(sub_lat_scratch_.begin(), sub_lat_scratch_.begin() + idx,
                   sub_lat_scratch_.end());
  return std::clamp(sub_lat_scratch_[idx], h.min_delay_us, h.max_delay_us);
}

PartialResult ShardedRTreeClient::DoSearch(const geo::Rect& rect) {
  CATFISH_SCOPED_TIMER_US("shard.client.search_us");
  // One absolute deadline for the whole fan-out: concurrent legs share
  // it, sequential legs consume what remains of it.
  const uint64_t deadline_us =
      cfg_.op_budget_us != 0 ? NowMicros() + cfg_.op_budget_us : 0;
  // Refresh before staging: a heartbeat may have advertised a newer
  // table, or a prior op may have adopted one while some shard's link
  // still pointed at a dead incarnation. Healing first lets the first
  // post-republish fan-out succeed outright instead of surfacing a
  // one-shot ShardError; the common case is two relaxed loads per shard.
  map_.QueryShards(rect, targets_);
  for (const uint32_t shard : targets_) RefreshIfStale(shard);
  map_.QueryShards(rect, targets_);  // re-route on the possibly-fresher map
  last_fanout_ = static_cast<uint32_t>(targets_.size());
  ++stats_.searches;
  stats_.fanout_subqueries += targets_.size();
  CATFISH_COUNT("shard.client.searches");
  CATFISH_TIMER_RECORD_US("shard.client.fanout_width", targets_.size());

  // Sampled queries build a distributed trace: one subquery span per
  // shard, each fast-path one carrying a sampled wire context so its
  // server opens (and ships back) a span tree of its own.
  std::shared_ptr<telemetry::Trace> trace;
  if (cfg_.tracer) trace = cfg_.tracer->StartTrace("shard.search");
  if (trace) {
    trace->SetAttr(trace->root(), "fanout",
                   static_cast<int64_t>(targets_.size()));
  }

  // Phase 1 — stage a fast-path sub-query on every shard whose
  // controller picks messaging, so all their server-side traversals run
  // concurrently. Shards picking offload are deferred to phase 2. Each
  // staged sub-query is one ring doorbell on its shard's QP (even when
  // the ring wraps, the pad + message WRs ride a single batched post),
  // so a fan-out of N costs N doorbells, not 2N posts.
  struct Pending {
    uint32_t shard;
    uint64_t req_id;
    telemetry::SpanId span = telemetry::kInvalidSpan;
    uint64_t staged_us = 0;  ///< when the sub-query left the client
  };
  std::vector<Pending> pending;
  std::vector<uint32_t> offload;
  PartialResult out;
  for (const uint32_t shard : targets_) {
    clients_[shard]->SetOpDeadline(deadline_us);
    if (DecideMode(shard) != AccessMode::kFastMessaging) {
      offload.push_back(shard);
      continue;
    }
    auto span = telemetry::kInvalidSpan;
    if (trace) {
      span = trace->StartSpan(trace->root(), "subquery",
                              cfg_.tracer->now_us());
      trace->SetAttr(span, "shard", shard);
      clients_[shard]->StageTraceContext(
          msg::TraceContext{trace->id(), span, 1});
    }
    try {
      const uint64_t staged_us = NowMicros();
      pending.push_back(
          {shard, clients_[shard]->SearchFastBegin(rect), span, staged_us});
    } catch (const ClientError& e) {
      if (trace) {
        // The context may not have been consumed; clear it so it cannot
        // ride an unrelated later request on this connection.
        clients_[shard]->StageTraceContext(msg::TraceContext{});
        trace->SetAttr(span, "error", 1);
        trace->EndSpan(span, cfg_.tracer->now_us());
      }
      ++stats_.shard_errors;
      CATFISH_COUNT("shard.client.subquery_errors");
      out.errors.push_back(Wrap(shard, e));
    }
  }

  if (!pending.empty()) {
    CATFISH_COUNT_ADD("shard.client.staged_subqueries", pending.size());
  }

  // Phase 2 — offloaded sub-queries traverse with one-sided READs while
  // the staged fast sub-queries are being served remotely. Each
  // traversal level flushes one doorbell for its whole frontier
  // (engine-side Stage/Flush batching). One-sided reads never touch the
  // server CPU, so there is no remote tree: the subquery span itself is
  // the whole record (offload=1 marks it).
  std::vector<rtree::Entry> results;
  for (const uint32_t shard : offload) {
    // Follower read routing: one-sided reads need no primary CPU *or*
    // primary arena — any caught-up follower's tree is just as good, and
    // the fetch engine's version validation detects a torn snapshot
    // there exactly as it would on the primary. Fall back to the primary
    // on any follower failure; never fail a query a primary could serve.
    RTreeClient* follower = FollowerFor(shard);
    if (follower) follower->SetOpDeadline(deadline_us);
    auto span = telemetry::kInvalidSpan;
    if (trace) {
      span = trace->StartSpan(trace->root(), "subquery",
                              cfg_.tracer->now_us());
      trace->SetAttr(span, "shard", shard);
      trace->SetAttr(span, "offload", 1);
      if (follower) trace->SetAttr(span, "follower", 1);
    }
    try {
      CATFISH_SCOPED_TIMER_US("shard.client.subquery_us");
      std::vector<rtree::Entry> part;
      if (follower) {
        try {
          part = follower->SearchOffloaded(rect);
          ++stats_.follower_reads;
          CATFISH_COUNT("shard.client.follower_reads");
        } catch (const ClientError&) {
          ++stats_.follower_fallbacks;
          CATFISH_COUNT("shard.client.follower_fallbacks");
          part = clients_[shard]->SearchOffloaded(rect);
        }
      } else {
        part = clients_[shard]->SearchOffloaded(rect);
      }
      results.insert(results.end(), part.begin(), part.end());
      if (trace) {
        trace->SetAttr(span, "results", static_cast<int64_t>(part.size()));
      }
    } catch (const ClientError& e) {
      if (trace) trace->SetAttr(span, "error", 1);
      ++stats_.shard_errors;
      CATFISH_COUNT("shard.client.subquery_errors");
      out.errors.push_back(Wrap(shard, e));
    }
    if (trace) trace->EndSpan(span, cfg_.tracer->now_us());
  }

  // Phase 3 — collect the fast responses. Collection must run even
  // after an earlier failure: an uncollected response would poison the
  // next request on that connection (it is dropped as stale instead).
  // Each collected sub-query may also yield its server's span tree.
  //
  // With hedging enabled a straggler (no answer after the adaptive
  // delay, measured from its own stage time) is re-issued as a
  // one-sided read against a caught-up follower; first result wins and
  // the loser is abandoned. Shards partition the data, so the two
  // answers are the same row set — exactly one is merged, never both.
  const auto collect_one =
      [&](const Pending& p,
          telemetry::SpanId span) -> std::vector<rtree::Entry> {
    RTreeClient& c = *clients_[p.shard];
    if (!cfg_.hedge.enabled) {
      auto part = c.SearchFastCollect(p.req_id);
      RecordSubLatency(NowMicros() - p.staged_us);
      return part;
    }
    const uint64_t hedge_delay = HedgeDelayUs();
    std::vector<rtree::Entry> part;
    for (;;) {
      if (c.SearchFastPoll(p.req_id, part)) {
        RecordSubLatency(NowMicros() - p.staged_us);
        return part;
      }
      if (NowMicros() - p.staged_us >= hedge_delay) break;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    // Straggler: hedge against a follower. The primary keeps working in
    // the background and may still answer first.
    RTreeClient* follower = FollowerFor(p.shard);
    if (follower == nullptr) {
      // Nothing to hedge against (no followers, all lagging, or
      // follower reads disabled); wait out the primary.
      auto r = c.SearchFastCollect(p.req_id);
      RecordSubLatency(NowMicros() - p.staged_us);
      return r;
    }
    follower->SetOpDeadline(deadline_us);
    ++stats_.hedges_issued;
    CATFISH_COUNT("shard.client.hedges_issued");
    CATFISH_TIMER_RECORD_US("shard.client.hedge_delay_us", hedge_delay);
    std::vector<rtree::Entry> hedged;
    bool hedge_ok = true;
    try {
      hedged = follower->SearchOffloaded(rect);
    } catch (const ClientError&) {
      hedge_ok = false;  // follower slow or dead too; primary is plan A again
    }
    bool primary_done = false;
    try {
      primary_done = c.SearchFastPoll(p.req_id, part);
    } catch (const ClientError&) {
      // The primary failed outright (shed / disconnected) while the
      // hedge ran; its poll state is already cleared. Without a hedged
      // answer the failure is the sub-query's real outcome.
      if (!hedge_ok) throw;
    }
    if (primary_done) {
      RecordSubLatency(NowMicros() - p.staged_us);
      ++stats_.hedges_wasted;
      CATFISH_COUNT("shard.client.hedges_wasted");
      CATFISH_EVENT(kHedge, NowMicros(), p.shard,
                    static_cast<double>(hedge_delay), 0.0);
      return part;
    }
    if (hedge_ok) {
      c.SearchFastAbandon(p.req_id);
      ++stats_.hedges_won;
      CATFISH_COUNT("shard.client.hedges_won");
      CATFISH_EVENT(kHedge, NowMicros(), p.shard,
                    static_cast<double>(hedge_delay), 1.0);
      if (trace && span != telemetry::kInvalidSpan) {
        trace->SetAttr(span, "hedged", 1);
      }
      return hedged;
    }
    // Both sides slow: fall back to blocking on the primary.
    CATFISH_EVENT(kHedge, NowMicros(), p.shard,
                  static_cast<double>(hedge_delay), 0.0);
    auto r = c.SearchFastCollect(p.req_id);
    RecordSubLatency(NowMicros() - p.staged_us);
    return r;
  };

  std::vector<telemetry::RemoteTree> remotes;
  for (const Pending& p : pending) {
    try {
      CATFISH_SCOPED_TIMER_US("shard.client.subquery_us");
      const auto part = collect_one(p, p.span);
      results.insert(results.end(), part.begin(), part.end());
      if (trace) {
        trace->SetAttr(p.span, "results", static_cast<int64_t>(part.size()));
      }
    } catch (const ClientError& e) {
      if (trace) trace->SetAttr(p.span, "error", 1);
      ++stats_.shard_errors;
      CATFISH_COUNT("shard.client.subquery_errors");
      out.errors.push_back(Wrap(p.shard, e));
    }
    if (trace) {
      // Collection is sequential, so ending the span at collect time
      // would charge one sub-query with another's join wait (a shard
      // collected after a straggler looks like the straggler). The
      // server's tree end is the honest completion estimate — same
      // process-wide steady clock — so prefer it when a tree arrived;
      // the residual join wait lands in the root span's self-time.
      uint64_t end_us = cfg_.tracer->now_us();
      auto tree = clients_[p.shard]->TakeRemoteTree(p.req_id);
      if (tree) {
        const telemetry::Span& rroot = tree->span(tree->root());
        const uint64_t started = trace->span(p.span).start_us;
        if (rroot.ended()) {
          end_us = std::clamp(rroot.end_us, started + 1, end_us);
        }
      }
      trace->EndSpan(p.span, end_us);
      if (tree) {
        if (cfg_.assembler) {
          remotes.push_back({static_cast<int64_t>(p.shard), std::move(tree)});
        } else {
          // No assembler: still deliver a distributed tree to whoever
          // reads the tracer ring, just without critical-path analysis.
          trace->Graft(p.span, *tree,
                       {{"shard", static_cast<int64_t>(p.shard)}});
        }
      }
    }
  }

  if (trace) {
    trace->SetAttr(trace->root(), "results",
                   static_cast<int64_t>(results.size()));
    cfg_.tracer->Finish(trace);  // ends the root; the tree is complete
    if (cfg_.assembler) {
      cfg_.assembler->Assemble(trace, remotes);
      ++stats_.assembled_traces;
      CATFISH_COUNT("shard.client.assembled_traces");
    }
  }

  for (const uint32_t shard : targets_) RefreshIfStale(shard);
  out.entries = std::move(results);
  return out;
}

std::vector<rtree::Entry> ShardedRTreeClient::NearestNeighbors(
    const geo::Point& point, uint32_t k) {
  ++stats_.knn_queries;
  CATFISH_COUNT("shard.client.knn");
  const uint64_t deadline_us =
      cfg_.op_budget_us != 0 ? NowMicros() + cfg_.op_budget_us : 0;
  std::vector<rtree::Entry> all;
  std::optional<ShardError> err;
  for (uint32_t shard = 0; shard < map_.shard_count(); ++shard) {
    clients_[shard]->SetOpDeadline(deadline_us);
    try {
      const auto part = clients_[shard]->NearestNeighbors(point, k);
      all.insert(all.end(), part.begin(), part.end());
    } catch (const ClientError& e) {
      ++stats_.shard_errors;
      if (!err) err = Wrap(shard, e);
    }
    RefreshIfStale(shard);
  }
  if (err) throw *err;
  std::sort(all.begin(), all.end(),
            [&point](const rtree::Entry& a, const rtree::Entry& b) {
              const double da = geo::MinDist2(a.mbr, point);
              const double db = geo::MinDist2(b.mbr, point);
              return da != db ? da < db : a.id < b.id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

bool ShardedRTreeClient::ExecuteRoutedWrite(
    const char* trace_name, uint32_t owner,
    const std::function<bool(RTreeClient&)>& op) {
  // Sampled writes get a two-level trace: root + one "subquery" span for
  // the owning shard, whose server tree (WAL stages included) is grafted
  // back just like a fan-out sub-query's.
  clients_[owner]->SetOpDeadline(
      cfg_.op_budget_us != 0 ? NowMicros() + cfg_.op_budget_us : 0);
  std::shared_ptr<telemetry::Trace> trace;
  auto span = telemetry::kInvalidSpan;
  if (cfg_.tracer) trace = cfg_.tracer->StartTrace(trace_name);
  if (trace) {
    span = trace->StartSpan(trace->root(), "subquery", cfg_.tracer->now_us());
    trace->SetAttr(span, "shard", owner);
    clients_[owner]->StageTraceContext(
        msg::TraceContext{trace->id(), span, 1});
  }
  const auto finish = [&](bool error) {
    if (!trace) return;
    if (error) {
      clients_[owner]->StageTraceContext(msg::TraceContext{});
      trace->SetAttr(span, "error", 1);
    }
    trace->EndSpan(span, cfg_.tracer->now_us());
    cfg_.tracer->Finish(trace);
    telemetry::RemoteTree rt{static_cast<int64_t>(owner),
                             clients_[owner]->TakeRemoteTree()};
    if (cfg_.assembler) {
      cfg_.assembler->Assemble(trace, {&rt, rt.tree ? size_t{1} : size_t{0}});
      ++stats_.assembled_traces;
    } else if (rt.tree) {
      trace->Graft(span, *rt.tree, {{"shard", rt.shard}});
    }
  };
  try {
    const bool ok = op(*clients_[owner]);
    finish(/*error=*/false);
    RefreshIfStale(owner);
    return ok;
  } catch (const ClientError& e) {
    finish(/*error=*/true);
    ++stats_.shard_errors;
    RefreshIfStale(owner);
    throw Wrap(owner, e);
  }
}

bool ShardedRTreeClient::Insert(const geo::Rect& rect, uint64_t id) {
  const uint32_t owner = map_.OwnerOf(rect);
  ++stats_.inserts;
  CATFISH_COUNT("shard.client.inserts");
  // Exactly-once lives below: the owning shard's client retries with the
  // original (client_gen, req_id); ownership is stable, so the write's
  // destination never moves between attempts.
  return ExecuteRoutedWrite("shard.insert", owner, [&](RTreeClient& c) {
    return c.Insert(rect, id);
  });
}

bool ShardedRTreeClient::Delete(const geo::Rect& rect, uint64_t id) {
  const uint32_t owner = map_.OwnerOf(rect);
  ++stats_.deletes;
  CATFISH_COUNT("shard.client.deletes");
  return ExecuteRoutedWrite("shard.delete", owner, [&](RTreeClient& c) {
    return c.Delete(rect, id);
  });
}

}  // namespace catfish::shard

#include "shard/host.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/clock.h"
#include "durable/checkpoint.h"
#include "msg/protocol.h"
#include "rtree/bulk_load.h"
#include "telemetry/metrics.h"

namespace catfish::shard {

ShardHost::ShardHost(rdma::Fabric& fabric, ShardHostConfig cfg)
    : fabric_(&fabric), cfg_(cfg) {
  if (cfg_.num_shards == 0) cfg_.num_shards = 1;
  if (cfg_.num_replicas > kMaxFollowers) cfg_.num_replicas = kMaxFollowers;
  // Replication is WAL shipping; there is no replicated-but-volatile mode.
  if (cfg_.num_replicas > 0) cfg_.durable = true;
  cfg_.server.durability = nullptr;  // managed per shard below
}

ShardHost::~ShardHost() { Stop(); }

void ShardHost::Load(std::span<const rtree::Entry> items) {
  if (loaded_) throw std::logic_error("ShardHost: Load called twice");
  loaded_ = true;

  ShardMap map = BuildGridMap(items, cfg_.num_shards);
  map.version = 1;
  if (map.slop < cfg_.min_slop) map.slop = cfg_.min_slop;
  auto buckets = PartitionItems(map, items);

  for (uint32_t i = 0; i < cfg_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = i;
    shard->node = fabric_->CreateNode(map.shards[i].node_name);
    shard->arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                                      cfg_.arena_chunks);
    auto loaded = rtree::BulkLoad(*shard->arena, buckets[i]);
    if (cfg_.durable) {
      // Bulk load bypasses the WAL; seed the checkpoint store with the
      // loaded tree so the first incarnation already serves
      // durably-backed state, then bring it up through the same
      // recovery path a restart uses.
      shard->wal_disk = std::make_shared<durable::MemLogStorage>();
      shard->ckpt_disk = std::make_shared<durable::MemCheckpointStore>();
      durable::CheckpointMeta meta;
      meta.applied_lsn = 0;
      meta.tree_size = loaded.size();
      meta.tree_height = loaded.height();
      meta.write_epoch = loaded.write_epoch();
      const auto seed = durable::EncodeCheckpoint(
          *shard->arena, durable::DedupTable(cfg_.durability.dedup_window),
          meta);
      shard->ckpt_disk->Write(seed);
      // Followers start from the same checkpoint image: bulk-loaded
      // state never travels through the log, so it must be seeded.
      for (uint32_t j = 0; j < cfg_.num_replicas; ++j) {
        auto rep = std::make_unique<Replica>();
        rep->shard = i;
        rep->idx = j;
        rep->node = fabric_->CreateNode(map.shards[i].node_name + "-r" +
                                        std::to_string(j));
        rep->wal_disk = std::make_shared<durable::MemLogStorage>();
        rep->ckpt_disk = std::make_shared<durable::MemCheckpointStore>();
        rep->ckpt_disk->Write(seed);
        rep->arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                                        cfg_.arena_chunks);
        rep->durability = std::make_unique<durable::DurabilityManager>(
            rep->wal_disk, rep->ckpt_disk, cfg_.durability);
        rep->tree = std::make_unique<rtree::RStarTree>(
            rep->durability->Recover(*rep->arena));
        shard->replicas.push_back(std::move(rep));
      }
      RecoverState(*shard);
    } else {
      shard->tree = std::make_unique<rtree::RStarTree>(std::move(loaded));
    }
    shards_.push_back(std::move(shard));
  }

  for (uint32_t i = 0; i < cfg_.num_shards; ++i) {
    Shard& s = *shards_[i];
    // Shipper before server: no write may Execute before the gate and
    // commit sink are installed.
    RewireReplication(s);
    StartServer(s);
    for (auto& rp : s.replicas) StartReplicaServer(s, *rp);
    map.shards[i].generation = s.node->generation();
    map.shards[i].arena_rkey = s.server->arena_mr().rkey;
    if (s.durability) map.shards[i].epoch = s.durability->epoch();
    for (auto& rp : s.replicas) {
      map.shards[i].followers.push_back(ReplicaInfo{
          rp->node->name(), rp->node->generation(),
          rp->server->arena_mr().rkey});
    }
  }
  {
    const std::scoped_lock lock(map_mu_);
    map_ = std::move(map);
  }
  published_version_.store(1, std::memory_order_relaxed);
  CATFISH_GAUGE_SET("shard.map.version", 1);
  CATFISH_GAUGE_SET("shard.host.shards", cfg_.num_shards);
  CATFISH_GAUGE_SET("shard.host.replicas",
                    static_cast<int64_t>(cfg_.num_replicas));
  CATFISH_GAUGE_SET("shard.host.fabric_nodes",
                    static_cast<int64_t>(fabric_->node_count()));

  if (cfg_.auto_failover) {
    failover_stop_.store(false, std::memory_order_release);
    failover_thread_ = std::thread([this] { FailoverLoop(); });
  }
}

void ShardHost::StartServer(Shard& s) {
  const std::scoped_lock lock(s.boot_mu);
  ServerConfig scfg = cfg_.server;
  scfg.durability = s.durability.get();
  scfg.map_version = &published_version_;
  if (!s.replicas.empty() && s.durability) {
    scfg.repl_role = static_cast<uint8_t>(msg::ReplRole::kPrimary);
    scfg.repl_epoch = &s.durability->epoch_cell();
    scfg.repl_durable_lsn = &s.durability->durable_lsn_cell();
  }
  s.server = std::make_unique<RTreeServer>(s.node, *s.tree, scfg);
  s.acceptor = std::make_unique<BootstrapAcceptor>(*s.server, *fabric_);
  s.acceptor->SetHelloExtension(s.id, [this] {
    const std::scoped_lock map_lock(map_mu_);
    return EncodeShardMap(map_);
  });
}

void ShardHost::StopServer(Shard& s) {
  std::unique_ptr<BootstrapAcceptor> acceptor;
  std::unique_ptr<RTreeServer> server;
  {
    const std::scoped_lock lock(s.boot_mu);
    acceptor = std::move(s.acceptor);
    server = std::move(s.server);
  }
  if (acceptor) acceptor->Stop();
  if (server) server->Stop();
}

void ShardHost::StartReplicaServer(Shard& s, Replica& r) {
  const std::scoped_lock lock(r.boot_mu);
  ServerConfig scfg = cfg_.server;
  // Followers never Execute client writes — mutations arrive only as
  // shipped WAL records through the applier — so the server gets no
  // durability hook (its monitor must not checkpoint under the applier).
  scfg.durability = nullptr;
  scfg.map_version = &published_version_;
  scfg.repl_role = static_cast<uint8_t>(msg::ReplRole::kFollower);
  scfg.repl_epoch = &r.durability->epoch_cell();
  scfg.repl_durable_lsn = &r.durability->durable_lsn_cell();
  r.server = std::make_unique<RTreeServer>(r.node, *r.tree, scfg);
  r.acceptor = std::make_unique<BootstrapAcceptor>(*r.server, *fabric_);
  r.acceptor->SetHelloExtension(s.id, [this] {
    const std::scoped_lock map_lock(map_mu_);
    return EncodeShardMap(map_);
  });
}

void ShardHost::StopReplicaServer(Replica& r) {
  std::unique_ptr<BootstrapAcceptor> acceptor;
  std::unique_ptr<RTreeServer> server;
  {
    const std::scoped_lock lock(r.boot_mu);
    acceptor = std::move(r.acceptor);
    server = std::move(r.server);
  }
  if (acceptor) acceptor->Stop();
  if (server) server->Stop();
}

void ShardHost::RecoverState(Shard& s) {
  s.tree.reset();
  s.arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                               cfg_.arena_chunks);
  s.durability = std::make_unique<durable::DurabilityManager>(
      s.wal_disk, s.ckpt_disk, cfg_.durability);
  s.tree =
      std::make_unique<rtree::RStarTree>(s.durability->Recover(*s.arena));
}

void ShardHost::AttachFollower(Shard& s, Replica& r) {
  r.channel = std::make_unique<durable::ReplChannel>(s.node, r.node);
  r.applier = std::make_unique<durable::FollowerApplier>(
      *r.durability, *r.tree, &r.channel->batch_rx(), &r.channel->ack_tx(),
      durable::FollowerApplierConfig{s.id});
  s.shipper->AddFollower(&r.channel->batch_tx(), &r.channel->ack_rx());
  r.applier->Start();
}

void ShardHost::RewireReplication(Shard& s) {
  if (s.shipper) {
    s.shipper->Stop();
    s.shipper.reset();
  }
  for (auto& rp : s.replicas) {
    if (rp->applier) {
      rp->applier->Stop();
      rp->applier.reset();
    }
    rp->channel.reset();
  }
  bool any_live = false;
  for (auto& rp : s.replicas) any_live |= !rp->dead;
  if (!any_live || !s.durability) return;
  durable::ReplicationShipperConfig rcfg = cfg_.replication;
  rcfg.shard = s.id;
  s.shipper = std::make_unique<durable::ReplicationShipper>(*s.durability,
                                                            rcfg);
  for (auto& rp : s.replicas) {
    if (!rp->dead) AttachFollower(s, *rp);
  }
  s.shipper->Start();
}

void ShardHost::RestartShard(uint32_t shard) {
  const std::scoped_lock repl_lock(repl_mu_);
  Shard& s = *shards_[shard];
  // Server first: joining the workers drains any in-flight write while
  // the shipper is still alive to ack it — stopping the shipper first
  // would tear the replication gate out from under a blocked Execute.
  // Then the rest of the replication plane quiesces before the node
  // dies, so no thread touches a dead QP.
  StopServer(s);
  if (s.shipper) {
    s.shipper->Stop();
    s.shipper.reset();
  }
  for (auto& rp : s.replicas) {
    if (rp->applier) {
      rp->applier->Stop();
      rp->applier.reset();
    }
    rp->channel.reset();
  }
  const std::string name = s.node->name();
  s.node = fabric_->RestartNode(name);
  if (cfg_.durable) RecoverState(s);
  RewireReplication(s);
  StartServer(s);
  Republish(shard);
  CATFISH_COUNT("shard.host.restarts");
}

void ShardHost::KillPrimary(uint32_t shard) {
  const std::scoped_lock repl_lock(repl_mu_);
  Shard& s = *shards_[shard];
  StopServer(s);
  if (s.shipper) {
    s.shipper->Stop();  // fences the gate: no in-flight write false-acks
    s.shipper.reset();
  }
  for (auto& rp : s.replicas) {
    if (rp->applier) {
      rp->applier->Stop();
      rp->applier.reset();
    }
    rp->channel.reset();
  }
  // Kill the fabric node: stale rkeys and QPNs die with it. Nothing
  // restarts — heartbeat silence is what trips the client watchdog.
  s.node = fabric_->RestartNode(s.node->name());
  s.primary_down_since_us.store(NowMicros(), std::memory_order_release);
  CATFISH_COUNT("shard.host.primary_kills");
}

uint32_t ShardHost::Promote(uint32_t shard) {
  const std::scoped_lock repl_lock(repl_mu_);
  Shard& s = *shards_[shard];
  uint32_t best = UINT32_MAX;
  uint64_t best_lsn = 0;
  for (uint32_t j = 0; j < s.replicas.size(); ++j) {
    Replica& r = *s.replicas[j];
    if (r.dead || !r.durability) continue;
    const uint64_t lsn = r.durability->durable_lsn();
    if (best == UINT32_MAX || lsn > best_lsn) {
      best = j;
      best_lsn = lsn;
    }
  }
  if (best == UINT32_MAX) return UINT32_MAX;

  // Quiesce the old plane (no-op after KillPrimary; on a planned
  // failover this is what demotes the still-live old primary).
  StopServer(s);
  if (s.shipper) {
    s.shipper->Stop();
    s.shipper.reset();
  }
  for (auto& rp : s.replicas) {
    if (rp->applier) {
      rp->applier->Stop();
      rp->applier.reset();
    }
    rp->channel.reset();
  }

  Replica& w = *s.replicas[best];
  StopReplicaServer(w);  // its role is changing; restarted as primary
  const uint64_t fence_from = std::max(
      {w.durability->epoch(), s.durability ? s.durability->epoch() : 0,
       map().shards[shard].epoch});
  // Swap the winner's whole stack into the primary slot; the old
  // primary's corpse parks in the replica slot, marked dead (its disks
  // are kept — a future rejoin path could resync it as a follower).
  std::swap(s.node, w.node);
  std::swap(s.arena, w.arena);
  std::swap(s.tree, w.tree);
  std::swap(s.wal_disk, w.wal_disk);
  std::swap(s.ckpt_disk, w.ckpt_disk);
  std::swap(s.durability, w.durability);
  w.dead = true;
  // Epoch fence: the new reign is strictly above anything the old
  // primary ever stamped, so its zombie's late batches bounce.
  s.durability->SetEpoch(fence_from + 1);
  RewireReplication(s);
  StartServer(s);
  s.primary_down_since_us.store(0, std::memory_order_release);
  Republish(shard);
  promotions_.fetch_add(1, std::memory_order_relaxed);
  CATFISH_COUNT("shard.host.promotions");
  return best;
}

void ShardHost::FailoverLoop() {
  while (!failover_stop_.load(std::memory_order_acquire)) {
    const uint64_t now = NowMicros();
    for (auto& sp : shards_) {
      const uint64_t down =
          sp->primary_down_since_us.load(std::memory_order_acquire);
      if (down != 0 && now - down >= cfg_.failover_grace_us) {
        Promote(sp->id);
      }
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(cfg_.failover_check_interval_us));
  }
}

void ShardHost::Republish(uint32_t shard) {
  Shard& s = *shards_[shard];
  const std::scoped_lock lock(map_mu_);
  ShardInfo& info = map_.shards[shard];
  info.node_name = s.node->name();
  info.generation = s.node->generation();
  info.arena_rkey = s.server->arena_mr().rkey;
  info.epoch = s.durability ? s.durability->epoch() : 0;
  info.followers.clear();
  for (auto& rp : s.replicas) {
    if (rp->dead || !rp->server) continue;
    info.followers.push_back(ReplicaInfo{
        rp->node->name(), rp->node->generation(),
        rp->server->arena_mr().rkey});
  }
  ++map_.version;
  published_version_.store(map_.version, std::memory_order_relaxed);
  CATFISH_GAUGE_SET("shard.map.version", map_.version);
}

std::shared_ptr<tcpkit::Stream> ShardHost::Dial(uint32_t shard) {
  Shard& s = *shards_[shard];
  const std::scoped_lock lock(s.boot_mu);
  if (!s.acceptor) {
    throw std::runtime_error("ShardHost: shard has no live acceptor");
  }
  return s.acceptor->Dial();
}

std::shared_ptr<tcpkit::Stream> ShardHost::DialReplica(uint32_t shard,
                                                       uint32_t replica) {
  Replica& r = *shards_[shard]->replicas[replica];
  const std::scoped_lock lock(r.boot_mu);
  if (!r.acceptor) {
    throw std::runtime_error("ShardHost: replica has no live acceptor");
  }
  return r.acceptor->Dial();
}

void ShardHost::Stop() {
  if (!failover_stop_.exchange(true, std::memory_order_acq_rel)) {
    if (failover_thread_.joinable()) failover_thread_.join();
  }
  for (auto& s : shards_) {
    if (!s) continue;
    StopServer(*s);
    for (auto& rp : s->replicas) StopReplicaServer(*rp);
    if (s->shipper) {
      s->shipper->Stop();
      s->shipper.reset();
    }
    for (auto& rp : s->replicas) {
      if (rp->applier) {
        rp->applier->Stop();
        rp->applier.reset();
      }
      rp->channel.reset();
    }
  }
}

ShardMap ShardHost::map() const {
  const std::scoped_lock lock(map_mu_);
  return map_;
}

uint64_t ShardHost::map_version() const {
  const std::scoped_lock lock(map_mu_);
  return map_.version;
}

}  // namespace catfish::shard

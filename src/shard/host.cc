#include "shard/host.h"

#include <stdexcept>

#include "durable/checkpoint.h"
#include "rtree/bulk_load.h"
#include "telemetry/metrics.h"

namespace catfish::shard {

ShardHost::ShardHost(rdma::Fabric& fabric, ShardHostConfig cfg)
    : fabric_(&fabric), cfg_(cfg) {
  if (cfg_.num_shards == 0) cfg_.num_shards = 1;
  cfg_.server.durability = nullptr;  // managed per shard below
}

ShardHost::~ShardHost() { Stop(); }

void ShardHost::Load(std::span<const rtree::Entry> items) {
  if (loaded_) throw std::logic_error("ShardHost: Load called twice");
  loaded_ = true;

  ShardMap map = BuildGridMap(items, cfg_.num_shards);
  map.version = 1;
  if (map.slop < cfg_.min_slop) map.slop = cfg_.min_slop;
  auto buckets = PartitionItems(map, items);

  for (uint32_t i = 0; i < cfg_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = i;
    shard->node = fabric_->CreateNode(map.shards[i].node_name);
    shard->arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                                      cfg_.arena_chunks);
    auto loaded = rtree::BulkLoad(*shard->arena, buckets[i]);
    if (cfg_.durable) {
      // Bulk load bypasses the WAL; seed the checkpoint store with the
      // loaded tree so the first incarnation already serves
      // durably-backed state, then bring it up through the same
      // recovery path a restart uses.
      shard->wal_disk = std::make_shared<durable::MemLogStorage>();
      shard->ckpt_disk = std::make_shared<durable::MemCheckpointStore>();
      durable::CheckpointMeta meta;
      meta.applied_lsn = 0;
      meta.tree_size = loaded.size();
      meta.tree_height = loaded.height();
      meta.write_epoch = loaded.write_epoch();
      shard->ckpt_disk->Write(durable::EncodeCheckpoint(
          *shard->arena, durable::DedupTable(cfg_.durability.dedup_window),
          meta));
      RecoverState(*shard);
    } else {
      shard->tree = std::make_unique<rtree::RStarTree>(std::move(loaded));
    }
    shards_.push_back(std::move(shard));
  }

  for (uint32_t i = 0; i < cfg_.num_shards; ++i) {
    Shard& s = *shards_[i];
    StartServer(s);
    map.shards[i].generation = s.node->generation();
    map.shards[i].arena_rkey = s.server->arena_mr().rkey;
  }
  {
    const std::scoped_lock lock(map_mu_);
    map_ = std::move(map);
  }
  published_version_.store(1, std::memory_order_relaxed);
  CATFISH_GAUGE_SET("shard.map.version", 1);
  CATFISH_GAUGE_SET("shard.host.shards", cfg_.num_shards);
  CATFISH_GAUGE_SET("shard.host.fabric_nodes",
                    static_cast<int64_t>(fabric_->node_count()));
}

void ShardHost::StartServer(Shard& s) {
  const std::scoped_lock lock(s.boot_mu);
  ServerConfig scfg = cfg_.server;
  scfg.durability = s.durability.get();
  scfg.map_version = &published_version_;
  s.server = std::make_unique<RTreeServer>(s.node, *s.tree, scfg);
  s.acceptor = std::make_unique<BootstrapAcceptor>(*s.server, *fabric_);
  s.acceptor->SetHelloExtension(s.id, [this] {
    const std::scoped_lock map_lock(map_mu_);
    return EncodeShardMap(map_);
  });
}

void ShardHost::StopServer(Shard& s) {
  std::unique_ptr<BootstrapAcceptor> acceptor;
  std::unique_ptr<RTreeServer> server;
  {
    const std::scoped_lock lock(s.boot_mu);
    acceptor = std::move(s.acceptor);
    server = std::move(s.server);
  }
  if (acceptor) acceptor->Stop();
  if (server) server->Stop();
}

void ShardHost::RecoverState(Shard& s) {
  s.tree.reset();
  s.arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                               cfg_.arena_chunks);
  s.durability = std::make_unique<durable::DurabilityManager>(
      s.wal_disk, s.ckpt_disk, cfg_.durability);
  s.tree =
      std::make_unique<rtree::RStarTree>(s.durability->Recover(*s.arena));
}

void ShardHost::RestartShard(uint32_t shard) {
  Shard& s = *shards_[shard];
  StopServer(s);
  const std::string name = s.node->name();
  s.node = fabric_->RestartNode(name);
  if (cfg_.durable) RecoverState(s);
  StartServer(s);
  Republish(shard);
  CATFISH_COUNT("shard.host.restarts");
}

void ShardHost::Republish(uint32_t shard) {
  Shard& s = *shards_[shard];
  const std::scoped_lock lock(map_mu_);
  map_.shards[shard].generation = s.node->generation();
  map_.shards[shard].arena_rkey = s.server->arena_mr().rkey;
  ++map_.version;
  published_version_.store(map_.version, std::memory_order_relaxed);
  CATFISH_GAUGE_SET("shard.map.version", map_.version);
}

std::shared_ptr<tcpkit::Stream> ShardHost::Dial(uint32_t shard) {
  Shard& s = *shards_[shard];
  const std::scoped_lock lock(s.boot_mu);
  if (!s.acceptor) {
    throw std::runtime_error("ShardHost: shard has no live acceptor");
  }
  return s.acceptor->Dial();
}

void ShardHost::Stop() {
  for (auto& s : shards_) {
    if (s) StopServer(*s);
  }
}

ShardMap ShardHost::map() const {
  const std::scoped_lock lock(map_mu_);
  return map_;
}

uint64_t ShardHost::map_version() const {
  const std::scoped_lock lock(map_mu_);
  return map_.version;
}

}  // namespace catfish::shard

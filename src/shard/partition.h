// Space partitioning for the sharded R-tree deployment.
//
// A ShardMap is the client-side routing table: a grid of cells over the
// dataset MBR, each cell owned by exactly one shard, plus the per-shard
// fabric identity (node name, incarnation generation, arena rkey) a
// client needs to dial and to recognize staleness. The cut positions are
// data quantiles of the object centers, so cells carry roughly equal
// object counts even under skew.
//
// Ownership rule (write routing): an object belongs to the shard owning
// the grid cell its *center* falls in — objects straddling a cut are not
// duplicated. Query rule (read routing): a range query must visit every
// shard owning a cell its rectangle touches; because an object's extent
// can hang over a cut by at most the maximum object edge, queries are
// expanded by `slop` (the max object half-edge) before intersecting the
// grid, keeping center-routing exact for bounded-size objects.
//
// The map travels inside the bootstrap server hello (catfish/bootstrap),
// so the codec is hardened the way every other wire decoder here is:
// bounded reads, typed rejection of truncation/corruption, and explicit
// format-version skew detection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geo/rect.h"
#include "rtree/node.h"

namespace catfish::shard {

/// A follower replica's read endpoint: enough identity for a client to
/// dial it and run one-sided offloaded reads against its arena.
struct ReplicaInfo {
  std::string node_name;
  uint64_t generation = 0;
  uint32_t arena_rkey = 0;

  bool operator==(const ReplicaInfo&) const = default;
};

/// Identity of one shard as published in the routing table. A client
/// whose connection to this shard observes a different generation knows
/// its map predates a restart and must be refreshed.
struct ShardInfo {
  std::string node_name;   ///< fabric node hosting the shard *primary*
  uint64_t generation = 0; ///< SimNode incarnation at publish time
  uint32_t arena_rkey = 0; ///< the shard's registered arena (offload path)
  /// Replication epoch of the current primary (format v2; 0 when the
  /// shard is unreplicated or the map came from a v1 peer). Bumped by
  /// every failover promotion, so a client can tell a promoted map from
  /// a merely-restarted one.
  uint64_t epoch = 0;
  /// Follower read endpoints (format v2; empty = no replicas).
  std::vector<ReplicaInfo> followers;

  bool operator==(const ShardInfo&) const = default;
};

/// The versioned routing table. Cells cover the whole plane (the first
/// and last row/column extend to infinity), so every rectangle has an
/// owner even outside the advertised bounds.
struct ShardMap {
  /// Publish version: bumped by every shard restart or reshard. A client
  /// holding version v and seeing v' > v in a hello must re-route.
  uint64_t version = 0;
  /// Dataset MBR the cuts were derived from (informational).
  geo::Rect bounds{0.0, 0.0, 1.0, 1.0};
  /// Interior cut positions, strictly ascending. cols = x_cuts+1.
  std::vector<double> x_cuts;
  std::vector<double> y_cuts;
  /// Row-major cell → shard index, rows() * cols() entries.
  std::vector<uint32_t> cells;
  std::vector<ShardInfo> shards;
  /// Query expansion: the maximum object half-extent per axis. A range
  /// query is widened by this before intersecting the grid so objects
  /// centered in a neighboring cell but overhanging the cut are found.
  double slop = 0.0;

  uint32_t cols() const noexcept {
    return static_cast<uint32_t>(x_cuts.size()) + 1;
  }
  uint32_t rows() const noexcept {
    return static_cast<uint32_t>(y_cuts.size()) + 1;
  }
  uint32_t shard_count() const noexcept {
    return static_cast<uint32_t>(shards.size());
  }

  /// Structural invariants the decoder enforces and builders must keep:
  /// sorted finite cuts, full cell table, in-range shard ids.
  bool Valid() const noexcept;

  /// Grid cell containing `p` (total: outer cells extend to infinity).
  uint32_t CellIndex(const geo::Point& p) const noexcept;
  /// The shard owning `r`'s center — where point ops route.
  uint32_t OwnerOf(const geo::Rect& r) const noexcept;
  /// Every shard a range query over `q` must visit, ascending, unique.
  /// The fan-out set: q is widened by `slop` per axis first.
  void QueryShards(const geo::Rect& q, std::vector<uint32_t>& out) const;

  bool operator==(const ShardMap&) const = default;
};

/// Typed decode outcome. Anything but kOk leaves the output untouched.
enum class MapDecodeStatus : uint8_t {
  kOk = 0,
  kTruncated,    ///< ran out of bytes mid-field
  kBadMagic,     ///< not a shard map at all
  kVersionSkew,  ///< well-formed header from an incompatible format
  kCorrupt,      ///< structural invariant violated (or trailing bytes)
};

const char* ToString(MapDecodeStatus s) noexcept;

inline constexpr uint32_t kShardMapMagic = 0x50414D53;  // "SMAP"
/// v2 adds per-shard epoch + follower list. The decoder still accepts
/// v1 frames (epoch 0, no followers), so a replicated client
/// interoperates with an unreplicated host mid-rollout.
inline constexpr uint16_t kShardMapFormatVersion = 2;
/// Decoder bounds: reject maps claiming absurd geometry before
/// allocating anything proportional to the claim.
inline constexpr uint32_t kMaxGridDim = 1024;
inline constexpr uint32_t kMaxShards = 4096;
inline constexpr uint32_t kMaxShardNameLen = 255;
inline constexpr uint32_t kMaxFollowers = 15;

std::vector<std::byte> EncodeShardMap(const ShardMap& map);
/// Bounded, total decoder: never over-reads, never throws; `out` is
/// written only on kOk.
MapDecodeStatus DecodeShardMap(std::span<const std::byte> payload,
                               ShardMap& out);

/// Builds the grid geometry for `num_shards` shards over `items`: a
/// near-square cols×rows grid with quantile cuts on object centers
/// (balanced counts), cells striped across shards, slop = max observed
/// object half-edge. ShardInfo entries are default-initialized — the
/// host publishing the map fills them. Empty input falls back to uniform
/// cuts over the unit square.
ShardMap BuildGridMap(std::span<const rtree::Entry> items,
                      uint32_t num_shards);

/// Splits `items` into per-shard buckets by OwnerOf (bulk-load input).
std::vector<std::vector<rtree::Entry>> PartitionItems(
    const ShardMap& map, std::span<const rtree::Entry> items);

}  // namespace catfish::shard

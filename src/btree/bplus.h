// B+-tree on the Catfish substrate (paper §VI).
//
// The paper positions Catfish as a framework for link-based data
// structures beyond the R-tree — naming the B+-tree explicitly. This
// module instantiates that claim: a B+-tree whose nodes live in the same
// chunked, RDMA-registered NodeArena with FaRM-style per-cache-line
// versions, so the same two access paths work unchanged:
//   * server-side operations under the writer lock (fast messaging), and
//   * client-side traversal over one-sided READs with optimistic
//     version validation (offloading; see remote_reader.h).
//
// Unlike an R-tree search, a B+-tree lookup follows a single root→leaf
// path, so there is no frontier to multi-issue (§IV-C notes exactly
// this); range scans instead pipeline along the leaf chain.
//
// Node layout (one chunk per node, 960 payload bytes):
//   u16 level; u16 count; u32 self; u32 next; u32 _pad;
//   Entry { u64 key; u64 value } × count   (59 max)
// Internal entries hold (separator key = smallest key of subtree,
// child chunk id); leaves hold the key→value pairs and chain through
// `next` in key order.
//
// Deletion is lazy (no rebalancing): entries are removed in place and
// underfull nodes persist. Lookups, scans and inserts stay correct; the
// structure is compacted by rebuild, matching common practice in
// RDMA-resident indexes where node addresses must stay stable for
// remote readers.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "rtree/arena.h"  // the structure-agnostic chunk arena

namespace catfish::btree {

using rtree::ChunkId;
using rtree::NodeArena;

inline constexpr ChunkId kRootChunk = 1;  // pinned, like the R-tree root
inline constexpr size_t kChunkSize = 1024;
inline constexpr size_t kHeaderBytes = 16;
inline constexpr size_t kPairBytes = 16;
inline constexpr size_t kMaxKeys =
    (rtree::PayloadCapacity(kChunkSize) - kHeaderBytes) / kPairBytes;
static_assert(kMaxKeys == 59);

inline constexpr ChunkId kNoLeaf = 0;  // chunk 0 is the meta chunk

struct KeyValue {
  uint64_t key = 0;
  uint64_t value = 0;
};

/// Decoded image of one B+-tree node.
struct BNodeData {
  uint32_t self = rtree::kInvalidChunk;
  uint16_t level = 0;   ///< 0 = leaf
  uint16_t count = 0;
  uint32_t next = kNoLeaf;  ///< next leaf in key order (leaves only)
  /// One spare slot: inserts overflow in memory to kMaxKeys+1 entries,
  /// then split before the node is stored (stored count <= kMaxKeys).
  KeyValue entries[kMaxKeys + 1];

  bool IsLeaf() const noexcept { return level == 0; }
  /// Index of the child to descend into for `key` (internal nodes).
  size_t ChildIndexFor(uint64_t key) const noexcept;
  /// Lowest index i with entries[i].key >= key (leaves).
  size_t LowerBound(uint64_t key) const noexcept;
};

size_t EncodeBNode(const BNodeData& node, std::span<std::byte> payload);
bool DecodeBNode(std::span<const std::byte> payload, BNodeData& out);

class BPlusTree {
 public:
  /// Creates an empty tree (meta + pinned root leaf) in a fresh arena.
  static BPlusTree Create(NodeArena& arena);

  BPlusTree(BPlusTree&& other) noexcept
      : arena_(other.arena_), size_(other.size_), height_(other.height_) {}
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree& operator=(BPlusTree&&) = delete;

  /// Inserts or overwrites.
  void Put(uint64_t key, uint64_t value);

  /// Removes `key`; false when absent. Lazy: no rebalancing.
  bool Erase(uint64_t key);

  /// Server-side lookup (optimistic versioned reads, safe vs writers).
  std::optional<uint64_t> Get(uint64_t key) const;

  /// Appends all pairs with lo <= key <= hi, in key order.
  size_t Scan(uint64_t lo, uint64_t hi, std::vector<KeyValue>& out) const;

  uint64_t size() const noexcept { return size_; }
  uint32_t height() const noexcept { return height_; }
  NodeArena& arena() noexcept { return *arena_; }

  /// Seqlock read of one node (shared with the remote reader's logic).
  uint64_t ReadNode(ChunkId id, BNodeData& out) const;

  /// Test support: key order, chain consistency, level monotonicity.
  void CheckInvariants() const;

 private:
  explicit BPlusTree(NodeArena& arena) : arena_(&arena) {}

  void LoadNode(ChunkId id, BNodeData& out) const;  // writer-side
  void StoreNode(const BNodeData& node);

  /// Descends to the leaf for `key`, recording the path.
  void FindLeafPath(uint64_t key, std::vector<ChunkId>& path) const;
  /// Inserts `kv` into the (loaded) node; splits upward as needed.
  void InsertIntoLeaf(std::vector<ChunkId>& path, KeyValue kv);
  void SplitNode(std::vector<ChunkId>& path, BNodeData& node);

  NodeArena* arena_;
  mutable std::mutex writer_mutex_;
  uint64_t size_ = 0;
  uint32_t height_ = 1;
};

}  // namespace catfish::btree

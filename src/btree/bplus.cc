#include "btree/bplus.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/bytes.h"
#include "rtree/layout.h"
#include "rtree/node.h"  // TreeMeta reuse for the meta chunk

namespace catfish::btree {

size_t BNodeData::ChildIndexFor(uint64_t key) const noexcept {
  assert(level > 0 && count > 0);
  // Entries hold (smallest key of subtree, child); descend into the last
  // entry whose separator is <= key, or the first when key underflows.
  size_t lo = 0;
  size_t hi = count;  // first index with entries[i].key > key
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (entries[mid].key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

size_t BNodeData::LowerBound(uint64_t key) const noexcept {
  size_t lo = 0;
  size_t hi = count;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (entries[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t EncodeBNode(const BNodeData& node, std::span<std::byte> payload) {
  assert(node.count <= kMaxKeys);
  const size_t need = kHeaderBytes + node.count * kPairBytes;
  assert(payload.size() >= need);
  StorePod(payload, 0, node.level);
  StorePod(payload, 2, node.count);
  StorePod(payload, 4, node.self);
  StorePod(payload, 8, node.next);
  StorePod(payload, 12, uint32_t{0});
  size_t off = kHeaderBytes;
  for (uint16_t i = 0; i < node.count; ++i) {
    StorePod(payload, off, node.entries[i].key);
    StorePod(payload, off + 8, node.entries[i].value);
    off += kPairBytes;
  }
  return need;
}

bool DecodeBNode(std::span<const std::byte> payload, BNodeData& out) {
  if (payload.size() < kHeaderBytes) return false;
  out.level = LoadPod<uint16_t>(payload, 0);
  out.count = LoadPod<uint16_t>(payload, 2);
  out.self = LoadPod<uint32_t>(payload, 4);
  out.next = LoadPod<uint32_t>(payload, 8);
  if (out.count > kMaxKeys) return false;
  if (payload.size() < kHeaderBytes + out.count * kPairBytes) return false;
  size_t off = kHeaderBytes;
  for (uint16_t i = 0; i < out.count; ++i) {
    out.entries[i].key = LoadPod<uint64_t>(payload, off);
    out.entries[i].value = LoadPod<uint64_t>(payload, off + 8);
    off += kPairBytes;
  }
  return true;
}

// ---------------------------------------------------------------------------

BPlusTree BPlusTree::Create(NodeArena& arena) {
  if (arena.chunk_size() != kChunkSize) {
    throw std::invalid_argument("BPlusTree: arena chunk size mismatch");
  }
  BPlusTree tree(arena);
  const ChunkId root = arena.Allocate();
  if (root != kRootChunk) {
    throw std::logic_error("BPlusTree::Create requires a fresh arena");
  }
  BNodeData empty;
  empty.self = kRootChunk;
  empty.level = 0;
  empty.count = 0;
  empty.next = kNoLeaf;
  tree.StoreNode(empty);
  return tree;
}

void BPlusTree::LoadNode(ChunkId id, BNodeData& out) const {
  std::byte payload[rtree::PayloadCapacity(kChunkSize)];
  rtree::GatherPayload(arena_->chunk(id), payload);
  const bool ok = DecodeBNode(payload, out);
  assert(ok && out.self == id);
  (void)ok;
}

void BPlusTree::StoreNode(const BNodeData& node) {
  std::byte payload[rtree::PayloadCapacity(kChunkSize)] = {};
  EncodeBNode(node, payload);
  auto chunk = arena_->chunk(node.self);
  rtree::BeginWrite(chunk);
  rtree::ScatterPayload(chunk, payload);
  rtree::EndWrite(chunk);
}

uint64_t BPlusTree::ReadNode(ChunkId id, BNodeData& out) const {
  std::byte payload[rtree::PayloadCapacity(kChunkSize)];
  const auto chunk = arena_->chunk(id);
  uint64_t retries = 0;
  for (;;) {
    const auto v1 = rtree::ValidateVersions(chunk);
    if (v1) {
      rtree::GatherPayload(chunk, payload);
      const auto v2 = rtree::ValidateVersions(chunk);
      if (v2 && *v2 == *v1 && DecodeBNode(payload, out) && out.self == id) {
        return retries;
      }
    }
    ++retries;
  }
}

void BPlusTree::FindLeafPath(uint64_t key,
                             std::vector<ChunkId>& path) const {
  path.clear();
  ChunkId cur = kRootChunk;
  BNodeData node;
  for (;;) {
    path.push_back(cur);
    LoadNode(cur, node);
    if (node.IsLeaf()) return;
    cur = static_cast<ChunkId>(node.entries[node.ChildIndexFor(key)].value);
  }
}

void BPlusTree::Put(uint64_t key, uint64_t value) {
  const std::scoped_lock lock(writer_mutex_);
  std::vector<ChunkId> path;
  FindLeafPath(key, path);
  BNodeData leaf;
  LoadNode(path.back(), leaf);

  const size_t pos = leaf.LowerBound(key);
  if (pos < leaf.count && leaf.entries[pos].key == key) {
    leaf.entries[pos].value = value;  // overwrite
    StoreNode(leaf);
    return;
  }
  InsertIntoLeaf(path, KeyValue{key, value});
  ++size_;
}

void BPlusTree::InsertIntoLeaf(std::vector<ChunkId>& path, KeyValue kv) {
  BNodeData node;
  LoadNode(path.back(), node);
  const size_t pos = node.LowerBound(kv.key);
  // Shift and insert.
  for (size_t i = node.count; i > pos; --i) {
    node.entries[i] = node.entries[i - 1];
  }
  node.entries[pos] = kv;
  ++node.count;
  if (node.count <= kMaxKeys) {
    StoreNode(node);
    // Keep ancestor separators correct when a new minimum arrives.
    if (pos == 0) {
      for (size_t i = path.size() - 1; i-- > 0;) {
        BNodeData parent;
        LoadNode(path[i], parent);
        const size_t ci = 0;  // only the leftmost chain can change
        if (static_cast<ChunkId>(parent.entries[ci].value) == path[i + 1] &&
            parent.entries[ci].key > kv.key) {
          parent.entries[ci].key = kv.key;
          StoreNode(parent);
        } else {
          break;
        }
      }
    }
    return;
  }
  SplitNode(path, node);
}

void BPlusTree::SplitNode(std::vector<ChunkId>& path, BNodeData& node) {
  // `node` holds kMaxKeys+1 entries in the in-memory spare slot; both
  // halves are legal sizes after the split.
  assert(node.count == kMaxKeys + 1);
  const size_t total = node.count;
  const size_t left_n = total / 2;
  const size_t right_n = total - left_n;

  const ChunkId right_id = arena_->Allocate();
  BNodeData right;
  right.self = right_id;
  right.level = node.level;
  right.count = static_cast<uint16_t>(right_n);
  std::copy(node.entries + left_n, node.entries + total, right.entries);
  right.next = node.next;

  node.count = static_cast<uint16_t>(left_n);
  if (node.IsLeaf()) node.next = right_id;

  const uint64_t right_min = right.entries[0].key;

  if (path.size() == 1) {
    // Root split: root stays pinned; move the left half out too.
    const ChunkId left_id = arena_->Allocate();
    BNodeData left = node;
    left.self = left_id;
    StoreNode(left);
    StoreNode(right);

    BNodeData root;
    root.self = kRootChunk;
    root.level = static_cast<uint16_t>(node.level + 1);
    root.count = 2;
    root.next = kNoLeaf;
    root.entries[0] = KeyValue{left.entries[0].key, left_id};
    root.entries[1] = KeyValue{right_min, right_id};
    StoreNode(root);
    height_ = root.level + 1u;
    return;
  }

  StoreNode(node);
  StoreNode(right);

  // Insert (right_min → right_id) into the parent.
  path.pop_back();
  BNodeData parent;
  LoadNode(path.back(), parent);
  const size_t pos = parent.LowerBound(right_min);
  for (size_t i = parent.count; i > pos; --i) {
    parent.entries[i] = parent.entries[i - 1];
  }
  parent.entries[pos] = KeyValue{right_min, right_id};
  ++parent.count;
  if (parent.count <= kMaxKeys) {
    StoreNode(parent);
    return;
  }
  SplitNode(path, parent);
}

bool BPlusTree::Erase(uint64_t key) {
  const std::scoped_lock lock(writer_mutex_);
  std::vector<ChunkId> path;
  FindLeafPath(key, path);
  BNodeData leaf;
  LoadNode(path.back(), leaf);
  const size_t pos = leaf.LowerBound(key);
  if (pos >= leaf.count || leaf.entries[pos].key != key) return false;
  for (size_t i = pos + 1; i < leaf.count; ++i) {
    leaf.entries[i - 1] = leaf.entries[i];
  }
  --leaf.count;
  StoreNode(leaf);
  --size_;
  return true;
}

std::optional<uint64_t> BPlusTree::Get(uint64_t key) const {
  BNodeData node;
  ChunkId cur = kRootChunk;
  for (;;) {
    ReadNode(cur, node);
    if (node.IsLeaf()) {
      const size_t pos = node.LowerBound(key);
      if (pos < node.count && node.entries[pos].key == key) {
        return node.entries[pos].value;
      }
      return std::nullopt;
    }
    cur = static_cast<ChunkId>(node.entries[node.ChildIndexFor(key)].value);
  }
}

size_t BPlusTree::Scan(uint64_t lo, uint64_t hi,
                       std::vector<KeyValue>& out) const {
  size_t found = 0;
  BNodeData node;
  ChunkId cur = kRootChunk;
  ReadNode(cur, node);
  while (!node.IsLeaf()) {
    cur = static_cast<ChunkId>(node.entries[node.ChildIndexFor(lo)].value);
    ReadNode(cur, node);
  }
  for (;;) {
    for (size_t i = node.LowerBound(lo); i < node.count; ++i) {
      if (node.entries[i].key > hi) return found;
      out.push_back(node.entries[i]);
      ++found;
    }
    if (node.next == kNoLeaf) return found;
    ReadNode(static_cast<ChunkId>(node.next), node);
  }
}

void BPlusTree::CheckInvariants() const {
  const std::scoped_lock lock(writer_mutex_);
  // Walk the tree: levels decrease by one, separators match subtree
  // minima, keys sorted; then walk the leaf chain verifying global order
  // and the size.
  struct Walker {
    const BPlusTree* tree;
    uint64_t leaf_entries = 0;

    // Returns the smallest key in the subtree (nullopt when empty).
    std::optional<uint64_t> Check(ChunkId id, uint16_t expected_level) {
      BNodeData node;
      tree->LoadNode(id, node);
      if (node.level != expected_level) {
        throw std::logic_error("BPlusTree invariant: level mismatch");
      }
      for (size_t i = 1; i < node.count; ++i) {
        if (node.entries[i - 1].key >= node.entries[i].key) {
          throw std::logic_error("BPlusTree invariant: keys out of order");
        }
      }
      if (node.IsLeaf()) {
        leaf_entries += node.count;
        if (node.count == 0) return std::nullopt;
        return node.entries[0].key;
      }
      if (node.count == 0) {
        throw std::logic_error("BPlusTree invariant: empty internal node");
      }
      std::optional<uint64_t> first;
      for (size_t i = 0; i < node.count; ++i) {
        const auto child_min =
            Check(static_cast<ChunkId>(node.entries[i].value),
                  static_cast<uint16_t>(expected_level - 1));
        if (child_min && *child_min < node.entries[i].key) {
          throw std::logic_error(
              "BPlusTree invariant: separator above subtree minimum");
        }
        if (i == 0) first = node.entries[i].key;
      }
      return first;
    }
  };
  Walker w{this};
  BNodeData root;
  LoadNode(kRootChunk, root);
  if (root.level + 1u != height_) {
    throw std::logic_error("BPlusTree invariant: height mismatch");
  }
  w.Check(kRootChunk, root.level);
  if (w.leaf_entries != size_) {
    throw std::logic_error("BPlusTree invariant: size mismatch");
  }
}

}  // namespace catfish::btree

// Client-side (offloaded) B+-tree access over one-sided reads.
//
// The Catfish offloading pattern (§III-B) applied to the B+-tree: the
// client fetches node chunks from the server's registered arena with
// RDMA READs, validates the per-cache-line versions, and walks the tree
// itself — no server CPU involvement. Because a B+-tree lookup is a
// single root→leaf path there is nothing to multi-issue (§IV-C calls
// this out); range scans pipeline along the leaf chain instead.
//
// The transport is injected as a fetch callback so the same reader runs
// over the rdmasim queue pair (examples/tests), over a real ibverbs QP,
// or over local memory (unit tests).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "btree/bplus.h"
#include "rtree/layout.h"

namespace catfish::btree {

/// Statistics of one remote traversal session.
struct RemoteReadStats {
  uint64_t reads = 0;
  uint64_t version_retries = 0;
};

class RemoteBTreeReader {
 public:
  /// `fetch` copies the raw chunk image of `id` into the destination
  /// buffer (exactly chunk_size bytes) — e.g. an RDMA READ at offset
  /// id * chunk_size of the registered arena.
  using FetchFn = std::function<void(ChunkId id, std::span<std::byte> dst)>;

  RemoteBTreeReader(FetchFn fetch, size_t chunk_size = kChunkSize,
                    uint64_t max_retries = 1'000'000)
      : fetch_(std::move(fetch)), buf_(chunk_size),
        max_retries_(max_retries) {}

  /// Offloaded point lookup.
  std::optional<uint64_t> Get(uint64_t key) {
    BNodeData node;
    ChunkId cur = kRootChunk;
    for (;;) {
      FetchNode(cur, node);
      if (node.IsLeaf()) {
        const size_t pos = node.LowerBound(key);
        if (pos < node.count && node.entries[pos].key == key) {
          return node.entries[pos].value;
        }
        return std::nullopt;
      }
      cur = static_cast<ChunkId>(node.entries[node.ChildIndexFor(key)].value);
    }
  }

  /// Offloaded range scan along the remote leaf chain.
  size_t Scan(uint64_t lo, uint64_t hi, std::vector<KeyValue>& out) {
    size_t found = 0;
    BNodeData node;
    FetchNode(kRootChunk, node);
    while (!node.IsLeaf()) {
      FetchNode(
          static_cast<ChunkId>(node.entries[node.ChildIndexFor(lo)].value),
          node);
    }
    for (;;) {
      for (size_t i = node.LowerBound(lo); i < node.count; ++i) {
        if (node.entries[i].key > hi) return found;
        out.push_back(node.entries[i]);
        ++found;
      }
      if (node.next == kNoLeaf) return found;
      FetchNode(static_cast<ChunkId>(node.next), node);
    }
  }

  const RemoteReadStats& stats() const noexcept { return stats_; }

 private:
  void FetchNode(ChunkId id, BNodeData& out) {
    for (uint64_t attempt = 0; attempt <= max_retries_; ++attempt) {
      fetch_(id, buf_);
      ++stats_.reads;
      // The same read-validate protocol as the R-tree offload path.
      if (rtree::ValidateVersions(buf_).has_value()) {
        std::byte payload[rtree::PayloadCapacity(kChunkSize)];
        rtree::GatherPayload(buf_, payload);
        if (DecodeBNode(payload, out) && out.self == id) return;
      }
      ++stats_.version_retries;
    }
    throw std::runtime_error("RemoteBTreeReader: node read livelock");
  }

  FetchFn fetch_;
  std::vector<std::byte> buf_;
  uint64_t max_retries_;
  RemoteReadStats stats_;
};

}  // namespace catfish::btree

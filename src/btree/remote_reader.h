// Client-side (offloaded) B+-tree access over one-sided reads.
//
// The Catfish offloading pattern (§III-B) applied to the B+-tree: the
// client fetches node chunks from the server's registered arena through
// the shared remote-access engine (src/remote), which validates the
// per-cache-line versions and bounds torn-read retries, and walks the
// tree itself — no server CPU involvement. Because a B+-tree lookup is a
// single root→leaf path there is nothing to multi-issue (§IV-C calls
// this out); range scans pipeline along the leaf chain instead.
//
// The transport is injected (remote/transport.h) so the same reader runs
// over the rdmasim queue pair (examples/tests), over a real ibverbs QP
// behind the same interface, or over local memory (unit tests).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "btree/bplus.h"
#include "remote/engine.h"
#include "rtree/layout.h"

namespace catfish::btree {

class RemoteBTreeReader {
 public:
  /// The transport must outlive the reader. Version-retry bounds come
  /// from `policy`; exhaustion surfaces as a FetchStatus, never a hang.
  explicit RemoteBTreeReader(remote::FetchTransport* transport,
                             size_t chunk_size = kChunkSize,
                             remote::RetryPolicy policy = {})
      : engine_(transport, "btree", policy), buf_(chunk_size) {}

  /// Offloaded point lookup. `out` is the value when the key exists,
  /// nullopt otherwise; only meaningful when the status is kOk.
  remote::FetchStatus Get(uint64_t key, std::optional<uint64_t>& out) {
    out.reset();
    BNodeData node;
    ChunkId cur = kRootChunk;
    for (;;) {
      if (const auto st = FetchNode(cur, node); st != remote::FetchStatus::kOk)
        return st;
      if (node.IsLeaf()) {
        const size_t pos = node.LowerBound(key);
        if (pos < node.count && node.entries[pos].key == key) {
          out = node.entries[pos].value;
        }
        return remote::FetchStatus::kOk;
      }
      cur = static_cast<ChunkId>(node.entries[node.ChildIndexFor(key)].value);
    }
  }

  /// Offloaded range scan along the remote leaf chain. Appends matches
  /// to `out`; partial results may be present on a non-kOk status.
  remote::FetchStatus Scan(uint64_t lo, uint64_t hi,
                           std::vector<KeyValue>& out) {
    BNodeData node;
    if (const auto st = FetchNode(kRootChunk, node);
        st != remote::FetchStatus::kOk)
      return st;
    while (!node.IsLeaf()) {
      if (const auto st = FetchNode(
              static_cast<ChunkId>(node.entries[node.ChildIndexFor(lo)].value),
              node);
          st != remote::FetchStatus::kOk)
        return st;
    }
    for (;;) {
      for (size_t i = node.LowerBound(lo); i < node.count; ++i) {
        if (node.entries[i].key > hi) return remote::FetchStatus::kOk;
        out.push_back(node.entries[i]);
      }
      if (node.next == kNoLeaf) return remote::FetchStatus::kOk;
      if (const auto st = FetchNode(static_cast<ChunkId>(node.next), node);
          st != remote::FetchStatus::kOk)
        return st;
    }
  }

  /// Shared-engine counters (reads, version_retries, retry_exhausted,
  /// ...); also exported as `remote.btree.*` metrics.
  const remote::EngineStats& stats() const noexcept {
    return engine_.stats();
  }

 private:
  remote::FetchStatus FetchNode(ChunkId id, BNodeData& out) {
    // The same read-validate protocol as the R-tree offload path, run by
    // the shared engine; this reader only decodes accepted images.
    return engine_.FetchOne(id, buf_, [&](std::span<const std::byte> image) {
      if (!rtree::ValidateVersions(image).has_value()) return false;
      std::byte payload[rtree::PayloadCapacity(kChunkSize)];
      rtree::GatherPayload(image, payload);
      return DecodeBNode(payload, out) && out.self == id;
    });
  }

  remote::VersionedFetchEngine engine_;
  std::vector<std::byte> buf_;
};

}  // namespace catfish::btree

// Execution-driven simulation of the *sharded* deployment: N shard
// servers on N simulated nodes, each a full copy of cluster_sim's
// single-server resource set (worker cores, writer lock, NIC, links),
// plus client-side routing over a real shard::ShardMap.
//
// Requests execute for real against the per-shard R-trees: a range
// query fans out to every shard the (slop-widened) rectangle touches,
// each sub-query is costed against that shard's resources exactly like
// cluster_sim costs a single-server request (fast messaging through the
// worker pool, offloading as pipelined READs), and the query completes
// when its last sub-query does — the join that makes fan-out queries
// tail-sensitive: query p99 over sub-query p99 is reported as tail
// amplification. Point writes route to the owning shard alone. Adaptive
// clients run one production AdaptiveController per (client, shard)
// pair, fed by per-shard utilization heartbeats, mirroring the real
// ShardedRTreeClient's per-connection controllers.
//
// An optional oracle checks every Nth query synchronously: the union of
// the per-shard traversal results is diffed against a brute-force scan
// of everything loaded or inserted so far (both evaluated at the same
// virtual instant, so concurrent inserts cannot fake a mismatch).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "catfish/adaptive.h"
#include "catfish/server.h"  // NotifyMode
#include "common/stats.h"
#include "des/resources.h"
#include "des/scheduler.h"
#include "model/cluster_sim.h"  // Scheme
#include "model/cost_model.h"
#include "rdmasim/fabric_profile.h"
#include "rtree/arena.h"
#include "rtree/rstar.h"
#include "shard/partition.h"
#include "telemetry/trace.h"
#include "workload/generators.h"

namespace catfish::model {

struct ShardedClusterConfig {
  /// Only the RDMA schemes apply (kFastMessaging / kRdmaOffloading /
  /// kCatfish); the TCP baselines have no sharded story here.
  Scheme scheme = Scheme::kCatfish;
  uint32_t num_shards = 4;
  /// Cores per shard node (each shard is its own server machine).
  unsigned server_cores = 28;
  NotifyMode notify = NotifyMode::kEventDriven;
  bool multi_issue = true;
  /// Doorbell batching on per-shard offload frontiers (see ClusterConfig).
  bool doorbell_batching = true;
  uint32_t doorbell_batch_limit = 16;
  AdaptiveConfig adaptive;
  CostModel costs;
  size_t num_clients = 256;
  uint64_t requests_per_client = 200;
  workload::RequestGen::Config workload;
  uint64_t seed = 1;
  double conflict_factor = 0.2;
  /// Chunks per shard arena.
  size_t arena_chunks = 1 << 15;
  /// Diff every Nth search against the brute-force oracle (0 = off).
  uint32_t oracle_every = 0;
  /// Build a distributed trace for every Nth search (0 = off): one
  /// "shard.search" root, a "subquery" span per contacted shard with
  /// net_down/dequeue/traverse/reply (fast) or offload_round children,
  /// all on the scheduler's virtual clock. The join's critical path is
  /// then computable exactly as for live traces.
  uint64_t trace_sample_every = 0;
  /// Sampled traces retained in ShardedRunResult::traces (oldest
  /// dropped beyond this).
  size_t trace_retain = 32;

  // --- replication (mirrors ShardHostConfig) ---
  /// Followers per shard: each is a replica machine (own NIC + links)
  /// that serves one-sided offloaded reads and must durably apply a
  /// write before the semi-sync gate releases it.
  uint32_t num_replicas = 0;
  /// Followers that must ack a write before it completes (clamped to
  /// num_replicas; 0 = asynchronous shipping, writes never wait).
  uint32_t ack_followers = 1;
  /// Fraction of offloaded sub-queries routed to a follower when the
  /// shard has replicas (round-robin over them); the rest stay on the
  /// primary. 1.0 = all reads offloaded to followers.
  double follower_read_fraction = 1.0;
  /// Virtual-time kill schedule: at `at_us` the primary of `shard`
  /// dies. Writes to it park until detection + promotion elapse;
  /// offloaded reads keep flowing against the surviving followers.
  struct KillEvent {
    double at_us = 0.0;
    uint32_t shard = 0;
  };
  std::vector<KillEvent> kill_schedule;
  /// Failover decomposition (virtual time): watchdog detection, then
  /// promotion + republish, before the shard accepts writes again.
  double failover_detect_us = 30'000.0;
  double failover_promote_us = 2'000.0;

  // --- gray failure & hedging (bench_overload) ---
  /// Degraded node: fast-path service time on this shard is multiplied
  /// by `slow_factor` (-1 = no slow shard). The shard keeps answering —
  /// heartbeats flow, nothing times out — it is just slower than its
  /// peers, which the fan-out join turns into query-level tail latency.
  int slow_shard = -1;
  double slow_factor = 1.0;
  /// Hedged fan-out: a fast sub-query that has not joined after the
  /// hedge delay is re-issued as an offloaded read against one of the
  /// shard's followers (needs num_replicas > 0); the first completion
  /// wins and the loser is suppressed — its resources still burn, which
  /// is exactly the duplicate-work overhead hedges_wasted measures.
  bool hedge = false;
  /// Fixed hedge delay; 0 = adaptive (p95 of sub-query latencies
  /// observed so far, with an RTT-derived floor until warmed up) —
  /// the same percentile rule the live ShardedRTreeClient applies.
  uint64_t hedge_delay_us = 0;
};

struct ShardedRunResult {
  double duration_us = 0.0;
  uint64_t completed = 0;
  double throughput_kops = 0.0;
  LogHistogram latency_us;
  LogHistogram search_latency_us;
  LogHistogram insert_latency_us;
  /// Latency of individual per-shard sub-queries (a query of width w
  /// contributes w samples here and one to search_latency_us).
  LogHistogram subquery_latency_us;
  /// Shards touched per search.
  LogHistogram fanout_width;
  double mean_fanout = 0.0;
  /// search p99 / sub-query p99 — the fan-out join's tail cost.
  double tail_amplification = 0.0;
  double mean_shard_cpu_util = 0.0;
  uint64_t searches = 0;
  uint64_t fast_subqueries = 0;
  uint64_t offload_subqueries = 0;
  uint64_t inserts = 0;
  uint64_t rdma_reads = 0;
  uint64_t version_retries = 0;
  /// Issue doorbells / reap passes, as in RunResult.
  uint64_t doorbells = 0;
  uint64_t polls = 0;
  uint64_t mode_switches = 0;
  uint64_t oracle_checks = 0;
  uint64_t oracle_mismatches = 0;
  /// Replication: writes that waited on the semi-sync gate, offloaded
  /// sub-queries a follower served, primaries failed over, and writes
  /// parked while their shard's primary was dead.
  uint64_t replicated_writes = 0;
  uint64_t follower_reads = 0;
  uint64_t failovers = 0;
  uint64_t stalled_writes = 0;
  /// Hedging: stragglers re-issued against followers, hedges that
  /// answered first, hedges the primary beat (pure duplicate work).
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;
  uint64_t hedges_wasted = 0;
  /// Added write latency from the semi-sync gate (local durability →
  /// quorum follower ack).
  LogHistogram repl_ack_us;
  /// Park time of writes caught by a dead primary (detection +
  /// promotion remainder at arrival).
  LogHistogram write_stall_us;
  /// Sampled distributed traces (virtual-clock timestamps), oldest
  /// first; see ShardedClusterConfig::trace_sample_every.
  std::vector<std::shared_ptr<telemetry::Trace>> traces;
};

class ShardedClusterSim {
 public:
  /// Builds the shard map over `items`, partitions them by center
  /// ownership, and bulk-loads one R-tree per shard.
  ShardedClusterSim(std::span<const rtree::Entry> items,
                    ShardedClusterConfig cfg);
  ~ShardedClusterSim();

  ShardedRunResult Run();

  const shard::ShardMap& map() const noexcept { return map_; }

 private:
  /// One follower replica machine: the resources a one-sided read (NIC
  /// + links) and a shipped-record apply (single applier core) contend
  /// on. No worker pool — followers never serve two-sided requests.
  struct ReplicaRes {
    std::unique_ptr<des::CpuPool> nic;
    std::unique_ptr<des::CpuPool> applier;
    std::unique_ptr<des::Link> up;
    std::unique_ptr<des::Link> down;
  };

  /// One shard server = one simulated machine's contended resources.
  struct ShardRes {
    std::unique_ptr<rtree::NodeArena> arena;
    std::unique_ptr<rtree::RStarTree> tree;
    std::unique_ptr<des::CpuPool> cpu;
    std::unique_ptr<des::CpuPool> writer;
    std::unique_ptr<des::CpuPool> nic;
    std::unique_ptr<des::Link> up;
    std::unique_ptr<des::Link> down;
    double insert_service_cum_us = 0.0;
    des::UtilizationWindow hb_window;
    /// Replication state (empty when num_replicas == 0). Promotion
    /// consumes a follower: `live_replicas` shrinks but the ReplicaRes
    /// objects stay alive so in-flight chains on them stay valid.
    std::vector<std::unique_ptr<ReplicaRes>> replicas;
    uint32_t live_replicas = 0;
    bool primary_down = false;
    double primary_up_at = 0.0;  ///< when writes flow again after a kill
    uint32_t read_rr = 0;        ///< follower read round-robin cursor
  };

  struct Client {
    size_t index = 0;
    workload::RequestGen gen;
    Xoshiro256 rng;
    /// One controller per shard connection (as in ShardedRTreeClient).
    std::vector<AdaptiveController> ctrl;
    uint64_t remaining = 0;

    Client(size_t i, const workload::RequestGen::Config& wcfg,
           uint64_t seed)
        : index(i), gen(wcfg, seed), rng(seed + 0x51ed2701u) {}
  };

  /// Join state for one fanned-out search.
  struct Fanout {
    Client* client = nullptr;
    uint32_t remaining = 0;
    double t0 = 0.0;
    /// Set when this search is trace-sampled; finished and retained
    /// when the last sub-query joins.
    std::shared_ptr<telemetry::Trace> trace;
  };

  /// Per-sub-query trace state: the subquery span plus the currently
  /// open stage child. The sim is single-threaded (virtual time), so
  /// plain mutation is safe.
  struct SubTrace {
    std::shared_ptr<telemetry::Trace> trace;
    telemetry::SpanId span = telemetry::kInvalidSpan;
    telemetry::SpanId open = telemetry::kInvalidSpan;
  };

  void StartNextRequest(Client& c);
  void StartSearch(Client& c, const geo::Rect& rect);
  void SubqueryFast(Client& c, uint32_t shard, const geo::Rect& rect,
                    std::shared_ptr<Fanout> join, double issue_delay,
                    std::shared_ptr<SubTrace> st);
  void SubqueryOffloaded(Client& c, uint32_t shard, const geo::Rect& rect,
                         std::shared_ptr<Fanout> join, double issue_delay,
                         std::shared_ptr<SubTrace> st);
  /// `replica` < 0 reads the primary's arena; otherwise the follower's
  /// (same tree geometry — replication keeps them in lockstep here).
  /// `on_done` overrides the default SubqueryDone join (hedge chains
  /// must resolve through their first-result-wins gate instead).
  void OffloadRound(Client& c, uint32_t shard, int replica,
                    std::shared_ptr<rtree::TraversalTrace> trace,
                    size_t level, std::shared_ptr<Fanout> join,
                    std::shared_ptr<SubTrace> st,
                    std::function<void()> on_done = nullptr);
  /// Current hedge delay: the fixed knob, or the adaptive percentile.
  double HedgeDelayUs() const noexcept;
  /// Ships one committed record to every live follower and runs `done`
  /// once `ack_followers` of them have durably applied it (immediately
  /// when the quorum is 0).
  void ReplicateWrite(ShardRes& s, const std::function<void()>& done);
  void SubqueryDone(std::shared_ptr<Fanout> join,
                    const std::shared_ptr<SubTrace>& st);
  /// Ends the open stage child (if any) and starts `next` (unless
  /// null) under the subquery span, at the current virtual time.
  void TraceStage(const std::shared_ptr<SubTrace>& st, const char* next);
  void ExecInsert(Client& c, const workload::Request& req);
  void CompleteRequest(Client& c, workload::OpType op, double t0);
  void OracleCheck(const geo::Rect& rect);
  void ScheduleHeartbeat();
  double PollingPickupUs() const noexcept;
  double ReadRetryProbability(const ShardRes& s) const noexcept;

  ShardedClusterConfig cfg_;
  rdma::FabricProfile fabric_;
  des::Scheduler sched_;
  shard::ShardMap map_;
  std::vector<std::unique_ptr<ShardRes>> shards_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Everything currently stored, for the brute-force oracle (bulk-load
  /// snapshot + inserts applied so far, maintained at apply time).
  std::vector<rtree::Entry> oracle_items_;
  ShardedRunResult result_;
  uint64_t outstanding_ = 0;
  uint64_t searches_started_ = 0;
  uint64_t next_trace_id_ = 1;
  std::vector<uint32_t> fanout_scratch_;
};

}  // namespace catfish::model

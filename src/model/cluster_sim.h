// Execution-driven cluster simulation of the paper's 9-node testbed.
//
// Reproduces the evaluation cluster (§V): one server (28 cores, one NIC)
// and up to 256 closed-loop clients, connected by one of the three
// fabrics. R-tree operations execute for real against the real tree —
// the traversal trace decides how many nodes each search touches, how
// many results flow back, and when inserts land — while CPU time, NIC
// message processing and link bandwidth are charged to contended virtual
// resources:
//
//   client ──down link──► server NIC ──► worker CPU pool ─┐
//      ▲                                  (or writer lock) │
//      └──────────── up link ◄── server NIC ◄──────────────┘
//
// Offloaded searches bypass the worker pool entirely: each node fetch is
// a READ served by the NIC + links only. The adaptive scheme runs the
// production AdaptiveController against virtual heartbeats computed from
// the worker pool's real utilization window — Algorithm 1 unmodified.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "catfish/adaptive.h"
#include "catfish/breaker.h"
#include "catfish/server.h"   // NotifyMode
#include "common/stats.h"
#include "des/resources.h"
#include "des/scheduler.h"
#include "model/cost_model.h"
#include "rdmasim/fabric_profile.h"
#include "rtree/rstar.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "workload/generators.h"

namespace catfish::model {

/// The five compared systems of §V.
enum class Scheme : uint8_t {
  kTcp1G,           ///< socket R-tree on 1 GbE
  kTcp40G,          ///< socket R-tree on 40 GbE
  kFastMessaging,   ///< FaRM-style RDMA WRITE messaging (baseline)
  kRdmaOffloading,  ///< FaRM-style one-sided READ traversal (baseline)
  kCatfish,         ///< adaptive + event-driven + multi-issue
};

const char* SchemeName(Scheme s);

struct ClusterConfig {
  Scheme scheme = Scheme::kCatfish;
  unsigned server_cores = 28;
  /// Fast-messaging notification mode. The Catfish scheme is always
  /// event-driven (§IV-B); the FaRM baseline polls.
  NotifyMode notify = NotifyMode::kEventDriven;
  /// Multi-issue for offloaded traversals. Catfish: on; baseline: off.
  bool multi_issue = true;
  /// Doorbell batching on the offload issue path: stage a round's READ
  /// WRs (verbs_stage_us each) and ring one doorbell per chain
  /// (verbs_post_us), with coalesced completion reaping. Catfish: on;
  /// the FaRM-style baselines pay per-WR doorbells.
  bool doorbell_batching = true;
  /// Max WRs per doorbell chain (0 = a whole round in one chain).
  uint32_t doorbell_batch_limit = 16;
  AdaptiveConfig adaptive;
  CostModel costs;
  size_t num_clients = 32;
  uint64_t requests_per_client = 1000;
  workload::RequestGen::Config workload;
  uint64_t seed = 1;
  /// Scales the modeled probability that an offloaded node read races a
  /// concurrent insert and must retry (see DESIGN.md §5).
  double conflict_factor = 0.2;
  /// When set, the sim drives this sampler on *virtual* time: one
  /// Tick per `sampler->config().window_us` simulated microseconds plus
  /// a final flush, so --timeline-json gets the same window shape a
  /// live run would produce. The sim does not reset or re-baseline it.
  telemetry::MetricsSampler* sampler = nullptr;
  /// Build a span tree for every Nth search (0 = off): a "sim.search"
  /// root with net_down/dequeue/traverse/reply stage children on the
  /// fast path, or per-level offload_round children when offloaded —
  /// all on the scheduler's virtual clock, same stage names as the
  /// sharded sim's sub-queries.
  uint64_t trace_sample_every = 0;
  /// Sampled traces retained in RunResult::traces (oldest dropped).
  size_t trace_retain = 32;

  /// Overload model (bench_overload). The live server's admission gauge
  /// is dequeue latency; the DES approximates it with the worker pool's
  /// queue *length* at arrival (same signal, measured in jobs instead
  /// of microseconds). A shed arrival is turned around at the NIC — the
  /// whole point of admission control is that refusing costs no worker
  /// CPU, while an unshedded stale request burns a full service time
  /// producing an answer nobody can use.
  struct OverloadModel {
    /// Queue-limit shedding: arrivals that find this many jobs already
    /// queued at the worker pool are refused (0 disables admission).
    size_t max_queue = 0;
    /// Per-op deadline: requests expired on arrival are dropped at the
    /// server (no traversal), and completions past it count toward
    /// throughput but not goodput. 0 = none.
    uint64_t deadline_us = 0;
    /// Retry-after hint carried by modeled shed replies (floors the
    /// breaker's open window, like the live kOverloaded reply).
    uint32_t retry_after_us = 500;
    /// Per-client circuit breaker, the production state machine run on
    /// virtual time: a shed reply is OnFailure, a completion OnSuccess,
    /// and a client whose breaker is open parks until the window ends
    /// instead of hammering the saturated server.
    BreakerConfig breaker;
  };
  OverloadModel overload;
};

struct RunResult {
  double duration_us = 0.0;
  uint64_t completed = 0;
  double throughput_kops = 0.0;
  LogHistogram latency_us;         ///< all operations
  LogHistogram search_latency_us;
  LogHistogram insert_latency_us;
  /// Per-path search latency: server-traversed (fast messaging / TCP)
  /// vs client-traversed (offloaded) — what Fig 10/12's adaptive story
  /// is about, split so the JSON export can show both distributions.
  LogHistogram fast_latency_us;
  LogHistogram offload_latency_us;
  double server_cpu_util = 0.0;    ///< mean worker utilization over run
  double server_tx_gbps = 0.0;
  double server_rx_gbps = 0.0;
  uint64_t fast_searches = 0;
  uint64_t offloaded_searches = 0;
  uint64_t inserts = 0;
  uint64_t rdma_reads = 0;
  uint64_t version_retries = 0;
  /// Issue doorbells rung / completion reap passes on the offload path
  /// (plus request-post doorbells on the messaging path). With batching
  /// on, doorbells/op and polls/op drop while rdma_reads/op is
  /// unchanged — the invariant the fig08 bench asserts.
  uint64_t doorbells = 0;
  uint64_t polls = 0;
  /// Summed over every client's AdaptiveController (Catfish scheme only).
  uint64_t mode_switches = 0;
  uint64_t adaptive_escalations = 0;
  /// Overload accounting: completions inside the deadline (== completed
  /// when no deadline is set), requests refused by admission control,
  /// requests the server dropped as already-expired, completions past
  /// the deadline, and breaker transitions/parks across all clients.
  uint64_t goodput = 0;
  uint64_t sheds = 0;
  uint64_t deadline_drops = 0;
  uint64_t deadline_misses = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_waits = 0;
  /// Sampled search traces (virtual-clock timestamps), oldest first;
  /// see ClusterConfig::trace_sample_every.
  std::vector<std::shared_ptr<telemetry::Trace>> traces;
};

class ClusterSim {
 public:
  /// `tree` is mutated by insert workloads; snapshot/rebuild it between
  /// runs that must start from the same dataset.
  ClusterSim(rtree::RStarTree& tree, ClusterConfig cfg);

  /// Runs every client to completion and returns aggregate results.
  RunResult Run();

 private:
  struct Client {
    size_t index = 0;
    workload::RequestGen gen;
    AdaptiveController ctrl;
    Xoshiro256 rng;
    uint64_t remaining = 0;
    /// Production breaker state machine on virtual time (overload model).
    CircuitBreaker breaker;

    Client(size_t i, const workload::RequestGen::Config& wcfg,
           const AdaptiveConfig& acfg, const BreakerConfig& bcfg,
           uint64_t seed)
        : index(i), gen(wcfg, seed), ctrl(acfg, seed ^ 0x9e3779b9u, i),
          rng(seed + 0x51ed2701u), breaker(bcfg, seed ^ (i << 1)) {}
  };

  bool IsTcp() const noexcept {
    return cfg_.scheme == Scheme::kTcp1G || cfg_.scheme == Scheme::kTcp40G;
  }

  /// Per-request trace state: the root span plus the currently open
  /// stage child (the sim is single-threaded on virtual time, so plain
  /// mutation is safe). Null end-to-end when the request is unsampled.
  struct SubTrace {
    std::shared_ptr<telemetry::Trace> trace;
    telemetry::SpanId span = telemetry::kInvalidSpan;
    telemetry::SpanId open = telemetry::kInvalidSpan;
  };

  void StartNextRequest(Client& c);
  /// Fast-messaging / TCP request through the server worker pool.
  void ExecViaServer(Client& c, const workload::Request& req, double t0,
                     std::shared_ptr<SubTrace> st);
  /// One-sided READ traversal on the client.
  void ExecOffloaded(Client& c, const geo::Rect& rect, double t0,
                     std::shared_ptr<SubTrace> st);
  void OffloadRound(Client& c, std::shared_ptr<rtree::TraversalTrace> trace,
                    size_t level, double t0, std::shared_ptr<SubTrace> st);
  void CompleteRequest(Client& c, workload::OpType op, double t0,
                       bool offloaded = false,
                       const std::shared_ptr<SubTrace>& st = nullptr);
  /// A shed/expired request was refused by the server: feed the
  /// client's breaker and move on (a shed is never a completion).
  void CompleteShed(Client& c, bool expired,
                    const std::shared_ptr<SubTrace>& st);
  /// Ends the open stage child (if any) and starts `next` (unless null)
  /// under the root span, at the current virtual time.
  void TraceStage(const std::shared_ptr<SubTrace>& st, const char* next);
  void ScheduleHeartbeat();
  void ScheduleSample();
  double PollingPickupUs() const noexcept;
  /// Modeled probability that one offloaded node read hits a concurrent
  /// write and retries (paper §III-B / Fig 12 degradation).
  double ReadRetryProbability() const noexcept;

  rtree::RStarTree* tree_;
  ClusterConfig cfg_;
  rdma::FabricProfile fabric_;

  des::Scheduler sched_;
  std::unique_ptr<des::CpuPool> cpu_;      ///< server worker cores
  std::unique_ptr<des::CpuPool> writer_;   ///< the tree writer lock
  std::unique_ptr<des::CpuPool> nic_;      ///< server NIC message engine
  std::unique_ptr<des::Link> up_;          ///< server → clients
  std::unique_ptr<des::Link> down_;        ///< clients → server

  std::vector<std::unique_ptr<Client>> clients_;
  RunResult result_;
  uint64_t outstanding_ = 0;
  uint64_t searches_started_ = 0;
  uint64_t next_trace_id_ = 1;
  double insert_service_cum_us_ = 0.0;
  des::UtilizationWindow hb_window_;
};

}  // namespace catfish::model

// Calibrated cost constants for the execution-driven cluster simulation.
//
// The discrete-event benchmarks execute real R-tree traversals on the
// real tree and charge these virtual costs for CPU and wire resources.
// The constants are calibrated so the simulated testbed lands in the
// operating regimes the paper reports (e.g. a 1e-5-scale search costs
// ~50 µs of server CPU, giving the paper's ~150 µs event-driven latency
// at 80 clients in Fig 7, and its ~1 Gbps saturation point in Fig 2).
// Absolute values are approximations of the authors' 2×14-core Broadwell
// testbed; the benchmark suite validates *shapes*, not absolute numbers.
#pragma once

#include <cstddef>

namespace catfish::model {

struct CostModel {
  // --- server CPU (worker pool) ---
  /// Fixed per-request dispatch: ring parse, response setup, locking.
  double request_dispatch_us = 5.0;
  /// Per R-tree node processed during a server-side search (includes
  /// lock acquisition, cache misses on a cold 100 MB arena, intersection
  /// tests).
  double per_node_visit_us = 4.0;
  /// Per matching entry copied into the response.
  double per_result_us = 0.03;
  /// One R* insert under the tree writer lock (choose-subtree descent,
  /// MBR updates, amortized splits). Serialized by the writer lock.
  double per_insert_us = 20.0;
  /// Kernel TCP stack cost per message, charged on each host it crosses.
  double tcp_kernel_us = 2.5;

  // --- client CPU (uncontended; the paper's clients are lightly loaded) ---
  /// Posting a verb and reaping its completion — the doorbell MMIO plus
  /// the NIC wakeup. Paid once per WR without doorbell batching, once
  /// per flushed chain with it.
  double verbs_post_us = 0.2;
  /// Staging one *additional* WR onto an open doorbell chain: building
  /// the WQE, no MMIO. A chain of m WRs costs
  /// verbs_post_us + (m-1) * verbs_stage_us of client CPU; the gap to
  /// m * verbs_post_us is the issue-side batching win.
  double verbs_stage_us = 0.05;
  /// Reaping a CQE on its own poll pass. A completion that rides an
  /// earlier completion's PollMany drain (coalesced reaping) skips
  /// this — the reap-side batching win.
  double verbs_reap_us = 0.1;
  /// Client-side processing of one fetched node while offloading:
  /// version validation, decode, intersection tests.
  double client_node_us = 0.6;

  // --- server NIC (message-rate limits of the ConnectX-5) ---
  /// NIC processing per one-sided READ served (inbound request + PCIe
  /// DMA + outbound response). ~2.5 M reads/s, the regime in which the
  /// paper's offloading throughput plateaus well below Catfish's.
  double nic_read_op_us = 0.4;
  /// NIC processing per WRITE handled (either direction).
  double nic_write_op_us = 0.06;

  // --- polling-mode pickup penalty (Fig 7) ---
  /// With C polling connections on K cores, a request waits
  /// poll_quantum_us * C^2 / K before its thread is scheduled (empirical
  /// superlinear oversubscription penalty; see DESIGN.md).
  double poll_quantum_us = 1.0;

  // --- wire sizes (payload + framing) ---
  size_t search_request_bytes = 76;   ///< 40 payload + ring framing
  size_t response_base_bytes = 40;    ///< segment header + framing
  size_t per_result_bytes = 40;       ///< one Entry on the wire
  size_t insert_request_bytes = 84;
  size_t ack_bytes = 37;
  size_t read_request_bytes = 30;     ///< one-sided READ request packet
  size_t read_response_overhead_bytes = 30;  ///< per-chunk framing
  size_t max_segment_payload_bytes = 128 * 1024;  ///< ring/2 (256 KB ring)

  // --- replication (WAL log shipping to followers) ---
  /// Follower-side cost per shipped record: WAL append + tree apply +
  /// dedup bookkeeping (cheaper than a primary insert — no R* descent
  /// heuristics re-run, the split decisions replay deterministically).
  double follower_apply_us = 8.0;
  /// One shipped record on the wire: 57-byte frame + batch header share
  /// + ring framing (single-record batch; batching amortizes the rest).
  size_t repl_record_bytes = 91;
  /// A follower's durable-LSN ack frame (33 bytes + ring framing).
  size_t repl_ack_bytes = 37;
};

}  // namespace catfish::model

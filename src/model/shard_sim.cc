#include "model/shard_sim.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "rtree/bulk_load.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::model {

ShardedClusterSim::ShardedClusterSim(std::span<const rtree::Entry> items,
                                     ShardedClusterConfig cfg)
    : cfg_(cfg), fabric_(rdma::FabricProfile::InfiniBand100G()) {
  if (cfg_.scheme == Scheme::kTcp1G || cfg_.scheme == Scheme::kTcp40G) {
    throw std::invalid_argument(
        "ShardedClusterSim: TCP schemes are not modeled");
  }
  if (cfg_.num_shards == 0) cfg_.num_shards = 1;

  map_ = shard::BuildGridMap(items, cfg_.num_shards);
  map_.version = 1;
  // BuildGridMap's slop covers the bulk-loaded extents only; workload
  // inserts can be larger (edges up to the scale draw), so raise the
  // query expansion to their half-extent — the ShardHost::min_slop knob.
  if (cfg_.workload.insert_ratio > 0.0) {
    const double max_edge =
        cfg_.workload.dist == workload::RequestGen::ScaleDist::kPowerLaw
            ? cfg_.workload.pl_hi
            : cfg_.workload.scale;
    map_.slop = std::max(map_.slop, max_edge / 2.0);
  }
  auto buckets = shard::PartitionItems(map_, items);
  oracle_items_.assign(items.begin(), items.end());

  for (uint32_t i = 0; i < cfg_.num_shards; ++i) {
    auto s = std::make_unique<ShardRes>();
    s->arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                                  cfg_.arena_chunks);
    s->tree = std::make_unique<rtree::RStarTree>(
        rtree::BulkLoad(*s->arena, buckets[i]));
    s->cpu = std::make_unique<des::CpuPool>(sched_, cfg_.server_cores);
    s->writer = std::make_unique<des::CpuPool>(sched_, 1);
    s->nic = std::make_unique<des::CpuPool>(sched_, 1);
    s->up = std::make_unique<des::Link>(sched_, fabric_.bandwidth_gbps,
                                        fabric_.base_latency_us);
    s->down = std::make_unique<des::Link>(sched_, fabric_.bandwidth_gbps,
                                          fabric_.base_latency_us);
    for (uint32_t j = 0; j < cfg_.num_replicas; ++j) {
      auto r = std::make_unique<ReplicaRes>();
      r->nic = std::make_unique<des::CpuPool>(sched_, 1);
      r->applier = std::make_unique<des::CpuPool>(sched_, 1);
      r->up = std::make_unique<des::Link>(sched_, fabric_.bandwidth_gbps,
                                          fabric_.base_latency_us);
      r->down = std::make_unique<des::Link>(sched_, fabric_.bandwidth_gbps,
                                            fabric_.base_latency_us);
      s->replicas.push_back(std::move(r));
    }
    s->live_replicas = cfg_.num_replicas;
    shards_.push_back(std::move(s));
  }

  for (size_t i = 0; i < cfg_.num_clients; ++i) {
    auto c = std::make_unique<Client>(i, cfg_.workload,
                                      cfg_.seed + i * 7919);
    c->remaining = cfg_.requests_per_client;
    for (uint32_t sh = 0; sh < cfg_.num_shards; ++sh) {
      c->ctrl.emplace_back(cfg_.adaptive,
                           (cfg_.seed + i * 7919) ^ (0x9e3779b9u + sh), i);
    }
    clients_.push_back(std::move(c));
  }
}

ShardedClusterSim::~ShardedClusterSim() = default;

double ShardedClusterSim::PollingPickupUs() const noexcept {
  // Polling burn scales with connections per shard machine: clients
  // spread their connections over every shard, so each shard carries
  // num_clients connections but only 1/num_shards of the request rate.
  const double c = static_cast<double>(cfg_.num_clients);
  const double k = cfg_.server_cores;
  if (c <= k) return 0.0;
  return cfg_.costs.poll_quantum_us * c * c / k;
}

double ShardedClusterSim::ReadRetryProbability(
    const ShardRes& s) const noexcept {
  const double now = std::max(sched_.now(), 1.0);
  const double write_busy = std::min(1.0, s.insert_service_cum_us / now);
  return std::min(0.5, write_busy * cfg_.conflict_factor);
}

void ShardedClusterSim::CompleteRequest(Client& c, workload::OpType op,
                                        double t0) {
  const double latency = sched_.now() - t0;
  result_.latency_us.Add(latency);
  if (op == workload::OpType::kInsert) {
    result_.insert_latency_us.Add(latency);
    ++result_.inserts;
  } else {
    result_.search_latency_us.Add(latency);
    CATFISH_TIMER_RECORD_US("shard.client.search_us", latency);
  }
  ++result_.completed;
  --outstanding_;
  result_.duration_us = sched_.now();
  StartNextRequest(c);
}

void ShardedClusterSim::StartNextRequest(Client& c) {
  if (c.remaining == 0) return;
  --c.remaining;
  ++outstanding_;
  const workload::Request req = c.gen.Next();
  if (req.op == workload::OpType::kInsert) {
    ExecInsert(c, req);
  } else {
    StartSearch(c, req.rect);
  }
}

void ShardedClusterSim::OracleCheck(const geo::Rect& rect) {
  // Both sides evaluated at the same virtual instant: the union of the
  // per-shard traversals against a scan of everything applied so far.
  ++result_.oracle_checks;
  std::vector<uint64_t> got;
  std::vector<rtree::Entry> out;
  std::vector<uint32_t> targets;
  map_.QueryShards(rect, targets);
  for (const uint32_t sh : targets) {
    out.clear();
    rtree::SearchStats st;
    shards_[sh]->tree->SearchTraced(rect, out, &st, nullptr);
    for (const auto& e : out) got.push_back(e.id);
  }
  std::vector<uint64_t> want;
  for (const auto& e : oracle_items_) {
    if (e.mbr.Intersects(rect)) want.push_back(e.id);
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got != want) {
    ++result_.oracle_mismatches;
    CATFISH_COUNT("shard.sim.oracle_mismatches");
  }
}

void ShardedClusterSim::TraceStage(const std::shared_ptr<SubTrace>& st,
                                   const char* next) {
  if (!st || !st->trace) return;
  const auto now = static_cast<uint64_t>(sched_.now());
  if (st->open != telemetry::kInvalidSpan) {
    st->trace->EndSpan(st->open, now);
    st->open = telemetry::kInvalidSpan;
  }
  if (next != nullptr) {
    st->open = st->trace->StartSpan(st->span, next, now);
  }
}

void ShardedClusterSim::StartSearch(Client& c, const geo::Rect& rect) {
  const double t0 = sched_.now();
  ++result_.searches;
  map_.QueryShards(rect, fanout_scratch_);
  const uint32_t width = static_cast<uint32_t>(fanout_scratch_.size());
  result_.fanout_width.Add(static_cast<double>(width));
  CATFISH_TIMER_RECORD_US("shard.client.fanout_width", width);
  if (cfg_.oracle_every != 0 &&
      (searches_started_++ % cfg_.oracle_every) == 0) {
    OracleCheck(rect);
  }

  auto join = std::make_shared<Fanout>(Fanout{&c, width, t0, nullptr});
  // Counter-based sampling (the DES must stay deterministic): every Nth
  // search builds a full distributed trace on the virtual clock.
  if (cfg_.trace_sample_every != 0 &&
      ((result_.searches - 1) % cfg_.trace_sample_every) == 0) {
    join->trace = std::make_shared<telemetry::Trace>(
        "shard.search", next_trace_id_++, static_cast<uint64_t>(t0));
    join->trace->SetAttr(join->trace->root(), "fanout",
                         static_cast<int64_t>(width));
  }
  // Sub-requests are posted back-to-back from the single client thread;
  // the i-th leaves the client i+1 post slots after t0 (same pipelining
  // model as multi-issued READs).
  double post_delay = 0.0;
  for (const uint32_t sh : fanout_scratch_) {
    post_delay += cfg_.costs.verbs_post_us;
    AccessMode mode;
    switch (cfg_.scheme) {
      case Scheme::kFastMessaging:
        mode = AccessMode::kFastMessaging;
        break;
      case Scheme::kRdmaOffloading:
        mode = AccessMode::kRdmaOffloading;
        break;
      default:
        mode = c.ctrl[sh].NextMode(static_cast<uint64_t>(sched_.now()));
        break;
    }
    // A dead primary cannot serve the two-sided fast path; its
    // followers' arenas still answer one-sided reads — the live client
    // makes the same call (follower routing + primary fallback).
    if (shards_[sh]->primary_down && shards_[sh]->live_replicas > 0) {
      mode = AccessMode::kRdmaOffloading;
    }
    std::shared_ptr<SubTrace> st;
    if (join->trace) {
      st = std::make_shared<SubTrace>();
      st->trace = join->trace;
      st->span = join->trace->StartSpan(join->trace->root(), "subquery",
                                        static_cast<uint64_t>(t0));
      join->trace->SetAttr(st->span, "shard", sh);
    }
    if (mode == AccessMode::kFastMessaging) {
      SubqueryFast(c, sh, rect, join, post_delay, std::move(st));
    } else {
      if (st) join->trace->SetAttr(st->span, "offload", 1);
      SubqueryOffloaded(c, sh, rect, join, post_delay, std::move(st));
    }
  }
}

void ShardedClusterSim::SubqueryDone(std::shared_ptr<Fanout> join,
                                     const std::shared_ptr<SubTrace>& st) {
  result_.subquery_latency_us.Add(sched_.now() - join->t0);
  CATFISH_TIMER_RECORD_US("shard.client.subquery_us",
                          sched_.now() - join->t0);
  if (st && st->trace) {
    TraceStage(st, nullptr);  // close the last stage child
    st->trace->EndSpan(st->span, static_cast<uint64_t>(sched_.now()));
  }
  if (--join->remaining == 0) {
    if (join->trace) {
      join->trace->EndSpan(join->trace->root(),
                           static_cast<uint64_t>(sched_.now()));
      result_.traces.push_back(join->trace);
      if (result_.traces.size() > cfg_.trace_retain) {
        result_.traces.erase(result_.traces.begin());
      }
    }
    CompleteRequest(*join->client, workload::OpType::kSearch, join->t0);
  }
}

double ShardedClusterSim::HedgeDelayUs() const noexcept {
  if (cfg_.hedge_delay_us != 0) {
    return static_cast<double>(cfg_.hedge_delay_us);
  }
  // Adaptive: the live client's percentile rule against the sub-query
  // latencies observed so far; an RTT-derived floor until warmed up.
  if (result_.subquery_latency_us.count() >= 32) {
    return result_.subquery_latency_us.p95();
  }
  return fabric_.base_latency_us * 20.0;
}

void ShardedClusterSim::SubqueryFast(Client& c, uint32_t shard,
                                     const geo::Rect& rect,
                                     std::shared_ptr<Fanout> join,
                                     double issue_delay,
                                     std::shared_ptr<SubTrace> st) {
  ShardRes& s = *shards_[shard];
  const CostModel& k = cfg_.costs;
  ++result_.fast_subqueries;
  CATFISH_COUNT("catfish.client.search.fast");

  rtree::SearchStats sst;
  std::vector<rtree::Entry> out;
  s.tree->SearchTraced(rect, out, &sst, nullptr);
  const size_t segments =
      1 + sst.results * k.per_result_bytes / k.max_segment_payload_bytes;
  double service =
      k.request_dispatch_us +
      static_cast<double>(sst.nodes_visited) * k.per_node_visit_us +
      static_cast<double>(sst.results) * k.per_result_us;
  // Gray failure: the degraded shard serves every fast sub-query slower
  // by the configured factor — still answering, just limping.
  if (static_cast<int>(shard) == cfg_.slow_shard && cfg_.slow_factor > 1.0) {
    service *= cfg_.slow_factor;
  }
  const size_t resp_bytes =
      k.response_base_bytes * segments + sst.results * k.per_result_bytes;
  // Ring messages doorbell individually on their shard's QP (the live
  // sharded client stages one ring doorbell per sub-query): request +
  // response = 2 doorbells, and the response is reaped once.
  CATFISH_COUNT_ADD("rdma.write.posted", 2);
  CATFISH_COUNT_ADD("rdma.write.bytes", k.search_request_bytes + resp_bytes);
  result_.doorbells += 2;
  CATFISH_COUNT_ADD("rdma.doorbells", 2);
  CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
  CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
  ++result_.polls;
  CATFISH_COUNT("rdma.polls");

  // First-result-wins gate shared by the primary chain and a possible
  // hedge chain. The losing leg's resources still burn — only its join
  // is suppressed — which is exactly the duplicate-work cost
  // hedges_wasted measures.
  struct HedgeState {
    bool done = false;
    bool hedged = false;
    double delay_us = 0.0;
  };
  auto hs = std::make_shared<HedgeState>();
  auto finish = [this, join, st, hs, shard](bool from_hedge) {
    if (hs->done) return;  // the other leg joined first
    hs->done = true;
    if (hs->hedged) {
      if (from_hedge) {
        ++result_.hedges_won;
        CATFISH_COUNT("shard.client.hedges_won");
      } else {
        ++result_.hedges_wasted;
        CATFISH_COUNT("shard.client.hedges_wasted");
      }
      CATFISH_EVENT(kHedge, static_cast<uint64_t>(sched_.now()), shard,
                    hs->delay_us, from_hedge ? 1.0 : 0.0);
    }
    SubqueryDone(join, st);
    if (st) {
      // The losing leg keeps running its stage lambdas; null the trace
      // so they no-op instead of reopening spans under an ended parent.
      st->open = telemetry::kInvalidSpan;
      st->trace = nullptr;
    }
  };

  // Arm the hedge: if the primary has not joined after the delay,
  // re-issue as an offloaded read against a follower (round-robin).
  if (cfg_.hedge && s.live_replicas > 0) {
    hs->delay_us = HedgeDelayUs();
    sched_.After(issue_delay + hs->delay_us,
                 [this, &c, shard, rect, join, hs, finish]() {
      if (hs->done) return;  // primary answered in time; no hedge
      ShardRes& s2 = *shards_[shard];
      if (s2.live_replicas == 0) return;  // promotion consumed them all
      hs->hedged = true;
      ++result_.hedges_issued;
      CATFISH_COUNT("shard.client.hedges_issued");
      const int replica = static_cast<int>(s2.read_rr++ % s2.live_replicas);
      auto tr = std::make_shared<rtree::TraversalTrace>();
      rtree::SearchStats hst;
      std::vector<rtree::Entry> hout;
      s2.tree->SearchTraced(rect, hout, &hst, tr.get());
      OffloadRound(c, shard, replica, tr, 0, join, nullptr,
                   [finish]() { finish(true); });
    });
  }

  sched_.After(issue_delay, [this, &c, &s, service, resp_bytes, join, st,
                             finish]() {
    TraceStage(st, "net_down");
    s.down->Transfer(cfg_.costs.search_request_bytes, [this, &c, &s, service,
                                                       resp_bytes, join, st,
                                                       finish]() {
      s.nic->Submit(cfg_.costs.nic_write_op_us, [this, &c, &s, service,
                                                 resp_bytes, join, st,
                                                 finish]() {
        const double pickup = cfg_.notify == NotifyMode::kPolling
                                  ? PollingPickupUs()
                                  : 0.0;
        TraceStage(st, "dequeue");
        sched_.After(pickup, [this, &c, &s, service, resp_bytes, join, st,
                              finish]() {
          TraceStage(st, "traverse");
          s.cpu->Submit(service, [this, &s, resp_bytes, st, finish]() {
            TraceStage(st, "reply");
            s.nic->Submit(cfg_.costs.nic_write_op_us,
                          [this, &s, resp_bytes, finish]() {
              s.up->Transfer(resp_bytes, [this, finish]() {
                sched_.After(cfg_.costs.verbs_post_us,
                             [finish]() { finish(false); });
              });
            });
          });
        });
      });
    });
  });
}

void ShardedClusterSim::SubqueryOffloaded(Client& c, uint32_t shard,
                                          const geo::Rect& rect,
                                          std::shared_ptr<Fanout> join,
                                          double issue_delay,
                                          std::shared_ptr<SubTrace> st) {
  ShardRes& s = *shards_[shard];
  ++result_.offload_subqueries;
  CATFISH_COUNT("catfish.client.search.offload");
  auto trace = std::make_shared<rtree::TraversalTrace>();
  rtree::SearchStats sst;
  std::vector<rtree::Entry> out;
  s.tree->SearchTraced(rect, out, &sst, trace.get());
  // Follower read routing: spread the configured fraction of offloaded
  // sub-queries round-robin over the live followers (they hold the same
  // tree, shipped record by record); a dead primary forces it.
  int replica = -1;
  if (s.live_replicas > 0 &&
      (s.primary_down ||
       (cfg_.follower_read_fraction > 0.0 &&
        c.rng.NextDouble() < cfg_.follower_read_fraction))) {
    replica = static_cast<int>(s.read_rr++ % s.live_replicas);
    ++result_.follower_reads;
    CATFISH_COUNT("shard.client.follower_reads");
    if (st && st->trace) st->trace->SetAttr(st->span, "follower", 1);
  }
  sched_.After(issue_delay, [this, &c, shard, replica, trace, join, st]() {
    OffloadRound(c, shard, replica, trace, 0, join, st);
  });
}

void ShardedClusterSim::OffloadRound(
    Client& c, uint32_t shard, int replica,
    std::shared_ptr<rtree::TraversalTrace> trace, size_t level,
    std::shared_ptr<Fanout> join, std::shared_ptr<SubTrace> st,
    std::function<void()> on_done) {
  if (level >= trace->nodes_per_level.size()) {
    if (on_done) {
      on_done();  // hedge chain: resolve through its first-wins gate
    } else {
      SubqueryDone(join, st);
    }
    return;
  }
  TraceStage(st, "offload_round");
  if (st && st->trace) {
    st->trace->SetAttr(st->open, "level", static_cast<int64_t>(level));
    st->trace->SetAttr(st->open, "reads",
                       static_cast<int64_t>(trace->nodes_per_level[level]));
  }
  ShardRes& s = *shards_[shard];
  // The read plane: the chosen follower's NIC + links, or the primary's.
  des::CpuPool* nic = s.nic.get();
  des::Link* up = s.up.get();
  des::Link* down = s.down.get();
  if (replica >= 0 && static_cast<size_t>(replica) < s.replicas.size()) {
    ReplicaRes& r = *s.replicas[replica];
    nic = r.nic.get();
    up = r.up.get();
    down = r.down.get();
  }
  const CostModel& k = cfg_.costs;
  const uint32_t n = trace->nodes_per_level[level];
  const size_t chunk_bytes =
      s.tree->arena().chunk_size() + k.read_response_overhead_bytes;

  struct Round {
    uint32_t remaining;
    double client_free_at;
  };
  auto round = std::make_shared<Round>(Round{n, sched_.now()});
  auto node_done = [this, &c, shard, replica, trace, level, join, round,
                    st, on_done]() {
    if (--round->remaining == 0) {
      const double resume = std::max(round->client_free_at, sched_.now());
      sched_.At(resume, [this, &c, shard, replica, trace, level, join, st,
                         on_done]() {
        OffloadRound(c, shard, replica, trace, level + 1, join, st, on_done);
      });
    }
  };

  struct ReadOp {
    ShardedClusterSim* sim;
    ShardRes* shard_res;
    des::CpuPool* nic;
    des::Link* up;
    des::Link* down;
    Client* client;
    size_t chunk_bytes;
    std::function<void()> done;

    void Issue(std::shared_ptr<ReadOp> self) const {
      ++sim->result_.rdma_reads;
      CATFISH_COUNT("rdma.read.posted");
      CATFISH_COUNT_ADD("rdma.read.bytes", chunk_bytes);
      down->Transfer(sim->cfg_.costs.read_request_bytes, [self]() {
        self->nic->Submit(self->sim->cfg_.costs.nic_read_op_us,
                                     [self]() {
          self->up->Transfer(self->chunk_bytes, [self]() {
            const double p =
                self->sim->ReadRetryProbability(*self->shard_res);
            if (p > 0.0 && self->client->rng.NextDouble() < p) {
              ++self->sim->result_.version_retries;
              CATFISH_COUNT("catfish.client.version_retries");
              // A torn read is reaped and reposted alone (cluster_sim
              // models the same).
              ++self->sim->result_.polls;
              CATFISH_COUNT("rdma.polls");
              ++self->sim->result_.doorbells;
              CATFISH_COUNT("rdma.doorbells");
              CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
              self->Issue(self);
              return;
            }
            self->done();
          });
        });
      });
    }
  };

  // Multi-issue only (the sharded stack inherits Catfish's pipelined
  // offload; the single-issue baseline lives in cluster_sim). Doorbell
  // batching follows cluster_sim's model: stage cheaply, ring one
  // doorbell per chain, coalesce reaps that land while the client is
  // busy. Limit 1 reproduces the old per-WR schedule.
  const bool batched = cfg_.doorbell_batching;
  const uint32_t limit =
      !batched ? 1
               : (cfg_.doorbell_batch_limit == 0 ? n
                                                 : cfg_.doorbell_batch_limit);
  double t = 0.0;
  for (uint32_t issued = 0; issued < n;) {
    const uint32_t m = std::min(limit, n - issued);
    t += k.verbs_post_us + k.verbs_stage_us * (m - 1);
    ++result_.doorbells;
    CATFISH_COUNT("rdma.doorbells");
    CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", m);
    for (uint32_t j = 0; j < m; ++j) {
      auto process = [this, round, batched, node_done]() {
        // Solo reap passes cost CPU; coalesced drains ride for free
        // (same pickup model as cluster_sim).
        double cpu = cfg_.costs.client_node_us;
        if (!batched || sched_.now() >= round->client_free_at) {
          ++result_.polls;
          CATFISH_COUNT("rdma.polls");
          cpu += cfg_.costs.verbs_reap_us;
        }
        const double start = std::max(round->client_free_at, sched_.now());
        round->client_free_at = start + cpu;
        sched_.At(round->client_free_at, node_done);
      };
      auto op = std::make_shared<ReadOp>(
          ReadOp{this, &s, nic, up, down, &c, chunk_bytes,
                 std::move(process)});
      sched_.After(t, [op]() { op->Issue(op); });
    }
    issued += m;
  }
  // The client core is held by the issue loop until the last flush
  // (see cluster_sim: batching releases it earlier per chain).
  round->client_free_at = sched_.now() + t;
}

void ShardedClusterSim::ReplicateWrite(ShardRes& s,
                                       const std::function<void()>& done) {
  const uint32_t live = s.live_replicas;
  const uint32_t quorum = std::min(cfg_.ack_followers, live);
  const double t0 = sched_.now();
  if (quorum > 0) {
    ++result_.replicated_writes;
  } else {
    done();  // asynchronous shipping: the write never waits
  }
  struct Gate {
    uint32_t acks = 0;
    bool released = false;
  };
  auto gate = std::make_shared<Gate>();
  auto on_ack = [this, gate, quorum, t0, done]() {
    ++gate->acks;
    if (quorum > 0 && !gate->released && gate->acks >= quorum) {
      gate->released = true;
      result_.repl_ack_us.Add(sched_.now() - t0);
      CATFISH_TIMER_RECORD_US("repl.sim.ack_us", sched_.now() - t0);
      done();
    }
  };
  // One shipped record per live follower: primary NIC → follower link →
  // follower WAL/tree apply → ack back over the follower's uplink.
  for (uint32_t j = 0; j < live && j < s.replicas.size(); ++j) {
    ReplicaRes& r = *s.replicas[j];
    s.nic->Submit(cfg_.costs.nic_write_op_us, [this, &r, on_ack]() {
      r.down->Transfer(cfg_.costs.repl_record_bytes, [this, &r, on_ack]() {
        r.applier->Submit(cfg_.costs.follower_apply_us, [this, &r,
                                                         on_ack]() {
          r.nic->Submit(cfg_.costs.nic_write_op_us, [this, &r, on_ack]() {
            r.up->Transfer(cfg_.costs.repl_ack_bytes, on_ack);
          });
        });
      });
    });
  }
}

void ShardedClusterSim::ExecInsert(Client& c, const workload::Request& req) {
  const double t0 = sched_.now();
  const uint32_t owner = map_.OwnerOf(req.rect);
  ShardRes& s = *shards_[owner];
  if (s.primary_down) {
    // The primary is dead and promotion hasn't finished: the live
    // client's watchdog would park this write and re-route after the
    // re-bootstrap. Model the park as a retry once the shard is
    // writable again.
    ++result_.stalled_writes;
    result_.write_stall_us.Add(s.primary_up_at - sched_.now());
    CATFISH_COUNT("shard.sim.stalled_writes");
    sched_.At(s.primary_up_at,
              [this, &c, req]() { ExecInsert(c, req); });
    return;
  }
  const CostModel& k = cfg_.costs;
  CATFISH_COUNT("catfish.client.insert");
  CATFISH_COUNT_ADD("rdma.write.posted", 2);
  CATFISH_COUNT_ADD("rdma.write.bytes", k.insert_request_bytes + k.ack_bytes);
  result_.doorbells += 2;
  CATFISH_COUNT_ADD("rdma.doorbells", 2);
  CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
  CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
  ++result_.polls;
  CATFISH_COUNT("rdma.polls");

  auto respond = [this, &c, &s, t0]() {
    s.nic->Submit(cfg_.costs.nic_write_op_us, [this, &c, &s, t0]() {
      s.up->Transfer(cfg_.costs.ack_bytes, [this, &c, t0]() {
        sched_.After(cfg_.costs.verbs_post_us, [this, &c, t0]() {
          CompleteRequest(c, workload::OpType::kInsert, t0);
        });
      });
    });
  };

  sched_.After(k.verbs_post_us, [this, &c, &s, req, respond]() {
    s.down->Transfer(cfg_.costs.insert_request_bytes, [this, &c, &s, req,
                                                       respond]() {
      s.nic->Submit(cfg_.costs.nic_write_op_us, [this, &c, &s, req,
                                                 respond]() {
        const double pickup = cfg_.notify == NotifyMode::kPolling
                                  ? PollingPickupUs()
                                  : 0.0;
        sched_.After(pickup, [this, &s, req, respond]() {
          s.cpu->Submit(cfg_.costs.request_dispatch_us, [this, &s, req,
                                                         respond]() {
            s.writer->Submit(cfg_.costs.per_insert_us, [this, &s, req,
                                                        respond]() {
              s.tree->Insert(req.rect, req.id);  // real mutation
              oracle_items_.push_back({req.rect, req.id});
              s.insert_service_cum_us += cfg_.costs.per_insert_us;
              if (s.live_replicas > 0) {
                ReplicateWrite(s, respond);  // semi-sync gate
              } else {
                respond();
              }
            });
          });
        });
      });
    });
  });
}

void ShardedClusterSim::ScheduleHeartbeat() {
  sched_.After(cfg_.adaptive.heartbeat_interval_us, [this]() {
    if (outstanding_ == 0) return;
    const double now = sched_.now();
    for (uint32_t sh = 0; sh < cfg_.num_shards; ++sh) {
      ShardRes& s = *shards_[sh];
      const double util = s.hb_window.Advance(
          now, s.cpu->busy_core_us() + s.writer->busy_core_us(),
          cfg_.server_cores);
      for (auto& c : clients_) {
        const double jitter =
            c->rng.NextDouble() *
            (static_cast<double>(cfg_.adaptive.heartbeat_interval_us) / 4.0);
        sched_.After(fabric_.base_latency_us + jitter,
                     [&ctrl = c->ctrl[sh], util]() {
                       ctrl.OnHeartbeat(util);
                     });
      }
    }
    ScheduleHeartbeat();
  });
}

ShardedRunResult ShardedClusterSim::Run() {
  for (auto& c : clients_) {
    sched_.After(static_cast<double>(c->index) * 0.11,
                 [this, &c = *c]() { StartNextRequest(c); });
  }
  // Kill schedule: each event crashes a primary at a virtual instant.
  // Writes park for detection + promotion; promotion consumes one
  // follower (it *becomes* the primary), shrinking the read pool.
  for (const auto& ev : cfg_.kill_schedule) {
    if (ev.shard >= cfg_.num_shards) continue;
    sched_.At(ev.at_us, [this, shard = ev.shard]() {
      ShardRes& s = *shards_[shard];
      if (s.primary_down || s.live_replicas == 0) return;
      s.primary_down = true;
      s.primary_up_at =
          sched_.now() + cfg_.failover_detect_us + cfg_.failover_promote_us;
      ++result_.failovers;
      CATFISH_COUNT("shard.sim.failovers");
      sched_.At(s.primary_up_at, [&s]() {
        s.primary_down = false;
        --s.live_replicas;  // the promoted follower is the new primary
      });
    });
  }
  if (cfg_.scheme == Scheme::kCatfish) ScheduleHeartbeat();
  sched_.Run();

  for (const auto& c : clients_) {
    for (const auto& ctrl : c->ctrl) {
      result_.mode_switches += ctrl.stats().mode_switches;
    }
  }
  if (result_.duration_us > 0.0) {
    result_.throughput_kops =
        static_cast<double>(result_.completed) / result_.duration_us * 1e3;
    double util_sum = 0.0;
    for (const auto& s : shards_) {
      util_sum += std::min(
          1.0, (s->cpu->busy_core_us() + s->writer->busy_core_us()) /
                   (result_.duration_us * cfg_.server_cores));
    }
    result_.mean_shard_cpu_util = util_sum / static_cast<double>(cfg_.num_shards);
  }
  result_.mean_fanout = result_.fanout_width.mean();
  const double sub_p99 = result_.subquery_latency_us.p99();
  if (sub_p99 > 0.0) {
    result_.tail_amplification = result_.search_latency_us.p99() / sub_p99;
  }
  return result_;
}

}  // namespace catfish::model

#include "model/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::model {

const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kTcp1G: return "TCP/IP-1G";
    case Scheme::kTcp40G: return "TCP/IP-40G";
    case Scheme::kFastMessaging: return "Fast messaging";
    case Scheme::kRdmaOffloading: return "RDMA offloading";
    case Scheme::kCatfish: return "Catfish";
  }
  return "?";
}

namespace {

rdma::FabricProfile FabricFor(Scheme s) {
  switch (s) {
    case Scheme::kTcp1G: return rdma::FabricProfile::Ethernet1G();
    case Scheme::kTcp40G: return rdma::FabricProfile::Ethernet40G();
    default: return rdma::FabricProfile::InfiniBand100G();
  }
}

}  // namespace

ClusterSim::ClusterSim(rtree::RStarTree& tree, ClusterConfig cfg)
    : tree_(&tree), cfg_(cfg), fabric_(FabricFor(cfg.scheme)) {
  cpu_ = std::make_unique<des::CpuPool>(sched_, cfg_.server_cores);
  writer_ = std::make_unique<des::CpuPool>(sched_, 1);  // the writer lock
  nic_ = std::make_unique<des::CpuPool>(sched_, 1);     // NIC msg engine
  up_ = std::make_unique<des::Link>(sched_, fabric_.bandwidth_gbps,
                                    fabric_.base_latency_us);
  down_ = std::make_unique<des::Link>(sched_, fabric_.bandwidth_gbps,
                                      fabric_.base_latency_us);
  for (size_t i = 0; i < cfg_.num_clients; ++i) {
    clients_.push_back(std::make_unique<Client>(
        i, cfg_.workload, cfg_.adaptive, cfg_.overload.breaker,
        cfg_.seed + i * 7919));
    clients_.back()->remaining = cfg_.requests_per_client;
  }
}

double ClusterSim::PollingPickupUs() const noexcept {
  const double c = static_cast<double>(cfg_.num_clients);
  const double k = cfg_.server_cores;
  if (c <= k) return 0.0;
  return cfg_.costs.poll_quantum_us * c * c / k;
}

double ClusterSim::ReadRetryProbability() const noexcept {
  const double now = std::max(sched_.now(), 1.0);
  const double write_busy = std::min(1.0, insert_service_cum_us_ / now);
  return std::min(0.5, write_busy * cfg_.conflict_factor);
}

void ClusterSim::TraceStage(const std::shared_ptr<SubTrace>& st,
                            const char* next) {
  if (!st || !st->trace) return;
  const auto now = static_cast<uint64_t>(sched_.now());
  if (st->open != telemetry::kInvalidSpan) {
    st->trace->EndSpan(st->open, now);
    st->open = telemetry::kInvalidSpan;
  }
  if (next != nullptr) {
    st->open = st->trace->StartSpan(st->span, next, now);
  }
}

void ClusterSim::CompleteRequest(Client& c, workload::OpType op, double t0,
                                 bool offloaded,
                                 const std::shared_ptr<SubTrace>& st) {
  if (st && st->trace) {
    TraceStage(st, nullptr);  // close the last stage child
    st->trace->EndSpan(st->span, static_cast<uint64_t>(sched_.now()));
    result_.traces.push_back(st->trace);
    if (result_.traces.size() > cfg_.trace_retain) {
      result_.traces.erase(result_.traces.begin());
    }
  }
  const double latency = sched_.now() - t0;
  result_.latency_us.Add(latency);
  if (cfg_.overload.deadline_us == 0 ||
      latency <= static_cast<double>(cfg_.overload.deadline_us)) {
    ++result_.goodput;
  } else {
    ++result_.deadline_misses;
    CATFISH_COUNT("overload.sim.deadline_misses");
  }
  c.breaker.OnSuccess();
  if (op == workload::OpType::kInsert) {
    result_.insert_latency_us.Add(latency);
    ++result_.inserts;
  } else {
    result_.search_latency_us.Add(latency);
    // Mirror the live client's per-path timers (same metric names) so a
    // bench cell's registry snapshot reads identically whether the data
    // came from the DES or from real client/server objects.
    if (offloaded) {
      result_.offload_latency_us.Add(latency);
      CATFISH_TIMER_RECORD_US("catfish.client.search_offload_us", latency);
    } else {
      result_.fast_latency_us.Add(latency);
      CATFISH_TIMER_RECORD_US("catfish.client.search_fast_us", latency);
    }
  }
  ++result_.completed;
  --outstanding_;
  // The run's duration is the last *request* completion — trailing
  // bookkeeping events (heartbeats) must not dilute throughput.
  result_.duration_us = sched_.now();
  StartNextRequest(c);
}

void ClusterSim::CompleteShed(Client& c, bool expired,
                              const std::shared_ptr<SubTrace>& st) {
  if (st && st->trace) {
    TraceStage(st, nullptr);
    st->trace->SetAttr(st->span, "shed", 1);
    st->trace->EndSpan(st->span, static_cast<uint64_t>(sched_.now()));
    result_.traces.push_back(st->trace);
    if (result_.traces.size() > cfg_.trace_retain) {
      result_.traces.erase(result_.traces.begin());
    }
  }
  if (expired) {
    ++result_.deadline_drops;
    CATFISH_COUNT("overload.server.deadline_drops");
  } else {
    ++result_.sheds;
    CATFISH_COUNT("overload.server.sheds");
  }
  const auto now = static_cast<uint64_t>(sched_.now());
  CATFISH_EVENT(kShed, now, c.index, 0.0,
                static_cast<double>(cfg_.overload.retry_after_us));
  if (c.breaker.OnFailure(now, expired ? 0 : cfg_.overload.retry_after_us)) {
    ++result_.breaker_opens;
    CATFISH_COUNT("breaker.opens");
    CATFISH_EVENT(kBreakerOpen, now, c.index,
                  static_cast<double>(c.breaker.state()),
                  static_cast<double>(c.breaker.last_open_window_us()));
  }
  --outstanding_;
  result_.duration_us = sched_.now();
  StartNextRequest(c);
}

void ClusterSim::StartNextRequest(Client& c) {
  if (c.remaining == 0) return;
  // Breaker gate (overload model): an open breaker parks the client
  // until its window elapses — backing off instead of deepening the
  // server's queue. Admit() is the production transition, so the park
  // ends in Half-open and the next request is the probe.
  if (cfg_.overload.breaker.enabled &&
      !c.breaker.Admit(static_cast<uint64_t>(sched_.now()))) {
    ++result_.breaker_waits;
    CATFISH_COUNT("breaker.sim.waits");
    sched_.At(static_cast<double>(c.breaker.open_until_us()) + 1.0,
              [this, &c]() { StartNextRequest(c); });
    return;
  }
  --c.remaining;
  ++outstanding_;
  const workload::Request req = c.gen.Next();
  const double t0 = sched_.now();

  // Every Nth search builds a span tree on the virtual clock.
  std::shared_ptr<SubTrace> st;
  if (req.op == workload::OpType::kSearch && cfg_.trace_sample_every != 0 &&
      (searches_started_++ % cfg_.trace_sample_every) == 0) {
    st = std::make_shared<SubTrace>();
    st->trace = std::make_shared<telemetry::Trace>(
        "sim.search", next_trace_id_++, static_cast<uint64_t>(t0));
    st->span = st->trace->root();
    st->trace->SetAttr(st->span, "client", static_cast<int64_t>(c.index));
  }

  if (req.op == workload::OpType::kInsert || IsTcp() ||
      cfg_.scheme == Scheme::kFastMessaging) {
    ExecViaServer(c, req, t0, std::move(st));
    return;
  }
  if (cfg_.scheme == Scheme::kRdmaOffloading) {
    ExecOffloaded(c, req.rect, t0, std::move(st));
    return;
  }
  // Catfish: Algorithm 1 decides per request.
  const AccessMode mode =
      c.ctrl.NextMode(static_cast<uint64_t>(sched_.now()));
  if (mode == AccessMode::kRdmaOffloading) {
    ExecOffloaded(c, req.rect, t0, std::move(st));
  } else {
    ExecViaServer(c, req, t0, std::move(st));
  }
}

void ClusterSim::ExecViaServer(Client& c, const workload::Request& req,
                               double t0, std::shared_ptr<SubTrace> st) {
  const CostModel& k = cfg_.costs;
  const bool tcp = IsTcp();
  const bool search = req.op == workload::OpType::kSearch;
  const double post_us = tcp ? k.tcp_kernel_us : k.verbs_post_us;
  const size_t req_bytes =
      search ? k.search_request_bytes : k.insert_request_bytes;

  // Pre-compute the real tree work for searches. (Inserts execute at
  // writer-lock grant time so concurrent searches see them in virtual-
  // time order.)
  double service = 0.0;
  size_t resp_bytes = 0;
  if (search) {
    rtree::SearchStats st;
    std::vector<rtree::Entry> out;
    tree_->SearchTraced(req.rect, out, &st, nullptr);
    const size_t segments =
        1 + st.results * k.per_result_bytes / k.max_segment_payload_bytes;
    service = k.request_dispatch_us +
              static_cast<double>(st.nodes_visited) * k.per_node_visit_us +
              static_cast<double>(st.results) * k.per_result_us;
    if (tcp) {
      service += k.tcp_kernel_us * static_cast<double>(1 + segments);
    }
    resp_bytes = k.response_base_bytes * segments +
                 st.results * k.per_result_bytes;
    if (cfg_.scheme == Scheme::kCatfish ||
        cfg_.scheme == Scheme::kFastMessaging) {
      ++result_.fast_searches;
      CATFISH_COUNT("catfish.client.search.fast");
    }
  } else {
    resp_bytes = k.ack_bytes;
    CATFISH_COUNT("catfish.client.insert");
  }
  if (!tcp) {
    // The request is one RDMA WRITE into the server's ring and the
    // response one WRITE back — mirror the rdmasim counter names. Each
    // WRITE is its own doorbell (a ring message cannot wait for a
    // batch-mate), so the messaging path's doorbells/op stays at 2
    // regardless of cfg_.doorbell_batching.
    CATFISH_COUNT_ADD("rdma.write.posted", 2);
    CATFISH_COUNT_ADD("rdma.write.bytes", req_bytes + resp_bytes);
    result_.doorbells += 2;
    CATFISH_COUNT_ADD("rdma.doorbells", 2);
    CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
    CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
  }

  auto respond = [this, &c, t0, resp_bytes, tcp, op = req.op, st]() {
    TraceStage(st, "reply");
    auto deliver = [this, &c, t0, resp_bytes, tcp, op, st]() {
      up_->Transfer(resp_bytes, [this, &c, t0, tcp, op, st]() {
        const double recv_us =
            tcp ? cfg_.costs.tcp_kernel_us : cfg_.costs.verbs_post_us;
        if (!tcp) {
          // One recv-CQ reap per response; closed-loop clients have at
          // most one response in flight, so nothing to coalesce here.
          ++result_.polls;
          CATFISH_COUNT("rdma.polls");
        }
        sched_.After(recv_us, [this, &c, t0, op, st]() {
          CompleteRequest(c, op, t0, /*offloaded=*/false, st);
        });
      });
    };
    if (tcp) {
      deliver();
    } else {
      nic_->Submit(cfg_.costs.nic_write_op_us, deliver);
    }
  };

  auto handle = [this, &c, req, service, search, tcp, respond, st, t0]() {
    // Admission control (overload model): a request that is already
    // past its deadline, or that arrives to an over-long worker queue,
    // is refused here — turned around at the NIC with a small reply,
    // never touching a worker core. RDMA schemes only (the TCP
    // baselines predate the admission layer).
    if (!tcp) {
      const bool expired =
          cfg_.overload.deadline_us != 0 &&
          sched_.now() - t0 >= static_cast<double>(cfg_.overload.deadline_us);
      const bool shed = !expired && cfg_.overload.max_queue != 0 &&
                        cpu_->queued() >= cfg_.overload.max_queue;
      if (expired || shed) {
        nic_->Submit(cfg_.costs.nic_write_op_us, [this, &c, st, expired]() {
          up_->Transfer(cfg_.costs.ack_bytes, [this, &c, st, expired]() {
            sched_.After(cfg_.costs.verbs_post_us, [this, &c, st, expired]() {
              CompleteShed(c, expired, st);
            });
          });
        });
        return;
      }
    }
    TraceStage(st, "dequeue");
    const double pickup = (!tcp && cfg_.notify == NotifyMode::kPolling)
                              ? PollingPickupUs()
                              : 0.0;
    sched_.After(pickup, [this, &c, req, service, search, tcp, respond,
                          st]() {
      if (search) {
        TraceStage(st, "traverse");  // includes the worker-pool queue wait
        cpu_->Submit(service, respond);
      } else {
        // Parse on a worker, then serialize on the tree writer lock.
        double parse = cfg_.costs.request_dispatch_us;
        if (tcp) parse += 2 * cfg_.costs.tcp_kernel_us;
        cpu_->Submit(parse, [this, req, respond]() {
          writer_->Submit(cfg_.costs.per_insert_us, [this, req, respond]() {
            tree_->Insert(req.rect, req.id);  // real mutation
            insert_service_cum_us_ += cfg_.costs.per_insert_us;
            respond();
          });
        });
      }
    });
  };

  TraceStage(st, "net_down");
  sched_.After(post_us, [this, req_bytes, tcp, handle]() {
    down_->Transfer(req_bytes, [this, tcp, handle]() {
      if (tcp) {
        handle();
      } else {
        nic_->Submit(cfg_.costs.nic_write_op_us, handle);
      }
    });
  });
}

void ClusterSim::ExecOffloaded(Client& c, const geo::Rect& rect, double t0,
                               std::shared_ptr<SubTrace> st) {
  auto trace = std::make_shared<rtree::TraversalTrace>();
  rtree::SearchStats sst;
  std::vector<rtree::Entry> out;
  tree_->SearchTraced(rect, out, &sst, trace.get());
  ++result_.offloaded_searches;
  CATFISH_COUNT("catfish.client.search.offload");
  if (st && st->trace) st->trace->SetAttr(st->span, "offload", 1);
  OffloadRound(c, std::move(trace), 0, t0, std::move(st));
}

void ClusterSim::OffloadRound(Client& c,
                              std::shared_ptr<rtree::TraversalTrace> trace,
                              size_t level, double t0,
                              std::shared_ptr<SubTrace> st) {
  if (level >= trace->nodes_per_level.size()) {
    CompleteRequest(c, workload::OpType::kSearch, t0, /*offloaded=*/true, st);
    return;
  }
  TraceStage(st, "offload_round");
  if (st && st->trace) {
    st->trace->SetAttr(st->open, "level", static_cast<int64_t>(level));
    st->trace->SetAttr(st->open, "reads",
                       static_cast<int64_t>(trace->nodes_per_level[level]));
  }
  const CostModel& k = cfg_.costs;
  const uint32_t n = trace->nodes_per_level[level];
  const size_t chunk_bytes =
      tree_->arena().chunk_size() + k.read_response_overhead_bytes;

  // Shared round state: arrivals processed serially on the client CPU
  // (processing one node overlaps the other reads in flight, §IV-C).
  struct Round {
    uint32_t remaining;
    double client_free_at;
  };
  auto round = std::make_shared<Round>(Round{n, sched_.now()});

  auto node_done = [this, &c, trace, level, t0, round, st]() {
    if (--round->remaining == 0) {
      const double resume = std::max(round->client_free_at, sched_.now());
      sched_.At(resume, [this, &c, trace, level, t0, st]() {
        OffloadRound(c, trace, level + 1, t0, st);
      });
    }
  };

  // One READ: request over the down link, NIC serves it, chunk back over
  // the up link; a modeled version-conflict retries the whole fetch.
  struct ReadOp {
    ClusterSim* sim;
    Client* client;
    size_t chunk_bytes;
    std::function<void()> done;

    void Issue(std::shared_ptr<ReadOp> self) const {
      ++sim->result_.rdma_reads;
      CATFISH_COUNT("rdma.read.posted");
      CATFISH_COUNT_ADD("rdma.read.bytes", chunk_bytes);
      sim->down_->Transfer(sim->cfg_.costs.read_request_bytes, [self]() {
        self->sim->nic_->Submit(self->sim->cfg_.costs.nic_read_op_us,
                                [self]() {
          self->sim->up_->Transfer(self->chunk_bytes, [self]() {
            const double p = self->sim->ReadRetryProbability();
            if (p > 0.0 && self->client->rng.NextDouble() < p) {
              ++self->sim->result_.version_retries;
              CATFISH_COUNT("catfish.client.version_retries");
              // Reaping the torn completion and reposting it alone:
              // retries arrive at their own times, so they don't ride
              // a chain even when doorbell batching is on.
              ++self->sim->result_.polls;
              CATFISH_COUNT("rdma.polls");
              ++self->sim->result_.doorbells;
              CATFISH_COUNT("rdma.doorbells");
              CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
              self->Issue(self);  // torn read: fetch again
              return;
            }
            self->done();
          });
        });
      });
    }
  };

  if (cfg_.multi_issue) {
    // All reads of the round posted back-to-back (pipelined on the NICs
    // and the wire); arrivals are processed as they land. With doorbell
    // batching the client stages each WR cheaply (verbs_stage_us) and
    // rings one doorbell per chain of ≤ doorbell_batch_limit WRs; the
    // chain's reads hit the wire together at flush time. Without it,
    // read i pays its own full post — the per-WR issue cadence of the
    // FaRM-style baseline (and of this sim before batching existed:
    // limit == 1 reproduces the old verbs_post_us * (i + 1) schedule
    // exactly).
    const bool batched = cfg_.doorbell_batching;
    const uint32_t limit =
        !batched ? 1
                 : (cfg_.doorbell_batch_limit == 0 ? n
                                                   : cfg_.doorbell_batch_limit);
    double t = 0.0;
    for (uint32_t issued = 0; issued < n;) {
      const uint32_t m = std::min(limit, n - issued);
      t += k.verbs_post_us + k.verbs_stage_us * (m - 1);
      ++result_.doorbells;
      CATFISH_COUNT("rdma.doorbells");
      CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", m);
      for (uint32_t j = 0; j < m; ++j) {
        auto process = [this, round, batched, node_done]() {
          // Completion pickup: a CQE that lands while the client is
          // still chewing an earlier node rides that pass's coalesced
          // reap (PollMany) for free; one that finds the client idle
          // costs a fresh poll. Unbatched reaping pays one poll — and
          // its CPU — per CQE.
          double cpu = cfg_.costs.client_node_us;
          if (!batched || sched_.now() >= round->client_free_at) {
            ++result_.polls;
            CATFISH_COUNT("rdma.polls");
            cpu += cfg_.costs.verbs_reap_us;
          }
          // Serial client CPU: reap (if charged) + decode + intersect.
          const double start = std::max(round->client_free_at, sched_.now());
          round->client_free_at = start + cpu;
          sched_.At(round->client_free_at, node_done);
        };
        auto op = std::make_shared<ReadOp>(
            ReadOp{this, &c, chunk_bytes, std::move(process)});
        sched_.After(t, [op]() { op->Issue(op); });
      }
      issued += m;
    }
    // The client thread is inside the issue loop until the last flush:
    // no completion can be reaped before it. This is where batching's
    // CPU win lands — the loop releases the core (m-1) * (post - stage)
    // microseconds earlier per chain than per-WR posting.
    round->client_free_at = sched_.now() + t;
  } else {
    // Single-issue: read i+1 posts only after read i is fully processed
    // — every node access pays a full round trip (Fig 8's baseline).
    // Build the sequential chain explicitly.
    auto issue_seq = std::make_shared<std::function<void(uint32_t)>>();
    *issue_seq = [this, &c, n, chunk_bytes, round, node_done,
                  issue_seq](uint32_t i) {
      auto process = [this, round, node_done, issue_seq, i, n]() {
        // Lock-step issue: every completion is reaped alone.
        ++result_.polls;
        CATFISH_COUNT("rdma.polls");
        const double start = std::max(round->client_free_at, sched_.now());
        round->client_free_at =
            start + cfg_.costs.client_node_us + cfg_.costs.verbs_reap_us;
        sched_.At(round->client_free_at, [node_done, issue_seq, i, n]() {
          node_done();
          if (i + 1 < n) {
            (*issue_seq)(i + 1);
          } else {
            // Break the self-capture cycle so the chain state frees.
            *issue_seq = nullptr;
          }
        });
      };
      auto op = std::make_shared<ReadOp>(
          ReadOp{this, &c, chunk_bytes, std::move(process)});
      ++result_.doorbells;  // one WR, one doorbell — nothing to chain
      CATFISH_COUNT("rdma.doorbells");
      CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
      sched_.After(cfg_.costs.verbs_post_us, [op]() { op->Issue(op); });
    };
    (*issue_seq)(0);
  }
}

void ClusterSim::ScheduleHeartbeat() {
  sched_.After(cfg_.adaptive.heartbeat_interval_us, [this]() {
    if (outstanding_ == 0) return;  // run drained; stop the pulse
    const double now = sched_.now();
    const double util = hb_window_.Advance(
        now, cpu_->busy_core_us() + writer_->busy_core_us(),
        cfg_.server_cores);
    CATFISH_GAUGE_SET("catfish.server.utilization", util);
    CATFISH_EVENT(kUtilization, static_cast<uint64_t>(now), 0, util, util);
    for (auto& c : clients_) {
      // Heartbeats ride the response rings: the server writes them to
      // each connection in turn and every client consumes its mailbox at
      // its own next request, so delivery is naturally staggered. The
      // jitter also prevents an artificial thundering herd of offload
      // windows that lockstep virtual time would otherwise create.
      const double jitter =
          c->rng.NextDouble() *
          (static_cast<double>(cfg_.adaptive.heartbeat_interval_us) / 4.0);
      sched_.After(fabric_.base_latency_us + jitter,
                   [this, &ctrl = c->ctrl, util, idx = c->index]() {
                     ctrl.OnHeartbeat(util);
                     CATFISH_EVENT(kHeartbeat,
                                   static_cast<uint64_t>(sched_.now()), idx,
                                   util, 0.0);
                   });
    }
    ScheduleHeartbeat();
  });
}

void ClusterSim::ScheduleSample() {
  telemetry::MetricsSampler* s = cfg_.sampler;
  sched_.After(static_cast<double>(s->config().window_us), [this, s]() {
    s->Tick(static_cast<uint64_t>(sched_.now()));
    if (outstanding_ == 0) return;  // run drained; stop the pulse
    ScheduleSample();
  });
}

RunResult ClusterSim::Run() {
  // Stagger client start times slightly to break lockstep symmetry.
  for (auto& c : clients_) {
    sched_.After(static_cast<double>(c->index) * 0.11,
                 [this, &c = *c]() { StartNextRequest(c); });
  }
  if (cfg_.scheme == Scheme::kCatfish) ScheduleHeartbeat();
  if (cfg_.sampler != nullptr) {
    cfg_.sampler->Tick(static_cast<uint64_t>(sched_.now()));  // baseline
    ScheduleSample();
  }

  sched_.Run();
  // Flush the partial final window (a no-op if the pulse just ticked).
  if (cfg_.sampler != nullptr) {
    cfg_.sampler->Tick(static_cast<uint64_t>(sched_.now()));
  }

  // The controllers emit adaptive.* metrics live; these sums only feed
  // the RunResult the benches print.
  for (const auto& c : clients_) {
    const AdaptiveStats& st = c->ctrl.stats();
    result_.mode_switches += st.mode_switches;
    result_.adaptive_escalations += st.escalations;
  }

  if (result_.duration_us > 0.0) {
    result_.throughput_kops =
        static_cast<double>(result_.completed) / result_.duration_us * 1e3;
    result_.server_cpu_util =
        std::min(1.0, (cpu_->busy_core_us() + writer_->busy_core_us()) /
                          (result_.duration_us * cfg_.server_cores));
    result_.server_tx_gbps = static_cast<double>(up_->bytes_transferred()) *
                             8.0 / (result_.duration_us * 1e3);
    result_.server_rx_gbps = static_cast<double>(down_->bytes_transferred()) *
                             8.0 / (result_.duration_us * 1e3);
  }
  return result_;
}

}  // namespace catfish::model

#include "des/resources.h"

#include <algorithm>
#include <utility>

namespace catfish::des {

void CpuPool::Submit(double service_us, std::function<void()> done) {
  Job job{service_us, std::move(done)};
  if (busy_ < cores_) {
    StartJob(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void CpuPool::StartJob(Job job) {
  ++busy_;
  busy_core_us_ += job.service_us;
  sched_->After(job.service_us, [this, done = std::move(job.done)]() mutable {
    FinishJob();
    done();
  });
}

void CpuPool::FinishJob() {
  --busy_;
  if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
}

void Link::Transfer(uint64_t bytes, std::function<void()> delivered) {
  const double ser = SerializationUs(bytes);
  const double start = std::max(free_at_, sched_->now());
  free_at_ = start + ser;
  busy_us_ += ser;
  bytes_ += bytes;
  sched_->At(free_at_ + latency_us_, std::move(delivered));
}

}  // namespace catfish::des

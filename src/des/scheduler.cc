#include "des/scheduler.h"

#include <cassert>
#include <utility>

namespace catfish::des {

void Scheduler::At(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved
  // out before pop, so copy the metadata and move the closure.
  auto& top = const_cast<Event&>(queue_.top());
  now_ = top.t;
  auto fn = std::move(top.fn);
  queue_.pop();
  fn();
  return true;
}

void Scheduler::Run(Time until) {
  while (!queue_.empty() && queue_.top().t <= until) {
    Step();
  }
}

}  // namespace catfish::des

// Simulated contended resources: multi-core CPU pools and network links.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>

#include "des/scheduler.h"

namespace catfish::des {

/// An m-core CPU served FCFS: jobs occupy one core for their service
/// time; excess jobs queue. Tracks cumulative busy core-time so the
/// cluster model can compute utilization over heartbeat windows — the
/// u_serv signal of Algorithm 1.
class CpuPool {
 public:
  CpuPool(Scheduler& sched, unsigned cores)
      : sched_(&sched), cores_(cores) {}

  /// Runs `done` after the job waited for a core and held it for
  /// `service_us`.
  void Submit(double service_us, std::function<void()> done);

  unsigned cores() const noexcept { return cores_; }
  size_t queued() const noexcept { return queue_.size(); }
  unsigned busy_cores() const noexcept { return busy_; }

  /// Cumulative core-microseconds of useful work so far.
  double busy_core_us() const noexcept { return busy_core_us_; }

  /// Utilization over a window: Δbusy / (Δwall · cores).
  double WindowUtilization(double window_start_busy_us,
                           double window_us) const noexcept {
    if (window_us <= 0) return 0.0;
    return (busy_core_us_ - window_start_busy_us) / (window_us * cores_);
  }

 private:
  struct Job {
    double service_us;
    std::function<void()> done;
  };

  void StartJob(Job job);
  void FinishJob();

  Scheduler* sched_;
  unsigned cores_;
  unsigned busy_ = 0;
  std::deque<Job> queue_;
  double busy_core_us_ = 0.0;
};

/// Windowed-utilization accumulator for heartbeat emitters: each
/// Advance() returns Δbusy / (Δwall · cores) since the previous call,
/// clamped to [0,1], and opens the next window. This is the u_serv each
/// heartbeat carries (Algorithm 1); keeping the window state here lets
/// every model (single-server cluster, per-shard) share one definition
/// instead of hand-rolling the start-of-window bookkeeping.
class UtilizationWindow {
 public:
  /// `busy_core_us` is the emitter's cumulative busy core-time (e.g. the
  /// sum over its CpuPools) at virtual time `now_us`.
  double Advance(double now_us, double busy_core_us, double cores) noexcept {
    const double window_us = now_us - start_t_us_;
    const double util =
        std::min(1.0, (busy_core_us - start_busy_us_) /
                          std::max(1.0, window_us * cores));
    start_busy_us_ = busy_core_us;
    start_t_us_ = now_us;
    return util;
  }

 private:
  double start_busy_us_ = 0.0;
  double start_t_us_ = 0.0;
};

/// A unidirectional link: transfers serialize at `bandwidth_gbps`, then
/// propagate for `latency_us`. Serialization is the contended stage, so
/// concurrent transfers queue — this is what saturates the server NIC in
/// Fig 2(a) and what offloading competes with fast messaging for.
class Link {
 public:
  Link(Scheduler& sched, double bandwidth_gbps, double latency_us)
      : sched_(&sched), bandwidth_gbps_(bandwidth_gbps),
        latency_us_(latency_us) {}

  /// Delivers `delivered` once `bytes` have fully serialized and then
  /// propagated.
  void Transfer(uint64_t bytes, std::function<void()> delivered);

  double SerializationUs(uint64_t bytes) const noexcept {
    if (bandwidth_gbps_ <= 0) return 0.0;
    return static_cast<double>(bytes) * 8.0 / (bandwidth_gbps_ * 1e3);
  }

  /// Cumulative busy (serializing) microseconds — bandwidth accounting.
  double busy_us() const noexcept { return busy_us_; }
  uint64_t bytes_transferred() const noexcept { return bytes_; }
  double bandwidth_gbps() const noexcept { return bandwidth_gbps_; }

  /// Link utilization over a window given the busy time at its start.
  double WindowUtilization(double window_start_busy_us,
                           double window_us) const noexcept {
    if (window_us <= 0) return 0.0;
    return (busy_us_ - window_start_busy_us) / window_us;
  }

 private:
  Scheduler* sched_;
  double bandwidth_gbps_;
  double latency_us_;
  /// Virtual time at which the link finishes everything queued so far.
  double free_at_ = 0.0;
  double busy_us_ = 0.0;
  uint64_t bytes_ = 0;
};

}  // namespace catfish::des

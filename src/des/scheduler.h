// Discrete-event simulation core.
//
// The paper's evaluation runs up to 256 concurrent clients against a
// 28-core server — far beyond what a real-thread run on this machine can
// exhibit. The benchmarks therefore run in virtual time: an event queue
// with deterministic ordering, over which cluster_model.h builds CPU and
// link resources. The R-tree operations themselves still execute for
// real (execution-driven simulation); only their *costs* are virtual.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace catfish::des {

/// Virtual time in microseconds.
using Time = double;

class Scheduler {
 public:
  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Events at equal times
  /// run in insertion order (stable), keeping runs deterministic.
  void At(Time t, std::function<void()> fn);

  /// Schedules `fn` after `dt` microseconds.
  void After(Time dt, std::function<void()> fn) { At(now_ + dt, std::move(fn)); }

  /// Runs one event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue empties or virtual time exceeds `until`.
  void Run(Time until = 1e18);

  size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    Time t;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace catfish::des

// Safe POD (de)serialization helpers for message buffers.
//
// All wire formats in this project are little-endian host-order structs
// copied with memcpy — never by pointer reinterpretation — to keep the
// code free of alignment/aliasing UB (Core Guidelines type-safety profile).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace catfish {

/// Copies `n` bytes with relaxed word-sized atomic accesses.
///
/// For memory that is racily shared across threads under a seqlock (the
/// versioned chunk layout, rtree/layout.h): the version stamps make torn
/// data *detectable*, but the byte copies themselves must still be free
/// of undefined behaviour. Plain memcpy between a seqlock writer and the
/// simulated NIC's READ service is a data race; copying through relaxed
/// atomics keeps the race defined (and ThreadSanitizer-clean) at zero
/// cost on x86, where relaxed word accesses are ordinary loads/stores.
inline void RelaxedCopy(std::byte* dst, const std::byte* src,
                        size_t n) noexcept {
  size_t off = 0;
  const bool word_aligned =
      reinterpret_cast<uintptr_t>(dst) % alignof(uint32_t) == 0 &&
      reinterpret_cast<uintptr_t>(src) % alignof(uint32_t) == 0;
  if (word_aligned) {
    for (; off + sizeof(uint32_t) <= n; off += sizeof(uint32_t)) {
      const uint32_t v =
          std::atomic_ref<uint32_t>(
              *const_cast<uint32_t*>(
                  reinterpret_cast<const uint32_t*>(src + off)))
              .load(std::memory_order_relaxed);
      std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t*>(dst + off))
          .store(v, std::memory_order_relaxed);
    }
  }
  for (; off < n; ++off) {
    const std::byte v =
        std::atomic_ref<std::byte>(*const_cast<std::byte*>(src + off))
            .load(std::memory_order_relaxed);
    std::atomic_ref<std::byte>(dst[off]).store(v, std::memory_order_relaxed);
  }
}

/// Zeroes `n` bytes with the same relaxed word-sized atomic accesses as
/// RelaxedCopy, for regions a remote QP may write concurrently (a ring
/// receiver clearing consumed frames while the next WRITE is landing).
inline void RelaxedZero(std::byte* dst, size_t n) noexcept {
  size_t off = 0;
  if (reinterpret_cast<uintptr_t>(dst) % alignof(uint32_t) == 0) {
    for (; off + sizeof(uint32_t) <= n; off += sizeof(uint32_t)) {
      std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t*>(dst + off))
          .store(0, std::memory_order_relaxed);
    }
  }
  for (; off < n; ++off) {
    std::atomic_ref<std::byte>(dst[off]).store(std::byte{0},
                                               std::memory_order_relaxed);
  }
}

template <typename T>
concept TriviallyCopyable = std::is_trivially_copyable_v<T>;

/// Copy a POD value into `dst` at `offset`. The caller guarantees space.
template <TriviallyCopyable T>
void StorePod(std::span<std::byte> dst, size_t offset, const T& value) {
  assert(offset + sizeof(T) <= dst.size());
  std::memcpy(dst.data() + offset, &value, sizeof(T));
}

/// Read a POD value out of `src` at `offset`.
template <TriviallyCopyable T>
T LoadPod(std::span<const std::byte> src, size_t offset) {
  assert(offset + sizeof(T) <= src.size());
  T value;
  std::memcpy(&value, src.data() + offset, sizeof(T));
  return value;
}

/// Append-only byte builder for encoding variable-length messages.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  template <TriviallyCopyable T>
  void Append(const T& value) {
    const size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &value, sizeof(T));
  }

  void AppendBytes(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  std::span<const std::byte> bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<std::byte> Take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential reader over an encoded message.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <TriviallyCopyable T>
  T Read() {
    T value = LoadPod<T>(data_, pos_);
    pos_ += sizeof(T);
    return value;
  }

  std::span<const std::byte> ReadBytes(size_t n) {
    assert(pos_ + n <= data_.size());
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace catfish

// Wall-clock helpers for the real-thread (non-simulated) paths.
#pragma once

#include <chrono>
#include <cstdint>

namespace catfish {

/// Monotonic timestamp in nanoseconds.
inline uint64_t NowNanos() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic timestamp in microseconds.
inline uint64_t NowMicros() noexcept { return NowNanos() / 1000; }

}  // namespace catfish

// Bounded lock-free single-producer single-consumer queue.
//
// Used for handing work requests from queue pairs to the simulated NIC
// service thread. Capacity is fixed at construction and rounded up to a
// power of two.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace catfish {

// 64 bytes on every target this project supports (x86-64, aarch64).
// Not std::hardware_destructive_interference_size: its value is an ABI
// hazard and GCC warns on use.
inline constexpr size_t kCacheLineSize = 64;

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) : mask_(RoundUpPow2(capacity) - 1) {
    slots_.resize(mask_ + 1);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the queue is full.
  bool TryPush(T value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the queue is empty.
  std::optional<T> TryPop() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return std::nullopt;
    }
    T value = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  static size_t RoundUpPow2(size_t v) {
    assert(v > 0);
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const size_t mask_;
  std::vector<T> slots_;
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  // Producer-local / consumer-local caches of the opposite index.
  alignas(kCacheLineSize) size_t head_cache_ = 0;
  alignas(kCacheLineSize) size_t tail_cache_ = 0;
};

}  // namespace catfish

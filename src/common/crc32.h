// CRC32 (ISO-HDLC polynomial, the zlib crc32), table-driven.
//
// Shared by every CRC-framed on-disk and on-wire format in the tree —
// the WAL and checkpoint blobs (durable), and the replication batch/ack
// frames (msg). Lives in common so msg does not have to depend on
// durable for a checksum.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace catfish {

namespace detail {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr auto kCrc32Table = MakeCrc32Table();

}  // namespace detail

inline uint32_t Crc32(std::span<const std::byte> bytes) noexcept {
  uint32_t c = 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    c = detail::kCrc32Table[(c ^ static_cast<uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace catfish

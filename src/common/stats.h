// Latency / value statistics used by benchmarks and the simulators.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace catfish {

/// Streaming mean / variance (Welford's algorithm).
class RunningStat {
 public:
  /// Reconstructs a stat from externally derived moments. `m2` is the
  /// sum of squared deviations from the mean (Welford's M2). Used by
  /// LogHistogram::Diff to express a window as later-minus-earlier.
  static RunningStat FromMoments(uint64_t n, double sum, double m2,
                                 double min, double max) noexcept;

  void Add(double x) noexcept;
  void Merge(const RunningStat& other) noexcept;

  uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }
  /// Sum of squared deviations from the mean (Welford's M2).
  double m2() const noexcept { return m2_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log-bucketed histogram for non-negative values (e.g. latency in
/// microseconds). Buckets grow geometrically, giving ~2% relative
/// quantile error with bounded memory regardless of sample count.
class LogHistogram {
 public:
  /// `min_value` is the resolution floor; values below it land in
  /// bucket 0. `growth` is the per-bucket geometric factor.
  explicit LogHistogram(double min_value = 1e-3, double growth = 1.02);

  void Add(double value) noexcept;
  void Merge(const LogHistogram& other);

  /// Later-minus-earlier histogram. `*this` must be a later observation
  /// of the same monotonically growing histogram that `earlier` was
  /// taken from; bucket counts subtract saturating at zero, mean and
  /// variance are reconstructed from moment differences, and min/max
  /// are approximated from the populated delta buckets. This is what
  /// makes windowed percentiles possible without per-window histograms.
  LogHistogram Diff(const LogHistogram& earlier) const;

  uint64_t count() const noexcept { return stat_.count(); }
  double mean() const noexcept { return stat_.mean(); }
  double min() const noexcept { return stat_.min(); }
  double max() const noexcept { return stat_.max(); }

  /// Quantile in [0,1]; returns 0 when empty.
  double Quantile(double q) const noexcept;
  double p50() const noexcept { return Quantile(0.50); }
  double p95() const noexcept { return Quantile(0.95); }
  double p99() const noexcept { return Quantile(0.99); }

  /// "mean=12.3 p50=11 p95=30 p99=41 max=55 n=1000"
  std::string Summary() const;

 private:
  size_t BucketFor(double value) const noexcept;
  double BucketLower(size_t idx) const noexcept;

  double min_value_;
  double log_growth_;
  std::vector<uint64_t> buckets_;
  RunningStat stat_;
};

}  // namespace catfish

// Jittered capped-exponential backoff, shared by every retry loop.
//
// A fleet of clients that all compute the same deterministic schedule
// retries in lockstep: the burst that overloaded the server is simply
// replayed every ceiling. Decorrelating the schedules breaks the storm,
// so every backoff in the tree — remote-engine version retries, the
// replication shipper's resync, client write retries, circuit-breaker
// open windows — draws its wait from [ceiling/2, ceiling] using a
// per-instance SplitMix64 stream seeded from the owner's identity.
// Determinism is preserved per owner (same seed, same schedule), which
// the simulators and tests rely on; only cross-owner correlation dies.
#pragma once

#include <algorithm>
#include <cstdint>

namespace catfish {

/// Stateful jitter source: one per retry loop, seeded once. Cheaper
/// than a full Xoshiro and good enough to decorrelate sleeps.
struct JitterState {
  uint64_t state = 0x9e3779b97f4a7c15ULL;

  explicit JitterState(uint64_t seed = 0) noexcept {
    state ^= seed + 0x9e3779b97f4a7c15ULL;
  }

  uint64_t Next() noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Maps `ceiling_us` to a jittered wait in [ceiling/2, ceiling]. A zero
/// ceiling stays zero (the caller's "yield instead of sleep" case).
inline uint64_t JitteredWait(JitterState& js, uint64_t ceiling_us) noexcept {
  if (ceiling_us == 0) return 0;
  const uint64_t half = ceiling_us - ceiling_us / 2;
  return ceiling_us / 2 + js.Next() % (half + 1);
}

/// The capped-exponential ceiling for `attempt` (1-based): initial_us
/// doubled per attempt, saturating at max_us. Shift is clamped so the
/// doubling cannot overflow.
inline uint64_t BackoffCeiling(uint32_t attempt, uint64_t initial_us,
                               uint64_t max_us) noexcept {
  if (initial_us == 0 || max_us == 0) return 0;
  const uint32_t step = std::min(attempt > 0 ? attempt - 1 : 0u, 20u);
  return std::min(initial_us << step, max_us);
}

/// One-call form: jittered capped-exponential wait for `attempt`.
inline uint64_t JitteredBackoff(JitterState& js, uint32_t attempt,
                                uint64_t initial_us,
                                uint64_t max_us) noexcept {
  return JitteredWait(js, BackoffCeiling(attempt, initial_us, max_us));
}

}  // namespace catfish

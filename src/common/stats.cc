#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace catfish {

void RunningStat::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ = total;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

LogHistogram::LogHistogram(double min_value, double growth)
    : min_value_(min_value), log_growth_(std::log(growth)) {}

size_t LogHistogram::BucketFor(double value) const noexcept {
  if (!(value > min_value_)) return 0;
  return 1 + static_cast<size_t>(std::log(value / min_value_) / log_growth_);
}

double LogHistogram::BucketLower(size_t idx) const noexcept {
  if (idx == 0) return 0.0;
  return min_value_ * std::exp(log_growth_ * static_cast<double>(idx - 1));
}

void LogHistogram::Add(double value) noexcept {
  stat_.Add(value);
  const size_t idx = BucketFor(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

void LogHistogram::Merge(const LogHistogram& other) {
  stat_.Merge(other.stat_);
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

double LogHistogram::Quantile(double q) const noexcept {
  const uint64_t n = stat_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Midpoint of the bucket, clamped into the observed range.
      const double lo = BucketLower(i);
      const double hi = BucketLower(i + 1);
      return std::clamp((lo + hi) / 2.0, stat_.min(), stat_.max());
    }
  }
  return stat_.max();
}

std::string LogHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f n=%llu",
                mean(), p50(), p95(), p99(), max(),
                static_cast<unsigned long long>(count()));
  return buf;
}

}  // namespace catfish

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace catfish {

RunningStat RunningStat::FromMoments(uint64_t n, double sum, double m2,
                                     double min, double max) noexcept {
  RunningStat s;
  if (n == 0) return s;
  s.n_ = n;
  s.sum_ = sum;
  s.mean_ = sum / static_cast<double>(n);
  s.m2_ = std::max(m2, 0.0);
  s.min_ = min;
  s.max_ = max;
  return s;
}

void RunningStat::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ = total;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

LogHistogram::LogHistogram(double min_value, double growth)
    : min_value_(min_value), log_growth_(std::log(growth)) {}

size_t LogHistogram::BucketFor(double value) const noexcept {
  if (!(value > min_value_)) return 0;
  return 1 + static_cast<size_t>(std::log(value / min_value_) / log_growth_);
}

double LogHistogram::BucketLower(size_t idx) const noexcept {
  if (idx == 0) return 0.0;
  return min_value_ * std::exp(log_growth_ * static_cast<double>(idx - 1));
}

void LogHistogram::Add(double value) noexcept {
  stat_.Add(value);
  const size_t idx = BucketFor(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

void LogHistogram::Merge(const LogHistogram& other) {
  stat_.Merge(other.stat_);
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

LogHistogram LogHistogram::Diff(const LogHistogram& earlier) const {
  LogHistogram out = *this;
  out.stat_ = RunningStat{};
  std::fill(out.buckets_.begin(), out.buckets_.end(), 0);

  uint64_t dn = 0;
  size_t lo = buckets_.size();
  size_t hi = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t before =
        i < earlier.buckets_.size() ? earlier.buckets_[i] : 0;
    const uint64_t d = buckets_[i] > before ? buckets_[i] - before : 0;
    out.buckets_[i] = d;
    if (d != 0) {
      dn += d;
      lo = std::min(lo, i);
      hi = i;
    }
  }
  if (dn == 0) return out;

  const double dsum = std::max(stat_.sum() - earlier.stat_.sum(), 0.0);
  const double mean = dsum / static_cast<double>(dn);
  // Sum of squares is additive (Σx² = M2 + n·mean²), so the window's M2
  // falls out of the difference of the two cumulative sums of squares.
  const auto sum_squares = [](const RunningStat& s) {
    return s.m2() + static_cast<double>(s.count()) * s.mean() * s.mean();
  };
  const double dm2 =
      sum_squares(stat_) - sum_squares(earlier.stat_) -
      static_cast<double>(dn) * mean * mean;
  double min = std::min(BucketLower(lo), mean);
  double max = std::max(std::min(BucketLower(hi + 1), stat_.max()), mean);
  out.stat_ = RunningStat::FromMoments(dn, dsum, dm2, min, max);
  return out;
}

double LogHistogram::Quantile(double q) const noexcept {
  const uint64_t n = stat_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Midpoint of the bucket, clamped into the observed range.
      const double lo = BucketLower(i);
      const double hi = BucketLower(i + 1);
      return std::clamp((lo + hi) / 2.0, stat_.min(), stat_.max());
    }
  }
  return stat_.max();
}

std::string LogHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f n=%llu",
                mean(), p50(), p95(), p99(), max(),
                static_cast<unsigned long long>(count()));
  return buf;
}

}  // namespace catfish

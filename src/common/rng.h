// Deterministic pseudo-random number generation for workloads and tests.
//
// The simulators and workload generators must be reproducible across runs,
// so everything takes an explicit seed; nothing reads global entropy.
#pragma once

#include <cstdint>
#include <cmath>

namespace catfish {

/// SplitMix64: used to expand a single u64 seed into a full generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  uint64_t Next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the std UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return Next(); }

  uint64_t Next() noexcept {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) noexcept {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      const uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bounded power-law sample: density f(t) ∝ t^exponent on [lo, hi],
  /// exponent != -1. The paper uses f(t) ∝ t^-0.99 (§V-B).
  double PowerLaw(double lo, double hi, double exponent) noexcept {
    const double a = exponent + 1.0;  // != 0 by precondition
    const double u = NextDouble();
    const double lo_a = std::pow(lo, a);
    const double hi_a = std::pow(hi, a);
    return std::pow(lo_a + u * (hi_a - lo_a), 1.0 / a);
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace catfish

// Storage backends for the durability subsystem: an append-only log
// device and an atomic checkpoint slot, both behind small interfaces so
// the unit tests and the DES can inject crash points at exact fsync
// boundaries instead of pulling power on real disks.
//
// The contract mirrors what a WAL needs from a file:
//
//  * Append()  buffers bytes (a page-cache write; NOT yet durable);
//  * Sync()    is the fsync boundary — everything appended so far
//              survives a crash after Sync returns;
//  * Reset()   atomically replaces the whole content (write-temp +
//              rename on a real filesystem) and is itself a sync point,
//              used for checkpoint-time log truncation.
//
// MemStorage additionally records the byte length at every sync and can
// clone "the disk as a crash at boundary k would have left it" — the
// primitive behind the crash-point matrix test (kill after every fsync
// in a scripted burst, recover, diff against the oracle).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace catfish::durable {

/// Append-only log device with an explicit durability boundary.
class LogStorage {
 public:
  virtual ~LogStorage() = default;

  /// Buffers `bytes` at the end of the log. Not durable until Sync().
  virtual void Append(std::span<const std::byte> bytes) = 0;

  /// The fsync boundary: all appended bytes are durable on return.
  virtual void Sync() = 0;

  /// Atomically replaces the whole log with `bytes` (temp-file + rename
  /// semantics) and syncs. Used for checkpoint-time truncation.
  virtual void Reset(std::span<const std::byte> bytes) = 0;

  /// Reads the entire current content — what a recovery would see.
  virtual std::vector<std::byte> ReadAll() const = 0;

  /// Bytes appended so far (durable or not).
  virtual size_t size() const = 0;
};

/// Atomic single-slot checkpoint store (a real deployment would use a
/// temp file renamed over the previous checkpoint).
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  /// Atomically replaces the stored checkpoint.
  virtual void Write(std::span<const std::byte> blob) = 0;

  /// The last completely written checkpoint, or nullopt when none.
  virtual std::optional<std::vector<std::byte>> Read() const = 0;
};

/// In-memory log device. Survives "process" restarts as long as the
/// object lives — the chaos fixture holds one per simulated disk and
/// hands it to each server incarnation. Thread-safe.
class MemLogStorage : public LogStorage {
 public:
  void Append(std::span<const std::byte> bytes) override;
  void Sync() override;
  void Reset(std::span<const std::byte> bytes) override;
  std::vector<std::byte> ReadAll() const override;
  size_t size() const override;

  /// Bytes guaranteed durable (length at the last sync boundary).
  size_t durable_size() const;
  /// Number of Sync()/Reset() boundaries crossed so far.
  uint64_t sync_count() const;
  /// Log length (bytes) right after the i-th sync boundary, i in
  /// [0, sync_count()). Cleared by Reset (the history restarts).
  std::vector<size_t> sync_history() const;

  /// The disk as a crash would have left it: everything durable at sync
  /// boundary `boundary` (0 = before any sync → empty log) plus
  /// `torn_extra_bytes` of whatever had been appended past it — the torn
  /// unsynced tail a real crash can leave behind.
  std::unique_ptr<MemLogStorage> CrashClone(size_t boundary,
                                            size_t torn_extra_bytes = 0) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::byte> bytes_;
  size_t durable_len_ = 0;
  std::vector<size_t> sync_lens_;
};

/// In-memory checkpoint slot. Thread-safe.
class MemCheckpointStore : public CheckpointStore {
 public:
  void Write(std::span<const std::byte> blob) override;
  std::optional<std::vector<std::byte>> Read() const override;
  uint64_t writes() const;

 private:
  mutable std::mutex mu_;
  std::optional<std::vector<std::byte>> blob_;
  uint64_t writes_ = 0;
};

/// File-backed log device (POSIX): Append buffers in memory, Sync
/// write()s the delta and fsyncs, Reset writes a temp file and renames
/// it over the log. For the recovery bench and any real deployment of
/// the simulation harness. Not safe for concurrent external writers.
class FileLogStorage : public LogStorage {
 public:
  /// Opens (creating if absent) `path` and loads its current content.
  explicit FileLogStorage(std::string path);
  ~FileLogStorage() override;

  void Append(std::span<const std::byte> bytes) override;
  void Sync() override;
  void Reset(std::span<const std::byte> bytes) override;
  std::vector<std::byte> ReadAll() const override;
  size_t size() const override;

 private:
  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  std::vector<std::byte> bytes_;   // full logical content
  size_t flushed_len_ = 0;         // bytes already write()n to fd_
};

/// File-backed checkpoint slot with temp-file + rename atomicity.
class FileCheckpointStore : public CheckpointStore {
 public:
  explicit FileCheckpointStore(std::string path) : path_(std::move(path)) {}

  void Write(std::span<const std::byte> blob) override;
  std::optional<std::vector<std::byte>> Read() const override;

 private:
  mutable std::mutex mu_;
  std::string path_;
};

}  // namespace catfish::durable

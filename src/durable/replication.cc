#include "durable/replication.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "msg/protocol.h"
#include "telemetry/metrics.h"

namespace catfish::durable {

// ---------------------------------------------------------------------------
// ReplicationGate
// ---------------------------------------------------------------------------

void ReplicationGate::Publish(uint64_t lsn) {
  {
    const std::scoped_lock lock(mu_);
    if (lsn <= acked_) return;
    acked_ = lsn;
  }
  cv_.notify_all();
}

void ReplicationGate::Fence() {
  {
    const std::scoped_lock lock(mu_);
    if (fenced_) return;
    fenced_ = true;
  }
  CATFISH_COUNT("repl.gate_fenced");
  cv_.notify_all();
}

bool ReplicationGate::WaitAcked(uint64_t lsn) {
  std::unique_lock lock(mu_);
  const auto covered = [&] { return acked_ >= lsn || fenced_; };
  if (wait_timeout_us_ == 0) {
    cv_.wait(lock, covered);
  } else if (!cv_.wait_for(lock, std::chrono::microseconds(wait_timeout_us_),
                           covered)) {
    CATFISH_COUNT("repl.gate_timeouts");
    return false;
  }
  return acked_ >= lsn;
}

bool ReplicationGate::fenced() const {
  const std::scoped_lock lock(mu_);
  return fenced_;
}

uint64_t ReplicationGate::acked_lsn() const {
  const std::scoped_lock lock(mu_);
  return acked_;
}

// ---------------------------------------------------------------------------
// ReplChannel
// ---------------------------------------------------------------------------

ReplChannel::ReplChannel(std::shared_ptr<rdma::SimNode> primary,
                         std::shared_ptr<rdma::SimNode> follower,
                         size_t batch_ring_capacity,
                         size_t ack_ring_capacity) {
  p_send_cq_ = primary->CreateCq();
  p_recv_cq_ = primary->CreateCq();
  f_send_cq_ = follower->CreateCq();
  f_recv_cq_ = follower->CreateCq();
  p_qp_ = primary->CreateQp(p_send_cq_, p_recv_cq_);
  f_qp_ = follower->CreateQp(f_send_cq_, f_recv_cq_);
  rdma::QueuePair::Connect(p_qp_, f_qp_);

  batch_ring_mem_.assign(batch_ring_capacity, std::byte{0});
  ack_ring_mem_.assign(ack_ring_capacity, std::byte{0});
  const auto batch_mr = follower->RegisterMemory(batch_ring_mem_);
  const auto ack_mr = primary->RegisterMemory(ack_ring_mem_);
  const auto batch_ack_mr = primary->RegisterMemory(batch_ack_cell_);
  const auto ack_ack_mr = follower->RegisterMemory(ack_ack_cell_);

  batch_tx_ = std::make_unique<msg::RingSender>(
      p_qp_, rdma::RemoteAddr{batch_mr.rkey, 0}, batch_ring_capacity,
      std::span<std::byte>(batch_ack_cell_));
  batch_rx_ = std::make_unique<msg::RingReceiver>(
      std::span<std::byte>(batch_ring_mem_), f_qp_,
      rdma::RemoteAddr{batch_ack_mr.rkey, 0});
  ack_tx_ = std::make_unique<msg::RingSender>(
      f_qp_, rdma::RemoteAddr{ack_mr.rkey, 0}, ack_ring_capacity,
      std::span<std::byte>(ack_ack_cell_));
  ack_rx_ = std::make_unique<msg::RingReceiver>(
      std::span<std::byte>(ack_ring_mem_), p_qp_,
      rdma::RemoteAddr{ack_ack_mr.rkey, 0});
}

// ---------------------------------------------------------------------------
// ReplicationShipper
// ---------------------------------------------------------------------------

ReplicationShipper::ReplicationShipper(DurabilityManager& mgr,
                                       ReplicationShipperConfig cfg)
    : mgr_(&mgr), cfg_(cfg), gate_(cfg.gate_timeout_us) {
  cfg_.max_batch_records =
      std::min(cfg_.max_batch_records, msg::kMaxReplBatchRecords);
  if (cfg_.max_batch_records == 0) cfg_.max_batch_records = 1;
}

ReplicationShipper::~ReplicationShipper() { Stop(); }

void ReplicationShipper::AddFollower(msg::RingSender* batch_tx,
                                     msg::RingReceiver* ack_rx) {
  Follower f;
  f.batch_tx = batch_tx;
  f.ack_rx = ack_rx;
  // Ship everything past what the primary's log has already compacted
  // into a checkpoint; a fresh follower re-receives the whole live log.
  f.next_lsn = 1;
  f.jitter = JitterState(cfg_.shard * 131 + followers_.size() + 1);
  followers_.push_back(f);
  acked_snapshot_.push_back(0);
}

void ReplicationShipper::Start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  if (followers_.empty()) return;  // nothing to ship, gate stays open
  mgr_->SetCommitSink([this](const WalRecord& rec) {
    const std::scoped_lock lock(buf_mu_);
    window_.push_back(rec);
    while (window_.size() > cfg_.window_records) window_.pop_front();
  });
  mgr_->SetReplicationGate(&gate_);
  mgr_->SetTruncateFloor(0);  // retain everything until followers ack
  thread_ = std::thread([this] { Loop(); });
}

void ReplicationShipper::Stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  gate_.Fence();
  if (thread_.joinable()) thread_.join();
  if (started_ && !followers_.empty()) {
    mgr_->SetReplicationGate(nullptr);
    mgr_->SetCommitSink(nullptr);
  }
}

std::vector<uint64_t> ReplicationShipper::follower_acked() const {
  const std::scoped_lock lock(stats_mu_);
  return acked_snapshot_;
}

ShipperStats ReplicationShipper::stats() const {
  const std::scoped_lock lock(stats_mu_);
  return stats_;
}

void ReplicationShipper::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    bool progressed = false;
    for (Follower& f : followers_) {
      DrainAcks(f);
      if (gate_.fenced()) break;  // zombie: keep draining, stop shipping
      progressed = ShipNext(f) || progressed;
    }
    PublishProgress();
    if (!progressed) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cfg_.poll_interval_us));
    }
  }
  // Final drain so follower_acked()/stats are fresh at teardown.
  for (Follower& f : followers_) DrainAcks(f);
  PublishProgress();
}

void ReplicationShipper::DrainAcks(Follower& f) {
  while (f.ack_rx->TryReceive(f.rx_scratch)) {
    if (f.rx_scratch.type != static_cast<uint16_t>(msg::MsgType::kReplAck)) {
      continue;
    }
    const auto ack = msg::DecodeReplAck(f.rx_scratch.payload);
    if (!ack) continue;  // corrupt ack: the retry path re-covers it
    if (f.inflight > 0) --f.inflight;
    if (ack->status == msg::ReplAckStatus::kEpochReject ||
        ack->epoch > mgr_->epoch()) {
      // The follower serves a newer epoch: we lost a promotion race and
      // are a zombie. Never ack a client again.
      {
        const std::scoped_lock lock(stats_mu_);
        ++stats_.epoch_rejects;
      }
      CATFISH_COUNT("repl.shipper_epoch_rejects");
      gate_.Fence();
      continue;
    }
    if (ack->status == msg::ReplAckStatus::kGap) {
      // Follower's tail is behind what we sent: rewind and resync.
      f.next_lsn = ack->durable_lsn + 1;
      f.inflight = 0;
      const std::scoped_lock lock(stats_mu_);
      ++stats_.resyncs;
      continue;
    }
    f.acked_lsn = std::max(f.acked_lsn, ack->durable_lsn);
  }
}

bool ReplicationShipper::ShipNext(Follower& f) {
  if (f.inflight >= cfg_.max_inflight_batches) return false;
  const uint64_t now = NowMicros();
  if (now < f.next_send_us) return false;  // backing off

  // Collect the next contiguous run from the in-memory window, falling
  // back to log storage when the follower is behind the window.
  std::vector<WalRecord> run;
  {
    const std::scoped_lock lock(buf_mu_);
    if (!window_.empty() && f.next_lsn >= window_.front().lsn) {
      const uint64_t first = window_.front().lsn;
      if (f.next_lsn <= window_.back().lsn) {
        const size_t start = static_cast<size_t>(f.next_lsn - first);
        const size_t n = std::min(cfg_.max_batch_records,
                                  window_.size() - start);
        run.assign(window_.begin() + static_cast<ptrdiff_t>(start),
                   window_.begin() + static_cast<ptrdiff_t>(start + n));
      }
    }
  }
  if (run.empty()) {
    if (f.next_lsn > mgr_->wal().last_lsn()) return false;  // caught up
    // Window miss: the record exists but predates the window (fresh
    // follower or long lag) — resync from the log image.
    auto tail = mgr_->ReadLogTail(f.next_lsn);
    if (tail.empty()) return false;
    if (tail.size() > cfg_.max_batch_records) {
      tail.resize(cfg_.max_batch_records);
    }
    run = std::move(tail);
    const std::scoped_lock lock(stats_mu_);
    ++stats_.resyncs;
  }

  msg::ReplBatch batch;
  batch.shard = cfg_.shard;
  batch.epoch = mgr_->epoch();
  batch.first_lsn = run.front().lsn;
  batch.records.reserve(run.size());
  for (const WalRecord& rec : run) {
    msg::ReplRecord r;
    r.op = static_cast<uint8_t>(rec.op);
    r.client_gen = rec.client_gen;
    r.req_id = rec.req_id;
    r.rect = rec.rect;
    r.rect_id = rec.rect_id;
    batch.records.push_back(r);
  }
  const auto frame = msg::Encode(batch);
  if (!f.batch_tx->TrySend(static_cast<uint16_t>(msg::MsgType::kReplBatch),
                           msg::kFlagEnd, frame)) {
    // Ring back-pressure: capped-exponential retry, jittered so
    // followers stalled by the same cause don't retry in lock-step.
    f.backoff_us = JitteredBackoff(f.jitter, f.retry_streak++,
                                   cfg_.retry_initial_us, cfg_.retry_max_us);
    f.next_send_us = now + f.backoff_us;
    const std::scoped_lock lock(stats_mu_);
    ++stats_.retries;
    CATFISH_COUNT("repl.ship_retries");
    return false;
  }
  f.backoff_us = 0;
  f.next_send_us = 0;
  f.retry_streak = 0;
  f.next_lsn = run.back().lsn + 1;
  ++f.inflight;
  {
    const std::scoped_lock lock(stats_mu_);
    ++stats_.batches_sent;
    stats_.records_shipped += run.size();
  }
  CATFISH_COUNT("repl.batches_sent");
  CATFISH_COUNT_ADD("repl.records_shipped",
                    static_cast<int64_t>(run.size()));
  return true;
}

void ReplicationShipper::PublishProgress() {
  if (followers_.empty()) return;
  std::vector<uint64_t> acked;
  acked.reserve(followers_.size());
  for (const Follower& f : followers_) acked.push_back(f.acked_lsn);
  // Retention floor first: nothing below the slowest follower may be
  // truncated out of the log, or it could never resync — and once
  // follower_acked()/the gate expose an LSN as acked, a concurrent
  // checkpoint must already be allowed to truncate through it, so the
  // floor moves before either becomes visible.
  mgr_->SetTruncateFloor(*std::min_element(acked.begin(), acked.end()));
  {
    const std::scoped_lock lock(stats_mu_);
    acked_snapshot_ = acked;
  }
  // Quorum LSN: the k-th highest acked LSN covers >= k followers.
  const size_t k = std::clamp<size_t>(cfg_.ack_followers, 1, acked.size());
  std::vector<uint64_t> sorted = acked;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  gate_.Publish(sorted[k - 1]);
  CATFISH_GAUGE_SET("repl.quorum_lsn",
                    static_cast<int64_t>(sorted[k - 1]));
}

// ---------------------------------------------------------------------------
// FollowerApplier
// ---------------------------------------------------------------------------

FollowerApplier::FollowerApplier(DurabilityManager& mgr,
                                 rtree::RStarTree& tree,
                                 msg::RingReceiver* batch_rx,
                                 msg::RingSender* ack_tx,
                                 FollowerApplierConfig cfg)
    : mgr_(&mgr),
      tree_(&tree),
      batch_rx_(batch_rx),
      ack_tx_(ack_tx),
      cfg_(cfg) {}

FollowerApplier::~FollowerApplier() { Stop(); }

void FollowerApplier::Start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void FollowerApplier::Stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
}

ApplierStats FollowerApplier::stats() const {
  const std::scoped_lock lock(stats_mu_);
  return stats_;
}

void FollowerApplier::SendAck(msg::ReplAckStatus status) {
  msg::ReplAck ack;
  ack.shard = cfg_.shard;
  ack.epoch = mgr_->epoch();
  ack.durable_lsn = mgr_->durable_lsn();
  ack.status = status;
  const auto frame = msg::Encode(ack);
  // Acks are tiny and the ack ring drains fast; spin until it takes.
  while (!stop_.load(std::memory_order_relaxed)) {
    if (ack_tx_->TrySend(static_cast<uint16_t>(msg::MsgType::kReplAck),
                         msg::kFlagEnd, frame)) {
      return;
    }
    std::this_thread::yield();
  }
}

void FollowerApplier::Loop() {
  msg::Message m;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!batch_rx_->TryReceive(m)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cfg_.poll_interval_us));
      continue;
    }
    if (m.type != static_cast<uint16_t>(msg::MsgType::kReplBatch)) continue;
    msg::ReplDecodeStatus ds;
    const auto batch = msg::DecodeReplBatch(m.payload, &ds);
    if (!batch) {
      const std::scoped_lock lock(stats_mu_);
      ++stats_.decode_errors;
      CATFISH_COUNT("repl.decode_errors");
      continue;  // drop; the shipper's window retries cover it
    }
    if (batch->epoch < mgr_->epoch()) {
      // Zombie primary: this stream lost a promotion. Bounce it with
      // our epoch so the sender fences itself.
      {
        const std::scoped_lock lock(stats_mu_);
        ++stats_.epoch_rejects;
      }
      CATFISH_COUNT("repl.epoch_rejects");
      SendAck(msg::ReplAckStatus::kEpochReject);
      continue;
    }
    mgr_->SetEpoch(batch->epoch);

    bool gap = false;
    uint64_t applied = 0;
    for (size_t i = 0; i < batch->records.size(); ++i) {
      const msg::ReplRecord& r = batch->records[i];
      WalRecord rec;
      rec.lsn = batch->first_lsn + i;
      rec.op = static_cast<WalOp>(r.op);
      rec.client_gen = r.client_gen;
      rec.req_id = r.req_id;
      rec.epoch = batch->epoch;
      rec.rect = r.rect;
      rec.rect_id = r.rect_id;
      if (!mgr_->ApplyReplicated(*tree_, rec)) {
        gap = true;
        break;
      }
      ++applied;
    }
    if (gap) {
      const std::scoped_lock lock(stats_mu_);
      ++stats_.gaps;
      CATFISH_COUNT("repl.gaps");
    }
    if (applied > 0) {
      mgr_->CommitThrough(batch->first_lsn + applied - 1);
      const std::scoped_lock lock(stats_mu_);
      ++stats_.batches_applied;
      stats_.records_applied += applied;
    }
    SendAck(gap ? msg::ReplAckStatus::kGap : msg::ReplAckStatus::kOk);
  }
}

}  // namespace catfish::durable

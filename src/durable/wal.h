// Group-committed write-ahead log for the Catfish write path.
//
// Every acked Insert/Delete is framed as one CRC32-protected record and
// made durable (Sync) before the ack leaves the server, so the state a
// crash loses is exactly the state no client was ever told about. The
// paper routes all writes through fast messaging so the server
// serializes mutations (§III); that makes the server the single point of
// state loss — the WAL removes it (cf. Spindle's observation that making
// RDMA-acked small updates durable is where the engineering is).
//
// Frame format, little-endian:
//
//   u32 magic   'WALR'
//   u32 length  payload bytes
//   u64 lsn     contiguous from 1 (or checkpoint LSN + 1 after truncation)
//   u32 crc     CRC32 over [length | lsn | payload]
//   payload[length]
//
// The CRC covers the length and lsn fields so a corrupted header cannot
// mis-frame the rest of the stream. On open, the decoder accepts the
// longest valid prefix: first bad magic / bad CRC / short frame /
// non-contiguous lsn truncates the tail (the normal result of a crash
// mid-append) and recovery rewrites the log without it.
//
// Commit(lsn) is a group commit: concurrent committers ride one Sync —
// the leader syncs everything appended so far, followers just wait for
// durable_lsn to cover them. With the single-writer tree lock upstream,
// this is the only place the write path ever blocks on storage.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/crc32.h"
#include "durable/storage.h"
#include "geo/rect.h"

namespace catfish::durable {

using ::catfish::Crc32;

enum class WalOp : uint8_t {
  kInsert = 1,
  kDelete = 2,
};

/// One logged write. `client_gen` + `req_id` identify the client's
/// request for exactly-once dedup; replay rebuilds the dedup table from
/// these fields, so the table itself needs no separate log records.
struct WalRecord {
  uint64_t lsn = 0;  // assigned by Append; checked contiguous on replay
  WalOp op = WalOp::kInsert;
  uint64_t client_gen = 0;
  uint64_t req_id = 0;
  /// Replication epoch the record was written under (0 = unreplicated).
  /// Promotion bumps the shard's epoch, so records fence the incarnation
  /// that produced them: a follower rejects batches from an older epoch
  /// (a zombie primary), and recovery restores the highest epoch seen.
  uint64_t epoch = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;

  bool operator==(const WalRecord&) const = default;
};

inline constexpr uint32_t kWalMagic = 0x574C4152u;  // 'WALR'
inline constexpr size_t kWalHeaderBytes = 4 + 4 + 8 + 4;
/// Encoded payload bytes of a WalRecord (op + gen + req + epoch + rect + id).
inline constexpr size_t kWalPayloadBytes = 1 + 8 + 8 + 8 + 4 * 8 + 8;
inline constexpr size_t kWalFrameBytes = kWalHeaderBytes + kWalPayloadBytes;

/// Appends one framed record to `out`.
void EncodeWalRecord(const WalRecord& rec, std::vector<std::byte>& out);

/// Result of decoding a raw log image.
struct WalDecodeResult {
  std::vector<WalRecord> records;  ///< longest valid prefix
  size_t valid_bytes = 0;          ///< bytes consumed by that prefix
  size_t truncated_bytes = 0;      ///< torn/corrupt tail dropped
  bool clean = true;               ///< false when a tail was dropped
};

/// Decodes the longest valid record prefix of `bytes`. Never throws on
/// malformed input — corruption only shortens the prefix. `first_lsn`,
/// when set, additionally requires records[0].lsn == first_lsn;
/// subsequent records must always be contiguous.
WalDecodeResult DecodeWalStream(std::span<const std::byte> bytes,
                                std::optional<uint64_t> first_lsn = {});

struct WalStats {
  uint64_t appends = 0;
  uint64_t commits = 0;      ///< Commit() calls that had to wait or sync
  uint64_t syncs = 0;        ///< actual storage Sync() boundaries
  uint64_t stalls = 0;       ///< commits that waited past the stall threshold
  uint64_t truncations = 0;  ///< checkpoint-time tail rewrites
};

class Wal {
 public:
  /// `storage` must outlive the Wal. `next_lsn` seeds the sequence (1
  /// for an empty log; recovery passes last-seen + 1).
  Wal(LogStorage* storage, uint64_t next_lsn = 1,
      uint64_t stall_threshold_us = 1000);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record (buffered; not yet durable). Assigns and
  /// returns its LSN. Thread-safe.
  uint64_t Append(WalRecord rec);

  /// Appends one record at its *caller-assigned* LSN (the replication
  /// apply path: the primary assigned it and the follower must keep the
  /// stream identical). Requires rec.lsn to be the next expected LSN;
  /// returns false — appending nothing — on a gap or replay overlap.
  bool AppendAt(const WalRecord& rec);

  /// Blocks until every record with lsn' <= lsn is durable. Group
  /// commit: one caller syncs for everyone waiting. Thread-safe.
  void Commit(uint64_t lsn);

  /// Drops every record with lsn <= through_lsn by rewriting the log
  /// with the remaining tail. The caller must guarantee the dropped
  /// prefix is captured in a checkpoint. Thread-safe vs Append/Commit.
  void TruncateThrough(uint64_t through_lsn);

  /// Highest LSN assigned / made durable so far.
  uint64_t last_lsn() const;
  uint64_t durable_lsn() const;
  size_t log_bytes() const;
  WalStats stats() const;

 private:
  LogStorage* storage_;
  const uint64_t stall_threshold_us_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_lsn_;
  uint64_t durable_lsn_ = 0;
  bool sync_in_flight_ = false;
  std::vector<std::byte> encode_buf_;
  WalStats stats_;
};

}  // namespace catfish::durable

// Bounded write-dedup table: the server half of exactly-once writes.
//
// Clients stamp every Insert/Delete with (client_gen, req_id) —
// client_gen identifies one client write session for its whole life
// (surviving reconnects), req_id is monotonically increasing within it.
// The server consults this table before applying a write: a hit means
// the request was already applied (possibly by a previous server
// incarnation) and only the stored ack is re-sent.
//
// The table needs no log records of its own: every WAL record carries
// the (client_gen, req_id) key, and the delete outcome is recomputed
// deterministically during replay, so recovery rebuilds the table as a
// side effect of replaying the log.
//
// Eviction: per session, only the most recent `window` entries are kept
// (clients retry only their single in-flight write, so the window
// bounds how far back a resend can reach). Because req_ids within a
// session are monotonic, the table also remembers the highest evicted
// req_id per session — a resend older than the window is still
// recognized as a duplicate (acked with ok, conservatively) instead of
// being re-applied, so eviction can never break idempotency.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

namespace catfish::durable {

struct DedupEntry {
  uint8_t ok = 0;    ///< the original WriteAck.ok
  uint64_t lsn = 0;  ///< the WAL record; re-acks wait for its durability
};

class DedupTable {
 public:
  explicit DedupTable(size_t window = 64) : window_(window) {}

  /// The stored outcome for (client_gen, req_id), if already applied.
  /// A req_id at or below the session's eviction horizon returns a
  /// synthetic ok=1 entry: it was applied and acked long ago; the exact
  /// ack value left the window but re-applying would be worse.
  std::optional<DedupEntry> Lookup(uint64_t client_gen,
                                   uint64_t req_id) const {
    const auto it = sessions_.find(client_gen);
    if (it == sessions_.end()) return std::nullopt;
    const Session& s = it->second;
    if (req_id <= s.evicted_through) return DedupEntry{1, 0};
    const auto entry = s.entries.find(req_id);
    if (entry == s.entries.end()) return std::nullopt;
    return entry->second;
  }

  /// Records the outcome of a freshly applied write; evicts the oldest
  /// entry of the session past the window.
  void Record(uint64_t client_gen, uint64_t req_id, uint8_t ok,
              uint64_t lsn) {
    Session& s = sessions_[client_gen];
    if (s.entries.emplace(req_id, DedupEntry{ok, lsn}).second) {
      s.order.push_back(req_id);
    }
    while (s.order.size() > window_) {
      const uint64_t oldest = s.order.front();
      s.order.pop_front();
      s.entries.erase(oldest);
      if (oldest > s.evicted_through) s.evicted_through = oldest;
    }
  }

  size_t sessions() const { return sessions_.size(); }
  size_t window() const { return window_; }

  /// Flat view for checkpointing: (gen, req_id, ok, lsn, horizon).
  struct SnapshotEntry {
    uint64_t client_gen = 0;
    uint64_t req_id = 0;
    uint8_t ok = 0;
    uint64_t lsn = 0;
  };
  struct SnapshotSession {
    uint64_t client_gen = 0;
    uint64_t evicted_through = 0;
  };

  template <typename EntryFn, typename SessionFn>
  void Visit(EntryFn&& entry_fn, SessionFn&& session_fn) const {
    for (const auto& [gen, s] : sessions_) {
      session_fn(SnapshotSession{gen, s.evicted_through});
      for (const uint64_t req_id : s.order) {
        const auto& e = s.entries.at(req_id);
        entry_fn(SnapshotEntry{gen, req_id, e.ok, e.lsn});
      }
    }
  }

  /// Checkpoint-restore helpers.
  void RestoreSession(uint64_t client_gen, uint64_t evicted_through) {
    sessions_[client_gen].evicted_through = evicted_through;
  }

 private:
  struct Session {
    std::unordered_map<uint64_t, DedupEntry> entries;
    std::deque<uint64_t> order;  ///< insertion order for eviction
    uint64_t evicted_through = 0;
  };

  size_t window_;
  std::unordered_map<uint64_t, Session> sessions_;
};

}  // namespace catfish::durable

// Arena checkpoint codec: a point-in-time image of the whole durable
// server state — NodeArena bytes + allocator, tree meta, the write-dedup
// table, and the WAL position (`applied_lsn`) the image is consistent
// with. Recovery restores the newest checkpoint and replays only WAL
// records with lsn > applied_lsn; checkpointing truncates the log at the
// same boundary.
//
// Blob layout (little-endian), CRC32-protected end to end:
//
//   u64 magic 'CATFCKP1'
//   u32 version
//   u64 applied_lsn
//   u64 tree_size  u32 tree_height  u64 write_epoch
//   u64 chunk_size u64 max_chunks   u64 next_fresh  u64 allocated
//   u32 free_list_count, u32 ids...
//   u32 dedup_window
//   u32 session_count, { u64 client_gen, u64 evicted_through }...
//   u32 entry_count,   { u64 client_gen, u64 req_id, u8 ok, u64 lsn }...
//   u64 arena_bytes (== chunk_size * max_chunks), raw arena image
//   u32 crc32 over everything after the magic
//
// The arena image is copied while the write path is quiesced (the
// DurabilityManager's write mutex), so every seqlock line version in it
// is even — a restored arena is immediately valid for readers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "durable/dedup.h"
#include "rtree/arena.h"

namespace catfish::durable {

inline constexpr uint64_t kCheckpointMagic = 0x31504B4346544143ULL;  // CATFCKP1

struct CheckpointMeta {
  uint64_t applied_lsn = 0;
  uint64_t tree_size = 0;
  uint32_t tree_height = 1;
  uint64_t write_epoch = 0;
  /// Replication epoch the shard was serving under when the image was
  /// taken (0 = unreplicated). Recovery restores it so a rebooted node
  /// rejoins with the fencing state it had, even after the WAL prefix
  /// carrying the epoch-stamped records was truncated.
  uint64_t repl_epoch = 0;
};

/// Serializes arena + allocator state + dedup + meta into one blob.
std::vector<std::byte> EncodeCheckpoint(const rtree::NodeArena& arena,
                                        const DedupTable& dedup,
                                        const CheckpointMeta& meta);

/// Decoded checkpoint, ready to restore. `arena_snapshot` matches
/// NodeArena::Restore's input.
struct DecodedCheckpoint {
  CheckpointMeta meta;
  rtree::NodeArena::Snapshot arena_snapshot;
  size_t chunk_size = 0;
  size_t max_chunks = 0;
  DedupTable dedup{64};
};

/// Returns nullopt on any structural or CRC mismatch — a half-written
/// checkpoint must read as "no checkpoint", never as garbage state.
std::optional<DecodedCheckpoint> DecodeCheckpoint(
    std::span<const std::byte> blob);

}  // namespace catfish::durable

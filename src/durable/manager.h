// DurabilityManager: the server's durable write path.
//
// Ties the pieces together around one invariant — *a write is acked iff
// its WAL record is durable* — and one ordering rule: records are
// appended and applied to the tree under a single write mutex, so apply
// order equals LSN order and a checkpoint taken under that mutex is
// consistent with an exact `applied_lsn`. Replay of checkpoint + tail is
// then deterministic.
//
// Lifecycle per server incarnation:
//
//   auto mgr  = DurabilityManager(wal_disk, ckpt_disk, cfg);
//   auto tree = mgr.Recover(arena);       // checkpoint restore + replay
//   RTreeServer server(node, tree, {.durability = &mgr});  // serve
//   ... monitor thread calls mgr.MaybeCheckpoint(tree) ...
//
// On the hot path the server calls ExecuteInsert/ExecuteDelete, which
// dedup-check, log, apply, and group-commit; duplicates skip apply but
// still wait for the original record's durability before re-acking (a
// resend must never be acked faster than the write became safe).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "durable/checkpoint.h"
#include "durable/dedup.h"
#include "durable/storage.h"
#include "durable/wal.h"
#include "rtree/rstar.h"
#include "telemetry/trace.h"

namespace catfish::durable {

struct DurabilityConfig {
  /// Write a checkpoint (and truncate the WAL) once the log exceeds
  /// this many bytes. 0 disables automatic checkpointing.
  size_t checkpoint_wal_bytes = 4 << 20;
  /// Per-client-session dedup entries retained (see dedup.h).
  size_t dedup_window = 64;
  /// Commit waits longer than this emit a kWalStall event.
  uint64_t wal_stall_threshold_us = 1000;
};

/// What Recover() did, for telemetry, benches and tests.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_applied_lsn = 0;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;      ///< lsn <= checkpoint applied_lsn
  uint64_t tail_bytes_truncated = 0; ///< torn/corrupt log tail dropped
  uint64_t replay_us = 0;
  uint64_t dedup_sessions = 0;
};

struct WriteResult {
  bool ok = false;        ///< the WriteAck.ok value to send
  bool duplicate = false; ///< dedup hit: applied previously, re-acked only
  uint64_t lsn = 0;
};

class DurabilityManager {
 public:
  /// Storages model "the disk": they are shared so a test harness can
  /// keep them alive across simulated server crashes. Both required.
  DurabilityManager(std::shared_ptr<LogStorage> wal_storage,
                    std::shared_ptr<CheckpointStore> checkpoint_store,
                    DurabilityConfig cfg = {});

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Rebuilds the durable state into `arena`: restores the newest
  /// checkpoint if present (arena geometry must match), attaches or
  /// creates the tree, then replays every WAL record past the
  /// checkpoint in LSN order — writes acked by the previous incarnation
  /// are all reapplied, the dedup table is rebuilt from the records,
  /// and a torn log tail is truncated. Must complete before the server
  /// starts accepting traffic. Call at most once per manager.
  rtree::RStarTree Recover(rtree::NodeArena& arena,
                           rtree::RStarConfig tree_cfg = {});

  /// The durable write path (see file header). Blocks until the record
  /// is durable. Safe to call from concurrent server workers.
  ///
  /// When `trace` is set the stages are recorded as child spans of
  /// `parent` — "wal_lock" (write-mutex wait), "wal_append", "apply",
  /// and "group_commit" (or "dup_wait" on a dedup hit) — so an
  /// assembled distributed trace shows WAL append and group-commit
  /// stalls on the durable path. Timestamps come from the process
  /// monotonic clock (the server tracer's default clock domain).
  WriteResult ExecuteInsert(rtree::RStarTree& tree, uint64_t client_gen,
                            uint64_t req_id, const geo::Rect& rect,
                            uint64_t rect_id,
                            telemetry::Trace* trace = nullptr,
                            telemetry::SpanId parent = 0);
  WriteResult ExecuteDelete(rtree::RStarTree& tree, uint64_t client_gen,
                            uint64_t req_id, const geo::Rect& rect,
                            uint64_t rect_id,
                            telemetry::Trace* trace = nullptr,
                            telemetry::SpanId parent = 0);

  /// True once the WAL has outgrown cfg.checkpoint_wal_bytes.
  bool ShouldCheckpoint() const;

  /// Quiesces writers, snapshots arena + dedup + applied LSN, writes
  /// the checkpoint blob, then truncates the WAL through that LSN.
  /// Returns the applied LSN the checkpoint captured.
  uint64_t Checkpoint(rtree::RStarTree& tree);

  const RecoveryReport& recovery_report() const { return report_; }
  /// Valid only after Recover() (the log's starting LSN is only known
  /// once the checkpoint and log tail have been read).
  const Wal& wal() const { return *wal_; }
  uint64_t checkpoints_written() const;
  const DurabilityConfig& config() const { return cfg_; }

 private:
  WriteResult Execute(WalOp op, rtree::RStarTree& tree, uint64_t client_gen,
                      uint64_t req_id, const geo::Rect& rect,
                      uint64_t rect_id, telemetry::Trace* trace,
                      telemetry::SpanId parent);

  DurabilityConfig cfg_;
  std::shared_ptr<LogStorage> wal_storage_;
  std::shared_ptr<CheckpointStore> checkpoint_store_;
  std::optional<Wal> wal_;  ///< constructed by Recover()

  /// Serializes append+apply (and checkpoints) so apply order == LSN
  /// order; also guards dedup_. The tree's own writer lock stays in
  /// place underneath — all tree writes flow through here, so this
  /// mutex sees no extra contention beyond what the tree already had.
  mutable std::mutex write_mu_;
  DedupTable dedup_;
  uint64_t applied_lsn_ = 0;
  uint64_t checkpoints_ = 0;

  RecoveryReport report_;
  bool recovered_ = false;
};

}  // namespace catfish::durable

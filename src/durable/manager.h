// DurabilityManager: the server's durable write path.
//
// Ties the pieces together around one invariant — *a write is acked iff
// its WAL record is durable* — and one ordering rule: records are
// appended and applied to the tree under a single write mutex, so apply
// order equals LSN order and a checkpoint taken under that mutex is
// consistent with an exact `applied_lsn`. Replay of checkpoint + tail is
// then deterministic.
//
// Lifecycle per server incarnation:
//
//   auto mgr  = DurabilityManager(wal_disk, ckpt_disk, cfg);
//   auto tree = mgr.Recover(arena);       // checkpoint restore + replay
//   RTreeServer server(node, tree, {.durability = &mgr});  // serve
//   ... monitor thread calls mgr.MaybeCheckpoint(tree) ...
//
// On the hot path the server calls ExecuteInsert/ExecuteDelete, which
// dedup-check, log, apply, and group-commit; duplicates skip apply but
// still wait for the original record's durability before re-acking (a
// resend must never be acked faster than the write became safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "durable/checkpoint.h"
#include "durable/dedup.h"
#include "durable/storage.h"
#include "durable/wal.h"
#include "rtree/rstar.h"
#include "telemetry/trace.h"

namespace catfish::durable {

class ReplicationGate;

struct DurabilityConfig {
  /// Write a checkpoint (and truncate the WAL) once the log exceeds
  /// this many bytes. 0 disables automatic checkpointing.
  size_t checkpoint_wal_bytes = 4 << 20;
  /// Per-client-session dedup entries retained (see dedup.h).
  size_t dedup_window = 64;
  /// Commit waits longer than this emit a kWalStall event.
  uint64_t wal_stall_threshold_us = 1000;
};

/// What Recover() did, for telemetry, benches and tests.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_applied_lsn = 0;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;      ///< lsn <= checkpoint applied_lsn
  uint64_t tail_bytes_truncated = 0; ///< torn/corrupt log tail dropped
  uint64_t replay_us = 0;
  uint64_t dedup_sessions = 0;
};

struct WriteResult {
  bool ok = false;        ///< the WriteAck.ok value to send
  bool duplicate = false; ///< dedup hit: applied previously, re-acked only
  uint64_t lsn = 0;
};

class DurabilityManager {
 public:
  /// Storages model "the disk": they are shared so a test harness can
  /// keep them alive across simulated server crashes. Both required.
  DurabilityManager(std::shared_ptr<LogStorage> wal_storage,
                    std::shared_ptr<CheckpointStore> checkpoint_store,
                    DurabilityConfig cfg = {});

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Rebuilds the durable state into `arena`: restores the newest
  /// checkpoint if present (arena geometry must match), attaches or
  /// creates the tree, then replays every WAL record past the
  /// checkpoint in LSN order — writes acked by the previous incarnation
  /// are all reapplied, the dedup table is rebuilt from the records,
  /// and a torn log tail is truncated. Must complete before the server
  /// starts accepting traffic. Call at most once per manager.
  rtree::RStarTree Recover(rtree::NodeArena& arena,
                           rtree::RStarConfig tree_cfg = {});

  /// The durable write path (see file header). Blocks until the record
  /// is durable. Safe to call from concurrent server workers.
  ///
  /// When `trace` is set the stages are recorded as child spans of
  /// `parent` — "wal_lock" (write-mutex wait), "wal_append", "apply",
  /// and "group_commit" (or "dup_wait" on a dedup hit) — so an
  /// assembled distributed trace shows WAL append and group-commit
  /// stalls on the durable path. Timestamps come from the process
  /// monotonic clock (the server tracer's default clock domain).
  WriteResult ExecuteInsert(rtree::RStarTree& tree, uint64_t client_gen,
                            uint64_t req_id, const geo::Rect& rect,
                            uint64_t rect_id,
                            telemetry::Trace* trace = nullptr,
                            telemetry::SpanId parent = 0);
  WriteResult ExecuteDelete(rtree::RStarTree& tree, uint64_t client_gen,
                            uint64_t req_id, const geo::Rect& rect,
                            uint64_t rect_id,
                            telemetry::Trace* trace = nullptr,
                            telemetry::SpanId parent = 0);

  /// True once the WAL has outgrown cfg.checkpoint_wal_bytes.
  bool ShouldCheckpoint() const;

  /// Quiesces writers, snapshots arena + dedup + applied LSN, writes
  /// the checkpoint blob, then truncates the WAL through that LSN.
  /// Returns the applied LSN the checkpoint captured.
  uint64_t Checkpoint(rtree::RStarTree& tree);

  const RecoveryReport& recovery_report() const { return report_; }
  /// Valid only after Recover() (the log's starting LSN is only known
  /// once the checkpoint and log tail have been read).
  const Wal& wal() const { return *wal_; }
  uint64_t checkpoints_written() const;
  const DurabilityConfig& config() const { return cfg_; }

  // --- replication hooks (see durable/replication.h) ---

  /// Called under the write mutex right after each WAL append, so the
  /// shipper observes records in exact LSN order. Must be fast and must
  /// not re-enter the manager. Install before serving traffic.
  using CommitSink = std::function<void(const WalRecord&)>;
  void SetCommitSink(CommitSink sink);

  /// Semi-synchronous replication: when set, Execute blocks after the
  /// local group commit until the gate has released the record's LSN
  /// (>= 1 follower made it durable) — or reports a fenced write (the
  /// gate was fenced by an epoch rejection or shipper shutdown), which
  /// surfaces as ok=false so the client never sees an ack a promoted
  /// follower might not have. Null = local durability only.
  void SetReplicationGate(ReplicationGate* gate);

  /// The replication epoch stamped on every subsequent record. Promotion
  /// bumps it; followers adopt the stream's epoch as batches apply.
  /// Never moves backwards.
  void SetEpoch(uint64_t epoch);
  uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// Live cells for heartbeat plumbing (ServerConfig::repl_epoch /
  /// repl_durable_lsn point here). Stable addresses for the manager's
  /// lifetime.
  const std::atomic<uint64_t>& epoch_cell() const { return epoch_; }
  const std::atomic<uint64_t>& durable_lsn_cell() const {
    return published_durable_lsn_;
  }
  uint64_t durable_lsn() const {
    return published_durable_lsn_.load(std::memory_order_relaxed);
  }

  /// The follower apply path: appends `rec` at its primary-assigned LSN
  /// (buffered, not yet durable — batch-commit via CommitThrough),
  /// applies it to `tree`, and records the dedup entry so exactly-once
  /// survives a promotion. A record at or below the applied LSN is a
  /// harmless replay and returns true without reapplying; a gap returns
  /// false and changes nothing (the follower acks kGap to force resync).
  bool ApplyReplicated(rtree::RStarTree& tree, const WalRecord& rec);

  /// Group-commits everything through `lsn` (the follower's per-batch
  /// durability boundary) and publishes the new durable LSN.
  void CommitThrough(uint64_t lsn);

  /// Replication retention floor: Checkpoint() truncates the WAL only
  /// through min(applied_lsn, floor), so records a follower has not yet
  /// acked survive for resync. The shipper keeps this at the minimum
  /// acked LSN across followers. Default UINT64_MAX = no floor.
  void SetTruncateFloor(uint64_t lsn);

  /// Re-reads the log and returns every record with lsn >= from_lsn —
  /// the shipper's resync source when a follower is behind its
  /// in-memory window. Requires from_lsn above the last checkpoint's
  /// truncation boundary (guaranteed by the truncate floor).
  std::vector<WalRecord> ReadLogTail(uint64_t from_lsn) const;

 private:
  WriteResult Execute(WalOp op, rtree::RStarTree& tree, uint64_t client_gen,
                      uint64_t req_id, const geo::Rect& rect,
                      uint64_t rect_id, telemetry::Trace* trace,
                      telemetry::SpanId parent);

  DurabilityConfig cfg_;
  std::shared_ptr<LogStorage> wal_storage_;
  std::shared_ptr<CheckpointStore> checkpoint_store_;
  std::optional<Wal> wal_;  ///< constructed by Recover()

  /// Serializes append+apply (and checkpoints) so apply order == LSN
  /// order; also guards dedup_. The tree's own writer lock stays in
  /// place underneath — all tree writes flow through here, so this
  /// mutex sees no extra contention beyond what the tree already had.
  mutable std::mutex write_mu_;
  DedupTable dedup_;
  uint64_t applied_lsn_ = 0;
  uint64_t checkpoints_ = 0;
  CommitSink commit_sink_;
  ReplicationGate* gate_ = nullptr;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> published_durable_lsn_{0};
  std::atomic<uint64_t> truncate_floor_{UINT64_MAX};

  RecoveryReport report_;
  bool recovered_ = false;
};

}  // namespace catfish::durable

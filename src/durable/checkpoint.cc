#include "durable/checkpoint.h"

#include "common/bytes.h"
#include "durable/wal.h"

namespace catfish::durable {

namespace {
inline constexpr uint32_t kCheckpointVersion = 2;  // v2: + meta.repl_epoch
}  // namespace

std::vector<std::byte> EncodeCheckpoint(const rtree::NodeArena& arena,
                                        const DedupTable& dedup,
                                        const CheckpointMeta& meta) {
  const auto snap = arena.TakeSnapshot();

  std::vector<DedupTable::SnapshotSession> sessions;
  std::vector<DedupTable::SnapshotEntry> entries;
  dedup.Visit([&](const DedupTable::SnapshotEntry& e) { entries.push_back(e); },
              [&](const DedupTable::SnapshotSession& s) {
                sessions.push_back(s);
              });

  ByteWriter w(256 + snap.bytes.size() + entries.size() * 25);
  w.Append(kCheckpointMagic);
  w.Append(kCheckpointVersion);
  w.Append(meta.applied_lsn);
  w.Append(meta.tree_size);
  w.Append(meta.tree_height);
  w.Append(meta.write_epoch);
  w.Append(meta.repl_epoch);
  w.Append(static_cast<uint64_t>(arena.chunk_size()));
  w.Append(static_cast<uint64_t>(arena.max_chunks()));
  w.Append(static_cast<uint64_t>(snap.next_fresh));
  w.Append(static_cast<uint64_t>(snap.allocated));
  w.Append(static_cast<uint32_t>(snap.free_list.size()));
  for (const rtree::ChunkId id : snap.free_list) w.Append(id);
  w.Append(static_cast<uint32_t>(dedup.window()));
  w.Append(static_cast<uint32_t>(sessions.size()));
  for (const auto& s : sessions) {
    w.Append(s.client_gen);
    w.Append(s.evicted_through);
  }
  w.Append(static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.Append(e.client_gen);
    w.Append(e.req_id);
    w.Append(e.ok);
    w.Append(e.lsn);
  }
  w.Append(static_cast<uint64_t>(snap.bytes.size()));
  w.AppendBytes(snap.bytes);

  // CRC over everything after the magic; appended last.
  const auto body = w.bytes().subspan(sizeof kCheckpointMagic);
  w.Append(Crc32(body));
  return w.Take();
}

std::optional<DecodedCheckpoint> DecodeCheckpoint(
    std::span<const std::byte> blob) {
  // Fixed prefix through the free-list count.
  constexpr size_t kFixedHead = 8 + 4 + 8 + 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4;
  if (blob.size() < kFixedHead + 4) return std::nullopt;
  if (LoadPod<uint64_t>(blob, 0) != kCheckpointMagic) return std::nullopt;
  const auto body = blob.subspan(8, blob.size() - 8 - 4);
  const uint32_t stored_crc = LoadPod<uint32_t>(blob, blob.size() - 4);
  if (Crc32(body) != stored_crc) return std::nullopt;

  ByteReader r(body);
  DecodedCheckpoint out;
  if (r.Read<uint32_t>() != kCheckpointVersion) return std::nullopt;
  out.meta.applied_lsn = r.Read<uint64_t>();
  out.meta.tree_size = r.Read<uint64_t>();
  out.meta.tree_height = r.Read<uint32_t>();
  out.meta.write_epoch = r.Read<uint64_t>();
  out.meta.repl_epoch = r.Read<uint64_t>();
  out.chunk_size = r.Read<uint64_t>();
  out.max_chunks = r.Read<uint64_t>();
  out.arena_snapshot.next_fresh =
      static_cast<rtree::ChunkId>(r.Read<uint64_t>());
  out.arena_snapshot.allocated = r.Read<uint64_t>();

  const uint32_t free_count = r.Read<uint32_t>();
  if (r.remaining() < uint64_t{free_count} * sizeof(rtree::ChunkId)) return std::nullopt;
  out.arena_snapshot.free_list.reserve(free_count);
  for (uint32_t i = 0; i < free_count; ++i) {
    out.arena_snapshot.free_list.push_back(r.Read<rtree::ChunkId>());
  }

  if (r.remaining() < 8) return std::nullopt;
  const uint32_t window = r.Read<uint32_t>();
  out.dedup = DedupTable(window);
  const uint32_t session_count = r.Read<uint32_t>();
  if (r.remaining() < uint64_t{session_count} * 16) return std::nullopt;
  for (uint32_t i = 0; i < session_count; ++i) {
    const uint64_t gen = r.Read<uint64_t>();
    const uint64_t horizon = r.Read<uint64_t>();
    out.dedup.RestoreSession(gen, horizon);
  }
  if (r.remaining() < 4) return std::nullopt;
  const uint32_t entry_count = r.Read<uint32_t>();
  if (r.remaining() < uint64_t{entry_count} * 25) return std::nullopt;
  for (uint32_t i = 0; i < entry_count; ++i) {
    const uint64_t gen = r.Read<uint64_t>();
    const uint64_t req_id = r.Read<uint64_t>();
    const uint8_t ok = r.Read<uint8_t>();
    const uint64_t lsn = r.Read<uint64_t>();
    out.dedup.Record(gen, req_id, ok, lsn);
  }

  if (r.remaining() < 8) return std::nullopt;
  const uint64_t arena_bytes = r.Read<uint64_t>();
  if (arena_bytes != out.chunk_size * out.max_chunks ||
      r.remaining() != arena_bytes) {
    return std::nullopt;
  }
  const auto raw = r.ReadBytes(arena_bytes);
  out.arena_snapshot.bytes.assign(raw.begin(), raw.end());
  return out;
}

}  // namespace catfish::durable

#include "durable/storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace catfish::durable {

// ---------------------------------------------------------------------------
// MemLogStorage
// ---------------------------------------------------------------------------

void MemLogStorage::Append(std::span<const std::byte> bytes) {
  const std::scoped_lock lock(mu_);
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

void MemLogStorage::Sync() {
  const std::scoped_lock lock(mu_);
  durable_len_ = bytes_.size();
  sync_lens_.push_back(durable_len_);
}

void MemLogStorage::Reset(std::span<const std::byte> bytes) {
  const std::scoped_lock lock(mu_);
  bytes_.assign(bytes.begin(), bytes.end());
  durable_len_ = bytes_.size();
  sync_lens_.clear();
  sync_lens_.push_back(durable_len_);
}

std::vector<std::byte> MemLogStorage::ReadAll() const {
  const std::scoped_lock lock(mu_);
  return bytes_;
}

size_t MemLogStorage::size() const {
  const std::scoped_lock lock(mu_);
  return bytes_.size();
}

size_t MemLogStorage::durable_size() const {
  const std::scoped_lock lock(mu_);
  return durable_len_;
}

uint64_t MemLogStorage::sync_count() const {
  const std::scoped_lock lock(mu_);
  return sync_lens_.size();
}

std::vector<size_t> MemLogStorage::sync_history() const {
  const std::scoped_lock lock(mu_);
  return sync_lens_;
}

std::unique_ptr<MemLogStorage> MemLogStorage::CrashClone(
    size_t boundary, size_t torn_extra_bytes) const {
  const std::scoped_lock lock(mu_);
  size_t keep = 0;
  if (boundary > 0) {
    if (boundary > sync_lens_.size()) {
      throw std::out_of_range("MemLogStorage::CrashClone: no such boundary");
    }
    keep = sync_lens_[boundary - 1];
  }
  keep = std::min(keep + torn_extra_bytes, bytes_.size());
  auto clone = std::make_unique<MemLogStorage>();
  clone->bytes_.assign(bytes_.begin(),
                       bytes_.begin() + static_cast<ptrdiff_t>(keep));
  // Post-crash the surviving bytes ARE the durable content.
  clone->durable_len_ = clone->bytes_.size();
  return clone;
}

// ---------------------------------------------------------------------------
// MemCheckpointStore
// ---------------------------------------------------------------------------

void MemCheckpointStore::Write(std::span<const std::byte> blob) {
  const std::scoped_lock lock(mu_);
  blob_.emplace(blob.begin(), blob.end());
  ++writes_;
}

std::optional<std::vector<std::byte>> MemCheckpointStore::Read() const {
  const std::scoped_lock lock(mu_);
  return blob_;
}

uint64_t MemCheckpointStore::writes() const {
  const std::scoped_lock lock(mu_);
  return writes_;
}

// ---------------------------------------------------------------------------
// FileLogStorage
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::vector<std::byte> ReadWholeFile(const std::string& path) {
  std::vector<std::byte> out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return out;
    ThrowErrno("durable: open " + path);
  }
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      ::close(fd);
      ThrowErrno("durable: read " + path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void WriteAll(int fd, std::span<const std::byte> bytes,
              const std::string& what) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) ThrowErrno(what);
    off += static_cast<size_t>(n);
  }
}

}  // namespace

FileLogStorage::FileLogStorage(std::string path) : path_(std::move(path)) {
  bytes_ = ReadWholeFile(path_);
  flushed_len_ = bytes_.size();
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) ThrowErrno("durable: open " + path_);
}

FileLogStorage::~FileLogStorage() {
  if (fd_ >= 0) ::close(fd_);
}

void FileLogStorage::Append(std::span<const std::byte> bytes) {
  const std::scoped_lock lock(mu_);
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

void FileLogStorage::Sync() {
  const std::scoped_lock lock(mu_);
  if (flushed_len_ < bytes_.size()) {
    WriteAll(fd_,
             std::span<const std::byte>(bytes_).subspan(flushed_len_),
             "durable: write " + path_);
    flushed_len_ = bytes_.size();
  }
  if (::fsync(fd_) != 0) ThrowErrno("durable: fsync " + path_);
}

void FileLogStorage::Reset(std::span<const std::byte> bytes) {
  const std::scoped_lock lock(mu_);
  const std::string tmp = path_ + ".tmp";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) ThrowErrno("durable: open " + tmp);
  WriteAll(tfd, bytes, "durable: write " + tmp);
  if (::fsync(tfd) != 0) {
    ::close(tfd);
    ThrowErrno("durable: fsync " + tmp);
  }
  ::close(tfd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ThrowErrno("durable: rename " + tmp);
  }
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) ThrowErrno("durable: reopen " + path_);
  if (::fsync(fd_) != 0) ThrowErrno("durable: fsync " + path_);
  bytes_.assign(bytes.begin(), bytes.end());
  flushed_len_ = bytes_.size();
}

std::vector<std::byte> FileLogStorage::ReadAll() const {
  const std::scoped_lock lock(mu_);
  return bytes_;
}

size_t FileLogStorage::size() const {
  const std::scoped_lock lock(mu_);
  return bytes_.size();
}

// ---------------------------------------------------------------------------
// FileCheckpointStore
// ---------------------------------------------------------------------------

void FileCheckpointStore::Write(std::span<const std::byte> blob) {
  const std::scoped_lock lock(mu_);
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowErrno("durable: open " + tmp);
  WriteAll(fd, blob, "durable: write " + tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    ThrowErrno("durable: fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ThrowErrno("durable: rename " + tmp);
  }
}

std::optional<std::vector<std::byte>> FileCheckpointStore::Read() const {
  const std::scoped_lock lock(mu_);
  auto bytes = ReadWholeFile(path_);
  if (bytes.empty()) return std::nullopt;
  return bytes;
}

}  // namespace catfish::durable

#include "durable/manager.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/clock.h"
#include "durable/replication.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::durable {

DurabilityManager::DurabilityManager(
    std::shared_ptr<LogStorage> wal_storage,
    std::shared_ptr<CheckpointStore> checkpoint_store, DurabilityConfig cfg)
    : cfg_(cfg),
      wal_storage_(std::move(wal_storage)),
      checkpoint_store_(std::move(checkpoint_store)),
      dedup_(cfg.dedup_window) {
  if (!wal_storage_ || !checkpoint_store_) {
    throw std::invalid_argument("durability manager: null storage");
  }
}

rtree::RStarTree DurabilityManager::Recover(rtree::NodeArena& arena,
                                            rtree::RStarConfig tree_cfg) {
  if (recovered_) {
    throw std::logic_error("durability manager: Recover called twice");
  }
  recovered_ = true;
  const uint64_t began_us = NowMicros();

  // 1. Newest complete checkpoint, if any. A blob that fails CRC or
  //    structural checks reads as "no checkpoint" — we fall back to an
  //    empty tree plus whatever the log holds from LSN 1.
  std::optional<DecodedCheckpoint> ckpt;
  if (const auto blob = checkpoint_store_->Read()) {
    ckpt = DecodeCheckpoint(*blob);
  }
  if (ckpt) {
    if (ckpt->chunk_size != arena.chunk_size() ||
        ckpt->max_chunks != arena.max_chunks()) {
      throw std::runtime_error(
          "durability manager: checkpoint arena geometry mismatch");
    }
    report_.checkpoint_loaded = true;
    report_.checkpoint_applied_lsn = ckpt->meta.applied_lsn;
    applied_lsn_ = ckpt->meta.applied_lsn;
    dedup_ = std::move(ckpt->dedup);
    epoch_.store(ckpt->meta.repl_epoch, std::memory_order_relaxed);
    CATFISH_COUNT("recovery.checkpoint_loaded");
  }

  // 2. Longest valid log prefix; a torn or corrupt tail is the normal
  //    outcome of a crash mid-append and is physically dropped so the
  //    next append continues a clean stream.
  const auto decoded = DecodeWalStream(wal_storage_->ReadAll());
  if (!decoded.clean) {
    std::vector<std::byte> image = wal_storage_->ReadAll();
    image.resize(decoded.valid_bytes);
    wal_storage_->Reset(image);
    report_.tail_bytes_truncated = decoded.truncated_bytes;
    CATFISH_COUNT_ADD("recovery.tail_truncated_bytes",
                      static_cast<int64_t>(decoded.truncated_bytes));
  }

  // 3. Restore the arena image (or start fresh) and attach the tree.
  rtree::RStarTree tree = [&] {
    if (ckpt) {
      arena.Restore(ckpt->arena_snapshot);
      return rtree::RStarTree::Attach(arena, tree_cfg);
    }
    return rtree::RStarTree::Create(arena, tree_cfg);
  }();

  // 4. Replay records past the checkpoint in LSN order. Delete outcomes
  //    are recomputed (they are deterministic given the replayed state),
  //    which also rebuilds the dedup table for requests the previous
  //    incarnation acked after its last checkpoint.
  for (const WalRecord& rec : decoded.records) {
    if (rec.lsn <= report_.checkpoint_applied_lsn) {
      ++report_.records_skipped;
      continue;
    }
    bool ok = true;
    if (rec.op == WalOp::kInsert) {
      tree.Insert(rec.rect, rec.rect_id);
    } else {
      ok = tree.Delete(rec.rect, rec.rect_id);
    }
    dedup_.Record(rec.client_gen, rec.req_id, ok ? 1 : 0, rec.lsn);
    applied_lsn_ = rec.lsn;
    if (rec.epoch > epoch_.load(std::memory_order_relaxed)) {
      epoch_.store(rec.epoch, std::memory_order_relaxed);
    }
    ++report_.records_replayed;
  }

  // Everything surviving in the log is durable; new appends continue
  // after the highest LSN either the log or the checkpoint has seen.
  const uint64_t next_lsn =
      std::max(applied_lsn_,
               decoded.records.empty() ? 0 : decoded.records.back().lsn) +
      1;
  wal_.emplace(wal_storage_.get(), next_lsn, cfg_.wal_stall_threshold_us);
  published_durable_lsn_.store(wal_->durable_lsn(),
                               std::memory_order_relaxed);

  report_.replay_us = NowMicros() - began_us;
  report_.dedup_sessions = dedup_.sessions();
  CATFISH_COUNT_ADD("recovery.records_replayed",
                    static_cast<int64_t>(report_.records_replayed));
  CATFISH_TIMER_RECORD_US("recovery.replay_us", report_.replay_us);
  CATFISH_GAUGE_SET("wal.bytes", static_cast<int64_t>(wal_->log_bytes()));
  CATFISH_EVENT(kReplay, NowMicros(), report_.records_replayed,
                static_cast<double>(report_.replay_us),
                static_cast<double>(report_.tail_bytes_truncated));
  return tree;
}

WriteResult DurabilityManager::ExecuteInsert(rtree::RStarTree& tree,
                                             uint64_t client_gen,
                                             uint64_t req_id,
                                             const geo::Rect& rect,
                                             uint64_t rect_id,
                                             telemetry::Trace* trace,
                                             telemetry::SpanId parent) {
  return Execute(WalOp::kInsert, tree, client_gen, req_id, rect, rect_id,
                 trace, parent);
}

WriteResult DurabilityManager::ExecuteDelete(rtree::RStarTree& tree,
                                             uint64_t client_gen,
                                             uint64_t req_id,
                                             const geo::Rect& rect,
                                             uint64_t rect_id,
                                             telemetry::Trace* trace,
                                             telemetry::SpanId parent) {
  return Execute(WalOp::kDelete, tree, client_gen, req_id, rect, rect_id,
                 trace, parent);
}

WriteResult DurabilityManager::Execute(WalOp op, rtree::RStarTree& tree,
                                       uint64_t client_gen, uint64_t req_id,
                                       const geo::Rect& rect,
                                       uint64_t rect_id,
                                       telemetry::Trace* trace,
                                       telemetry::SpanId parent) {
  if (!wal_) {
    throw std::logic_error("durability manager: write before Recover()");
  }
  const auto span = [&](const char* name) {
    return trace ? trace->StartSpan(parent, name, NowMicros())
                 : telemetry::kInvalidSpan;
  };
  const auto end = [&](telemetry::SpanId id) {
    if (trace) trace->EndSpan(id, NowMicros());
  };

  const auto lock_span = span("wal_lock");
  std::unique_lock lock(write_mu_);
  end(lock_span);
  // Snapshot under write_mu_ (SetReplicationGate takes the same mutex);
  // the pointer stays valid past unlock because teardown joins every
  // writer thread before the shipper clears and destroys the gate.
  ReplicationGate* const gate = gate_;
  if (const auto hit = dedup_.Lookup(client_gen, req_id)) {
    lock.unlock();
    // A resend must never overtake the original write's durability: the
    // first execution may still be waiting on its sync when the retry
    // arrives on a new connection. Under replication the same applies to
    // the follower ack — a duplicate is re-acked no earlier than the
    // original would have been.
    const auto dup_span = span("dup_wait");
    if (hit->lsn != 0) {
      wal_->Commit(hit->lsn);
      if (gate && !gate->WaitAcked(hit->lsn)) {
        end(dup_span);
        CATFISH_COUNT("repl.fenced_writes");
        return WriteResult{false, true, hit->lsn};
      }
    }
    end(dup_span);
    CATFISH_COUNT("durable.dup_hits");
    return WriteResult{hit->ok != 0, true, hit->lsn};
  }

  // Append + apply under write_mu_ so apply order == LSN order (the
  // tree takes its own writer lock internally; this mutex adds the
  // log-ordering guarantee on top).
  WalRecord rec;
  rec.op = op;
  rec.client_gen = client_gen;
  rec.req_id = req_id;
  rec.epoch = epoch_.load(std::memory_order_relaxed);
  rec.rect = rect;
  rec.rect_id = rect_id;
  const auto append_span = span("wal_append");
  const uint64_t lsn = wal_->Append(rec);
  end(append_span);
  const auto apply_span = span("apply");
  bool ok = true;
  if (op == WalOp::kInsert) {
    tree.Insert(rect, rect_id);
  } else {
    ok = tree.Delete(rect, rect_id);
  }
  end(apply_span);
  applied_lsn_ = lsn;
  dedup_.Record(client_gen, req_id, ok ? 1 : 0, lsn);
  if (commit_sink_) {
    // Still under write_mu_, so the shipper sees records in LSN order.
    rec.lsn = lsn;
    commit_sink_(rec);
  }
  lock.unlock();

  // Group commit outside the mutex: concurrent writers batch their
  // syncs without serializing the tree behind storage latency.
  const auto commit_span = span("group_commit");
  wal_->Commit(lsn);
  end(commit_span);
  {
    uint64_t prev = published_durable_lsn_.load(std::memory_order_relaxed);
    while (prev < lsn && !published_durable_lsn_.compare_exchange_weak(
                             prev, lsn, std::memory_order_relaxed)) {
    }
  }
  if (gate) {
    // Semi-sync: hold the ack until a follower has the record durable.
    const auto repl_span = span("repl_ack_wait");
    const bool acked = gate->WaitAcked(lsn);
    end(repl_span);
    if (!acked) {
      CATFISH_COUNT("repl.fenced_writes");
      return WriteResult{false, false, lsn};
    }
  }
  if (trace) trace->SetAttr(parent, "lsn", static_cast<int64_t>(lsn));
  CATFISH_COUNT("durable.writes");
  return WriteResult{ok, false, lsn};
}

bool DurabilityManager::ShouldCheckpoint() const {
  return cfg_.checkpoint_wal_bytes != 0 && wal_ &&
         wal_->log_bytes() >= cfg_.checkpoint_wal_bytes;
}

uint64_t DurabilityManager::Checkpoint(rtree::RStarTree& tree) {
  if (!wal_) {
    throw std::logic_error("durability manager: checkpoint before Recover()");
  }
  const std::scoped_lock lock(write_mu_);
  // Writers are quiesced: every seqlock line version in the arena is
  // even and applied_lsn_ names exactly the state being imaged.
  CheckpointMeta meta;
  meta.applied_lsn = applied_lsn_;
  meta.tree_size = tree.size();
  meta.tree_height = tree.height();
  meta.write_epoch = tree.write_epoch();
  meta.repl_epoch = epoch_.load(std::memory_order_relaxed);
  const auto blob = EncodeCheckpoint(tree.arena(), dedup_, meta);
  [[maybe_unused]] const size_t wal_bytes_before = wal_->log_bytes();
  checkpoint_store_->Write(blob);
  // Only after the checkpoint is durable may the log prefix go away —
  // and never past the replication retention floor: a record no
  // follower has acked must stay resyncable.
  wal_->TruncateThrough(std::min(
      meta.applied_lsn, truncate_floor_.load(std::memory_order_relaxed)));
  ++checkpoints_;
  CATFISH_COUNT("durable.checkpoints");
  CATFISH_COUNT_ADD("durable.checkpoint_bytes",
                    static_cast<int64_t>(blob.size()));
  CATFISH_EVENT(kCheckpoint, NowMicros(), meta.applied_lsn,
                static_cast<double>(blob.size()),
                static_cast<double>(wal_bytes_before - wal_->log_bytes()));
  return meta.applied_lsn;
}

uint64_t DurabilityManager::checkpoints_written() const {
  const std::scoped_lock lock(write_mu_);
  return checkpoints_;
}

void DurabilityManager::SetCommitSink(CommitSink sink) {
  const std::scoped_lock lock(write_mu_);
  commit_sink_ = std::move(sink);
}

void DurabilityManager::SetReplicationGate(ReplicationGate* gate) {
  const std::scoped_lock lock(write_mu_);
  gate_ = gate;
}

void DurabilityManager::SetEpoch(uint64_t epoch) {
  uint64_t prev = epoch_.load(std::memory_order_relaxed);
  while (prev < epoch && !epoch_.compare_exchange_weak(
                             prev, epoch, std::memory_order_relaxed)) {
  }
}

bool DurabilityManager::ApplyReplicated(rtree::RStarTree& tree,
                                        const WalRecord& rec) {
  if (!wal_) {
    throw std::logic_error("durability manager: apply before Recover()");
  }
  const std::scoped_lock lock(write_mu_);
  if (rec.lsn <= applied_lsn_) return true;  // replayed batch overlap
  if (!wal_->AppendAt(rec)) return false;    // gap — follower must resync
  bool ok = true;
  if (rec.op == WalOp::kInsert) {
    tree.Insert(rec.rect, rec.rect_id);
  } else {
    ok = tree.Delete(rec.rect, rec.rect_id);
  }
  applied_lsn_ = rec.lsn;
  dedup_.Record(rec.client_gen, rec.req_id, ok ? 1 : 0, rec.lsn);
  if (rec.epoch > epoch_.load(std::memory_order_relaxed)) {
    epoch_.store(rec.epoch, std::memory_order_relaxed);
  }
  CATFISH_COUNT("repl.records_applied");
  return true;
}

void DurabilityManager::CommitThrough(uint64_t lsn) {
  if (!wal_) return;
  wal_->Commit(lsn);
  uint64_t prev = published_durable_lsn_.load(std::memory_order_relaxed);
  while (prev < lsn && !published_durable_lsn_.compare_exchange_weak(
                           prev, lsn, std::memory_order_relaxed)) {
  }
}

void DurabilityManager::SetTruncateFloor(uint64_t lsn) {
  truncate_floor_.store(lsn, std::memory_order_relaxed);
}

std::vector<WalRecord> DurabilityManager::ReadLogTail(
    uint64_t from_lsn) const {
  const std::scoped_lock lock(write_mu_);
  const auto decoded = DecodeWalStream(wal_storage_->ReadAll());
  std::vector<WalRecord> out;
  for (const WalRecord& rec : decoded.records) {
    if (rec.lsn >= from_lsn) out.push_back(rec);
  }
  return out;
}

}  // namespace catfish::durable

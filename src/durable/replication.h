// Per-shard WAL replication: log shipping, follower apply, and the
// semi-synchronous ack gate.
//
// Topology per replicated shard:
//
//   primary DurabilityManager
//     └─ ReplicationShipper ── ReplChannel(batch ring →, ← ack ring) ──┐
//                                                                      │
//   follower DurabilityManager + tree                                  │
//     └─ FollowerApplier  ◄────────────────────────────────────────────┘
//
// The shipper observes every primary append through the manager's
// commit sink (invoked under the write mutex, so strictly in LSN
// order), batches contiguous records into CRC-framed msg::ReplBatch
// frames, and streams them to each follower over an ordinary msg ring
// pair with a bounded in-flight window and capped-exponential retry on
// ring back-pressure. Followers append at the primary-assigned LSN,
// apply to their own tree, group-commit per batch, and ack their
// durable LSN. The gate releases a primary write's client ack once the
// configured number of followers covers its LSN — so an acked write
// survives the primary's death by construction.
//
// Epoch fencing: every batch carries the primary's epoch. A follower
// that has adopted a higher epoch (it was promoted, or its stream moved
// on) rejects the batch with kEpochReject; the shipper sees the higher
// epoch and *fences* the gate — the zombie primary can still append
// locally but can never ack a client again. Promotion bumps the epoch
// through DurabilityManager::SetEpoch, and the epoch travels in WAL
// records and checkpoint meta so it survives restarts.
//
// Resync: the shipper keeps a bounded in-memory window of recent
// records; a follower that falls behind it (or acks kGap) is re-fed
// from the primary's log storage. DurabilityManager's truncate floor
// pins the log prefix until every follower has acked past it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "durable/manager.h"
#include "durable/wal.h"
#include "msg/repl.h"
#include "msg/ring.h"
#include "rdmasim/rdma.h"

namespace catfish::durable {

/// The semi-sync ack gate between a primary write and its client ack.
/// The shipper publishes the quorum-acked LSN; Execute waits on it.
class ReplicationGate {
 public:
  /// `wait_timeout_us` bounds one WaitAcked call (0 = wait forever); a
  /// timed-out write reports un-acked (ok=false), never a false ack.
  explicit ReplicationGate(uint64_t wait_timeout_us = 2'000'000)
      : wait_timeout_us_(wait_timeout_us) {}

  /// Releases every waiter whose LSN is covered. Monotonic.
  void Publish(uint64_t lsn);

  /// Permanently fences the gate: current and future waiters whose LSN
  /// is not already covered return false. Used on zombie detection
  /// (a follower advertised a higher epoch) and on shipper shutdown.
  void Fence();

  /// True once `lsn` is quorum-acked; false on fence or timeout.
  bool WaitAcked(uint64_t lsn);

  bool fenced() const;
  uint64_t acked_lsn() const;

 private:
  const uint64_t wait_timeout_us_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t acked_ = 0;
  bool fenced_ = false;
};

/// Wires one primary↔follower replication link over the fabric: a batch
/// ring living in the follower's memory (primary sends) and an ack ring
/// living in the primary's memory (follower sends), sharing one QP pair
/// — the same two-pointer scheme every client connection uses. Both
/// nodes must outlive the channel.
class ReplChannel {
 public:
  ReplChannel(std::shared_ptr<rdma::SimNode> primary,
              std::shared_ptr<rdma::SimNode> follower,
              size_t batch_ring_capacity = 64 * 1024,
              size_t ack_ring_capacity = 4 * 1024);

  ReplChannel(const ReplChannel&) = delete;
  ReplChannel& operator=(const ReplChannel&) = delete;

  msg::RingSender& batch_tx() { return *batch_tx_; }    ///< primary side
  msg::RingReceiver& batch_rx() { return *batch_rx_; }  ///< follower side
  msg::RingSender& ack_tx() { return *ack_tx_; }        ///< follower side
  msg::RingReceiver& ack_rx() { return *ack_rx_; }      ///< primary side

 private:
  std::shared_ptr<rdma::CompletionQueue> p_send_cq_, p_recv_cq_;
  std::shared_ptr<rdma::CompletionQueue> f_send_cq_, f_recv_cq_;
  std::shared_ptr<rdma::QueuePair> p_qp_, f_qp_;
  std::vector<std::byte> batch_ring_mem_;  // registered on the follower
  std::vector<std::byte> ack_ring_mem_;    // registered on the primary
  alignas(8) std::array<std::byte, 8> batch_ack_cell_{};  // primary
  alignas(8) std::array<std::byte, 8> ack_ack_cell_{};    // follower
  std::unique_ptr<msg::RingSender> batch_tx_;
  std::unique_ptr<msg::RingReceiver> batch_rx_;
  std::unique_ptr<msg::RingSender> ack_tx_;
  std::unique_ptr<msg::RingReceiver> ack_rx_;
};

struct ReplicationShipperConfig {
  uint32_t shard = 0;
  /// Records per batch frame (≤ msg::kMaxReplBatchRecords).
  size_t max_batch_records = 128;
  /// Unacked batches allowed per follower before shipping pauses.
  size_t max_inflight_batches = 4;
  /// Followers that must cover an LSN before the gate releases it.
  size_t ack_followers = 1;
  /// Capped-exponential backoff on ring back-pressure.
  uint64_t retry_initial_us = 100;
  uint64_t retry_max_us = 20'000;
  /// Idle poll interval of the shipping thread.
  uint64_t poll_interval_us = 100;
  /// In-memory record window before falling back to log-storage resync.
  size_t window_records = 16 * 1024;
  /// Gate wait bound per write (0 = forever).
  uint64_t gate_timeout_us = 2'000'000;
};

struct ShipperStats {
  uint64_t batches_sent = 0;
  uint64_t records_shipped = 0;
  uint64_t retries = 0;       ///< ring-full backoffs
  uint64_t resyncs = 0;       ///< window misses re-fed from log storage
  uint64_t epoch_rejects = 0; ///< acks that fenced us (zombie detection)
};

/// The primary-side shipping thread. Install on a recovered manager
/// *before* serving traffic; add every follower link, then Start().
/// Stop order on teardown: stop the server first (no Execute in
/// flight), then Stop() here.
class ReplicationShipper {
 public:
  ReplicationShipper(DurabilityManager& mgr,
                     ReplicationShipperConfig cfg = {});
  ~ReplicationShipper();

  ReplicationShipper(const ReplicationShipper&) = delete;
  ReplicationShipper& operator=(const ReplicationShipper&) = delete;

  /// Registers one follower link (pointers must outlive the shipper).
  /// Call before Start().
  void AddFollower(msg::RingSender* batch_tx, msg::RingReceiver* ack_rx);

  /// Installs the commit sink + gate on the manager and starts the
  /// shipping thread. With zero followers the gate is left uninstalled
  /// (writes ack on local durability alone).
  void Start();

  /// Fences the gate, detaches from the manager, joins the thread.
  /// Idempotent.
  void Stop();

  ReplicationGate& gate() { return gate_; }
  bool fenced() const { return gate_.fenced(); }
  /// Quorum-acked LSN (what the gate has released through).
  uint64_t quorum_lsn() const { return gate_.acked_lsn(); }
  /// Per-follower acked LSNs, in AddFollower order.
  std::vector<uint64_t> follower_acked() const;
  ShipperStats stats() const;

 private:
  struct Follower {
    msg::RingSender* batch_tx = nullptr;
    msg::RingReceiver* ack_rx = nullptr;
    uint64_t next_lsn = 1;
    uint64_t acked_lsn = 0;
    size_t inflight = 0;
    /// Last jittered retry wait (diagnostics; 0 = not backing off).
    uint64_t backoff_us = 0;
    uint64_t next_send_us = 0;
    /// Consecutive full-ring retries; resets when a batch goes out.
    uint32_t retry_streak = 0;
    /// Decorrelates retry schedules across followers so a shared stall
    /// (slow fabric, paused receiver) doesn't resynchronize them into
    /// lock-step bursts.
    JitterState jitter;
    msg::Message rx_scratch;
  };

  void Loop();
  void DrainAcks(Follower& f);
  /// Ships at most one batch to `f`; returns true if one went out.
  bool ShipNext(Follower& f);
  void PublishProgress();

  DurabilityManager* mgr_;
  ReplicationShipperConfig cfg_;
  ReplicationGate gate_;

  std::mutex buf_mu_;
  std::deque<WalRecord> window_;  ///< recent records, contiguous LSNs

  std::vector<Follower> followers_;
  std::thread thread_;
  std::atomic<bool> stop_{true};
  bool started_ = false;

  mutable std::mutex stats_mu_;
  ShipperStats stats_;
  std::vector<uint64_t> acked_snapshot_;
};

struct FollowerApplierConfig {
  uint32_t shard = 0;
  uint64_t poll_interval_us = 50;
};

struct ApplierStats {
  uint64_t batches_applied = 0;
  uint64_t records_applied = 0;
  uint64_t epoch_rejects = 0;  ///< zombie batches bounced
  uint64_t gaps = 0;           ///< out-of-order batches forcing resync
  uint64_t decode_errors = 0;
};

/// The follower-side apply thread: receives batches, applies them
/// through the follower's own DurabilityManager (WAL + tree + dedup),
/// group-commits per batch, and acks its durable LSN. The follower's
/// manager must have been Recover()ed onto `tree` already.
class FollowerApplier {
 public:
  FollowerApplier(DurabilityManager& mgr, rtree::RStarTree& tree,
                  msg::RingReceiver* batch_rx, msg::RingSender* ack_tx,
                  FollowerApplierConfig cfg = {});
  ~FollowerApplier();

  FollowerApplier(const FollowerApplier&) = delete;
  FollowerApplier& operator=(const FollowerApplier&) = delete;

  void Start();
  void Stop();

  ApplierStats stats() const;
  uint64_t durable_lsn() const { return mgr_->durable_lsn(); }
  uint64_t epoch() const { return mgr_->epoch(); }

 private:
  void Loop();
  void SendAck(msg::ReplAckStatus status);

  DurabilityManager* mgr_;
  rtree::RStarTree* tree_;
  msg::RingReceiver* batch_rx_;
  msg::RingSender* ack_tx_;
  FollowerApplierConfig cfg_;

  std::thread thread_;
  std::atomic<bool> stop_{true};
  bool started_ = false;

  mutable std::mutex stats_mu_;
  ApplierStats stats_;
};

}  // namespace catfish::durable

#include "durable/wal.h"

#include <algorithm>
#include <array>

#include "common/bytes.h"
#include "common/clock.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::durable {

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

void EncodeWalRecord(const WalRecord& rec, std::vector<std::byte>& out) {
  ByteWriter payload(kWalPayloadBytes);
  payload.Append(static_cast<uint8_t>(rec.op));
  payload.Append(rec.client_gen);
  payload.Append(rec.req_id);
  payload.Append(rec.epoch);
  payload.Append(rec.rect.min_x);
  payload.Append(rec.rect.min_y);
  payload.Append(rec.rect.max_x);
  payload.Append(rec.rect.max_y);
  payload.Append(rec.rect_id);

  ByteWriter crc_input(4 + 8 + kWalPayloadBytes);
  crc_input.Append(static_cast<uint32_t>(payload.size()));
  crc_input.Append(rec.lsn);
  crc_input.AppendBytes(payload.bytes());
  const uint32_t crc = Crc32(crc_input.bytes());

  ByteWriter frame(kWalFrameBytes);
  frame.Append(kWalMagic);
  frame.Append(static_cast<uint32_t>(payload.size()));
  frame.Append(rec.lsn);
  frame.Append(crc);
  frame.AppendBytes(payload.bytes());
  const auto bytes = frame.bytes();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

namespace {

/// Decodes one record payload. Returns false on a structurally invalid
/// payload (bad op / wrong size) — CRC has already passed at this point,
/// so this only rejects frames written by a different format version.
bool DecodePayload(std::span<const std::byte> payload, WalRecord& out) {
  if (payload.size() != kWalPayloadBytes) return false;
  ByteReader r(payload);
  const uint8_t op = r.Read<uint8_t>();
  if (op != static_cast<uint8_t>(WalOp::kInsert) &&
      op != static_cast<uint8_t>(WalOp::kDelete)) {
    return false;
  }
  out.op = static_cast<WalOp>(op);
  out.client_gen = r.Read<uint64_t>();
  out.req_id = r.Read<uint64_t>();
  out.epoch = r.Read<uint64_t>();
  out.rect.min_x = r.Read<double>();
  out.rect.min_y = r.Read<double>();
  out.rect.max_x = r.Read<double>();
  out.rect.max_y = r.Read<double>();
  out.rect_id = r.Read<uint64_t>();
  return true;
}

}  // namespace

WalDecodeResult DecodeWalStream(std::span<const std::byte> bytes,
                                std::optional<uint64_t> first_lsn) {
  WalDecodeResult result;
  size_t pos = 0;
  std::optional<uint64_t> expect_lsn = first_lsn;
  while (bytes.size() - pos >= kWalHeaderBytes) {
    ByteReader header(bytes.subspan(pos, kWalHeaderBytes));
    const uint32_t magic = header.Read<uint32_t>();
    const uint32_t length = header.Read<uint32_t>();
    const uint64_t lsn = header.Read<uint64_t>();
    const uint32_t crc = header.Read<uint32_t>();
    if (magic != kWalMagic) break;
    if (length > bytes.size() - pos - kWalHeaderBytes) break;  // torn tail
    const auto payload = bytes.subspan(pos + kWalHeaderBytes, length);

    ByteWriter crc_input(4 + 8 + length);
    crc_input.Append(length);
    crc_input.Append(lsn);
    crc_input.AppendBytes(payload);
    if (Crc32(crc_input.bytes()) != crc) break;

    if (expect_lsn && lsn != *expect_lsn) break;  // sequence corruption
    WalRecord rec;
    rec.lsn = lsn;
    if (!DecodePayload(payload, rec)) break;
    result.records.push_back(rec);
    pos += kWalHeaderBytes + length;
    expect_lsn = lsn + 1;
  }
  result.valid_bytes = pos;
  result.truncated_bytes = bytes.size() - pos;
  result.clean = result.truncated_bytes == 0;
  return result;
}

// ---------------------------------------------------------------------------
// Wal (group commit)
// ---------------------------------------------------------------------------

Wal::Wal(LogStorage* storage, uint64_t next_lsn, uint64_t stall_threshold_us)
    : storage_(storage),
      stall_threshold_us_(stall_threshold_us),
      next_lsn_(next_lsn) {
  durable_lsn_ = next_lsn - 1;  // everything already in storage is durable
}

uint64_t Wal::Append(WalRecord rec) {
  const std::scoped_lock lock(mu_);
  rec.lsn = next_lsn_++;
  encode_buf_.clear();
  EncodeWalRecord(rec, encode_buf_);
  storage_->Append(encode_buf_);
  ++stats_.appends;
  CATFISH_COUNT("wal.appends");
  return rec.lsn;
}

bool Wal::AppendAt(const WalRecord& rec) {
  const std::scoped_lock lock(mu_);
  if (rec.lsn != next_lsn_) return false;
  ++next_lsn_;
  encode_buf_.clear();
  EncodeWalRecord(rec, encode_buf_);
  storage_->Append(encode_buf_);
  ++stats_.appends;
  CATFISH_COUNT("wal.appends");
  return true;
}

void Wal::Commit(uint64_t lsn) {
  std::unique_lock lock(mu_);
  if (durable_lsn_ >= lsn) return;
  ++stats_.commits;
  CATFISH_COUNT("wal.commits");
  const uint64_t began_us = NowMicros();
  while (durable_lsn_ < lsn) {
    if (!sync_in_flight_) {
      // Become the leader: sync everything appended so far so every
      // follower whose lsn is covered rides this one boundary.
      sync_in_flight_ = true;
      const uint64_t covers = next_lsn_ - 1;
      lock.unlock();
      storage_->Sync();
      lock.lock();
      sync_in_flight_ = false;
      durable_lsn_ = std::max(durable_lsn_, covers);
      ++stats_.syncs;
      CATFISH_COUNT("wal.syncs");
      cv_.notify_all();
    } else {
      cv_.wait(lock, [this] { return !sync_in_flight_; });
    }
  }
  const uint64_t waited_us = NowMicros() - began_us;
  CATFISH_TIMER_RECORD_US("wal.commit_us", waited_us);
  if (waited_us > stall_threshold_us_) {
    ++stats_.stalls;
    CATFISH_COUNT("wal.stalls");
    CATFISH_EVENT(kWalStall, NowMicros(), lsn,
                  static_cast<double>(waited_us),
                  static_cast<double>(stall_threshold_us_));
  }
}

void Wal::TruncateThrough(uint64_t through_lsn) {
  const std::scoped_lock lock(mu_);
  const auto decoded = DecodeWalStream(storage_->ReadAll());
  std::vector<std::byte> tail;
  for (const WalRecord& rec : decoded.records) {
    if (rec.lsn > through_lsn) EncodeWalRecord(rec, tail);
  }
  storage_->Reset(tail);
  // Reset is a sync point: the surviving tail is durable.
  durable_lsn_ = std::max(durable_lsn_, through_lsn);
  ++stats_.truncations;
  ++stats_.syncs;
  CATFISH_COUNT("wal.truncations");
  CATFISH_GAUGE_SET("wal.bytes", static_cast<int64_t>(storage_->size()));
}

uint64_t Wal::last_lsn() const {
  const std::scoped_lock lock(mu_);
  return next_lsn_ - 1;
}

uint64_t Wal::durable_lsn() const {
  const std::scoped_lock lock(mu_);
  return durable_lsn_;
}

size_t Wal::log_bytes() const { return storage_->size(); }

WalStats Wal::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace catfish::durable

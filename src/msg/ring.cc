#include "msg/ring.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/bytes.h"
#include "common/clock.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::msg {
namespace {

// The ring is written by a remote QP (another thread) while the receiver
// polls it, so the poll points — the size word and the commit byte — are
// read through atomic_ref. Message offsets are 8-byte aligned, making the
// u32 size word naturally aligned.
uint32_t ReadSizeWord(const std::byte* p) noexcept {
  return std::atomic_ref<const uint32_t>(
             *reinterpret_cast<const uint32_t*>(p))
      .load(std::memory_order_acquire);
}

uint8_t ReadCommitByte(const std::byte* p) noexcept {
  return std::atomic_ref<const uint8_t>(*reinterpret_cast<const uint8_t*>(p))
      .load(std::memory_order_acquire);
}

}  // namespace

// ---------------------------------------------------------------------------
// RingSender
// ---------------------------------------------------------------------------

RingSender::RingSender(std::shared_ptr<rdma::QueuePair> qp,
                       rdma::RemoteAddr ring, size_t capacity,
                       std::span<std::byte> ack_cell)
    : qp_(std::move(qp)), ring_(ring), capacity_(capacity),
      ack_cell_(ack_cell) {
  assert(capacity_ % kMsgAlign == 0 && capacity_ >= 64);
  assert(ack_cell_.size() >= sizeof(uint64_t));
  assert(reinterpret_cast<uintptr_t>(ack_cell_.data()) % 8 == 0);
}

uint64_t RingSender::acked_head() const noexcept {
  return std::atomic_ref<const uint64_t>(
             *reinterpret_cast<const uint64_t*>(ack_cell_.data()))
      .load(std::memory_order_acquire);
}

size_t RingSender::MaxPayload() const noexcept {
  // A message of wire size W is guaranteed sendable (once the ring
  // drains) iff W plus a worst-case PAD record fits: 2W ≤ capacity.
  return capacity_ / 2 - kMsgHeaderBytes - 1;
}

bool RingSender::TrySend(uint16_t type, uint16_t flags,
                         std::span<const std::byte> payload,
                         std::optional<uint32_t> imm) {
  assert(payload.size() <= MaxPayload());
  const size_t wire = WireSize(payload.size());
  const uint64_t head = acked_head();
  const size_t pos = static_cast<size_t>(tail_ % capacity_);
  const size_t contiguous = capacity_ - pos;
  const bool need_pad = wire > contiguous;
  const size_t need = need_pad ? contiguous + wire : wire;
  if (capacity_ - static_cast<size_t>(tail_ - head) < need) {
    // Back-pressure: the receiver has not acked enough space yet. Callers
    // spin on TrySend, so the flight recorder only gets the first stall
    // of a streak; the counter still counts every attempt.
    CATFISH_COUNT("msg.ring.stalls");
    if (!stalled_) {
      stalled_ = true;
      CATFISH_EVENT(kRingStall, NowMicros(), 0,
                    static_cast<double>(need),
                    static_cast<double>(capacity_ -
                                        static_cast<size_t>(tail_ - head)));
    }
    return false;
  }
  stalled_ = false;

  const size_t at = need_pad ? 0 : pos;
  // assign() zeroes the padding while reusing the buffer's capacity —
  // the steady-state send path never touches the allocator.
  frame_.assign(wire, std::byte{0});
  const std::span<std::byte> buf(frame_);
  StorePod(buf, 0, static_cast<uint32_t>(wire));
  StorePod(buf, 4, static_cast<uint32_t>(payload.size()));
  StorePod(buf, 8, type);
  StorePod(buf, 10, flags);
  std::memcpy(buf.data() + kMsgHeaderBytes, payload.data(), payload.size());
  buf[wire - 1] = std::byte{kCommitByte};

  // Ring writes are unsignaled: their consumers poll the ring memory
  // itself (or the remote's recv CQ for IMM), never the local send CQ.
  const rdma::RemoteAddr dst{ring_.rkey, ring_.offset + at};

  if (need_pad) {
    // Wrap: the PAD record (only the marker word travels; the receiver
    // skips the rest of the ring locally) and the message ride one
    // 2-WR doorbell instead of two posts. Per-WR fault checks are
    // preserved, so the pair can fail independently:
    //   * pad ok, msg dropped — advance past the pad only and fail;
    //     the retry posts just the message at offset 0 (exactly the
    //     old two-post behavior);
    //   * pad dropped — advance nothing and fail. The message bytes
    //     may already sit at offset 0, but the receiver cannot reach
    //     them without the marker, and the retry re-writes both
    //     records with identical bytes, so the duplicate WRITE (and a
    //     duplicate IMM wakeup) is harmless.
    std::byte marker[4];
    StorePod(marker, 0, kPadMarker);
    rdma::WorkRequest wrs[2];
    wrs[0].kind = rdma::WorkRequest::Kind::kWrite;
    wrs[0].wr_id = ++wr_id_;
    wrs[0].src = std::span<const std::byte>(marker);
    wrs[0].remote = rdma::RemoteAddr{ring_.rkey, ring_.offset + pos};
    wrs[0].signaled = false;
    wrs[1].kind = imm ? rdma::WorkRequest::Kind::kWriteImm
                      : rdma::WorkRequest::Kind::kWrite;
    wrs[1].wr_id = ++wr_id_;
    wrs[1].src = buf;
    wrs[1].remote = dst;
    if (imm) wrs[1].imm = *imm;
    wrs[1].signaled = false;
    bool ok[2] = {false, false};
    qp_->PostBatch(wrs, ok);
    if (!ok[0]) return false;
    tail_ += contiguous;
    CATFISH_COUNT("msg.ring.wraps");
    if (!ok[1]) return false;
  } else {
    const bool ok = imm ? qp_->PostWriteImm(++wr_id_, buf, dst, *imm,
                                            /*signaled=*/false)
                        : qp_->PostWrite(++wr_id_, buf, dst,
                                         /*signaled=*/false);
    if (!ok) return false;
  }
  tail_ += wire;
  CATFISH_COUNT("msg.ring.msgs_sent");
  CATFISH_COUNT_ADD("msg.ring.bytes_sent", wire);
  return true;
}

// ---------------------------------------------------------------------------
// RingReceiver
// ---------------------------------------------------------------------------

RingReceiver::RingReceiver(std::span<std::byte> ring,
                           std::shared_ptr<rdma::QueuePair> qp,
                           rdma::RemoteAddr remote_ack_cell)
    : ring_(ring), qp_(std::move(qp)), remote_ack_(remote_ack_cell),
      ack_buf_(sizeof(uint64_t)) {
  assert(ring_.size() % kMsgAlign == 0 && ring_.size() >= 64);
}

void RingReceiver::Ack() {
  StorePod(ack_buf_, 0, head_);
  qp_->PostWrite(++wr_id_, ack_buf_, remote_ack_, /*signaled=*/false);
}

std::optional<Message> RingReceiver::TryReceive() {
  Message out;
  if (!TryReceive(out)) return std::nullopt;
  return out;
}

bool RingReceiver::TryReceive(Message& out) {
  for (;;) {
    const size_t pos = static_cast<size_t>(head_ % ring_.size());
    const uint32_t size_word = ReadSizeWord(ring_.data() + pos);
    if (size_word == 0) return false;

    if (size_word == kPadMarker) {
      const size_t contiguous = ring_.size() - pos;
      RelaxedZero(ring_.data() + pos, sizeof(uint32_t));
      head_ += contiguous;
      Ack();
      continue;  // the real message is at offset 0
    }

    if (size_word % kMsgAlign != 0 || size_word < WireSize(0) ||
        size_word > ring_.size() - pos) {
      // Corrupt size word: never read out of bounds. This state is
      // unreachable through the sender protocol; surface it loudly
      // rather than spinning on garbage.
      throw std::runtime_error("RingReceiver: corrupt message header");
    }
    if (ReadCommitByte(ring_.data() + pos + size_word - 1) != kCommitByte) {
      // Header landed but the WRITE has not fully arrived yet.
      return false;
    }

    // Lift the frame out of the ring with the same relaxed atomics the
    // simulated NIC writes it with (common/bytes.h): the region is
    // racily shared by protocol design, and only the private copy may
    // be parsed with plain loads.
    scratch_.resize(size_word);
    RelaxedCopy(scratch_.data(), ring_.data() + pos, size_word);
    const std::span<const std::byte> frame(scratch_.data(), size_word);
    const auto payload_len = LoadPod<uint32_t>(frame, 4);
    out.type = LoadPod<uint16_t>(frame, 8);
    out.flags = LoadPod<uint16_t>(frame, 10);
    out.payload.assign(frame.begin() + kMsgHeaderBytes,
                       frame.begin() + kMsgHeaderBytes + payload_len);

    // Zero before advancing: the sender may reuse this region the moment
    // the ack lands, and the poll protocol relies on reading zeroes.
    RelaxedZero(ring_.data() + pos, size_word);
    head_ += size_word;
    Ack();
    CATFISH_COUNT("msg.ring.msgs_received");
    return true;
  }
}

}  // namespace catfish::msg

// Replication wire frames: primary→follower WAL batches and
// follower→primary durability acks.
//
// The shipper streams committed WAL records to each follower as CRC-
// framed batches over the ordinary msg ring path (MsgType::kReplBatch /
// kReplAck). Records inside a batch are LSN-contiguous, so only the
// first LSN travels on the wire; the follower reconstructs the rest by
// position. Both frames carry the shard id and the primary's epoch —
// the follower rejects batches from an older epoch (a zombie primary
// that lost a promotion race), and the primary rejects acks likewise.
//
// Batch frame, little-endian, CRC32 over everything after the magic:
//
//   u32 magic 'RPLB'
//   u16 format version
//   u16 reserved (0)
//   u32 shard
//   u64 epoch
//   u64 first_lsn
//   u16 count (<= kMaxReplBatchRecords)
//   count * { u8 op, u64 client_gen, u64 req_id, 4*f64 rect, u64 rect_id }
//   u32 crc
//
// Ack frame (fixed size):
//
//   u32 magic 'RPLA'
//   u16 format version
//   u16 reserved (0)
//   u32 shard
//   u64 epoch       follower's current epoch (so a fenced primary learns it)
//   u64 durable_lsn highest LSN the follower has made durable
//   u8  status      ReplAckStatus
//   u32 crc
//
// Decoders are *total*: every frame either round-trips or is rejected
// with a typed status — truncation, mutation, and hostile input never
// over-read (fuzzed in tests/fuzz_test.cc, ReplFuzz).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/rect.h"

namespace catfish::msg {

/// One replicated write. Mirrors durable::WalRecord minus lsn and epoch
/// (both carried once per batch) — msg deliberately does not depend on
/// durable, so the replication layer converts at the boundary.
struct ReplRecord {
  uint8_t op = 1;  ///< durable::WalOp value: 1 = insert, 2 = delete
  uint64_t client_gen = 0;
  uint64_t req_id = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;

  bool operator==(const ReplRecord&) const = default;
};

/// Encoded bytes of one ReplRecord inside a batch.
inline constexpr size_t kReplRecordBytes = 1 + 8 + 8 + 4 * 8 + 8;

inline constexpr uint32_t kReplBatchMagic = 0x424C5052u;  // 'RPLB'
inline constexpr uint32_t kReplAckMagic = 0x414C5052u;    // 'RPLA'
inline constexpr uint16_t kReplFormatVersion = 1;
/// Cap on records per batch; bounds both frame size and the allocation
/// a decoder performs before the CRC has vouched for the frame.
inline constexpr size_t kMaxReplBatchRecords = 512;

/// Fixed bytes of a batch frame around the record array.
inline constexpr size_t kReplBatchOverheadBytes =
    4 + 2 + 2 + 4 + 8 + 8 + 2 + 4;
/// Total bytes of an ack frame.
inline constexpr size_t kReplAckBytes = 4 + 2 + 2 + 4 + 8 + 8 + 1 + 4;

struct ReplBatch {
  uint32_t shard = 0;
  uint64_t epoch = 0;
  uint64_t first_lsn = 0;  ///< records[i] has LSN first_lsn + i
  std::vector<ReplRecord> records;

  bool operator==(const ReplBatch&) const = default;
};

enum class ReplAckStatus : uint8_t {
  kOk = 0,
  kEpochReject = 1,  ///< batch epoch < follower epoch (zombie primary)
  kGap = 2,          ///< first_lsn beyond the follower's tail — resync
};

struct ReplAck {
  uint32_t shard = 0;
  uint64_t epoch = 0;
  uint64_t durable_lsn = 0;
  ReplAckStatus status = ReplAckStatus::kOk;

  bool operator==(const ReplAck&) const = default;
};

/// Typed decode rejection; the shipper treats anything but kOk as a
/// transport fault and falls back to retry/resync.
enum class ReplDecodeStatus : uint8_t {
  kOk = 0,
  kTruncated,    ///< shorter than its own framing claims
  kBadMagic,
  kVersionSkew,  ///< format version from a different build
  kCorrupt,      ///< CRC mismatch or structurally invalid fields
};

const char* ToString(ReplDecodeStatus s) noexcept;

std::vector<std::byte> Encode(const ReplBatch& v);
std::vector<std::byte> Encode(const ReplAck& v);

/// Decodes one batch frame. On any rejection `*status` (when non-null)
/// says why and the returned optional is empty.
std::optional<ReplBatch> DecodeReplBatch(std::span<const std::byte> payload,
                                         ReplDecodeStatus* status = nullptr);

std::optional<ReplAck> DecodeReplAck(std::span<const std::byte> payload,
                                     ReplDecodeStatus* status = nullptr);

}  // namespace catfish::msg

#include "msg/repl.h"

#include <cmath>

#include "common/bytes.h"
#include "common/crc32.h"

namespace catfish::msg {

namespace {

void Set(ReplDecodeStatus* status, ReplDecodeStatus s) {
  if (status) *status = s;
}

bool ValidOp(uint8_t op) { return op == 1 || op == 2; }

}  // namespace

const char* ToString(ReplDecodeStatus s) noexcept {
  switch (s) {
    case ReplDecodeStatus::kOk: return "ok";
    case ReplDecodeStatus::kTruncated: return "truncated";
    case ReplDecodeStatus::kBadMagic: return "bad_magic";
    case ReplDecodeStatus::kVersionSkew: return "version_skew";
    case ReplDecodeStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::vector<std::byte> Encode(const ReplBatch& v) {
  ByteWriter w(kReplBatchOverheadBytes + v.records.size() * kReplRecordBytes);
  w.Append(kReplBatchMagic);
  w.Append(kReplFormatVersion);
  w.Append(static_cast<uint16_t>(0));
  w.Append(v.shard);
  w.Append(v.epoch);
  w.Append(v.first_lsn);
  w.Append(static_cast<uint16_t>(v.records.size()));
  for (const ReplRecord& rec : v.records) {
    w.Append(rec.op);
    w.Append(rec.client_gen);
    w.Append(rec.req_id);
    w.Append(rec.rect.min_x);
    w.Append(rec.rect.min_y);
    w.Append(rec.rect.max_x);
    w.Append(rec.rect.max_y);
    w.Append(rec.rect_id);
  }
  const auto body = w.bytes().subspan(sizeof kReplBatchMagic);
  w.Append(Crc32(body));
  return w.Take();
}

std::optional<ReplBatch> DecodeReplBatch(std::span<const std::byte> payload,
                                         ReplDecodeStatus* status) {
  if (payload.size() < kReplBatchOverheadBytes) {
    Set(status, ReplDecodeStatus::kTruncated);
    return std::nullopt;
  }
  ByteReader r(payload);
  if (r.Read<uint32_t>() != kReplBatchMagic) {
    Set(status, ReplDecodeStatus::kBadMagic);
    return std::nullopt;
  }
  if (r.Read<uint16_t>() != kReplFormatVersion) {
    Set(status, ReplDecodeStatus::kVersionSkew);
    return std::nullopt;
  }
  if (r.Read<uint16_t>() != 0) {
    Set(status, ReplDecodeStatus::kCorrupt);
    return std::nullopt;
  }
  ReplBatch v;
  v.shard = r.Read<uint32_t>();
  v.epoch = r.Read<uint64_t>();
  v.first_lsn = r.Read<uint64_t>();
  const uint16_t count = r.Read<uint16_t>();
  if (count > kMaxReplBatchRecords) {
    Set(status, ReplDecodeStatus::kCorrupt);
    return std::nullopt;
  }
  const size_t want =
      kReplBatchOverheadBytes + size_t{count} * kReplRecordBytes;
  if (payload.size() < want) {
    Set(status, ReplDecodeStatus::kTruncated);
    return std::nullopt;
  }
  if (payload.size() != want) {
    Set(status, ReplDecodeStatus::kCorrupt);  // trailing garbage
    return std::nullopt;
  }
  // CRC before touching the records: a mutated frame must not yield a
  // structurally-valid-looking batch.
  const auto body = payload.subspan(4, payload.size() - 4 - 4);
  const uint32_t stored_crc = LoadPod<uint32_t>(payload, payload.size() - 4);
  if (Crc32(body) != stored_crc) {
    Set(status, ReplDecodeStatus::kCorrupt);
    return std::nullopt;
  }
  v.records.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    ReplRecord rec;
    rec.op = r.Read<uint8_t>();
    if (!ValidOp(rec.op)) {
      Set(status, ReplDecodeStatus::kCorrupt);
      return std::nullopt;
    }
    rec.client_gen = r.Read<uint64_t>();
    rec.req_id = r.Read<uint64_t>();
    rec.rect.min_x = r.Read<double>();
    rec.rect.min_y = r.Read<double>();
    rec.rect.max_x = r.Read<double>();
    rec.rect.max_y = r.Read<double>();
    rec.rect_id = r.Read<uint64_t>();
    v.records.push_back(rec);
  }
  Set(status, ReplDecodeStatus::kOk);
  return v;
}

std::vector<std::byte> Encode(const ReplAck& v) {
  ByteWriter w(kReplAckBytes);
  w.Append(kReplAckMagic);
  w.Append(kReplFormatVersion);
  w.Append(static_cast<uint16_t>(0));
  w.Append(v.shard);
  w.Append(v.epoch);
  w.Append(v.durable_lsn);
  w.Append(static_cast<uint8_t>(v.status));
  const auto body = w.bytes().subspan(sizeof kReplAckMagic);
  w.Append(Crc32(body));
  return w.Take();
}

std::optional<ReplAck> DecodeReplAck(std::span<const std::byte> payload,
                                     ReplDecodeStatus* status) {
  if (payload.size() < kReplAckBytes) {
    Set(status, ReplDecodeStatus::kTruncated);
    return std::nullopt;
  }
  if (payload.size() != kReplAckBytes) {
    Set(status, ReplDecodeStatus::kCorrupt);
    return std::nullopt;
  }
  ByteReader r(payload);
  if (r.Read<uint32_t>() != kReplAckMagic) {
    Set(status, ReplDecodeStatus::kBadMagic);
    return std::nullopt;
  }
  if (r.Read<uint16_t>() != kReplFormatVersion) {
    Set(status, ReplDecodeStatus::kVersionSkew);
    return std::nullopt;
  }
  if (r.Read<uint16_t>() != 0) {
    Set(status, ReplDecodeStatus::kCorrupt);
    return std::nullopt;
  }
  const auto body = payload.subspan(4, payload.size() - 4 - 4);
  const uint32_t stored_crc = LoadPod<uint32_t>(payload, payload.size() - 4);
  if (Crc32(body) != stored_crc) {
    Set(status, ReplDecodeStatus::kCorrupt);
    return std::nullopt;
  }
  ReplAck v;
  v.shard = r.Read<uint32_t>();
  v.epoch = r.Read<uint64_t>();
  v.durable_lsn = r.Read<uint64_t>();
  const uint8_t st = r.Read<uint8_t>();
  if (st > static_cast<uint8_t>(ReplAckStatus::kGap)) {
    Set(status, ReplDecodeStatus::kCorrupt);
    return std::nullopt;
  }
  v.status = static_cast<ReplAckStatus>(st);
  Set(status, ReplDecodeStatus::kOk);
  return v;
}

}  // namespace catfish::msg

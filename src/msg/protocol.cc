#include "msg/protocol.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/bytes.h"

namespace catfish::msg {
namespace {

void AppendRect(ByteWriter& w, const geo::Rect& r) {
  w.Append(r.min_x);
  w.Append(r.min_y);
  w.Append(r.max_x);
  w.Append(r.max_y);
}

geo::Rect ReadRect(ByteReader& r) {
  geo::Rect rect;
  rect.min_x = r.Read<double>();
  rect.min_y = r.Read<double>();
  rect.max_x = r.Read<double>();
  rect.max_y = r.Read<double>();
  return rect;
}

constexpr size_t kRectBytes = 4 * sizeof(double);

// Trace-context tail: appended only when present, same opaque-extension
// idiom as the heartbeat map-version tail. A request frame is either
// exactly the legacy size or legacy + kTraceContextBytes; anything else
// (a torn tail) is rejected by the size checks below.
void AppendTraceTail(ByteWriter& w, const TraceContext& t) {
  if (!t.present()) return;
  w.Append(t.trace_id);
  w.Append(t.parent_span);
  w.Append(t.sampled);
}

TraceContext ReadTraceTail(ByteReader& r) {
  TraceContext t;
  t.trace_id = r.Read<uint64_t>();
  t.parent_span = r.Read<uint32_t>();
  t.sampled = r.Read<uint8_t>();
  return t;
}

// Request frames carry up to two optional tails, trace first then
// deadline, each emitted only when set. The four reachable sizes —
// base, base+8 (deadline only), base+13 (trace only), base+21 (both) —
// are pairwise distinct for every request type, so the size alone
// discriminates the layout; anything else is a torn frame.
bool SizeWithOptionalTail(size_t got, size_t base) {
  return got == base || got == base + kDeadlineTailBytes ||
         got == base + kTraceContextBytes ||
         got == base + kTraceContextBytes + kDeadlineTailBytes;
}

bool HasTraceTail(size_t got, size_t base) {
  return got == base + kTraceContextBytes ||
         got == base + kTraceContextBytes + kDeadlineTailBytes;
}

bool HasDeadlineTail(size_t got, size_t base) {
  return got == base + kDeadlineTailBytes ||
         got == base + kTraceContextBytes + kDeadlineTailBytes;
}

size_t TailBytes(const TraceContext& t, uint64_t deadline_us) {
  return (t.present() ? kTraceContextBytes : 0) +
         (deadline_us != 0 ? kDeadlineTailBytes : 0);
}

void AppendDeadlineTail(ByteWriter& w, uint64_t deadline_us) {
  if (deadline_us != 0) w.Append(deadline_us);
}

}  // namespace

std::vector<std::byte> Encode(const SearchRequest& v) {
  ByteWriter w(8 + kRectBytes + TailBytes(v.trace, v.deadline_us));
  w.Append(v.req_id);
  AppendRect(w, v.rect);
  AppendTraceTail(w, v.trace);
  AppendDeadlineTail(w, v.deadline_us);
  return w.Take();
}

std::optional<SearchRequest> DecodeSearchRequest(
    std::span<const std::byte> payload) {
  constexpr size_t kBase = 8 + kRectBytes;
  if (!SizeWithOptionalTail(payload.size(), kBase)) return std::nullopt;
  ByteReader r(payload);
  SearchRequest v;
  v.req_id = r.Read<uint64_t>();
  v.rect = ReadRect(r);
  if (HasTraceTail(payload.size(), kBase)) v.trace = ReadTraceTail(r);
  if (HasDeadlineTail(payload.size(), kBase)) {
    v.deadline_us = r.Read<uint64_t>();
  }
  return v;
}

std::vector<std::byte> Encode(const InsertRequest& v) {
  ByteWriter w(24 + kRectBytes + TailBytes(v.trace, v.deadline_us));
  w.Append(v.req_id);
  w.Append(v.client_gen);
  AppendRect(w, v.rect);
  w.Append(v.rect_id);
  AppendTraceTail(w, v.trace);
  AppendDeadlineTail(w, v.deadline_us);
  return w.Take();
}

std::optional<InsertRequest> DecodeInsertRequest(
    std::span<const std::byte> payload) {
  constexpr size_t kBase = 24 + kRectBytes;
  if (!SizeWithOptionalTail(payload.size(), kBase)) return std::nullopt;
  ByteReader r(payload);
  InsertRequest v;
  v.req_id = r.Read<uint64_t>();
  v.client_gen = r.Read<uint64_t>();
  v.rect = ReadRect(r);
  v.rect_id = r.Read<uint64_t>();
  if (HasTraceTail(payload.size(), kBase)) v.trace = ReadTraceTail(r);
  if (HasDeadlineTail(payload.size(), kBase)) {
    v.deadline_us = r.Read<uint64_t>();
  }
  return v;
}

std::vector<std::byte> Encode(const DeleteRequest& v) {
  ByteWriter w(24 + kRectBytes + TailBytes(v.trace, v.deadline_us));
  w.Append(v.req_id);
  w.Append(v.client_gen);
  AppendRect(w, v.rect);
  w.Append(v.rect_id);
  AppendTraceTail(w, v.trace);
  AppendDeadlineTail(w, v.deadline_us);
  return w.Take();
}

std::optional<DeleteRequest> DecodeDeleteRequest(
    std::span<const std::byte> payload) {
  constexpr size_t kBase = 24 + kRectBytes;
  if (!SizeWithOptionalTail(payload.size(), kBase)) return std::nullopt;
  ByteReader r(payload);
  DeleteRequest v;
  v.req_id = r.Read<uint64_t>();
  v.client_gen = r.Read<uint64_t>();
  v.rect = ReadRect(r);
  v.rect_id = r.Read<uint64_t>();
  if (HasTraceTail(payload.size(), kBase)) v.trace = ReadTraceTail(r);
  if (HasDeadlineTail(payload.size(), kBase)) {
    v.deadline_us = r.Read<uint64_t>();
  }
  return v;
}

std::vector<std::byte> Encode(const WriteAck& v) {
  ByteWriter w(9);
  w.Append(v.req_id);
  w.Append(v.ok);
  return w.Take();
}

std::optional<WriteAck> DecodeWriteAck(std::span<const std::byte> payload) {
  if (payload.size() != 9) return std::nullopt;
  ByteReader r(payload);
  WriteAck v;
  v.req_id = r.Read<uint64_t>();
  v.ok = r.Read<uint8_t>();
  return v;
}

std::vector<std::byte> Encode(const OverloadReply& v) {
  ByteWriter w(12);
  w.Append(v.req_id);
  w.Append(v.retry_after_us);
  return w.Take();
}

std::optional<OverloadReply> DecodeOverloadReply(
    std::span<const std::byte> payload) {
  if (payload.size() != 12) return std::nullopt;
  ByteReader r(payload);
  OverloadReply v;
  v.req_id = r.Read<uint64_t>();
  v.retry_after_us = r.Read<uint32_t>();
  return v;
}

std::vector<std::byte> Encode(const Heartbeat& v) {
  // Tails are emitted only when set, so single-node heartbeats remain
  // byte-identical to the pre-sharding frame (32B), sharded ones to the
  // pre-replication frame (40B). A replicated node (role != 0) encodes
  // the map-version tail unconditionally so the three sizes (32/40/57)
  // discriminate the layouts.
  const bool repl = v.role != 0;
  const bool map = repl || v.map_version != 0;
  ByteWriter w(repl ? 57 : (map ? 40 : 32));
  w.Append(v.seq);
  w.Append(v.cpu_util);
  w.Append(v.tree_epoch);
  w.Append(v.server_generation);
  if (map) w.Append(v.map_version);
  if (repl) {
    w.Append(v.role);
    w.Append(v.epoch);
    w.Append(v.durable_lsn);
  }
  return w.Take();
}

std::optional<Heartbeat> DecodeHeartbeat(std::span<const std::byte> payload) {
  if (payload.size() != 32 && payload.size() != 40 && payload.size() != 57) {
    return std::nullopt;
  }
  ByteReader r(payload);
  Heartbeat v;
  v.seq = r.Read<uint64_t>();
  v.cpu_util = r.Read<double>();
  v.tree_epoch = r.Read<uint64_t>();
  v.server_generation = r.Read<uint64_t>();
  if (payload.size() >= 40) v.map_version = r.Read<uint64_t>();
  if (payload.size() == 57) {
    v.role = r.Read<uint8_t>();
    if (v.role == 0 ||
        v.role > static_cast<uint8_t>(ReplRole::kFollower)) {
      return std::nullopt;  // repl tail without a valid role is torn
    }
    v.epoch = r.Read<uint64_t>();
    v.durable_lsn = r.Read<uint64_t>();
  }
  return v;
}

std::vector<std::byte> Encode(const KnnRequest& v) {
  ByteWriter w(28);
  w.Append(v.req_id);
  w.Append(v.point.x);
  w.Append(v.point.y);
  w.Append(v.k);
  return w.Take();
}

std::optional<KnnRequest> DecodeKnnRequest(
    std::span<const std::byte> payload) {
  if (payload.size() != 28) return std::nullopt;
  ByteReader r(payload);
  KnnRequest v;
  v.req_id = r.Read<uint64_t>();
  v.point.x = r.Read<double>();
  v.point.y = r.Read<double>();
  v.k = r.Read<uint32_t>();
  return v;
}

std::vector<std::byte> Encode(const TraceResponse& v) {
  ByteWriter w(8 + v.blob.size());
  w.Append(v.req_id);
  w.AppendBytes(v.blob);
  return w.Take();
}

std::optional<TraceResponse> DecodeTraceResponse(
    std::span<const std::byte> payload) {
  if (payload.size() < 8) return std::nullopt;
  TraceResponse v;
  v.req_id = LoadPod<uint64_t>(payload, 0);
  const auto blob = payload.subspan(8);
  v.blob.assign(blob.begin(), blob.end());
  return v;
}

namespace {

// Append into a caller-owned buffer whose capacity persists across
// messages — the hot reply path must not touch the allocator.
template <TriviallyCopyable T>
void AppendPod(std::vector<std::byte>& out, const T& value) {
  const size_t off = out.size();
  out.resize(off + sizeof(T));
  std::memcpy(out.data() + off, &value, sizeof(T));
}

}  // namespace

void EncodeInto(const WriteAck& v, std::vector<std::byte>& out) {
  out.clear();
  AppendPod(out, v.req_id);
  AppendPod(out, v.ok);
}

void EncodeInto(const OverloadReply& v, std::vector<std::byte>& out) {
  out.clear();
  AppendPod(out, v.req_id);
  AppendPod(out, v.retry_after_us);
}

void EncodeSearchResponseInto(uint64_t req_id,
                              std::span<const rtree::Entry> entries,
                              size_t max_payload,
                              std::vector<std::vector<std::byte>>& segments) {
  assert(max_payload >= 12 + kWireEntryBytes);
  const size_t per_segment = (max_payload - 12) / kWireEntryBytes;
  size_t used = 0;
  size_t i = 0;
  do {
    const size_t n = std::min(per_segment, entries.size() - i);
    if (used == segments.size()) segments.emplace_back();
    std::vector<std::byte>& seg = segments[used++];
    seg.clear();
    AppendPod(seg, req_id);
    AppendPod(seg, static_cast<uint32_t>(n));
    for (size_t k = 0; k < n; ++k) {
      const rtree::Entry& e = entries[i + k];
      AppendPod(seg, e.mbr.min_x);
      AppendPod(seg, e.mbr.min_y);
      AppendPod(seg, e.mbr.max_x);
      AppendPod(seg, e.mbr.max_y);
      AppendPod(seg, e.id);
    }
    i += n;
  } while (i < entries.size());
  segments.resize(used);
}

std::vector<std::vector<std::byte>> EncodeSearchResponse(
    uint64_t req_id, std::span<const rtree::Entry> entries,
    size_t max_payload) {
  std::vector<std::vector<std::byte>> segments;
  EncodeSearchResponseInto(req_id, entries, max_payload, segments);
  return segments;
}

std::optional<SearchResponseSegment> DecodeSearchResponseSegment(
    std::span<const std::byte> payload) {
  if (payload.size() < 12) return std::nullopt;
  ByteReader r(payload);
  SearchResponseSegment seg;
  seg.req_id = r.Read<uint64_t>();
  const uint32_t n = r.Read<uint32_t>();
  if (payload.size() != 12 + static_cast<size_t>(n) * kWireEntryBytes) {
    return std::nullopt;
  }
  seg.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    rtree::Entry e;
    e.mbr = ReadRect(r);
    e.id = r.Read<uint64_t>();
    seg.entries.push_back(e);
  }
  return seg;
}

}  // namespace catfish::msg

// Ring-buffer messaging over RDMA WRITE (paper Fig. 5).
//
// Each direction of a connection has one ring living in the *receiver's*
// registered memory. The sender RDMA-WRITEs variable-length messages at
// its free pointer (tail); the receiver consumes at its processed pointer
// (head) and acknowledges progress by RDMA-WRITEing the head value into a
// small ack cell in the *sender's* memory — exactly the two-pointer
// scheme of the paper.
//
// Wire format of one message (sizes rounded up to 8 bytes):
//
//   u32 size          total padded size; 0xffffffff marks a PAD record
//   u32 payload_len
//   u16 type          application message type
//   u16 flags         CONT/END segmentation bits
//   payload_len bytes
//   ... zero padding ...
//   u8  commit        0xCF, written last; polling waits for it so a
//                     half-delivered WRITE is never consumed (the
//                     "change the polling position" step of Fig. 6a)
//
// Messages never wrap: when the contiguous space to the end of the ring
// is too small, the sender emits a PAD record covering it and restarts at
// offset 0. The receiver zeroes consumed bytes before advancing its head,
// so the poll position reliably reads 0 until the next delivery.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rdmasim/rdma.h"

namespace catfish::msg {

inline constexpr uint32_t kPadMarker = 0xffffffffu;
inline constexpr uint8_t kCommitByte = 0xCF;
inline constexpr size_t kMsgHeaderBytes = 12;
inline constexpr size_t kMsgAlign = 8;

/// Message flags for multi-part responses (paper Fig. 5: CONT/END).
enum MsgFlags : uint16_t {
  kFlagNone = 0,
  kFlagCont = 1,  ///< more segments of this logical response follow
  kFlagEnd = 2,   ///< final segment
};

struct Message {
  uint16_t type = 0;
  uint16_t flags = 0;
  std::vector<std::byte> payload;
};

/// Padded on-the-wire size of a message with `payload_len` payload bytes.
constexpr size_t WireSize(size_t payload_len) noexcept {
  const size_t raw = kMsgHeaderBytes + payload_len + 1;  // +commit byte
  return (raw + kMsgAlign - 1) / kMsgAlign * kMsgAlign;
}

/// Sender half. Lives on the node that produces messages; writes into the
/// remote ring via `qp` and reads acknowledgements from a local ack cell
/// the peer updates.
class RingSender {
 public:
  /// `ring` addresses the receiver-side ring of `capacity` bytes;
  /// `ack_cell` is 8 bytes of local registered memory the receiver
  /// RDMA-WRITEs its head counter into. `capacity` must be a multiple of 8.
  RingSender(std::shared_ptr<rdma::QueuePair> qp, rdma::RemoteAddr ring,
             size_t capacity, std::span<std::byte> ack_cell);

  /// Attempts to send one message; returns false when the ring lacks
  /// space (the caller backs off and retries — the receiver's ack will
  /// open space). When `imm` is set the final WRITE carries immediate
  /// data (used by the event-driven server mode, §IV-B).
  bool TrySend(uint16_t type, uint16_t flags,
               std::span<const std::byte> payload,
               std::optional<uint32_t> imm = std::nullopt);

  /// Largest payload a single message can carry on this ring.
  size_t MaxPayload() const noexcept;

  size_t capacity() const noexcept { return capacity_; }
  uint64_t tail() const noexcept { return tail_; }
  uint64_t acked_head() const noexcept;

 private:
  std::shared_ptr<rdma::QueuePair> qp_;
  rdma::RemoteAddr ring_;
  size_t capacity_;
  std::span<std::byte> ack_cell_;
  uint64_t tail_ = 0;   // absolute byte counter
  uint64_t wr_id_ = 0;
  bool stalled_ = false;  // inside a back-pressure streak (event emitted)
  /// Reusable frame build buffer: after warm-up, sends are allocation-
  /// free (tests/alloc_test.cc pins this down).
  std::vector<std::byte> frame_;
};

/// Receiver half. Owns the local ring memory and writes head
/// acknowledgements back to the sender's ack cell.
class RingReceiver {
 public:
  RingReceiver(std::span<std::byte> ring,
               std::shared_ptr<rdma::QueuePair> qp,
               rdma::RemoteAddr remote_ack_cell);

  /// Non-blocking: consumes the next complete message if one is ready.
  /// The reference form reuses `out.payload`'s capacity — a caller that
  /// keeps one Message across its receive loop makes the steady state
  /// allocation-free. The optional form is a convenience wrapper that
  /// pays one payload allocation per message.
  bool TryReceive(Message& out);
  std::optional<Message> TryReceive();

  uint64_t head() const noexcept { return head_; }

 private:
  void Ack();

  std::span<std::byte> ring_;
  std::shared_ptr<rdma::QueuePair> qp_;
  rdma::RemoteAddr remote_ack_;
  uint64_t head_ = 0;  // absolute byte counter
  uint64_t wr_id_ = 0;
  /// Reusable frame copy: ring memory is racily shared with the remote
  /// QP, so frames are lifted out atomically before parsing.
  std::vector<std::byte> scratch_;
  std::vector<std::byte> ack_buf_;
};

}  // namespace catfish::msg

// Application-level message protocol of the Catfish R-tree service.
//
// Requests travel client→server, responses server→client, both over the
// ring buffers. Search responses of arbitrary cardinality are segmented
// into ring-sized parts chained with the CONT/END flags (paper Fig. 5).
// The server also broadcasts heartbeats carrying its CPU utilization on
// the response rings every `Inv` (paper §IV-A).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/rect.h"
#include "msg/ring.h"
#include "rtree/node.h"

namespace catfish::msg {

enum class MsgType : uint16_t {
  kSearchReq = 1,
  kSearchResp = 2,
  kInsertReq = 3,
  kInsertAck = 4,
  kDeleteReq = 5,
  kDeleteAck = 6,
  kHeartbeat = 7,
  kKnnReq = 8,
  kKnnResp = 9,
  kTraceResp = 10,
  kReplBatch = 11,  ///< primary→follower WAL record batch (msg/repl.h)
  kReplAck = 12,    ///< follower→primary durability ack (msg/repl.h)
};

/// Distributed-tracing context carried on Search/Insert/Delete requests
/// as an optional 13-byte tail (trace_id, parent span, sampled bit) —
/// the same opaque-extension idiom as the heartbeat's map-version tail:
/// emitted only when trace_id != 0, so context-free frames stay
/// byte-identical to the legacy wire format and legacy peers
/// interoperate unchanged. A server that sees sampled=1 opens a span
/// tree for the request and ships it back in a kTraceResp frame.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = no context (legacy frame)
  uint32_t parent_span = 0;
  uint8_t sampled = 0;

  bool present() const noexcept { return trace_id != 0; }
};

inline constexpr size_t kTraceContextBytes = 8 + 4 + 1;

struct SearchRequest {
  uint64_t req_id = 0;
  geo::Rect rect;
  TraceContext trace;
};

/// Write requests carry an exactly-once identity: `client_gen` names one
/// client write session for its whole life (it survives reconnects) and
/// `req_id` increases monotonically within it. The server dedups on the
/// pair, so a request resent after a reconnect is acked from the WAL's
/// recorded outcome instead of being applied twice.
struct InsertRequest {
  uint64_t req_id = 0;
  uint64_t client_gen = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;
  TraceContext trace;
};

struct DeleteRequest {
  uint64_t req_id = 0;
  uint64_t client_gen = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;
  TraceContext trace;
};

/// k-nearest-neighbor query. Served on the server only: best-first kNN
/// has a sequential frontier, so there is nothing to multi-issue and
/// offloading it would serialize one RTT per node.
struct KnnRequest {
  uint64_t req_id = 0;
  geo::Point point;
  uint32_t k = 0;
};

/// Ack for insert/delete. `ok` is 1 on success (a delete of a missing
/// entry acks with 0).
struct WriteAck {
  uint64_t req_id = 0;
  uint8_t ok = 0;
};

/// Server→client load report (paper Algorithm 1's u_serv input), plus
/// the tree's write epoch so clients can invalidate cached internal
/// nodes with staleness bounded by the heartbeat interval.
struct Heartbeat {
  uint64_t seq = 0;
  double cpu_util = 0.0;  ///< in [0,1]
  uint64_t tree_epoch = 0;
  /// The server incarnation emitting this heartbeat (SimNode generation,
  /// also carried in the bootstrap hello). A client that sees it change
  /// knows its cached tree state came from a dead server.
  uint64_t server_generation = 0;
  /// Sharded deployments only: the host's current routing-table version
  /// (ShardMap::version). A client holding an older map learns the
  /// cluster republished — e.g. another shard restarted — within one
  /// heartbeat interval, instead of on its next failed op. Encoded as an
  /// optional tail only when non-zero, so single-node heartbeats stay
  /// byte-identical to the pre-sharding wire format.
  uint64_t map_version = 0;
  /// Replicated deployments only (second optional tail, emitted when
  /// role != kReplRoleNone): the node's replication role, the epoch it
  /// serves under, and its durable WAL LSN. Clients use role+epoch to
  /// detect promotions between map republishes, and durable_lsn to bound
  /// follower read lag. When this tail is present the map-version tail
  /// is always encoded too (even if 0) so the frame size stays
  /// unambiguous.
  uint8_t role = 0;  ///< msg::ReplRole value; 0 = unreplicated
  uint64_t epoch = 0;
  uint64_t durable_lsn = 0;
};

/// Replication role a node advertises in heartbeats and hellos.
enum class ReplRole : uint8_t {
  kNone = 0,      ///< unreplicated single node (legacy frames)
  kPrimary = 1,
  kFollower = 2,
};

/// One segment of a search response; a full response is one or more
/// segments sharing req_id, all but the last flagged CONT.
struct SearchResponseSegment {
  uint64_t req_id = 0;
  std::vector<rtree::Entry> entries;
};

/// Server→client: the completed server-side span tree for a sampled
/// request, sent right after the response's END segment (or write ack)
/// on the same FIFO ring. `blob` is a telemetry/trace_wire.h encoding;
/// it is empty when the server has no tracer (or telemetry is compiled
/// out) — the frame is still sent so the client's wait is
/// deterministic.
struct TraceResponse {
  uint64_t req_id = 0;
  std::vector<std::byte> blob;
};

// --- codecs; each Decode returns nullopt on malformed payloads ---

std::vector<std::byte> Encode(const SearchRequest& v);
std::vector<std::byte> Encode(const InsertRequest& v);
std::vector<std::byte> Encode(const DeleteRequest& v);
std::vector<std::byte> Encode(const WriteAck& v);
std::vector<std::byte> Encode(const Heartbeat& v);
std::vector<std::byte> Encode(const KnnRequest& v);
std::vector<std::byte> Encode(const TraceResponse& v);

std::optional<SearchRequest> DecodeSearchRequest(
    std::span<const std::byte> payload);
std::optional<InsertRequest> DecodeInsertRequest(
    std::span<const std::byte> payload);
std::optional<DeleteRequest> DecodeDeleteRequest(
    std::span<const std::byte> payload);
std::optional<WriteAck> DecodeWriteAck(std::span<const std::byte> payload);
std::optional<Heartbeat> DecodeHeartbeat(std::span<const std::byte> payload);
std::optional<KnnRequest> DecodeKnnRequest(std::span<const std::byte> payload);
std::optional<TraceResponse> DecodeTraceResponse(
    std::span<const std::byte> payload);

/// Splits `entries` into response segments whose encoded payloads each
/// fit `max_payload` bytes. Always yields at least one segment (possibly
/// empty, for a zero-result search).
std::vector<std::vector<std::byte>> EncodeSearchResponse(
    uint64_t req_id, std::span<const rtree::Entry> entries,
    size_t max_payload);

std::optional<SearchResponseSegment> DecodeSearchResponseSegment(
    std::span<const std::byte> payload);

// --- allocation-free reply codecs (fast-messaging hot path) ---
//
// The server encodes every reply through these, reusing per-connection
// scratch so the steady-state request loop performs zero heap
// allocations (see tests/alloc_test.cc for the regression harness).

/// Encodes `v` into `out` (cleared first; capacity reused).
void EncodeInto(const WriteAck& v, std::vector<std::byte>& out);

/// EncodeSearchResponse into reusable segment buffers: `segments` is
/// resized to the segment count, each inner vector's capacity reused.
void EncodeSearchResponseInto(uint64_t req_id,
                              std::span<const rtree::Entry> entries,
                              size_t max_payload,
                              std::vector<std::vector<std::byte>>& segments);

/// Bytes one encoded result entry occupies in a response segment.
inline constexpr size_t kWireEntryBytes = rtree::kEntryBytes;

}  // namespace catfish::msg

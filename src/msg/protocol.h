// Application-level message protocol of the Catfish R-tree service.
//
// Requests travel client→server, responses server→client, both over the
// ring buffers. Search responses of arbitrary cardinality are segmented
// into ring-sized parts chained with the CONT/END flags (paper Fig. 5).
// The server also broadcasts heartbeats carrying its CPU utilization on
// the response rings every `Inv` (paper §IV-A).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/rect.h"
#include "msg/ring.h"
#include "rtree/node.h"

namespace catfish::msg {

enum class MsgType : uint16_t {
  kSearchReq = 1,
  kSearchResp = 2,
  kInsertReq = 3,
  kInsertAck = 4,
  kDeleteReq = 5,
  kDeleteAck = 6,
  kHeartbeat = 7,
  kKnnReq = 8,
  kKnnResp = 9,
};

struct SearchRequest {
  uint64_t req_id = 0;
  geo::Rect rect;
};

/// Write requests carry an exactly-once identity: `client_gen` names one
/// client write session for its whole life (it survives reconnects) and
/// `req_id` increases monotonically within it. The server dedups on the
/// pair, so a request resent after a reconnect is acked from the WAL's
/// recorded outcome instead of being applied twice.
struct InsertRequest {
  uint64_t req_id = 0;
  uint64_t client_gen = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;
};

struct DeleteRequest {
  uint64_t req_id = 0;
  uint64_t client_gen = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;
};

/// k-nearest-neighbor query. Served on the server only: best-first kNN
/// has a sequential frontier, so there is nothing to multi-issue and
/// offloading it would serialize one RTT per node.
struct KnnRequest {
  uint64_t req_id = 0;
  geo::Point point;
  uint32_t k = 0;
};

/// Ack for insert/delete. `ok` is 1 on success (a delete of a missing
/// entry acks with 0).
struct WriteAck {
  uint64_t req_id = 0;
  uint8_t ok = 0;
};

/// Server→client load report (paper Algorithm 1's u_serv input), plus
/// the tree's write epoch so clients can invalidate cached internal
/// nodes with staleness bounded by the heartbeat interval.
struct Heartbeat {
  uint64_t seq = 0;
  double cpu_util = 0.0;  ///< in [0,1]
  uint64_t tree_epoch = 0;
  /// The server incarnation emitting this heartbeat (SimNode generation,
  /// also carried in the bootstrap hello). A client that sees it change
  /// knows its cached tree state came from a dead server.
  uint64_t server_generation = 0;
  /// Sharded deployments only: the host's current routing-table version
  /// (ShardMap::version). A client holding an older map learns the
  /// cluster republished — e.g. another shard restarted — within one
  /// heartbeat interval, instead of on its next failed op. Encoded as an
  /// optional tail only when non-zero, so single-node heartbeats stay
  /// byte-identical to the pre-sharding wire format.
  uint64_t map_version = 0;
};

/// One segment of a search response; a full response is one or more
/// segments sharing req_id, all but the last flagged CONT.
struct SearchResponseSegment {
  uint64_t req_id = 0;
  std::vector<rtree::Entry> entries;
};

// --- codecs; each Decode returns nullopt on malformed payloads ---

std::vector<std::byte> Encode(const SearchRequest& v);
std::vector<std::byte> Encode(const InsertRequest& v);
std::vector<std::byte> Encode(const DeleteRequest& v);
std::vector<std::byte> Encode(const WriteAck& v);
std::vector<std::byte> Encode(const Heartbeat& v);
std::vector<std::byte> Encode(const KnnRequest& v);

std::optional<SearchRequest> DecodeSearchRequest(
    std::span<const std::byte> payload);
std::optional<InsertRequest> DecodeInsertRequest(
    std::span<const std::byte> payload);
std::optional<DeleteRequest> DecodeDeleteRequest(
    std::span<const std::byte> payload);
std::optional<WriteAck> DecodeWriteAck(std::span<const std::byte> payload);
std::optional<Heartbeat> DecodeHeartbeat(std::span<const std::byte> payload);
std::optional<KnnRequest> DecodeKnnRequest(std::span<const std::byte> payload);

/// Splits `entries` into response segments whose encoded payloads each
/// fit `max_payload` bytes. Always yields at least one segment (possibly
/// empty, for a zero-result search).
std::vector<std::vector<std::byte>> EncodeSearchResponse(
    uint64_t req_id, std::span<const rtree::Entry> entries,
    size_t max_payload);

std::optional<SearchResponseSegment> DecodeSearchResponseSegment(
    std::span<const std::byte> payload);

/// Bytes one encoded result entry occupies in a response segment.
inline constexpr size_t kWireEntryBytes = rtree::kEntryBytes;

}  // namespace catfish::msg

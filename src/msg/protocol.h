// Application-level message protocol of the Catfish R-tree service.
//
// Requests travel client→server, responses server→client, both over the
// ring buffers. Search responses of arbitrary cardinality are segmented
// into ring-sized parts chained with the CONT/END flags (paper Fig. 5).
// The server also broadcasts heartbeats carrying its CPU utilization on
// the response rings every `Inv` (paper §IV-A).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/rect.h"
#include "msg/ring.h"
#include "rtree/node.h"

namespace catfish::msg {

enum class MsgType : uint16_t {
  kSearchReq = 1,
  kSearchResp = 2,
  kInsertReq = 3,
  kInsertAck = 4,
  kDeleteReq = 5,
  kDeleteAck = 6,
  kHeartbeat = 7,
  kKnnReq = 8,
  kKnnResp = 9,
  kTraceResp = 10,
  kReplBatch = 11,  ///< primary→follower WAL record batch (msg/repl.h)
  kReplAck = 12,    ///< follower→primary durability ack (msg/repl.h)
  kOverloaded = 13,  ///< server→client: request shed by admission control
};

/// Distributed-tracing context carried on Search/Insert/Delete requests
/// as an optional 13-byte tail (trace_id, parent span, sampled bit) —
/// the same opaque-extension idiom as the heartbeat's map-version tail:
/// emitted only when trace_id != 0, so context-free frames stay
/// byte-identical to the legacy wire format and legacy peers
/// interoperate unchanged. A server that sees sampled=1 opens a span
/// tree for the request and ships it back in a kTraceResp frame.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = no context (legacy frame)
  uint32_t parent_span = 0;
  uint8_t sampled = 0;

  bool present() const noexcept { return trace_id != 0; }
};

inline constexpr size_t kTraceContextBytes = 8 + 4 + 1;

/// Deadline-budget tail carried on Search/Insert/Delete requests: the
/// absolute expiry time of the client's per-op budget on the shared
/// in-process steady clock (common/clock.h NowMicros — valid because
/// client and server share one process in the simulation; a real
/// deployment would carry a relative budget and re-anchor it). Encoded
/// as an optional 8-byte tail AFTER the trace tail, emitted only when
/// non-zero, so the four frame sizes (base, base+8, base+13, base+21)
/// discriminate the layouts and legacy frames stay byte-identical. A
/// server that sees an already-expired deadline drops the request
/// before touching the tree and replies kOverloaded instead of burning
/// CPU on dead work.
inline constexpr size_t kDeadlineTailBytes = 8;

struct SearchRequest {
  uint64_t req_id = 0;
  geo::Rect rect;
  TraceContext trace;
  uint64_t deadline_us = 0;  ///< absolute; 0 = no deadline (legacy)
};

/// Write requests carry an exactly-once identity: `client_gen` names one
/// client write session for its whole life (it survives reconnects) and
/// `req_id` increases monotonically within it. The server dedups on the
/// pair, so a request resent after a reconnect is acked from the WAL's
/// recorded outcome instead of being applied twice.
struct InsertRequest {
  uint64_t req_id = 0;
  uint64_t client_gen = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;
  TraceContext trace;
  uint64_t deadline_us = 0;  ///< absolute; 0 = no deadline (legacy)
};

struct DeleteRequest {
  uint64_t req_id = 0;
  uint64_t client_gen = 0;
  geo::Rect rect;
  uint64_t rect_id = 0;
  TraceContext trace;
  uint64_t deadline_us = 0;  ///< absolute; 0 = no deadline (legacy)
};

/// k-nearest-neighbor query. Served on the server only: best-first kNN
/// has a sequential frontier, so there is nothing to multi-issue and
/// offloading it would serialize one RTT per node.
struct KnnRequest {
  uint64_t req_id = 0;
  geo::Point point;
  uint32_t k = 0;
};

/// Ack for insert/delete. `ok` is 1 on success (a delete of a missing
/// entry acks with 0).
struct WriteAck {
  uint64_t req_id = 0;
  uint8_t ok = 0;
};

/// Server→client: the request named by req_id was shed by admission
/// control (queue depth / utilization bound exceeded, or its deadline
/// budget had already expired on arrival). `retry_after_us` is the
/// server's backlog-scaled hint for when a retry is likely to get in;
/// 0 means "do not retry this request" (its deadline had expired — the
/// answer can no longer be useful). Never sent to legacy clients
/// unprompted: only requests are answered with it, so a peer that
/// never sends requests never has to understand it.
struct OverloadReply {
  uint64_t req_id = 0;
  uint32_t retry_after_us = 0;
};

/// Server→client load report (paper Algorithm 1's u_serv input), plus
/// the tree's write epoch so clients can invalidate cached internal
/// nodes with staleness bounded by the heartbeat interval.
struct Heartbeat {
  uint64_t seq = 0;
  double cpu_util = 0.0;  ///< in [0,1]
  uint64_t tree_epoch = 0;
  /// The server incarnation emitting this heartbeat (SimNode generation,
  /// also carried in the bootstrap hello). A client that sees it change
  /// knows its cached tree state came from a dead server.
  uint64_t server_generation = 0;
  /// Sharded deployments only: the host's current routing-table version
  /// (ShardMap::version). A client holding an older map learns the
  /// cluster republished — e.g. another shard restarted — within one
  /// heartbeat interval, instead of on its next failed op. Encoded as an
  /// optional tail only when non-zero, so single-node heartbeats stay
  /// byte-identical to the pre-sharding wire format.
  uint64_t map_version = 0;
  /// Replicated deployments only (second optional tail, emitted when
  /// role != kReplRoleNone): the node's replication role, the epoch it
  /// serves under, and its durable WAL LSN. Clients use role+epoch to
  /// detect promotions between map republishes, and durable_lsn to bound
  /// follower read lag. When this tail is present the map-version tail
  /// is always encoded too (even if 0) so the frame size stays
  /// unambiguous.
  uint8_t role = 0;  ///< msg::ReplRole value; 0 = unreplicated
  uint64_t epoch = 0;
  uint64_t durable_lsn = 0;
};

/// Replication role a node advertises in heartbeats and hellos.
enum class ReplRole : uint8_t {
  kNone = 0,      ///< unreplicated single node (legacy frames)
  kPrimary = 1,
  kFollower = 2,
};

/// One segment of a search response; a full response is one or more
/// segments sharing req_id, all but the last flagged CONT.
struct SearchResponseSegment {
  uint64_t req_id = 0;
  std::vector<rtree::Entry> entries;
};

/// Server→client: the completed server-side span tree for a sampled
/// request, sent right after the response's END segment (or write ack)
/// on the same FIFO ring. `blob` is a telemetry/trace_wire.h encoding;
/// it is empty when the server has no tracer (or telemetry is compiled
/// out) — the frame is still sent so the client's wait is
/// deterministic.
struct TraceResponse {
  uint64_t req_id = 0;
  std::vector<std::byte> blob;
};

// --- codecs; each Decode returns nullopt on malformed payloads ---

std::vector<std::byte> Encode(const SearchRequest& v);
std::vector<std::byte> Encode(const InsertRequest& v);
std::vector<std::byte> Encode(const DeleteRequest& v);
std::vector<std::byte> Encode(const WriteAck& v);
std::vector<std::byte> Encode(const OverloadReply& v);
std::vector<std::byte> Encode(const Heartbeat& v);
std::vector<std::byte> Encode(const KnnRequest& v);
std::vector<std::byte> Encode(const TraceResponse& v);

std::optional<SearchRequest> DecodeSearchRequest(
    std::span<const std::byte> payload);
std::optional<InsertRequest> DecodeInsertRequest(
    std::span<const std::byte> payload);
std::optional<DeleteRequest> DecodeDeleteRequest(
    std::span<const std::byte> payload);
std::optional<WriteAck> DecodeWriteAck(std::span<const std::byte> payload);
std::optional<OverloadReply> DecodeOverloadReply(
    std::span<const std::byte> payload);
std::optional<Heartbeat> DecodeHeartbeat(std::span<const std::byte> payload);
std::optional<KnnRequest> DecodeKnnRequest(std::span<const std::byte> payload);
std::optional<TraceResponse> DecodeTraceResponse(
    std::span<const std::byte> payload);

/// Splits `entries` into response segments whose encoded payloads each
/// fit `max_payload` bytes. Always yields at least one segment (possibly
/// empty, for a zero-result search).
std::vector<std::vector<std::byte>> EncodeSearchResponse(
    uint64_t req_id, std::span<const rtree::Entry> entries,
    size_t max_payload);

std::optional<SearchResponseSegment> DecodeSearchResponseSegment(
    std::span<const std::byte> payload);

// --- allocation-free reply codecs (fast-messaging hot path) ---
//
// The server encodes every reply through these, reusing per-connection
// scratch so the steady-state request loop performs zero heap
// allocations (see tests/alloc_test.cc for the regression harness).

/// Encodes `v` into `out` (cleared first; capacity reused).
void EncodeInto(const WriteAck& v, std::vector<std::byte>& out);

/// Same for shed replies: the overloaded path above all must not
/// allocate, or shedding would be slower than serving.
void EncodeInto(const OverloadReply& v, std::vector<std::byte>& out);

/// EncodeSearchResponse into reusable segment buffers: `segments` is
/// resized to the segment count, each inner vector's capacity reused.
void EncodeSearchResponseInto(uint64_t req_id,
                              std::span<const rtree::Entry> entries,
                              size_t max_payload,
                              std::vector<std::vector<std::byte>>& segments);

/// Bytes one encoded result entry occupies in a response segment.
inline constexpr size_t kWireEntryBytes = rtree::kEntryBytes;

}  // namespace catfish::msg

// FaRM-style versioned cache-line layout for R-tree node chunks.
//
// The R-tree lives in one contiguous, RDMA-registered memory region split
// into fixed-size chunks (one node per chunk, paper §III-B). Offloading
// clients fetch raw chunks with one-sided RDMA READs while server threads
// may be mutating them, so every 64-byte cache line of a chunk carries a
// 32-bit version stamp (paper §III-B, citing FaRM):
//
//   line k :  [u32 version][60 bytes payload]
//
// Writers bump every line version to an odd value, mutate the payload,
// then bump to the next even value (a seqlock per node). A reader copies
// the chunk and accepts it only if all line versions are equal and even.
// Both RDMA READ and CPU stores are cache-line atomic, which makes this
// sound on real hardware; the simulated NIC copies in 64-byte units to
// preserve exactly that granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace catfish::rtree {

inline constexpr size_t kLineSize = 64;
inline constexpr size_t kVersionBytes = sizeof(uint32_t);
inline constexpr size_t kLinePayload = kLineSize - kVersionBytes;

/// Usable payload bytes of a chunk of `chunk_size` bytes.
/// `chunk_size` must be a multiple of the cache-line size.
constexpr size_t PayloadCapacity(size_t chunk_size) noexcept {
  return (chunk_size / kLineSize) * kLinePayload;
}

/// Number of cache lines in a chunk.
constexpr size_t LineCount(size_t chunk_size) noexcept {
  return chunk_size / kLineSize;
}

/// Reads the version stamp of line `line` from a raw chunk image.
uint32_t LineVersion(std::span<const std::byte> chunk, size_t line) noexcept;

/// Checks the seqlock read invariant on a raw chunk image: all line
/// versions equal and even. Returns the common version on success.
std::optional<uint32_t> ValidateVersions(
    std::span<const std::byte> chunk) noexcept;

/// Writer-side seqlock protocol. BeginWrite makes every line version odd;
/// EndWrite advances them to the next even value. Both must run under the
/// tree's writer lock — the versions protect readers, not other writers.
void BeginWrite(std::span<std::byte> chunk) noexcept;
void EndWrite(std::span<std::byte> chunk) noexcept;

/// Copies the logical payload out of a raw chunk image, skipping the
/// version words. `out.size()` must equal PayloadCapacity(chunk.size()).
/// Does NOT validate versions — callers combine with ValidateVersions.
void GatherPayload(std::span<const std::byte> chunk,
                   std::span<std::byte> out) noexcept;

/// Writes a logical payload into a chunk, skipping version words.
/// Must be bracketed by BeginWrite/EndWrite when readers may race.
void ScatterPayload(std::span<std::byte> chunk,
                    std::span<const std::byte> payload) noexcept;

/// Reads `size` payload bytes starting at logical payload offset `offset`
/// (gathering across cache lines).
void GatherPayloadAt(std::span<const std::byte> chunk, size_t offset,
                     std::span<std::byte> out) noexcept;

/// Initializes a fresh chunk: zero payload, all versions set to an even
/// starting value.
void InitChunk(std::span<std::byte> chunk) noexcept;

}  // namespace catfish::rtree

// FaRM-style versioned cache-line layout for R-tree node chunks.
//
// The R-tree lives in one contiguous, RDMA-registered memory region split
// into fixed-size chunks (one node per chunk, paper §III-B). Offloading
// clients fetch raw chunks with one-sided RDMA READs while server threads
// may be mutating them, so every 64-byte cache line of a chunk carries a
// 32-bit version stamp (paper §III-B, citing FaRM):
//
//   line k :  [u32 version][60 bytes payload]
//
// Writers bump every line version to an odd value, mutate the payload,
// then bump to the next even value (a seqlock per node). A reader copies
// the chunk and accepts it only if all line versions are equal and even.
// Both RDMA READ and CPU stores are cache-line atomic, which makes this
// sound on real hardware; the simulated NIC reproduces that per-line
// snapshot atomicity with SnapshotCopy below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace catfish::rtree {

inline constexpr size_t kLineSize = 64;
inline constexpr size_t kVersionBytes = sizeof(uint32_t);
inline constexpr size_t kLinePayload = kLineSize - kVersionBytes;

/// Usable payload bytes of a chunk of `chunk_size` bytes.
/// `chunk_size` must be a multiple of the cache-line size.
constexpr size_t PayloadCapacity(size_t chunk_size) noexcept {
  return (chunk_size / kLineSize) * kLinePayload;
}

/// Number of cache lines in a chunk.
constexpr size_t LineCount(size_t chunk_size) noexcept {
  return chunk_size / kLineSize;
}

/// Reads the version stamp of line `line` from a raw chunk image.
uint32_t LineVersion(std::span<const std::byte> chunk, size_t line) noexcept;

/// Checks the seqlock read invariant on a raw chunk image: all line
/// versions equal and even. Returns the common version on success.
std::optional<uint32_t> ValidateVersions(
    std::span<const std::byte> chunk) noexcept;

/// Writer-side seqlock protocol. BeginWrite makes every line version odd;
/// EndWrite advances them to the next even value. Both must run under the
/// tree's writer lock — the versions protect readers, not other writers.
void BeginWrite(std::span<std::byte> chunk) noexcept;
void EndWrite(std::span<std::byte> chunk) noexcept;

/// Copies the logical payload out of a raw chunk image, skipping the
/// version words. `out.size()` must equal PayloadCapacity(chunk.size()).
/// Does NOT validate versions — callers combine with ValidateVersions.
void GatherPayload(std::span<const std::byte> chunk,
                   std::span<std::byte> out) noexcept;

/// Writes a logical payload into a chunk, skipping version words.
/// Must be bracketed by BeginWrite/EndWrite when readers may race.
void ScatterPayload(std::span<std::byte> chunk,
                    std::span<const std::byte> payload) noexcept;

/// Reads `size` payload bytes starting at logical payload offset `offset`
/// (gathering across cache lines).
void GatherPayloadAt(std::span<const std::byte> chunk, size_t offset,
                     std::span<std::byte> out) noexcept;

/// Copies `n` bytes of live, possibly concurrently-written chunk memory
/// into a private buffer while preserving the per-cache-line snapshot
/// atomicity a real NIC's READ provides. A word-by-word copy can capture
/// a *complete* writer cycle (odd bump, payload, even bump) inside one
/// line's copy window after that line's version word was already taken,
/// producing mixed payload under all-equal-even versions — a torn read
/// the seqlock cannot detect. Real hardware cannot interleave at sub-line
/// granularity, so the simulated data path must not either.
///
/// Per line: read the version word, copy the payload, re-read the version;
/// equal means the line is a consistent snapshot (versions only grow, and
/// payload stores happen only while the version is odd), so stamp the copy
/// with it. After bounded retries, stamp the copy with an odd version so
/// chunk validation deterministically rejects the line. For non-seqlock
/// bytes (quiescent or unversioned regions) the first pass always matches
/// and this degrades to a plain copy. A trailing sub-line remainder and
/// unaligned buffers fall back to RelaxedCopy.
void SnapshotCopy(std::byte* dst, const std::byte* src, size_t n) noexcept;

/// Initializes a fresh chunk: zero payload, all versions set to an even
/// starting value.
void InitChunk(std::span<std::byte> chunk) noexcept;

}  // namespace catfish::rtree

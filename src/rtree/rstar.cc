#include "rtree/rstar.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

namespace catfish::rtree {
namespace {

geo::Rect MbrOf(const std::vector<Entry>& entries, size_t first,
                size_t last) {
  geo::Rect r = geo::Rect::Empty();
  for (size_t i = first; i < last; ++i) r = r.Union(entries[i].mbr);
  return r;
}

geo::Rect MbrOf(const std::vector<Entry>& entries) {
  return MbrOf(entries, 0, entries.size());
}

}  // namespace

RStarTree::RStarTree(NodeArena& arena, RStarConfig cfg)
    : arena_(&arena), cfg_(cfg) {
  if (cfg_.max_entries > MaxFanout(arena.chunk_size()) ||
      cfg_.max_entries < 4) {
    throw std::invalid_argument("RStarTree: max_entries out of range");
  }
  if (cfg_.min_entries < 2 || cfg_.min_entries > cfg_.max_entries / 2) {
    throw std::invalid_argument("RStarTree: min_entries out of range");
  }
}

RStarTree RStarTree::Create(NodeArena& arena, RStarConfig cfg) {
  RStarTree tree(arena, cfg);
  const ChunkId root = arena.Allocate();
  if (root != kRootChunk) {
    throw std::logic_error("RStarTree::Create requires a fresh arena");
  }
  NodeData empty_root;
  empty_root.self = kRootChunk;
  empty_root.level = 0;
  empty_root.count = 0;
  tree.StoreNode(empty_root);
  tree.StoreMeta();
  return tree;
}

RStarTree RStarTree::Attach(NodeArena& arena, RStarConfig cfg) {
  RStarTree tree(arena, cfg);
  std::vector<std::byte> payload(arena.payload_capacity());
  GatherPayload(arena.chunk(kMetaChunk), payload);
  TreeMeta meta;
  if (!DecodeMeta(payload, meta)) {
    throw std::runtime_error("RStarTree::Attach: no tree in arena");
  }
  tree.size_.store(meta.size, std::memory_order_relaxed);
  tree.height_.store(meta.height, std::memory_order_relaxed);
  return tree;
}

// ---------------------------------------------------------------------------
// Node IO
// ---------------------------------------------------------------------------

void RStarTree::LoadNode(ChunkId id, NodeData& out) const {
  // Writer-side load: the caller holds writer_mutex_, so no concurrent
  // writer exists and a single gather is consistent.
  std::byte payload[PayloadCapacity(kChunkSize)];
  GatherPayload(arena_->chunk(id), payload);
  const bool ok = DecodeNode(payload, out);
  assert(ok && out.self == id);
  (void)ok;
}

void RStarTree::StoreNode(const NodeData& node) {
  std::byte payload[PayloadCapacity(kChunkSize)] = {};
  EncodeNode(node, payload);
  auto chunk = arena_->chunk(node.self);
  BeginWrite(chunk);
  ScatterPayload(chunk, payload);
  EndWrite(chunk);
}

void RStarTree::StoreMeta() {
  TreeMeta meta;
  meta.root = kRootChunk;
  meta.height = height_.load(std::memory_order_relaxed);
  meta.size = size_.load(std::memory_order_relaxed);
  std::byte payload[PayloadCapacity(kChunkSize)] = {};
  EncodeMeta(meta, payload);
  auto chunk = arena_->chunk(kMetaChunk);
  BeginWrite(chunk);
  ScatterPayload(chunk, payload);
  EndWrite(chunk);
}

uint64_t RStarTree::ReadNode(ChunkId id, NodeData& out) const {
  std::byte payload[PayloadCapacity(kChunkSize)];
  const auto chunk = arena_->chunk(id);
  uint64_t retries = 0;
  for (;;) {
    const auto v1 = ValidateVersions(chunk);
    if (v1) {
      GatherPayload(chunk, payload);
      const auto v2 = ValidateVersions(chunk);
      if (v2 && *v2 == *v1 && DecodeNode(payload, out) && out.self == id) {
        return retries;
      }
    }
    ++retries;
  }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

size_t RStarTree::Search(const geo::Rect& query, std::vector<Entry>& out) const {
  return SearchTraced(query, out, nullptr, nullptr);
}

size_t RStarTree::SearchTraced(const geo::Rect& query, std::vector<Entry>& out,
                               SearchStats* stats,
                               TraversalTrace* trace) const {
  // Breadth-first traversal: the frontier at each level is exactly the
  // set of nodes a multi-issue offloading client fetches in one round.
  size_t found = 0;
  uint64_t visited = 0;
  uint64_t retries = 0;
  std::vector<ChunkId> frontier{kRootChunk};
  std::vector<ChunkId> next;
  if (trace) trace->nodes_per_level.clear();
  NodeData node;
  while (!frontier.empty()) {
    if (trace)
      trace->nodes_per_level.push_back(
          static_cast<uint32_t>(frontier.size()));
    next.clear();
    for (const ChunkId id : frontier) {
      retries += ReadNode(id, node);
      ++visited;
      for (uint16_t i = 0; i < node.count; ++i) {
        const Entry& e = node.entries[i];
        if (!e.mbr.Intersects(query)) continue;
        if (node.IsLeaf()) {
          out.push_back(e);
          ++found;
        } else {
          next.push_back(static_cast<ChunkId>(e.id));
        }
      }
    }
    frontier.swap(next);
  }
  if (stats) {
    stats->nodes_visited = visited;
    stats->results = found;
    stats->read_retries = retries;
  }
  return found;
}

size_t RStarTree::NearestNeighbors(const geo::Point& p, size_t k,
                                   std::vector<Entry>& out,
                                   SearchStats* stats) const {
  if (k == 0) return 0;
  // Best-first search over a min-heap of MINDIST lower bounds. Data
  // entries enter the same queue with their exact distance; when a data
  // entry surfaces, nothing unexplored can be closer.
  struct Item {
    double dist2;
    bool is_data;
    Entry entry;  // data entry, or {mbr, child chunk} for nodes
  };
  struct Farther {
    bool operator()(const Item& a, const Item& b) const noexcept {
      return a.dist2 > b.dist2;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Farther> queue;
  queue.push({0.0, false, Entry{geo::Rect{0, 0, 1, 1}, kRootChunk}});

  uint64_t visited = 0;
  uint64_t retries = 0;
  size_t found = 0;
  NodeData node;
  while (!queue.empty() && found < k) {
    const Item item = queue.top();
    queue.pop();
    if (item.is_data) {
      out.push_back(item.entry);
      ++found;
      continue;
    }
    retries += ReadNode(static_cast<ChunkId>(item.entry.id), node);
    ++visited;
    for (uint16_t i = 0; i < node.count; ++i) {
      const Entry& e = node.entries[i];
      queue.push({geo::MinDist2(e.mbr, p), node.IsLeaf(), e});
    }
  }
  if (stats) {
    stats->nodes_visited = visited;
    stats->results = found;
    stats->read_retries = retries;
  }
  return found;
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

size_t RStarTree::ChooseSubtree(const NodeData& node,
                                const geo::Rect& rect) const {
  assert(node.level > 0 && node.count > 0);
  size_t best = 0;
  if (node.level == 1) {
    // Children are leaves: R* minimizes overlap enlargement, then area
    // enlargement, then area.
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.count; ++i) {
      const geo::Rect grown = node.entries[i].mbr.Union(rect);
      double overlap_delta = 0.0;
      for (size_t j = 0; j < node.count; ++j) {
        if (j == i) continue;
        overlap_delta += grown.OverlapArea(node.entries[j].mbr) -
                         node.entries[i].mbr.OverlapArea(node.entries[j].mbr);
      }
      const double enlarge = node.entries[i].mbr.Enlargement(rect);
      const double area = node.entries[i].mbr.Area();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best = i;
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
  } else {
    // Children are internal: minimize area enlargement, then area.
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.count; ++i) {
      const double enlarge = node.entries[i].mbr.Enlargement(rect);
      const double area = node.entries[i].mbr.Area();
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = i;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
  }
  return best;
}

std::vector<ChunkId> RStarTree::ChoosePath(const geo::Rect& rect,
                                           uint16_t target_level) const {
  std::vector<ChunkId> path{kRootChunk};
  NodeData node;
  LoadNode(kRootChunk, node);
  while (node.level > target_level) {
    const size_t idx = ChooseSubtree(node, rect);
    const auto child = static_cast<ChunkId>(node.entries[idx].id);
    path.push_back(child);
    LoadNode(child, node);
  }
  assert(node.level == target_level);
  return path;
}

void RStarTree::Insert(const geo::Rect& rect, uint64_t id) {
  if (!rect.IsValid()) {
    throw std::invalid_argument("RStarTree::Insert: invalid rectangle");
  }
  const std::scoped_lock lock(writer_mutex_);
  uint32_t reinsert_mask = 0;
  InsertAtLevel(Entry{rect, id}, 0, reinsert_mask);
  size_.fetch_add(1, std::memory_order_relaxed);
  write_epoch_.fetch_add(1, std::memory_order_relaxed);
  StoreMeta();
}

void RStarTree::InsertAtLevel(const Entry& e, uint16_t level,
                              uint32_t& reinsert_mask) {
  AddEntryToNode(ChoosePath(e.mbr, level), e, reinsert_mask);
}

void RStarTree::AddEntryToNode(const std::vector<ChunkId>& path,
                               const Entry& e, uint32_t& reinsert_mask) {
  NodeData node;
  LoadNode(path.back(), node);
  if (node.count < cfg_.max_entries) {
    node.entries[node.count++] = e;
    StoreNode(node);
    AdjustUpward(path);
    return;
  }

  // Overflow: collect the M+1 entries.
  std::vector<Entry> all(node.entries.begin(),
                         node.entries.begin() + node.count);
  all.push_back(e);

  const bool is_root = path.size() == 1;
  const uint32_t level_bit = 1u << node.level;
  if (!is_root && cfg_.forced_reinsert && !(reinsert_mask & level_bit)) {
    // R* forced reinsertion: remove the p entries whose centers are
    // farthest from the overflowing node's center and re-insert them
    // (close reinsert: nearest of the removed set first).
    reinsert_mask |= level_bit;
    const geo::Rect whole = MbrOf(all);
    std::stable_sort(all.begin(), all.end(),
                     [&whole](const Entry& a, const Entry& b) {
                       return geo::CenterDistance2(a.mbr, whole) >
                              geo::CenterDistance2(b.mbr, whole);
                     });
    const size_t p = std::max<size_t>(
        1, static_cast<size_t>(
               std::lround(cfg_.reinsert_fraction *
                           static_cast<double>(cfg_.max_entries))));
    std::vector<Entry> removed(all.begin(), all.begin() + p);
    node.count = static_cast<uint16_t>(all.size() - p);
    std::copy(all.begin() + p, all.end(), node.entries.begin());
    StoreNode(node);
    AdjustUpward(path);
    const uint16_t level = node.level;
    for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
      InsertAtLevel(*it, level, reinsert_mask);
    }
    return;
  }

  SplitNode(path, node, std::move(all), reinsert_mask);
}

void RStarTree::SplitNode(const std::vector<ChunkId>& path, NodeData& node,
                          std::vector<Entry> all, uint32_t& reinsert_mask) {
  std::vector<Entry> g1;
  std::vector<Entry> g2;
  RStarSplit(cfg_, all, g1, g2);

  if (path.size() == 1) {
    // Root split. The root stays pinned at kRootChunk: move both halves
    // into fresh chunks and rewrite the root as their parent.
    const ChunkId a = arena_->Allocate();
    const ChunkId b = arena_->Allocate();
    NodeData left;
    left.self = a;
    left.level = node.level;
    left.count = static_cast<uint16_t>(g1.size());
    std::copy(g1.begin(), g1.end(), left.entries.begin());
    NodeData right;
    right.self = b;
    right.level = node.level;
    right.count = static_cast<uint16_t>(g2.size());
    std::copy(g2.begin(), g2.end(), right.entries.begin());
    StoreNode(left);
    StoreNode(right);

    NodeData root;
    root.self = kRootChunk;
    root.level = static_cast<uint16_t>(node.level + 1);
    root.count = 2;
    root.entries[0] = Entry{MbrOf(g1), a};
    root.entries[1] = Entry{MbrOf(g2), b};
    StoreNode(root);
    height_.store(root.level + 1u, std::memory_order_relaxed);
    StoreMeta();
    return;
  }

  // Non-root split: the node keeps group 1, group 2 goes to a new chunk
  // whose entry is pushed into the parent (possibly overflowing it).
  const ChunkId fresh = arena_->Allocate();
  node.count = static_cast<uint16_t>(g1.size());
  std::copy(g1.begin(), g1.end(), node.entries.begin());
  StoreNode(node);

  NodeData sibling;
  sibling.self = fresh;
  sibling.level = node.level;
  sibling.count = static_cast<uint16_t>(g2.size());
  std::copy(g2.begin(), g2.end(), sibling.entries.begin());
  StoreNode(sibling);

  std::vector<ChunkId> parent_path(path.begin(), path.end() - 1);
  NodeData parent;
  LoadNode(parent_path.back(), parent);
  for (uint16_t i = 0; i < parent.count; ++i) {
    if (parent.entries[i].id == node.self) {
      parent.entries[i].mbr = MbrOf(g1);
      break;
    }
  }
  StoreNode(parent);
  AddEntryToNode(parent_path, Entry{MbrOf(g2), fresh}, reinsert_mask);
}

void RStarTree::RStarSplit(const RStarConfig& cfg, std::vector<Entry>& all,
                           std::vector<Entry>& g1, std::vector<Entry>& g2) {
  const size_t total = all.size();
  const size_t m = cfg.min_entries;
  assert(total == cfg.max_entries + 1 && total >= 2 * m);

  // For one sorted order, the goodness values of every split position
  // can be computed from prefix/suffix MBR arrays.
  struct SortEval {
    double margin_sum = 0.0;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    size_t best_k = 0;  // group 1 takes entries [0, best_k)
  };
  const auto evaluate = [&](const std::vector<Entry>& sorted) {
    std::vector<geo::Rect> prefix(total);
    std::vector<geo::Rect> suffix(total);
    prefix[0] = sorted[0].mbr;
    for (size_t i = 1; i < total; ++i)
      prefix[i] = prefix[i - 1].Union(sorted[i].mbr);
    suffix[total - 1] = sorted[total - 1].mbr;
    for (size_t i = total - 1; i-- > 0;)
      suffix[i] = suffix[i + 1].Union(sorted[i].mbr);

    SortEval ev;
    for (size_t k = m; k <= total - m; ++k) {
      const geo::Rect& r1 = prefix[k - 1];
      const geo::Rect& r2 = suffix[k];
      ev.margin_sum += r1.Margin() + r2.Margin();
      const double overlap = r1.OverlapArea(r2);
      const double area = r1.Area() + r2.Area();
      if (overlap < ev.best_overlap ||
          (overlap == ev.best_overlap && area < ev.best_area)) {
        ev.best_overlap = overlap;
        ev.best_area = area;
        ev.best_k = k;
      }
    }
    return ev;
  };

  // Four candidate sort orders: each axis by lower and by upper value.
  using Cmp = bool (*)(const Entry&, const Entry&);
  const Cmp cmps[4] = {
      [](const Entry& a, const Entry& b) { return a.mbr.min_x < b.mbr.min_x; },
      [](const Entry& a, const Entry& b) { return a.mbr.max_x < b.mbr.max_x; },
      [](const Entry& a, const Entry& b) { return a.mbr.min_y < b.mbr.min_y; },
      [](const Entry& a, const Entry& b) { return a.mbr.max_y < b.mbr.max_y; },
  };

  std::vector<Entry> sorted[4];
  SortEval evals[4];
  double axis_margin[2] = {0.0, 0.0};
  for (int s = 0; s < 4; ++s) {
    sorted[s] = all;
    std::stable_sort(sorted[s].begin(), sorted[s].end(), cmps[s]);
    evals[s] = evaluate(sorted[s]);
    axis_margin[s / 2] += evals[s].margin_sum;
  }

  // Choose the split axis with the minimum margin sum, then the best
  // distribution (min overlap, then min area) among that axis' two sorts.
  const int axis = axis_margin[0] <= axis_margin[1] ? 0 : 1;
  int pick = axis * 2;
  const SortEval& e0 = evals[axis * 2];
  const SortEval& e1 = evals[axis * 2 + 1];
  if (e1.best_overlap < e0.best_overlap ||
      (e1.best_overlap == e0.best_overlap && e1.best_area < e0.best_area)) {
    pick = axis * 2 + 1;
  }

  const std::vector<Entry>& order = sorted[pick];
  const size_t k = evals[pick].best_k;
  g1.assign(order.begin(), order.begin() + k);
  g2.assign(order.begin() + k, order.end());
}

void RStarTree::AdjustUpward(const std::vector<ChunkId>& path) {
  // Recompute child MBRs bottom-up along the path and patch the parent
  // entries that reference them.
  NodeData child;
  NodeData parent;
  for (size_t i = path.size(); i-- > 1;) {
    LoadNode(path[i], child);
    LoadNode(path[i - 1], parent);
    const geo::Rect mbr = child.ComputeMbr();
    bool changed = false;
    for (uint16_t j = 0; j < parent.count; ++j) {
      if (parent.entries[j].id == path[i]) {
        if (!(parent.entries[j].mbr == mbr)) {
          parent.entries[j].mbr = mbr;
          changed = true;
        }
        break;
      }
    }
    if (changed) StoreNode(parent);
  }
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

bool RStarTree::FindLeafPath(ChunkId node_id, const geo::Rect& rect,
                             uint64_t id, std::vector<ChunkId>& path) const {
  path.push_back(node_id);
  NodeData node;
  LoadNode(node_id, node);
  if (node.IsLeaf()) {
    for (uint16_t i = 0; i < node.count; ++i) {
      if (node.entries[i].id == id && node.entries[i].mbr == rect)
        return true;
    }
  } else {
    for (uint16_t i = 0; i < node.count; ++i) {
      if (node.entries[i].mbr.Contains(rect) &&
          FindLeafPath(static_cast<ChunkId>(node.entries[i].id), rect, id,
                       path)) {
        return true;
      }
    }
  }
  path.pop_back();
  return false;
}

bool RStarTree::Delete(const geo::Rect& rect, uint64_t id) {
  const std::scoped_lock lock(writer_mutex_);
  std::vector<ChunkId> path;
  if (!FindLeafPath(kRootChunk, rect, id, path)) return false;

  NodeData leaf;
  LoadNode(path.back(), leaf);
  for (uint16_t i = 0; i < leaf.count; ++i) {
    if (leaf.entries[i].id == id && leaf.entries[i].mbr == rect) {
      leaf.entries[i] = leaf.entries[--leaf.count];
      break;
    }
  }
  StoreNode(leaf);

  // Condense: walk up eliminating underfull nodes; orphans are
  // re-inserted at their original level (Guttman's CondenseTree).
  std::vector<std::pair<Entry, uint16_t>> orphans;
  for (size_t i = path.size(); i-- > 1;) {
    NodeData node;
    LoadNode(path[i], node);
    NodeData parent;
    LoadNode(path[i - 1], parent);
    if (node.count < cfg_.min_entries) {
      for (uint16_t j = 0; j < parent.count; ++j) {
        if (parent.entries[j].id == path[i]) {
          parent.entries[j] = parent.entries[--parent.count];
          break;
        }
      }
      StoreNode(parent);
      for (uint16_t j = 0; j < node.count; ++j) {
        orphans.emplace_back(node.entries[j], node.level);
      }
      arena_->Free(path[i]);
    } else {
      const geo::Rect mbr = node.ComputeMbr();
      for (uint16_t j = 0; j < parent.count; ++j) {
        if (parent.entries[j].id == path[i]) {
          parent.entries[j].mbr = mbr;
          break;
        }
      }
      StoreNode(parent);
    }
  }

  // Re-insert orphans, highest level first so the levels they require
  // still exist while lower subtrees go back in.
  std::stable_sort(orphans.begin(), orphans.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  for (const auto& [entry, level] : orphans) {
    // Condensation can leave the root empty (every child eliminated);
    // re-seat it at the orphan's level so the orphan can land directly.
    NodeData root;
    LoadNode(kRootChunk, root);
    if (root.count == 0 && root.level != level) {
      root.level = level;
      StoreNode(root);
      height_.store(level + 1u, std::memory_order_relaxed);
    }
    uint32_t reinsert_mask = 0;
    InsertAtLevel(entry, level, reinsert_mask);
  }

  // Shrink the root while it is internal with a single child: copy the
  // child's content into the pinned root chunk.
  for (;;) {
    NodeData root;
    LoadNode(kRootChunk, root);
    if (root.level > 0 && root.count == 0) {
      // All children were eliminated and nothing was re-inserted: the
      // tree is empty — reset to an empty leaf root.
      root.level = 0;
      StoreNode(root);
      height_.store(1, std::memory_order_relaxed);
      break;
    }
    if (root.IsLeaf() || root.count != 1) break;
    const auto child_id = static_cast<ChunkId>(root.entries[0].id);
    NodeData child;
    LoadNode(child_id, child);
    child.self = kRootChunk;
    StoreNode(child);
    arena_->Free(child_id);
    height_.store(child.level + 1u, std::memory_order_relaxed);
  }

  size_.fetch_sub(1, std::memory_order_relaxed);
  write_epoch_.fetch_add(1, std::memory_order_relaxed);
  StoreMeta();
  return true;
}

// ---------------------------------------------------------------------------
// Validation / test support
// ---------------------------------------------------------------------------

void RStarTree::CheckNode(ChunkId id, uint16_t expected_level, bool is_root,
                          uint64_t& leaf_entries) const {
  NodeData node;
  LoadNode(id, node);
  if (node.level != expected_level) {
    throw std::logic_error("RStarTree invariant: level mismatch");
  }
  if (!is_root && node.count < cfg_.min_entries) {
    throw std::logic_error("RStarTree invariant: underfull node");
  }
  if (node.count > cfg_.max_entries) {
    throw std::logic_error("RStarTree invariant: overfull node");
  }
  if (node.IsLeaf()) {
    leaf_entries += node.count;
    return;
  }
  if (node.count == 0) {
    throw std::logic_error("RStarTree invariant: empty internal node");
  }
  for (uint16_t i = 0; i < node.count; ++i) {
    const auto child_id = static_cast<ChunkId>(node.entries[i].id);
    NodeData child;
    LoadNode(child_id, child);
    if (!(node.entries[i].mbr == child.ComputeMbr())) {
      throw std::logic_error("RStarTree invariant: stale parent MBR");
    }
    CheckNode(child_id, static_cast<uint16_t>(expected_level - 1), false,
              leaf_entries);
  }
}

void RStarTree::CheckInvariants() const {
  const std::scoped_lock lock(writer_mutex_);
  NodeData root;
  LoadNode(kRootChunk, root);
  if (root.level + 1u != height()) {
    throw std::logic_error("RStarTree invariant: height mismatch");
  }
  uint64_t leaf_entries = 0;
  CheckNode(kRootChunk, root.level, true, leaf_entries);
  if (leaf_entries != size()) {
    throw std::logic_error("RStarTree invariant: size mismatch");
  }
}

void RStarTree::CollectAll(std::vector<Entry>& out) const {
  std::deque<ChunkId> queue{kRootChunk};
  NodeData node;
  while (!queue.empty()) {
    const ChunkId id = queue.front();
    queue.pop_front();
    ReadNode(id, node);
    for (uint16_t i = 0; i < node.count; ++i) {
      if (node.IsLeaf()) {
        out.push_back(node.entries[i]);
      } else {
        queue.push_back(static_cast<ChunkId>(node.entries[i].id));
      }
    }
  }
}

}  // namespace catfish::rtree

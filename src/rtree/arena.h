// NodeArena: the single registered memory region holding all R-tree nodes.
//
// The paper (§III-B) allocates enough memory on the server to hold the
// whole R-tree and registers it with the NIC once; clients address nodes
// as (region base, chunk_id * chunk_size). This class is that region:
// chunked, 64-byte aligned, with a free list for node allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rtree/layout.h"

namespace catfish::rtree {

using ChunkId = uint32_t;
inline constexpr ChunkId kInvalidChunk = 0xffffffffu;

/// Chunk 0 is reserved for tree metadata (root id, height); node
/// allocation starts at chunk 1.
inline constexpr ChunkId kMetaChunk = 0;

class NodeArena {
 public:
  /// `chunk_size` must be a positive multiple of the cache-line size.
  NodeArena(size_t chunk_size, size_t max_chunks);

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  size_t chunk_size() const noexcept { return chunk_size_; }
  size_t max_chunks() const noexcept { return max_chunks_; }
  size_t allocated_chunks() const noexcept { return allocated_; }
  size_t payload_capacity() const noexcept {
    return PayloadCapacity(chunk_size_);
  }

  /// Mutable view of one chunk (server-side writers).
  std::span<std::byte> chunk(ChunkId id) noexcept;
  std::span<const std::byte> chunk(ChunkId id) const noexcept;

  /// The whole region — what gets registered with the (simulated) NIC.
  std::span<std::byte> memory() noexcept {
    return {bytes_.get(), chunk_size_ * max_chunks_};
  }
  std::span<const std::byte> memory() const noexcept {
    return {bytes_.get(), chunk_size_ * max_chunks_};
  }

  /// Byte offset of a chunk inside the region (the client's RDMA READ
  /// offset for that node).
  size_t OffsetOf(ChunkId id) const noexcept {
    return static_cast<size_t>(id) * chunk_size_;
  }

  /// Allocates a fresh zero-initialized chunk. Throws std::bad_alloc when
  /// the region is exhausted (the region cannot grow: it is registered
  /// with the NIC once).
  ChunkId Allocate();

  /// Returns a chunk to the free list. The caller must guarantee no
  /// in-flight readers still hold a reference that it would confuse —
  /// the versioned layout makes stale reads detectable, not invalid.
  void Free(ChunkId id);

  /// Point-in-time copy of the whole arena (bytes + allocator state).
  /// Benchmarks snapshot a freshly built tree and Restore it before each
  /// run so insert workloads always start from the same dataset.
  struct Snapshot {
    std::vector<std::byte> bytes;
    std::vector<ChunkId> free_list;
    ChunkId next_fresh = 1;
    size_t allocated = 0;
  };

  Snapshot TakeSnapshot() const;
  /// Restores a snapshot taken from this arena (same geometry required).
  void Restore(const Snapshot& snap);

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kLineSize});
    }
  };

  size_t chunk_size_;
  size_t max_chunks_;
  std::unique_ptr<std::byte[], AlignedDelete> bytes_;
  std::vector<ChunkId> free_list_;
  ChunkId next_fresh_ = 1;  // chunk 0 = metadata
  size_t allocated_ = 0;
};

}  // namespace catfish::rtree

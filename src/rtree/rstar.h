// R*-tree over a versioned NodeArena.
//
// This is the server-side spatial index of the paper: an R-tree using the
// R*-tree heuristics (Beckmann et al., SIGMOD'90) for choose-subtree,
// forced reinsertion and node splits (paper §II-A, §III-A).
//
// Concurrency model (paper §III):
//  * Writers (insert/delete) are serialized by `writer_mutex_` — in
//    Catfish all mutations are executed by server threads, so a writer
//    lock suffices for write-write conflicts.
//  * Readers never lock. Both local server threads and remote offloading
//    clients read nodes optimistically and validate the FaRM-style
//    per-cache-line versions (see layout.h), retrying torn reads. This is
//    exactly the read-write conflict mechanism of §III-B.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "geo/rect.h"
#include "rtree/arena.h"
#include "rtree/node.h"

namespace catfish::rtree {

/// The root node is pinned to chunk 1 for its whole lifetime (root splits
/// rewrite it in place), so offloading clients can cache its address.
inline constexpr ChunkId kRootChunk = 1;

struct RStarConfig {
  /// Maximum entries per node (M). Defaults to the chunk capacity.
  size_t max_entries = kMaxFanout;
  /// Minimum fill (m); the R* paper recommends 40% of M.
  size_t min_entries = kMaxFanout * 2 / 5;
  /// Enable R* forced reinsertion on first overflow per level.
  bool forced_reinsert = true;
  /// Fraction of M entries removed on forced reinsertion (R*: p = 30%).
  double reinsert_fraction = 0.3;
};

struct SearchStats {
  uint64_t nodes_visited = 0;  ///< nodes read during the traversal
  uint64_t results = 0;        ///< matching rectangles found
  uint64_t read_retries = 0;   ///< optimistic-read retries (torn reads)
};

/// Per-level node counts of one search, root level first. In an
/// offloaded multi-issue traversal, level i is fetched in round i with
/// `nodes_per_level[i]` concurrent RDMA READs — this trace is what the
/// discrete-event simulator charges network costs from.
struct TraversalTrace {
  std::vector<uint32_t> nodes_per_level;

  uint64_t TotalNodes() const noexcept {
    uint64_t n = 0;
    for (uint32_t c : nodes_per_level) n += c;
    return n;
  }
  size_t Rounds() const noexcept { return nodes_per_level.size(); }
};

class RStarTree {
 public:
  /// Initializes a fresh empty tree in `arena` (writes the meta chunk and
  /// an empty root at chunk 1). The arena must be newly constructed.
  static RStarTree Create(NodeArena& arena, RStarConfig cfg = {});

  /// Attaches to a tree previously built in `arena`.
  static RStarTree Attach(NodeArena& arena, RStarConfig cfg = {});

  /// Movable so the factory functions can return by value. Moving while
  /// other threads use the source is undefined (as for any container).
  RStarTree(RStarTree&& other) noexcept
      : arena_(other.arena_),
        cfg_(other.cfg_),
        size_(other.size_.load(std::memory_order_relaxed)),
        height_(other.height_.load(std::memory_order_relaxed)) {}
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree& operator=(RStarTree&&) = delete;

  /// Inserts a rectangle. `id` is an opaque application identifier; the
  /// tree allows duplicate rects and duplicate ids.
  void Insert(const geo::Rect& rect, uint64_t id);

  /// Deletes one entry matching (rect, id) exactly. Returns false when no
  /// such entry exists.
  bool Delete(const geo::Rect& rect, uint64_t id);

  /// Appends all entries intersecting `query` to `out`; returns the
  /// number of matches. Safe to call concurrently with writers.
  size_t Search(const geo::Rect& query, std::vector<Entry>& out) const;

  /// Search variant that also reports traversal statistics and the
  /// per-level trace (either pointer may be null).
  size_t SearchTraced(const geo::Rect& query, std::vector<Entry>& out,
                      SearchStats* stats, TraversalTrace* trace) const;

  /// k nearest neighbors of `p` by MINDIST best-first search (Hjaltason
  /// & Samet). Results are appended in increasing distance order. Safe
  /// to call concurrently with writers (optimistic reads). Note: the
  /// best-first frontier is inherently sequential, which is why Catfish
  /// serves kNN on the server (fast messaging) rather than offloading —
  /// there is no independent frontier to multi-issue.
  size_t NearestNeighbors(const geo::Point& p, size_t k,
                          std::vector<Entry>& out,
                          SearchStats* stats = nullptr) const;

  uint64_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  /// Monotonic write counter, bumped by every Insert/Delete. Heartbeats
  /// carry it so clients can bound the staleness of cached internal
  /// nodes (client-side top-level caching, cf. Cell [10] in §VII).
  uint64_t write_epoch() const noexcept {
    return write_epoch_.load(std::memory_order_relaxed);
  }
  /// Number of levels (1 for a leaf-only tree).
  uint32_t height() const noexcept {
    return height_.load(std::memory_order_relaxed);
  }
  ChunkId root() const noexcept { return kRootChunk; }
  const RStarConfig& config() const noexcept { return cfg_; }
  NodeArena& arena() noexcept { return *arena_; }

  /// Optimistic seqlock read of one node; loops until a consistent image
  /// decodes. Exposed for the offloading client code path and tests.
  /// Returns the number of retries performed.
  uint64_t ReadNode(ChunkId id, NodeData& out) const;

  /// Serializes external writers with the tree's own writers (used by the
  /// server to interleave client write requests).
  std::mutex& writer_mutex() noexcept { return writer_mutex_; }

  /// Test support: walks the whole tree validating structural invariants
  /// (MBR containment, level monotonicity, fill bounds, size). Aborts via
  /// assertion-style exceptions on violation. Not thread-safe vs writers.
  void CheckInvariants() const;

  /// Test support: collects every leaf entry in the tree.
  void CollectAll(std::vector<Entry>& out) const;

 private:
  RStarTree(NodeArena& arena, RStarConfig cfg);

  // --- writer-side node IO (caller holds writer_mutex_) ---
  void LoadNode(ChunkId id, NodeData& out) const;
  void StoreNode(const NodeData& node);
  void StoreMeta();

  // --- insertion machinery ---
  size_t ChooseSubtree(const NodeData& node, const geo::Rect& rect) const;
  std::vector<ChunkId> ChoosePath(const geo::Rect& rect,
                                  uint16_t target_level) const;
  void InsertAtLevel(const Entry& e, uint16_t level, uint32_t& reinsert_mask);
  void AddEntryToNode(const std::vector<ChunkId>& path, const Entry& e,
                      uint32_t& reinsert_mask);
  void AdjustUpward(const std::vector<ChunkId>& path);
  void SplitNode(const std::vector<ChunkId>& path, NodeData& node,
                 std::vector<Entry> all, uint32_t& reinsert_mask);
  static void RStarSplit(const RStarConfig& cfg, std::vector<Entry>& all,
                         std::vector<Entry>& g1, std::vector<Entry>& g2);

  // --- deletion machinery ---
  bool FindLeafPath(ChunkId node_id, const geo::Rect& rect, uint64_t id,
                    std::vector<ChunkId>& path) const;

  void CheckNode(ChunkId id, uint16_t expected_level, bool is_root,
                 uint64_t& leaf_entries) const;

  NodeArena* arena_;
  RStarConfig cfg_;
  mutable std::mutex writer_mutex_;
  std::atomic<uint64_t> size_{0};
  std::atomic<uint32_t> height_{1};
  std::atomic<uint64_t> write_epoch_{0};
};

}  // namespace catfish::rtree

// Sort-Tile-Recursive (STR) bulk loading.
//
// The paper's experiments pre-build an R-tree with 2 million rectangles
// before the measurement phase (§V-B). Building that by repeated R*
// insertion is possible but slow for benchmark setup; STR packs the same
// arena layout in O(n log n) and yields a well-clustered tree. The
// resulting tree honours every RStarTree invariant (including minimum
// fill), so subsequent R* inserts/deletes work unchanged.
#pragma once

#include <span>

#include "rtree/rstar.h"

namespace catfish::rtree {

struct BulkLoadConfig {
  RStarConfig tree;
  /// Target fill of packed nodes as a fraction of max_entries; headroom
  /// is left so post-load inserts do not immediately split every node.
  double fill = 0.85;
};

/// Builds a tree over `items` into a fresh arena. Returns the attached
/// RStarTree. Throws std::bad_alloc if the arena cannot hold the tree.
RStarTree BulkLoad(NodeArena& arena, std::span<const Entry> items,
                   BulkLoadConfig cfg = {});

}  // namespace catfish::rtree

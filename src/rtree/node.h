// Logical R-tree node format and its (de)serialization to chunk payloads.
//
// A node occupies exactly one arena chunk. Its logical payload is:
//
//   u16 level      0 = leaf, >0 = internal; the root has the highest level
//   u16 count      number of live entries
//   u32 self       the node's own chunk id (readers sanity-check this)
//   Entry[count]   { Rect mbr (4 × f64) ; u64 id }
//
// For leaf entries `id` is the application's rectangle id; for internal
// entries it is the child's chunk id. With the default 1 KB chunk
// (960 payload bytes) the maximum fan-out is 23, giving a tree of height
// 5 over the paper's 2 M-rectangle dataset — the same RDMA-round-trip
// structure as the authors' tree.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "geo/rect.h"
#include "rtree/arena.h"

namespace catfish::rtree {

/// Default chunk size used by the R-tree (the arena itself is generic).
inline constexpr size_t kChunkSize = 1024;

struct Entry {
  geo::Rect mbr;
  uint64_t id = 0;
};

inline constexpr size_t kEntryBytes = 4 * sizeof(double) + sizeof(uint64_t);
inline constexpr size_t kNodeHeaderBytes =
    sizeof(uint16_t) + sizeof(uint16_t) + sizeof(uint32_t);

/// Maximum entries per node for a given chunk size.
constexpr size_t MaxFanout(size_t chunk_size) noexcept {
  return (PayloadCapacity(chunk_size) - kNodeHeaderBytes) / kEntryBytes;
}

inline constexpr size_t kMaxFanout = MaxFanout(kChunkSize);
static_assert(kMaxFanout == 23);

/// Decoded in-memory image of one node.
struct NodeData {
  uint32_t self = kInvalidChunk;
  uint16_t level = 0;
  uint16_t count = 0;
  std::array<Entry, kMaxFanout> entries{};

  bool IsLeaf() const noexcept { return level == 0; }

  /// MBR over all live entries.
  geo::Rect ComputeMbr() const noexcept {
    geo::Rect r = geo::Rect::Empty();
    for (uint16_t i = 0; i < count; ++i) r = r.Union(entries[i].mbr);
    return r;
  }
};

/// Serializes `node` into a payload buffer of at least
/// PayloadCapacity(kChunkSize) bytes. Returns the encoded size.
size_t EncodeNode(const NodeData& node, std::span<std::byte> payload);

/// Deserializes a payload gathered from a chunk. Returns false when the
/// image is structurally invalid (bad count); torn reads are expected to
/// be caught by version validation before decoding, but a stale/garbage
/// payload must never crash the decoder.
bool DecodeNode(std::span<const std::byte> payload, NodeData& out);

/// Tree metadata stored in chunk 0 (used at connection bootstrap; the
/// root is pinned to chunk 1 so offloading clients never re-read it).
struct TreeMeta {
  uint64_t magic = kMagic;
  uint32_t root = kInvalidChunk;
  uint32_t height = 0;  // number of levels; a leaf-only tree has height 1
  uint64_t size = 0;    // number of data rectangles

  static constexpr uint64_t kMagic = 0x4341544649534821ULL;  // "CATFISH!"
};

size_t EncodeMeta(const TreeMeta& meta, std::span<std::byte> payload);
bool DecodeMeta(std::span<const std::byte> payload, TreeMeta& out);

}  // namespace catfish::rtree

#include "rtree/arena.h"

#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

namespace catfish::rtree {

NodeArena::NodeArena(size_t chunk_size, size_t max_chunks)
    : chunk_size_(chunk_size), max_chunks_(max_chunks) {
  if (chunk_size == 0 || chunk_size % kLineSize != 0) {
    throw std::invalid_argument(
        "NodeArena chunk_size must be a positive multiple of 64");
  }
  if (max_chunks < 2) {
    throw std::invalid_argument("NodeArena needs at least 2 chunks");
  }
  const size_t total = chunk_size * max_chunks;
  bytes_.reset(static_cast<std::byte*>(
      ::operator new[](total, std::align_val_t{kLineSize})));
  std::memset(bytes_.get(), 0, total);
}

std::span<std::byte> NodeArena::chunk(ChunkId id) noexcept {
  assert(id < max_chunks_);
  return {bytes_.get() + OffsetOf(id), chunk_size_};
}

std::span<const std::byte> NodeArena::chunk(ChunkId id) const noexcept {
  assert(id < max_chunks_);
  return {bytes_.get() + OffsetOf(id), chunk_size_};
}

ChunkId NodeArena::Allocate() {
  ChunkId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else if (next_fresh_ < max_chunks_) {
    id = next_fresh_++;
  } else {
    throw std::bad_alloc();
  }
  InitChunk(chunk(id));
  ++allocated_;
  return id;
}

void NodeArena::Free(ChunkId id) {
  assert(id != kMetaChunk && id < max_chunks_);
  assert(allocated_ > 0);
  free_list_.push_back(id);
  --allocated_;
}

NodeArena::Snapshot NodeArena::TakeSnapshot() const {
  Snapshot snap;
  const auto mem = memory();
  snap.bytes.assign(mem.begin(), mem.end());
  snap.free_list = free_list_;
  snap.next_fresh = next_fresh_;
  snap.allocated = allocated_;
  return snap;
}

void NodeArena::Restore(const Snapshot& snap) {
  if (snap.bytes.size() != chunk_size_ * max_chunks_) {
    throw std::invalid_argument("NodeArena::Restore: geometry mismatch");
  }
  std::memcpy(bytes_.get(), snap.bytes.data(), snap.bytes.size());
  free_list_ = snap.free_list;
  next_fresh_ = snap.next_fresh;
  allocated_ = snap.allocated;
}

}  // namespace catfish::rtree

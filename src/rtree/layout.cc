#include "rtree/layout.h"

#include <atomic>
#include <cassert>
#include <cstring>

#include "common/bytes.h"

// GCC's ThreadSanitizer pass does not model atomic_thread_fence and
// warns (-Wtsan, an error under -Werror). The fences below only order
// the chunk's atomic version/payload accesses, which TSan never reports
// as races, so the unmodeled fences cannot cause false positives here.
#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
#pragma GCC diagnostic ignored "-Wtsan"
#endif

namespace catfish::rtree {
namespace {

// Version words are concurrently read by remote (NIC-thread) readers while
// the writer mutates them, so all accesses go through relaxed atomics on
// the raw bytes. Alignment holds because chunks are 64-byte aligned.
std::atomic<uint32_t>* VersionWord(std::byte* chunk, size_t line) noexcept {
  return reinterpret_cast<std::atomic<uint32_t>*>(chunk + line * kLineSize);
}

const std::atomic<uint32_t>* VersionWord(const std::byte* chunk,
                                         size_t line) noexcept {
  return reinterpret_cast<const std::atomic<uint32_t>*>(chunk +
                                                        line * kLineSize);
}

}  // namespace

uint32_t LineVersion(std::span<const std::byte> chunk, size_t line) noexcept {
  assert(line < LineCount(chunk.size()));
  // Atomic load: live arena chunks are read concurrently with writer
  // version bumps (the seqlock). Copied client buffers are private, for
  // which the atomic load is merely a plain load.
  return VersionWord(chunk.data(), line)->load(std::memory_order_acquire);
}

std::optional<uint32_t> ValidateVersions(
    std::span<const std::byte> chunk) noexcept {
  const size_t lines = LineCount(chunk.size());
  assert(lines > 0);
  const uint32_t v0 = LineVersion(chunk, 0);
  if (v0 % 2 != 0) return std::nullopt;
  for (size_t i = 1; i < lines; ++i) {
    if (LineVersion(chunk, i) != v0) return std::nullopt;
  }
  return v0;
}

void BeginWrite(std::span<std::byte> chunk) noexcept {
  const size_t lines = LineCount(chunk.size());
  for (size_t i = 0; i < lines; ++i) {
    auto* w = VersionWord(chunk.data(), i);
    w->store(w->load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }
  // Order the version bump before the payload stores that follow.
  std::atomic_thread_fence(std::memory_order_release);
}

void EndWrite(std::span<std::byte> chunk) noexcept {
  // Order the payload stores before the version bump.
  std::atomic_thread_fence(std::memory_order_release);
  const size_t lines = LineCount(chunk.size());
  for (size_t i = 0; i < lines; ++i) {
    auto* w = VersionWord(chunk.data(), i);
    const uint32_t v = w->load(std::memory_order_relaxed);
    assert(v % 2 == 1 && "EndWrite without matching BeginWrite");
    w->store(v + 1, std::memory_order_relaxed);
  }
}

void GatherPayload(std::span<const std::byte> chunk,
                   std::span<std::byte> out) noexcept {
  assert(out.size() == PayloadCapacity(chunk.size()));
  const size_t lines = LineCount(chunk.size());
  for (size_t i = 0; i < lines; ++i) {
    std::memcpy(out.data() + i * kLinePayload,
                chunk.data() + i * kLineSize + kVersionBytes, kLinePayload);
  }
}

void ScatterPayload(std::span<std::byte> chunk,
                    std::span<const std::byte> payload) noexcept {
  assert(payload.size() <= PayloadCapacity(chunk.size()));
  size_t remaining = payload.size();
  size_t line = 0;
  while (remaining > 0) {
    const size_t n = remaining < kLinePayload ? remaining : kLinePayload;
    // Remote readers copy the chunk concurrently (the seqlock race the
    // version stamps exist to detect); store through relaxed atomics so
    // the race stays defined.
    RelaxedCopy(chunk.data() + line * kLineSize + kVersionBytes,
                payload.data() + line * kLinePayload, n);
    remaining -= n;
    ++line;
  }
}

void GatherPayloadAt(std::span<const std::byte> chunk, size_t offset,
                     std::span<std::byte> out) noexcept {
  assert(offset + out.size() <= PayloadCapacity(chunk.size()));
  size_t written = 0;
  while (written < out.size()) {
    const size_t pos = offset + written;
    const size_t line = pos / kLinePayload;
    const size_t in_line = pos % kLinePayload;
    const size_t n =
        std::min(kLinePayload - in_line, out.size() - written);
    std::memcpy(out.data() + written,
                chunk.data() + line * kLineSize + kVersionBytes + in_line, n);
    written += n;
  }
}

void SnapshotCopy(std::byte* dst, const std::byte* src, size_t n) noexcept {
  const bool word_aligned =
      reinterpret_cast<uintptr_t>(dst) % alignof(uint32_t) == 0 &&
      reinterpret_cast<uintptr_t>(src) % alignof(uint32_t) == 0;
  if (!word_aligned) {
    RelaxedCopy(dst, src, n);
    return;
  }
  constexpr int kSnapshotRetries = 16;
  const size_t lines = n / kLineSize;
  for (size_t i = 0; i < lines; ++i) {
    std::byte* d = dst + i * kLineSize;
    const std::byte* s = src + i * kLineSize;
    const auto* w = VersionWord(s, 0);
    uint32_t v1 = w->load(std::memory_order_acquire);
    uint32_t v2 = v1;
    for (int attempt = 0;; ++attempt) {
      RelaxedCopy(d + kVersionBytes, s + kVersionBytes, kLinePayload);
      // Order the payload loads above before the version re-read below,
      // mirroring the writer's release fences.
      std::atomic_thread_fence(std::memory_order_acquire);
      v2 = w->load(std::memory_order_acquire);
      if (v1 == v2 || attempt >= kSnapshotRetries) break;
      v1 = v2;
    }
    // Equal witness reads bracket a quiescent window: versions only grow,
    // so the payload copy is a point-in-time snapshot and carries the
    // witnessed version (odd simply means "mid-write", which validation
    // rejects as usual). If the line never held still, stamp it odd so
    // the tear stays detectable.
    const uint32_t stamp = v1 == v2 ? v1 : (v2 | 1u);
    std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t*>(d))
        .store(stamp, std::memory_order_relaxed);
  }
  if (n % kLineSize != 0) {
    RelaxedCopy(dst + lines * kLineSize, src + lines * kLineSize,
                n % kLineSize);
  }
}

void InitChunk(std::span<std::byte> chunk) noexcept {
  // Fresh chunks come out of the RDMA-registered arena, which remote
  // READs may already be copying (a reader chasing a stale child id, or
  // the NIC sweeping the region); zero through relaxed atomics like every
  // other store to live chunk memory so the race stays defined.
  for (size_t off = 0; off + sizeof(uint32_t) <= chunk.size();
       off += sizeof(uint32_t)) {
    std::atomic_ref<uint32_t>(
        *reinterpret_cast<uint32_t*>(chunk.data() + off))
        .store(0, std::memory_order_relaxed);
  }
}

}  // namespace catfish::rtree

#include "rtree/node.h"

#include <cassert>
#include <cstring>

#include "common/bytes.h"

namespace catfish::rtree {

size_t EncodeNode(const NodeData& node, std::span<std::byte> payload) {
  assert(node.count <= kMaxFanout);
  const size_t need = kNodeHeaderBytes + node.count * kEntryBytes;
  assert(payload.size() >= need);
  size_t off = 0;
  StorePod(payload, off, node.level);
  off += sizeof(uint16_t);
  StorePod(payload, off, node.count);
  off += sizeof(uint16_t);
  StorePod(payload, off, node.self);
  off += sizeof(uint32_t);
  for (uint16_t i = 0; i < node.count; ++i) {
    const Entry& e = node.entries[i];
    StorePod(payload, off + 0, e.mbr.min_x);
    StorePod(payload, off + 8, e.mbr.min_y);
    StorePod(payload, off + 16, e.mbr.max_x);
    StorePod(payload, off + 24, e.mbr.max_y);
    StorePod(payload, off + 32, e.id);
    off += kEntryBytes;
  }
  return need;
}

bool DecodeNode(std::span<const std::byte> payload, NodeData& out) {
  if (payload.size() < kNodeHeaderBytes) return false;
  out.level = LoadPod<uint16_t>(payload, 0);
  out.count = LoadPod<uint16_t>(payload, 2);
  out.self = LoadPod<uint32_t>(payload, 4);
  if (out.count > kMaxFanout) return false;
  if (payload.size() < kNodeHeaderBytes + out.count * kEntryBytes)
    return false;
  size_t off = kNodeHeaderBytes;
  for (uint16_t i = 0; i < out.count; ++i) {
    Entry& e = out.entries[i];
    e.mbr.min_x = LoadPod<double>(payload, off + 0);
    e.mbr.min_y = LoadPod<double>(payload, off + 8);
    e.mbr.max_x = LoadPod<double>(payload, off + 16);
    e.mbr.max_y = LoadPod<double>(payload, off + 24);
    e.id = LoadPod<uint64_t>(payload, off + 32);
    off += kEntryBytes;
  }
  return true;
}

size_t EncodeMeta(const TreeMeta& meta, std::span<std::byte> payload) {
  constexpr size_t need = 8 + 4 + 4 + 8;
  assert(payload.size() >= need);
  StorePod(payload, 0, meta.magic);
  StorePod(payload, 8, meta.root);
  StorePod(payload, 12, meta.height);
  StorePod(payload, 16, meta.size);
  return need;
}

bool DecodeMeta(std::span<const std::byte> payload, TreeMeta& out) {
  if (payload.size() < 24) return false;
  out.magic = LoadPod<uint64_t>(payload, 0);
  out.root = LoadPod<uint32_t>(payload, 8);
  out.height = LoadPod<uint32_t>(payload, 12);
  out.size = LoadPod<uint64_t>(payload, 16);
  return out.magic == TreeMeta::kMagic;
}

}  // namespace catfish::rtree

#include "rtree/bulk_load.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace catfish::rtree {
namespace {

/// Splits `total` items into contiguous groups of at most `cap`, each of
/// at least `min_fill` (except when total < min_fill, which yields one
/// undersized group — only legal for the root).
std::vector<size_t> GroupSizes(size_t total, size_t cap, size_t min_fill) {
  assert(cap >= 2 * min_fill);
  std::vector<size_t> sizes;
  size_t remaining = total;
  while (remaining > cap) {
    size_t take = cap;
    if (remaining - take > 0 && remaining - take < min_fill) {
      take = remaining - min_fill;  // leave a legal final group
    }
    sizes.push_back(take);
    remaining -= take;
  }
  if (remaining > 0) sizes.push_back(remaining);
  return sizes;
}

double CenterX(const Entry& e) { return (e.mbr.min_x + e.mbr.max_x) / 2; }
double CenterY(const Entry& e) { return (e.mbr.min_y + e.mbr.max_y) / 2; }

/// Orders one level's entries with STR tiling: sort by x-center, cut into
/// vertical slabs, sort each slab by y-center.
void StrOrder(std::vector<Entry>& entries, size_t node_capacity) {
  const size_t n = entries.size();
  const size_t pages =
      (n + node_capacity - 1) / node_capacity;
  const auto slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(pages))));
  const size_t slab_items = slabs == 0
                                ? n
                                : ((pages + slabs - 1) / slabs) * node_capacity;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return CenterX(a) < CenterX(b);
            });
  for (size_t start = 0; start < n; start += slab_items) {
    const size_t end = std::min(n, start + slab_items);
    std::sort(entries.begin() + static_cast<ptrdiff_t>(start),
              entries.begin() + static_cast<ptrdiff_t>(end),
              [](const Entry& a, const Entry& b) {
                return CenterY(a) < CenterY(b);
              });
  }
}

geo::Rect MbrOfRange(const std::vector<Entry>& entries, size_t first,
                     size_t count) {
  geo::Rect r = geo::Rect::Empty();
  for (size_t i = 0; i < count; ++i) r = r.Union(entries[first + i].mbr);
  return r;
}

void WriteNode(NodeArena& arena, ChunkId id, uint16_t level,
               const std::vector<Entry>& entries, size_t first,
               size_t count) {
  NodeData node;
  node.self = id;
  node.level = level;
  node.count = static_cast<uint16_t>(count);
  std::copy(entries.begin() + static_cast<ptrdiff_t>(first),
            entries.begin() + static_cast<ptrdiff_t>(first + count),
            node.entries.begin());
  std::byte payload[PayloadCapacity(kChunkSize)] = {};
  EncodeNode(node, payload);
  auto chunk = arena.chunk(id);
  BeginWrite(chunk);
  ScatterPayload(chunk, payload);
  EndWrite(chunk);
}

}  // namespace

RStarTree BulkLoad(NodeArena& arena, std::span<const Entry> items,
                   BulkLoadConfig cfg) {
  RStarTree tree = RStarTree::Create(arena, cfg.tree);
  if (items.empty()) return tree;

  const size_t cap = std::clamp<size_t>(
      static_cast<size_t>(cfg.fill * static_cast<double>(cfg.tree.max_entries)),
      2 * cfg.tree.min_entries, cfg.tree.max_entries);

  std::vector<Entry> level_entries(items.begin(), items.end());
  uint16_t level = 0;
  while (level_entries.size() > cap) {
    StrOrder(level_entries, cap);
    const auto sizes =
        GroupSizes(level_entries.size(), cap, cfg.tree.min_entries);
    std::vector<Entry> parents;
    parents.reserve(sizes.size());
    size_t first = 0;
    for (const size_t count : sizes) {
      const ChunkId id = arena.Allocate();
      WriteNode(arena, id, level, level_entries, first, count);
      parents.push_back(Entry{MbrOfRange(level_entries, first, count), id});
      first += count;
    }
    level_entries = std::move(parents);
    ++level;
  }

  // The surviving entries become the (pinned) root's content.
  WriteNode(arena, kRootChunk, level, level_entries, 0, level_entries.size());

  // Rewrite the meta chunk with the final stats and attach to it.
  TreeMeta meta;
  meta.root = kRootChunk;
  meta.height = static_cast<uint32_t>(level + 1);
  meta.size = items.size();
  std::byte payload[PayloadCapacity(kChunkSize)] = {};
  EncodeMeta(meta, payload);
  auto chunk = arena.chunk(kMetaChunk);
  BeginWrite(chunk);
  ScatterPayload(chunk, payload);
  EndWrite(chunk);

  return RStarTree::Attach(arena, cfg.tree);
}

}  // namespace catfish::rtree

#include "cuckoo/cuckoo.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <vector>

#include "common/bytes.h"
#include "rtree/layout.h"

namespace catfish::cuckoo {
namespace {

uint64_t Mix(uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t TableGeometry::BucketOf(uint64_t key, int which) const noexcept {
  // Two independent hash functions derived from the table seed.
  const uint64_t h =
      Mix(key ^ (hash_seed + static_cast<uint64_t>(which) * 0x9e3779b97f4a7c15ULL));
  return h % num_buckets;
}

void EncodeBucket(const Bucket& b, std::span<std::byte> payload60) {
  assert(payload60.size() >= kBucketBytes);
  size_t off = 0;
  for (const Slot& s : b.slots) {
    StorePod(payload60, off, s.key);
    StorePod(payload60, off + 8, s.value);
    off += 16;
  }
}

void DecodeBucket(std::span<const std::byte> payload60, Bucket& out) {
  assert(payload60.size() >= kBucketBytes);
  size_t off = 0;
  for (Slot& s : out.slots) {
    s.key = LoadPod<uint64_t>(payload60, off);
    s.value = LoadPod<uint64_t>(payload60, off + 8);
    off += 16;
  }
}

CuckooTable CuckooTable::Create(NodeArena& arena, uint64_t min_buckets,
                                uint64_t hash_seed) {
  if (arena.chunk_size() != kChunkSize) {
    throw std::invalid_argument("CuckooTable: arena chunk size mismatch");
  }
  const uint64_t chunks =
      (min_buckets + kBucketsPerChunk - 1) / kBucketsPerChunk;
  TableGeometry geo;
  geo.num_chunks = static_cast<uint32_t>(std::max<uint64_t>(1, chunks));
  geo.num_buckets = geo.num_chunks * kBucketsPerChunk;
  geo.hash_seed = hash_seed;
  geo.first_chunk = arena.Allocate();
  for (uint32_t i = 1; i < geo.num_chunks; ++i) {
    const ChunkId id = arena.Allocate();
    if (id != geo.first_chunk + i) {
      throw std::logic_error("CuckooTable: arena must be contiguous/fresh");
    }
  }
  return CuckooTable(arena, geo);
}

void CuckooTable::LoadBucket(uint64_t bucket, Bucket& out) const {
  std::byte payload[kBucketBytes];
  rtree::GatherPayloadAt(arena_->chunk(geo_.ChunkOfBucket(bucket)),
                         geo_.PayloadOffsetOfBucket(bucket), payload);
  DecodeBucket(payload, out);
}

void CuckooTable::StoreBucket(uint64_t bucket, const Bucket& b) {
  // Read-modify-write the whole chunk payload under the seqlock write
  // protocol so remote readers validate exactly as for tree nodes.
  auto chunk = arena_->chunk(geo_.ChunkOfBucket(bucket));
  std::byte payload[kBucketBytes];
  EncodeBucket(b, payload);
  rtree::BeginWrite(chunk);
  // Scatter just this bucket's 60-byte line payload. Remote readers copy
  // the chunk concurrently; relaxed atomic stores keep that race defined
  // while the seqlock versions detect the tear.
  const size_t line = geo_.PayloadOffsetOfBucket(bucket) / rtree::kLinePayload;
  assert(geo_.PayloadOffsetOfBucket(bucket) % rtree::kLinePayload == 0);
  RelaxedCopy(chunk.data() + line * rtree::kLineSize + rtree::kVersionBytes,
              payload, kBucketBytes);
  rtree::EndWrite(chunk);
}

std::optional<uint64_t> CuckooTable::Get(uint64_t key) const {
  if (key == kEmptyKey) return std::nullopt;
  // Optimistic chunk-consistent read of each candidate bucket.
  for (int which = 0; which < 2; ++which) {
    const uint64_t bucket = geo_.BucketOf(key, which);
    const auto chunk = arena_->chunk(geo_.ChunkOfBucket(bucket));
    for (;;) {
      const auto v1 = rtree::ValidateVersions(chunk);
      if (!v1) continue;
      Bucket b;
      std::byte payload[kBucketBytes];
      rtree::GatherPayloadAt(chunk, geo_.PayloadOffsetOfBucket(bucket),
                             payload);
      const auto v2 = rtree::ValidateVersions(chunk);
      if (!v2 || *v2 != *v1) continue;
      DecodeBucket(payload, b);
      const int slot = b.FindKey(key);
      if (slot >= 0) return b.slots[slot].value;
      break;
    }
  }
  return std::nullopt;
}

std::optional<std::pair<uint64_t, int>> CuckooTable::MakeRoom(uint64_t b1,
                                                              uint64_t b2) {
  // BFS over displacement chains (MemC3-style), bounded depth.
  struct Step {
    uint64_t bucket;
    int parent;   // index into `steps` (-1 for roots)
    int via_slot; // slot in parent's bucket whose key moved here
  };
  constexpr size_t kMaxSteps = 512;
  std::vector<Step> steps;
  std::deque<int> frontier;
  steps.push_back({b1, -1, -1});
  steps.push_back({b2, -1, -1});
  frontier.push_back(0);
  frontier.push_back(1);

  Bucket bucket;
  while (!frontier.empty() && steps.size() < kMaxSteps) {
    const int idx = frontier.front();
    frontier.pop_front();
    LoadBucket(steps[static_cast<size_t>(idx)].bucket, bucket);
    const int free_slot = bucket.FindFree();
    if (free_slot >= 0) {
      // Unwind: move each displaced key into its (now free) destination,
      // destination-first so readers never miss a key.
      int cur = idx;
      int dst_slot = free_slot;
      while (steps[static_cast<size_t>(cur)].parent >= 0) {
        const Step& s = steps[static_cast<size_t>(cur)];
        const uint64_t dst_bucket = s.bucket;
        const uint64_t src_bucket =
            steps[static_cast<size_t>(s.parent)].bucket;
        Bucket src;
        Bucket dst;
        LoadBucket(src_bucket, src);
        LoadBucket(dst_bucket, dst);
        dst.slots[dst_slot] = src.slots[s.via_slot];
        StoreBucket(dst_bucket, dst);  // copy first…
        src.slots[s.via_slot] = Slot{};
        StoreBucket(src_bucket, src);  // …then clear the source
        dst_slot = s.via_slot;
        cur = s.parent;
      }
      return std::make_pair(steps[static_cast<size_t>(cur)].bucket, dst_slot);
    }
    // Expand: each occupant could move to its alternate bucket.
    for (int slot = 0; slot < static_cast<int>(kSlotsPerBucket); ++slot) {
      const uint64_t occupant = bucket.slots[slot].key;
      const uint64_t here = steps[static_cast<size_t>(idx)].bucket;
      const uint64_t alt0 = geo_.BucketOf(occupant, 0);
      const uint64_t alt = alt0 == here ? geo_.BucketOf(occupant, 1) : alt0;
      if (alt == here) continue;  // both hashes collide; useless move
      steps.push_back({alt, idx, slot});
      frontier.push_back(static_cast<int>(steps.size()) - 1);
    }
  }
  return std::nullopt;
}

bool CuckooTable::Put(uint64_t key, uint64_t value) {
  if (key == kEmptyKey) {
    throw std::invalid_argument("CuckooTable: key 0 is reserved");
  }
  const std::scoped_lock lock(writer_mutex_);
  const uint64_t b1 = geo_.BucketOf(key, 0);
  const uint64_t b2 = geo_.BucketOf(key, 1);

  // Overwrite in place when present.
  Bucket bucket;
  for (const uint64_t b : {b1, b2}) {
    LoadBucket(b, bucket);
    const int slot = bucket.FindKey(key);
    if (slot >= 0) {
      bucket.slots[slot].value = value;
      StoreBucket(b, bucket);
      return true;
    }
  }
  // Fast path: a free slot in either candidate.
  for (const uint64_t b : {b1, b2}) {
    LoadBucket(b, bucket);
    const int slot = bucket.FindFree();
    if (slot >= 0) {
      bucket.slots[slot] = Slot{key, value};
      StoreBucket(b, bucket);
      ++size_;
      return true;
    }
  }
  // Displace.
  const auto freed = MakeRoom(b1, b2);
  if (!freed) return false;
  LoadBucket(freed->first, bucket);
  assert(bucket.slots[freed->second].key == kEmptyKey);
  bucket.slots[freed->second] = Slot{key, value};
  StoreBucket(freed->first, bucket);
  ++size_;
  return true;
}

bool CuckooTable::Erase(uint64_t key) {
  if (key == kEmptyKey) return false;
  const std::scoped_lock lock(writer_mutex_);
  Bucket bucket;
  for (int which = 0; which < 2; ++which) {
    const uint64_t b = geo_.BucketOf(key, which);
    LoadBucket(b, bucket);
    const int slot = bucket.FindKey(key);
    if (slot >= 0) {
      bucket.slots[slot] = Slot{};
      StoreBucket(b, bucket);
      --size_;
      return true;
    }
  }
  return false;
}

}  // namespace catfish::cuckoo

// Cuckoo hash table on the Catfish substrate (paper §VI).
//
// The second link-based structure the paper names when positioning
// Catfish as a general framework. The table lives in the same chunked,
// versioned, RDMA-registerable arena:
//
//  * every key hashes to two candidate buckets (h1, h2); a bucket is
//    3 slots of (key, value) packed into one 60-byte line payload, 16
//    buckets per 1 KB chunk;
//  * a remote (offloading) lookup is two one-sided READs — issued
//    concurrently, the degenerate-but-ideal case of multi-issue (§IV-C):
//    a constant two-READ round regardless of table size;
//  * writes run on the server under the writer lock, using BFS cuckoo
//    eviction (bounded displacement chains) applied leaf-first: a key is
//    always copied into its destination bucket *before* its source slot
//    is overwritten, so optimistic remote readers can observe a moving
//    key twice but never zero times.
//
// Key 0 is reserved as the empty-slot sentinel.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "rtree/arena.h"

namespace catfish::cuckoo {

using rtree::ChunkId;
using rtree::NodeArena;

inline constexpr size_t kChunkSize = 1024;
inline constexpr size_t kSlotsPerBucket = 3;
inline constexpr size_t kBucketBytes = 60;  // one cache-line payload
inline constexpr size_t kBucketsPerChunk =
    rtree::PayloadCapacity(kChunkSize) / kBucketBytes;
static_assert(kBucketsPerChunk == 16);
inline constexpr uint64_t kEmptyKey = 0;

/// Everything a remote reader needs to address the table (exchanged at
/// connection bootstrap, like the R-tree's root/chunk geometry).
struct TableGeometry {
  ChunkId first_chunk = 0;
  uint32_t num_chunks = 0;
  uint64_t num_buckets = 0;
  uint64_t hash_seed = 0;

  uint64_t BucketOf(uint64_t key, int which) const noexcept;

  ChunkId ChunkOfBucket(uint64_t bucket) const noexcept {
    return first_chunk + static_cast<ChunkId>(bucket / kBucketsPerChunk);
  }
  size_t PayloadOffsetOfBucket(uint64_t bucket) const noexcept {
    return (bucket % kBucketsPerChunk) * kBucketBytes;
  }
};

struct Slot {
  uint64_t key = kEmptyKey;
  uint64_t value = 0;
};

/// Decoded bucket image.
struct Bucket {
  Slot slots[kSlotsPerBucket];

  int FindKey(uint64_t key) const noexcept {
    for (int i = 0; i < static_cast<int>(kSlotsPerBucket); ++i) {
      if (slots[i].key == key) return i;
    }
    return -1;
  }
  int FindFree() const noexcept { return FindKey(kEmptyKey); }
};

void EncodeBucket(const Bucket& b, std::span<std::byte> payload60);
void DecodeBucket(std::span<const std::byte> payload60, Bucket& out);

class CuckooTable {
 public:
  /// Builds an empty table with at least `min_buckets` buckets (rounded
  /// up to whole chunks) in `arena`.
  static CuckooTable Create(NodeArena& arena, uint64_t min_buckets,
                            uint64_t hash_seed);

  CuckooTable(CuckooTable&&) = default;
  CuckooTable(const CuckooTable&) = delete;
  CuckooTable& operator=(const CuckooTable&) = delete;
  CuckooTable& operator=(CuckooTable&&) = delete;

  /// Inserts or overwrites. Returns false when the displacement search
  /// fails (table effectively full — caller should resize/rebuild).
  bool Put(uint64_t key, uint64_t value);

  bool Erase(uint64_t key);

  /// Local lookup with optimistic versioned bucket reads.
  std::optional<uint64_t> Get(uint64_t key) const;

  uint64_t size() const noexcept { return size_; }
  uint64_t capacity() const noexcept {
    return geo_.num_buckets * kSlotsPerBucket;
  }
  const TableGeometry& geometry() const noexcept { return geo_; }
  NodeArena& arena() noexcept { return *arena_; }

 private:
  CuckooTable(NodeArena& arena, TableGeometry geo)
      : arena_(&arena), geo_(geo) {}

  void LoadBucket(uint64_t bucket, Bucket& out) const;   // writer-side
  void StoreBucket(uint64_t bucket, const Bucket& b);

  /// BFS for a displacement chain freeing a slot in one of `key`'s two
  /// candidate buckets; applies it destination-first. Returns the
  /// (bucket, slot) freed, or nullopt.
  std::optional<std::pair<uint64_t, int>> MakeRoom(uint64_t b1, uint64_t b2);

  NodeArena* arena_;
  TableGeometry geo_;
  mutable std::mutex writer_mutex_;
  uint64_t size_ = 0;
};

}  // namespace catfish::cuckoo

// Client-side (offloaded) cuckoo lookups over one-sided reads.
//
// A lookup fetches the key's two candidate chunks through the shared
// remote-access engine (src/remote), whose multi-issue batcher posts
// both READs back-to-back (§IV-C: no dependency between the two probes),
// validates versions, and scans the two buckets locally — a
// constant-round-trip lookup with zero server CPU, the pattern Pilaf and
// FaRM popularized and the paper cites as the framework's other target.
//
// On top of the engine's per-chunk validation this reader runs one
// cross-chunk consistency recheck (a concurrent cuckoo move can shuttle
// a key between the two separately-read chunks); that outer loop is
// bounded by the same retry policy and surfaces exhaustion as a status.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cuckoo/cuckoo.h"
#include "remote/engine.h"
#include "rtree/layout.h"

namespace catfish::cuckoo {

class RemoteCuckooReader {
 public:
  /// The transport must outlive the reader. Whether the two probe READs
  /// actually overlap on the wire is the transport's property; the
  /// engine always posts them before waiting.
  RemoteCuckooReader(remote::FetchTransport* transport, TableGeometry geo,
                     remote::RetryPolicy policy = {})
      : engine_(transport, "cuckoo", policy), geo_(geo),
        bufs_{std::vector<std::byte>(kChunkSize),
              std::vector<std::byte>(kChunkSize)} {}

  /// Offloaded point lookup. `out` is the value when the key exists,
  /// nullopt otherwise; only meaningful when the status is kOk.
  remote::FetchStatus Get(uint64_t key, std::optional<uint64_t>& out) {
    out.reset();
    if (key == kEmptyKey) return remote::FetchStatus::kOk;
    const uint64_t b[2] = {geo_.BucketOf(key, 0), geo_.BucketOf(key, 1)};
    const ChunkId chunks[2] = {geo_.ChunkOfBucket(b[0]),
                               geo_.ChunkOfBucket(b[1])};
    const size_t n = chunks[0] == chunks[1] ? 1 : 2;
    const remote::VersionedFetchEngine::Request reqs[2] = {
        {chunks[0], bufs_[0]}, {chunks[1], bufs_[1]}};

    for (uint32_t attempt = 0; attempt < engine_.policy().max_attempts;
         ++attempt) {
      // Both probes multi-issued; the engine validates versions per
      // chunk and re-fetches torn images within its own bounds.
      uint32_t versions[2] = {0, 0};
      const auto st = engine_.FetchMany(
          {reqs, n}, [&](size_t i, std::span<const std::byte> image) {
            const auto v = rtree::ValidateVersions(image);
            if (!v) return false;
            versions[i] = *v;
            return true;
          });
      if (st != remote::FetchStatus::kOk) return st;

      for (size_t i = 0; i < 2; ++i) {
        const size_t buf = n == 1 ? 0 : i;
        Bucket bucket;
        std::byte payload[kBucketBytes];
        rtree::GatherPayloadAt(bufs_[buf], geo_.PayloadOffsetOfBucket(b[i]),
                               payload);
        DecodeBucket(payload, bucket);
        const int slot = bucket.FindKey(key);
        if (slot >= 0) {
          out = bucket.slots[slot].value;
          return remote::FetchStatus::kOk;
        }
      }
      if (n == 1) return remote::FetchStatus::kOk;  // one chunk: consistent

      // Miss across two separately-read chunks: the engine posts both
      // READs back-to-back, so the two snapshots are unordered — a
      // concurrent destination-first move can land the key in whichever
      // chunk was imaged earlier, in either direction, leaving it out of
      // both images. Confirm NEITHER chunk changed since its image: both
      // snapshots precede both rechecks, so unchanged versions on both
      // sides pin a common instant where both images were
      // simultaneously valid and the miss is genuine.
      uint32_t recheck[2] = {0, 0};
      const auto cst = engine_.FetchMany(
          {reqs, n}, [&](size_t i, std::span<const std::byte> image) {
            const auto v = rtree::ValidateVersions(image);
            if (!v) return false;
            recheck[i] = *v;
            return true;
          });
      if (cst != remote::FetchStatus::kOk) return cst;
      if (recheck[0] == versions[0] && recheck[1] == versions[1]) {
        return remote::FetchStatus::kOk;  // miss
      }
      engine_.NoteConsistencyRetry();
    }
    engine_.NoteRetriesExhausted();
    return remote::FetchStatus::kRetriesExhausted;
  }

  /// Shared-engine counters (reads, version_retries, retry_exhausted,
  /// ...); also exported as `remote.cuckoo.*` metrics.
  const remote::EngineStats& stats() const noexcept {
    return engine_.stats();
  }

 private:
  remote::VersionedFetchEngine engine_;
  TableGeometry geo_;
  std::vector<std::byte> bufs_[2];
};

}  // namespace catfish::cuckoo

// Client-side (offloaded) cuckoo lookups over one-sided reads.
//
// A lookup fetches the key's two candidate chunks with two READs posted
// back-to-back (multi-issue, §IV-C: no dependency between the two
// probes), validates versions, and scans the two buckets locally — a
// constant-round-trip lookup with zero server CPU, the pattern Pilaf and
// FaRM popularized and the paper cites as the framework's other target.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cuckoo/cuckoo.h"
#include "rtree/layout.h"

namespace catfish::cuckoo {

class RemoteCuckooReader {
 public:
  /// `fetch` copies the raw image of chunk `id` into `dst` (an RDMA READ
  /// against the registered table region).
  using FetchFn = std::function<void(ChunkId id, std::span<std::byte> dst)>;

  /// `multi_fetch` posts all fetches before waiting (multi-issue); when
  /// not provided, the two probes fall back to sequential `fetch` calls.
  using MultiFetchFn = std::function<void(
      const ChunkId* ids, std::span<std::byte>* dsts, size_t n)>;

  RemoteCuckooReader(FetchFn fetch, TableGeometry geo,
                     MultiFetchFn multi_fetch = nullptr,
                     uint64_t max_retries = 1'000'000)
      : fetch_(std::move(fetch)), multi_fetch_(std::move(multi_fetch)),
        geo_(geo), bufs_{std::vector<std::byte>(kChunkSize),
                         std::vector<std::byte>(kChunkSize)},
        max_retries_(max_retries) {}

  struct Stats {
    uint64_t reads = 0;
    uint64_t version_retries = 0;
  };

  std::optional<uint64_t> Get(uint64_t key) {
    if (key == kEmptyKey) return std::nullopt;
    const uint64_t b[2] = {geo_.BucketOf(key, 0), geo_.BucketOf(key, 1)};
    ChunkId chunks[2] = {geo_.ChunkOfBucket(b[0]), geo_.ChunkOfBucket(b[1])};
    const size_t n = chunks[0] == chunks[1] ? 1 : 2;

    for (uint64_t attempt = 0; attempt <= max_retries_; ++attempt) {
      const auto v0 = FetchValidated(chunks, n);
      if (!v0) {
        ++stats_.version_retries;
        continue;
      }
      for (size_t i = 0; i < 2; ++i) {
        const size_t buf = n == 1 ? 0 : i;
        Bucket bucket;
        std::byte payload[kBucketBytes];
        rtree::GatherPayloadAt(bufs_[buf], geo_.PayloadOffsetOfBucket(b[i]),
                               payload);
        DecodeBucket(payload, bucket);
        const int slot = bucket.FindKey(key);
        if (slot >= 0) return bucket.slots[slot].value;
      }
      if (n == 1) return std::nullopt;  // single chunk = consistent cut
      // Miss across two separately-read chunks: a concurrent cuckoo move
      // could have copied the key from the not-yet-read chunk into the
      // already-read one between the two READs. Confirm the first chunk
      // did not change while we read the second — if it did, retry.
      fetch_(chunks[0], bufs_[0]);
      ++stats_.reads;
      const auto vcheck = rtree::ValidateVersions(bufs_[0]);
      if (vcheck && *vcheck == *v0) return std::nullopt;
      ++stats_.version_retries;
    }
    throw std::runtime_error("RemoteCuckooReader: read livelock");
  }

  const Stats& stats() const noexcept { return stats_; }

 private:
  /// Fetches the n candidate chunks; returns the version of chunk 0 on
  /// success (all versions valid), nullopt for a torn read.
  std::optional<uint32_t> FetchValidated(const ChunkId* chunks, size_t n) {
    if (n == 2 && multi_fetch_) {
      std::span<std::byte> dsts[2] = {bufs_[0], bufs_[1]};
      multi_fetch_(chunks, dsts, 2);
      stats_.reads += 2;
    } else {
      for (size_t i = 0; i < n; ++i) {
        fetch_(chunks[i], bufs_[i]);
        ++stats_.reads;
      }
    }
    std::optional<uint32_t> v0;
    for (size_t i = 0; i < n; ++i) {
      const auto v = rtree::ValidateVersions(bufs_[i]);
      if (!v) return std::nullopt;
      if (i == 0) v0 = v;
    }
    return v0;
  }

  FetchFn fetch_;
  MultiFetchFn multi_fetch_;
  TableGeometry geo_;
  std::vector<std::byte> bufs_[2];
  uint64_t max_retries_;
  Stats stats_;
};

}  // namespace catfish::cuckoo

// 2-D axis-aligned rectangles — the spatial object type of the paper.
//
// Each rectangle is four double-precision coordinates (min/max per axis),
// normalized into the unit square [0,1]^2 for the synthetic workloads
// (paper §I). All R-tree geometry predicates live here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace catfish::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Closed axis-aligned rectangle [min_x, max_x] × [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  constexpr Rect() = default;
  constexpr Rect(double x0, double y0, double x1, double y1) noexcept
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  /// An "empty" rect that acts as the identity for Union().
  static constexpr Rect Empty() noexcept {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return Rect{inf, inf, -inf, -inf};
  }

  constexpr bool IsEmpty() const noexcept {
    return min_x > max_x || min_y > max_y;
  }

  constexpr bool IsValid() const noexcept {
    return min_x <= max_x && min_y <= max_y;
  }

  constexpr double width() const noexcept { return max_x - min_x; }
  constexpr double height() const noexcept { return max_y - min_y; }

  constexpr double Area() const noexcept {
    return IsEmpty() ? 0.0 : width() * height();
  }

  /// Half-perimeter; the R*-tree split uses margin as a goodness metric.
  constexpr double Margin() const noexcept {
    return IsEmpty() ? 0.0 : width() + height();
  }

  constexpr Point Center() const noexcept {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Closed-interval intersection test (shared edges count as overlap,
  /// matching Guttman's original semantics).
  constexpr bool Intersects(const Rect& o) const noexcept {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }

  constexpr bool Contains(const Rect& o) const noexcept {
    return min_x <= o.min_x && max_x >= o.max_x && min_y <= o.min_y &&
           max_y >= o.max_y;
  }

  constexpr bool ContainsPoint(const Point& p) const noexcept {
    return min_x <= p.x && p.x <= max_x && min_y <= p.y && p.y <= max_y;
  }

  /// Minimum bounding rectangle of two rects.
  constexpr Rect Union(const Rect& o) const noexcept {
    if (IsEmpty()) return o;
    if (o.IsEmpty()) return *this;
    return Rect{std::min(min_x, o.min_x), std::min(min_y, o.min_y),
                std::max(max_x, o.max_x), std::max(max_y, o.max_y)};
  }

  /// Geometric intersection; empty when the rects do not overlap.
  constexpr Rect Intersection(const Rect& o) const noexcept {
    const Rect r{std::max(min_x, o.min_x), std::max(min_y, o.min_y),
                 std::min(max_x, o.max_x), std::min(max_y, o.max_y)};
    return r.IsValid() ? r : Rect::Empty();
  }

  /// Area of overlap with `o` (0 when disjoint).
  constexpr double OverlapArea(const Rect& o) const noexcept {
    return Intersection(o).Area();
  }

  /// How much this rect's area grows if it must also enclose `o`.
  /// The R-tree insert descends along minimum enlargement (paper §II-A).
  constexpr double Enlargement(const Rect& o) const noexcept {
    return Union(o).Area() - Area();
  }

  constexpr bool operator==(const Rect& o) const noexcept = default;
};

/// Squared center-to-center distance; used by R* forced reinsertion.
inline double CenterDistance2(const Rect& a, const Rect& b) noexcept {
  const Point ca = a.Center();
  const Point cb = b.Center();
  const double dx = ca.x - cb.x;
  const double dy = ca.y - cb.y;
  return dx * dx + dy * dy;
}

/// MINDIST: squared distance from a point to the nearest point of a
/// rect (0 when inside). The lower bound driving best-first kNN search.
inline double MinDist2(const Rect& r, const Point& p) noexcept {
  const double dx =
      p.x < r.min_x ? r.min_x - p.x : (p.x > r.max_x ? p.x - r.max_x : 0.0);
  const double dy =
      p.y < r.min_y ? r.min_y - p.y : (p.y > r.max_y ? p.y - r.max_y : 0.0);
  return dx * dx + dy * dy;
}

}  // namespace catfish::geo

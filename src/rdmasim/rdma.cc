#include "rdmasim/rdma.h"

#include <cstring>

#include "common/bytes.h"
#include "common/clock.h"
#include "rtree/layout.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::rdma {
namespace {

// Outbound data (WRITE payloads) comes from buffers the poster owns, so a
// relaxed word copy into the racily-shared registered region suffices: the
// versioned layout — not ordering — detects tears on the reader side.
void LineCopy(std::byte* dst, const std::byte* src, size_t n) noexcept {
  RelaxedCopy(dst, src, n);
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultController
// ---------------------------------------------------------------------------

std::string FaultController::Key(const std::string& a, const std::string& b) {
  // Links are undirected: one entry per unordered node-name pair.
  return a < b ? a + "\x1f" + b : b + "\x1f" + a;
}

void FaultController::Partition(const std::string& a, const std::string& b) {
  const std::scoped_lock lock(mu_);
  links_[Key(a, b)].partitioned = true;
  armed_.store(true, std::memory_order_release);
}

void FaultController::Heal(const std::string& a, const std::string& b) {
  const std::scoped_lock lock(mu_);
  const auto it = links_.find(Key(a, b));
  if (it != links_.end()) it->second.partitioned = false;
}

bool FaultController::Partitioned(const std::string& a,
                                  const std::string& b) const {
  const std::scoped_lock lock(mu_);
  const auto it = links_.find(Key(a, b));
  return it != links_.end() && it->second.partitioned;
}

void FaultController::SetDropPlan(const std::string& a, const std::string& b,
                                  DropPlan plan) {
  const std::scoped_lock lock(mu_);
  Link& link = links_[Key(a, b)];
  link.drop = plan;
  link.ops = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultController::ClearLink(const std::string& a, const std::string& b) {
  const std::scoped_lock lock(mu_);
  links_.erase(Key(a, b));
  if (links_.empty()) armed_.store(false, std::memory_order_release);
}

void FaultController::Clear() {
  const std::scoped_lock lock(mu_);
  links_.clear();
  armed_.store(false, std::memory_order_release);
}

void FaultController::FailQp(QueuePair& qp) { qp.EnterErrorState(); }

bool FaultController::ShouldFail(const std::string& local,
                                 const std::string& peer) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  bool fail = false;
  {
    const std::scoped_lock lock(mu_);
    const auto it = links_.find(Key(local, peer));
    if (it == links_.end()) return false;
    Link& link = it->second;
    fail = link.partitioned || link.drop.Hits(link.ops);
    ++link.ops;
  }
  if (fail) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.fault.dropped_ops");
  }
  return fail;
}

// ---------------------------------------------------------------------------
// SimNode
// ---------------------------------------------------------------------------

MemoryRegionHandle SimNode::RegisterMemory(std::span<std::byte> mem) {
  const std::scoped_lock lock(mu_);
  regions_.push_back(mem);
  return MemoryRegionHandle{static_cast<uint32_t>(regions_.size()),
                            mem.size()};
}

std::shared_ptr<CompletionQueue> SimNode::CreateCq() {
  return std::make_shared<CompletionQueue>();
}

std::shared_ptr<QueuePair> SimNode::CreateQp(
    std::shared_ptr<CompletionQueue> send_cq,
    std::shared_ptr<CompletionQueue> recv_cq) {
  const uint32_t num = next_qp_num_.fetch_add(1, std::memory_order_relaxed);
  auto qp = std::shared_ptr<QueuePair>(new QueuePair(
      shared_from_this(), num, std::move(send_cq), std::move(recv_cq)));
  const std::scoped_lock lock(mu_);
  qps_[num] = qp;
  return qp;
}

std::shared_ptr<QueuePair> SimNode::FindQp(uint32_t qp_num) const {
  const std::scoped_lock lock(mu_);
  const auto it = qps_.find(qp_num);
  return it == qps_.end() ? nullptr : it->second.lock();
}

std::span<std::byte> SimNode::ResolveMr(uint32_t rkey) const {
  const std::scoped_lock lock(mu_);
  if (rkey == 0 || rkey > regions_.size()) return {};
  return regions_[rkey - 1];
}

void SimNode::DeregisterAll() {
  // Exclusive on mr_mu_: in-flight copies hold it shared, so acquiring
  // it waits them out; afterwards stale rkeys resolve an empty span.
  const std::unique_lock barrier(mr_mu_);
  const std::scoped_lock lock(mu_);
  regions_.clear();
}

void SimNode::Invalidate() {
  std::vector<std::shared_ptr<QueuePair>> live;
  {
    // Same in-flight barrier as DeregisterAll: a reboot must not yank
    // memory out from under a copy the NIC already started serving.
    const std::unique_lock barrier(mr_mu_);
    const std::scoped_lock lock(mu_);
    regions_.clear();  // stale rkeys now fail with kRemoteAccessError
    for (auto& [num, weak] : qps_) {
      if (auto qp = weak.lock()) live.push_back(std::move(qp));
    }
    qps_.clear();  // stale QPNs no longer resolve via FindQp
  }
  // Close + error outside mu_: Close reaches into the peer QP's state.
  for (auto& qp : live) {
    qp->EnterErrorState();
    qp->Close();
  }
}

void SimNode::CountSent(uint64_t bytes) {
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
}

void SimNode::CountReceived(uint64_t bytes) {
  bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
}

NicStats SimNode::stats() const {
  NicStats s;
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.writes_posted = writes_posted_.load(std::memory_order_relaxed);
  s.reads_posted = reads_posted_.load(std::memory_order_relaxed);
  s.reads_served = reads_served_.load(std::memory_order_relaxed);
  s.imm_delivered = imm_delivered_.load(std::memory_order_relaxed);
  return s;
}

void SimNode::ResetStats() {
  bytes_sent_.store(0, std::memory_order_relaxed);
  bytes_received_.store(0, std::memory_order_relaxed);
  writes_posted_.store(0, std::memory_order_relaxed);
  reads_posted_.store(0, std::memory_order_relaxed);
  reads_served_.store(0, std::memory_order_relaxed);
  imm_delivered_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// QueuePair
// ---------------------------------------------------------------------------

void QueuePair::Connect(const std::shared_ptr<QueuePair>& a,
                        const std::shared_ptr<QueuePair>& b) {
  {
    const std::scoped_lock lock(a->peer_mu_);
    a->peer_ = b;
    a->peer_node_ = b->node_;
    a->closed_ = false;
  }
  {
    const std::scoped_lock lock(b->peer_mu_);
    b->peer_ = a;
    b->peer_node_ = a->node_;
    b->closed_ = false;
  }
}

bool QueuePair::connected() const {
  const std::scoped_lock lock(peer_mu_);
  return !closed_ && !error_ && !peer_.expired();
}

bool QueuePair::in_error() const {
  const std::scoped_lock lock(peer_mu_);
  return error_;
}

void QueuePair::EnterErrorState() {
  {
    const std::scoped_lock lock(peer_mu_);
    if (error_) return;
    error_ = true;
  }
  CATFISH_COUNT("rdma.qp.errors");
  CATFISH_EVENT(kQpError, NowMicros(), qp_num_, 0.0, 0.0);
}

void QueuePair::Close() {
  std::shared_ptr<QueuePair> peer;
  {
    const std::scoped_lock lock(peer_mu_);
    closed_ = true;
    peer = peer_.lock();
    peer_.reset();
  }
  if (peer) {
    const std::scoped_lock lock(peer->peer_mu_);
    peer->closed_ = true;
    peer->peer_.reset();
  }
}

void QueuePair::CompleteLocal(uint64_t wr_id, Opcode op, WcStatus status,
                              uint32_t byte_len) {
  WorkCompletion wc;
  wc.wr_id = wr_id;
  wc.opcode = op;
  wc.status = status;
  wc.qp_num = qp_num_;
  wc.byte_len = byte_len;
  send_cq_->Push(wc);
}

bool QueuePair::CheckPostFaults(uint64_t wr_id, Opcode op,
                                std::shared_ptr<SimNode>& peer_node) {
  std::shared_ptr<QueuePair> peer;
  {
    const std::scoped_lock lock(peer_mu_);
    if (error_) {
      // ERR is checked before closed: a QP that was errored and then
      // torn down keeps reporting the error, like real hardware.
      CompleteLocal(wr_id, op, WcStatus::kQpError, 0);
      return false;
    }
    peer = peer_.lock();
    peer_node = peer_node_;
    if (closed_ || !peer) {
      CompleteLocal(wr_id, op, WcStatus::kFlushed, 0);
      return false;
    }
  }
  // Scripted faults fire before any byte moves, so a dropped ring write
  // can never leave a partially-written record behind.
  if (node_->fabric_ != nullptr &&
      node_->fabric_->faults().ShouldFail(node_->name_, peer_node->name_)) {
    CompleteLocal(wr_id, op, WcStatus::kRetryExceeded, 0);
    return false;
  }
  return true;
}

QpOpStats QueuePair::op_stats() const noexcept {
  QpOpStats s;
  s.writes_posted = writes_posted_.load(std::memory_order_relaxed);
  s.write_bytes = write_bytes_.load(std::memory_order_relaxed);
  s.reads_posted = reads_posted_.load(std::memory_order_relaxed);
  s.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.imm_sent = imm_sent_.load(std::memory_order_relaxed);
  return s;
}

bool QueuePair::PostWrite(uint64_t wr_id, std::span<const std::byte> local,
                          RemoteAddr dst, bool signaled) {
  node_->writes_posted_.fetch_add(1, std::memory_order_relaxed);
  writes_posted_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(local.size(), std::memory_order_relaxed);
  CATFISH_COUNT("rdma.write.posted");
  CATFISH_COUNT_ADD("rdma.write.bytes", local.size());
  std::shared_ptr<SimNode> peer_node;
  if (!CheckPostFaults(wr_id, Opcode::kWrite, peer_node)) return false;
  // In-flight guard: holds off DeregisterAll/Invalidate until the copy
  // lands, so owners can free registered memory after a quiesce.
  const std::shared_lock region_guard(peer_node->mr_mu_);
  const auto region = peer_node->ResolveMr(dst.rkey);
  if (dst.offset + local.size() > region.size()) {
    CompleteLocal(wr_id, Opcode::kWrite, WcStatus::kRemoteAccessError, 0);
    return false;
  }
  LineCopy(region.data() + dst.offset, local.data(), local.size());
  node_->CountSent(local.size());
  peer_node->CountReceived(local.size());
  if (signaled) {
    CompleteLocal(wr_id, Opcode::kWrite, WcStatus::kSuccess,
                  static_cast<uint32_t>(local.size()));
  }
  return true;
}

bool QueuePair::PostWriteImm(uint64_t wr_id, std::span<const std::byte> local,
                             RemoteAddr dst, uint32_t imm, bool signaled) {
  std::shared_ptr<QueuePair> peer;
  {
    const std::scoped_lock lock(peer_mu_);
    peer = peer_.lock();
  }
  if (!PostWrite(wr_id, local, dst, signaled)) return false;
  // Data is placed before the notification fires, matching the RC
  // guarantee that the IMM completion observes the written payload.
  if (peer && peer->recv_cq_) {
    WorkCompletion wc;
    wc.wr_id = 0;
    wc.opcode = Opcode::kRecvImm;
    wc.status = WcStatus::kSuccess;
    wc.qp_num = peer->qp_num_;
    wc.imm_data = imm;
    wc.byte_len = static_cast<uint32_t>(local.size());
    peer->recv_cq_->Push(wc);
    peer->node_->imm_delivered_.fetch_add(1, std::memory_order_relaxed);
    imm_sent_.fetch_add(1, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.imm.delivered");
  }
  return true;
}

bool QueuePair::PostRead(uint64_t wr_id, std::span<std::byte> local,
                         RemoteAddr src) {
  node_->reads_posted_.fetch_add(1, std::memory_order_relaxed);
  reads_posted_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(local.size(), std::memory_order_relaxed);
  CATFISH_COUNT("rdma.read.posted");
  CATFISH_COUNT_ADD("rdma.read.bytes", local.size());
  std::shared_ptr<SimNode> peer_node;
  if (!CheckPostFaults(wr_id, Opcode::kRead, peer_node)) return false;
  const std::shared_lock region_guard(peer_node->mr_mu_);
  const auto region = peer_node->ResolveMr(src.rkey);
  if (src.offset + local.size() > region.size()) {
    CompleteLocal(wr_id, Opcode::kRead, WcStatus::kRemoteAccessError, 0);
    return false;
  }
  // Served entirely by the "NIC": no peer CPU thread participates. Real
  // NICs read each 64-byte cache line as an atomic snapshot; SnapshotCopy
  // reproduces that, so sub-line tears the seqlock could never see on
  // hardware cannot happen here either (rtree/layout.h).
  rtree::SnapshotCopy(local.data(), region.data() + src.offset, local.size());
  peer_node->reads_served_.fetch_add(1, std::memory_order_relaxed);
  peer_node->CountSent(local.size());
  node_->CountReceived(local.size());
  CompleteLocal(wr_id, Opcode::kRead, WcStatus::kSuccess,
                static_cast<uint32_t>(local.size()));
  return true;
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

std::shared_ptr<SimNode> Fabric::CreateNode(std::string name) {
  const std::scoped_lock lock(mu_);
  const uint64_t generation = ++generations_[name];
  auto node = std::shared_ptr<SimNode>(new SimNode(name, this, generation));
  nodes_[std::move(name)] = node;
  return node;
}

size_t Fabric::node_count() const {
  const std::scoped_lock lock(mu_);
  size_t live = 0;
  for (const auto& [name, node] : nodes_) {
    if (!node.expired()) ++live;
  }
  return live;
}

std::shared_ptr<SimNode> Fabric::FindNode(const std::string& name) const {
  const std::scoped_lock lock(mu_);
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.lock();
}

std::shared_ptr<SimNode> Fabric::RestartNode(const std::string& name) {
  std::shared_ptr<SimNode> old;
  {
    const std::scoped_lock lock(mu_);
    const auto it = nodes_.find(name);
    if (it != nodes_.end()) old = it->second.lock();
  }
  // Invalidate outside mu_: it closes QPs, which reaches peer state.
  if (old) old->Invalidate();
  return CreateNode(name);
}

}  // namespace catfish::rdma

#include "rdmasim/rdma.h"

#include <chrono>
#include <cstring>
#include <iterator>
#include <thread>

#include "common/bytes.h"
#include "common/clock.h"
#include "rtree/layout.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::rdma {
namespace {

// Outbound data (WRITE payloads) comes from buffers the poster owns, so a
// relaxed word copy into the racily-shared registered region suffices: the
// versioned layout — not ordering — detects tears on the reader side.
void LineCopy(std::byte* dst, const std::byte* src, size_t n) noexcept {
  RelaxedCopy(dst, src, n);
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultController
// ---------------------------------------------------------------------------

std::string FaultController::Key(const std::string& a, const std::string& b) {
  // Links are undirected: one entry per unordered node-name pair.
  return a < b ? a + "\x1f" + b : b + "\x1f" + a;
}

void FaultController::Partition(const std::string& a, const std::string& b) {
  const std::scoped_lock lock(mu_);
  links_[Key(a, b)].partitioned = true;
  armed_.store(true, std::memory_order_release);
}

void FaultController::Heal(const std::string& a, const std::string& b) {
  const std::scoped_lock lock(mu_);
  const auto it = links_.find(Key(a, b));
  if (it != links_.end()) it->second.partitioned = false;
}

bool FaultController::Partitioned(const std::string& a,
                                  const std::string& b) const {
  const std::scoped_lock lock(mu_);
  const auto it = links_.find(Key(a, b));
  return it != links_.end() && it->second.partitioned;
}

void FaultController::SetDropPlan(const std::string& a, const std::string& b,
                                  DropPlan plan) {
  const std::scoped_lock lock(mu_);
  Link& link = links_[Key(a, b)];
  link.drop = plan;
  link.ops = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultController::SetLinkLatency(const std::string& a,
                                     const std::string& b, uint64_t base_us,
                                     uint64_t jitter_us, uint64_t seed) {
  const std::scoped_lock lock(mu_);
  if (base_us == 0 && jitter_us == 0) {
    const auto it = links_.find(Key(a, b));
    if (it != links_.end()) {
      it->second.lat_base_us = 0;
      it->second.lat_jitter_us = 0;
    }
    return;
  }
  Link& link = links_[Key(a, b)];
  link.lat_base_us = base_us;
  link.lat_jitter_us = jitter_us;
  link.lat_rng = JitterState(seed);
  armed_.store(true, std::memory_order_release);
}

void FaultController::SetDegraded(const std::string& node,
                                  uint64_t per_op_us) {
  const std::scoped_lock lock(mu_);
  if (per_op_us == 0) {
    degraded_.erase(node);
    if (links_.empty() && degraded_.empty()) {
      armed_.store(false, std::memory_order_release);
    }
    return;
  }
  degraded_[node] = per_op_us;
  armed_.store(true, std::memory_order_release);
}

void FaultController::ClearLink(const std::string& a, const std::string& b) {
  const std::scoped_lock lock(mu_);
  links_.erase(Key(a, b));
  if (links_.empty() && degraded_.empty()) {
    armed_.store(false, std::memory_order_release);
  }
}

void FaultController::Clear() {
  const std::scoped_lock lock(mu_);
  links_.clear();
  degraded_.clear();
  armed_.store(false, std::memory_order_release);
}

void FaultController::FailQp(QueuePair& qp) { qp.EnterErrorState(); }

bool FaultController::ShouldFail(const std::string& local,
                                 const std::string& peer) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  bool fail = false;
  {
    const std::scoped_lock lock(mu_);
    const auto it = links_.find(Key(local, peer));
    if (it == links_.end()) return false;
    Link& link = it->second;
    fail = link.partitioned || link.drop.Hits(link.ops);
    ++link.ops;
  }
  if (fail) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.fault.dropped_ops");
  }
  return fail;
}

uint64_t FaultController::SlowDelayUs(const std::string& local,
                                      const std::string& peer) {
  if (!armed_.load(std::memory_order_acquire)) return 0;
  uint64_t delay = 0;
  {
    const std::scoped_lock lock(mu_);
    const auto it = links_.find(Key(local, peer));
    if (it != links_.end() && (it->second.lat_base_us != 0 ||
                               it->second.lat_jitter_us != 0)) {
      Link& link = it->second;
      delay = link.lat_base_us;
      if (link.lat_jitter_us != 0) {
        delay += link.lat_rng.Next() % (link.lat_jitter_us + 1);
      }
    }
    const auto dl = degraded_.find(local);
    if (dl != degraded_.end()) delay += dl->second;
    const auto dp = degraded_.find(peer);
    if (dp != degraded_.end()) delay += dp->second;
  }
  if (delay != 0) {
    slowed_.fetch_add(1, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.fault.slowed_ops");
  }
  return delay;
}

// ---------------------------------------------------------------------------
// SimNode
// ---------------------------------------------------------------------------

MemoryRegionHandle SimNode::RegisterMemory(std::span<std::byte> mem) {
  const std::scoped_lock lock(mu_);
  regions_.push_back(mem);
  return MemoryRegionHandle{static_cast<uint32_t>(regions_.size()),
                            mem.size()};
}

std::shared_ptr<CompletionQueue> SimNode::CreateCq() {
  return std::make_shared<CompletionQueue>();
}

std::shared_ptr<QueuePair> SimNode::CreateQp(
    std::shared_ptr<CompletionQueue> send_cq,
    std::shared_ptr<CompletionQueue> recv_cq) {
  const uint32_t num = next_qp_num_.fetch_add(1, std::memory_order_relaxed);
  auto qp = std::shared_ptr<QueuePair>(new QueuePair(
      shared_from_this(), num, std::move(send_cq), std::move(recv_cq)));
  const std::scoped_lock lock(mu_);
  qps_[num] = qp;
  return qp;
}

std::shared_ptr<QueuePair> SimNode::FindQp(uint32_t qp_num) const {
  const std::scoped_lock lock(mu_);
  const auto it = qps_.find(qp_num);
  return it == qps_.end() ? nullptr : it->second.lock();
}

std::span<std::byte> SimNode::ResolveMr(uint32_t rkey) const {
  const std::scoped_lock lock(mu_);
  if (rkey == 0 || rkey > regions_.size()) return {};
  return regions_[rkey - 1];
}

void SimNode::Deregister(MemoryRegionHandle mr) {
  // Exclusive on mr_mu_ waits out any copy the "NIC" already started
  // against this region; blanking the slot (indices are rkeys) keeps
  // every other registration's rkey stable.
  const std::unique_lock barrier(mr_mu_);
  const std::scoped_lock lock(mu_);
  if (mr.rkey == 0 || mr.rkey > regions_.size()) return;
  regions_[mr.rkey - 1] = {};
}

void SimNode::DeregisterAll() {
  // Exclusive on mr_mu_: in-flight copies hold it shared, so acquiring
  // it waits them out; afterwards stale rkeys resolve an empty span.
  const std::unique_lock barrier(mr_mu_);
  const std::scoped_lock lock(mu_);
  regions_.clear();
}

void SimNode::Invalidate() {
  std::vector<std::shared_ptr<QueuePair>> live;
  {
    // Same in-flight barrier as DeregisterAll: a reboot must not yank
    // memory out from under a copy the NIC already started serving.
    const std::unique_lock barrier(mr_mu_);
    const std::scoped_lock lock(mu_);
    regions_.clear();  // stale rkeys now fail with kRemoteAccessError
    for (auto& [num, weak] : qps_) {
      if (auto qp = weak.lock()) live.push_back(std::move(qp));
    }
    qps_.clear();  // stale QPNs no longer resolve via FindQp
  }
  // Close + error outside mu_: Close reaches into the peer QP's state.
  for (auto& qp : live) {
    qp->EnterErrorState();
    qp->Close();
  }
}

void SimNode::CountSent(uint64_t bytes) {
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
}

void SimNode::CountReceived(uint64_t bytes) {
  bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
}

NicStats SimNode::stats() const {
  NicStats s;
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.writes_posted = writes_posted_.load(std::memory_order_relaxed);
  s.reads_posted = reads_posted_.load(std::memory_order_relaxed);
  s.reads_served = reads_served_.load(std::memory_order_relaxed);
  s.imm_delivered = imm_delivered_.load(std::memory_order_relaxed);
  return s;
}

void SimNode::ResetStats() {
  bytes_sent_.store(0, std::memory_order_relaxed);
  bytes_received_.store(0, std::memory_order_relaxed);
  writes_posted_.store(0, std::memory_order_relaxed);
  reads_posted_.store(0, std::memory_order_relaxed);
  reads_served_.store(0, std::memory_order_relaxed);
  imm_delivered_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// QueuePair
// ---------------------------------------------------------------------------

void QueuePair::Connect(const std::shared_ptr<QueuePair>& a,
                        const std::shared_ptr<QueuePair>& b) {
  {
    const std::scoped_lock lock(a->peer_mu_);
    a->peer_ = b;
    a->peer_node_ = b->node_;
    a->closed_ = false;
  }
  {
    const std::scoped_lock lock(b->peer_mu_);
    b->peer_ = a;
    b->peer_node_ = a->node_;
    b->closed_ = false;
  }
}

bool QueuePair::connected() const {
  const std::scoped_lock lock(peer_mu_);
  return !closed_ && !error_ && !peer_.expired();
}

bool QueuePair::in_error() const {
  const std::scoped_lock lock(peer_mu_);
  return error_;
}

void QueuePair::EnterErrorState() {
  {
    const std::scoped_lock lock(peer_mu_);
    if (error_) return;
    error_ = true;
  }
  CATFISH_COUNT("rdma.qp.errors");
  CATFISH_EVENT(kQpError, NowMicros(), qp_num_, 0.0, 0.0);
}

void QueuePair::Close() {
  std::shared_ptr<QueuePair> peer;
  {
    const std::scoped_lock lock(peer_mu_);
    closed_ = true;
    peer = peer_.lock();
    peer_.reset();
  }
  if (peer) {
    const std::scoped_lock lock(peer->peer_mu_);
    peer->closed_ = true;
    peer->peer_.reset();
  }
}

WcStatus QueuePair::CheckPostFaults(std::shared_ptr<SimNode>& peer_node,
                                    std::shared_ptr<QueuePair>& peer) {
  {
    const std::scoped_lock lock(peer_mu_);
    if (error_) {
      // ERR is checked before closed: a QP that was errored and then
      // torn down keeps reporting the error, like real hardware.
      return WcStatus::kQpError;
    }
    peer = peer_.lock();
    peer_node = peer_node_;
    if (closed_ || !peer) return WcStatus::kFlushed;
  }
  // Scripted faults fire before any byte moves, so a dropped ring write
  // can never leave a partially-written record behind.
  if (node_->fabric_ != nullptr &&
      node_->fabric_->faults().ShouldFail(node_->name_, peer_node->name_)) {
    return WcStatus::kRetryExceeded;
  }
  return WcStatus::kSuccess;
}

QpOpStats QueuePair::op_stats() const noexcept {
  QpOpStats s;
  s.writes_posted = writes_posted_.load(std::memory_order_relaxed);
  s.write_bytes = write_bytes_.load(std::memory_order_relaxed);
  s.reads_posted = reads_posted_.load(std::memory_order_relaxed);
  s.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.imm_sent = imm_sent_.load(std::memory_order_relaxed);
  return s;
}

bool QueuePair::Execute(const WorkRequest& wr, WorkCompletion& wc,
                        bool& deliver) {
  const bool is_read = wr.kind == WorkRequest::Kind::kRead;
  const size_t len = is_read ? wr.dst.size() : wr.src.size();
  wc = WorkCompletion{};
  wc.wr_id = wr.wr_id;
  wc.opcode = is_read ? Opcode::kRead : Opcode::kWrite;
  wc.qp_num = qp_num_;
  deliver = true;  // errors always complete, even for unsignaled WRs
  if (is_read) {
    node_->reads_posted_.fetch_add(1, std::memory_order_relaxed);
    reads_posted_.fetch_add(1, std::memory_order_relaxed);
    read_bytes_.fetch_add(len, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.read.posted");
    CATFISH_COUNT_ADD("rdma.read.bytes", len);
  } else {
    node_->writes_posted_.fetch_add(1, std::memory_order_relaxed);
    writes_posted_.fetch_add(1, std::memory_order_relaxed);
    write_bytes_.fetch_add(len, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.write.posted");
    CATFISH_COUNT_ADD("rdma.write.bytes", len);
  }
  std::shared_ptr<SimNode> peer_node;
  std::shared_ptr<QueuePair> peer;
  const WcStatus gate = CheckPostFaults(peer_node, peer);
  if (gate != WcStatus::kSuccess) {
    wc.status = gate;
    return false;
  }
  // Slow faults elapse here — after the fail-stop gate, before the
  // in-flight region barrier, so a stalled op never blocks Deregister.
  if (node_->fabric_ != nullptr) {
    const uint64_t slow_us =
        node_->fabric_->faults().SlowDelayUs(node_->name_, peer_node->name_);
    if (slow_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(slow_us));
    }
  }
  // In-flight guard: holds off DeregisterAll/Invalidate until the copy
  // lands, so owners can free registered memory after a quiesce.
  const std::shared_lock region_guard(peer_node->mr_mu_);
  const auto region = peer_node->ResolveMr(wr.remote.rkey);
  if (wr.remote.offset + len > region.size()) {
    wc.status = WcStatus::kRemoteAccessError;
    return false;
  }
  if (is_read) {
    // Served entirely by the "NIC": no peer CPU thread participates.
    // Real NICs read each 64-byte cache line as an atomic snapshot;
    // SnapshotCopy reproduces that, so sub-line tears the seqlock could
    // never see on hardware cannot happen here either (rtree/layout.h).
    rtree::SnapshotCopy(wr.dst.data(), region.data() + wr.remote.offset, len);
    peer_node->reads_served_.fetch_add(1, std::memory_order_relaxed);
    peer_node->CountSent(len);
    node_->CountReceived(len);
  } else {
    LineCopy(region.data() + wr.remote.offset, wr.src.data(), len);
    node_->CountSent(len);
    peer_node->CountReceived(len);
  }
  wc.status = WcStatus::kSuccess;
  wc.byte_len = static_cast<uint32_t>(len);
  deliver = is_read || wr.signaled;
  if (wr.kind == WorkRequest::Kind::kWriteImm && peer && peer->recv_cq_) {
    // Data is placed before the notification fires, matching the RC
    // guarantee that the IMM completion observes the written payload.
    WorkCompletion iwc;
    iwc.wr_id = 0;
    iwc.opcode = Opcode::kRecvImm;
    iwc.status = WcStatus::kSuccess;
    iwc.qp_num = peer->qp_num_;
    iwc.imm_data = wr.imm;
    iwc.byte_len = static_cast<uint32_t>(len);
    peer->recv_cq_->Push(iwc);
    peer->node_->imm_delivered_.fetch_add(1, std::memory_order_relaxed);
    imm_sent_.fetch_add(1, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.imm.delivered");
  }
  return true;
}

bool QueuePair::PostOne(const WorkRequest& wr) {
  CATFISH_COUNT("rdma.doorbells");
  CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size", 1.0);
  WorkCompletion wc;
  bool deliver = false;
  const bool ok = Execute(wr, wc, deliver);
  if (deliver) send_cq_->Push(wc);
  return ok;
}

size_t QueuePair::PostBatch(std::span<const WorkRequest> wrs, bool* ok) {
  if (wrs.empty()) return 0;
  // The whole point: one doorbell for the chain, and one coalesced CQ
  // delivery below, however many WRs ride it.
  CATFISH_COUNT("rdma.doorbells");
  CATFISH_TIMER_RECORD_US("rdma.doorbell.batch_size",
                          static_cast<double>(wrs.size()));
  WorkCompletion inline_wcs[16];
  std::vector<WorkCompletion> heap_wcs;
  WorkCompletion* wcs = inline_wcs;
  if (wrs.size() > std::size(inline_wcs)) {
    heap_wcs.resize(wrs.size());
    wcs = heap_wcs.data();
  }
  size_t delivered = 0;
  size_t succeeded = 0;
  for (size_t i = 0; i < wrs.size(); ++i) {
    WorkCompletion wc;
    bool deliver = false;
    const bool good = Execute(wrs[i], wc, deliver);
    if (ok != nullptr) ok[i] = good;
    if (good) ++succeeded;
    if (deliver) wcs[delivered++] = wc;
  }
  send_cq_->PushMany({wcs, delivered});
  return succeeded;
}

bool QueuePair::PostWrite(uint64_t wr_id, std::span<const std::byte> local,
                          RemoteAddr dst, bool signaled) {
  WorkRequest wr;
  wr.kind = WorkRequest::Kind::kWrite;
  wr.wr_id = wr_id;
  wr.src = local;
  wr.remote = dst;
  wr.signaled = signaled;
  return PostOne(wr);
}

bool QueuePair::PostWriteImm(uint64_t wr_id, std::span<const std::byte> local,
                             RemoteAddr dst, uint32_t imm, bool signaled) {
  WorkRequest wr;
  wr.kind = WorkRequest::Kind::kWriteImm;
  wr.wr_id = wr_id;
  wr.src = local;
  wr.remote = dst;
  wr.imm = imm;
  wr.signaled = signaled;
  return PostOne(wr);
}

bool QueuePair::PostRead(uint64_t wr_id, std::span<std::byte> local,
                         RemoteAddr src) {
  WorkRequest wr;
  wr.kind = WorkRequest::Kind::kRead;
  wr.wr_id = wr_id;
  wr.dst = local;
  wr.remote = src;
  return PostOne(wr);
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

std::shared_ptr<SimNode> Fabric::CreateNode(std::string name) {
  const std::scoped_lock lock(mu_);
  const uint64_t generation = ++generations_[name];
  auto node = std::shared_ptr<SimNode>(new SimNode(name, this, generation));
  nodes_[std::move(name)] = node;
  return node;
}

size_t Fabric::node_count() const {
  const std::scoped_lock lock(mu_);
  size_t live = 0;
  for (const auto& [name, node] : nodes_) {
    if (!node.expired()) ++live;
  }
  return live;
}

std::shared_ptr<SimNode> Fabric::FindNode(const std::string& name) const {
  const std::scoped_lock lock(mu_);
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.lock();
}

std::shared_ptr<SimNode> Fabric::RestartNode(const std::string& name) {
  std::shared_ptr<SimNode> old;
  {
    const std::scoped_lock lock(mu_);
    const auto it = nodes_.find(name);
    if (it != nodes_.end()) old = it->second.lock();
  }
  // Invalidate outside mu_: it closes QPs, which reaches peer state.
  if (old) old->Invalidate();
  return CreateNode(name);
}

}  // namespace catfish::rdma

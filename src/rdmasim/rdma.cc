#include "rdmasim/rdma.h"

#include <cstring>

#include "common/bytes.h"
#include "rtree/layout.h"
#include "telemetry/metrics.h"

namespace catfish::rdma {
namespace {

// Outbound data (WRITE payloads) comes from buffers the poster owns, so a
// relaxed word copy into the racily-shared registered region suffices: the
// versioned layout — not ordering — detects tears on the reader side.
void LineCopy(std::byte* dst, const std::byte* src, size_t n) noexcept {
  RelaxedCopy(dst, src, n);
}

}  // namespace

// ---------------------------------------------------------------------------
// SimNode
// ---------------------------------------------------------------------------

MemoryRegionHandle SimNode::RegisterMemory(std::span<std::byte> mem) {
  const std::scoped_lock lock(mu_);
  regions_.push_back(mem);
  return MemoryRegionHandle{static_cast<uint32_t>(regions_.size()),
                            mem.size()};
}

std::shared_ptr<CompletionQueue> SimNode::CreateCq() {
  return std::make_shared<CompletionQueue>();
}

std::shared_ptr<QueuePair> SimNode::CreateQp(
    std::shared_ptr<CompletionQueue> send_cq,
    std::shared_ptr<CompletionQueue> recv_cq) {
  const uint32_t num = next_qp_num_.fetch_add(1, std::memory_order_relaxed);
  auto qp = std::shared_ptr<QueuePair>(new QueuePair(
      shared_from_this(), num, std::move(send_cq), std::move(recv_cq)));
  const std::scoped_lock lock(mu_);
  qps_[num] = qp;
  return qp;
}

std::shared_ptr<QueuePair> SimNode::FindQp(uint32_t qp_num) const {
  const std::scoped_lock lock(mu_);
  const auto it = qps_.find(qp_num);
  return it == qps_.end() ? nullptr : it->second.lock();
}

std::span<std::byte> SimNode::ResolveMr(uint32_t rkey) const {
  const std::scoped_lock lock(mu_);
  if (rkey == 0 || rkey > regions_.size()) return {};
  return regions_[rkey - 1];
}

void SimNode::CountSent(uint64_t bytes) {
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
}

void SimNode::CountReceived(uint64_t bytes) {
  bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
}

NicStats SimNode::stats() const {
  NicStats s;
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.writes_posted = writes_posted_.load(std::memory_order_relaxed);
  s.reads_posted = reads_posted_.load(std::memory_order_relaxed);
  s.reads_served = reads_served_.load(std::memory_order_relaxed);
  s.imm_delivered = imm_delivered_.load(std::memory_order_relaxed);
  return s;
}

void SimNode::ResetStats() {
  bytes_sent_.store(0, std::memory_order_relaxed);
  bytes_received_.store(0, std::memory_order_relaxed);
  writes_posted_.store(0, std::memory_order_relaxed);
  reads_posted_.store(0, std::memory_order_relaxed);
  reads_served_.store(0, std::memory_order_relaxed);
  imm_delivered_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// QueuePair
// ---------------------------------------------------------------------------

void QueuePair::Connect(const std::shared_ptr<QueuePair>& a,
                        const std::shared_ptr<QueuePair>& b) {
  {
    const std::scoped_lock lock(a->peer_mu_);
    a->peer_ = b;
    a->peer_node_ = b->node_;
    a->closed_ = false;
  }
  {
    const std::scoped_lock lock(b->peer_mu_);
    b->peer_ = a;
    b->peer_node_ = a->node_;
    b->closed_ = false;
  }
}

bool QueuePair::connected() const {
  const std::scoped_lock lock(peer_mu_);
  return !closed_ && !peer_.expired();
}

void QueuePair::Close() {
  std::shared_ptr<QueuePair> peer;
  {
    const std::scoped_lock lock(peer_mu_);
    closed_ = true;
    peer = peer_.lock();
    peer_.reset();
  }
  if (peer) {
    const std::scoped_lock lock(peer->peer_mu_);
    peer->closed_ = true;
    peer->peer_.reset();
  }
}

void QueuePair::CompleteLocal(uint64_t wr_id, Opcode op, WcStatus status,
                              uint32_t byte_len) {
  WorkCompletion wc;
  wc.wr_id = wr_id;
  wc.opcode = op;
  wc.status = status;
  wc.qp_num = qp_num_;
  wc.byte_len = byte_len;
  send_cq_->Push(wc);
}

QpOpStats QueuePair::op_stats() const noexcept {
  QpOpStats s;
  s.writes_posted = writes_posted_.load(std::memory_order_relaxed);
  s.write_bytes = write_bytes_.load(std::memory_order_relaxed);
  s.reads_posted = reads_posted_.load(std::memory_order_relaxed);
  s.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.imm_sent = imm_sent_.load(std::memory_order_relaxed);
  return s;
}

bool QueuePair::PostWrite(uint64_t wr_id, std::span<const std::byte> local,
                          RemoteAddr dst, bool signaled) {
  node_->writes_posted_.fetch_add(1, std::memory_order_relaxed);
  writes_posted_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(local.size(), std::memory_order_relaxed);
  CATFISH_COUNT("rdma.write.posted");
  CATFISH_COUNT_ADD("rdma.write.bytes", local.size());
  std::shared_ptr<QueuePair> peer;
  std::shared_ptr<SimNode> peer_node;
  {
    const std::scoped_lock lock(peer_mu_);
    peer = peer_.lock();
    peer_node = peer_node_;
    if (closed_ || !peer) {
      CompleteLocal(wr_id, Opcode::kWrite, WcStatus::kFlushed, 0);
      return false;
    }
  }
  const auto region = peer_node->ResolveMr(dst.rkey);
  if (dst.offset + local.size() > region.size()) {
    CompleteLocal(wr_id, Opcode::kWrite, WcStatus::kRemoteAccessError, 0);
    return false;
  }
  LineCopy(region.data() + dst.offset, local.data(), local.size());
  node_->CountSent(local.size());
  peer_node->CountReceived(local.size());
  if (signaled) {
    CompleteLocal(wr_id, Opcode::kWrite, WcStatus::kSuccess,
                  static_cast<uint32_t>(local.size()));
  }
  return true;
}

bool QueuePair::PostWriteImm(uint64_t wr_id, std::span<const std::byte> local,
                             RemoteAddr dst, uint32_t imm, bool signaled) {
  std::shared_ptr<QueuePair> peer;
  {
    const std::scoped_lock lock(peer_mu_);
    peer = peer_.lock();
  }
  if (!PostWrite(wr_id, local, dst, signaled)) return false;
  // Data is placed before the notification fires, matching the RC
  // guarantee that the IMM completion observes the written payload.
  if (peer && peer->recv_cq_) {
    WorkCompletion wc;
    wc.wr_id = 0;
    wc.opcode = Opcode::kRecvImm;
    wc.status = WcStatus::kSuccess;
    wc.qp_num = peer->qp_num_;
    wc.imm_data = imm;
    wc.byte_len = static_cast<uint32_t>(local.size());
    peer->recv_cq_->Push(wc);
    peer->node_->imm_delivered_.fetch_add(1, std::memory_order_relaxed);
    imm_sent_.fetch_add(1, std::memory_order_relaxed);
    CATFISH_COUNT("rdma.imm.delivered");
  }
  return true;
}

bool QueuePair::PostRead(uint64_t wr_id, std::span<std::byte> local,
                         RemoteAddr src) {
  node_->reads_posted_.fetch_add(1, std::memory_order_relaxed);
  reads_posted_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(local.size(), std::memory_order_relaxed);
  CATFISH_COUNT("rdma.read.posted");
  CATFISH_COUNT_ADD("rdma.read.bytes", local.size());
  std::shared_ptr<SimNode> peer_node;
  {
    const std::scoped_lock lock(peer_mu_);
    if (closed_ || peer_.expired()) {
      CompleteLocal(wr_id, Opcode::kRead, WcStatus::kFlushed, 0);
      return false;
    }
    peer_node = peer_node_;
  }
  const auto region = peer_node->ResolveMr(src.rkey);
  if (src.offset + local.size() > region.size()) {
    CompleteLocal(wr_id, Opcode::kRead, WcStatus::kRemoteAccessError, 0);
    return false;
  }
  // Served entirely by the "NIC": no peer CPU thread participates. Real
  // NICs read each 64-byte cache line as an atomic snapshot; SnapshotCopy
  // reproduces that, so sub-line tears the seqlock could never see on
  // hardware cannot happen here either (rtree/layout.h).
  rtree::SnapshotCopy(local.data(), region.data() + src.offset, local.size());
  peer_node->reads_served_.fetch_add(1, std::memory_order_relaxed);
  peer_node->CountSent(local.size());
  node_->CountReceived(local.size());
  CompleteLocal(wr_id, Opcode::kRead, WcStatus::kSuccess,
                static_cast<uint32_t>(local.size()));
  return true;
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

std::shared_ptr<SimNode> Fabric::CreateNode(std::string name) {
  auto node = std::shared_ptr<SimNode>(new SimNode(name));
  const std::scoped_lock lock(mu_);
  nodes_[std::move(name)] = node;
  return node;
}

std::shared_ptr<SimNode> Fabric::FindNode(const std::string& name) const {
  const std::scoped_lock lock(mu_);
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.lock();
}

}  // namespace catfish::rdma

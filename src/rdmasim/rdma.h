// In-process emulation of RDMA verbs on reliable connections (RC).
//
// This substitutes for the ConnectX NICs + ibverbs stack of the paper's
// testbed (see DESIGN.md §2). It preserves the semantics Catfish relies
// on:
//
//  * one-sided RDMA READ / WRITE: the target host's CPU threads are never
//    involved — data moves by direct memory copy against the registered
//    region, performed in cache-line units (matching the atomicity
//    granularity the version-number concurrency control assumes);
//  * RDMA WRITE with Immediate Data: additionally raises a completion on
//    the responder's receive CQ carrying the 32-bit immediate — the basis
//    of the event-driven fast-messaging server (§IV-B);
//  * per-QP ordering: operations posted on one QP complete in order;
//  * completion queues with both polling and blocking (event-channel)
//    consumption.
//
// Timing is NOT modeled here (operations execute synchronously); the
// fabric profiles parameterize the discrete-event simulator instead.
// Failures ARE injectable: Fabric::faults() scripts partitions, flaky
// links, QP error transitions — and *slow* faults (per-link latency,
// degraded nodes), the gray failures where a component keeps answering
// but far slower than its peers. Fabric::RestartNode models a full
// server reboot (see FaultController below).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "rdmasim/completion.h"
#include "rdmasim/fabric_profile.h"

namespace catfish::rdma {

class SimNode;
class QueuePair;
class Fabric;

/// Remote memory location: a registration key plus a byte offset into
/// that registration. (Real verbs use virtual addresses; offsets against
/// the rkey's base are equivalent and harder to misuse.)
struct RemoteAddr {
  uint32_t rkey = 0;
  uint64_t offset = 0;
};

/// Handle to locally registered memory, exchanged with peers out of band
/// (the paper exchanges registered addresses over a TCP bootstrap
/// connection, §II-B).
struct MemoryRegionHandle {
  uint32_t rkey = 0;
  size_t length = 0;
};

/// Aggregate NIC traffic counters; what Fig 2 measures as "server
/// bandwidth" comes from these.
struct NicStats {
  uint64_t bytes_sent = 0;       ///< payload bytes leaving this node
  uint64_t bytes_received = 0;   ///< payload bytes arriving at this node
  uint64_t writes_posted = 0;
  uint64_t reads_posted = 0;
  uint64_t reads_served = 0;     ///< one-sided READs served (CPU bypassed)
  uint64_t imm_delivered = 0;
};

/// Scripted fabric faults, owned by the Fabric (fault injection below
/// the transport layer — DESIGN.md "fault domains"). Three independent
/// primitives, mirroring how failures surface on real RC hardware:
///
///  * partitions   — every op between two named nodes fails with
///                   kRetryExceeded (the NIC's retransmission budget
///                   keeps exhausting) until the link is healed;
///  * drop plans   — a flaky link fails individual ops by ordinal; the
///                   QP stays usable, so sender retry loops and the
///                   remote engine's bounded backoff absorb the loss;
///  * QP error     — FailQp is the ibv modify-to-ERR transition: sticky,
///                   every later post refused with kQpError. Recovery
///                   requires a new QP (i.e. a reconnect);
///  * slow faults  — gray failures: SetLinkLatency stalls every op on
///                   one link by base±jitter µs (a congested or
///                   misnegotiated path), SetDegraded stalls every op
///                   touching one node (a host limping along — thermal
///                   throttle, dying NIC — that still answers, just
///                   slowly). Unlike the fail-stop primitives above, the
///                   op then SUCCEEDS: nothing times out, watchdogs see
///                   heartbeats, and only tail latency gives it away —
///                   exactly the failure hedged reads are for.
///
/// All methods are thread-safe. Ops on faulted links fail before any
/// byte moves, so rings never see partially-written records; slow-fault
/// delays elapse before the byte copy begins (and before the in-flight
/// region barrier is taken, so a stalled op never blocks Deregister).
class FaultController {
 public:
  /// Which per-link op ordinals a flaky link drops (same shape as the
  /// transport-level remote::FaultPlan, counted per node pair here).
  struct DropPlan {
    uint64_t first = 0;  ///< drop the first `first` ops
    uint64_t every = 0;  ///< additionally drop every `every`-th op (0 = off)
    bool Hits(uint64_t ordinal) const noexcept {
      if (ordinal < first) return true;
      return every != 0 && (ordinal + 1) % every == 0;
    }
  };

  /// Cuts both directions between the named nodes until Heal.
  void Partition(const std::string& a, const std::string& b);
  void Heal(const std::string& a, const std::string& b);
  bool Partitioned(const std::string& a, const std::string& b) const;

  /// Installs a drop plan on the link; ordinals count ops in either
  /// direction, in post order.
  void SetDropPlan(const std::string& a, const std::string& b, DropPlan plan);

  /// Slow fault on one link: every op between the nodes stalls for
  /// base_us plus a uniformly drawn [0, jitter_us] before any byte
  /// moves, then completes normally. The jitter draw is deterministic
  /// per link (seeded SplitMix64), so tests replay. base_us = 0 clears.
  void SetLinkLatency(const std::string& a, const std::string& b,
                      uint64_t base_us, uint64_t jitter_us = 0,
                      uint64_t seed = 1);
  /// Degraded-node mode: every op touching `node` (as initiator or
  /// target, any link) stalls an extra per_op_us — the packet-level
  /// analog of the DES's service-time multiplier, expressed as absolute
  /// added delay because sim ops have no intrinsic service time to
  /// scale. Delays stack with link latency. per_op_us = 0 clears.
  void SetDegraded(const std::string& node, uint64_t per_op_us);

  /// Removes partition + drop plan + latency from one link / everything
  /// (degraded nodes included) from every link.
  void ClearLink(const std::string& a, const std::string& b);
  void Clear();

  /// Transitions `qp` into the sticky error state (ibv QP → ERR).
  static void FailQp(QueuePair& qp);

  /// Ops failed by partitions/drop plans so far (diagnostics).
  uint64_t dropped_ops() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Ops delayed by slow faults so far (diagnostics).
  uint64_t slowed_ops() const noexcept {
    return slowed_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueuePair;

  struct Link {
    bool partitioned = false;
    DropPlan drop;
    uint64_t ops = 0;  ///< ordinal counter for the drop plan
    uint64_t lat_base_us = 0;    ///< slow fault: fixed per-op delay
    uint64_t lat_jitter_us = 0;  ///< slow fault: uniform extra [0, jitter]
    JitterState lat_rng{0};      ///< deterministic per-link jitter draws
  };

  /// Consulted by every post touching the wire; counts the op against
  /// the link's drop plan and returns true when it must fail.
  bool ShouldFail(const std::string& local, const std::string& peer);

  /// Slow-fault delay for one op on the link (link latency + both
  /// endpoints' degraded delays); 0 in the common unfaulted case.
  uint64_t SlowDelayUs(const std::string& local, const std::string& peer);

  static std::string Key(const std::string& a, const std::string& b);

  /// Fast-path gate: posts skip the mutex entirely until the first
  /// fault is installed (stays set until Clear empties the table).
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> slowed_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Link> links_;
  std::unordered_map<std::string, uint64_t> degraded_;  ///< node → µs/op
};

/// One machine's RDMA device. Created through Fabric::CreateNode.
class SimNode : public std::enable_shared_from_this<SimNode> {
 public:
  const std::string& name() const noexcept { return name_; }

  /// Which incarnation of this node name this is: 1 for the first
  /// CreateNode("x"), bumped by every re-create/restart under the same
  /// name. Carried through the bootstrap handshake so clients can tell
  /// a restarted server from the one they wired against.
  uint64_t generation() const noexcept { return generation_; }

  /// Registers `mem` with the NIC and returns the rkey handle. The memory
  /// must outlive the node. Registration is done once for the whole
  /// R-tree arena (paper §III-B: registration is expensive).
  MemoryRegionHandle RegisterMemory(std::span<std::byte> mem);

  std::shared_ptr<CompletionQueue> CreateCq();

  /// Creates a queue pair whose initiator-side completions go to
  /// `send_cq` and whose responder-side (WRITE w/ IMM) notifications go
  /// to `recv_cq`.
  std::shared_ptr<QueuePair> CreateQp(std::shared_ptr<CompletionQueue> send_cq,
                                      std::shared_ptr<CompletionQueue> recv_cq);

  NicStats stats() const;
  void ResetStats();

  /// Deregisters every memory region after waiting out in-flight
  /// one-sided ops against this node — the sim equivalent of
  /// ibv_dereg_mr draining the NIC. Close the node's QPs first so no
  /// new op can begin; once this returns, the owner may free the
  /// registered bytes (late ops resolve nothing and fail with
  /// kRemoteAccessError without touching memory).
  void DeregisterAll();

  /// Deregisters one region with the same in-flight barrier as
  /// DeregisterAll, for owners whose memory dies while the node (and
  /// other owners' regions) live on — e.g. one connection's ring on a
  /// node that keeps serving. The rkey slot is retired, never reused,
  /// so a peer still holding the stale rkey fails with
  /// kRemoteAccessError instead of aliasing a later registration.
  void Deregister(MemoryRegionHandle mr);

  /// Resolves a locally created QP by number — what the connection
  /// manager does with the QPN a peer sent over the bootstrap channel.
  std::shared_ptr<QueuePair> FindQp(uint32_t qp_num) const;

 private:
  friend class Fabric;
  friend class QueuePair;

  SimNode(std::string name, Fabric* fabric, uint64_t generation)
      : name_(std::move(name)), fabric_(fabric), generation_(generation) {}

  /// Resolves an rkey to the registered bytes; empty span when invalid.
  std::span<std::byte> ResolveMr(uint32_t rkey) const;

  /// The restart primitive's teardown half: deregisters every memory
  /// region (stale rkeys resolve to nothing) and closes + errors every
  /// QP — what a host reboot does to its NIC state. Called by
  /// Fabric::RestartNode on the old incarnation.
  void Invalidate();

  void CountSent(uint64_t bytes);
  void CountReceived(uint64_t bytes);

  std::string name_;
  /// The owning fabric (for fault checks on the data path). Nodes are
  /// only created by Fabric::CreateNode and must not outlive it.
  Fabric* fabric_;
  uint64_t generation_;
  mutable std::mutex mu_;
  /// Region lifetime barrier: the data path holds it shared for the
  /// duration of a copy into/out of this node's registered memory;
  /// DeregisterAll/Invalidate take it exclusive to wait those copies
  /// out before the regions (and their backing bytes) go away.
  mutable std::shared_mutex mr_mu_;
  std::vector<std::span<std::byte>> regions_;
  std::unordered_map<uint32_t, std::weak_ptr<QueuePair>> qps_;
  std::atomic<uint32_t> next_qp_num_{1};

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> writes_posted_{0};
  std::atomic<uint64_t> reads_posted_{0};
  std::atomic<uint64_t> reads_served_{0};
  std::atomic<uint64_t> imm_delivered_{0};
};

/// One staged work request for QueuePair::PostBatch — the doorbell-
/// batched issue path (ibv post-lists / RDMAbox-style WR chaining).
/// Exactly one of `dst` / `src` is meaningful: `dst` is the local
/// destination of a kRead, `src` the local payload of a kWrite /
/// kWriteImm.
struct WorkRequest {
  enum class Kind : uint8_t { kRead, kWrite, kWriteImm };

  Kind kind = Kind::kRead;
  uint64_t wr_id = 0;
  std::span<std::byte> dst;        ///< READ: local destination buffer
  std::span<const std::byte> src;  ///< WRITE: local payload
  RemoteAddr remote;
  uint32_t imm = 0;                ///< kWriteImm only
  bool signaled = true;            ///< errors always complete regardless
};

/// Per-QP operation counters (telemetry): what this QP posted and how
/// many bytes each op class moved. Readable from any thread.
struct QpOpStats {
  uint64_t writes_posted = 0;
  uint64_t write_bytes = 0;
  uint64_t reads_posted = 0;
  uint64_t read_bytes = 0;
  uint64_t imm_sent = 0;
};

/// A reliable-connection queue pair. Thread-compatible: one thread posts
/// at a time (matching verbs usage); distinct QPs are independent.
class QueuePair {
 public:
  uint32_t qp_num() const noexcept { return qp_num_; }

  QpOpStats op_stats() const noexcept;

  /// Connects this QP with `peer` (both directions), like exchanging QP
  /// numbers during connection setup.
  static void Connect(const std::shared_ptr<QueuePair>& a,
                      const std::shared_ptr<QueuePair>& b);

  /// One-sided RDMA WRITE of `local` into the peer's memory at `dst`.
  /// Returns false (and pushes a failed completion) on error. When
  /// `signaled` is false no success completion is generated (verbs'
  /// unsignaled sends — used by the ring layer so data-path CQs carry
  /// only the completions their consumers care about); errors always
  /// generate a completion.
  bool PostWrite(uint64_t wr_id, std::span<const std::byte> local,
                 RemoteAddr dst, bool signaled = true);

  /// RDMA WRITE with Immediate Data: as PostWrite, additionally delivers
  /// a kRecvImm completion carrying `imm` to the peer QP's recv CQ.
  bool PostWriteImm(uint64_t wr_id, std::span<const std::byte> local,
                    RemoteAddr dst, uint32_t imm, bool signaled = true);

  /// One-sided RDMA READ of `local.size()` bytes from the peer's memory
  /// at `src` into `local`. The peer's CPU is not involved.
  bool PostRead(uint64_t wr_id, std::span<std::byte> local, RemoteAddr src);

  /// Doorbell-batched post: executes every WR in order but rings the
  /// doorbell once — one `rdma.doorbells` count and one batched CQ
  /// delivery (single lock acquisition, single wakeup) instead of the
  /// per-WR costs the single-shot posts pay. Per-WR fault checks are
  /// preserved: a dropped op in the middle of a batch signals its own
  /// error CQE while the remaining WRs still execute (fabric drop plans
  /// do not error the QP, so on this simulated RC a batch is not flushed
  /// by one soft loss). Returns the number of WRs that succeeded; when
  /// `ok` is non-null it must point at wrs.size() flags and receives the
  /// per-WR outcome.
  size_t PostBatch(std::span<const WorkRequest> wrs, bool* ok = nullptr);

  /// Tears the connection down; subsequent posts fail with kFlushed.
  void Close();

  /// Sticky error transition (ibv QP → ERR): subsequent posts fail with
  /// kQpError completions. Also reachable via FaultController::FailQp.
  void EnterErrorState();

  bool connected() const;
  bool in_error() const;

 private:
  friend class SimNode;

  QueuePair(std::shared_ptr<SimNode> node, uint32_t qp_num,
            std::shared_ptr<CompletionQueue> send_cq,
            std::shared_ptr<CompletionQueue> recv_cq)
      : node_(std::move(node)),
        qp_num_(qp_num),
        send_cq_(std::move(send_cq)),
        recv_cq_(std::move(recv_cq)) {}

  /// Synchronously executes one WR against the fabric. Fills `wc` with
  /// the resulting completion and sets `deliver` when it belongs on the
  /// send CQ (always for errors and READs; for WRITEs only when
  /// signaled). Does NOT touch the CQ itself — the caller delivers, so
  /// PostBatch can coalesce a whole batch into one PushMany.
  bool Execute(const WorkRequest& wr, WorkCompletion& wc, bool& deliver);

  /// Posts one WR with its own doorbell (the legacy single-shot path).
  bool PostOne(const WorkRequest& wr);

  std::shared_ptr<SimNode> node_;
  uint32_t qp_num_;
  std::shared_ptr<CompletionQueue> send_cq_;
  std::shared_ptr<CompletionQueue> recv_cq_;

  /// Fault gate shared by every post: kQpError when errored, kFlushed
  /// when closed, kRetryExceeded when the fault controller fails the op.
  /// Fills `peer_node` / `peer` and returns kSuccess when the op may
  /// proceed.
  WcStatus CheckPostFaults(std::shared_ptr<SimNode>& peer_node,
                           std::shared_ptr<QueuePair>& peer);

  mutable std::mutex peer_mu_;
  std::weak_ptr<QueuePair> peer_;
  std::shared_ptr<SimNode> peer_node_;
  bool closed_ = false;
  bool error_ = false;

  std::atomic<uint64_t> writes_posted_{0};
  std::atomic<uint64_t> write_bytes_{0};
  std::atomic<uint64_t> reads_posted_{0};
  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> imm_sent_{0};
};

/// The interconnect: a factory and name registry for nodes sharing one
/// fabric profile. The registry plays the connection manager's role in
/// the bootstrap handshake — a peer named in a hello message resolves to
/// its node, and from there to the QP to pair with.
class Fabric {
 public:
  explicit Fabric(FabricProfile profile) : profile_(std::move(profile)) {}

  /// Creates a node and registers it under `name` (later nodes with the
  /// same name shadow earlier ones in the registry).
  std::shared_ptr<SimNode> CreateNode(std::string name);

  /// Looks a node up by name; nullptr when unknown.
  std::shared_ptr<SimNode> FindNode(const std::string& name) const;

  /// Server-restart primitive: invalidates the current incarnation of
  /// `name` (stale rkeys/QPNs die, peers' QPs get closed + errored —
  /// what a host reboot looks like from the fabric) and registers a
  /// fresh node under the same name with a bumped generation. Works
  /// like CreateNode when the name is unknown.
  std::shared_ptr<SimNode> RestartNode(const std::string& name);

  /// Number of live nodes currently registered (expired registrations —
  /// nodes whose owners dropped them, or pre-restart incarnations — are
  /// not counted). Multi-node deployments export this for observability:
  /// a sharded host expects num_shards server nodes plus one per client.
  size_t node_count() const;

  /// Scripted faults on this fabric's links (chaos testing).
  FaultController& faults() noexcept { return faults_; }

  const FabricProfile& profile() const noexcept { return profile_; }

 private:
  FabricProfile profile_;
  FaultController faults_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<SimNode>> nodes_;
  /// Incarnation counters per node name (survive node destruction).
  std::unordered_map<std::string, uint64_t> generations_;
};

}  // namespace catfish::rdma

// In-process emulation of RDMA verbs on reliable connections (RC).
//
// This substitutes for the ConnectX NICs + ibverbs stack of the paper's
// testbed (see DESIGN.md §2). It preserves the semantics Catfish relies
// on:
//
//  * one-sided RDMA READ / WRITE: the target host's CPU threads are never
//    involved — data moves by direct memory copy against the registered
//    region, performed in cache-line units (matching the atomicity
//    granularity the version-number concurrency control assumes);
//  * RDMA WRITE with Immediate Data: additionally raises a completion on
//    the responder's receive CQ carrying the 32-bit immediate — the basis
//    of the event-driven fast-messaging server (§IV-B);
//  * per-QP ordering: operations posted on one QP complete in order;
//  * completion queues with both polling and blocking (event-channel)
//    consumption.
//
// Timing is NOT injected here (operations execute synchronously); the
// fabric profiles parameterize the discrete-event simulator instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdmasim/completion.h"
#include "rdmasim/fabric_profile.h"

namespace catfish::rdma {

class SimNode;
class QueuePair;

/// Remote memory location: a registration key plus a byte offset into
/// that registration. (Real verbs use virtual addresses; offsets against
/// the rkey's base are equivalent and harder to misuse.)
struct RemoteAddr {
  uint32_t rkey = 0;
  uint64_t offset = 0;
};

/// Handle to locally registered memory, exchanged with peers out of band
/// (the paper exchanges registered addresses over a TCP bootstrap
/// connection, §II-B).
struct MemoryRegionHandle {
  uint32_t rkey = 0;
  size_t length = 0;
};

/// Aggregate NIC traffic counters; what Fig 2 measures as "server
/// bandwidth" comes from these.
struct NicStats {
  uint64_t bytes_sent = 0;       ///< payload bytes leaving this node
  uint64_t bytes_received = 0;   ///< payload bytes arriving at this node
  uint64_t writes_posted = 0;
  uint64_t reads_posted = 0;
  uint64_t reads_served = 0;     ///< one-sided READs served (CPU bypassed)
  uint64_t imm_delivered = 0;
};

/// One machine's RDMA device. Created through Fabric::CreateNode.
class SimNode : public std::enable_shared_from_this<SimNode> {
 public:
  const std::string& name() const noexcept { return name_; }

  /// Registers `mem` with the NIC and returns the rkey handle. The memory
  /// must outlive the node. Registration is done once for the whole
  /// R-tree arena (paper §III-B: registration is expensive).
  MemoryRegionHandle RegisterMemory(std::span<std::byte> mem);

  std::shared_ptr<CompletionQueue> CreateCq();

  /// Creates a queue pair whose initiator-side completions go to
  /// `send_cq` and whose responder-side (WRITE w/ IMM) notifications go
  /// to `recv_cq`.
  std::shared_ptr<QueuePair> CreateQp(std::shared_ptr<CompletionQueue> send_cq,
                                      std::shared_ptr<CompletionQueue> recv_cq);

  NicStats stats() const;
  void ResetStats();

  /// Resolves a locally created QP by number — what the connection
  /// manager does with the QPN a peer sent over the bootstrap channel.
  std::shared_ptr<QueuePair> FindQp(uint32_t qp_num) const;

 private:
  friend class Fabric;
  friend class QueuePair;

  explicit SimNode(std::string name) : name_(std::move(name)) {}

  /// Resolves an rkey to the registered bytes; empty span when invalid.
  std::span<std::byte> ResolveMr(uint32_t rkey) const;

  void CountSent(uint64_t bytes);
  void CountReceived(uint64_t bytes);

  std::string name_;
  mutable std::mutex mu_;
  std::vector<std::span<std::byte>> regions_;
  std::unordered_map<uint32_t, std::weak_ptr<QueuePair>> qps_;
  std::atomic<uint32_t> next_qp_num_{1};

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> writes_posted_{0};
  std::atomic<uint64_t> reads_posted_{0};
  std::atomic<uint64_t> reads_served_{0};
  std::atomic<uint64_t> imm_delivered_{0};
};

/// Per-QP operation counters (telemetry): what this QP posted and how
/// many bytes each op class moved. Readable from any thread.
struct QpOpStats {
  uint64_t writes_posted = 0;
  uint64_t write_bytes = 0;
  uint64_t reads_posted = 0;
  uint64_t read_bytes = 0;
  uint64_t imm_sent = 0;
};

/// A reliable-connection queue pair. Thread-compatible: one thread posts
/// at a time (matching verbs usage); distinct QPs are independent.
class QueuePair {
 public:
  uint32_t qp_num() const noexcept { return qp_num_; }

  QpOpStats op_stats() const noexcept;

  /// Connects this QP with `peer` (both directions), like exchanging QP
  /// numbers during connection setup.
  static void Connect(const std::shared_ptr<QueuePair>& a,
                      const std::shared_ptr<QueuePair>& b);

  /// One-sided RDMA WRITE of `local` into the peer's memory at `dst`.
  /// Returns false (and pushes a failed completion) on error. When
  /// `signaled` is false no success completion is generated (verbs'
  /// unsignaled sends — used by the ring layer so data-path CQs carry
  /// only the completions their consumers care about); errors always
  /// generate a completion.
  bool PostWrite(uint64_t wr_id, std::span<const std::byte> local,
                 RemoteAddr dst, bool signaled = true);

  /// RDMA WRITE with Immediate Data: as PostWrite, additionally delivers
  /// a kRecvImm completion carrying `imm` to the peer QP's recv CQ.
  bool PostWriteImm(uint64_t wr_id, std::span<const std::byte> local,
                    RemoteAddr dst, uint32_t imm, bool signaled = true);

  /// One-sided RDMA READ of `local.size()` bytes from the peer's memory
  /// at `src` into `local`. The peer's CPU is not involved.
  bool PostRead(uint64_t wr_id, std::span<std::byte> local, RemoteAddr src);

  /// Tears the connection down; subsequent posts fail with kFlushed.
  void Close();

  bool connected() const;

 private:
  friend class SimNode;

  QueuePair(std::shared_ptr<SimNode> node, uint32_t qp_num,
            std::shared_ptr<CompletionQueue> send_cq,
            std::shared_ptr<CompletionQueue> recv_cq)
      : node_(std::move(node)),
        qp_num_(qp_num),
        send_cq_(std::move(send_cq)),
        recv_cq_(std::move(recv_cq)) {}

  void CompleteLocal(uint64_t wr_id, Opcode op, WcStatus status,
                     uint32_t byte_len);

  std::shared_ptr<SimNode> node_;
  uint32_t qp_num_;
  std::shared_ptr<CompletionQueue> send_cq_;
  std::shared_ptr<CompletionQueue> recv_cq_;

  mutable std::mutex peer_mu_;
  std::weak_ptr<QueuePair> peer_;
  std::shared_ptr<SimNode> peer_node_;
  bool closed_ = false;

  std::atomic<uint64_t> writes_posted_{0};
  std::atomic<uint64_t> write_bytes_{0};
  std::atomic<uint64_t> reads_posted_{0};
  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> imm_sent_{0};
};

/// The interconnect: a factory and name registry for nodes sharing one
/// fabric profile. The registry plays the connection manager's role in
/// the bootstrap handshake — a peer named in a hello message resolves to
/// its node, and from there to the QP to pair with.
class Fabric {
 public:
  explicit Fabric(FabricProfile profile) : profile_(std::move(profile)) {}

  /// Creates a node and registers it under `name` (later nodes with the
  /// same name shadow earlier ones in the registry).
  std::shared_ptr<SimNode> CreateNode(std::string name);

  /// Looks a node up by name; nullptr when unknown.
  std::shared_ptr<SimNode> FindNode(const std::string& name) const;

  const FabricProfile& profile() const noexcept { return profile_; }

 private:
  FabricProfile profile_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<SimNode>> nodes_;
};

}  // namespace catfish::rdma

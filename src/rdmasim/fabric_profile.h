// Network fabric profiles: the three interconnects of the paper's testbed
// (§V) — 100 Gb EDR InfiniBand, 40 GbE, 1 GbE — plus an instant profile
// for unit tests.
//
// In the real-thread emulation these numbers are *not* injected as sleeps
// (functional semantics only); they parameterize the discrete-event
// simulator's link model and the Fig. 9 micro-benchmark math. Values are
// calibrated to land in the regimes the paper reports: small-message RDMA
// RTTs of a few microseconds, kernel-TCP RTTs of tens of microseconds.
#pragma once

#include <cstddef>
#include <string>

namespace catfish::rdma {

struct FabricProfile {
  std::string name;
  /// One-way wire+NIC latency for a minimal transfer, microseconds.
  double base_latency_us = 0.0;
  /// Link bandwidth in gigabits per second (serialization rate).
  double bandwidth_gbps = 0.0;
  /// CPU time to post/complete one verb or socket op on the initiator, µs.
  double initiator_cpu_us = 0.0;
  /// CPU time charged on the *target* host per message. Zero for one-sided
  /// RDMA (the whole point of offloading); the kernel stack for TCP.
  double target_cpu_us = 0.0;
  /// True when the target CPU is bypassed (one-sided RDMA).
  bool one_sided = false;

  /// Serialization time of `bytes` on the link, µs.
  double SerializationUs(size_t bytes) const noexcept {
    if (bandwidth_gbps <= 0.0) return 0.0;
    const double bits = static_cast<double>(bytes) * 8.0;
    return bits / (bandwidth_gbps * 1e3);  // Gb/s → bits/µs
  }

  /// One-way delivery latency of a message of `bytes`, µs.
  double OneWayUs(size_t bytes) const noexcept {
    return base_latency_us + SerializationUs(bytes);
  }

  /// Round trip moving `request_bytes` there and `response_bytes` back.
  double RoundTripUs(size_t request_bytes, size_t response_bytes) const
      noexcept {
    return OneWayUs(request_bytes) + OneWayUs(response_bytes);
  }

  // --- The testbed fabrics (§V) ---

  /// Mellanox ConnectX-5 EDR InfiniBand, RDMA verbs.
  static FabricProfile InfiniBand100G() {
    return {"IB-100G", /*base_latency_us=*/1.0, /*bandwidth_gbps=*/100.0,
            /*initiator_cpu_us=*/0.2, /*target_cpu_us=*/0.0,
            /*one_sided=*/true};
  }

  /// Mellanox ConnectX-3 40 GbE with kernel TCP.
  static FabricProfile Ethernet40G() {
    return {"TCP-40G", /*base_latency_us=*/15.0, /*bandwidth_gbps=*/40.0,
            /*initiator_cpu_us=*/2.5, /*target_cpu_us=*/2.5,
            /*one_sided=*/false};
  }

  /// Intel I350 1 GbE with kernel TCP.
  static FabricProfile Ethernet1G() {
    return {"TCP-1G", /*base_latency_us=*/30.0, /*bandwidth_gbps=*/1.0,
            /*initiator_cpu_us=*/2.5, /*target_cpu_us=*/2.5,
            /*one_sided=*/false};
  }

  /// Zero-cost profile for unit tests of the functional layer.
  static FabricProfile Instant() {
    return {"instant", 0.0, 0.0, 0.0, 0.0, true};
  }
};

}  // namespace catfish::rdma

// Work completions and completion queues, mirroring ibverbs semantics.
//
// A CompletionQueue supports both notification styles the paper compares
// (§IV-B, Fig 6):
//   * polling  — Poll() drains ready completions without blocking;
//   * events   — Wait() blocks on a completion channel and yields the CPU
//                until the NIC delivers the next completion.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>

#include "common/clock.h"
#include "telemetry/metrics.h"

namespace catfish::rdma {

enum class Opcode : uint8_t {
  kWrite,        ///< initiator-side completion of RDMA WRITE
  kRead,         ///< initiator-side completion of RDMA READ
  kRecvImm,      ///< responder-side completion of RDMA WRITE w/ IMM
};

enum class WcStatus : uint8_t {
  kSuccess,
  kFlushed,             ///< QP torn down with the request outstanding
  kRemoteAccessError,   ///< remote address outside the registered region
  kRetryExceeded,       ///< transport retries exhausted (partition / drop)
  kQpError,             ///< QP is in the error state; post refused
};

struct WorkCompletion {
  uint64_t wr_id = 0;     ///< initiator's work-request id (0 for kRecvImm)
  Opcode opcode = Opcode::kWrite;
  WcStatus status = WcStatus::kSuccess;
  uint32_t qp_num = 0;    ///< local QP the completion belongs to
  uint32_t imm_data = 0;  ///< valid only for kRecvImm
  uint32_t byte_len = 0;  ///< bytes moved by the operation
  uint64_t posted_ns = 0; ///< when the NIC pushed it (telemetry)
};

class CompletionQueue {
 public:
  /// Non-blocking: moves up to out.size() completions into `out`,
  /// returning how many were delivered (ibv_poll_cq). Each call counts
  /// one `rdma.polls` CQ access, so polls/op directly compares one-at-a-
  /// time reaping against the coalesced PollMany path.
  size_t Poll(std::span<WorkCompletion> out) { return PollMany(out); }

  /// Batch reaping (the coalesced-polling half of doorbell batching):
  /// drains up to out.size() completions under a single lock acquisition
  /// and counts a single `rdma.polls` access however many CQEs it moves.
  size_t PollMany(std::span<WorkCompletion> out) {
    CATFISH_COUNT("rdma.polls");
    const std::scoped_lock lock(mu_);
    size_t n = 0;
    while (n < out.size() && !queue_.empty()) {
      out[n] = queue_.front();
      queue_.pop_front();
      RecordDelay(out[n]);
      ++n;
    }
    return n;
  }

  /// Blocking: waits until a completion is available or `timeout`
  /// elapses, then pops one. Emulates blocking on a completion event
  /// channel (ibv_get_cq_event) followed by a poll.
  std::optional<WorkCompletion> Wait(std::chrono::microseconds timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [this] { return !queue_.empty(); })) {
      return std::nullopt;
    }
    WorkCompletion wc = queue_.front();
    queue_.pop_front();
    RecordDelay(wc);
    return wc;
  }

  /// NIC side: delivers a completion and wakes one waiter.
  void Push(const WorkCompletion& wc) {
    {
      const std::scoped_lock lock(mu_);
      queue_.push_back(wc);
      queue_.back().posted_ns = NowNanos();
    }
    cv_.notify_one();
  }

  /// NIC side, batched: delivers a whole doorbell batch's completions
  /// with one lock acquisition and one wakeup — the delivery half of
  /// QueuePair::PostBatch. notify_all because one batch may satisfy
  /// several blocked waiters.
  void PushMany(std::span<const WorkCompletion> wcs) {
    if (wcs.empty()) return;
    {
      const std::scoped_lock lock(mu_);
      const uint64_t now = NowNanos();
      for (const WorkCompletion& wc : wcs) {
        queue_.push_back(wc);
        queue_.back().posted_ns = now;
      }
    }
    cv_.notify_all();
  }

  size_t Depth() const {
    const std::scoped_lock lock(mu_);
    return queue_.size();
  }

 private:
  /// Time from NIC delivery to consumer pickup — the sim's analogue of
  /// completion latency (how long work sat in the CQ).
  static void RecordDelay(const WorkCompletion& wc) noexcept {
#if CATFISH_TELEMETRY_ENABLED
    if (wc.posted_ns != 0) {
      CATFISH_TIMER_RECORD_US(
          "rdma.cq.delay_us",
          static_cast<double>(NowNanos() - wc.posted_ns) * 1e-3);
    }
#else
    (void)wc;
#endif
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WorkCompletion> queue_;
};

}  // namespace catfish::rdma

// The Catfish R-tree client (paper §III–IV).
//
// Three ways to execute a search:
//  * fast messaging   — WRITE the request into the server's ring, let a
//                       server thread traverse, collect the response
//                       segments (one network round trip, §III-A);
//  * RDMA offloading  — traverse the tree locally with one-sided READs of
//                       node chunks, validating the FaRM-style versions,
//                       optionally multi-issuing all of a level's reads
//                       (§III-B, §IV-C);
//  * adaptive         — pick per request with Algorithm 1, driven by the
//                       server's utilization heartbeats (§IV-A).
//
// Writes (insert/delete) always go through the ring so the server's
// writer lock serializes them (§III-B).
//
// A client object is owned by exactly one application thread, mirroring
// the paper's "independent client threads" workload model.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catfish/adaptive.h"
#include "catfish/breaker.h"
#include "catfish/server.h"
#include "common/backoff.h"
#include "msg/protocol.h"
#include "msg/ring.h"
#include "rdmasim/rdma.h"
#include "remote/engine.h"
#include "rtree/rstar.h"
#include "telemetry/trace.h"

namespace catfish {

enum class ClientMode : uint8_t { kAdaptive, kFastOnly, kOffloadOnly };

/// Typed outcome classes for client-side failures. Carried by
/// ClientError so callers can branch on *why* an operation failed
/// instead of parsing what() strings.
enum class ClientStatus : uint8_t {
  kOk = 0,
  kTimedOut,          ///< request sent, response deadline expired
  kRingStalled,       ///< request ring never opened within the deadline
  kDisconnected,      ///< liveness watchdog declared the server dead
  kTransportError,    ///< one-sided fetch failed (QP error/partition/restart)
  kRetriesExhausted,  ///< offload validation ran out of attempts
  kReconnectFailed,   ///< re-bootstrap did not produce a connection
  kOverloaded,        ///< server shed the request (admission control)
  kDeadlineExpired,   ///< per-op deadline budget exhausted
  kBreakerOpen,       ///< circuit breaker failing fast, request not sent
};

const char* ToString(ClientStatus s) noexcept;

/// Client failure exception. Derives from std::runtime_error so callers
/// that predate typed statuses keep working unchanged.
class ClientError : public std::runtime_error {
 public:
  ClientError(ClientStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  ClientStatus status() const noexcept { return status_; }

 private:
  ClientStatus status_;
};

/// Connection liveness as judged by the heartbeat watchdog.
enum class ConnState : uint8_t { kConnected, kSuspect, kDisconnected };

/// The liveness watchdog (failover layer): heartbeats are the server's
/// only unsolicited traffic, so K missed heartbeat intervals escalate
/// Connected → Suspect → Disconnected. While degraded, fast-path ops
/// fail fast with kDisconnected instead of burning the request timeout;
/// offloaded reads keep serving from the last-known arena (one-sided
/// READs need no server CPU). With a reconnect handshake installed
/// (see ConnectViaBootstrap's dial overload), Disconnected triggers a
/// re-bootstrap at the next operation.
struct WatchdogConfig {
  /// Off by default: clients without heartbeat traffic (fast-only test
  /// rigs, idle periods) must not spuriously disconnect.
  bool enabled = false;
  /// Missed heartbeat intervals before Connected → Suspect.
  uint32_t suspect_after = 3;
  /// Missed heartbeat intervals before → Disconnected.
  uint32_t disconnect_after = 10;
  /// Absolute silence floor before ANY escalation: an overloaded-but-
  /// alive server delays heartbeats behind its request backlog, and a
  /// trip there would convert "slow" into "dead" exactly when failing
  /// over helps least. Overload tests raise this so only the interval
  /// thresholds they configure decide. 0 = intervals alone decide.
  uint64_t min_silence_us = 0;
};

struct ClientConfig {
  ClientMode mode = ClientMode::kAdaptive;
  AdaptiveConfig adaptive;
  /// Response ring bytes (paper §V-B: 256 KB per connection pair).
  size_t ring_capacity = 256 * 1024;
  /// Multi-issue offloading: fetch a whole frontier per round (§IV-C).
  bool multi_issue = true;
  /// Cache internal (non-leaf) nodes on the client between offloaded
  /// searches — the Cell-style top-level cache (§VII). Invalidated
  /// whenever a heartbeat reports a new tree write epoch, bounding
  /// staleness to roughly the heartbeat interval. An offloaded search
  /// using the cache may miss entries inserted after the last heartbeat
  /// — the same read-your-heartbeat consistency the uncached traversal
  /// has against in-flight writers.
  bool cache_internal_nodes = false;
  /// Seed for the back-off randomization.
  uint64_t seed = 1;
  /// Abort a stuck request after this long (guards tests/examples).
  uint64_t request_timeout_us = 30'000'000;
  /// Total tries per Insert/Delete. A write that times out or loses the
  /// connection is resent (after Reconnect() when the watchdog tripped)
  /// with the same (client_gen, req_id), so the server's dedup table
  /// makes the retry exactly-once: an already-applied write is re-acked,
  /// never re-applied. 1 = legacy fail-fast behavior.
  uint32_t write_attempts = 3;
  /// Liveness watchdog; interval length comes from
  /// `adaptive.heartbeat_interval_us` (the server's advertised Inv).
  WatchdogConfig watchdog;
  /// Per-connection circuit breaker over kOverloaded replies and
  /// fast-path timeouts (catfish/breaker.h). While open, SearchFast /
  /// writes fail fast with kBreakerOpen and adaptive Search degrades
  /// to offloading; probes close it again. Off by default.
  BreakerConfig breaker;
  /// Default per-op deadline budget: every public operation gets
  /// `now + op_deadline_us` as its absolute deadline, covering retries
  /// and reconnects, propagated on the wire (the deadline tail) so the
  /// server can drop it once expired. 0 = legacy behavior (each wait
  /// bounded by request_timeout_us only, nothing on the wire).
  /// SetOpDeadline overrides this per op (the sharded fan-out's
  /// budget-splitting path).
  uint64_t op_deadline_us = 0;
  /// Bounds on the offload path's version-validated reads (the shared
  /// remote engine's capped-backoff retry loop, src/remote).
  remote::RetryPolicy remote_retry;
  /// Pooled chunk-sized fetch buffers per connection (the engine's
  /// ScratchPool). Wider traversal levels spill to counted heap
  /// allocations, so this bounds memory, not correctness.
  size_t scratch_buffers = 64;
  /// When set, every search records a span tree here: the adaptive
  /// decision, then either the fast-messaging ring write + response
  /// collection or the per-round offload fan-out (READ counts, version
  /// retries, cache hits). Null = no tracing. The tracer must outlive
  /// the client.
  telemetry::Tracer* tracer = nullptr;
};

struct ClientStats {
  uint64_t fast_searches = 0;
  uint64_t offloaded_searches = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t rdma_reads = 0;        ///< node chunks fetched while offloading
  uint64_t version_retries = 0;   ///< torn-node re-reads (§III-B)
  uint64_t heartbeats_received = 0;
  uint64_t cache_hits = 0;        ///< internal nodes served from cache
  uint64_t cache_invalidations = 0;
  uint64_t timeouts = 0;          ///< fast-path deadline expiries
  uint64_t watchdog_trips = 0;    ///< Connected→Suspect/Disconnected edges
  uint64_t reconnects = 0;        ///< successful re-bootstraps
  uint64_t write_retries = 0;     ///< Insert/Delete resends after a failure
  uint64_t stale_responses = 0;   ///< responses for superseded req_ids dropped
  uint64_t trace_frames = 0;      ///< kTraceResp frames consumed
  uint64_t overloaded = 0;        ///< kOverloaded replies received
  uint64_t deadline_expired = 0;  ///< ops abandoned on budget expiry
  uint64_t breaker_opens = 0;     ///< Closed/Half-open → Open transitions
  uint64_t breaker_fast_fails = 0;  ///< requests rejected while Open
};

class RTreeClient {
 public:
  /// The bootstrap exchange (§II-B): given the client's half of the
  /// handshake, returns the server's. In-process this is a direct call
  /// into RTreeServer::AcceptConnection; over the TCP bootstrap channel
  /// (catfish/bootstrap.h) it is a serialized hello round trip.
  using HandshakeFn = std::function<ServerBootstrap(const ClientBootstrap&)>;

  /// Connects through an arbitrary handshake transport.
  RTreeClient(std::shared_ptr<rdma::SimNode> node, const HandshakeFn& shake,
              ClientConfig cfg = {});

  /// Convenience: in-process handshake with a local server object.
  RTreeClient(std::shared_ptr<rdma::SimNode> node, RTreeServer& server,
              ClientConfig cfg = {});
  ~RTreeClient();

  RTreeClient(const RTreeClient&) = delete;
  RTreeClient& operator=(const RTreeClient&) = delete;

  /// Searches with the configured mode (adaptive by default). Returns
  /// all stored entries intersecting `rect`.
  std::vector<rtree::Entry> Search(const geo::Rect& rect);

  /// Forces the fast-messaging path for this request.
  std::vector<rtree::Entry> SearchFast(const geo::Rect& rect);

  /// Split fast-path search for cross-shard fan-out: Begin stages the
  /// request into the server's ring and returns without waiting, so a
  /// sharded caller can put one sub-query in flight on every intersecting
  /// shard before collecting any of them (the sub-queries' server-side
  /// traversals then overlap instead of serializing). Each Begin must be
  /// followed by exactly one Collect with the returned req_id before any
  /// other operation runs on this client.
  uint64_t SearchFastBegin(const geo::Rect& rect);
  std::vector<rtree::Entry> SearchFastCollect(uint64_t req_id);

  /// Non-blocking Collect: drains whatever responses are ready,
  /// accumulating segments for `req_id` internally. Returns true once
  /// the END segment arrived, moving the full result into `out`;
  /// false means "not yet" (call again). The hedged fan-out path polls
  /// this across shards to spot stragglers instead of blocking on each
  /// sub-query in turn. Same contract as Collect otherwise: one
  /// in-flight Begin per client, finished by exactly one successful
  /// Poll(=true)/Collect or an Abandon.
  bool SearchFastPoll(uint64_t req_id, std::vector<rtree::Entry>& out);

  /// Gives up on an in-flight Begin (a hedge won the race): partial
  /// segments are dropped and any late frames for `req_id` are drained
  /// as stale by the normal pump, keeping the connection usable.
  void SearchFastAbandon(uint64_t req_id);

  /// Overrides the per-op deadline for subsequent operations: an
  /// absolute NowMicros()-clock instant the whole op (including
  /// retries) must finish by, propagated on the wire. 0 reverts to the
  /// cfg_.op_deadline_us default. The sharded client uses this to hand
  /// each sub-query its slice of the parent budget.
  void SetOpDeadline(uint64_t abs_deadline_us) noexcept {
    op_deadline_override_us_ = abs_deadline_us;
  }

  /// The connection's circuit breaker (read-only observers; the client
  /// drives the transitions).
  const CircuitBreaker& breaker() const noexcept { return breaker_; }

  /// retry_after_us from the most recent kOverloaded reply (the
  /// server's backlog-scaled hint; 0 = none seen or "do not retry").
  uint32_t last_retry_after_us() const noexcept {
    return last_retry_after_us_;
  }

  /// Forces the offloading path; optionally reports the traversal trace.
  std::vector<rtree::Entry> SearchOffloaded(
      const geo::Rect& rect, rtree::TraversalTrace* trace = nullptr);

  /// k nearest neighbors of `point`, closest first. Served by the
  /// server: kNN's best-first frontier is sequential, so offloading
  /// would pay one RTT per node with nothing to multi-issue (§IV-C's
  /// precondition fails).
  std::vector<rtree::Entry> NearestNeighbors(const geo::Point& point,
                                             uint32_t k);

  /// Inserts via the server (always fast messaging). Returns the ack.
  bool Insert(const geo::Rect& rect, uint64_t id);

  /// Deletes via the server. False when the entry did not exist.
  bool Delete(const geo::Rect& rect, uint64_t id);

  /// Stages a wire trace context to ride on the *next* request
  /// (Search*/Insert/Delete). One-shot: consumed by that request, then
  /// cleared. A sampled context makes the server open a span tree for
  /// the request (regardless of its own sampling) and ship it back in a
  /// kTraceResp frame; fetch it afterwards with TakeRemoteTree. The
  /// sharded client stages one per sub-query so a fan-out search yields
  /// one tree per shard, all under the same trace_id.
  void StageTraceContext(const msg::TraceContext& ctx) noexcept {
    staged_ctx_ = ctx;
  }

  /// The server-side span tree shipped back for `req_id`, if one
  /// arrived and was not taken yet. Null for unsampled requests, notel
  /// servers, or a trace frame that never arrived (non-fatal timeout).
  std::shared_ptr<telemetry::Trace> TakeRemoteTree(uint64_t req_id);
  /// Same, for callers that do not know the req_id (the sharded write
  /// path: Insert/Delete mint their req_id internally). Returns the
  /// most recently stashed tree, whatever request produced it.
  std::shared_ptr<telemetry::Trace> TakeRemoteTree() {
    return TakeRemoteTree(last_remote_tree_req_);
  }

  /// Drains pending responses (heartbeats feed the adaptive controller
  /// and the watchdog) and advances the liveness state machine without
  /// issuing a request. Tests and idle loops use it to observe
  /// Connected → Suspect → Disconnected transitions; it never
  /// reconnects on its own.
  void Poll();

  /// Installs (or replaces) the handshake used for re-bootstrap after
  /// the watchdog reaches Disconnected. ConnectViaBootstrap's dial
  /// overload installs one automatically.
  void SetReconnectHandshake(HandshakeFn shake) {
    reconnect_shake_ = std::move(shake);
  }

  /// Tears down the old QP/rings and re-runs the bootstrap handshake:
  /// fresh QP + CQs, fresh response ring + registrations, node cache
  /// dropped, watchdog reset. Returns kOk or kReconnectFailed (the
  /// client stays Disconnected on failure and may be retried).
  ClientStatus Reconnect();

  ConnState conn_state() const noexcept { return conn_state_; }
  /// The generation of the server incarnation we are wired against.
  uint64_t server_generation() const noexcept { return boot_.generation; }
  /// Sharded deployments: which shard this connection serves and the
  /// opaque hello extension (the encoded routing table) from the most
  /// recent handshake — refreshed by Reconnect(), so after a failover
  /// these reflect the new server incarnation's map.
  uint32_t shard_id() const noexcept { return boot_.shard_id; }
  const std::vector<std::byte>& hello_extension() const noexcept {
    return boot_.hello_extension;
  }
  /// The newest routing-table version any heartbeat from this server has
  /// advertised (0 until one arrives; single-node servers never advertise).
  /// A value above the locally-cached map's version means the cluster
  /// republished — ShardedRTreeClient re-bootstraps proactively instead
  /// of waiting for an op against the restarted shard to fail.
  uint64_t advertised_map_version() const noexcept {
    return advertised_map_version_.load(std::memory_order_relaxed);
  }
  /// Replicated deployments: the peer's replication role and epoch from
  /// the most recent handshake (msg::ReplRole value; 0 = unreplicated),
  /// and the live view from heartbeats — the epoch the server currently
  /// serves under and its durable WAL LSN. The LSN lets a reader bound a
  /// follower's replication lag (primary durable_lsn − follower
  /// durable_lsn) without any extra round trip.
  uint8_t repl_role() const noexcept { return boot_.repl_role; }
  uint64_t repl_epoch() const noexcept { return boot_.repl_epoch; }
  uint64_t advertised_repl_epoch() const noexcept {
    return advertised_repl_epoch_.load(std::memory_order_relaxed);
  }
  uint64_t advertised_durable_lsn() const noexcept {
    return advertised_durable_lsn_.load(std::memory_order_relaxed);
  }
  /// This client's exactly-once write-session id (stamped on every
  /// Insert/Delete, process-unique, survives reconnects).
  uint64_t client_gen() const noexcept { return client_gen_; }

  /// The mode the last Search() used.
  AccessMode last_mode() const noexcept { return last_mode_; }

  ClientStats stats() const noexcept { return stats_; }
  /// The offload path's shared-engine counters (reads, version retries,
  /// exhaustions); also exported as `remote.rtree.*` metrics. READ
  /// counts here and in the §VI extension readers are directly
  /// comparable — one engine produced both.
  const remote::EngineStats& remote_stats() const noexcept {
    return engine_->stats();
  }
  /// The offload engine itself — for scratch-pool introspection (tests
  /// assert scratch()->in_use() == 0 between operations, including
  /// across Reconnect()).
  remote::VersionedFetchEngine& remote_engine() noexcept { return *engine_; }
  AdaptiveController& controller() noexcept { return controller_; }
  uint32_t tree_height() const noexcept { return boot_.tree_height; }

 private:
  /// Builds everything that depends on a live connection: CQs, QP,
  /// response ring memory + registrations, the handshake, both ring
  /// endpoints and the fetch engine. The constructor and Reconnect()
  /// share it.
  void WireUp(const HandshakeFn& shake);

  /// Advances the watchdog from the wall clock; escalates the liveness
  /// state when heartbeats have been silent too long. No-op unless
  /// cfg_.watchdog.enabled.
  void WatchdogTick(uint64_t now_us);

  /// Pre-flight for every public operation. Disconnected + reconnect
  /// handshake → re-bootstrap (throws kReconnectFailed on failure);
  /// Disconnected without one → fast paths fail fast with
  /// kDisconnected, offload paths proceed against the last-known arena.
  void EnsureUsable(bool fast_path);

  /// Typed deadline failure: counts catfish.client.timeouts, records a
  /// kRequestTimeout event, throws ClientError(status).
  [[noreturn]] void FailDeadline(ClientStatus status, bool ring_stalled,
                                 const char* what);

  /// Anchors the current op's absolute deadline (override, else the
  /// cfg_.op_deadline_us default, else 0) and throws kDeadlineExpired
  /// if it already passed. Every public op calls it once on entry.
  void ArmOpDeadline();
  /// The wait bound for one blocking stretch: request_timeout_us capped
  /// by the armed op deadline.
  uint64_t WaitDeadline(uint64_t now) const noexcept;
  [[noreturn]] void FailDeadlineExpired(const char* what);

  /// Breaker gate for one fast-path attempt; throws kBreakerOpen while
  /// the window holds.
  void AdmitFastOrThrow();
  /// Feeds an overload signal (kOverloaded reply or fast-path timeout)
  /// to the breaker; records the kBreakerOpen event on a trip.
  void NoteFastFailure(uint64_t now_us, uint32_t server_hint_us);

  void SendRequest(msg::MsgType type, std::span<const std::byte> payload);
  /// Drains ready responses between requests; heartbeats feed the
  /// controller, anything else is a stale response to a superseded
  /// req_id (e.g. the original ack of a write that was retried) and is
  /// dropped.
  void PumpPending();
  /// Waits for the response to `expected_req_id`. Every response type
  /// leads with its req_id, so responses to older requests are
  /// recognized and dropped uniformly here.
  msg::Message AwaitMessage(uint64_t expected_req_id);
  /// Consumes a kTraceResp frame wherever the pump encounters one:
  /// records its arrival under its req_id and stashes the decoded
  /// server span tree (an empty blob still records arrival, so waiters
  /// stop deterministically). Trace frames are never surfaced as
  /// responses — a write retry resends the same req_id, and the
  /// original's late trace frame must not be mistaken for its ack.
  void OnTraceFrame(const msg::Message& m);
  /// Bounded, non-fatal wait for `req_id`'s kTraceResp frame after its
  /// response/ack was consumed (the server sends it last, on the same
  /// FIFO ring). Expiry just means no remote tree for this request.
  void AwaitTraceFrame(uint64_t req_id);
  /// Consumes the staged one-shot context (empty when none staged).
  msg::TraceContext TakeStagedContext() noexcept {
    const msg::TraceContext ctx = staged_ctx_;
    staged_ctx_ = msg::TraceContext{};
    return ctx;
  }
  bool AwaitWriteAck(uint64_t req_id);
  /// Send + await-ack with exactly-once retries (cfg_.write_attempts).
  bool ExecuteWrite(msg::MsgType type, const std::vector<std::byte>& payload,
                    uint64_t req_id);

  /// Validates+decodes a fetched chunk image (the engine's validate
  /// callback); false → the engine re-fetches within its retry bounds.
  bool TryDecodeNode(rtree::ChunkId id, std::span<const std::byte> buf,
                     rtree::NodeData& out);

  /// Folds the engine's counters accumulated since `before` into
  /// ClientStats and the legacy `catfish.client.version_retries` metric.
  void AccountEngineDelta(const remote::EngineStats& before);

  /// Routes one fetched node's entries: hits to `results` (leaf) or the
  /// next frontier (internal).
  static void ProcessNode(const rtree::NodeData& node, const geo::Rect& rect,
                          std::vector<rtree::Entry>& results,
                          std::vector<rtree::ChunkId>& next);

  std::shared_ptr<rdma::SimNode> node_;
  ClientConfig cfg_;
  ServerBootstrap boot_;

  std::shared_ptr<rdma::CompletionQueue> send_cq_;
  std::shared_ptr<rdma::CompletionQueue> recv_cq_;
  std::shared_ptr<rdma::QueuePair> qp_;
  std::vector<std::byte> response_ring_mem_;
  /// Response rings from previous incarnations, kept mapped until the
  /// client dies: their rkeys stay registered with the node, and a
  /// straggler write against freed memory must stay impossible even if
  /// an old peer outlives its closed QP.
  std::vector<std::vector<std::byte>> retired_ring_mem_;
  /// Every region this client registered (one ring + ack pair per
  /// incarnation). The destructor retires exactly these — the node may
  /// be shared with sibling clients whose registrations must survive,
  /// so a blanket DeregisterAll would yank theirs and let fresh
  /// registrations alias their rkeys.
  std::vector<rdma::MemoryRegionHandle> owned_mrs_;
  alignas(8) std::array<std::byte, 8> request_ack_cell_{};
  std::unique_ptr<msg::RingSender> request_tx_;
  std::unique_ptr<msg::RingReceiver> response_rx_;

  /// Failover state (see WatchdogConfig).
  HandshakeFn reconnect_shake_;
  ConnState conn_state_ = ConnState::kConnected;
  uint64_t last_heartbeat_us_ = 0;  ///< also set at (re)connect time
  /// Atomic: heartbeats are consumed on whichever thread pumps the ring,
  /// while the sharded router reads this from its own op path.
  std::atomic<uint64_t> advertised_map_version_{0};
  std::atomic<uint64_t> advertised_repl_epoch_{0};
  std::atomic<uint64_t> advertised_durable_lsn_{0};

  /// One-sided access to the server's arena: the QP transport plus the
  /// shared read→validate→retry engine (src/remote) the offload path
  /// runs on. Created right after the bootstrap handshake.
  std::unique_ptr<remote::QpFetchTransport> fetch_transport_;
  std::unique_ptr<remote::VersionedFetchEngine> engine_;

  AdaptiveController controller_;
  AccessMode last_mode_ = AccessMode::kFastMessaging;
  ClientStats stats_;
  uint64_t next_req_id_ = 0;
  const uint64_t client_gen_;  ///< process-unique write-session id

  /// Cell-style cache of internal nodes (cfg_.cache_internal_nodes).
  std::unordered_map<rtree::ChunkId, rtree::NodeData> node_cache_;
  uint64_t cached_epoch_ = 0;
  bool cache_epoch_known_ = false;

  /// The search currently being traced (null between requests or when
  /// sampled out). Owned by Search()/SearchFast()/SearchOffloaded();
  /// inner helpers attach child spans under trace_root_ when non-null.
  std::shared_ptr<telemetry::Trace> trace_;
  telemetry::SpanId trace_root_ = telemetry::kInvalidSpan;

  /// Distributed-tracing state. staged_ctx_ is the one-shot wire
  /// context for the next request; trace_frame_req_ is the req_id of
  /// the last kTraceResp consumed (arrival marker, set even for empty
  /// blobs); last_remote_tree_ holds the newest decoded server span
  /// tree until TakeRemoteTree (or a local graft) claims it.
  /// Overload-protection state: the per-connection breaker, the jitter
  /// stream decorrelating this client's retry sleeps from its fleet
  /// siblings, the armed absolute deadline of the op in flight (0 =
  /// none), and the sticky per-op override (SetOpDeadline).
  CircuitBreaker breaker_;
  JitterState retry_jitter_;
  uint64_t cur_deadline_us_ = 0;
  uint64_t op_deadline_override_us_ = 0;
  uint32_t last_retry_after_us_ = 0;

  /// SearchFastPoll accumulator: segments of the in-flight split
  /// request collected so far (valid while poll_req_id_ != 0).
  uint64_t poll_req_id_ = 0;
  std::vector<rtree::Entry> poll_results_;

  msg::TraceContext staged_ctx_{};
  uint64_t trace_frame_req_ = 0;
  std::shared_ptr<telemetry::Trace> last_remote_tree_;
  uint64_t last_remote_tree_req_ = 0;
  /// SearchFastBegin→Collect carry-over: whether the in-flight split
  /// request was stamped with a sampled context.
  bool begun_sampled_ = false;

  /// Starts a trace for a top-level call when none is active; returns
  /// true when this frame owns (and must finish) the trace.
  bool BeginTrace(const char* name);
  void FinishTrace();

  void OnHeartbeatMessage(const msg::Heartbeat& hb);
};

}  // namespace catfish

#include "catfish/client.h"

#include <stdexcept>
#include <thread>

#include "common/clock.h"
#include "rtree/layout.h"

namespace catfish {

RTreeClient::RTreeClient(std::shared_ptr<rdma::SimNode> node,
                         const HandshakeFn& shake, ClientConfig cfg)
    : node_(std::move(node)), cfg_(cfg),
      controller_(cfg.adaptive, cfg.seed) {
  send_cq_ = node_->CreateCq();
  recv_cq_ = node_->CreateCq();
  qp_ = node_->CreateQp(send_cq_, recv_cq_);

  response_ring_mem_.assign(cfg_.ring_capacity, std::byte{0});
  const auto ring_mr = node_->RegisterMemory(response_ring_mem_);
  const auto ack_mr = node_->RegisterMemory(request_ack_cell_);

  ClientBootstrap mine;
  mine.qp = qp_;
  mine.response_ring = rdma::RemoteAddr{ring_mr.rkey, 0};
  mine.response_ring_capacity = cfg_.ring_capacity;
  mine.request_ack_cell = rdma::RemoteAddr{ack_mr.rkey, 0};
  boot_ = shake(mine);

  request_tx_ = std::make_unique<msg::RingSender>(
      qp_, boot_.request_ring, boot_.request_ring_capacity,
      std::span<std::byte>(request_ack_cell_));
  response_rx_ = std::make_unique<msg::RingReceiver>(
      std::span<std::byte>(response_ring_mem_), qp_,
      boot_.response_ack_cell);
}

RTreeClient::RTreeClient(std::shared_ptr<rdma::SimNode> node,
                         RTreeServer& server, ClientConfig cfg)
    : RTreeClient(std::move(node),
                  HandshakeFn([&server](const ClientBootstrap& mine) {
                    return server.AcceptConnection(mine);
                  }),
                  cfg) {}

RTreeClient::~RTreeClient() { qp_->Close(); }

void RTreeClient::SendRequest(msg::MsgType type,
                              std::span<const std::byte> payload) {
  const uint64_t deadline = NowMicros() + cfg_.request_timeout_us;
  // Requests always use WRITE-with-IMM so the event-driven server wakes;
  // a polling server simply never looks at its recv CQ.
  while (!request_tx_->TrySend(static_cast<uint16_t>(type), msg::kFlagEnd,
                               payload, static_cast<uint32_t>(type))) {
    if (NowMicros() > deadline) {
      throw std::runtime_error("catfish client: request ring stalled");
    }
    PumpPending();  // ring full: keep consuming responses meanwhile
    std::this_thread::yield();
  }
}

void RTreeClient::OnHeartbeatMessage(const msg::Heartbeat& hb) {
  controller_.OnHeartbeat(hb.cpu_util);
  ++stats_.heartbeats_received;
  if (cfg_.cache_internal_nodes &&
      (!cache_epoch_known_ || hb.tree_epoch != cached_epoch_)) {
    if (cache_epoch_known_ && !node_cache_.empty()) {
      ++stats_.cache_invalidations;
    }
    node_cache_.clear();
    cached_epoch_ = hb.tree_epoch;
    cache_epoch_known_ = true;
  }
}

void RTreeClient::PumpPending() {
  while (auto m = response_rx_->TryReceive()) {
    if (static_cast<msg::MsgType>(m->type) == msg::MsgType::kHeartbeat) {
      if (const auto hb = msg::DecodeHeartbeat(m->payload)) {
        OnHeartbeatMessage(*hb);
      }
      continue;
    }
    // A non-heartbeat with no request in flight is a protocol bug.
    throw std::logic_error("catfish client: unexpected response message");
  }
}

msg::Message RTreeClient::AwaitMessage() {
  const uint64_t deadline = NowMicros() + cfg_.request_timeout_us;
  for (;;) {
    if (auto m = response_rx_->TryReceive()) {
      if (static_cast<msg::MsgType>(m->type) == msg::MsgType::kHeartbeat) {
        if (const auto hb = msg::DecodeHeartbeat(m->payload)) {
          OnHeartbeatMessage(*hb);
        }
        continue;
      }
      return std::move(*m);
    }
    if (NowMicros() > deadline) {
      throw std::runtime_error("catfish client: response timed out");
    }
    std::this_thread::yield();
  }
}

std::vector<rtree::Entry> RTreeClient::SearchFast(const geo::Rect& rect) {
  PumpPending();
  const uint64_t req_id = ++next_req_id_;
  SendRequest(msg::MsgType::kSearchReq,
              msg::Encode(msg::SearchRequest{req_id, rect}));

  std::vector<rtree::Entry> results;
  for (;;) {
    const msg::Message m = AwaitMessage();
    if (static_cast<msg::MsgType>(m.type) != msg::MsgType::kSearchResp) {
      throw std::logic_error("catfish client: expected search response");
    }
    const auto seg = msg::DecodeSearchResponseSegment(m.payload);
    if (!seg || seg->req_id != req_id) {
      throw std::logic_error("catfish client: response id mismatch");
    }
    results.insert(results.end(), seg->entries.begin(), seg->entries.end());
    if (m.flags & msg::kFlagEnd) break;
  }
  ++stats_.fast_searches;
  return results;
}

std::vector<rtree::Entry> RTreeClient::NearestNeighbors(
    const geo::Point& point, uint32_t k) {
  PumpPending();
  const uint64_t req_id = ++next_req_id_;
  SendRequest(msg::MsgType::kKnnReq,
              msg::Encode(msg::KnnRequest{req_id, point, k}));

  std::vector<rtree::Entry> results;
  for (;;) {
    const msg::Message m = AwaitMessage();
    if (static_cast<msg::MsgType>(m.type) != msg::MsgType::kKnnResp) {
      throw std::logic_error("catfish client: expected knn response");
    }
    const auto seg = msg::DecodeSearchResponseSegment(m.payload);
    if (!seg || seg->req_id != req_id) {
      throw std::logic_error("catfish client: response id mismatch");
    }
    results.insert(results.end(), seg->entries.begin(), seg->entries.end());
    if (m.flags & msg::kFlagEnd) break;
  }
  ++stats_.fast_searches;
  return results;
}

void RTreeClient::PostNodeRead(rtree::ChunkId id, std::span<std::byte> buf,
                               uint64_t wr_id) {
  const rdma::RemoteAddr src{
      boot_.arena_mr.rkey,
      static_cast<uint64_t>(id) * boot_.chunk_size};
  if (!qp_->PostRead(wr_id, buf, src)) {
    throw std::runtime_error("catfish client: RDMA READ failed");
  }
  ++stats_.rdma_reads;
}

bool RTreeClient::TryDecodeNode(rtree::ChunkId id,
                                std::span<const std::byte> buf,
                                rtree::NodeData& out) {
  // Version check + decode (the read-write conflict detection, §III-B).
  if (!rtree::ValidateVersions(buf).has_value()) return false;
  std::byte payload[rtree::PayloadCapacity(rtree::kChunkSize)];
  rtree::GatherPayload(buf, payload);
  return rtree::DecodeNode(payload, out) && out.self == id;
}

void RTreeClient::ReadRemoteNode(rtree::ChunkId id, std::span<std::byte> buf,
                                 rtree::NodeData& out) {
  const uint64_t deadline = NowMicros() + cfg_.request_timeout_us;
  for (;;) {
    PostNodeRead(id, buf, ++next_wr_id_);
    rdma::WorkCompletion wc;
    while (send_cq_->Poll({&wc, 1}) == 0) {
      std::this_thread::yield();
    }
    if (wc.status != rdma::WcStatus::kSuccess) {
      throw std::runtime_error("catfish client: READ failed");
    }
    if (TryDecodeNode(id, buf, out)) return;
    ++stats_.version_retries;
    if (NowMicros() > deadline) {
      throw std::runtime_error("catfish client: node read livelock");
    }
  }
}

void RTreeClient::ProcessNode(const rtree::NodeData& node,
                              const geo::Rect& rect,
                              std::vector<rtree::Entry>& results,
                              std::vector<rtree::ChunkId>& next) {
  for (uint16_t i = 0; i < node.count; ++i) {
    const rtree::Entry& e = node.entries[i];
    if (!e.mbr.Intersects(rect)) continue;
    if (node.IsLeaf()) {
      results.push_back(e);
    } else {
      next.push_back(static_cast<rtree::ChunkId>(e.id));
    }
  }
}

std::vector<rtree::Entry> RTreeClient::SearchOffloaded(
    const geo::Rect& rect, rtree::TraversalTrace* trace) {
  PumpPending();
  if (trace) trace->nodes_per_level.clear();

  std::vector<rtree::Entry> results;
  std::vector<rtree::ChunkId> frontier{boot_.root};
  std::vector<rtree::ChunkId> next;
  std::vector<rtree::ChunkId> to_fetch;
  std::vector<std::vector<std::byte>> bufs;
  rtree::NodeData node;

  // Caching is only sound once a heartbeat supplied the epoch to
  // invalidate against (staleness is then bounded by the heartbeat
  // interval).
  const bool use_cache = cfg_.cache_internal_nodes && cache_epoch_known_;

  while (!frontier.empty()) {
    if (trace) {
      trace->nodes_per_level.push_back(
          static_cast<uint32_t>(frontier.size()));
    }
    next.clear();
    if (use_cache) {
      // Serve cached internal nodes without touching the wire.
      to_fetch.clear();
      for (const rtree::ChunkId id : frontier) {
        const auto it = node_cache_.find(id);
        if (it != node_cache_.end()) {
          ++stats_.cache_hits;
          ProcessNode(it->second, rect, results, next);
        } else {
          to_fetch.push_back(id);
        }
      }
      frontier.swap(to_fetch);
      if (frontier.empty()) {
        frontier.swap(next);
        continue;
      }
    }
    if (cfg_.multi_issue) {
      // §IV-C: post every READ of this round back-to-back so they
      // pipeline on the NICs and the wire, then consume completions as
      // they return. wr_id carries the frontier index; a torn read is
      // re-posted under the same id and resolves through the same loop.
      bufs.resize(frontier.size());
      for (size_t i = 0; i < frontier.size(); ++i) {
        bufs[i].resize(boot_.chunk_size);
        PostNodeRead(frontier[i], bufs[i], i);
      }
      size_t completed = 0;
      rdma::WorkCompletion wcs[16];
      while (completed < frontier.size()) {
        const size_t n = send_cq_->Poll(wcs);
        for (size_t k = 0; k < n; ++k) {
          if (wcs[k].status != rdma::WcStatus::kSuccess) {
            throw std::runtime_error("catfish client: READ failed");
          }
          const size_t i = static_cast<size_t>(wcs[k].wr_id);
          if (TryDecodeNode(frontier[i], bufs[i], node)) {
            ProcessNode(node, rect, results, next);
            if (use_cache && !node.IsLeaf()) node_cache_[frontier[i]] = node;
            ++completed;
          } else {
            ++stats_.version_retries;
            PostNodeRead(frontier[i], bufs[i], i);
          }
        }
        if (n == 0) std::this_thread::yield();
      }
    } else {
      // One READ at a time: every node access pays a full round trip
      // (the baseline that Fig. 8 compares against).
      bufs.resize(1);
      bufs[0].resize(boot_.chunk_size);
      for (const rtree::ChunkId id : frontier) {
        ReadRemoteNode(id, bufs[0], node);
        ProcessNode(node, rect, results, next);
        if (use_cache && !node.IsLeaf()) node_cache_[id] = node;
      }
    }
    frontier.swap(next);
  }
  ++stats_.offloaded_searches;
  return results;
}

std::vector<rtree::Entry> RTreeClient::Search(const geo::Rect& rect) {
  PumpPending();
  AccessMode mode;
  switch (cfg_.mode) {
    case ClientMode::kFastOnly:
      mode = AccessMode::kFastMessaging;
      break;
    case ClientMode::kOffloadOnly:
      mode = AccessMode::kRdmaOffloading;
      break;
    case ClientMode::kAdaptive:
    default:
      mode = controller_.NextMode(NowMicros());
      break;
  }
  last_mode_ = mode;
  return mode == AccessMode::kFastMessaging ? SearchFast(rect)
                                            : SearchOffloaded(rect);
}

bool RTreeClient::AwaitWriteAck(uint64_t req_id) {
  const msg::Message m = AwaitMessage();
  const auto t = static_cast<msg::MsgType>(m.type);
  if (t != msg::MsgType::kInsertAck && t != msg::MsgType::kDeleteAck) {
    throw std::logic_error("catfish client: expected write ack");
  }
  const auto ack = msg::DecodeWriteAck(m.payload);
  if (!ack || ack->req_id != req_id) {
    throw std::logic_error("catfish client: ack id mismatch");
  }
  return ack->ok != 0;
}

bool RTreeClient::Insert(const geo::Rect& rect, uint64_t id) {
  PumpPending();
  const uint64_t req_id = ++next_req_id_;
  SendRequest(msg::MsgType::kInsertReq,
              msg::Encode(msg::InsertRequest{req_id, rect, id}));
  ++stats_.inserts;
  return AwaitWriteAck(req_id);
}

bool RTreeClient::Delete(const geo::Rect& rect, uint64_t id) {
  PumpPending();
  const uint64_t req_id = ++next_req_id_;
  SendRequest(msg::MsgType::kDeleteReq,
              msg::Encode(msg::DeleteRequest{req_id, rect, id}));
  ++stats_.deletes;
  return AwaitWriteAck(req_id);
}

}  // namespace catfish

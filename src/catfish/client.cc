#include "catfish/client.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/clock.h"
#include "rtree/layout.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_wire.h"

namespace catfish {

namespace {

/// Write-session ids must never repeat within a server's dedup history;
/// a process-wide counter suffices in the single-process simulation
/// (every client object gets its own session).
std::atomic<uint64_t> g_next_client_gen{1};

/// Every response payload type leads with the request's req_id — the
/// hook the stale-response filter keys on.
uint64_t PayloadReqId(std::span<const std::byte> payload) {
  if (payload.size() < 8) {
    throw std::logic_error("catfish client: malformed response payload");
  }
  uint64_t id = 0;
  std::memcpy(&id, payload.data(), sizeof id);
  return id;
}

}  // namespace

const char* ToString(ClientStatus s) noexcept {
  switch (s) {
    case ClientStatus::kOk:
      return "ok";
    case ClientStatus::kTimedOut:
      return "timed_out";
    case ClientStatus::kRingStalled:
      return "ring_stalled";
    case ClientStatus::kDisconnected:
      return "disconnected";
    case ClientStatus::kTransportError:
      return "transport_error";
    case ClientStatus::kRetriesExhausted:
      return "retries_exhausted";
    case ClientStatus::kReconnectFailed:
      return "reconnect_failed";
    case ClientStatus::kOverloaded:
      return "overloaded";
    case ClientStatus::kDeadlineExpired:
      return "deadline_expired";
    case ClientStatus::kBreakerOpen:
      return "breaker_open";
  }
  return "unknown";
}

bool RTreeClient::BeginTrace(const char* name) {
  if (!cfg_.tracer || trace_) return false;
  trace_ = cfg_.tracer->StartTrace(name);
  if (!trace_) return false;
  trace_root_ = trace_->root();
  return true;
}

void RTreeClient::FinishTrace() {
  if (!trace_) return;
  cfg_.tracer->Finish(trace_);
  trace_.reset();
  trace_root_ = telemetry::kInvalidSpan;
}

RTreeClient::RTreeClient(std::shared_ptr<rdma::SimNode> node,
                         const HandshakeFn& shake, ClientConfig cfg)
    : node_(std::move(node)), cfg_(cfg),
      controller_(cfg.adaptive, cfg.seed),
      client_gen_(g_next_client_gen.fetch_add(1, std::memory_order_relaxed)),
      // Mix the write-session id into the jitter seeds: fleets often
      // construct their clients from one config, and identical seeds
      // are exactly the synchronized-retry-storm failure the jitter
      // exists to prevent.
      breaker_(cfg.breaker, cfg.seed ^ (client_gen_ << 1)),
      retry_jitter_(cfg.seed ^ client_gen_) {
  WireUp(shake);
}

void RTreeClient::WireUp(const HandshakeFn& shake) {
  send_cq_ = node_->CreateCq();
  recv_cq_ = node_->CreateCq();
  qp_ = node_->CreateQp(send_cq_, recv_cq_);

  response_ring_mem_.assign(cfg_.ring_capacity, std::byte{0});
  // The ack cell must restart at zero: the new server's RingSender
  // derives its head counter from it.
  request_ack_cell_.fill(std::byte{0});
  const auto ring_mr = node_->RegisterMemory(response_ring_mem_);
  const auto ack_mr = node_->RegisterMemory(request_ack_cell_);
  owned_mrs_.push_back(ring_mr);
  owned_mrs_.push_back(ack_mr);

  ClientBootstrap mine;
  mine.qp = qp_;
  mine.response_ring = rdma::RemoteAddr{ring_mr.rkey, 0};
  mine.response_ring_capacity = cfg_.ring_capacity;
  mine.request_ack_cell = rdma::RemoteAddr{ack_mr.rkey, 0};
  boot_ = shake(mine);

  request_tx_ = std::make_unique<msg::RingSender>(
      qp_, boot_.request_ring, boot_.request_ring_capacity,
      std::span<std::byte>(request_ack_cell_));
  response_rx_ = std::make_unique<msg::RingReceiver>(
      std::span<std::byte>(response_ring_mem_), qp_,
      boot_.response_ack_cell);

  // The offload path: one-sided READs of the server's arena, run by the
  // shared remote engine (read → validate versions → bounded retry).
  // Ring writes are unsignaled, so send_cq_ carries only READ
  // completions — exactly what the transport consumes.
  fetch_transport_ = std::make_unique<remote::QpFetchTransport>(
      qp_, send_cq_, rdma::RemoteAddr{boot_.arena_mr.rkey, 0},
      boot_.chunk_size);
  engine_ = std::make_unique<remote::VersionedFetchEngine>(
      fetch_transport_.get(), "rtree", cfg_.remote_retry);
  // Pooled fetch buffers: search rounds borrow chunk-sized scratch from
  // this bounded pool instead of allocating per level. On real verbs
  // the slab would be registered once here; the simulated NIC does not
  // require registered local buffers, so no MR is created for it.
  engine_->EnableScratch(boot_.chunk_size, cfg_.scratch_buffers);

  // A fresh connection counts as a heartbeat: the watchdog measures
  // silence from here.
  last_heartbeat_us_ = NowMicros();
}

void RTreeClient::WatchdogTick(uint64_t now_us) {
  if (!cfg_.watchdog.enabled) return;
  const uint64_t interval = cfg_.adaptive.heartbeat_interval_us;
  if (interval == 0) return;
  const uint64_t silence =
      now_us > last_heartbeat_us_ ? now_us - last_heartbeat_us_ : 0;
  // Absolute floor first: heartbeats delayed behind an overloaded
  // worker's backlog must read as "slow", not "dead" (gray failure).
  if (silence < cfg_.watchdog.min_silence_us) return;
  const uint64_t missed = silence / interval;
  ConnState next = ConnState::kConnected;
  if (missed >= cfg_.watchdog.disconnect_after) {
    next = ConnState::kDisconnected;
  } else if (missed >= cfg_.watchdog.suspect_after) {
    next = ConnState::kSuspect;
  }
  // The tick only escalates; de-escalation happens on heartbeat receipt
  // (OnHeartbeatMessage) or a successful Reconnect.
  if (static_cast<int>(next) <= static_cast<int>(conn_state_)) return;
  conn_state_ = next;
  ++stats_.watchdog_trips;
  if (next == ConnState::kSuspect) {
    CATFISH_COUNT("catfish.client.watchdog.suspect");
  } else {
    CATFISH_COUNT("catfish.client.watchdog.disconnected");
  }
  CATFISH_EVENT(kWatchdogTrip, now_us, 0,
                static_cast<double>(static_cast<int>(next)),
                static_cast<double>(missed));
}

void RTreeClient::Poll() {
  PumpPending();
  WatchdogTick(NowMicros());
}

void RTreeClient::EnsureUsable(bool fast_path) {
  WatchdogTick(NowMicros());
  if (conn_state_ != ConnState::kDisconnected) return;
  if (reconnect_shake_) {
    if (Reconnect() == ClientStatus::kOk) return;
    if (fast_path) {
      throw ClientError(ClientStatus::kReconnectFailed,
                        "catfish client: re-bootstrap failed");
    }
    // Degraded offload: keep serving one-sided reads from the
    // last-known arena; a dead fabric surfaces as a typed transport
    // error from the fetch engine, bounded by the retry policy.
    return;
  }
  if (fast_path) {
    throw ClientError(
        ClientStatus::kDisconnected,
        "catfish client: server declared dead by liveness watchdog");
  }
}

ClientStatus RTreeClient::Reconnect() {
  if (!reconnect_shake_) return ClientStatus::kReconnectFailed;
  [[maybe_unused]] const uint64_t began = NowMicros();
  [[maybe_unused]] const uint64_t old_generation = boot_.generation;
  qp_->Close();
  // The old ring's rkey stays registered; quarantine the memory so a
  // stale mapping can never dangle (see retired_ring_mem_).
  retired_ring_mem_.push_back(std::move(response_ring_mem_));
  try {
    WireUp(reconnect_shake_);
  } catch (const std::exception&) {
    // Still down. Stay Disconnected; the next operation retries.
    conn_state_ = ConnState::kDisconnected;
    CATFISH_COUNT("catfish.client.reconnect_failures");
    return ClientStatus::kReconnectFailed;
  }
  // Everything cached from the old incarnation is garbage now.
  node_cache_.clear();
  cached_epoch_ = 0;
  cache_epoch_known_ = false;
  conn_state_ = ConnState::kConnected;
  ++stats_.reconnects;
  CATFISH_COUNT("catfish.client.reconnects");
  CATFISH_EVENT(kReconnect, NowMicros(), boot_.generation,
                static_cast<double>(old_generation),
                static_cast<double>(NowMicros() - began));
  return ClientStatus::kOk;
}

void RTreeClient::FailDeadline(ClientStatus status,
                               [[maybe_unused]] bool ring_stalled,
                               const char* what) {
  ++stats_.timeouts;
  CATFISH_COUNT("catfish.client.timeouts");
  CATFISH_EVENT(kRequestTimeout, NowMicros(), 0, ring_stalled ? 1.0 : 0.0,
                static_cast<double>(cfg_.request_timeout_us));
  // A fast-path timeout is an overload signal like a shed reply: the
  // server is alive (the watchdog would have said otherwise) but not
  // keeping up.
  NoteFastFailure(NowMicros(), 0);
  throw ClientError(status, what);
}

void RTreeClient::ArmOpDeadline() {
  if (op_deadline_override_us_ != 0) {
    cur_deadline_us_ = op_deadline_override_us_;
  } else if (cfg_.op_deadline_us != 0) {
    cur_deadline_us_ = NowMicros() + cfg_.op_deadline_us;
  } else {
    cur_deadline_us_ = 0;
    return;
  }
  if (NowMicros() >= cur_deadline_us_) {
    FailDeadlineExpired("catfish client: op deadline expired before send");
  }
}

uint64_t RTreeClient::WaitDeadline(uint64_t now) const noexcept {
  const uint64_t flat = now + cfg_.request_timeout_us;
  return cur_deadline_us_ != 0 && cur_deadline_us_ < flat ? cur_deadline_us_
                                                          : flat;
}

void RTreeClient::FailDeadlineExpired(const char* what) {
  ++stats_.deadline_expired;
  CATFISH_COUNT("overload.client.deadline_expired");
  CATFISH_EVENT(kRequestTimeout, NowMicros(), client_gen_, 0.0,
                static_cast<double>(cur_deadline_us_));
  throw ClientError(ClientStatus::kDeadlineExpired, what);
}

void RTreeClient::AdmitFastOrThrow() {
  if (breaker_.Admit(NowMicros())) return;
  ++stats_.breaker_fast_fails;
  CATFISH_COUNT("breaker.fast_fails");
  throw ClientError(ClientStatus::kBreakerOpen,
                    "catfish client: circuit breaker open");
}

void RTreeClient::NoteFastFailure(uint64_t now_us, uint32_t server_hint_us) {
  if (!breaker_.OnFailure(now_us, server_hint_us)) return;
  ++stats_.breaker_opens;
  CATFISH_COUNT("breaker.opens");
  CATFISH_EVENT(kBreakerOpen, now_us, client_gen_,
                static_cast<double>(static_cast<int>(breaker_.state())),
                static_cast<double>(breaker_.last_open_window_us()));
}

RTreeClient::RTreeClient(std::shared_ptr<rdma::SimNode> node,
                         RTreeServer& server, ClientConfig cfg)
    : RTreeClient(std::move(node),
                  HandshakeFn([&server](const ClientBootstrap& mine) {
                    return server.AcceptConnection(mine);
                  }),
                  cfg) {}

RTreeClient::~RTreeClient() {
  // Close first so no new remote op can target our rings, then wait out
  // any write the server NIC already started: the ring and ack buffers
  // are members and die with us. Only our own registrations are retired
  // — the node may be shared with sibling clients (a sharded client
  // multiplexes one node), so DeregisterAll would yank theirs too and
  // let later registrations alias their rkeys.
  qp_->Close();
  for (const auto& mr : owned_mrs_) node_->Deregister(mr);
}

void RTreeClient::SendRequest(msg::MsgType type,
                              std::span<const std::byte> payload) {
  const uint64_t deadline = WaitDeadline(NowMicros());
  // Requests always use WRITE-with-IMM so the event-driven server wakes;
  // a polling server simply never looks at its recv CQ.
  while (!request_tx_->TrySend(static_cast<uint16_t>(type), msg::kFlagEnd,
                               payload, static_cast<uint32_t>(type))) {
    const uint64_t now = NowMicros();
    WatchdogTick(now);
    if (conn_state_ == ConnState::kDisconnected) {
      // Fail fast: the watchdog declared the server dead mid-send, so
      // spinning out the full request timeout would just burn it.
      throw ClientError(ClientStatus::kDisconnected,
                        "catfish client: server lost while sending request");
    }
    if (now > deadline) {
      if (cur_deadline_us_ != 0 && now >= cur_deadline_us_) {
        FailDeadlineExpired(
            "catfish client: op deadline expired in ring send");
      }
      FailDeadline(ClientStatus::kRingStalled, true,
                   "catfish client: request ring stalled");
    }
    PumpPending();  // ring full: keep consuming responses meanwhile
    std::this_thread::yield();
  }
}

void RTreeClient::OnHeartbeatMessage(const msg::Heartbeat& hb) {
  controller_.OnHeartbeat(hb.cpu_util);
  ++stats_.heartbeats_received;
  last_heartbeat_us_ = NowMicros();
  if (hb.map_version != 0 &&
      hb.map_version > advertised_map_version_.load(std::memory_order_relaxed)) {
    advertised_map_version_.store(hb.map_version, std::memory_order_relaxed);
  }
  if (hb.role != 0) {
    if (hb.epoch > advertised_repl_epoch_.load(std::memory_order_relaxed)) {
      advertised_repl_epoch_.store(hb.epoch, std::memory_order_relaxed);
    }
    if (hb.durable_lsn >
        advertised_durable_lsn_.load(std::memory_order_relaxed)) {
      advertised_durable_lsn_.store(hb.durable_lsn, std::memory_order_relaxed);
    }
  }
  if (conn_state_ != ConnState::kConnected) {
    // Liveness proof: the link recovered without a re-bootstrap (e.g. a
    // healed partition — same QP, same rings, same server generation).
    conn_state_ = ConnState::kConnected;
    CATFISH_COUNT("catfish.client.watchdog.recovered");
    CATFISH_EVENT(kWatchdogTrip, last_heartbeat_us_, 0, 0.0, 0.0);
  }
  CATFISH_COUNT("catfish.client.heartbeats");
  CATFISH_EVENT(kHeartbeat, NowMicros(), hb.seq, hb.cpu_util,
                static_cast<double>(hb.tree_epoch));
  if (cfg_.cache_internal_nodes &&
      (!cache_epoch_known_ || hb.tree_epoch != cached_epoch_)) {
    if (cache_epoch_known_ && !node_cache_.empty()) {
      ++stats_.cache_invalidations;
    }
    node_cache_.clear();
    cached_epoch_ = hb.tree_epoch;
    cache_epoch_known_ = true;
  }
}

void RTreeClient::OnTraceFrame(const msg::Message& m) {
  const auto tr = msg::DecodeTraceResponse(m.payload);
  if (!tr) return;
  trace_frame_req_ = tr->req_id;
  ++stats_.trace_frames;
  CATFISH_COUNT("catfish.client.trace_frames");
  if (tr->blob.empty()) return;  // tracer-less server: arrival only
  if (auto remote = telemetry::DecodeTrace(tr->blob)) {
    last_remote_tree_ =
        std::make_shared<telemetry::Trace>(std::move(*remote));
    last_remote_tree_req_ = tr->req_id;
  }
}

std::shared_ptr<telemetry::Trace> RTreeClient::TakeRemoteTree(
    uint64_t req_id) {
  if (!last_remote_tree_ || last_remote_tree_req_ != req_id) return nullptr;
  last_remote_tree_req_ = 0;
  return std::move(last_remote_tree_);
}

void RTreeClient::AwaitTraceFrame(uint64_t req_id) {
  const uint64_t deadline = NowMicros() + cfg_.request_timeout_us;
  while (trace_frame_req_ != req_id) {
    PumpPending();
    if (trace_frame_req_ == req_id) break;
    const uint64_t now = NowMicros();
    WatchdogTick(now);
    if (conn_state_ == ConnState::kDisconnected || now > deadline) {
      // Non-fatal: the results already arrived; only observability is
      // lost for this one request.
      CATFISH_COUNT("catfish.client.trace_frames_missed");
      return;
    }
    std::this_thread::yield();
  }
}

void RTreeClient::PumpPending() {
  while (auto m = response_rx_->TryReceive()) {
    if (static_cast<msg::MsgType>(m->type) == msg::MsgType::kHeartbeat) {
      if (const auto hb = msg::DecodeHeartbeat(m->payload)) {
        OnHeartbeatMessage(*hb);
      }
      continue;
    }
    if (static_cast<msg::MsgType>(m->type) == msg::MsgType::kTraceResp) {
      OnTraceFrame(*m);
      continue;
    }
    // No request is in flight, so this answers a req_id we gave up on —
    // typically the original ack of a write that was then retried (and
    // deduped server-side). Dropping it here is what makes retries safe.
    PayloadReqId(m->payload);  // malformed payloads still throw
    ++stats_.stale_responses;
    CATFISH_COUNT("catfish.client.stale_responses");
  }
}

msg::Message RTreeClient::AwaitMessage(uint64_t expected_req_id) {
  const uint64_t deadline = WaitDeadline(NowMicros());
  for (;;) {
    if (auto m = response_rx_->TryReceive()) {
      if (static_cast<msg::MsgType>(m->type) == msg::MsgType::kHeartbeat) {
        if (const auto hb = msg::DecodeHeartbeat(m->payload)) {
          OnHeartbeatMessage(*hb);
        }
        continue;
      }
      if (static_cast<msg::MsgType>(m->type) == msg::MsgType::kTraceResp) {
        // Never surfaced as a response, even on a req_id match: a write
        // retry reuses its req_id and the original's late trace frame
        // must not be handed to AwaitWriteAck.
        OnTraceFrame(*m);
        continue;
      }
      if (PayloadReqId(m->payload) != expected_req_id) {
        // A response to a superseded request (see PumpPending).
        ++stats_.stale_responses;
        CATFISH_COUNT("catfish.client.stale_responses");
        continue;
      }
      if (static_cast<msg::MsgType>(m->type) == msg::MsgType::kOverloaded) {
        // Admission control shed this request. Surface it as a typed
        // error and feed the breaker; the retry-after hint steers both
        // the breaker's open window and the write retry backoff.
        const auto ov = msg::DecodeOverloadReply(m->payload);
        last_retry_after_us_ = ov ? ov->retry_after_us : 0;
        ++stats_.overloaded;
        CATFISH_COUNT("overload.client.shed_replies");
        NoteFastFailure(NowMicros(), last_retry_after_us_);
        throw ClientError(ClientStatus::kOverloaded,
                          "catfish client: request shed by server");
      }
      return std::move(*m);
    }
    const uint64_t now = NowMicros();
    WatchdogTick(now);
    if (conn_state_ == ConnState::kDisconnected) {
      throw ClientError(
          ClientStatus::kDisconnected,
          "catfish client: server lost while awaiting response");
    }
    if (now > deadline) {
      if (cur_deadline_us_ != 0 && now >= cur_deadline_us_) {
        FailDeadlineExpired(
            "catfish client: op deadline expired awaiting response");
      }
      FailDeadline(ClientStatus::kTimedOut, false,
                   "catfish client: response timed out");
    }
    std::this_thread::yield();
  }
}

std::vector<rtree::Entry> RTreeClient::SearchFast(const geo::Rect& rect) {
  PumpPending();
  EnsureUsable(/*fast_path=*/true);
  ArmOpDeadline();
  AdmitFastOrThrow();
  CATFISH_SCOPED_TIMER_US("catfish.client.search_fast_us");
  const bool own_trace = BeginTrace("search.fast");
  const uint64_t req_id = ++next_req_id_;
  if (trace_) trace_->SetAttr(trace_root_, "req_id", req_id);

  // Wire context: a staged one (the sharded fan-out caller) wins;
  // otherwise an active local trace stamps itself so even a single-node
  // traced search gets the server's span tree grafted in.
  msg::TraceContext ctx = TakeStagedContext();
  const bool self_stamped = !ctx.present() && trace_ != nullptr;
  if (self_stamped) {
    ctx.trace_id = trace_->id();
    ctx.parent_span = trace_root_;
    ctx.sampled = 1;
  }

  auto write_span = telemetry::kInvalidSpan;
  if (trace_) {
    write_span = trace_->StartSpan(trace_root_, "ring_write",
                                   cfg_.tracer->now_us());
  }
  msg::SearchRequest sreq{req_id, rect, {}};
  sreq.trace = ctx;
  sreq.deadline_us = cur_deadline_us_;
  SendRequest(msg::MsgType::kSearchReq, msg::Encode(sreq));
  auto collect_span = telemetry::kInvalidSpan;
  if (trace_) {
    trace_->EndSpan(write_span, cfg_.tracer->now_us());
    collect_span = trace_->StartSpan(trace_root_, "collect_response",
                                     cfg_.tracer->now_us());
  }

  std::vector<rtree::Entry> results;
  uint64_t segments = 0;
  for (;;) {
    const msg::Message m = AwaitMessage(req_id);
    if (static_cast<msg::MsgType>(m.type) != msg::MsgType::kSearchResp) {
      throw std::logic_error("catfish client: expected search response");
    }
    const auto seg = msg::DecodeSearchResponseSegment(m.payload);
    if (!seg || seg->req_id != req_id) {
      throw std::logic_error("catfish client: response id mismatch");
    }
    ++segments;
    results.insert(results.end(), seg->entries.begin(), seg->entries.end());
    if (m.flags & msg::kFlagEnd) break;
  }
  if (ctx.present() && ctx.sampled) {
    AwaitTraceFrame(req_id);
    if (self_stamped) {
      if (const auto remote = TakeRemoteTree(req_id)) {
        trace_->Graft(trace_root_, *remote,
                      {{"shard", static_cast<int64_t>(boot_.shard_id)}});
      }
    }
  }
  ++stats_.fast_searches;
  CATFISH_COUNT("catfish.client.search.fast");
  breaker_.OnSuccess();
  if (trace_) {
    trace_->SetAttr(collect_span, "segments",
                    static_cast<int64_t>(segments));
    trace_->SetAttr(collect_span, "results",
                    static_cast<int64_t>(results.size()));
    trace_->EndSpan(collect_span, cfg_.tracer->now_us());
    trace_->SetAttr(trace_root_, "results",
                    static_cast<int64_t>(results.size()));
    if (own_trace) FinishTrace();
  }
  return results;
}

uint64_t RTreeClient::SearchFastBegin(const geo::Rect& rect) {
  PumpPending();
  EnsureUsable(/*fast_path=*/true);
  ArmOpDeadline();
  AdmitFastOrThrow();
  const uint64_t req_id = ++next_req_id_;
  const msg::TraceContext ctx = TakeStagedContext();
  begun_sampled_ = ctx.present() && ctx.sampled != 0;
  msg::SearchRequest sreq{req_id, rect, {}};
  sreq.trace = ctx;
  sreq.deadline_us = cur_deadline_us_;
  SendRequest(msg::MsgType::kSearchReq, msg::Encode(sreq));
  poll_req_id_ = req_id;
  poll_results_.clear();
  return req_id;
}

std::vector<rtree::Entry> RTreeClient::SearchFastCollect(uint64_t req_id) {
  // Adopt whatever a prior Poll already accumulated for this request.
  std::vector<rtree::Entry> results;
  if (poll_req_id_ == req_id) results = std::move(poll_results_);
  for (;;) {
    const msg::Message m = AwaitMessage(req_id);
    if (static_cast<msg::MsgType>(m.type) != msg::MsgType::kSearchResp) {
      throw std::logic_error("catfish client: expected search response");
    }
    const auto seg = msg::DecodeSearchResponseSegment(m.payload);
    if (!seg || seg->req_id != req_id) {
      throw std::logic_error("catfish client: response id mismatch");
    }
    results.insert(results.end(), seg->entries.begin(), seg->entries.end());
    if (m.flags & msg::kFlagEnd) break;
  }
  poll_req_id_ = 0;
  poll_results_.clear();
  if (begun_sampled_) {
    begun_sampled_ = false;
    AwaitTraceFrame(req_id);  // tree claimed by the caller (TakeRemoteTree)
  }
  ++stats_.fast_searches;
  CATFISH_COUNT("catfish.client.search.fast");
  breaker_.OnSuccess();
  return results;
}

bool RTreeClient::SearchFastPoll(uint64_t req_id,
                                 std::vector<rtree::Entry>& out) {
  if (poll_req_id_ != req_id) {
    throw std::logic_error("catfish client: poll without a matching begin");
  }
  while (auto m = response_rx_->TryReceive()) {
    const auto type = static_cast<msg::MsgType>(m->type);
    if (type == msg::MsgType::kHeartbeat) {
      if (const auto hb = msg::DecodeHeartbeat(m->payload)) {
        OnHeartbeatMessage(*hb);
      }
      continue;
    }
    if (type == msg::MsgType::kTraceResp) {
      OnTraceFrame(*m);
      continue;
    }
    if (PayloadReqId(m->payload) != req_id) {
      ++stats_.stale_responses;
      CATFISH_COUNT("catfish.client.stale_responses");
      continue;
    }
    if (type == msg::MsgType::kOverloaded) {
      const auto ov = msg::DecodeOverloadReply(m->payload);
      last_retry_after_us_ = ov ? ov->retry_after_us : 0;
      ++stats_.overloaded;
      CATFISH_COUNT("overload.client.shed_replies");
      NoteFastFailure(NowMicros(), last_retry_after_us_);
      poll_req_id_ = 0;
      poll_results_.clear();
      throw ClientError(ClientStatus::kOverloaded,
                        "catfish client: request shed by server");
    }
    if (type != msg::MsgType::kSearchResp) {
      throw std::logic_error("catfish client: expected search response");
    }
    const auto seg = msg::DecodeSearchResponseSegment(m->payload);
    if (!seg || seg->req_id != req_id) {
      throw std::logic_error("catfish client: response id mismatch");
    }
    poll_results_.insert(poll_results_.end(), seg->entries.begin(),
                         seg->entries.end());
    if (m->flags & msg::kFlagEnd) {
      out = std::move(poll_results_);
      poll_req_id_ = 0;
      poll_results_.clear();
      if (begun_sampled_) {
        begun_sampled_ = false;
        AwaitTraceFrame(req_id);
      }
      ++stats_.fast_searches;
      CATFISH_COUNT("catfish.client.search.fast");
      breaker_.OnSuccess();
      return true;
    }
  }
  // Nothing ready; keep the watchdog honest so a dead server surfaces
  // as kDisconnected instead of an infinite poll loop.
  WatchdogTick(NowMicros());
  if (conn_state_ == ConnState::kDisconnected) {
    poll_req_id_ = 0;
    poll_results_.clear();
    throw ClientError(ClientStatus::kDisconnected,
                      "catfish client: server lost while polling response");
  }
  return false;
}

void RTreeClient::SearchFastAbandon(uint64_t req_id) {
  if (poll_req_id_ != req_id) return;  // already finished or abandoned
  poll_req_id_ = 0;
  poll_results_.clear();
  begun_sampled_ = false;
  // Late frames for this req_id now fall through the normal stale-
  // response filter in PumpPending/AwaitMessage.
}

std::vector<rtree::Entry> RTreeClient::NearestNeighbors(
    const geo::Point& point, uint32_t k) {
  PumpPending();
  EnsureUsable(/*fast_path=*/true);
  ArmOpDeadline();
  AdmitFastOrThrow();
  const uint64_t req_id = ++next_req_id_;
  SendRequest(msg::MsgType::kKnnReq,
              msg::Encode(msg::KnnRequest{req_id, point, k}));

  std::vector<rtree::Entry> results;
  for (;;) {
    const msg::Message m = AwaitMessage(req_id);
    if (static_cast<msg::MsgType>(m.type) != msg::MsgType::kKnnResp) {
      throw std::logic_error("catfish client: expected knn response");
    }
    const auto seg = msg::DecodeSearchResponseSegment(m.payload);
    if (!seg || seg->req_id != req_id) {
      throw std::logic_error("catfish client: response id mismatch");
    }
    results.insert(results.end(), seg->entries.begin(), seg->entries.end());
    if (m.flags & msg::kFlagEnd) break;
  }
  ++stats_.fast_searches;
  breaker_.OnSuccess();
  return results;
}

bool RTreeClient::TryDecodeNode(rtree::ChunkId id,
                                std::span<const std::byte> buf,
                                rtree::NodeData& out) {
  // Version check + decode (the read-write conflict detection, §III-B).
  if (!rtree::ValidateVersions(buf).has_value()) return false;
  std::byte payload[rtree::PayloadCapacity(rtree::kChunkSize)];
  rtree::GatherPayload(buf, payload);
  return rtree::DecodeNode(payload, out) && out.self == id;
}

void RTreeClient::AccountEngineDelta(const remote::EngineStats& before) {
  const remote::EngineStats& now = engine_->stats();
  stats_.rdma_reads += now.reads - before.reads;
  const uint64_t retries = now.version_retries - before.version_retries;
  stats_.version_retries += retries;
  CATFISH_COUNT_ADD("catfish.client.version_retries", retries);
}

void RTreeClient::ProcessNode(const rtree::NodeData& node,
                              const geo::Rect& rect,
                              std::vector<rtree::Entry>& results,
                              std::vector<rtree::ChunkId>& next) {
  for (uint16_t i = 0; i < node.count; ++i) {
    const rtree::Entry& e = node.entries[i];
    if (!e.mbr.Intersects(rect)) continue;
    if (node.IsLeaf()) {
      results.push_back(e);
    } else {
      next.push_back(static_cast<rtree::ChunkId>(e.id));
    }
  }
}

std::vector<rtree::Entry> RTreeClient::SearchOffloaded(
    const geo::Rect& rect, rtree::TraversalTrace* trace) {
  PumpPending();
  EnsureUsable(/*fast_path=*/false);
  ArmOpDeadline();
  if (trace) trace->nodes_per_level.clear();
  CATFISH_SCOPED_TIMER_US("catfish.client.search_offload_us");
  const bool own_trace = BeginTrace("search.offload");
  const ClientStats before = stats_;

  std::vector<rtree::Entry> results;
  std::vector<rtree::ChunkId> frontier{boot_.root};
  std::vector<rtree::ChunkId> next;
  std::vector<rtree::ChunkId> to_fetch;
  rtree::NodeData node;

  // Caching is only sound once a heartbeat supplied the epoch to
  // invalidate against (staleness is then bounded by the heartbeat
  // interval).
  const bool use_cache = cfg_.cache_internal_nodes && cache_epoch_known_;

  int64_t level = 0;
  while (!frontier.empty()) {
    // The offload path has no server to shed for us, so the budget is
    // enforced between rounds: a deadline that expired mid-traversal
    // stops issuing READs for an answer nobody will use.
    if (cur_deadline_us_ != 0 && NowMicros() >= cur_deadline_us_) {
      FailDeadlineExpired(
          "catfish client: op deadline expired mid-offload");
    }
    if (trace) {
      trace->nodes_per_level.push_back(
          static_cast<uint32_t>(frontier.size()));
    }
    auto round_span = telemetry::kInvalidSpan;
    ClientStats round_before;
    if (trace_) {
      round_span = trace_->StartSpan(trace_root_, "offload_round",
                                     cfg_.tracer->now_us());
      trace_->SetAttr(round_span, "level", level);
      trace_->SetAttr(round_span, "frontier",
                      static_cast<int64_t>(frontier.size()));
      round_before = stats_;
    }
    const remote::EngineStats engine_round_before = engine_->stats();
    ++level;
    next.clear();
    if (use_cache) {
      // Serve cached internal nodes without touching the wire.
      to_fetch.clear();
      for (const rtree::ChunkId id : frontier) {
        const auto it = node_cache_.find(id);
        if (it != node_cache_.end()) {
          ++stats_.cache_hits;
          CATFISH_COUNT("catfish.client.cache_hits");
          ProcessNode(it->second, rect, results, next);
        } else {
          to_fetch.push_back(id);
        }
      }
      frontier.swap(to_fetch);
      if (frontier.empty()) {
        frontier.swap(next);
        continue;
      }
    }
    if (cfg_.multi_issue) {
      // §IV-C + doorbell batching: the engine stages every READ of this
      // round and rings one doorbell for the whole tree level, then
      // validates images in completion order; torn reads re-fetch under
      // the engine's bounded backoff. Images land in the engine's
      // pooled scratch — no per-level buffer allocation. Accepted nodes
      // are processed right in the validate callback.
      const auto st = engine_->FetchChunks(
          frontier, [&](size_t i, std::span<const std::byte> image) {
            if (!TryDecodeNode(frontier[i], image, node)) return false;
            ProcessNode(node, rect, results, next);
            if (use_cache && !node.IsLeaf()) node_cache_[frontier[i]] = node;
            return true;
          });
      if (st != remote::FetchStatus::kOk) {
        AccountEngineDelta(engine_round_before);
        throw ClientError(
            st == remote::FetchStatus::kTransportError
                ? ClientStatus::kTransportError
                : ClientStatus::kRetriesExhausted,
            std::string("catfish client: offloaded read failed: ") +
                remote::ToString(st));
      }
    } else {
      // One READ at a time: every node access pays a full round trip
      // (the baseline that Fig. 8 compares against). Buffers still come
      // from the pool — the comparison isolates batching, not malloc.
      for (const rtree::ChunkId id : frontier) {
        const auto st = engine_->FetchChunks(
            {&id, 1}, [&](size_t, std::span<const std::byte> image) {
              return TryDecodeNode(id, image, node);
            });
        if (st != remote::FetchStatus::kOk) {
          AccountEngineDelta(engine_round_before);
          throw ClientError(
              st == remote::FetchStatus::kTransportError
                  ? ClientStatus::kTransportError
                  : ClientStatus::kRetriesExhausted,
              std::string("catfish client: offloaded read failed: ") +
                  remote::ToString(st));
        }
        ProcessNode(node, rect, results, next);
        if (use_cache && !node.IsLeaf()) node_cache_[id] = node;
      }
    }
    AccountEngineDelta(engine_round_before);
    if (trace_) {
      trace_->SetAttr(
          round_span, "reads",
          static_cast<int64_t>(stats_.rdma_reads - round_before.rdma_reads));
      trace_->SetAttr(round_span, "version_retries",
                      static_cast<int64_t>(stats_.version_retries -
                                           round_before.version_retries));
      trace_->SetAttr(
          round_span, "cache_hits",
          static_cast<int64_t>(stats_.cache_hits - round_before.cache_hits));
      trace_->EndSpan(round_span, cfg_.tracer->now_us());
    }
    frontier.swap(next);
  }
  ++stats_.offloaded_searches;
  CATFISH_COUNT("catfish.client.search.offload");
  if (trace_) {
    trace_->SetAttr(trace_root_, "rdma_reads",
                    static_cast<int64_t>(stats_.rdma_reads -
                                         before.rdma_reads));
    trace_->SetAttr(trace_root_, "version_retries",
                    static_cast<int64_t>(stats_.version_retries -
                                         before.version_retries));
    trace_->SetAttr(trace_root_, "cache_hits",
                    static_cast<int64_t>(stats_.cache_hits -
                                         before.cache_hits));
    trace_->SetAttr(trace_root_, "results",
                    static_cast<int64_t>(results.size()));
    if (own_trace) FinishTrace();
  }
  return results;
}

std::vector<rtree::Entry> RTreeClient::Search(const geo::Rect& rect) {
  PumpPending();
  EnsureUsable(/*fast_path=*/false);
  const bool own_trace = BeginTrace("search");
  auto decide_span = telemetry::kInvalidSpan;
  if (own_trace) {
    decide_span =
        trace_->StartSpan(trace_root_, "decide", cfg_.tracer->now_us());
  }
  AccessMode mode;
  switch (cfg_.mode) {
    case ClientMode::kFastOnly:
      mode = AccessMode::kFastMessaging;
      break;
    case ClientMode::kOffloadOnly:
      mode = AccessMode::kRdmaOffloading;
      break;
    case ClientMode::kAdaptive:
    default:
      mode = controller_.NextMode(NowMicros());
      break;
  }
  // Degraded routing: with the watchdog tripped, the ring path would
  // only burn its deadline against a silent server — one-sided reads of
  // the last-known arena are the only useful work left.
  if (conn_state_ != ConnState::kConnected) {
    mode = AccessMode::kRdmaOffloading;
  }
  // Breaker-open routing: an overloaded server is still serving
  // one-sided READs (they cost it no CPU), so an adaptive search
  // brownouts to offloading instead of failing fast. Uses the const
  // peek — the half-open probe slot belongs to callers with no
  // alternative path (writes, forced SearchFast).
  if (mode == AccessMode::kFastMessaging &&
      breaker_.WouldReject(NowMicros())) {
    ++stats_.breaker_fast_fails;
    CATFISH_COUNT("breaker.search_brownouts");
    mode = AccessMode::kRdmaOffloading;
  }
  // Mode-switch counting lives in AdaptiveController::Record (the
  // adaptive.mode_switches counter + kModeSwitch flight-recorder event).
  last_mode_ = mode;
  if (own_trace) {
    trace_->SetAttr(decide_span, "mode",
                    mode == AccessMode::kRdmaOffloading ? 1 : 0);
    trace_->SetAttr(decide_span, "r_busy",
                    static_cast<int64_t>(controller_.r_busy()));
    trace_->SetAttr(decide_span, "r_off",
                    static_cast<int64_t>(controller_.r_off()));
    trace_->EndSpan(decide_span, cfg_.tracer->now_us());
    trace_->SetAttr(trace_root_, "mode",
                    mode == AccessMode::kRdmaOffloading ? 1 : 0);
  }
  std::vector<rtree::Entry> results = mode == AccessMode::kFastMessaging
                                          ? SearchFast(rect)
                                          : SearchOffloaded(rect);
  if (own_trace) FinishTrace();
  return results;
}

bool RTreeClient::AwaitWriteAck(uint64_t req_id) {
  const msg::Message m = AwaitMessage(req_id);
  const auto t = static_cast<msg::MsgType>(m.type);
  if (t != msg::MsgType::kInsertAck && t != msg::MsgType::kDeleteAck) {
    throw std::logic_error("catfish client: expected write ack");
  }
  const auto ack = msg::DecodeWriteAck(m.payload);
  if (!ack || ack->req_id != req_id) {
    throw std::logic_error("catfish client: ack id mismatch");
  }
  return ack->ok != 0;
}

bool RTreeClient::ExecuteWrite(msg::MsgType type,
                               const std::vector<std::byte>& payload,
                               uint64_t req_id) {
  // The request carries (client_gen_, req_id), so resending the same
  // bytes is idempotent: the server's durable dedup table re-acks an
  // already-applied write instead of applying it twice. Retries that
  // find the watchdog tripped re-bootstrap first; an ack that was
  // already applied-but-unacked before the crash is reconstructed from
  // the recovered WAL.
  for (uint32_t attempt = 1;; ++attempt) {
    try {
      // Re-bootstrap first when the watchdog already declared the server
      // dead (throws kReconnectFailed while the new incarnation is still
      // coming up — retried below like any transient failure).
      EnsureUsable(/*fast_path=*/true);
      AdmitFastOrThrow();
      SendRequest(type, payload);
      const bool ok = AwaitWriteAck(req_id);
      breaker_.OnSuccess();
      return ok;
    } catch (const ClientError& e) {
      // A shed write is retryable only while the server hands out a
      // retry-after hint; hint 0 means the request's own deadline had
      // expired on arrival, so a resend would just be shed again.
      const bool retryable =
          e.status() == ClientStatus::kTimedOut ||
          e.status() == ClientStatus::kRingStalled ||
          e.status() == ClientStatus::kDisconnected ||
          e.status() == ClientStatus::kReconnectFailed ||
          (e.status() == ClientStatus::kOverloaded &&
           last_retry_after_us_ != 0);
      if (!retryable || attempt >= cfg_.write_attempts) throw;
      ++stats_.write_retries;
      CATFISH_COUNT("catfish.client.write_retries");
      // Jittered capped-exponential backoff: a restarting server needs
      // a moment before its acceptor answers, and a fleet retrying a
      // shed burst must not re-arrive in lockstep. The server's
      // retry-after hint sets the floor after a shed.
      uint64_t wait_us = JitteredBackoff(
          retry_jitter_, attempt, cfg_.adaptive.heartbeat_interval_us,
          cfg_.adaptive.heartbeat_interval_us * 8);
      if (e.status() == ClientStatus::kOverloaded &&
          wait_us < last_retry_after_us_) {
        wait_us = last_retry_after_us_;
      }
      // Never sleep past the op budget — surface the expiry now.
      if (cur_deadline_us_ != 0 &&
          NowMicros() + wait_us >= cur_deadline_us_) {
        FailDeadlineExpired(
            "catfish client: op deadline expired in write retry");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
    }
  }
}

bool RTreeClient::Insert(const geo::Rect& rect, uint64_t id) {
  PumpPending();
  EnsureUsable(/*fast_path=*/true);
  ArmOpDeadline();
  const uint64_t req_id = ++next_req_id_;
  ++stats_.inserts;
  CATFISH_COUNT("catfish.client.insert");
  msg::InsertRequest req{req_id, client_gen_, rect, id, {}};
  req.trace = TakeStagedContext();
  req.deadline_us = cur_deadline_us_;
  const bool ok =
      ExecuteWrite(msg::MsgType::kInsertReq, msg::Encode(req), req_id);
  // The retry path resends identical bytes, so a retried sampled write
  // still yields (at least) one trace frame for this req_id.
  if (req.trace.present() && req.trace.sampled) AwaitTraceFrame(req_id);
  return ok;
}

bool RTreeClient::Delete(const geo::Rect& rect, uint64_t id) {
  PumpPending();
  EnsureUsable(/*fast_path=*/true);
  ArmOpDeadline();
  const uint64_t req_id = ++next_req_id_;
  ++stats_.deletes;
  CATFISH_COUNT("catfish.client.delete");
  msg::DeleteRequest req{req_id, client_gen_, rect, id, {}};
  req.trace = TakeStagedContext();
  req.deadline_us = cur_deadline_us_;
  const bool ok =
      ExecuteWrite(msg::MsgType::kDeleteReq, msg::Encode(req), req_id);
  if (req.trace.present() && req.trace.sampled) AwaitTraceFrame(req_id);
  return ok;
}

}  // namespace catfish

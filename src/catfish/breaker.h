// Per-connection circuit breaker (overload-protection layer).
//
// When the server starts shedding (kOverloaded replies) or timing out,
// continuing to push requests at it only deepens its queue — and a
// client blocked in a 30 s timeout is itself a casualty. The breaker
// watches the recent failure pattern on one connection and trips
// Closed → Open after a run of overload signals: while Open, fast-path
// requests fail immediately with kBreakerOpen (no ring write, no
// wait). After a jittered open window the breaker admits probe
// requests (Half-open); enough successes close it, another failure
// re-opens it with an escalated window. The jitter matters: 256
// clients tripped by the same burst must not re-probe in lockstep.
//
// Like the rest of RTreeClient this is single-threaded — one owner
// thread calls Admit/OnSuccess/OnFailure in program order.
#pragma once

#include <cstdint>

#include "common/backoff.h"

namespace catfish {

struct BreakerConfig {
  /// Off by default, like the watchdog: a breaker that trips on test
  /// rigs with deliberately slow servers would mask what the test is
  /// trying to observe. The sharded client and the overload benches
  /// turn it on.
  bool enabled = false;
  /// Consecutive overload signals (kOverloaded replies or fast-path
  /// timeouts) before Closed → Open.
  uint32_t failure_threshold = 5;
  /// Open-window ceiling for the first trip; doubles per consecutive
  /// re-open (capped), jittered to [ceiling/2, ceiling].
  uint64_t open_initial_us = 10'000;
  uint64_t open_max_us = 1'000'000;
  /// Probe successes required in Half-open before closing again.
  uint32_t half_open_probes = 1;
};

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker(const BreakerConfig& cfg, uint64_t seed) noexcept
      : cfg_(cfg), jitter_(seed) {}

  /// Gate for one fast-path request. Closed/Half-open admit; Open
  /// rejects until the window elapses, then flips to Half-open and
  /// admits the probe. A rejection is counted in fast_fails().
  bool Admit(uint64_t now_us) noexcept {
    if (!cfg_.enabled || state_ == State::kClosed) return true;
    if (state_ == State::kOpen) {
      if (now_us < open_until_us_) {
        ++fast_fails_;
        return false;
      }
      state_ = State::kHalfOpen;
      probes_left_ = cfg_.half_open_probes > 0 ? cfg_.half_open_probes : 1;
    }
    return true;  // half-open: let the probe through
  }

  /// A fast-path request completed normally.
  void OnSuccess() noexcept {
    if (!cfg_.enabled) return;
    consecutive_failures_ = 0;
    if (state_ == State::kHalfOpen && --probes_left_ == 0) {
      state_ = State::kClosed;
      open_streak_ = 0;
    }
  }

  /// A fast-path request was shed or timed out. `server_hint_us` is
  /// the kOverloaded retry-after (0 when the failure was a timeout);
  /// the open window never undercuts it. Returns true when this call
  /// tripped the breaker into Open (caller records the event).
  bool OnFailure(uint64_t now_us, uint32_t server_hint_us = 0) noexcept {
    if (!cfg_.enabled) return false;
    ++consecutive_failures_;
    const bool trip =
        state_ == State::kHalfOpen ||
        (state_ == State::kClosed &&
         consecutive_failures_ >= cfg_.failure_threshold);
    if (!trip) return false;
    ++open_streak_;
    ++opens_;
    last_open_window_us_ = JitteredBackoff(
        jitter_, open_streak_, cfg_.open_initial_us, cfg_.open_max_us);
    if (last_open_window_us_ < server_hint_us) {
      last_open_window_us_ = server_hint_us;
    }
    open_until_us_ = now_us + last_open_window_us_;
    state_ = State::kOpen;
    consecutive_failures_ = 0;
    return true;
  }

  /// Const peek: would Admit() reject right now? No state change — the
  /// adaptive Search uses it to degrade to offloading instead of
  /// consuming the half-open probe slot on a path that has one.
  bool WouldReject(uint64_t now_us) const noexcept {
    return cfg_.enabled && state_ == State::kOpen && now_us < open_until_us_;
  }

  State state() const noexcept {
    return cfg_.enabled ? state_ : State::kClosed;
  }
  uint64_t open_until_us() const noexcept { return open_until_us_; }
  uint64_t last_open_window_us() const noexcept {
    return last_open_window_us_;
  }
  /// Transitions into Open / requests rejected while Open.
  uint64_t opens() const noexcept { return opens_; }
  uint64_t fast_fails() const noexcept { return fast_fails_; }

 private:
  BreakerConfig cfg_;
  JitterState jitter_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t probes_left_ = 0;
  uint32_t open_streak_ = 0;  ///< consecutive opens without a close
  uint64_t open_until_us_ = 0;
  uint64_t last_open_window_us_ = 0;
  uint64_t opens_ = 0;
  uint64_t fast_fails_ = 0;
};

}  // namespace catfish

#include "catfish/server.h"

#include <algorithm>
#include <chrono>

#include "common/bytes.h"
#include "common/clock.h"
#include "durable/manager.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_wire.h"

namespace catfish {

using namespace std::chrono_literals;

RTreeServer::RTreeServer(std::shared_ptr<rdma::SimNode> node,
                         rtree::RStarTree& tree, ServerConfig cfg)
    : node_(std::move(node)), tree_(&tree), cfg_(cfg) {
  // Register the whole arena once (paper §III-B: registration is costly,
  // so the region is sized for the full tree and registered up front).
  arena_mr_ = node_->RegisterMemory(tree_->arena().memory());
  cores_ = cfg_.cores != 0 ? cfg_.cores
                           : std::max(1u, std::thread::hardware_concurrency());
  monitor_ = std::thread([this] { MonitorLoop(); });
}

RTreeServer::~RTreeServer() {
  Stop();
  // Full teardown: flush the connections. Stop() deliberately leaves
  // them open — one-sided READs are served by the NIC and keep working
  // with the server threads gone, which is the property offloading
  // builds on.
  const std::scoped_lock lock(conns_mu_);
  for (auto& conn : conns_) conn->qp->Close();
  // The ring/ack buffers are Connection members and die with us, but a
  // client-side ring ack is a one-sided WRITE the peer NIC may already
  // be serving: deregistration waits those copies out (sim
  // ibv_dereg_mr), so a late write fails with kRemoteAccessError
  // instead of landing in freed memory. Per-region, not DeregisterAll —
  // on a promotion the node survives and hosts the successor server's
  // registrations.
  for (auto& conn : conns_) {
    node_->Deregister(conn->ring_mr);
    node_->Deregister(conn->ack_mr);
  }
  // arena_mr_ stays registered: the arena is owned by our creator and
  // outlives us, and degraded clients may still serve one-sided reads
  // from it until the node itself is invalidated.
}

void RTreeServer::Stop() {
  if (stop_.exchange(true)) return;
  if (monitor_.joinable()) monitor_.join();
  const std::scoped_lock lock(conns_mu_);
  for (auto& conn : conns_) {
    if (conn->worker.joinable()) conn->worker.join();
  }
}

ServerBootstrap RTreeServer::AcceptConnection(const ClientBootstrap& client) {
  auto conn = std::make_unique<Connection>();
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->send_cq = node_->CreateCq();
  conn->recv_cq = node_->CreateCq();
  conn->qp = node_->CreateQp(conn->send_cq, conn->recv_cq);
  rdma::QueuePair::Connect(conn->qp, client.qp);

  conn->request_ring_mem.assign(cfg_.ring_capacity, std::byte{0});
  conn->ring_mr = node_->RegisterMemory(conn->request_ring_mem);
  conn->ack_mr = node_->RegisterMemory(conn->response_ack_cell);
  const auto ring_mr = conn->ring_mr;
  const auto ack_mr = conn->ack_mr;

  conn->request_rx = std::make_unique<msg::RingReceiver>(
      std::span<std::byte>(conn->request_ring_mem), conn->qp,
      client.request_ack_cell);
  conn->response_tx = std::make_unique<msg::RingSender>(
      conn->qp, client.response_ring, client.response_ring_capacity,
      std::span<std::byte>(conn->response_ack_cell));

  ServerBootstrap boot;
  boot.arena_mr = arena_mr_;
  boot.request_ring = rdma::RemoteAddr{ring_mr.rkey, 0};
  boot.request_ring_capacity = cfg_.ring_capacity;
  boot.response_ack_cell = rdma::RemoteAddr{ack_mr.rkey, 0};
  boot.root = tree_->root();
  boot.chunk_size = tree_->arena().chunk_size();
  boot.tree_height = tree_->height();
  boot.generation = node_->generation();
  boot.repl_role = cfg_.repl_role;
  boot.repl_epoch = cfg_.repl_epoch
                        ? cfg_.repl_epoch->load(std::memory_order_relaxed)
                        : 0;

  Connection* raw = conn.get();
  {
    const std::scoped_lock lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
  raw->worker = std::thread([this, raw] { WorkerLoop(*raw); });
  return boot;
}

void RTreeServer::SendResponse(Connection& conn, msg::MsgType type,
                               uint16_t flags,
                               std::span<const std::byte> payload) {
  // Retry until the ring has space; the client's ack opens it up. Give up
  // only on shutdown.
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      const std::scoped_lock lock(conn.send_mu);
      if (conn.response_tx->TrySend(static_cast<uint16_t>(type), flags,
                                    payload)) {
        return;
      }
    }
    std::this_thread::yield();
  }
}

bool RTreeServer::ShedIfNeeded(Connection& conn, uint64_t req_id,
                               uint64_t picked_up_us, uint64_t deadline_us) {
  const uint64_t now = NowMicros();
  const uint64_t queued_us = now > picked_up_us ? now - picked_up_us : 0;
  // Pending-work gauge: EWMA (α = 1/8) of the dequeue delay, fed by
  // every request whether or not shedding is armed.
  const uint64_t prev = queue_delay_ewma_us_.load(std::memory_order_relaxed);
  queue_delay_ewma_us_.store(prev - prev / 8 + queued_us / 8,
                             std::memory_order_relaxed);

  // An expired deadline is dead work regardless of load: the client
  // (or its shard parent) stopped waiting. Reply with hint 0 — "do not
  // retry" — so the typed error surfaces instead of a silent drop.
  if (deadline_us != 0 && now >= deadline_us) {
    deadline_drops_.fetch_add(1, std::memory_order_relaxed);
    CATFISH_COUNT("overload.server.deadline_drops");
    CATFISH_EVENT(kShed, now, req_id, 0.0, 0.0);
    msg::EncodeInto(msg::OverloadReply{req_id, 0}, conn.ack_scratch);
    SendResponse(conn, msg::MsgType::kOverloaded, msg::kFlagEnd,
                 conn.ack_scratch);
    return true;
  }
  if (!cfg_.admission.enabled) return false;
  if (queued_us < cfg_.admission.max_queue_delay_us) return false;
  // Both signals must agree: queue delay says this worker fell behind,
  // the utilization window says the whole box is saturated (a single
  // big batch under light load is not overload). The test override
  // feeds the same gate so tests drive shedding deterministically.
  const double ov = util_override_.load(std::memory_order_relaxed);
  const double util =
      ov >= 0.0 ? ov : utilization_.load(std::memory_order_relaxed);
  if (util < cfg_.admission.min_utilization) return false;

  // Backlog-scaled hint: the deeper this frame sat in the queue, the
  // longer a retry needs before it would find space.
  const uint64_t hint =
      std::clamp(queued_us * 2, cfg_.admission.retry_after_min_us,
                 cfg_.admission.retry_after_max_us);
  sheds_.fetch_add(1, std::memory_order_relaxed);
  CATFISH_COUNT("overload.server.sheds");
  CATFISH_EVENT(kShed, now, req_id, static_cast<double>(queued_us),
                static_cast<double>(hint));
  msg::EncodeInto(msg::OverloadReply{req_id, static_cast<uint32_t>(hint)},
                  conn.ack_scratch);
  SendResponse(conn, msg::MsgType::kOverloaded, msg::kFlagEnd,
               conn.ack_scratch);
  return true;
}

void RTreeServer::HandleMessage(Connection& conn, const msg::Message& m,
                                uint64_t picked_up_us) {
  CATFISH_SCOPED_TIMER_US("catfish.server.service_us");
  // One server-side span tree per request. A request carrying a sampled
  // wire trace context forces a trace (the client already made the
  // sampling decision); the finished tree travels back in a kTraceResp
  // frame right after the response, so the client can graft it into its
  // distributed trace. Context-free requests keep the old behavior:
  // locally sampled, joined by req_id.
  std::shared_ptr<telemetry::Trace> trace;
  msg::TraceContext ctx;
  uint64_t ctx_req_id = 0;

  const auto start_trace = [&](const msg::TraceContext& c, uint64_t req_id) {
    ctx = c;
    ctx_req_id = req_id;
    if (!cfg_.tracer) return;
    trace = c.sampled ? cfg_.tracer->StartTraceForced("server.request")
                      : cfg_.tracer->StartTrace("server.request");
    if (!trace) return;
    trace->SetAttr(trace->root(), "req_id", static_cast<int64_t>(req_id));
    if (c.present()) {
      trace->SetAttr(trace->root(), "ctx_trace_id",
                     static_cast<int64_t>(c.trace_id));
      trace->SetAttr(trace->root(), "parent_span",
                     static_cast<int64_t>(c.parent_span));
    }
    // The ring-dequeue stage: worker wakeup (or poll pickup) → decode.
    const auto dq = trace->StartSpan(trace->root(), "dequeue", picked_up_us);
    trace->EndSpan(dq, cfg_.tracer->now_us());
  };
  const auto span_begin = [&](const char* name) {
    return trace ? trace->StartSpan(trace->root(), name,
                                    cfg_.tracer->now_us())
                 : telemetry::kInvalidSpan;
  };
  const auto span_end = [&](telemetry::SpanId id) {
    if (trace) trace->EndSpan(id, cfg_.tracer->now_us());
  };
  const auto set_attr = [&](const char* key, int64_t v) {
    if (trace) trace->SetAttr(trace->root(), key, v);
  };
  const auto maybe_delay = [&] {
    const uint64_t d = service_delay_us_.load(std::memory_order_relaxed);
    if (d != 0) std::this_thread::sleep_for(std::chrono::microseconds(d));
  };

  switch (static_cast<msg::MsgType>(m.type)) {
    case msg::MsgType::kSearchReq: {
      const auto req = msg::DecodeSearchRequest(m.payload);
      if (!req) break;
      if (ShedIfNeeded(conn, req->req_id, picked_up_us, req->deadline_us)) {
        break;
      }
      start_trace(req->trace, req->req_id);
      std::vector<rtree::Entry> results;
      const auto traverse = span_begin("traverse");
      maybe_delay();
      tree_->Search(req->rect, results);
      span_end(traverse);
      searches_.fetch_add(1, std::memory_order_relaxed);
      CATFISH_COUNT("catfish.server.search");
      msg::EncodeSearchResponseInto(req->req_id, results,
                                    conn.response_tx->MaxPayload(),
                                    conn.seg_scratch);
      const auto& segments = conn.seg_scratch;
      CATFISH_COUNT_ADD("catfish.server.segments", segments.size());
      set_attr("results", static_cast<int64_t>(results.size()));
      set_attr("segments", static_cast<int64_t>(segments.size()));
      const auto respond = span_begin("respond");
      for (size_t i = 0; i < segments.size(); ++i) {
        const uint16_t flags =
            i + 1 < segments.size() ? msg::kFlagCont : msg::kFlagEnd;
        SendResponse(conn, msg::MsgType::kSearchResp, flags, segments[i]);
      }
      span_end(respond);
      break;
    }
    case msg::MsgType::kKnnReq: {
      const auto req = msg::DecodeKnnRequest(m.payload);
      if (!req) break;
      if (ShedIfNeeded(conn, req->req_id, picked_up_us, 0)) break;
      start_trace({}, req->req_id);
      std::vector<rtree::Entry> results;
      const auto traverse = span_begin("traverse");
      maybe_delay();
      tree_->NearestNeighbors(req->point, req->k, results);
      span_end(traverse);
      searches_.fetch_add(1, std::memory_order_relaxed);
      CATFISH_COUNT("catfish.server.search");
      msg::EncodeSearchResponseInto(req->req_id, results,
                                    conn.response_tx->MaxPayload(),
                                    conn.seg_scratch);
      const auto& segments = conn.seg_scratch;
      CATFISH_COUNT_ADD("catfish.server.segments", segments.size());
      set_attr("results", static_cast<int64_t>(results.size()));
      set_attr("segments", static_cast<int64_t>(segments.size()));
      const auto respond = span_begin("respond");
      for (size_t i = 0; i < segments.size(); ++i) {
        const uint16_t flags =
            i + 1 < segments.size() ? msg::kFlagCont : msg::kFlagEnd;
        SendResponse(conn, msg::MsgType::kKnnResp, flags, segments[i]);
      }
      span_end(respond);
      break;
    }
    case msg::MsgType::kInsertReq: {
      const auto req = msg::DecodeInsertRequest(m.payload);
      if (!req) break;
      if (ShedIfNeeded(conn, req->req_id, picked_up_us, req->deadline_us)) {
        break;
      }
      start_trace(req->trace, req->req_id);
      const auto traverse = span_begin("traverse");
      maybe_delay();
      uint8_t ok = 1;
      if (cfg_.durability) {
        const auto res = cfg_.durability->ExecuteInsert(
            *tree_, req->client_gen, req->req_id, req->rect, req->rect_id,
            trace.get(), traverse);
        ok = res.ok ? 1 : 0;
        set_attr("duplicate", res.duplicate ? 1 : 0);
      } else {
        tree_->Insert(req->rect, req->rect_id);
      }
      span_end(traverse);
      inserts_.fetch_add(1, std::memory_order_relaxed);
      CATFISH_COUNT("catfish.server.insert");
      msg::EncodeInto(msg::WriteAck{req->req_id, ok}, conn.ack_scratch);
      const auto respond = span_begin("respond");
      SendResponse(conn, msg::MsgType::kInsertAck, msg::kFlagEnd,
                   conn.ack_scratch);
      span_end(respond);
      break;
    }
    case msg::MsgType::kDeleteReq: {
      const auto req = msg::DecodeDeleteRequest(m.payload);
      if (!req) break;
      if (ShedIfNeeded(conn, req->req_id, picked_up_us, req->deadline_us)) {
        break;
      }
      start_trace(req->trace, req->req_id);
      const auto traverse = span_begin("traverse");
      maybe_delay();
      bool ok;
      if (cfg_.durability) {
        const auto res = cfg_.durability->ExecuteDelete(
            *tree_, req->client_gen, req->req_id, req->rect, req->rect_id,
            trace.get(), traverse);
        ok = res.ok;
        set_attr("duplicate", res.duplicate ? 1 : 0);
      } else {
        ok = tree_->Delete(req->rect, req->rect_id);
      }
      span_end(traverse);
      deletes_.fetch_add(1, std::memory_order_relaxed);
      CATFISH_COUNT("catfish.server.delete");
      msg::EncodeInto(msg::WriteAck{req->req_id, ok ? uint8_t{1} : uint8_t{0}},
                      conn.ack_scratch);
      const auto respond = span_begin("respond");
      SendResponse(conn, msg::MsgType::kDeleteAck, msg::kFlagEnd,
                   conn.ack_scratch);
      span_end(respond);
      break;
    }
    default:
      break;  // unknown/unexpected types are dropped
  }
  if (trace) cfg_.tracer->Finish(trace);
  if (ctx.present() && ctx.sampled) {
    // Always reply — even with an empty tree when this server has no
    // tracer (or telemetry is compiled out) — so the client's wait for
    // the trace frame on the FIFO ring is deterministic.
    auto& buf = conn.trace_scratch;
    buf.clear();
    buf.resize(sizeof(uint64_t));
    StorePod(std::span<std::byte>(buf), 0, ctx_req_id);
    if (trace) telemetry::EncodeTrace(*trace, buf);
    SendResponse(conn, msg::MsgType::kTraceResp, msg::kFlagEnd, buf);
  }
}

void RTreeServer::WorkerLoop(Connection& conn) {
  // One Message reused across the loop: together with the connection's
  // reply scratch this keeps the steady-state request path off the
  // allocator entirely.
  msg::Message m;
  if (cfg_.mode == NotifyMode::kPolling) {
    // Fig 6a: burn the core polling the ring tail. The whole loop counts
    // as busy time — exactly why polling saturates the CPU (§IV-B).
    uint64_t last = NowNanos();
    while (!stop_.load(std::memory_order_relaxed)) {
      uint64_t picked_up_us = NowMicros();
      while (conn.request_rx->TryReceive(m)) {
        HandleMessage(conn, m, picked_up_us);
        picked_up_us = NowMicros();
      }
      const uint64_t now = NowNanos();
      conn.busy_ns.fetch_add(now - last, std::memory_order_relaxed);
      last = now;
    }
    return;
  }

  // Fig 6b: block on the completion channel; the IMM completion wakes us
  // when a request lands. Only handling time counts as busy. Every
  // message of one drain batch shares the wakeup timestamp, so the
  // dequeue spans of coalesced requests show their queueing delay.
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto wc = conn.recv_cq->Wait(1ms);
    if (!wc) continue;
    const uint64_t t0 = NowNanos();
    const uint64_t wake_us = NowMicros();
    while (conn.request_rx->TryReceive(m)) {
      HandleMessage(conn, m, wake_us);
    }
    conn.busy_ns.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
  }
}

void RTreeServer::MonitorLoop() {
  uint64_t last_busy = 0;
  uint64_t last_wall = NowNanos();
  uint64_t hb_seq = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(cfg_.heartbeat_interval_us));

    // Checkpoint off the monitor thread so workers only ever pay the
    // WAL-append cost; the checkpoint itself quiesces writers briefly.
    if (cfg_.durability && cfg_.durability->ShouldCheckpoint()) {
      cfg_.durability->Checkpoint(*tree_);
    }

    uint64_t busy = 0;
    {
      const std::scoped_lock lock(conns_mu_);
      for (const auto& conn : conns_) {
        busy += conn->busy_ns.load(std::memory_order_relaxed);
      }
    }
    const uint64_t wall = NowNanos();
    const double capacity_ns =
        static_cast<double>(wall - last_wall) * cores_;
    double util = capacity_ns > 0
                      ? static_cast<double>(busy - last_busy) / capacity_ns
                      : 0.0;
    util = std::min(util, 1.0);
    last_busy = busy;
    last_wall = wall;
    utilization_.store(util, std::memory_order_relaxed);
    CATFISH_GAUGE_SET("catfish.server.utilization_pct",
                      static_cast<int64_t>(util * 100.0));
    CATFISH_GAUGE_SET("catfish.server.utilization", util);
    CATFISH_GAUGE_SET(
        "overload.server.queue_delay_us",
        static_cast<double>(
            queue_delay_ewma_us_.load(std::memory_order_relaxed)));

    const double overridden = util_override_.load(std::memory_order_relaxed);
    const double advertised = overridden >= 0.0 ? overridden : util;
    CATFISH_EVENT(kUtilization, NowMicros(), hb_seq + 1, util, advertised);

    const uint64_t map_version =
        cfg_.map_version ? cfg_.map_version->load(std::memory_order_relaxed)
                         : 0;
    msg::Heartbeat beat{++hb_seq, advertised, tree_->write_epoch(),
                        node_->generation(), map_version};
    if (cfg_.repl_role != 0) {
      beat.role = cfg_.repl_role;
      beat.epoch = cfg_.repl_epoch
                       ? cfg_.repl_epoch->load(std::memory_order_relaxed)
                       : 0;
      beat.durable_lsn =
          cfg_.repl_durable_lsn
              ? cfg_.repl_durable_lsn->load(std::memory_order_relaxed)
              : 0;
    }
    const auto hb = msg::Encode(beat);
    const std::scoped_lock lock(conns_mu_);
    for (auto& conn : conns_) {
      const std::scoped_lock send_lock(conn->send_mu);
      // Best effort: a full response ring drops this heartbeat; the next
      // one is 10 ms away (the paper tolerates delayed heartbeats, §IV-A).
      if (conn->response_tx->TrySend(
              static_cast<uint16_t>(msg::MsgType::kHeartbeat),
              msg::kFlagEnd, hb)) {
        heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
        CATFISH_COUNT("catfish.server.heartbeats");
      }
    }
  }
}

ServerStats RTreeServer::stats() const {
  ServerStats s;
  s.searches = searches_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.deletes = deletes_.load(std::memory_order_relaxed);
  s.heartbeats_sent = heartbeats_sent_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.deadline_drops = deadline_drops_.load(std::memory_order_relaxed);
  return s;
}

size_t RTreeServer::connection_count() const {
  const std::scoped_lock lock(conns_mu_);
  return conns_.size();
}

}  // namespace catfish

// The Catfish R-tree server (paper §III–IV).
//
// One worker thread serves each client connection (as in the paper's
// testbed), consuming requests from the connection's RDMA-WRITE ring
// buffer in one of two notification modes:
//
//  * kPolling     — busy-polls the ring tail (Fig 6a); burns a core per
//                   connection and collapses under oversubscription;
//  * kEventDriven — blocks on the connection's completion queue until an
//                   RDMA WRITE-with-IMM signals arrival (Fig 6b).
//
// A monitor thread measures worker CPU utilization and broadcasts it as
// heartbeats on every response ring each `Inv` (the server half of the
// adaptive scheme, §IV-A).
//
// All tree *writes* (insert/delete) are executed here, serialized by the
// tree's writer lock; searches may also be served here (fast messaging)
// or bypass the server entirely via one-sided READs (offloading).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "msg/protocol.h"
#include "msg/ring.h"
#include "rdmasim/rdma.h"
#include "rtree/rstar.h"
#include "telemetry/trace.h"

namespace catfish::durable {
class DurabilityManager;
}  // namespace catfish::durable

namespace catfish {

enum class NotifyMode : uint8_t { kPolling, kEventDriven };

/// Per-connection admission control on the fast-messaging receive path.
/// The pending-work gauge is the request's ring-dequeue delay: every
/// frame of one drain batch shares the worker's wakeup timestamp, so a
/// frame handled `queued_us` after pickup waited that long behind its
/// batch predecessors — exactly the backlog a falling-behind worker
/// accumulates. When that delay exceeds the bound while the monitor's
/// utilization window confirms saturation, the request is answered
/// with a typed kOverloaded reply (cheap: no tree traversal) carrying
/// a backlog-scaled retry-after hint. Deadline-expired requests are
/// always dropped before the traversal, admission enabled or not —
/// burning CPU on an answer the client stopped waiting for is how
/// goodput collapses past saturation.
struct AdmissionConfig {
  /// Off by default: single-tenant benches at controlled load measure
  /// the paper's latency story, which shedding would perturb.
  bool enabled = false;
  /// Shed when a frame's dequeue delay exceeds this…
  uint64_t max_queue_delay_us = 2'000;
  /// …and the utilization window is at least this (both signals must
  /// agree: a one-off slow request under light load is not overload).
  double min_utilization = 0.85;
  /// Bounds for the retry-after hint (scaled from the observed delay).
  uint64_t retry_after_min_us = 1'000;
  uint64_t retry_after_max_us = 100'000;
};

struct ServerConfig {
  NotifyMode mode = NotifyMode::kEventDriven;
  /// Heartbeat interval Inv (paper: 10 ms).
  uint64_t heartbeat_interval_us = 10'000;
  /// Ring buffer bytes per direction per connection (paper §V-B: 256 KB).
  size_t ring_capacity = 256 * 1024;
  /// Core count used as the utilization denominator. 0 = hardware
  /// concurrency. (The paper's server has 28 cores.)
  unsigned cores = 0;
  /// When set, fast-messaging requests record span trees here (dequeue
  /// → traverse → respond, plus the WAL stages on the durable path).
  /// Requests carrying a sampled wire trace context force a trace
  /// regardless of this tracer's sampling, and the finished tree is
  /// shipped back to the client in a kTraceResp frame; context-free
  /// requests are sampled locally and joined by req_id as before.
  /// Null = no tracing. The tracer must outlive the server.
  telemetry::Tracer* tracer = nullptr;
  /// When set, inserts/deletes run through the durable write path:
  /// WAL-logged, deduped on (client_gen, req_id), group-committed before
  /// the ack. The monitor thread also checkpoints when the manager asks.
  /// The caller must have run Recover() on it (serving the tree it
  /// returned) before constructing the server. Null = volatile writes.
  /// The manager must outlive the server.
  durable::DurabilityManager* durability = nullptr;
  /// Sharded deployments only: the host's routing-table version
  /// (ShardHost points every shard's server at one shared counter). The
  /// monitor thread reads it on each heartbeat so clients learn about a
  /// republished map — any shard's restart — within one heartbeat
  /// interval. Null = single-node; heartbeats carry no map version and
  /// stay on the legacy wire size. Must outlive the server.
  const std::atomic<uint64_t>* map_version = nullptr;
  /// Replicated deployments only: the node's replication role
  /// (msg::ReplRole value) and pointers to the live epoch / durable-LSN
  /// counters the ShardHost maintains. When repl_role != 0 heartbeats
  /// and bootstrap hellos carry the role+epoch tail (durable_lsn rides
  /// in heartbeats so clients can bound follower read lag). Both
  /// pointers must outlive the server when set.
  uint8_t repl_role = 0;
  const std::atomic<uint64_t>* repl_epoch = nullptr;
  const std::atomic<uint64_t>* repl_durable_lsn = nullptr;
  /// Overload protection on the fast-messaging path (see above).
  AdmissionConfig admission;
};

/// What the client must learn during connection setup (the paper
/// exchanges this over a TCP bootstrap connection, §II-B).
struct ServerBootstrap {
  rdma::MemoryRegionHandle arena_mr;   ///< the R-tree region, for READs
  rdma::RemoteAddr request_ring;       ///< where to WRITE requests
  size_t request_ring_capacity = 0;
  rdma::RemoteAddr response_ack_cell;  ///< where to WRITE ring acks
  rtree::ChunkId root = rtree::kRootChunk;
  size_t chunk_size = 0;
  uint32_t tree_height = 0;
  /// The server node's incarnation (rdma::SimNode::generation). Bumped
  /// by a restart; the client's failover path compares it to decide
  /// whether cached rkeys/ring wiring survived.
  uint64_t generation = 0;
  /// Sharded deployments only (see catfish/bootstrap.h): the shard this
  /// endpoint serves and the opaque hello extension (the encoded routing
  /// table). Zero / empty on a single-node server.
  uint32_t shard_id = 0;
  std::vector<std::byte> hello_extension;
  /// Replicated deployments only: the endpoint's replication role
  /// (msg::ReplRole value) and current epoch at handshake time. Zero on
  /// an unreplicated server.
  uint8_t repl_role = 0;
  uint64_t repl_epoch = 0;
};

/// What the server must learn about the client side.
struct ClientBootstrap {
  std::shared_ptr<rdma::QueuePair> qp;  ///< client's connected QP
  rdma::RemoteAddr response_ring;       ///< where to WRITE responses
  size_t response_ring_capacity = 0;
  rdma::RemoteAddr request_ack_cell;    ///< where to WRITE ring acks
};

struct ServerStats {
  uint64_t searches = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t sheds = 0;           ///< admission-control kOverloaded replies
  uint64_t deadline_drops = 0;  ///< requests dropped with expired budgets
};

class RTreeServer {
 public:
  /// The server serves `tree`, whose arena it registers with `node` once
  /// at startup (paper §III-B). Both must outlive the server.
  RTreeServer(std::shared_ptr<rdma::SimNode> node, rtree::RStarTree& tree,
              ServerConfig cfg = {});
  ~RTreeServer();

  RTreeServer(const RTreeServer&) = delete;
  RTreeServer& operator=(const RTreeServer&) = delete;

  /// Wires up a new client connection and spawns its worker thread.
  /// Called by catfish::ConnectClient during the bootstrap handshake.
  ServerBootstrap AcceptConnection(const ClientBootstrap& client);

  /// Stops all worker threads and the monitor; idempotent. Connections
  /// and memory registrations stay alive until destruction, so clients
  /// can still complete one-sided (offloaded) reads — only the
  /// server-CPU paths (fast messaging, writes) stop being served.
  void Stop();

  /// Most recent measured worker CPU utilization in [0,1].
  double utilization() const noexcept {
    return utilization_.load(std::memory_order_relaxed);
  }

  /// Smoothed ring-dequeue delay (µs) — the admission gauge.
  uint64_t queue_delay_ewma_us() const noexcept {
    return queue_delay_ewma_us_.load(std::memory_order_relaxed);
  }

  /// Test hook: when set, heartbeats advertise this value instead of the
  /// measured utilization (lets tests drive Algorithm 1 deterministically).
  void OverrideUtilization(double util) noexcept {
    util_override_.store(util, std::memory_order_relaxed);
  }
  void ClearUtilizationOverride() noexcept {
    util_override_.store(-1.0, std::memory_order_relaxed);
  }

  /// Test hook: every request's tree walk sleeps this long first —
  /// turns one shard into a deterministic straggler so tracing tests
  /// can assert the assembled critical path names it. 0 = off.
  void SetServiceDelayForTest(uint64_t us) noexcept {
    service_delay_us_.store(us, std::memory_order_relaxed);
  }

  ServerStats stats() const;
  size_t connection_count() const;
  rtree::RStarTree& tree() noexcept { return *tree_; }
  /// The arena registration handed to every client (the sharded host
  /// publishes its rkey in the routing table).
  const rdma::MemoryRegionHandle& arena_mr() const noexcept {
    return arena_mr_;
  }
  const std::shared_ptr<rdma::SimNode>& node() const noexcept {
    return node_;
  }
  const ServerConfig& config() const noexcept { return cfg_; }

 private:
  struct Connection {
    uint64_t id = 0;
    std::shared_ptr<rdma::QueuePair> qp;
    std::shared_ptr<rdma::CompletionQueue> send_cq;
    std::shared_ptr<rdma::CompletionQueue> recv_cq;
    std::vector<std::byte> request_ring_mem;
    alignas(8) std::array<std::byte, 8> response_ack_cell{};
    /// Registrations backed by this connection's own members; the
    /// server destructor retires them before the memory is freed.
    rdma::MemoryRegionHandle ring_mr;
    rdma::MemoryRegionHandle ack_mr;
    std::unique_ptr<msg::RingReceiver> request_rx;
    std::unique_ptr<msg::RingSender> response_tx;
    std::mutex send_mu;  ///< worker (responses) vs monitor (heartbeats)
    std::thread worker;
    std::atomic<uint64_t> busy_ns{0};
    /// Worker-private reply scratch: the steady-state request loop
    /// encodes every response into these instead of fresh vectors, so
    /// it never touches the allocator (tests/alloc_test.cc).
    std::vector<std::vector<std::byte>> seg_scratch;
    std::vector<std::byte> ack_scratch;
    std::vector<std::byte> trace_scratch;
  };

  void WorkerLoop(Connection& conn);
  void MonitorLoop();
  /// `picked_up_us` is when the worker woke (event mode) or resumed
  /// polling — the start of the request's ring-dequeue span.
  void HandleMessage(Connection& conn, const msg::Message& m,
                     uint64_t picked_up_us);
  void SendResponse(Connection& conn, msg::MsgType type, uint16_t flags,
                    std::span<const std::byte> payload);
  /// Admission check, called per request right after decode (the
  /// deadline rides in the frame). True = shed; the kOverloaded reply
  /// was already sent and the caller must not traverse.
  bool ShedIfNeeded(Connection& conn, uint64_t req_id, uint64_t picked_up_us,
                    uint64_t deadline_us);

  std::shared_ptr<rdma::SimNode> node_;
  rtree::RStarTree* tree_;
  ServerConfig cfg_;
  rdma::MemoryRegionHandle arena_mr_;
  unsigned cores_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<bool> stop_{false};
  std::thread monitor_;
  std::atomic<double> utilization_{0.0};
  std::atomic<double> util_override_{-1.0};
  std::atomic<uint64_t> service_delay_us_{0};

  std::atomic<uint64_t> searches_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> heartbeats_sent_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> deadline_drops_{0};
  /// EWMA of per-request ring-dequeue delay (µs) — the pending-work
  /// gauge exported as overload.server.queue_delay_us and served by
  /// /healthz.
  std::atomic<uint64_t> queue_delay_ewma_us_{0};
  std::atomic<uint64_t> next_conn_id_{1};
};

}  // namespace catfish

#include "catfish/bootstrap.h"

#include <chrono>
#include <stdexcept>

#include "common/bytes.h"

namespace catfish {

using namespace std::chrono_literals;

namespace {

void AppendString(ByteWriter& w, const std::string& s) {
  w.Append(static_cast<uint32_t>(s.size()));
  w.AppendBytes(std::as_bytes(std::span(s.data(), s.size())));
}

std::optional<std::string> ReadString(ByteReader& r) {
  if (r.remaining() < 4) return std::nullopt;
  const uint32_t n = r.Read<uint32_t>();
  if (r.remaining() < n) return std::nullopt;
  const auto bytes = r.ReadBytes(n);
  return std::string(reinterpret_cast<const char*>(bytes.data()), n);
}

}  // namespace

std::vector<std::byte> Encode(const WireClientHello& v) {
  ByteWriter w(64);
  AppendString(w, v.node_name);
  w.Append(v.qp_num);
  w.Append(v.response_ring_rkey);
  w.Append(v.response_ring_capacity);
  w.Append(v.request_ack_rkey);
  return w.Take();
}

std::optional<WireClientHello> DecodeClientHello(
    std::span<const std::byte> payload) {
  ByteReader r(payload);
  WireClientHello v;
  const auto name = ReadString(r);
  if (!name) return std::nullopt;
  v.node_name = *name;
  if (r.remaining() != 4 + 4 + 8 + 4) return std::nullopt;
  v.qp_num = r.Read<uint32_t>();
  v.response_ring_rkey = r.Read<uint32_t>();
  v.response_ring_capacity = r.Read<uint64_t>();
  v.request_ack_rkey = r.Read<uint32_t>();
  return v;
}

namespace {
/// The fixed prefix every server hello starts with; the shard tail
/// (shard_id + length-prefixed extension) is optional behind it.
inline constexpr size_t kServerHelloBaseBytes = 4 + 8 + 4 + 8 + 4 + 4 + 8 + 4 + 8;
}  // namespace

std::vector<std::byte> Encode(const WireServerHello& v) {
  ByteWriter w(kServerHelloBaseBytes + v.extension.size() + 8);
  w.Append(v.arena_rkey);
  w.Append(v.arena_length);
  w.Append(v.request_ring_rkey);
  w.Append(v.request_ring_capacity);
  w.Append(v.response_ack_rkey);
  w.Append(v.root);
  w.Append(v.chunk_size);
  w.Append(v.tree_height);
  w.Append(v.generation);
  // Emit tails only when they carry information, so a single-node hello
  // stays identical to the legacy format on the wire. The repl tail
  // rides behind the shard tail and forces it to appear (possibly
  // empty), keeping the tail order unambiguous.
  if (v.shard_id != 0 || !v.extension.empty() || v.repl_role != 0) {
    w.Append(v.shard_id);
    w.Append(static_cast<uint32_t>(v.extension.size()));
    w.AppendBytes(v.extension);
    if (v.repl_role != 0) {
      w.Append(v.repl_role);
      w.Append(v.repl_epoch);
    }
  }
  return w.Take();
}

std::optional<WireServerHello> DecodeServerHello(
    std::span<const std::byte> payload) {
  if (payload.size() < kServerHelloBaseBytes) return std::nullopt;
  ByteReader r(payload);
  WireServerHello v;
  v.arena_rkey = r.Read<uint32_t>();
  v.arena_length = r.Read<uint64_t>();
  v.request_ring_rkey = r.Read<uint32_t>();
  v.request_ring_capacity = r.Read<uint64_t>();
  v.response_ack_rkey = r.Read<uint32_t>();
  v.root = r.Read<uint32_t>();
  v.chunk_size = r.Read<uint64_t>();
  v.tree_height = r.Read<uint32_t>();
  v.generation = r.Read<uint64_t>();
  if (r.AtEnd()) return v;  // legacy hello, no shard tail
  if (r.remaining() < 8) return std::nullopt;
  v.shard_id = r.Read<uint32_t>();
  const uint32_t ext_len = r.Read<uint32_t>();
  if (ext_len > kMaxHelloExtensionBytes) return std::nullopt;
  // Behind the extension rides the optional repl tail (role + epoch);
  // anything else is a torn frame.
  constexpr size_t kReplTailBytes = 1 + 8;
  if (r.remaining() != ext_len && r.remaining() != ext_len + kReplTailBytes) {
    return std::nullopt;
  }
  const auto ext = r.ReadBytes(ext_len);
  v.extension.assign(ext.begin(), ext.end());
  if (!r.AtEnd()) {
    v.repl_role = r.Read<uint8_t>();
    if (v.repl_role == 0 || v.repl_role > 2) return std::nullopt;
    v.repl_epoch = r.Read<uint64_t>();
  }
  return v;
}

// ---------------------------------------------------------------------------

BootstrapAcceptor::BootstrapAcceptor(RTreeServer& server,
                                     rdma::Fabric& fabric)
    : server_(&server), fabric_(&fabric) {}

BootstrapAcceptor::~BootstrapAcceptor() { Stop(); }

void BootstrapAcceptor::Stop() {
  if (stop_.exchange(true)) return;
  const std::scoped_lock lock(threads_mu_);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void BootstrapAcceptor::SetHelloExtension(
    uint32_t shard_id, std::function<std::vector<std::byte>()> provider) {
  const std::scoped_lock lock(ext_mu_);
  ext_shard_id_ = shard_id;
  ext_provider_ = std::move(provider);
}

std::shared_ptr<tcpkit::Stream> BootstrapAcceptor::Dial() {
  auto [server_end, client_end] = tcpkit::Stream::CreatePair();
  const std::scoped_lock lock(threads_mu_);
  if (stop_.load()) {
    throw std::runtime_error("BootstrapAcceptor: dial after stop");
  }
  threads_.emplace_back([this, endpoint = std::move(server_end)]() mutable {
    Serve(std::move(endpoint));
  });
  return client_end;
}

void BootstrapAcceptor::Serve(std::shared_ptr<tcpkit::Stream> endpoint) {
  tcpkit::FramedConnection conn(std::move(endpoint));
  // One handshake per connection; bail out politely on malformed input.
  std::optional<msg::Message> m;
  while (!stop_.load(std::memory_order_relaxed)) {
    m = conn.RecvFrame(1ms);
    if (m) break;
    if (conn.closed()) return;
  }
  if (!m || m->type != kClientHelloFrame) return;
  const auto hello = DecodeClientHello(m->payload);
  if (!hello) return;

  // Connection-manager role: resolve the peer's QP from its (node, QPN).
  const auto client_node = fabric_->FindNode(hello->node_name);
  if (!client_node) return;
  const auto client_qp = client_node->FindQp(hello->qp_num);
  if (!client_qp) return;

  ClientBootstrap boot;
  boot.qp = client_qp;
  boot.response_ring = rdma::RemoteAddr{hello->response_ring_rkey, 0};
  boot.response_ring_capacity = hello->response_ring_capacity;
  boot.request_ack_cell = rdma::RemoteAddr{hello->request_ack_rkey, 0};
  const ServerBootstrap sb = server_->AcceptConnection(boot);
  ++handshakes_;

  WireServerHello reply;
  reply.arena_rkey = sb.arena_mr.rkey;
  reply.arena_length = sb.arena_mr.length;
  reply.request_ring_rkey = sb.request_ring.rkey;
  reply.request_ring_capacity = sb.request_ring_capacity;
  reply.response_ack_rkey = sb.response_ack_cell.rkey;
  reply.root = sb.root;
  reply.chunk_size = sb.chunk_size;
  reply.tree_height = sb.tree_height;
  reply.generation = sb.generation;
  reply.repl_role = sb.repl_role;
  reply.repl_epoch = sb.repl_epoch;
  {
    const std::scoped_lock lock(ext_mu_);
    if (ext_provider_) {
      reply.shard_id = ext_shard_id_;
      reply.extension = ext_provider_();
    }
  }
  conn.SendFrame(kServerHelloFrame, 0, Encode(reply));
}

namespace {

/// The client half of one hello round trip: send our wiring, receive and
/// deserialize the server's. Throws on any transport or decode failure
/// (the recovery path catches and reports kReconnectFailed).
ServerBootstrap HelloRoundTrip(tcpkit::FramedConnection& conn,
                               const std::string& node_name,
                               const ClientBootstrap& mine) {
  WireClientHello hello;
  hello.node_name = node_name;
  hello.qp_num = mine.qp->qp_num();
  hello.response_ring_rkey = mine.response_ring.rkey;
  hello.response_ring_capacity = mine.response_ring_capacity;
  hello.request_ack_rkey = mine.request_ack_cell.rkey;
  if (!conn.SendFrame(kClientHelloFrame, 0, Encode(hello))) {
    throw std::runtime_error("bootstrap: hello send failed");
  }
  const auto reply = conn.RecvFrame(10s);
  if (!reply || reply->type != kServerHelloFrame) {
    throw std::runtime_error("bootstrap: no server hello");
  }
  const auto sh = DecodeServerHello(reply->payload);
  if (!sh) throw std::runtime_error("bootstrap: malformed server hello");

  ServerBootstrap boot;
  boot.arena_mr = rdma::MemoryRegionHandle{sh->arena_rkey, sh->arena_length};
  boot.request_ring = rdma::RemoteAddr{sh->request_ring_rkey, 0};
  boot.request_ring_capacity = sh->request_ring_capacity;
  boot.response_ack_cell = rdma::RemoteAddr{sh->response_ack_rkey, 0};
  boot.root = sh->root;
  boot.chunk_size = sh->chunk_size;
  boot.tree_height = sh->tree_height;
  boot.generation = sh->generation;
  boot.shard_id = sh->shard_id;
  boot.hello_extension = sh->extension;
  boot.repl_role = sh->repl_role;
  boot.repl_epoch = sh->repl_epoch;
  return boot;
}

}  // namespace

std::unique_ptr<RTreeClient> ConnectViaBootstrap(
    std::shared_ptr<tcpkit::Stream> stream,
    std::shared_ptr<rdma::SimNode> node, ClientConfig cfg) {
  tcpkit::FramedConnection conn(std::move(stream));
  const auto shake =
      [&conn, &node](const ClientBootstrap& mine) -> ServerBootstrap {
    return HelloRoundTrip(conn, node->name(), mine);
  };
  return std::make_unique<RTreeClient>(node, shake, cfg);
}

std::unique_ptr<RTreeClient> ConnectViaBootstrap(
    BootstrapDialFn dial, std::shared_ptr<rdma::SimNode> node,
    ClientConfig cfg) {
  // Unlike the one-shot overload, this handshake owns no stream: it
  // dials a fresh one per invocation, so the client can keep it for
  // re-bootstrap after the watchdog declares the server dead.
  const std::string name = node->name();
  const auto shake =
      [dial = std::move(dial),
       name](const ClientBootstrap& mine) -> ServerBootstrap {
    tcpkit::FramedConnection conn(dial());
    return HelloRoundTrip(conn, name, mine);
  };
  auto client = std::make_unique<RTreeClient>(std::move(node), shake, cfg);
  client->SetReconnectHandshake(shake);
  return client;
}

}  // namespace catfish

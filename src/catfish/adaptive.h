// The adaptive fast-messaging / RDMA-offloading switch (paper §IV-A,
// Algorithm 1).
//
// Each client runs one controller. The server piggybacks CPU-utilization
// heartbeats every `Inv`; when the predicted utilization exceeds the
// threshold T the client offloads its next `rand()%N + (r_busy-1)*N`
// searches, and — like binary exponential back-off in Ethernet — each
// consecutive busy observation moves the random window up by N, without
// an upper bound. Clients therefore desynchronize: they return to fast
// messaging at different times instead of stampeding the server together.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish {

enum class AccessMode : uint8_t {
  kFastMessaging,   ///< RDMA WRITE request; server traverses (one RTT)
  kRdmaOffloading,  ///< client traverses via one-sided RDMA READs
};

/// predUtil(·) variants. The paper uses the most recent heartbeat value
/// and sketches smarter predictors as future work (§VI: "the server can
/// periodically predict the overloading period"); the EWMA option is
/// that extension — it smooths transient spikes so clients don't
/// over-react to one noisy heartbeat.
enum class UtilPredictor : uint8_t {
  kMostRecent,  ///< paper's default: U = last heartbeat
  kEwma,        ///< U = α·last + (1-α)·previous prediction
};

/// Counters the controller keeps about its own decisions (telemetry):
/// how often each path was chosen, how often the chosen path flipped,
/// and how many times the back-off window escalated. Cheap enough to be
/// always on — reading them is how the benches and the telemetry layer
/// observe Algorithm 1 without touching its state machine.
struct AdaptiveStats {
  uint64_t fast_decisions = 0;
  uint64_t offload_decisions = 0;
  /// Decisions that differ from the immediately preceding decision.
  uint64_t mode_switches = 0;
  /// Back-off window extensions (r_busy increments on busy heartbeats).
  uint64_t escalations = 0;
};

struct AdaptiveConfig {
  /// Heartbeat interval Inv, microseconds (paper: 10 ms).
  uint64_t heartbeat_interval_us = 10'000;
  /// Back-off window N (paper §V-B: 8).
  uint32_t window = 8;
  /// Busy threshold T on predicted utilization (paper §V-B: 0.95).
  double busy_threshold = 0.95;
  UtilPredictor predictor = UtilPredictor::kMostRecent;
  /// EWMA smoothing factor α (only for kEwma).
  double ewma_alpha = 0.4;
};

class AdaptiveController {
 public:
  /// `id` labels this controller's flight-recorder events (client id in
  /// the DES / examples); 0 is fine when there is only one.
  AdaptiveController(AdaptiveConfig cfg, uint64_t seed, uint64_t id = 0)
      : cfg_(cfg), rng_(seed), id_(id) {}

  /// Records a heartbeat into u_serv (overwriting — predUtil uses the
  /// most recent value, §IV-A). A zero utilization is clamped up to a
  /// tiny epsilon so "u_serv != 0" still means "a heartbeat arrived".
  void OnHeartbeat(double cpu_util) noexcept {
    u_serv_ = cpu_util > 0.0 ? cpu_util : 1e-9;
  }

  /// Algorithm 1 lines 5–23: decides the access mode for the next search
  /// request and advances the back-off state. `now_us` is the caller's
  /// clock (wall time for the live client, virtual time in the DES).
  ///
  /// Interpretation note: the paper's pseudocode guards escalation with
  /// `r_off <= r_busy·N`, but every draw satisfies that bound, so read
  /// literally the guard never bites. The prose (§IV-A, §V-B) is
  /// explicit: the window extends "if the server CPUs are found still
  /// busy" *after the client switches back to fast messaging* — i.e. the
  /// previous window must have drained. We implement that reading
  /// (classic BEB): escalate on a busy heartbeat only once r_off == 0;
  /// a below-threshold heartbeat resets the escalation counter but lets
  /// the already-drawn rounds drain (the paper never cancels them).
  AccessMode NextMode(uint64_t now_us) noexcept {
    double predicted = 0.0;  // U
    if (now_us - t0_us_ > cfg_.heartbeat_interval_us && u_serv_ != 0.0) {
      predicted = PredictUtil(u_serv_);
      u_serv_ = 0.0;  // memset(u_serv, 0)
      t0_us_ = now_us;
    }
    if (predicted > cfg_.busy_threshold) {
      if (r_off_ == 0) {
        ++r_busy_;
        ++stats_.escalations;
        r_off_ = rng_.NextBounded(cfg_.window) +
                 static_cast<uint64_t>(r_busy_ - 1) * cfg_.window;
        CATFISH_COUNT("adaptive.escalations");
        CATFISH_GAUGE_SET("adaptive.r_busy", r_busy_);
        CATFISH_EVENT(kBackoffEscalate, now_us, id_,
                      static_cast<double>(r_busy_),
                      static_cast<double>(r_off_));
      }
    } else if (predicted != 0.0) {
      // Fresh heartbeat says the server recovered: reset the back-off.
      if (r_busy_ != 0) {
        CATFISH_GAUGE_SET("adaptive.r_busy", 0);
        CATFISH_EVENT(kBackoffReset, now_us, id_,
                      static_cast<double>(r_busy_), predicted);
      }
      r_busy_ = 0;
    }
    if (predicted != 0.0) CATFISH_GAUGE_SET("adaptive.predicted_util", ewma_);
    AccessMode mode = AccessMode::kFastMessaging;
    if (r_off_ > 0) {
      --r_off_;
      mode = AccessMode::kRdmaOffloading;
    }
    Record(mode, now_us);
    return mode;
  }

  uint32_t r_busy() const noexcept { return r_busy_; }
  uint64_t r_off() const noexcept { return r_off_; }
  const AdaptiveConfig& config() const noexcept { return cfg_; }
  const AdaptiveStats& stats() const noexcept { return stats_; }

  /// The current prediction (diagnostics / tests).
  double predicted_util() const noexcept { return ewma_; }

 private:
  void Record(AccessMode mode, [[maybe_unused]] uint64_t now_us) noexcept {
    if (mode == AccessMode::kRdmaOffloading) {
      ++stats_.offload_decisions;
      CATFISH_COUNT("adaptive.decisions.offload");
    } else {
      ++stats_.fast_decisions;
      CATFISH_COUNT("adaptive.decisions.fast");
    }
    if (have_last_mode_ && mode != last_mode_) {
      ++stats_.mode_switches;
      CATFISH_COUNT("adaptive.mode_switches");
      CATFISH_EVENT(kModeSwitch, now_us, id_,
                    mode == AccessMode::kRdmaOffloading ? 1.0 : 0.0,
                    static_cast<double>(r_off_));
    }
    last_mode_ = mode;
    have_last_mode_ = true;
  }

  /// predUtil(·) — §IV-A with the §VI predictor extension.
  double PredictUtil(double most_recent) noexcept {
    switch (cfg_.predictor) {
      case UtilPredictor::kEwma:
        ewma_ = cfg_.ewma_alpha * most_recent +
                (1.0 - cfg_.ewma_alpha) * ewma_;
        return ewma_;
      case UtilPredictor::kMostRecent:
      default:
        ewma_ = most_recent;
        return most_recent;
    }
  }

  AdaptiveConfig cfg_;
  Xoshiro256 rng_;
  uint64_t id_ = 0;
  double u_serv_ = 0.0;  ///< heartbeat mailbox (0 = consumed/none)
  double ewma_ = 0.0;
  uint64_t t0_us_ = 0;
  uint32_t r_busy_ = 0;
  uint64_t r_off_ = 0;
  AdaptiveStats stats_;
  AccessMode last_mode_ = AccessMode::kFastMessaging;
  bool have_last_mode_ = false;
};

}  // namespace catfish

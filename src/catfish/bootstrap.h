// The TCP bootstrap channel of §II-B: "virtual addresses are registered
// to network cards and are exchanged among nodes via TCP connections in
// advance."
//
// The hello messages carry names and numbers only — node name, QP
// number, rkeys, ring geometry — exactly what a real deployment ships
// over its out-of-band socket before RDMA traffic can flow. QP pairing
// happens on the server side by resolving the client's (node, QPN)
// through the fabric registry, the role the RDMA connection manager
// plays on real hardware.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "catfish/client.h"
#include "catfish/server.h"
#include "tcpkit/stream.h"

namespace catfish {

/// client → server: everything the server needs to wire the connection.
struct WireClientHello {
  std::string node_name;
  uint32_t qp_num = 0;
  uint32_t response_ring_rkey = 0;
  uint64_t response_ring_capacity = 0;
  uint32_t request_ack_rkey = 0;
};

/// server → client: the ServerBootstrap, serialized.
struct WireServerHello {
  uint32_t arena_rkey = 0;
  uint64_t arena_length = 0;
  uint32_t request_ring_rkey = 0;
  uint64_t request_ring_capacity = 0;
  uint32_t response_ack_rkey = 0;
  uint32_t root = 0;
  uint64_t chunk_size = 0;
  uint32_t tree_height = 0;
  /// Server incarnation (bumped by a restart); lets a recovering client
  /// tell a fresh server from the one it lost.
  uint64_t generation = 0;
  /// Optional tail (sharded deployments): which shard this endpoint
  /// serves, plus an opaque extension blob — the encoded routing table
  /// (shard::ShardMap) in the sharded stack. A legacy hello (no tail on
  /// the wire) decodes to shard_id 0 and an empty extension, so
  /// single-node deployments are unchanged byte-for-byte.
  uint32_t shard_id = 0;
  std::vector<std::byte> extension;
  /// Second optional tail (replicated deployments): the endpoint's
  /// replication role (msg::ReplRole value) and the epoch it serves
  /// under. Emitted only when role != 0; when present the shard tail is
  /// always emitted too (even empty) so tail order stays unambiguous. A
  /// client that bootstraps onto a follower learns it immediately and
  /// routes writes elsewhere.
  uint8_t repl_role = 0;
  uint64_t repl_epoch = 0;
};

std::vector<std::byte> Encode(const WireClientHello& v);
std::vector<std::byte> Encode(const WireServerHello& v);
std::optional<WireClientHello> DecodeClientHello(
    std::span<const std::byte> payload);
std::optional<WireServerHello> DecodeServerHello(
    std::span<const std::byte> payload);

/// Frame types on the bootstrap channel (distinct from the data-plane
/// msg::MsgType space).
inline constexpr uint16_t kClientHelloFrame = 100;
inline constexpr uint16_t kServerHelloFrame = 101;

/// Upper bound on the hello extension blob; a decoder must reject a
/// claimed length above this before allocating.
inline constexpr uint32_t kMaxHelloExtensionBytes = 1 << 20;

/// Server side of the bootstrap channel: accepts TCP connections, runs
/// one handshake per connection (resolve the client QP, wire the rings,
/// spawn the worker), and replies with the server hello.
class BootstrapAcceptor {
 public:
  BootstrapAcceptor(RTreeServer& server, rdma::Fabric& fabric);
  ~BootstrapAcceptor();

  BootstrapAcceptor(const BootstrapAcceptor&) = delete;
  BootstrapAcceptor& operator=(const BootstrapAcceptor&) = delete;

  /// "Dials" the bootstrap endpoint: returns the client side of a fresh
  /// TCP stream whose server side is being served by a handshake thread.
  std::shared_ptr<tcpkit::Stream> Dial();

  /// Installs the hello-extension hook: every subsequent server hello
  /// carries `shard_id` and the bytes `provider` returns at handshake
  /// time (re-evaluated per handshake, so a republished routing table is
  /// picked up by the next bootstrap without restarting the acceptor).
  /// The acceptor stays ignorant of the blob's meaning — src/shard owns
  /// the encoding — so catfish keeps no dependency on the shard layer.
  void SetHelloExtension(uint32_t shard_id,
                         std::function<std::vector<std::byte>()> provider);

  void Stop();
  uint64_t handshakes() const noexcept {
    return handshakes_.load(std::memory_order_relaxed);
  }

 private:
  void Serve(std::shared_ptr<tcpkit::Stream> endpoint);

  RTreeServer* server_;
  rdma::Fabric* fabric_;
  mutable std::mutex ext_mu_;
  uint32_t ext_shard_id_ = 0;
  std::function<std::vector<std::byte>()> ext_provider_;
  std::atomic<bool> stop_{false};
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> handshakes_{0};
};

/// Client side: performs the hello round trip over `stream` and returns
/// a connected RTreeClient on `node`. The node must have been created
/// through the same fabric the acceptor resolves against. One-shot: the
/// stream is consumed, so the resulting client cannot re-bootstrap.
std::unique_ptr<RTreeClient> ConnectViaBootstrap(
    std::shared_ptr<tcpkit::Stream> stream,
    std::shared_ptr<rdma::SimNode> node, ClientConfig cfg = {});

/// Produces a fresh bootstrap stream per call — typically a closure over
/// BootstrapAcceptor::Dial (possibly through an indirection that tracks
/// the *current* acceptor across server restarts). May throw when no
/// endpoint is reachable; the recovery path treats that as a failed
/// re-bootstrap attempt.
using BootstrapDialFn = std::function<std::shared_ptr<tcpkit::Stream>()>;

/// Re-dialable variant: every handshake (the initial one and each
/// recovery re-bootstrap) dials a fresh stream. The returned client has
/// its reconnect handshake installed, so the liveness watchdog's
/// Disconnected state can heal itself (see RTreeClient::Reconnect).
std::unique_ptr<RTreeClient> ConnectViaBootstrap(
    BootstrapDialFn dial, std::shared_ptr<rdma::SimNode> node,
    ClientConfig cfg = {});

}  // namespace catfish

#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace catfish::workload {
namespace {

geo::Rect RectAt(double x, double y, double w, double h) {
  // Clamp into the unit square, preserving the requested size when it
  // fits (the paper normalizes everything into [0,1]^2).
  const double x0 = std::clamp(x, 0.0, 1.0 - w);
  const double y0 = std::clamp(y, 0.0, 1.0 - h);
  return geo::Rect{x0, y0, x0 + w, y0 + h};
}

}  // namespace

geo::Rect UniformRect(Xoshiro256& rng, double max_edge) {
  const double w = rng.NextDouble() * max_edge;
  const double h = rng.NextDouble() * max_edge;
  return RectAt(rng.NextDouble() * (1.0 - w), rng.NextDouble() * (1.0 - h),
                w, h);
}

geo::Rect PowerLawScaleRect(Xoshiro256& rng, double lo, double hi,
                            double exponent) {
  const double scale = rng.PowerLaw(lo, hi, exponent);
  return UniformRect(rng, scale);
}

geo::Rect SkewedInsertRect(Xoshiro256& rng, double max_edge) {
  double x = rng.PowerLaw(0.5, 1.0, -0.99);
  double y = rng.PowerLaw(0.5, 1.0, -0.99);
  // "randomly offset the insert position (x, y) to one of (x, y),
  // (1-x, y), (x, 1-y) and (1-x, 1-y)" — reflecting the skew into all
  // four corners of the space (city areas).
  const uint64_t corner = rng.NextBounded(4);
  if (corner & 1) x = 1.0 - x;
  if (corner & 2) y = 1.0 - y;
  const double w = rng.NextDouble() * max_edge;
  const double h = rng.NextDouble() * max_edge;
  return RectAt(x, y, w, h);
}

std::vector<rtree::Entry> UniformDataset(size_t n, double max_edge,
                                         uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<rtree::Entry> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back({UniformRect(rng, max_edge), i});
  }
  return items;
}

namespace {

/// Shared sub-region grid geometry so the dataset builder and the query
/// generator agree on where streets exist. grid_x × grid_y cells, the
/// first `regions` of which (row-major from the north-west) are
/// populated — no empty map holes inside the covered area.
struct Rea02Grid {
  size_t regions;
  size_t grid_x;
  size_t grid_y;
  double region_w;
  double region_h;
};

Rea02Grid ComputeGrid(const Rea02Config& cfg) {
  Rea02Grid g;
  g.regions = (cfg.total + cfg.region_size - 1) / cfg.region_size;
  g.grid_x = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(g.regions))));
  g.grid_y = (g.regions + g.grid_x - 1) / g.grid_x;
  g.region_w = 1.0 / static_cast<double>(g.grid_x);
  g.region_h = 1.0 / static_cast<double>(g.grid_y);
  return g;
}

}  // namespace

Rea02Dataset BuildRea02Synthetic(uint64_t seed, Rea02Config cfg) {
  Xoshiro256 rng(seed);
  Rea02Dataset out;
  out.config = cfg;
  out.insert_order.reserve(cfg.total);

  const Rea02Grid g = ComputeGrid(cfg);
  const size_t regions = g.regions;
  const double region_w = g.region_w;

  // Inside a region: rows of street segments, row-major. Rows run
  // north→south, segments west→east (the dataset's documented order).
  const auto rows = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(cfg.region_size))));
  const size_t segs_per_row = (cfg.region_size + rows - 1) / rows;
  const double row_h = g.region_h / static_cast<double>(rows);
  const double seg_w = region_w / static_cast<double>(segs_per_row);

  // "sub-regions are inserted in a random order"
  std::vector<size_t> region_ids(regions);
  for (size_t i = 0; i < regions; ++i) region_ids[i] = i;
  for (size_t i = regions; i > 1; --i) {
    std::swap(region_ids[i - 1], region_ids[rng.NextBounded(i)]);
  }

  uint64_t id = 0;
  for (const size_t r : region_ids) {
    if (out.insert_order.size() >= cfg.total) break;
    const double rx = static_cast<double>(r % g.grid_x) * region_w;
    const double ry =
        1.0 - static_cast<double>(r / g.grid_x + 1) * g.region_h;
    for (size_t row = 0; row < rows; ++row) {
      const double y_top =
          ry + g.region_h - static_cast<double>(row) * row_h;
      for (size_t s = 0; s < segs_per_row; ++s) {
        if (out.insert_order.size() >= cfg.total) break;
        const double x = rx + static_cast<double>(s) * seg_w;
        // Street segments: thin boxes with jittered extents, axis
        // alternating with the row parity (avenue vs street blocks).
        const double len = seg_w * (0.7 + 0.3 * rng.NextDouble());
        const double thick = row_h * 0.12 * (0.5 + rng.NextDouble());
        const double jitter_y = row_h * 0.3 * rng.NextDouble();
        geo::Rect rect{x, y_top - thick - jitter_y, x + len,
                       y_top - jitter_y};
        rect.min_y = std::max(0.0, rect.min_y);
        rect.max_y = std::min(1.0, std::max(rect.max_y, rect.min_y));
        rect.max_x = std::min(1.0, rect.max_x);
        out.insert_order.push_back({rect, id++});
      }
    }
  }
  return out;
}

geo::Rect Rea02Query(Xoshiro256& rng, const Rea02Config& cfg) {
  // Target cardinality uniform in [lo, hi]. Queries land inside a
  // populated sub-region (the real query file queries mapped streets):
  // with region density total/(regions·region_area), a square of area
  // k / density intersects ≈ k segments.
  const Rea02Grid g = ComputeGrid(cfg);
  const uint32_t k = cfg.query_results_lo +
                     static_cast<uint32_t>(rng.NextBounded(
                         cfg.query_results_hi - cfg.query_results_lo + 1));
  const double density = static_cast<double>(cfg.total) /
                         (static_cast<double>(g.regions) * g.region_w *
                          g.region_h);
  const double side = std::sqrt(static_cast<double>(k) / density);

  const size_t r = rng.NextBounded(g.regions);
  const double rx = static_cast<double>(r % g.grid_x) * g.region_w;
  const double ry = 1.0 - static_cast<double>(r / g.grid_x + 1) * g.region_h;
  const double x = rx + rng.NextDouble() * std::max(0.0, g.region_w - side);
  const double y = ry + rng.NextDouble() * std::max(0.0, g.region_h - side);
  return geo::Rect{x, y, std::min(1.0, x + side), std::min(1.0, y + side)};
}

double RequestGen::NextScale() {
  switch (cfg_.dist) {
    case ScaleDist::kPowerLaw:
      return rng_.PowerLaw(cfg_.pl_lo, cfg_.pl_hi, cfg_.pl_exponent);
    case ScaleDist::kFixed:
    default:
      return cfg_.scale;
  }
}

Request RequestGen::Next() {
  Request req;
  if (cfg_.insert_ratio > 0.0 && rng_.NextDouble() < cfg_.insert_ratio) {
    req.op = OpType::kInsert;
    // Inserts keep the workload's scale even under kRea02 (the paper's
    // hybrid runs only use the synthetic scales).
    const double scale =
        cfg_.dist == ScaleDist::kRea02 ? cfg_.scale : NextScale();
    req.rect = SkewedInsertRect(rng_, scale);
    req.id = cfg_.first_insert_id + next_insert_id_++;
    return req;
  }
  req.op = OpType::kSearch;
  if (cfg_.dist == ScaleDist::kRea02) {
    req.rect = Rea02Query(rng_, cfg_.rea02);
  } else {
    req.rect = UniformRect(rng_, NextScale());
  }
  return req;
}

}  // namespace catfish::workload

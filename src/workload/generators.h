// Workload generation for the paper's experiments (§I, §V).
//
//  * Datasets: 2 M uniform rectangles with edges in (0, 1e-4] (§V-B),
//    and a synthetic stand-in for the rea02 real-world dataset (§V-C) —
//    California street segments with the published insertion-order
//    structure (random sub-regions of ~20 k, row-major west→east inside,
//    rows north→south).
//  * Search requests: "scale s" means edges uniform in (0, s] at a
//    uniform location; the power-law workload draws s itself from
//    f(t) ∝ t^-0.99 over (1e-5, 1e-2] — skewed toward small scopes.
//  * Insert requests: locations skewed toward the corners through the
//    paper's power-law + reflection scheme ("city areas").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/rect.h"
#include "rtree/node.h"

namespace catfish::workload {

/// Rectangle with edges uniform in (0, max_edge], uniform location,
/// clamped into the unit square.
geo::Rect UniformRect(Xoshiro256& rng, double max_edge);

/// Search rect whose scale is drawn from the paper's power law
/// f(t) ∝ t^exponent over [lo, hi], then edges uniform in (0, scale].
geo::Rect PowerLawScaleRect(Xoshiro256& rng, double lo = 1e-5,
                            double hi = 1e-2, double exponent = -0.99);

/// Insert rect per §V-B: x and y drawn from f(t) ∝ t^-0.99 on (0.5, 1],
/// then the point reflected uniformly into one of the four quadrant
/// corners; edges uniform in (0, max_edge].
geo::Rect SkewedInsertRect(Xoshiro256& rng, double max_edge);

/// The main dataset of §V-B: `n` rectangles with edges in (0, max_edge].
std::vector<rtree::Entry> UniformDataset(size_t n, double max_edge,
                                         uint64_t seed);

// ---------------------------------------------------------------------------
// rea02 synthetic stand-in (§V-C)
// ---------------------------------------------------------------------------

struct Rea02Config {
  /// The real dataset has 1,888,012 street-segment rectangles.
  size_t total = 1'888'012;
  /// "grouped as sub-regions which have roughly 20,000 objects".
  size_t region_size = 20'000;
  /// Mean result cardinality of the query file (uniform in [lo, hi]).
  uint32_t query_results_lo = 50;
  uint32_t query_results_hi = 150;
};

struct Rea02Dataset {
  Rea02Config config;
  /// Rectangles in the dataset's *insertion order* (sub-regions shuffled,
  /// row-major inside a sub-region).
  std::vector<rtree::Entry> insert_order;
};

/// Builds the synthetic street grid. Deterministic for a given seed.
Rea02Dataset BuildRea02Synthetic(uint64_t seed, Rea02Config cfg = {});

/// A query sized so that, against a uniformly dense street grid of
/// `cfg.total` segments, the expected result count is uniform in
/// [query_results_lo, query_results_hi] (mean 100, like the real query
/// file).
geo::Rect Rea02Query(Xoshiro256& rng, const Rea02Config& cfg);

// ---------------------------------------------------------------------------
// Request streams
// ---------------------------------------------------------------------------

enum class OpType : uint8_t { kSearch, kInsert };

struct Request {
  OpType op = OpType::kSearch;
  geo::Rect rect;
  uint64_t id = 0;  ///< rectangle id for inserts
};

/// Per-client request generator reproducing the §V-B workloads:
/// search-only or 90/10 search/insert, at a fixed or power-law scale.
class RequestGen {
 public:
  enum class ScaleDist : uint8_t { kFixed, kPowerLaw, kRea02 };

  struct Config {
    ScaleDist dist = ScaleDist::kFixed;
    double scale = 1e-5;          ///< fixed-scale workloads (1e-5 / 1e-2)
    double pl_lo = 1e-5;          ///< power-law scale range
    double pl_hi = 1e-2;
    double pl_exponent = -0.99;
    Rea02Config rea02;            ///< query geometry for kRea02
    double insert_ratio = 0.0;    ///< 0.1 for the hybrid workloads
    uint64_t first_insert_id = 1ull << 32;  ///< ids disjoint from dataset
  };

  RequestGen(Config cfg, uint64_t seed) : cfg_(cfg), rng_(seed) {}

  Request Next();

  const Config& config() const noexcept { return cfg_; }

 private:
  double NextScale();

  Config cfg_;
  Xoshiro256 rng_;
  uint64_t next_insert_id_ = 0;
};

}  // namespace catfish::workload

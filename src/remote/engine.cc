#include "remote/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "common/clock.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"

namespace catfish::remote {

namespace {

// SplitMix64 step — enough randomness for backoff jitter.
uint64_t NextJitter(uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void Bump(telemetry::Counter* c, uint64_t n = 1) noexcept {
  if (c != nullptr && n != 0) c->Add(n);
}

}  // namespace

// ---------------------------------------------------------------------------
// MultiIssueBatcher
// ---------------------------------------------------------------------------

bool MultiIssueBatcher::Post(uint64_t token, ChunkId id,
                             std::span<std::byte> dst) {
  Stage(token, id, dst);
  rejected_idx_.clear();
  transport_->PostFetchBatch(staged_, rejected_idx_);
  const bool ok = rejected_idx_.empty();
  outstanding_ += staged_.size() - rejected_idx_.size();
  staged_.clear();
  return ok;
}

void MultiIssueBatcher::Stage(uint64_t token, ChunkId id,
                              std::span<std::byte> dst) {
  staged_.push_back(FetchRequest{token, id, dst});
}

size_t MultiIssueBatcher::Flush(std::vector<uint64_t>* rejected) {
  if (staged_.empty()) return 0;
  rejected_idx_.clear();
  transport_->PostFetchBatch(staged_, rejected_idx_);
  if (rejected != nullptr) {
    for (const size_t i : rejected_idx_) {
      rejected->push_back(staged_[i].token);
    }
  }
  const size_t posted = staged_.size() - rejected_idx_.size();
  outstanding_ += posted;
  staged_.clear();
  return posted;
}

size_t MultiIssueBatcher::WaitAny(std::span<FetchCompletion> out) {
  if (!staged_.empty()) Flush();
  // The empty case returns without touching the transport: with nothing
  // outstanding and nothing staged no completion can ever arrive, so
  // yielding into a poll loop here would spin forever.
  if (outstanding_ == 0 || out.empty()) return 0;
  for (;;) {
    const size_t n = transport_->PollCompletions(out);
    if (n > 0) {
      outstanding_ -= std::min(outstanding_, n);
      return n;
    }
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// VersionedFetchEngine
// ---------------------------------------------------------------------------

VersionedFetchEngine::VersionedFetchEngine(FetchTransport* transport,
                                           std::string name,
                                           RetryPolicy policy)
    : transport_(transport), name_(std::move(name)), policy_(policy),
      jitter_state_(policy.seed) {
#if CATFISH_TELEMETRY_ENABLED
  auto& reg = telemetry::Registry::Global();
  m_reads_ = reg.counter("remote." + name_ + ".reads");
  m_retries_ = reg.counter("remote." + name_ + ".version_retries");
  m_all_reads_ = reg.counter("remote.reads");
  m_all_retries_ = reg.counter("remote.version_retries");
  m_exhausted_ = reg.counter("remote.version_retry_exhausted");
  m_transport_errors_ = reg.counter("remote.transport_errors");
  m_batches_ = reg.counter("remote.batches");
#endif
}

void VersionedFetchEngine::Backoff(uint32_t attempt) {
  if (attempt <= policy_.spin_attempts) {
    std::this_thread::yield();
    return;
  }
  const uint32_t step = std::min(attempt - policy_.spin_attempts - 1, 20u);
  const uint64_t ceiling =
      std::min<uint64_t>(policy_.backoff_cap_us,
                         static_cast<uint64_t>(policy_.backoff_base_us)
                             << step);
  if (ceiling == 0) {
    std::this_thread::yield();
    return;
  }
  // Jitter to [ceiling/2, ceiling] so colliding retriers spread out.
  const uint64_t half = ceiling - ceiling / 2;
  const uint64_t us = ceiling / 2 + NextJitter(jitter_state_) % (half + 1);
  ++stats_.backoff_waits;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

FetchStatus VersionedFetchEngine::FetchOne(
    ChunkId id, std::span<std::byte> buf,
    const std::function<bool(std::span<const std::byte>)>& validate) {
  const Request req{id, buf};
  return FetchMany(
      {&req, 1},
      [&validate](size_t, std::span<const std::byte> image) {
        return validate(image);
      });
}

FetchStatus VersionedFetchEngine::FetchMany(std::span<const Request> reqs,
                                            const ValidateFn& validate) {
  if (reqs.empty()) return FetchStatus::kOk;
  if (reqs.size() > 1) {
    ++stats_.batches;
    Bump(m_batches_);
  }
  const uint32_t max_attempts = std::max(1u, policy_.max_attempts);

  MultiIssueBatcher batch(transport_);
  attempts_.assign(reqs.size(), 0);

  FetchStatus result = FetchStatus::kOk;
  // Posts the transport refuses synchronously (fabric drop plan, QP in
  // error state) consume an attempt like a failed completion would, so a
  // flaky link is absorbed by the same bounded retry stream instead of
  // aborting the whole batch on the first refusal.
  std::vector<uint64_t> sync_failed;
  const auto StageOne = [&](size_t i) {
    ++stats_.reads;
    Bump(m_reads_);
    Bump(m_all_reads_);
    batch.Stage(i, reqs[i].id, reqs[i].buf);
  };
  // One doorbell per issue round: §IV-C's stage-everything-first,
  // flushed with a single batched post instead of per-WR doorbells.
  const auto FlushRound = [&] {
    if (batch.staged() == 0) return;
    const size_t before = sync_failed.size();
    batch.Flush(&sync_failed);
    ++stats_.doorbells;
    const uint64_t rejected = sync_failed.size() - before;
    stats_.transport_errors += rejected;
    Bump(m_transport_errors_, rejected);
  };

  for (size_t i = 0; i < reqs.size(); ++i) {
    attempts_[i] = 1;
    StageOne(i);
  }
  FlushRound();

  std::vector<size_t> repost;
  FetchCompletion wcs[64];
  for (;;) {
    for (const uint64_t tok : sync_failed) {
      const size_t i = static_cast<size_t>(tok);
      if (result != FetchStatus::kOk) break;
      if (attempts_[i] >= max_attempts) {
        result = FetchStatus::kTransportError;
        break;
      }
      repost.push_back(i);
    }
    sync_failed.clear();
    if (result != FetchStatus::kOk) repost.clear();
    if (batch.outstanding() == 0 && repost.empty()) break;

    if (batch.outstanding() > 0) {
      ++stats_.polls;  // one coalesced reap pass, however many CQEs land
      const size_t n = batch.WaitAny(wcs);
      for (size_t k = 0; k < n; ++k) {
        const size_t i = static_cast<size_t>(wcs[k].token);
        if (i >= reqs.size()) continue;  // stray completion: not ours
        if (result != FetchStatus::kOk) continue;  // failing: just drain
        if (wcs[k].ok) {
          if (validate(i, reqs[i].buf)) continue;  // item done
          ++stats_.version_retries;
          Bump(m_retries_);
          Bump(m_all_retries_);
        } else {
          ++stats_.transport_errors;
          Bump(m_transport_errors_);
        }
        if (attempts_[i] >= max_attempts) {
          if (wcs[k].ok) {
            ++stats_.retry_exhausted;
            Bump(m_exhausted_);
            CATFISH_EVENT(kRetryExhausted, NowMicros(),
                          std::hash<std::string>{}(name_),
                          static_cast<double>(attempts_[i]),
                          static_cast<double>(reqs.size()));
            result = FetchStatus::kRetriesExhausted;
          } else {
            result = FetchStatus::kTransportError;
          }
          continue;
        }
        repost.push_back(i);
      }
    }
    if (!repost.empty()) {
      if (result != FetchStatus::kOk) {
        repost.clear();
        continue;
      }
      // One backoff per round, scheduled by the most-retried chunk: a
      // round's torn reads share the same conflicting writer.
      uint32_t worst = 0;
      for (const size_t i : repost) worst = std::max(worst, attempts_[i]);
      Backoff(worst);
      for (const size_t i : repost) {
        ++attempts_[i];
        StageOne(i);
      }
      FlushRound();
      repost.clear();
    }
  }
  return result;
}

ScratchPool& VersionedFetchEngine::EnableScratch(size_t buf_bytes,
                                                 size_t capacity) {
  scratch_ = std::make_unique<ScratchPool>(buf_bytes, capacity);
  return *scratch_;
}

FetchStatus VersionedFetchEngine::FetchChunks(std::span<const ChunkId> ids,
                                              const ValidateFn& validate) {
  if (ids.empty()) return FetchStatus::kOk;
  if (scratch_ == nullptr) return FetchStatus::kTransportError;
  // RAII release: whatever exit FetchMany takes — kOk, retry
  // exhaustion, transport error, or an exception out of validate — the
  // acquired buffers go back to the pool before control leaves here.
  struct Lease {
    ScratchPool* pool;
    std::vector<Request>* reqs;
    ~Lease() {
      for (const Request& r : *reqs) pool->Release(r.buf);
      reqs->clear();
    }
  };
  pooled_reqs_.clear();
  const Lease lease{scratch_.get(), &pooled_reqs_};
  for (const ChunkId id : ids) {
    pooled_reqs_.push_back(Request{id, scratch_->Acquire()});
  }
  return FetchMany(pooled_reqs_, validate);
}

void VersionedFetchEngine::NoteConsistencyRetry() {
  ++stats_.version_retries;
  Bump(m_retries_);
  Bump(m_all_retries_);
}

void VersionedFetchEngine::NoteRetriesExhausted() {
  ++stats_.retry_exhausted;
  Bump(m_exhausted_);
}

}  // namespace catfish::remote

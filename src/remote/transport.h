// FetchTransport: the wire abstraction under the remote-access engine.
//
// A transport moves raw chunk images from a registered remote region
// into caller-owned buffers. The interface is deliberately asynchronous
// — post first, poll completions later — because that is what makes
// multi-issue (§IV-C) possible: N independent READs on the wire before
// the first one returns. Synchronous sources (local memory, a plain
// callback) adapt by completing immediately.
//
// Implementations here:
//   * QpFetchTransport     — rdmasim queue pair (or, one day, a real
//                            ibverbs QP behind the same shape)
//   * LocalMemoryTransport — in-process region, for unit tests
//   * CallbackTransport    — any synchronous fetch function
//   * FaultInjectingTransport (fault.h) — wraps another transport and
//                            drops / delays / tears fetches for tests
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>

#include "rdmasim/rdma.h"
#include "rtree/arena.h"

namespace catfish::remote {

using rtree::ChunkId;

/// One finished fetch. `token` echoes the PostFetch token; `ok` is false
/// when the transport could not complete the fetch (the buffer contents
/// are then unspecified).
struct FetchCompletion {
  uint64_t token = 0;
  bool ok = false;
};

class FetchTransport {
 public:
  virtual ~FetchTransport() = default;

  /// Starts fetching the raw image of chunk `id` into `dst` (the caller
  /// keeps `dst` alive and untouched until the completion arrives).
  /// Returns false when the fetch could not even be posted — no
  /// completion will be delivered for it.
  virtual bool PostFetch(uint64_t token, ChunkId id,
                         std::span<std::byte> dst) = 0;

  /// Moves up to out.size() completions into `out`; returns the count.
  /// Non-blocking.
  virtual size_t PollCompletions(std::span<FetchCompletion> out) = 0;
};

/// One-sided READs over an (emulated) RC queue pair: chunk `id` lives at
/// byte offset `base.offset + id * chunk_size` of the peer's registered
/// region `base.rkey`. Fetch wr_ids are tagged, so stray completions on
/// a shared CQ (e.g. error completions of unsignaled ring writes — QP
/// errors always signal) are filtered out rather than misattributed.
class QpFetchTransport final : public FetchTransport {
 public:
  QpFetchTransport(std::shared_ptr<rdma::QueuePair> qp,
                   std::shared_ptr<rdma::CompletionQueue> cq,
                   rdma::RemoteAddr base, size_t chunk_size)
      : qp_(std::move(qp)), cq_(std::move(cq)), base_(base),
        chunk_size_(chunk_size) {}

  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override;
  size_t PollCompletions(std::span<FetchCompletion> out) override;

 private:
  std::shared_ptr<rdma::QueuePair> qp_;
  std::shared_ptr<rdma::CompletionQueue> cq_;
  rdma::RemoteAddr base_;
  size_t chunk_size_;
};

/// Reads chunks straight out of an in-process region with the same
/// cache-line-atomic copy the simulated NIC performs, so seqlock torn
/// reads remain detectable (and defined) when a writer races the fetch.
/// Completions are delivered on the next poll.
class LocalMemoryTransport final : public FetchTransport {
 public:
  LocalMemoryTransport(std::span<std::byte> region, size_t chunk_size)
      : region_(region), chunk_size_(chunk_size) {}

  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override;
  size_t PollCompletions(std::span<FetchCompletion> out) override;

 private:
  std::span<std::byte> region_;
  size_t chunk_size_;
  std::deque<FetchCompletion> ready_;
};

/// Adapts a synchronous fetch function (the pre-engine reader interface:
/// "copy chunk `id` into `dst`, blocking until done").
class CallbackTransport final : public FetchTransport {
 public:
  using FetchFn = std::function<void(ChunkId id, std::span<std::byte> dst)>;

  explicit CallbackTransport(FetchFn fetch) : fetch_(std::move(fetch)) {}

  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override;
  size_t PollCompletions(std::span<FetchCompletion> out) override;

 private:
  FetchFn fetch_;
  std::deque<FetchCompletion> ready_;
};

}  // namespace catfish::remote

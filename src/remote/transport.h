// FetchTransport: the wire abstraction under the remote-access engine.
//
// A transport moves raw chunk images from a registered remote region
// into caller-owned buffers. The interface is deliberately asynchronous
// — post first, poll completions later — because that is what makes
// multi-issue (§IV-C) possible: N independent READs on the wire before
// the first one returns. Synchronous sources (local memory, a plain
// callback) adapt by completing immediately.
//
// Implementations here:
//   * QpFetchTransport     — rdmasim queue pair (or, one day, a real
//                            ibverbs QP behind the same shape)
//   * LocalMemoryTransport — in-process region, for unit tests
//   * CallbackTransport    — any synchronous fetch function
//   * FaultInjectingTransport (fault.h) — wraps another transport and
//                            drops / delays / tears fetches for tests
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "rdmasim/rdma.h"
#include "rtree/arena.h"

namespace catfish::remote {

using rtree::ChunkId;

/// One finished fetch. `token` echoes the PostFetch token; `ok` is false
/// when the transport could not complete the fetch (the buffer contents
/// are then unspecified).
struct FetchCompletion {
  uint64_t token = 0;
  bool ok = false;
};

/// One staged fetch of a doorbell batch (PostFetchBatch).
struct FetchRequest {
  uint64_t token = 0;
  ChunkId id = 0;
  std::span<std::byte> dst;
};

/// Token-keyed bookkeeping for fetches that are in flight on the wire:
/// Add() on post, Take() on completion. Transports that tag QP work
/// requests (QpFetchTransport) and transports that perturb them
/// (FaultInjectingTransport's pending tears) share this instead of each
/// growing its own find-and-erase loop. Storage is a flat vector scanned
/// linearly — in-flight counts are batch-sized, and entries stay in post
/// order so FIFO completions hit the front. Thread-compatible, like the
/// transports that embed it.
class PendingFetchMap {
 public:
  void Add(uint64_t token, std::span<std::byte> dst) {
    items_.push_back(Item{token, dst});
  }

  /// Removes and returns the entry for `token`; nullopt when the token
  /// is unknown (a stray or duplicate completion — callers skip those).
  std::optional<std::span<std::byte>> Take(uint64_t token) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->token != token) continue;
      const std::span<std::byte> dst = it->dst;
      items_.erase(it);
      return dst;
    }
    return std::nullopt;
  }

  size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }

 private:
  struct Item {
    uint64_t token;
    std::span<std::byte> dst;
  };
  std::vector<Item> items_;
};

class FetchTransport {
 public:
  virtual ~FetchTransport() = default;

  /// Starts fetching the raw image of chunk `id` into `dst` (the caller
  /// keeps `dst` alive and untouched until the completion arrives).
  /// Returns false when the fetch could not even be posted — no
  /// completion will be delivered for it.
  virtual bool PostFetch(uint64_t token, ChunkId id,
                         std::span<std::byte> dst) = 0;

  /// Doorbell-batched issue: posts every request with (at most) one
  /// doorbell where the transport supports it. Requests the transport
  /// rejects synchronously — the PostFetch-returns-false case — have
  /// their indices appended to `rejected`; no completion will arrive for
  /// those. The default loops over the single-shot path, so synchronous
  /// adapters (LocalMemoryTransport, CallbackTransport) and wrappers
  /// (FaultInjectingTransport) batch correctly without overriding.
  virtual void PostFetchBatch(std::span<const FetchRequest> reqs,
                              std::vector<size_t>& rejected) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (!PostFetch(reqs[i].token, reqs[i].id, reqs[i].dst)) {
        rejected.push_back(i);
      }
    }
  }

  /// Moves up to out.size() completions into `out`; returns the count.
  /// Non-blocking.
  virtual size_t PollCompletions(std::span<FetchCompletion> out) = 0;
};

/// One-sided READs over an (emulated) RC queue pair: chunk `id` lives at
/// byte offset `base.offset + id * chunk_size` of the peer's registered
/// region `base.rkey`. Fetch wr_ids are tagged, so stray completions on
/// a shared CQ (e.g. error completions of unsignaled ring writes — QP
/// errors always signal) are filtered out rather than misattributed.
class QpFetchTransport final : public FetchTransport {
 public:
  QpFetchTransport(std::shared_ptr<rdma::QueuePair> qp,
                   std::shared_ptr<rdma::CompletionQueue> cq,
                   rdma::RemoteAddr base, size_t chunk_size)
      : qp_(std::move(qp)), cq_(std::move(cq)), base_(base),
        chunk_size_(chunk_size) {}

  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override;
  /// Builds one WR chain and rings a single QP doorbell for the whole
  /// batch. Never rejects: like PostFetch, failures surface only as
  /// error completions (single-channel error reporting).
  void PostFetchBatch(std::span<const FetchRequest> reqs,
                      std::vector<size_t>& rejected) override;
  size_t PollCompletions(std::span<FetchCompletion> out) override;

 private:
  rdma::RemoteAddr ChunkAddr(ChunkId id) const noexcept {
    return rdma::RemoteAddr{
        base_.rkey, base_.offset + static_cast<uint64_t>(id) * chunk_size_};
  }

  std::shared_ptr<rdma::QueuePair> qp_;
  std::shared_ptr<rdma::CompletionQueue> cq_;
  rdma::RemoteAddr base_;
  size_t chunk_size_;
  /// Tokens with a READ on the wire: completions whose token is not in
  /// here are strays (e.g. a duplicate from a torn-down engine) and are
  /// dropped instead of handed to the engine.
  PendingFetchMap in_flight_;
  /// Reused WR staging area for PostFetchBatch (no per-batch allocation
  /// once warmed up).
  std::vector<rdma::WorkRequest> wrs_;
};

/// Reads chunks straight out of an in-process region with the same
/// cache-line-atomic copy the simulated NIC performs, so seqlock torn
/// reads remain detectable (and defined) when a writer races the fetch.
/// Completions are delivered on the next poll.
class LocalMemoryTransport final : public FetchTransport {
 public:
  LocalMemoryTransport(std::span<std::byte> region, size_t chunk_size)
      : region_(region), chunk_size_(chunk_size) {}

  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override;
  size_t PollCompletions(std::span<FetchCompletion> out) override;

 private:
  std::span<std::byte> region_;
  size_t chunk_size_;
  std::deque<FetchCompletion> ready_;
};

/// Adapts a synchronous fetch function (the pre-engine reader interface:
/// "copy chunk `id` into `dst`, blocking until done").
class CallbackTransport final : public FetchTransport {
 public:
  using FetchFn = std::function<void(ChunkId id, std::span<std::byte> dst)>;

  explicit CallbackTransport(FetchFn fetch) : fetch_(std::move(fetch)) {}

  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override;
  size_t PollCompletions(std::span<FetchCompletion> out) override;

 private:
  FetchFn fetch_;
  std::deque<FetchCompletion> ready_;
};

}  // namespace catfish::remote

// Fault-injecting FetchTransport wrapper for tests.
//
// Wraps any transport and perturbs its fetches deterministically:
//
//   * drop  — the fetch "fails on the wire": the inner transport is
//             never asked, and a failed completion is delivered instead
//             (how an RC transport surfaces exhausted NIC-level retries);
//   * tear  — the fetch completes but the buffer looks torn: one version
//             word is bumped to an odd value after the copy, so seqlock
//             validation must reject it;
//   * delay — completions are withheld for a number of polls before
//             delivery, exercising the engine's wait loop.
//
// Faults fire per fetch in post order: fetch k (0-based) is dropped when
// `drop.Hits(k)`, torn when `tear.Hits(k)`. This makes tests exact: a
// plan of {first: 3} means fetches 0,1,2 fail and fetch 3 succeeds.
#pragma once

#include <cstdint>
#include <deque>

#include "remote/transport.h"
#include "rtree/layout.h"

namespace catfish::remote {

/// Which fetch ordinals a fault applies to.
struct FaultPlan {
  /// Fault the first `first` fetches (then stop).
  uint64_t first = 0;
  /// Additionally fault every `every`-th fetch (0 = off).
  uint64_t every = 0;

  bool Hits(uint64_t ordinal) const noexcept {
    if (ordinal < first) return true;
    return every != 0 && (ordinal + 1) % every == 0;
  }
};

class FaultInjectingTransport final : public FetchTransport {
 public:
  explicit FaultInjectingTransport(FetchTransport* inner) : inner_(inner) {}

  FaultPlan drop;   ///< fail these fetches outright
  FaultPlan tear;   ///< deliver these fetches with a torn version word
  uint64_t delay_polls = 0;  ///< withhold each completion this many polls

  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override {
    const uint64_t ordinal = fetches_++;
    if (drop.Hits(ordinal)) {
      held_.push_back(Held{FetchCompletion{token, false}, delay_polls, true});
      return true;
    }
    if (!inner_->PostFetch(token, id, dst)) return false;
    if (tear.Hits(ordinal)) pending_tears_.Add(token, dst);
    return true;
  }

  size_t PollCompletions(std::span<FetchCompletion> out) override {
    // Pull everything the inner transport has ready, apply tears, then
    // queue through the delay line. Entries surfaced by THIS poll are
    // marked fresh and skip this poll's aging pass — otherwise they would
    // be delivered one poll early (after delay_polls - 1 further polls
    // instead of delay_polls).
    FetchCompletion inner_out[16];
    size_t n;
    while ((n = inner_->PollCompletions(inner_out)) > 0) {
      for (size_t i = 0; i < n; ++i) {
        ApplyTear(inner_out[i]);
        held_.push_back(Held{inner_out[i], delay_polls, true});
      }
    }
    for (auto& h : held_) {
      if (h.fresh) {
        h.fresh = false;
      } else if (h.polls_left > 0) {
        --h.polls_left;
      }
    }
    size_t produced = 0;
    while (produced < out.size() && !held_.empty() &&
           held_.front().polls_left == 0 && !held_.front().fresh) {
      out[produced++] = held_.front().wc;
      held_.pop_front();
    }
    return produced;
  }

  uint64_t fetches_posted() const noexcept { return fetches_; }

 private:
  struct Held {
    FetchCompletion wc;
    uint64_t polls_left;
    /// Set on the poll (or post) that enqueued the entry; cleared by the
    /// next aging pass in lieu of a decrement, so every entry waits a
    /// full `delay_polls` polls regardless of when it was enqueued.
    bool fresh;
  };
  void ApplyTear(const FetchCompletion& wc) {
    // Token-keyed in-flight bookkeeping shared with QpFetchTransport
    // (PendingFetchMap): posted tears are looked up — and retired — by
    // the completion's token.
    const auto dst = pending_tears_.Take(wc.token);
    if (!dst) return;
    if (wc.ok && dst->size() >= rtree::kLineSize) {
      // Make line 0's version odd: validation must reject the image.
      auto line0 = dst->first(rtree::kLineSize);
      rtree::BeginWrite(line0);
    }
  }

  FetchTransport* inner_;
  uint64_t fetches_ = 0;
  std::deque<Held> held_;
  PendingFetchMap pending_tears_;
};

}  // namespace catfish::remote

#include "remote/transport.h"

#include "rtree/layout.h"

namespace catfish::remote {

// ---------------------------------------------------------------------------
// QpFetchTransport
// ---------------------------------------------------------------------------

bool QpFetchTransport::PostFetch(uint64_t token, ChunkId id,
                                 std::span<std::byte> dst) {
  const rdma::RemoteAddr src{
      base_.rkey, base_.offset + static_cast<uint64_t>(id) * chunk_size_};
  return qp_->PostRead(token, dst, src);
}

size_t QpFetchTransport::PollCompletions(std::span<FetchCompletion> out) {
  rdma::WorkCompletion wcs[16];
  size_t produced = 0;
  while (produced < out.size()) {
    const size_t want = std::min(out.size() - produced, std::size(wcs));
    const size_t n = cq_->Poll({wcs, want});
    for (size_t i = 0; i < n; ++i) {
      out[produced++] = FetchCompletion{
          wcs[i].wr_id, wcs[i].status == rdma::WcStatus::kSuccess};
    }
    if (n < want) break;
  }
  return produced;
}

// ---------------------------------------------------------------------------
// LocalMemoryTransport
// ---------------------------------------------------------------------------

bool LocalMemoryTransport::PostFetch(uint64_t token, ChunkId id,
                                     std::span<std::byte> dst) {
  const uint64_t off = static_cast<uint64_t>(id) * chunk_size_;
  if (off + dst.size() > region_.size()) {
    ready_.push_back(FetchCompletion{token, false});
    return true;  // posted; fails at completion like a remote-access error
  }
  // Same per-line snapshot semantics as the simulated NIC's READ service:
  // the region may have a live seqlock writer.
  rtree::SnapshotCopy(dst.data(), region_.data() + off, dst.size());
  ready_.push_back(FetchCompletion{token, true});
  return true;
}

size_t LocalMemoryTransport::PollCompletions(std::span<FetchCompletion> out) {
  size_t n = 0;
  while (n < out.size() && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

// ---------------------------------------------------------------------------
// CallbackTransport
// ---------------------------------------------------------------------------

bool CallbackTransport::PostFetch(uint64_t token, ChunkId id,
                                  std::span<std::byte> dst) {
  fetch_(id, dst);
  ready_.push_back(FetchCompletion{token, true});
  return true;
}

size_t CallbackTransport::PollCompletions(std::span<FetchCompletion> out) {
  size_t n = 0;
  while (n < out.size() && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

}  // namespace catfish::remote

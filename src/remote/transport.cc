#include "remote/transport.h"

#include "rtree/layout.h"

namespace catfish::remote {

// ---------------------------------------------------------------------------
// QpFetchTransport
// ---------------------------------------------------------------------------

namespace {

// Fetch wr_ids carry this tag so their completions are distinguishable
// from any other traffic sharing the QP's send CQ. Ring writes are
// unsignaled, but their *failures* still complete (errors are always
// signaled, as on real hardware) — without the tag a dropped ring write
// would be misread as a failed fetch whose token happens to collide.
constexpr uint64_t kFetchWrTag = 1ull << 63;

}  // namespace

bool QpFetchTransport::PostFetch(uint64_t token, ChunkId id,
                                 std::span<std::byte> dst) {
  // Every posted READ produces exactly one completion, success or error
  // (QP error, fabric fault, bad rkey). Report failures through that
  // single channel only: returning false here as well would hand the
  // engine the same failure twice, and the duplicate retry can fetch —
  // and validate — the same chunk twice.
  in_flight_.Add(token, dst);
  (void)qp_->PostRead(token | kFetchWrTag, dst, ChunkAddr(id));
  return true;
}

void QpFetchTransport::PostFetchBatch(std::span<const FetchRequest> reqs,
                                      std::vector<size_t>& /*rejected*/) {
  // One WR chain, one doorbell. Same single-channel error policy as
  // PostFetch: a WR the fabric drops mid-batch signals its own error
  // CQE while the rest of the chain still executes, so nothing is ever
  // appended to `rejected`.
  wrs_.clear();
  wrs_.reserve(reqs.size());
  for (const FetchRequest& r : reqs) {
    rdma::WorkRequest wr;
    wr.kind = rdma::WorkRequest::Kind::kRead;
    wr.wr_id = r.token | kFetchWrTag;
    wr.dst = r.dst;
    wr.remote = ChunkAddr(r.id);
    wrs_.push_back(wr);
    in_flight_.Add(r.token, r.dst);
  }
  (void)qp_->PostBatch(wrs_);
}

size_t QpFetchTransport::PollCompletions(std::span<FetchCompletion> out) {
  // Coalesced reaping: one wide PollMany per pass (one CQ lock) instead
  // of dribbling CQEs out one at a time.
  rdma::WorkCompletion wcs[64];
  size_t produced = 0;
  while (produced < out.size()) {
    const size_t want = std::min(out.size() - produced, std::size(wcs));
    const size_t n = cq_->PollMany({wcs, want});
    for (size_t i = 0; i < n; ++i) {
      if ((wcs[i].wr_id & kFetchWrTag) == 0) continue;  // not a fetch
      const uint64_t token = wcs[i].wr_id & ~kFetchWrTag;
      if (!in_flight_.Take(token)) continue;  // stray/duplicate: drop
      out[produced++] = FetchCompletion{
          token, wcs[i].status == rdma::WcStatus::kSuccess};
    }
    if (n < want) break;
  }
  return produced;
}

// ---------------------------------------------------------------------------
// LocalMemoryTransport
// ---------------------------------------------------------------------------

bool LocalMemoryTransport::PostFetch(uint64_t token, ChunkId id,
                                     std::span<std::byte> dst) {
  const uint64_t off = static_cast<uint64_t>(id) * chunk_size_;
  if (off + dst.size() > region_.size()) {
    ready_.push_back(FetchCompletion{token, false});
    return true;  // posted; fails at completion like a remote-access error
  }
  // Same per-line snapshot semantics as the simulated NIC's READ service:
  // the region may have a live seqlock writer.
  rtree::SnapshotCopy(dst.data(), region_.data() + off, dst.size());
  ready_.push_back(FetchCompletion{token, true});
  return true;
}

size_t LocalMemoryTransport::PollCompletions(std::span<FetchCompletion> out) {
  size_t n = 0;
  while (n < out.size() && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

// ---------------------------------------------------------------------------
// CallbackTransport
// ---------------------------------------------------------------------------

bool CallbackTransport::PostFetch(uint64_t token, ChunkId id,
                                  std::span<std::byte> dst) {
  fetch_(id, dst);
  ready_.push_back(FetchCompletion{token, true});
  return true;
}

size_t CallbackTransport::PollCompletions(std::span<FetchCompletion> out) {
  size_t n = 0;
  while (n < out.size() && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

}  // namespace catfish::remote

#include "remote/transport.h"

#include "rtree/layout.h"

namespace catfish::remote {

// ---------------------------------------------------------------------------
// QpFetchTransport
// ---------------------------------------------------------------------------

namespace {

// Fetch wr_ids carry this tag so their completions are distinguishable
// from any other traffic sharing the QP's send CQ. Ring writes are
// unsignaled, but their *failures* still complete (errors are always
// signaled, as on real hardware) — without the tag a dropped ring write
// would be misread as a failed fetch whose token happens to collide.
constexpr uint64_t kFetchWrTag = 1ull << 63;

}  // namespace

bool QpFetchTransport::PostFetch(uint64_t token, ChunkId id,
                                 std::span<std::byte> dst) {
  const rdma::RemoteAddr src{
      base_.rkey, base_.offset + static_cast<uint64_t>(id) * chunk_size_};
  // Every posted READ produces exactly one completion, success or error
  // (QP error, fabric fault, bad rkey). Report failures through that
  // single channel only: returning false here as well would hand the
  // engine the same failure twice, and the duplicate retry can fetch —
  // and validate — the same chunk twice.
  (void)qp_->PostRead(token | kFetchWrTag, dst, src);
  return true;
}

size_t QpFetchTransport::PollCompletions(std::span<FetchCompletion> out) {
  rdma::WorkCompletion wcs[16];
  size_t produced = 0;
  while (produced < out.size()) {
    const size_t want = std::min(out.size() - produced, std::size(wcs));
    const size_t n = cq_->Poll({wcs, want});
    for (size_t i = 0; i < n; ++i) {
      if ((wcs[i].wr_id & kFetchWrTag) == 0) continue;  // not a fetch
      out[produced++] = FetchCompletion{
          wcs[i].wr_id & ~kFetchWrTag,
          wcs[i].status == rdma::WcStatus::kSuccess};
    }
    if (n < want) break;
  }
  return produced;
}

// ---------------------------------------------------------------------------
// LocalMemoryTransport
// ---------------------------------------------------------------------------

bool LocalMemoryTransport::PostFetch(uint64_t token, ChunkId id,
                                     std::span<std::byte> dst) {
  const uint64_t off = static_cast<uint64_t>(id) * chunk_size_;
  if (off + dst.size() > region_.size()) {
    ready_.push_back(FetchCompletion{token, false});
    return true;  // posted; fails at completion like a remote-access error
  }
  // Same per-line snapshot semantics as the simulated NIC's READ service:
  // the region may have a live seqlock writer.
  rtree::SnapshotCopy(dst.data(), region_.data() + off, dst.size());
  ready_.push_back(FetchCompletion{token, true});
  return true;
}

size_t LocalMemoryTransport::PollCompletions(std::span<FetchCompletion> out) {
  size_t n = 0;
  while (n < out.size() && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

// ---------------------------------------------------------------------------
// CallbackTransport
// ---------------------------------------------------------------------------

bool CallbackTransport::PostFetch(uint64_t token, ChunkId id,
                                  std::span<std::byte> dst) {
  fetch_(id, dst);
  ready_.push_back(FetchCompletion{token, true});
  return true;
}

size_t CallbackTransport::PollCompletions(std::span<FetchCompletion> out) {
  size_t n = 0;
  while (n < out.size() && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

}  // namespace catfish::remote

// ScratchPool: bounded pool of reusable fetch buffers.
//
// The read→validate→retry hot path used to allocate a fresh vector per
// fetched chunk per traversal level. On real verbs that is doubly wrong:
// the allocation itself, and the fact that READ destinations must live
// in *registered* memory, so fresh buffers would each need an
// ibv_reg_mr (paper §III-B: registration is expensive). The pool carves
// a fixed number of fixed-size buffers out of one contiguous slab —
// registerable once, reused forever — and falls back to counted heap
// allocations when a burst (an unusually wide traversal level) exceeds
// the bound, so capacity is a performance knob, never a correctness
// limit.
//
// Thread-compatible, like the engine that owns it: one thread acquires
// and releases at a time.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "telemetry/metrics.h"

namespace catfish::remote {

class ScratchPool {
 public:
  /// `buf_bytes` is the fixed buffer size (the transport's chunk size);
  /// `capacity` bounds how many pooled buffers exist.
  ScratchPool(size_t buf_bytes, size_t capacity)
      : buf_bytes_(buf_bytes), slab_(buf_bytes * capacity) {
    assert(buf_bytes_ > 0 && capacity > 0);
    free_.reserve(capacity);
    // LIFO free list: the most recently released buffer is the hottest
    // in cache, so hand it out first.
    for (size_t i = capacity; i-- > 0;) {
      free_.push_back(static_cast<uint32_t>(i));
    }
  }

  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// The whole backing region, for one-shot MR registration by the
  /// owner. (rdmasim READs do not require registered local buffers, but
  /// real verbs do — keeping the slab contiguous preserves that
  /// migration path.)
  std::span<std::byte> slab() noexcept { return slab_; }

  /// Hands out one buffer of buf_bytes(). Never fails: when the pool is
  /// exhausted the buffer is heap-allocated and counted as an overflow.
  std::span<std::byte> Acquire() {
    CATFISH_COUNT("remote.scratch.acquires");
    std::span<std::byte> out;
    if (!free_.empty()) {
      const uint32_t slot = free_.back();
      free_.pop_back();
      out = std::span<std::byte>(slab_.data() + slot * buf_bytes_, buf_bytes_);
    } else {
      ++overflow_allocs_;
      CATFISH_COUNT("remote.scratch.overflows");
      overflow_.push_back(std::make_unique<std::byte[]>(buf_bytes_));
      out = std::span<std::byte>(overflow_.back().get(), buf_bytes_);
    }
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return out;
  }

  /// Returns a buffer obtained from Acquire. Overflow buffers are freed
  /// here; pooled slots go back on the free list.
  void Release(std::span<std::byte> buf) {
    assert(in_use_ > 0);
    --in_use_;
    const std::byte* p = buf.data();
    if (p >= slab_.data() && p < slab_.data() + slab_.size()) {
      const size_t off = static_cast<size_t>(p - slab_.data());
      assert(off % buf_bytes_ == 0);
      free_.push_back(static_cast<uint32_t>(off / buf_bytes_));
      return;
    }
    for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
      if (it->get() == p) {
        overflow_.erase(it);
        return;
      }
    }
    assert(false && "Release of a buffer this pool never handed out");
  }

  size_t buf_bytes() const noexcept { return buf_bytes_; }
  size_t capacity() const noexcept { return slab_.size() / buf_bytes_; }
  /// Buffers currently held by callers — the leak detector: zero
  /// whenever no fetch is mid-flight, whatever FetchStatus path exited.
  size_t in_use() const noexcept { return in_use_; }
  size_t high_water() const noexcept { return high_water_; }
  uint64_t overflow_allocs() const noexcept { return overflow_allocs_; }

 private:
  size_t buf_bytes_;
  std::vector<std::byte> slab_;
  std::vector<uint32_t> free_;
  std::vector<std::unique_ptr<std::byte[]>> overflow_;
  size_t in_use_ = 0;
  size_t high_water_ = 0;
  uint64_t overflow_allocs_ = 0;
};

}  // namespace catfish::remote

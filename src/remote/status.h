// Result codes of the shared one-sided remote-access engine.
//
// The engine never hot-spins and never throws: a fetch that cannot be
// validated within the retry policy's bounds surfaces as a status the
// call site can recover from (fall back to fast messaging, re-issue the
// whole operation, or report the error upward).
#pragma once

#include <cstdint>

namespace catfish::remote {

enum class FetchStatus : uint8_t {
  /// Every requested chunk was fetched and validated.
  kOk = 0,
  /// Version validation kept failing for some chunk until the retry
  /// policy's attempt budget ran out (a persistently torn read — e.g. a
  /// writer livelocking the reader, or corrupted remote memory).
  kRetriesExhausted,
  /// The transport failed a fetch (post error or failed completion) and
  /// the attempt budget ran out re-trying it.
  kTransportError,
};

constexpr const char* ToString(FetchStatus s) noexcept {
  switch (s) {
    case FetchStatus::kOk: return "ok";
    case FetchStatus::kRetriesExhausted: return "retries-exhausted";
    case FetchStatus::kTransportError: return "transport-error";
  }
  return "unknown";
}

}  // namespace catfish::remote

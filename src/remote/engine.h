// VersionedFetchEngine: the shared read→validate→retry substrate of
// every offloaded data structure (paper §III-B, §IV-C; FaRM / Pilaf).
//
// The engine owns the loop the R-tree client, the remote B+-tree reader
// and the remote cuckoo reader used to each implement privately:
//
//   1. post one-sided READs of whole node chunks — all of a round's
//      independent READs back-to-back (MultiIssueBatcher, §IV-C);
//   2. validate each returned image with a caller-supplied check
//      (seqlock versions + decode, rtree/layout.h);
//   3. re-fetch torn images under a *bounded* retry policy: a few
//      immediate retries, then capped exponential backoff with jitter —
//      never the unbounded hot spin the private loops had. Exhaustion
//      surfaces as FetchStatus, not as a throw or a hang.
//
// Every engine instance reports into the metrics registry under the
// stable `remote.*` schema (see README §Telemetry): aggregate counters
// plus per-engine `remote.<name>.reads` / `remote.<name>.version_retries`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "remote/scratch.h"
#include "remote/status.h"
#include "remote/transport.h"

namespace catfish::telemetry {
class Counter;
}

namespace catfish::remote {

/// Bounds the read→validate→retry loop. Defaults: retry immediately a
/// few times (torn reads usually resolve within one writer critical
/// section), then back off exponentially — 1, 2, 4, ... µs capped at
/// `backoff_cap_us`, each sleep jittered to [½·step, step] — until
/// `max_attempts` fetches of the same chunk have failed. Worst case is
/// therefore bounded by roughly max_attempts × backoff_cap_us.
struct RetryPolicy {
  uint32_t max_attempts = 64;
  uint32_t spin_attempts = 4;
  uint32_t backoff_base_us = 1;
  uint32_t backoff_cap_us = 256;
  uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter randomization
};

/// Cumulative per-engine counters. The benches report READs/op from
/// these, so numbers from different consumers are directly comparable.
struct EngineStats {
  uint64_t reads = 0;             ///< fetches posted, incl. re-fetches
  uint64_t version_retries = 0;   ///< images rejected by validation
  uint64_t retry_exhausted = 0;   ///< operations that ran out of attempts
  uint64_t transport_errors = 0;  ///< failed posts/completions observed
  uint64_t batches = 0;           ///< multi-issue rounds (≥2 chunks)
  uint64_t backoff_waits = 0;     ///< sleeps taken while retrying
  uint64_t doorbells = 0;         ///< issue flushes (Stage/Flush rounds)
  uint64_t polls = 0;             ///< completion reap passes
};

/// Posts N independent fetches before waiting for any of them — the
/// multi-issue enhancement (§IV-C) generalized: the R-tree uses it per
/// traversal level, the cuckoo reader for its two probes.
///
/// Issue follows a doorbell model: Stage() queues work requests locally
/// at zero wire cost, Flush() hands the whole round to the transport in
/// one batched post. Post() keeps the legacy one-shot shape (a staged
/// round of one, flushed immediately).
class MultiIssueBatcher {
 public:
  explicit MultiIssueBatcher(FetchTransport* transport)
      : transport_(transport) {}

  /// Posts a fetch tagged `token`. False when the transport rejects it.
  bool Post(uint64_t token, ChunkId id, std::span<std::byte> dst);

  /// Queues a fetch for the next Flush. Nothing touches the wire yet.
  void Stage(uint64_t token, ChunkId id, std::span<std::byte> dst);

  /// Posts every staged fetch with one transport doorbell. Tokens the
  /// transport rejected synchronously (no completion will arrive) are
  /// appended to `rejected` when non-null. Returns the number posted.
  size_t Flush(std::vector<uint64_t>* rejected = nullptr);

  /// Waits (yielding) until at least one completion arrives, then moves
  /// up to out.size() of them into `out`. Staged-but-unflushed fetches
  /// are flushed first (their synchronous rejections are dropped — use
  /// Flush directly to observe them). Returns 0 immediately when nothing
  /// is staged or outstanding, without touching the transport.
  size_t WaitAny(std::span<FetchCompletion> out);

  size_t outstanding() const noexcept { return outstanding_; }
  size_t staged() const noexcept { return staged_.size(); }

 private:
  FetchTransport* transport_;
  size_t outstanding_ = 0;
  std::vector<FetchRequest> staged_;
  std::vector<size_t> rejected_idx_;  // Flush scratch, reused
};

class VersionedFetchEngine {
 public:
  /// `name` scopes this engine's metrics (`remote.<name>.reads`, ...);
  /// the wired-in consumers use "rtree", "btree" and "cuckoo". The
  /// transport must outlive the engine.
  VersionedFetchEngine(FetchTransport* transport, std::string name,
                       RetryPolicy policy = {});

  VersionedFetchEngine(const VersionedFetchEngine&) = delete;
  VersionedFetchEngine& operator=(const VersionedFetchEngine&) = delete;

  /// One chunk of a multi-issue round: fetch `id` into `buf`.
  struct Request {
    ChunkId id = 0;
    std::span<std::byte> buf;
  };

  /// Accepts or rejects a fetched raw chunk image. Typically validates
  /// the seqlock versions and decodes; returning false re-fetches that
  /// chunk (bounded by the policy). Called in completion order, once per
  /// delivered image — consumers may process accepted nodes directly in
  /// the callback.
  using ValidateFn =
      std::function<bool(size_t index, std::span<const std::byte> image)>;

  /// Fetches and validates one chunk.
  FetchStatus FetchOne(
      ChunkId id, std::span<std::byte> buf,
      const std::function<bool(std::span<const std::byte>)>& validate);

  /// Multi-issues every request, validating and re-fetching per item as
  /// completions arrive. Returns kOk only when every item validated;
  /// on failure the engine still drains all outstanding fetches before
  /// returning, so the transport is immediately reusable. Each issue
  /// round — the initial stage-all and every retry wave — is flushed
  /// with a single transport doorbell.
  FetchStatus FetchMany(std::span<const Request> reqs,
                        const ValidateFn& validate);

  /// Creates this engine's bounded scratch pool of `capacity` reusable
  /// `buf_bytes`-sized fetch buffers; call once when the transport
  /// geometry (chunk size) is known. Returns the pool so the owner can
  /// register pool.slab() with its NIC. Calling again replaces the pool
  /// (reconnect re-wires the transport and its chunk size with it).
  ScratchPool& EnableScratch(size_t buf_bytes, size_t capacity);

  /// The pool, or nullptr before EnableScratch. Exposed so owners and
  /// tests can assert in_use() == 0 between operations (no leaked
  /// buffers on any FetchStatus exit path).
  ScratchPool* scratch() noexcept { return scratch_.get(); }

  /// FetchMany without caller-supplied buffers: images land in pooled
  /// scratch (acquired per id, released on EVERY exit path — success,
  /// retry exhaustion, transport error, or a throwing validate).
  /// Requires EnableScratch with buf_bytes ≥ the transport's chunk
  /// image size.
  FetchStatus FetchChunks(std::span<const ChunkId> ids,
                          const ValidateFn& validate);

  /// For consumer-level optimistic loops layered on top of the engine
  /// (e.g. the cuckoo cross-chunk consistency recheck): account one
  /// retry / one exhaustion in this engine's stats and metrics.
  void NoteConsistencyRetry();
  void NoteRetriesExhausted();

  const EngineStats& stats() const noexcept { return stats_; }
  const RetryPolicy& policy() const noexcept { return policy_; }
  const std::string& name() const noexcept { return name_; }

 private:
  /// Sleeps per the backoff schedule before re-fetching; `attempt` is
  /// the number of fetches already failed for the chunk (≥1).
  void Backoff(uint32_t attempt);

  FetchTransport* transport_;
  std::string name_;
  RetryPolicy policy_;
  EngineStats stats_;
  uint64_t jitter_state_;
  std::vector<uint32_t> attempts_;  // per-request scratch, reused
  std::unique_ptr<ScratchPool> scratch_;
  std::vector<Request> pooled_reqs_;  // FetchChunks scratch, reused

  // Metric handles (null when telemetry is compiled out).
  telemetry::Counter* m_reads_ = nullptr;
  telemetry::Counter* m_retries_ = nullptr;
  telemetry::Counter* m_all_reads_ = nullptr;
  telemetry::Counter* m_all_retries_ = nullptr;
  telemetry::Counter* m_exhausted_ = nullptr;
  telemetry::Counter* m_transport_errors_ = nullptr;
  telemetry::Counter* m_batches_ = nullptr;
};

}  // namespace catfish::remote

// Quickstart: build an R-tree, serve it over the emulated RDMA fabric,
// and run searches through all three access paths.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "workload/generators.h"

int main() {
  using namespace catfish;

  // 1. Build the spatial index: 100k rectangles in the unit square,
  //    bulk-loaded into an RDMA-registerable arena.
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 14);
  const auto items = workload::UniformDataset(100'000, 1e-4, /*seed=*/1);
  rtree::RStarTree tree = rtree::BulkLoad(arena, items);
  std::printf("built R*-tree: %llu rects, height %u, %zu chunks\n",
              static_cast<unsigned long long>(tree.size()), tree.height(),
              arena.allocated_chunks());

  // 2. Stand up the server on a simulated InfiniBand fabric. The arena
  //    is registered with the NIC once; worker threads serve ring-buffer
  //    requests; a monitor thread broadcasts CPU heartbeats.
  rdma::Fabric fabric(rdma::FabricProfile::InfiniBand100G());
  auto server_node = fabric.CreateNode("server");
  RTreeServer server(server_node, tree);

  // 3. Connect a client and search the same region three ways.
  auto client_node = fabric.CreateNode("client");
  RTreeClient client(client_node, server);

  const geo::Rect query{0.25, 0.25, 0.26, 0.26};

  const auto fast = client.SearchFast(query);
  std::printf("fast messaging : %zu results (server-side traversal)\n",
              fast.size());

  rtree::TraversalTrace trace;
  const auto offloaded = client.SearchOffloaded(query, &trace);
  std::printf(
      "RDMA offloading: %zu results, %llu node reads in %zu rounds "
      "(server CPU bypassed)\n",
      offloaded.size(),
      static_cast<unsigned long long>(trace.TotalNodes()), trace.Rounds());

  const auto adaptive = client.Search(query);  // Algorithm 1 decides
  std::printf("adaptive       : %zu results via %s\n", adaptive.size(),
              client.last_mode() == AccessMode::kFastMessaging
                  ? "fast messaging"
                  : "RDMA offloading");

  // 4. Writes always go through the server (writer-lock serialized).
  const geo::Rect mine{0.251, 0.251, 0.2515, 0.2515};
  client.Insert(mine, /*id=*/424242);
  const auto after = client.SearchOffloaded(query);
  std::printf("after insert   : %zu results (one-sided readers see it)\n",
              after.size());
  client.Delete(mine, 424242);

  // 5. Clean shutdown.
  server.Stop();
  std::printf("done. server served %llu searches, %llu inserts\n",
              static_cast<unsigned long long>(server.stats().searches),
              static_cast<unsigned long long>(server.stats().inserts));
  return 0;
}

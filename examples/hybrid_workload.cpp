// Live-updates scenario: concurrent searchers and writers (§V-B's 90/10
// hybrid workload, shrunk to a demo). Writers push skewed "city-area"
// inserts through the server while readers traverse with one-sided
// READs — the FaRM-style version numbers detect every read-write race,
// and the demo reports how many optimistic retries actually happened.
//
//   ./build/examples/hybrid_workload
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "workload/generators.h"

int main() {
  using namespace catfish;

  rtree::NodeArena arena(rtree::kChunkSize, 1 << 15);
  const auto base = workload::UniformDataset(100'000, 1e-4, 3);
  rtree::RStarTree tree = rtree::BulkLoad(arena, base);

  rdma::Fabric fabric(rdma::FabricProfile::InfiniBand100G());
  RTreeServer server(fabric.CreateNode("server"), tree);

  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kOpsPerClient = 2000;

  std::atomic<uint64_t> inserts_done{0};
  std::atomic<uint64_t> reads_done{0};
  std::atomic<uint64_t> version_retries{0};
  std::atomic<bool> mismatch{false};

  std::vector<std::thread> threads;
  for (int wi = 0; wi < kWriters; ++wi) {
    threads.emplace_back([&, wi] {
      RTreeClient writer(fabric.CreateNode("writer"), server);
      workload::RequestGen::Config wcfg;
      wcfg.insert_ratio = 1.0;  // pure writer
      wcfg.scale = 1e-4;
      wcfg.first_insert_id = (1ull << 32) * static_cast<uint64_t>(wi + 1);
      workload::RequestGen gen(wcfg, static_cast<uint64_t>(wi) + 50);
      for (int i = 0; i < kOpsPerClient; ++i) {
        const auto req = gen.Next();
        writer.Insert(req.rect, req.id);
        inserts_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int ri = 0; ri < kReaders; ++ri) {
    threads.emplace_back([&, ri] {
      ClientConfig cfg;
      cfg.mode = ClientMode::kOffloadOnly;
      RTreeClient reader(fabric.CreateNode("reader"), server, cfg);
      Xoshiro256 rng(static_cast<uint64_t>(ri) + 90);
      for (int i = 0; i < kOpsPerClient; ++i) {
        const auto q = workload::UniformRect(rng, 5e-3);
        const auto hits = reader.Search(q);
        // Optimistic reads must never yield a wrong entry.
        for (const auto& e : hits) {
          if (!e.mbr.Intersects(q)) mismatch.store(true);
        }
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
      version_retries.fetch_add(reader.stats().version_retries,
                                std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  std::printf("Scenario: %d writers + %d offloading readers, concurrently\n\n",
              kWriters, kReaders);
  std::printf("inserts applied        : %llu (tree size now %llu)\n",
              static_cast<unsigned long long>(inserts_done.load()),
              static_cast<unsigned long long>(tree.size()));
  std::printf("offloaded searches     : %llu\n",
              static_cast<unsigned long long>(reads_done.load()));
  std::printf("version-check retries  : %llu (read-write races detected "
              "and re-read, §III-B)\n",
              static_cast<unsigned long long>(version_retries.load()));
  std::printf("consistency violations : %s\n",
              mismatch.load() ? "FOUND (bug!)" : "none");

  server.Stop();
  tree.CheckInvariants();
  std::printf("tree invariants        : OK\n");
  return mismatch.load() ? 1 : 0;
}

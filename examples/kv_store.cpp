// The §VI framework claim, live: a remote key-value service built from
// the same parts as the R-tree — a B+-tree (point + range queries) and a
// cuckoo table (constant-time point lookups) in versioned, registered
// arenas, read by clients over one-sided READs with zero server CPU.
//
//   ./build/examples/kv_store
#include <cstdio>
#include <optional>

#include "btree/bplus.h"
#include "btree/remote_reader.h"
#include "common/clock.h"
#include "common/rng.h"
#include "cuckoo/cuckoo.h"
#include "cuckoo/remote_reader.h"
#include "rdmasim/rdma.h"
#include "remote/transport.h"

int main() {
  using namespace catfish;

  rdma::Fabric fabric(rdma::FabricProfile::InfiniBand100G());
  auto server = fabric.CreateNode("kv-server");
  auto client = fabric.CreateNode("kv-client");

  // --- server side: build both indexes over the same 100k records ---
  constexpr size_t kRecords = 100'000;
  rtree::NodeArena btree_arena(btree::kChunkSize, 1 << 13);
  rtree::NodeArena cuckoo_arena(cuckoo::kChunkSize, 1 << 13);
  btree::BPlusTree tree = btree::BPlusTree::Create(btree_arena);
  cuckoo::CuckooTable table =
      cuckoo::CuckooTable::Create(cuckoo_arena, kRecords / 2, /*seed=*/7);

  Xoshiro256 rng(1);
  for (size_t i = 0; i < kRecords; ++i) {
    const uint64_t key = 1 + rng.NextBounded(1u << 24);
    const uint64_t value = key * 10;
    tree.Put(key, value);
    table.Put(key, value);
  }
  std::printf("server: B+-tree height %u (%llu keys), cuckoo load %.0f%%\n",
              tree.height(), static_cast<unsigned long long>(tree.size()),
              100.0 * static_cast<double>(table.size()) /
                  static_cast<double>(table.capacity()));

  // Register both arenas once; hand the rkeys to the client (in a real
  // deployment this rides the §II-B bootstrap channel).
  const auto btree_mr = server->RegisterMemory(btree_arena.memory());
  const auto cuckoo_mr = server->RegisterMemory(cuckoo_arena.memory());

  // --- client side: one QP, two remote readers ---
  auto cq = client->CreateCq();
  auto c_qp = client->CreateQp(cq, client->CreateCq());
  auto s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
  rdma::QueuePair::Connect(s_qp, c_qp);

  // One transport per registered arena (distinct rkeys), both multiplexed
  // over the same QP/CQ; each reader runs its own shared-engine instance
  // (src/remote) on top.
  remote::QpFetchTransport bt_transport(
      c_qp, cq, rdma::RemoteAddr{btree_mr.rkey, 0}, btree::kChunkSize);
  remote::QpFetchTransport ck_transport(
      c_qp, cq, rdma::RemoteAddr{cuckoo_mr.rkey, 0}, cuckoo::kChunkSize);
  btree::RemoteBTreeReader bt_reader(&bt_transport);
  cuckoo::RemoteCuckooReader ck_reader(&ck_transport, table.geometry());

  // Point lookups through both structures — identical answers, different
  // read counts (height-many dependent READs vs a constant two).
  Xoshiro256 probe(1);
  size_t checked = 0;
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t key = 1 + probe.NextBounded(1u << 24);
    std::optional<uint64_t> via_tree, via_hash;
    if (bt_reader.Get(key, via_tree) != remote::FetchStatus::kOk ||
        ck_reader.Get(key, via_hash) != remote::FetchStatus::kOk) {
      std::printf("remote read failed at key %llu\n",
                  static_cast<unsigned long long>(key));
      return 1;
    }
    if (via_tree != via_hash) {
      std::printf("MISMATCH at key %llu!\n",
                  static_cast<unsigned long long>(key));
      return 1;
    }
    checked += via_tree.has_value();
  }
  std::printf("client: 20000 point lookups cross-checked (%zu hits)\n",
              checked);
  std::printf("        b+tree reads/op %.2f | cuckoo reads/op %.2f — the\n"
              "        structural cost of offloading each index\n",
              static_cast<double>(bt_reader.stats().reads) / 20000,
              static_cast<double>(ck_reader.stats().reads) / 20000);

  // Range scan: only the B+-tree can serve it (leaf-chain walk).
  std::vector<btree::KeyValue> range;
  if (bt_reader.Scan(1'000'000, 1'010'000, range) !=
      remote::FetchStatus::kOk) {
    std::printf("remote range scan failed\n");
    return 1;
  }
  std::printf("client: remote range scan [1e6, 1.01e6] → %zu records, all "
              "value == key*10: %s\n",
              range.size(),
              std::all_of(range.begin(), range.end(),
                          [](const btree::KeyValue& kv) {
                            return kv.value == kv.key * 10;
                          })
                  ? "yes"
                  : "NO");
  std::printf("server CPU ops during all client reads: 0 (one-sided)\n");
  return 0;
}

// Capacity planning with the execution-driven cluster simulator: size a
// Catfish deployment before buying hardware. Sweeps the client count for
// each scheme on the workload you describe and prints where each one
// saturates — the same engine that regenerates the paper's figures,
// exposed as a library API.
//
//   ./build/examples/capacity_planner
#include <cstdio>

#include "model/cluster_sim.h"
#include "rtree/bulk_load.h"
#include "workload/generators.h"

int main() {
  using namespace catfish;

  // The deployment's expected dataset and workload.
  const size_t dataset = 500'000;
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 16);
  const auto items = workload::UniformDataset(dataset, 1e-4, 21);
  rtree::RStarTree tree = rtree::BulkLoad(arena, items);

  workload::RequestGen::Config workload_cfg;
  workload_cfg.dist = workload::RequestGen::ScaleDist::kPowerLaw;

  std::printf("Capacity plan: %zu rects, power-law searches, 28-core "
              "server, 100G IB vs 40G TCP\n\n",
              dataset);
  std::printf("%8s | %21s | %21s | %21s\n", "", "Catfish", "TCP/IP-40G",
              "RDMA offloading");
  std::printf("%8s | %10s %10s | %10s %10s | %10s %10s\n", "clients",
              "kops", "p99_us", "kops", "p99_us", "kops", "p99_us");

  for (const size_t clients : {16, 32, 64, 128, 256}) {
    double kops[3];
    double p99[3];
    const model::Scheme schemes[3] = {model::Scheme::kCatfish,
                                      model::Scheme::kTcp40G,
                                      model::Scheme::kRdmaOffloading};
    for (int i = 0; i < 3; ++i) {
      model::ClusterConfig cfg;
      cfg.scheme = schemes[i];
      cfg.num_clients = clients;
      cfg.requests_per_client = 300;
      cfg.workload = workload_cfg;
      cfg.seed = 5;
      if (schemes[i] == model::Scheme::kRdmaOffloading) {
        cfg.multi_issue = true;  // plan with the enhanced offloading
      }
      model::ClusterSim sim(tree, cfg);
      const auto r = sim.Run();
      kops[i] = r.throughput_kops;
      p99[i] = r.latency_us.p99();
    }
    std::printf("%8zu | %10.1f %10.1f | %10.1f %10.1f | %10.1f %10.1f\n",
                clients, kops[0], p99[0], kops[1], p99[1], kops[2], p99[2]);
  }

  std::printf(
      "\nReading the table: the knee where kops stops scaling and p99\n"
      "inflates is the saturation point for that scheme; provision below\n"
      "it or switch schemes.\n");
  return 0;
}

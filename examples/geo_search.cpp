// "Find restaurants near me": the paper's Figure-1 scenario.
//
// A back-end R-tree holds points of interest; front-end clients issue
// small-scope spatial queries (scale 1e-5 — the CPU-bound workload).
// The example drives the server into saturation with background load and
// shows the adaptive client (Algorithm 1) switching between fast
// messaging and RDMA offloading as heartbeats report the pressure.
//
//   ./build/examples/geo_search
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "workload/generators.h"

int main() {
  using namespace catfish;
  using namespace std::chrono_literals;

  // Points of interest: 200k small rectangles ("restaurants").
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 15);
  const auto pois = workload::UniformDataset(200'000, 1e-4, 7);
  rtree::RStarTree tree = rtree::BulkLoad(arena, pois);

  rdma::Fabric fabric(rdma::FabricProfile::InfiniBand100G());
  ServerConfig scfg;
  scfg.heartbeat_interval_us = 2'000;  // brisk heartbeats for the demo
  RTreeServer server(fabric.CreateNode("server"), tree, scfg);

  // The adaptive front-end client.
  ClientConfig ccfg;
  ccfg.mode = ClientMode::kAdaptive;
  ccfg.adaptive.heartbeat_interval_us = 2'000;
  RTreeClient me(fabric.CreateNode("frontend"), server, ccfg);

  Xoshiro256 rng(1);
  const auto run_queries = [&](const char* phase, int n) {
    uint64_t fast = 0;
    uint64_t off = 0;
    uint64_t found = 0;
    for (int i = 0; i < n; ++i) {
      // "restaurants near me": a tiny window around a random location.
      const auto q = workload::UniformRect(rng, 1e-3);
      found += me.Search(q).size();
      (me.last_mode() == AccessMode::kFastMessaging ? fast : off) += 1;
      std::this_thread::sleep_for(50us);
    }
    std::printf("%-28s %4llu fast / %4llu offloaded   (%llu POIs found, "
                "server util %.0f%%)\n",
                phase, static_cast<unsigned long long>(fast),
                static_cast<unsigned long long>(off),
                static_cast<unsigned long long>(found),
                100.0 * server.utilization());
  };

  std::printf("Scenario: Fig 1 — web front-end querying a Catfish R-tree\n\n");

  // Phase 1: quiet server — Algorithm 1 keeps everything on fast
  // messaging (one RTT, server-side traversal).
  std::this_thread::sleep_for(10ms);
  run_queries("quiet server:", 200);

  // Phase 2: the back-end is swamped (simulated via the heartbeat
  // override — in production this is the measured worker utilization).
  server.OverrideUtilization(0.99);
  std::this_thread::sleep_for(10ms);
  run_queries("saturated server:", 200);

  // Phase 3: pressure gone — clients drain their back-off windows and
  // return to fast messaging.
  server.ClearUtilizationOverride();
  server.OverrideUtilization(0.05);
  std::this_thread::sleep_for(10ms);
  run_queries("recovered server:", 200);

  const auto st = me.stats();
  std::printf(
      "\nclient totals: %llu fast, %llu offloaded, %llu node reads, "
      "%llu heartbeats\n",
      static_cast<unsigned long long>(st.fast_searches),
      static_cast<unsigned long long>(st.offloaded_searches),
      static_cast<unsigned long long>(st.rdma_reads),
      static_cast<unsigned long long>(st.heartbeats_received));
  server.Stop();
  return 0;
}

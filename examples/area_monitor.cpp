// Area monitoring: the paper's large-scope use case — "how many
// properties would be impaired in an area that a hurricane would pass"
// (§I). Queries cover a large window, so responses are big and the
// interesting mechanics are response segmentation (CONT/END over the
// ring) and the multi-issue offloaded traversal.
//
//   ./build/examples/area_monitor
#include <cstdio>

#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "workload/generators.h"

int main() {
  using namespace catfish;

  // Property parcels across the map.
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 15);
  const auto parcels = workload::UniformDataset(300'000, 2e-4, 11);
  rtree::RStarTree tree = rtree::BulkLoad(arena, parcels);

  rdma::Fabric fabric(rdma::FabricProfile::InfiniBand100G());
  RTreeServer server(fabric.CreateNode("server"), tree);

  // Small response ring to make segmentation visible.
  ClientConfig cfg;
  cfg.ring_capacity = 16 * 1024;
  RTreeClient monitor(fabric.CreateNode("monitor"), server, cfg);

  std::printf("Scenario: hurricane-corridor monitoring over %llu parcels\n\n",
              static_cast<unsigned long long>(tree.size()));

  // A storm track swept as a sequence of overlapping large windows.
  for (int step = 0; step < 5; ++step) {
    const double x = 0.1 + 0.15 * step;
    const geo::Rect corridor{x, 0.3, x + 0.2, 0.55};

    // Fast messaging: the server traverses; the response streams back in
    // CONT/END segments sized to the ring.
    const auto via_server = monitor.SearchFast(corridor);

    // Offloading: the monitor walks the tree itself, level by level.
    rtree::TraversalTrace trace;
    const auto via_reads = monitor.SearchOffloaded(corridor, &trace);

    std::printf(
        "corridor %d: %6zu parcels at risk | offload: %4llu node reads in "
        "%zu rounds, widest round %u\n",
        step, via_server.size(),
        static_cast<unsigned long long>(trace.TotalNodes()), trace.Rounds(),
        *std::max_element(trace.nodes_per_level.begin(),
                          trace.nodes_per_level.end()));

    if (via_server.size() != via_reads.size()) {
      std::printf("  MISMATCH between access paths!\n");
      return 1;
    }
  }

  const auto st = monitor.stats();
  std::printf("\nmonitor: %llu server-side searches, %llu offloaded, "
              "%llu total RDMA reads (server threads untouched: %llu "
              "server-side searches recorded)\n",
              static_cast<unsigned long long>(st.fast_searches),
              static_cast<unsigned long long>(st.offloaded_searches),
              static_cast<unsigned long long>(st.rdma_reads),
              static_cast<unsigned long long>(server.stats().searches));
  server.Stop();
  return 0;
}

// Figure 10: throughput of 100%-search workloads (§V-B).
//
// Five schemes × three workloads (scale 1e-5 CPU-bound, scale 0.01
// network-bound, power-law skew) × client counts 32..256 on the 2 M-rect
// tree. Shape targets:
//  * (a) 1e-5: fast messaging is the worst RDMA scheme at high client
//    counts (it shovels work onto a saturated CPU); Catfish is highest.
//  * (b) 0.01: offloading cannot help (it burns bandwidth); fast paths
//    win; Catfish ≈ best fast path.
//  * (c) power-law: between the two; Catfish on top.
// Paper headline: Catfish up to 3.28× over fast messaging, 3.09× over
// offloading, 16.46× over TCP.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 10: search-only throughput (Kops)", env);
  CellExporter exporter("fig10_search_throughput", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);

  workload::RequestGen::Config scales[3];
  scales[0].scale = 1e-5;
  scales[1].scale = 1e-2;
  scales[2].dist = workload::RequestGen::ScaleDist::kPowerLaw;

  const size_t client_counts[] = {32, 64, 128, 256};

  for (const auto& w : scales) {
    std::printf("--- workload: scale %s ---\n", ScaleLabel(w));
    std::printf("%18s", "clients:");
    for (const size_t c : client_counts) std::printf(" %10zu", c);
    std::printf("\n");
    for (const auto s : kAllSchemes) {
      std::printf("%-18s", model::SchemeName(s));
      for (const size_t c : client_counts) {
        const auto r = exporter.Run(tb, s, c, w, env);
        std::printf(" %10.1f", r.throughput_kops);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: Catfish highest everywhere; at 1e-5 fast messaging\n"
      "trails (CPU-bound), at 0.01 offloading trails (network-bound).\n");
  return 0;
}

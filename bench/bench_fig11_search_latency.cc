// Figure 11: average latency of 100%-search workloads (§V-B).
//
// The same sweep as Figure 10, reporting mean request latency in µs.
// Shape targets: TCP latencies are several-fold higher than the RDMA
// schemes; Catfish well below fast messaging at high client counts;
// offloading has consistently low latency and can even undercut Catfish
// at 256 clients / 1e-5 (the paper's §V-B caveat about the heuristic
// back-off). Paper values at 256 clients: Catfish 140.73 / 180.66 /
// 161.58 µs vs fast messaging 299.10 / 321.52 / 302.91 µs.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 11: search-only mean latency (us)", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("fig11_search_latency", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  workload::RequestGen::Config scales[3];
  scales[0].scale = 1e-5;
  scales[1].scale = 1e-2;
  scales[2].dist = workload::RequestGen::ScaleDist::kPowerLaw;

  const size_t client_counts[] = {32, 64, 128, 256};

  for (const auto& w : scales) {
    std::printf("--- workload: scale %s ---\n", ScaleLabel(w));
    std::printf("%18s", "clients:");
    for (const size_t c : client_counts) std::printf(" %10zu", c);
    std::printf("\n");
    for (const auto s : kAllSchemes) {
      std::printf("%-18s", model::SchemeName(s));
      for (const size_t c : client_counts) {
        const auto r = exporter.Run(tb, s, c, w, env);
        std::printf(" %10.1f", r.latency_us.mean());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: TCP >> RDMA; Catfish < fast messaging at high client\n"
      "counts; offloading constantly low (sometimes below Catfish).\n");
  return 0;
}

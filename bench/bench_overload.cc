// Overload & gray-failure robustness: admission control under offered
// load past saturation, and hedged fan-out against a degraded shard.
//
// Experiment A sweeps closed-loop client count well past the worker
// pool's saturation point with a per-op deadline armed, comparing the
// unprotected server (no admission control) against queue-limit
// shedding plus per-client circuit breakers. Without protection every
// stale request still burns a full service time producing an answer
// nobody can use, so goodput collapses as load grows and p99/p999 go
// unbounded; with shedding the refusals are turned around at the NIC
// and goodput plateaus near the saturation throughput.
//
// Experiment B runs the sharded deployment at 256 clients with one
// gray-degraded shard (service time multiplied, heartbeats still
// flowing — nothing a watchdog can see) and shows hedged fan-out
// re-issuing straggler sub-queries against a follower replica: query
// p99 and tail amplification drop back toward the healthy baseline,
// at a duplicate-work cost of hedges_issued / fast_subqueries < 10%.
//
// `--check` turns the two claims into hard assertions (CI smoke mode):
// protected goodput at max load must beat unprotected by 1.5x, hedging
// must cut the slow-shard p99, and hedge overhead must stay under 10%.
#include <cstring>

#include "bench_util.h"
#include "model/shard_sim.h"

namespace {

using namespace catfish;
using namespace catfish::bench;

struct OverloadCell {
  size_t clients = 0;
  bool shedding = false;
  model::RunResult r;
};

model::ClusterConfig OverloadConfig(size_t clients, bool shedding,
                                    const workload::RequestGen::Config& w,
                                    const BenchEnv& env) {
  auto cfg = MakeConfig(model::Scheme::kCatfish, clients, w, env);
  // The deadline is armed in both variants — the comparison is about
  // what the server does with work it can no longer finish in time.
  // 300 us sits comfortably above the fast path's unloaded latency and
  // comfortably below where the saturated worker queue pushes it.
  cfg.overload.deadline_us = 300;
  if (shedding) {
    // Roughly a deadline's worth of queued work: beyond this an
    // admitted request would expire waiting, so refuse it instead.
    cfg.overload.max_queue = 128;
    cfg.overload.retry_after_us = 400;
    cfg.overload.breaker.enabled = true;
    cfg.overload.breaker.failure_threshold = 3;
    cfg.overload.breaker.open_initial_us = 400;
    cfg.overload.breaker.open_max_us = 20'000;
  }
  return cfg;
}

model::ShardedClusterConfig HedgeConfig(bool hedge, bool slow,
                                        const workload::RequestGen::Config& w,
                                        const BenchEnv& env) {
  model::ShardedClusterConfig cfg;
  // Fast messaging keeps every sub-query on the two-sided path through
  // the degraded shard's worker pool; the adaptive scheme would escalate
  // the hot shard to offloading and mask the very gray failure this
  // experiment injects.
  cfg.scheme = model::Scheme::kFastMessaging;
  cfg.num_shards = 4;
  cfg.num_clients = 256;
  cfg.requests_per_client = env.requests;
  cfg.workload = w;
  cfg.seed = env.seed;
  cfg.arena_chunks = ArenaChunksFor(env.dataset / cfg.num_shards + 1);
  cfg.num_replicas = 1;  // the hedge target
  cfg.ack_followers = 0;
  if (slow) {
    cfg.slow_shard = 0;
    cfg.slow_factor = 8.0;
  }
  cfg.hedge = hedge;  // hedge_delay_us = 0: adaptive p95
  return cfg;
}

void WriteOverloadCell(telemetry::JsonLinesWriter* out,
                       const OverloadCell& c) {
  if (out == nullptr) return;
  telemetry::JsonWriter j;
  j.BeginObject();
  j.Key("figure").Value("overload_sweep");
  j.Key("shedding").Value(static_cast<uint64_t>(c.shedding ? 1 : 0));
  j.Key("clients").Value(static_cast<uint64_t>(c.clients));
  j.Key("completed").Value(c.r.completed);
  j.Key("throughput_kops").Value(c.r.throughput_kops);
  j.Key("goodput").Value(c.r.goodput);
  j.Key("sheds").Value(c.r.sheds);
  j.Key("deadline_drops").Value(c.r.deadline_drops);
  j.Key("deadline_misses").Value(c.r.deadline_misses);
  j.Key("breaker_opens").Value(c.r.breaker_opens);
  j.Key("breaker_waits").Value(c.r.breaker_waits);
  j.Key("duration_us").Value(c.r.duration_us);
  j.Key("p99_us").Value(c.r.latency_us.p99());
  j.Key("p999_us").Value(c.r.latency_us.Quantile(0.999));
  j.Key("latency_us");
  telemetry::WriteHistogram(j, c.r.latency_us);
  j.EndObject();
  out->WriteLine(j.str());
}

void WriteHedgeCell(telemetry::JsonLinesWriter* out, const char* variant,
                    const model::ShardedRunResult& r) {
  if (out == nullptr) return;
  telemetry::JsonWriter j;
  j.BeginObject();
  j.Key("figure").Value("overload_hedge");
  j.Key("variant").Value(variant);
  j.Key("completed").Value(r.completed);
  j.Key("throughput_kops").Value(r.throughput_kops);
  j.Key("search_p50_us").Value(r.search_latency_us.p50());
  j.Key("search_p99_us").Value(r.search_latency_us.p99());
  j.Key("subquery_p99_us").Value(r.subquery_latency_us.p99());
  j.Key("tail_amplification").Value(r.tail_amplification);
  j.Key("fast_subqueries").Value(r.fast_subqueries);
  j.Key("hedges_issued").Value(r.hedges_issued);
  j.Key("hedges_won").Value(r.hedges_won);
  j.Key("hedges_wasted").Value(r.hedges_wasted);
  j.Key("search_latency_us");
  telemetry::WriteHistogram(j, r.search_latency_us);
  j.EndObject();
  out->WriteLine(j.str());
}

/// Goodput in kops over the run (sheds and misses excluded).
double GoodputKops(const model::RunResult& r) {
  return r.duration_us > 0.0
             ? static_cast<double>(r.goodput) * 1e3 / r.duration_us
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Load(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  PrintEnv("Overload: admission control and hedged fan-out", env);

  std::unique_ptr<telemetry::JsonLinesWriter> out;
  if (!env.telemetry_json.empty()) {
    out = std::make_unique<telemetry::JsonLinesWriter>(env.telemetry_json);
    if (!out->ok()) {
      std::fprintf(stderr, "warning: cannot open '%s' for telemetry JSON\n",
                   env.telemetry_json.c_str());
      out.reset();
    }
  }

  workload::RequestGen::Config w;
  w.scale = 1e-5;

  // --- Experiment A: offered load past saturation -------------------
  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  const size_t loads[] = {64, 128, 256, 512};

  std::printf("--- overload sweep: deadline 300us, shedding off vs on ---\n");
  std::printf("%8s %5s %10s %12s %7s %8s %9s %9s %8s\n", "clients", "shed",
              "kops", "goodput_kops", "shed%", "miss%", "p99_us", "p999_us",
              "opens");
  double good_off = 0.0, good_on = 0.0;
  for (const bool shedding : {false, true}) {
    for (const size_t clients : loads) {
      telemetry::Registry::Global().Reset();
      const auto cfg = OverloadConfig(clients, shedding, w, env);
      model::ClusterSim sim(*tb.tree, cfg);
      OverloadCell cell{clients, shedding, sim.Run()};
      const auto& r = cell.r;
      const uint64_t offered = r.completed + r.sheds + r.deadline_drops;
      const double shed_pct =
          offered > 0 ? 100.0 * static_cast<double>(r.sheds + r.deadline_drops) /
                            static_cast<double>(offered)
                      : 0.0;
      const double miss_pct =
          r.completed > 0 ? 100.0 * static_cast<double>(r.deadline_misses) /
                                static_cast<double>(r.completed)
                          : 0.0;
      std::printf("%8zu %5s %10.1f %12.1f %6.1f%% %7.1f%% %9.1f %9.1f %8lu\n",
                  clients, shedding ? "on" : "off", r.throughput_kops,
                  GoodputKops(r), shed_pct, miss_pct, r.latency_us.p99(),
                  r.latency_us.Quantile(0.999),
                  static_cast<unsigned long>(r.breaker_opens));
      if (clients == loads[std::size(loads) - 1]) {
        (shedding ? good_on : good_off) = GoodputKops(r);
      }
      WriteOverloadCell(out.get(), cell);
    }
  }
  std::printf("max-load goodput: unprotected %.1f kops, protected %.1f kops "
              "(%.2fx)\n\n",
              good_off, good_on, good_off > 0.0 ? good_on / good_off : 0.0);

  // --- Experiment B: hedged fan-out vs one gray-degraded shard ------
  const auto items = workload::UniformDataset(env.dataset, 1e-4, env.seed);

  std::printf("--- hedged fan-out: 4 shards + 1 follower, shard 0 8x slow ---\n");
  std::printf("%12s %10s %9s %9s %9s %8s %7s %7s %8s %7s\n", "variant",
              "kops", "p50_us", "p99_us", "sub_p99", "tail_amp", "hedges",
              "won", "issued%", "waste%");
  struct HedgeRow {
    const char* name;
    bool hedge;
    bool slow;
  };
  const HedgeRow rows[] = {
      {"healthy", false, false},
      {"slow", false, true},
      {"slow+hedge", true, true},
  };
  double p99_slow = 0.0, p99_hedged = 0.0, overhead = 0.0;
  for (const auto& row : rows) {
    telemetry::Registry::Global().Reset();
    const auto cfg = HedgeConfig(row.hedge, row.slow, w, env);
    model::ShardedClusterSim sim(items, cfg);
    const auto r = sim.Run();
    // Issued overhead tracks the degraded shard's traffic share — those
    // hedges are rescues, the cost of masking the failure. The pure
    // duplicate-work overhead (the <10% budget) is the wasted legs:
    // hedges the primary beat, where the follower read bought nothing.
    const double issued_ovh =
        r.fast_subqueries > 0 ? 100.0 * static_cast<double>(r.hedges_issued) /
                                    static_cast<double>(r.fast_subqueries)
                              : 0.0;
    const double ovh =
        r.fast_subqueries > 0 ? 100.0 * static_cast<double>(r.hedges_wasted) /
                                    static_cast<double>(r.fast_subqueries)
                              : 0.0;
    std::printf(
        "%12s %10.1f %9.1f %9.1f %9.1f %8.2f %7lu %7lu %7.2f%% %6.2f%%\n",
        row.name, r.throughput_kops, r.search_latency_us.p50(),
        r.search_latency_us.p99(), r.subquery_latency_us.p99(),
        r.tail_amplification, static_cast<unsigned long>(r.hedges_issued),
        static_cast<unsigned long>(r.hedges_won), issued_ovh, ovh);
    if (row.slow && !row.hedge) p99_slow = r.search_latency_us.p99();
    if (row.hedge) {
      p99_hedged = r.search_latency_us.p99();
      overhead = ovh;
    }
    WriteHedgeCell(out.get(), row.name, r);
  }

  if (check) {
    int failures = 0;
    if (good_on < good_off * 1.5) {
      std::fprintf(stderr,
                   "CHECK FAILED: protected goodput %.1f kops is not 1.5x "
                   "unprotected %.1f kops at max load\n",
                   good_on, good_off);
      ++failures;
    }
    if (p99_hedged >= p99_slow) {
      std::fprintf(stderr,
                   "CHECK FAILED: hedged p99 %.1f us did not improve on "
                   "unhedged slow-shard p99 %.1f us\n",
                   p99_hedged, p99_slow);
      ++failures;
    }
    if (overhead >= 10.0) {
      std::fprintf(stderr,
                   "CHECK FAILED: hedge duplicate-work overhead %.2f%% "
                   "exceeds 10%%\n",
                   overhead);
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("\ncheck: goodput plateau, hedge tail cut, overhead < 10%% "
                "-- all OK\n");
  }
  return 0;
}

// Figure 13: mean latency of the 90/10 hybrid workloads (§V-B).
//
// Same sweep as Figure 12, reporting mean latency over all operations
// (plus the search/insert split, which the paper's text discusses).
// Shape target: same trend as the search-only latency figure; paper
// headline: Catfish reduces latency up to 7.55× (vs fast messaging),
// 1.90× (vs offloading), 58.09× (vs TCP).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 13: 90/10 search+insert mean latency (us)", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("fig13_hybrid_latency", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  workload::RequestGen::Config scales[3];
  scales[0].scale = 1e-5;
  scales[1].scale = 1e-2;
  scales[2].dist = workload::RequestGen::ScaleDist::kPowerLaw;
  for (auto& w : scales) w.insert_ratio = 0.1;

  const size_t client_counts[] = {32, 64, 128, 256};

  for (const auto& w : scales) {
    std::printf("--- workload: scale %s, 10%% inserts ---\n", ScaleLabel(w));
    std::printf("%18s", "clients:");
    for (const size_t c : client_counts) std::printf(" %10zu", c);
    std::printf("\n");
    for (const auto s : kAllSchemes) {
      std::printf("%-18s", model::SchemeName(s));
      for (const size_t c : client_counts) {
        const auto r = exporter.Run(tb, s, c, w, env);
        std::printf(" %10.1f", r.latency_us.mean());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: same ordering as the search-only latencies; the\n"
      "version-retry cost shows up in offloading as clients grow.\n");
  return 0;
}

// Headline speedups (§I / §V-B text).
//
// Derives, from a Figure-10/11-style sweep, the maximum speedup of
// Catfish over each alternative in throughput and latency — the numbers
// the paper headlines as "up to 3.28×/3.09×/16.46× throughput and
// 3.25×/3.07×/24.46× latency (search-only)". Absolute factors depend on
// the cost calibration; the checked property is that each factor is
// comfortably > 1 and that the TCP gap dwarfs the RDMA-baseline gaps.
#include <algorithm>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Headline: max Catfish speedups, search-only sweep", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("headline_speedups", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  workload::RequestGen::Config scales[3];
  scales[0].scale = 1e-5;
  scales[1].scale = 1e-2;
  scales[2].dist = workload::RequestGen::ScaleDist::kPowerLaw;
  const size_t client_counts[] = {32, 64, 128, 256};

  struct Best {
    double thr = 0.0;
    double lat = 0.0;
  };
  Best vs_fast, vs_off, vs_tcp;

  for (const auto& w : scales) {
    for (const size_t c : client_counts) {
      const auto rc = exporter.Run(tb, model::Scheme::kCatfish, c, w, env);
      const auto rf =
          exporter.Run(tb, model::Scheme::kFastMessaging, c, w, env);
      const auto ro =
          exporter.Run(tb, model::Scheme::kRdmaOffloading, c, w, env);
      const auto r1 = exporter.Run(tb, model::Scheme::kTcp1G, c, w, env);
      const auto r40 = exporter.Run(tb, model::Scheme::kTcp40G, c, w, env);

      vs_fast.thr = std::max(vs_fast.thr,
                             rc.throughput_kops / rf.throughput_kops);
      vs_fast.lat = std::max(vs_fast.lat,
                             rf.latency_us.mean() / rc.latency_us.mean());
      vs_off.thr =
          std::max(vs_off.thr, rc.throughput_kops / ro.throughput_kops);
      vs_off.lat = std::max(vs_off.lat,
                            ro.latency_us.mean() / rc.latency_us.mean());
      const double tcp_thr = std::min(r1.throughput_kops, r40.throughput_kops);
      const double tcp_lat = std::max(r1.latency_us.mean(),
                                      r40.latency_us.mean());
      vs_tcp.thr = std::max(vs_tcp.thr, rc.throughput_kops / tcp_thr);
      vs_tcp.lat = std::max(vs_tcp.lat, tcp_lat / rc.latency_us.mean());
    }
  }

  std::printf("%-22s %16s %16s %12s %12s\n", "Catfish vs", "thr_speedup",
              "paper_thr", "lat_gain", "paper_lat");
  std::printf("%-22s %15.2fx %16s %11.2fx %12s\n", "fast messaging",
              vs_fast.thr, "3.28x", vs_fast.lat, "3.25x");
  std::printf("%-22s %15.2fx %16s %11.2fx %12s\n", "RDMA offloading",
              vs_off.thr, "3.09x", vs_off.lat, "3.07x");
  std::printf("%-22s %15.2fx %16s %11.2fx %12s\n", "TCP/IP", vs_tcp.thr,
              "16.46x", vs_tcp.lat, "24.46x");
  return 0;
}

// Shard scale-out: aggregate throughput and tail latency vs shard count.
//
// Sweeps the sharded DES deployment over 1/2/4/8 shards for a uniform
// and a power-law search workload at 256 closed-loop clients. Each cell
// reports aggregate throughput, p50/p99 query latency, the sub-query
// p99, the mean fan-out width (shards touched per query) and the tail
// amplification the fan-out join costs (query p99 / sub-query p99).
//
// Expected shape: small-rect workloads fan out to ~1 shard and scale
// near-linearly; the power-law tail of large rectangles touches every
// shard, capping its speedup and driving tail amplification up with the
// shard count.
#include "bench_util.h"
#include "model/shard_sim.h"

namespace {

catfish::model::ShardedClusterConfig MakeShardConfig(
    uint32_t shards, const catfish::workload::RequestGen::Config& w,
    const catfish::bench::BenchEnv& env) {
  catfish::model::ShardedClusterConfig cfg;
  cfg.scheme = catfish::model::Scheme::kCatfish;
  cfg.num_shards = shards;
  cfg.num_clients = 256;
  cfg.requests_per_client = env.requests;
  cfg.workload = w;
  cfg.seed = env.seed;
  cfg.arena_chunks = catfish::bench::ArenaChunksFor(env.dataset / shards + 1);
  if (!env.trace_json.empty()) {
    cfg.trace_sample_every = env.trace_sample_every;
    cfg.trace_retain = 64;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Shard scaling: search throughput and tail vs shard count", env);

  std::unique_ptr<telemetry::JsonLinesWriter> out;
  if (!env.telemetry_json.empty()) {
    out = std::make_unique<telemetry::JsonLinesWriter>(env.telemetry_json);
    if (!out->ok()) {
      std::fprintf(stderr, "warning: cannot open '%s' for telemetry JSON\n",
                   env.telemetry_json.c_str());
      out.reset();
    }
  }

  // Sampled distributed traces across all cells, flushed as one
  // Chrome/Perfetto document on exit (--trace-json).
  std::vector<std::shared_ptr<telemetry::Trace>> traces;

  const auto items = workload::UniformDataset(env.dataset, 1e-4, env.seed);

  workload::RequestGen::Config workloads[2];
  workloads[0].scale = 1e-5;
  workloads[1].dist = workload::RequestGen::ScaleDist::kPowerLaw;
  // Widen the power-law tail past a cell width (cells are ~1/3 of the
  // unit square at 8 shards) so the heavy tail actually crosses shard
  // boundaries — that's the fan-out regime this bench exists to show.
  workloads[1].pl_hi = 0.3;

  const uint32_t shard_counts[] = {1, 2, 4, 8};

  for (const auto& w : workloads) {
    std::printf("--- workload: scale %s, 256 clients ---\n", ScaleLabel(w));
    std::printf("%8s %10s %9s %9s %9s %8s %9s\n", "shards", "kops",
                "p50_us", "p99_us", "sub_p99", "fanout", "tail_amp");
    double base_kops = 0.0;
    for (const uint32_t shards : shard_counts) {
      telemetry::Registry::Global().Reset();
      const auto cfg = MakeShardConfig(shards, w, env);
      model::ShardedClusterSim sim(items, cfg);
      const auto r = sim.Run();
      if (base_kops == 0.0) base_kops = r.throughput_kops;
      std::printf("%8u %10.1f %9.1f %9.1f %9.1f %8.2f %9.2f  (%4.2fx)\n",
                  shards, r.throughput_kops, r.search_latency_us.p50(),
                  r.search_latency_us.p99(), r.subquery_latency_us.p99(),
                  r.mean_fanout, r.tail_amplification,
                  base_kops > 0.0 ? r.throughput_kops / base_kops : 0.0);
      if (out) {
        const auto snap = telemetry::Registry::Global().TakeSnapshot();
        telemetry::JsonWriter j;
        j.BeginObject();
        j.Key("figure").Value("shard_scaling");
        j.Key("scheme").Value(model::SchemeName(cfg.scheme));
        j.Key("workload").Value(ScaleLabel(w));
        j.Key("shards").Value(static_cast<uint64_t>(shards));
        j.Key("clients").Value(static_cast<uint64_t>(cfg.num_clients));
        j.Key("dataset").Value(static_cast<uint64_t>(env.dataset));
        j.Key("requests_per_client").Value(env.requests);
        j.Key("completed").Value(r.completed);
        j.Key("duration_us").Value(r.duration_us);
        j.Key("throughput_kops").Value(r.throughput_kops);
        j.Key("mean_shard_cpu_util").Value(r.mean_shard_cpu_util);
        j.Key("mean_fanout").Value(r.mean_fanout);
        j.Key("tail_amplification").Value(r.tail_amplification);
        j.Key("search_latency_us");
        telemetry::WriteHistogram(j, r.search_latency_us);
        j.Key("subquery_latency_us");
        telemetry::WriteHistogram(j, r.subquery_latency_us);
        j.Key("fanout_width");
        telemetry::WriteHistogram(j, r.fanout_width);
        j.Key("sharded");
        j.BeginObject();
        j.Key("searches").Value(r.searches);
        j.Key("fast_subqueries").Value(r.fast_subqueries);
        j.Key("offload_subqueries").Value(r.offload_subqueries);
        j.Key("inserts").Value(r.inserts);
        j.Key("rdma_reads").Value(r.rdma_reads);
        j.Key("mode_switches").Value(r.mode_switches);
        j.EndObject();
        j.Key("metrics").Raw(telemetry::SnapshotToJson(snap));
        j.EndObject();
        out->WriteLine(j.str());
      }
      traces.insert(traces.end(), r.traces.begin(), r.traces.end());
    }
    std::printf("\n");
  }
  if (!env.trace_json.empty() && !traces.empty()) {
    const std::string doc = telemetry::TracesToChromeJson(
        std::span<const std::shared_ptr<telemetry::Trace>>(traces));
    std::FILE* f = env.trace_json == "-"
                       ? stdout
                       : std::fopen(env.trace_json.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      if (f != stdout) std::fclose(f);
      std::fprintf(stderr, "wrote %zu sampled distributed traces to %s\n",
                   traces.size(), env.trace_json.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot open '%s' for trace JSON\n",
                   env.trace_json.c_str());
    }
  }
  std::printf(
      "Shape: narrow queries (1e-5) fan out to ~1 shard and scale with\n"
      "the shard count; the power-law tail touches every shard, so its\n"
      "scaling flattens and tail amplification grows with fan-out.\n");
  return 0;
}

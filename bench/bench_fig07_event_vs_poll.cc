// Figure 7: polling- vs event-based fast messaging (§IV-B).
//
// InfiniBand fast messaging with 80..320 clients (≫ 28 cores) at scales
// 0.00001 and 0.01. Shape targets: polling latency grows superlinearly
// with the connection count (CPU oversubscription: threads burn their
// quanta polling idle rings); event-driven latency grows ≈ linearly and
// is several times lower at 320 clients. The paper reports 203.96 µs →
// 3712.35 µs (18.2×) for polling and 152.50 µs → 680.47 µs for events.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 7: polling vs event-based fast messaging (IB)", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("fig07_event_vs_poll", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  for (const double scale : {1e-5, 1e-2}) {
    std::printf("--- request scale %s ---\n",
                scale == 1e-5 ? "0.00001" : "0.01");
    std::printf("%8s %18s %18s %10s\n", "clients", "polling_lat_us",
                "event_lat_us", "ratio");
    for (const size_t clients : {80, 160, 240, 320}) {
      workload::RequestGen::Config w;
      w.scale = scale;

      auto poll_cfg =
          MakeConfig(model::Scheme::kFastMessaging, clients, w, env);
      poll_cfg.notify = NotifyMode::kPolling;
      const auto rp = exporter.RunConfig(tb, poll_cfg, env, "polling");

      auto event_cfg =
          MakeConfig(model::Scheme::kFastMessaging, clients, w, env);
      event_cfg.notify = NotifyMode::kEventDriven;
      const auto re = exporter.RunConfig(tb, event_cfg, env, "event");

      std::printf("%8zu %18.2f %18.2f %9.2fx\n", clients,
                  rp.latency_us.mean(), re.latency_us.mean(),
                  rp.latency_us.mean() / re.latency_us.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: polling grows superlinearly (quadratic-ish) past one\n"
      "connection per core; event-based stays ~linear and far lower.\n");
  return 0;
}

// Recovery bench: how long does a client stay dark after a full server
// crash/reboot — now with the server's state genuinely destroyed?
//
// Each trial runs a warm client against a live durable server, pushes a
// burst of writes (growing the WAL), then kills the server the honest
// way: tree, arena and DurabilityManager are destroyed with it, and the
// replacement incarnation rebuilds everything from the surviving WAL +
// checkpoint before accepting traffic. The trial measures restart →
// first successful fast-path search and decomposes it:
//
//   replay_ms      checkpoint restore + WAL replay (Recover wall time)
//   rebootstrap_ms handshake + ring rewire (flight recorder kReconnect.b)
//   detection_ms   the remainder: watchdog escalation, failed probes,
//                  acceptor spin-up — everything else in the dark window
//
// Earlier versions of this bench kept the old tree alive across the
// restart, so "recovery" silently excluded state rebuild; recovery_ms
// here is the full client-observed outage.
//
//   CATFISH_TRIALS  number of restart trials     (default 20)
//   CATFISH_WRITES  client writes between crashes (default 200)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "catfish/bootstrap.h"
#include "catfish/client.h"
#include "catfish/server.h"
#include "common/rng.h"
#include "durable/checkpoint.h"
#include "durable/manager.h"
#include "durable/storage.h"
#include "rtree/bulk_load.h"
#include "telemetry/events.h"

namespace catfish {
namespace {

constexpr size_t kArenaChunks = 1 << 13;

geo::Rect RandomRect(Xoshiro256& rng, double max_edge) {
  const double x = rng.NextDouble() * (1.0 - max_edge);
  const double y = rng.NextDouble() * (1.0 - max_edge);
  return geo::Rect{x, y, x + rng.NextDouble() * max_edge,
                   y + rng.NextDouble() * max_edge};
}

double Ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

void PrintPercentiles(const char* name, std::vector<double> v) {
  if (v.empty()) return;
  std::sort(v.begin(), v.end());
  std::printf("%-16s min=%8.2f p50=%8.2f max=%8.2f ms\n", name, v.front(),
              v[v.size() / 2], v.back());
}

int Run() {
  size_t trials = 20;
  if (const char* t = std::getenv("CATFISH_TRIALS")) {
    trials = std::strtoull(t, nullptr, 10);
  }
  size_t writes_per_trial = 200;
  if (const char* w = std::getenv("CATFISH_WRITES")) {
    writes_per_trial = std::strtoull(w, nullptr, 10);
  }

  // The durable "disk" — the only state that survives a crash.
  auto wal_disk = std::make_shared<durable::MemLogStorage>();
  auto ckpt_disk = std::make_shared<durable::MemCheckpointStore>();

  // Seed dataset: bulk load bypasses the WAL, so capture it as the
  // initial checkpoint (applied_lsn = 0), exactly as a deployment would
  // snapshot after an offline load.
  Xoshiro256 rng(7);
  {
    rtree::NodeArena seed_arena(rtree::kChunkSize, kArenaChunks);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 5000; ++i) {
      items.push_back({RandomRect(rng, 0.005), i});
    }
    rtree::RStarTree loaded = rtree::BulkLoad(seed_arena, items);
    const durable::CheckpointMeta meta{0, loaded.size(), loaded.height(),
                                       loaded.write_epoch()};
    ckpt_disk->Write(durable::EncodeCheckpoint(
        seed_arena, durable::DedupTable(durable::DurabilityConfig{}.dedup_window),
        meta));
  }

  auto arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                                  kArenaChunks);
  auto durability =
      std::make_unique<durable::DurabilityManager>(wal_disk, ckpt_disk);
  auto tree = std::make_unique<rtree::RStarTree>(durability->Recover(*arena));

  rdma::Fabric fabric(rdma::FabricProfile::Instant());
  ServerConfig scfg;
  scfg.heartbeat_interval_us = 1'000;
  scfg.durability = durability.get();
  auto server_node = fabric.CreateNode("server");
  auto server = std::make_unique<RTreeServer>(server_node, *tree, scfg);
  auto acceptor = std::make_unique<BootstrapAcceptor>(*server, fabric);

  ClientConfig ccfg;
  ccfg.adaptive.heartbeat_interval_us = 1'000;
  ccfg.watchdog.enabled = true;
  ccfg.watchdog.suspect_after = 5;
  ccfg.watchdog.disconnect_after = 15;
  ccfg.request_timeout_us = 2'000'000;
  ccfg.write_attempts = 50;  // writes may race checkpoints and restarts
  auto client = ConnectViaBootstrap(
      [&] {
        if (!acceptor) throw std::runtime_error("no acceptor");
        return acceptor->Dial();
      },
      fabric.CreateNode("client"), ccfg);

  telemetry::EventRecorder::Global().Clear();
  std::printf("=== chaos recovery: server crash -> first good op "
              "(state rebuilt from WAL + checkpoint) ===\n");
  std::printf("%zu trials, %zu writes between crashes "
              "(CATFISH_TRIALS / CATFISH_WRITES)\n\n",
              trials, writes_per_trial);

  std::vector<double> total_ms, replay_ms, rebootstrap_ms, detection_ms;
  uint64_t next_write_id = 1'000'000;
  for (size_t trial = 0; trial < trials; ++trial) {
    // Warm burst plus a write burst: the crash must have a WAL tail to
    // replay, or "recovery" measures nothing but the handshake.
    for (int i = 0; i < 10; ++i) (void)client->SearchFast(RandomRect(rng, 0.02));
    for (size_t i = 0; i < writes_per_trial; ++i) {
      (void)client->Insert(RandomRect(rng, 0.005), next_write_id++);
    }

    // Crash: everything but the disks dies.
    acceptor->Stop();
    server->Stop();
    const auto t0 = std::chrono::steady_clock::now();
    acceptor.reset();
    server.reset();
    tree.reset();
    durability.reset();
    arena.reset();
    server_node = fabric.RestartNode("server");

    // Reboot: recover durable state before accepting traffic.
    arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                               kArenaChunks);
    durability =
        std::make_unique<durable::DurabilityManager>(wal_disk, ckpt_disk);
    const auto t_replay = std::chrono::steady_clock::now();
    tree = std::make_unique<rtree::RStarTree>(durability->Recover(*arena));
    const double replay = Ms(std::chrono::steady_clock::now() - t_replay);
    scfg.durability = durability.get();
    server = std::make_unique<RTreeServer>(server_node, *tree, scfg);
    acceptor = std::make_unique<BootstrapAcceptor>(*server, fabric);

    // Hammer the fast path until it answers again; degraded attempts
    // fail typed and fast, so this loop is the client's real experience.
    const geo::Rect probe = RandomRect(rng, 0.02);
    uint64_t failed_attempts = 0;
    for (;;) {
      try {
        (void)client->SearchFast(probe);
        break;
      } catch (const ClientError&) {
        ++failed_attempts;
      }
    }
    const double total = Ms(std::chrono::steady_clock::now() - t0);

    // The flight recorder carries the re-bootstrap (handshake + rewire)
    // duration for this trial's reconnect.
    double rebootstrap = 0;
    for (const auto& e : telemetry::EventRecorder::Global().Drain()) {
      if (e.type == telemetry::EventType::kReconnect) {
        rebootstrap = e.b / 1000.0;
      }
    }
    const double detection = std::max(0.0, total - replay - rebootstrap);
    total_ms.push_back(total);
    replay_ms.push_back(replay);
    rebootstrap_ms.push_back(rebootstrap);
    detection_ms.push_back(detection);

    const auto& report = durability->recovery_report();
    std::printf("trial %2zu: total %8.2f ms = replay %7.2f + rebootstrap "
                "%6.2f + detection %7.2f   (%llu records replayed, gen %llu, "
                "%llu typed failures)\n",
                trial, total, replay, rebootstrap, detection,
                static_cast<unsigned long long>(report.records_replayed),
                static_cast<unsigned long long>(client->server_generation()),
                static_cast<unsigned long long>(failed_attempts));
  }

  std::printf("\n");
  PrintPercentiles("total", total_ms);
  PrintPercentiles("replay", replay_ms);
  PrintPercentiles("rebootstrap", rebootstrap_ms);
  PrintPercentiles("detection", detection_ms);
  std::printf("reconnects=%llu watchdog_trips=%llu timeouts=%llu "
              "write_retries=%llu\n",
              static_cast<unsigned long long>(client->stats().reconnects),
              static_cast<unsigned long long>(client->stats().watchdog_trips),
              static_cast<unsigned long long>(client->stats().timeouts),
              static_cast<unsigned long long>(client->stats().write_retries));

  acceptor->Stop();
  server->Stop();
  return 0;
}

}  // namespace
}  // namespace catfish

int main() { return catfish::Run(); }

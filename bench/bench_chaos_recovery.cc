// Recovery bench: how long does a client stay dark after a full server
// crash/reboot?
//
// Each trial runs a warm client against a live server, kills the server
// with Fabric::RestartNode (rkeys and QPNs die, generation bumps), and
// measures restart → first successful fast-path search. That interval
// covers the whole failover pipeline: watchdog escalation, typed
// fail-fast errors, re-bootstrap through the new acceptor, ring rewire.
//
//   CATFISH_TRIALS  number of restart trials   (default 20)
//
// Prints one line per trial plus min/p50/max, and the per-trial
// re-bootstrap durations the flight recorder captured (kReconnect.b) —
// the same signal EXPERIMENTS.md plots from /events.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "catfish/bootstrap.h"
#include "catfish/client.h"
#include "catfish/server.h"
#include "common/rng.h"
#include "rtree/bulk_load.h"
#include "telemetry/events.h"

namespace catfish {
namespace {

geo::Rect RandomRect(Xoshiro256& rng, double max_edge) {
  const double x = rng.NextDouble() * (1.0 - max_edge);
  const double y = rng.NextDouble() * (1.0 - max_edge);
  return geo::Rect{x, y, x + rng.NextDouble() * max_edge,
                   y + rng.NextDouble() * max_edge};
}

int Run() {
  size_t trials = 20;
  if (const char* t = std::getenv("CATFISH_TRIALS")) {
    trials = std::strtoull(t, nullptr, 10);
  }

  rtree::NodeArena arena(rtree::kChunkSize, 1 << 13);
  Xoshiro256 rng(7);
  std::vector<rtree::Entry> items;
  for (uint64_t i = 0; i < 5000; ++i) {
    items.push_back({RandomRect(rng, 0.005), i});
  }
  rtree::RStarTree tree = rtree::BulkLoad(arena, items);

  rdma::Fabric fabric(rdma::FabricProfile::Instant());
  ServerConfig scfg;
  scfg.heartbeat_interval_us = 1'000;
  auto server_node = fabric.CreateNode("server");
  auto server = std::make_unique<RTreeServer>(server_node, tree, scfg);
  auto acceptor = std::make_unique<BootstrapAcceptor>(*server, fabric);

  ClientConfig ccfg;
  ccfg.adaptive.heartbeat_interval_us = 1'000;
  ccfg.watchdog.enabled = true;
  ccfg.watchdog.suspect_after = 5;
  ccfg.watchdog.disconnect_after = 15;
  ccfg.request_timeout_us = 2'000'000;
  auto client = ConnectViaBootstrap(
      [&] {
        if (!acceptor) throw std::runtime_error("no acceptor");
        return acceptor->Dial();
      },
      fabric.CreateNode("client"), ccfg);

  telemetry::EventRecorder::Global().Clear();
  std::printf("=== chaos recovery: server restart -> first good op ===\n");
  std::printf("%zu trials (set CATFISH_TRIALS to change)\n\n", trials);

  std::vector<double> recovery_ms;
  for (size_t trial = 0; trial < trials; ++trial) {
    // Warm burst so the trial starts from a healthy, cached state.
    for (int i = 0; i < 10; ++i) (void)client->SearchFast(RandomRect(rng, 0.02));

    acceptor->Stop();
    server->Stop();
    acceptor.reset();
    server.reset();
    server_node = fabric.RestartNode("server");
    const auto t0 = std::chrono::steady_clock::now();
    server = std::make_unique<RTreeServer>(server_node, tree, scfg);
    acceptor = std::make_unique<BootstrapAcceptor>(*server, fabric);

    // Hammer the fast path until it answers again; degraded attempts
    // fail typed and fast, so this loop is the client's real experience.
    const geo::Rect probe = RandomRect(rng, 0.02);
    uint64_t failed_attempts = 0;
    for (;;) {
      try {
        (void)client->SearchFast(probe);
        break;
      } catch (const ClientError&) {
        ++failed_attempts;
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    recovery_ms.push_back(ms);
    std::printf("trial %2zu: recovery %8.2f ms  (generation %llu, "
                "%llu typed failures while dark)\n",
                trial, ms,
                static_cast<unsigned long long>(client->server_generation()),
                static_cast<unsigned long long>(failed_attempts));
  }

  std::sort(recovery_ms.begin(), recovery_ms.end());
  const auto pct = [&](double p) {
    return recovery_ms[std::min(recovery_ms.size() - 1,
                                static_cast<size_t>(p * recovery_ms.size()))];
  };
  std::printf("\nrecovery_ms min=%.2f p50=%.2f max=%.2f\n",
              recovery_ms.front(), pct(0.5), recovery_ms.back());
  std::printf("reconnects=%llu watchdog_trips=%llu timeouts=%llu\n",
              static_cast<unsigned long long>(client->stats().reconnects),
              static_cast<unsigned long long>(client->stats().watchdog_trips),
              static_cast<unsigned long long>(client->stats().timeouts));

  // The flight recorder's own view: each kReconnect carries the
  // re-bootstrap duration (handshake + rewire only, excluding detection).
  std::vector<double> rewire_us;
  for (const auto& e : telemetry::EventRecorder::Global().Drain()) {
    if (e.type == telemetry::EventType::kReconnect) rewire_us.push_back(e.b);
  }
  if (!rewire_us.empty()) {
    std::sort(rewire_us.begin(), rewire_us.end());
    std::printf("re-bootstrap_us (kReconnect.b) min=%.0f p50=%.0f max=%.0f "
                "over %zu events\n",
                rewire_us.front(), rewire_us[rewire_us.size() / 2],
                rewire_us.back(), rewire_us.size());
  }

  acceptor->Stop();
  server->Stop();
  return 0;
}

}  // namespace
}  // namespace catfish

int main() { return catfish::Run(); }

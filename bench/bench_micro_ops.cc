// Host micro-benchmarks (google-benchmark) of the building blocks, plus
// the calibration measurement behind DESIGN.md §5: the real per-node
// traversal cost of this build's R-tree. These are not paper figures —
// they pin down the constants the cluster model charges and guard
// against performance regressions in the data structures.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "catfish/adaptive.h"
#include "common/rng.h"
#include "msg/ring.h"
#include "rtree/bulk_load.h"
#include "rtree/rstar.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "workload/generators.h"

namespace {

using namespace catfish;

struct TreeFixture {
  std::unique_ptr<rtree::NodeArena> arena;
  std::unique_ptr<rtree::RStarTree> tree;

  explicit TreeFixture(size_t n) {
    arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 16);
    const auto items = workload::UniformDataset(n, 1e-4, 1);
    tree = std::make_unique<rtree::RStarTree>(
        rtree::BulkLoad(*arena, items));
  }
};

TreeFixture& SharedTree() {
  static TreeFixture fixture(200'000);
  return fixture;
}

void BM_RTreeSearch(benchmark::State& state) {
  auto& f = SharedTree();
  const double scale = 1e-5 * std::pow(10.0, state.range(0));
  Xoshiro256 rng(7);
  std::vector<rtree::Entry> out;
  uint64_t nodes = 0;
  uint64_t searches = 0;
  for (auto _ : state) {
    out.clear();
    rtree::SearchStats st;
    f.tree->SearchTraced(workload::UniformRect(rng, scale), out, &st,
                         nullptr);
    benchmark::DoNotOptimize(out.data());
    nodes += st.nodes_visited;
    ++searches;
  }
  state.counters["nodes/op"] =
      static_cast<double>(nodes) / static_cast<double>(searches);
  state.counters["ns/node"] = benchmark::Counter(
      static_cast<double>(nodes),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_RTreeSearch)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_RTreeInsert(benchmark::State& state) {
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 16);
  rtree::RStarTree tree = rtree::RStarTree::Create(arena);
  Xoshiro256 rng(11);
  uint64_t id = 0;
  for (auto _ : state) {
    tree.Insert(workload::UniformRect(rng, 1e-4), id++);
  }
}
BENCHMARK(BM_RTreeInsert)->Unit(benchmark::kMicrosecond);

void BM_VersionedNodeRead(benchmark::State& state) {
  auto& f = SharedTree();
  rtree::NodeData node;
  for (auto _ : state) {
    f.tree->ReadNode(rtree::kRootChunk, node);
    benchmark::DoNotOptimize(node.count);
  }
}
BENCHMARK(BM_VersionedNodeRead);

void BM_RingRoundTrip(benchmark::State& state) {
  rdma::Fabric fabric(rdma::FabricProfile::Instant());
  auto a = fabric.CreateNode("a");
  auto b = fabric.CreateNode("b");
  auto a_qp = a->CreateQp(a->CreateCq(), a->CreateCq());
  auto b_qp = b->CreateQp(b->CreateCq(), b->CreateCq());
  rdma::QueuePair::Connect(a_qp, b_qp);
  std::vector<std::byte> ring_mem(64 * 1024);
  alignas(8) std::array<std::byte, 8> ack{};
  const auto ring_mr = b->RegisterMemory(ring_mem);
  const auto ack_mr = a->RegisterMemory(ack);
  msg::RingSender tx(a_qp, rdma::RemoteAddr{ring_mr.rkey, 0},
                     ring_mem.size(), ack);
  msg::RingReceiver rx(ring_mem, b_qp, rdma::RemoteAddr{ack_mr.rkey, 0});

  std::vector<std::byte> payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    while (!tx.TrySend(1, msg::kFlagEnd, payload)) {
      benchmark::DoNotOptimize(rx.TryReceive());
    }
    auto m = rx.TryReceive();
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RingRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RdmaSimRead(benchmark::State& state) {
  rdma::Fabric fabric(rdma::FabricProfile::Instant());
  auto server = fabric.CreateNode("server");
  auto client = fabric.CreateNode("client");
  auto s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
  auto c_send = client->CreateCq();
  auto c_qp = client->CreateQp(c_send, client->CreateCq());
  rdma::QueuePair::Connect(s_qp, c_qp);
  std::vector<std::byte> mem(1 << 20, std::byte{1});
  const auto mr = server->RegisterMemory(mem);

  std::vector<std::byte> local(static_cast<size_t>(state.range(0)));
  rdma::WorkCompletion wc;
  uint64_t wr = 0;
  for (auto _ : state) {
    c_qp->PostRead(++wr, local, rdma::RemoteAddr{mr.rkey, 0});
    while (c_send->Poll({&wc, 1}) == 0) {
    }
    benchmark::DoNotOptimize(local.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RdmaSimRead)->Arg(1024)->Arg(65536);

// Doorbell batching on the sim: one PostBatch of N READs + one PollMany
// drain vs N PostRead/Poll pairs (BM_RdmaSimRead is the N=1 anchor).
// Sweep N over the EXPERIMENTS.md ablation points. Reported per READ so
// the batch sizes compare directly: the gap between N=1 and N=16 is the
// per-op lock/wakeup overhead the doorbell amortizes.
void BM_RdmaSimReadBatch(benchmark::State& state) {
  rdma::Fabric fabric(rdma::FabricProfile::Instant());
  auto server = fabric.CreateNode("server");
  auto client = fabric.CreateNode("client");
  auto s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
  auto c_send = client->CreateCq();
  auto c_qp = client->CreateQp(c_send, client->CreateCq());
  rdma::QueuePair::Connect(s_qp, c_qp);
  std::vector<std::byte> mem(1 << 20, std::byte{1});
  const auto mr = server->RegisterMemory(mem);

  const size_t batch = static_cast<size_t>(state.range(0));
  constexpr size_t kChunk = 1024;
  std::vector<std::byte> local(batch * kChunk);
  std::vector<rdma::WorkRequest> wrs(batch);
  std::vector<rdma::WorkCompletion> wcs(batch);
  uint64_t wr = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      wrs[i].kind = rdma::WorkRequest::Kind::kRead;
      wrs[i].wr_id = ++wr;
      wrs[i].dst = std::span<std::byte>(local).subspan(i * kChunk, kChunk);
      wrs[i].remote = rdma::RemoteAddr{mr.rkey, i * kChunk};
    }
    c_qp->PostBatch(wrs);
    size_t reaped = 0;
    while (reaped < batch) {
      reaped += c_send->PollMany(
          std::span<rdma::WorkCompletion>(wcs).subspan(reaped));
    }
    benchmark::DoNotOptimize(local.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(batch * kChunk));
}
BENCHMARK(BM_RdmaSimReadBatch)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_AdaptiveDecision(benchmark::State& state) {
  AdaptiveController ctrl(AdaptiveConfig{}, 3);
  uint64_t t = 0;
  for (auto _ : state) {
    if ((t & 0xff) == 0) ctrl.OnHeartbeat(0.99);
    benchmark::DoNotOptimize(ctrl.NextMode(t += 100));
  }
}
BENCHMARK(BM_AdaptiveDecision);

}  // namespace

// google-benchmark owns the flag namespace, so the shared --telemetry-json
// flag is env-only here: the benchmarked code paths (adaptive controller,
// ring transport) report to the global registry, dumped once at exit.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("CATFISH_TELEMETRY_JSON")) {
    catfish::telemetry::JsonLinesWriter out(path);
    if (out.ok()) {
      out.WriteLine(catfish::telemetry::SnapshotToJson(
          catfish::telemetry::Registry::Global().TakeSnapshot()));
    }
  }
  return 0;
}

// Figure 14: the real-world dataset experiment (§V-C).
//
// The rea02 dataset (1,888,012 California street-segment rectangles,
// substituted by a synthetic grid with the published insertion-order and
// query-cardinality structure — see DESIGN.md §2) under its query file
// (≈100 results per query, uniform 50..150). Five schemes, clients
// 32..256. Shape targets: same ordering as the search-only experiments;
// paper headline: Catfish up to 2.23× / 4.28× / 27.25× higher throughput
// and 2.32× / 3.47× / 56.09× lower latency than fast messaging /
// offloading / TCP.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 14: rea02 real-world dataset (synthetic stand-in)", env);

  workload::Rea02Config rcfg;
  // Full fidelity uses the real dataset size; CATFISH_DATASET scales it.
  if (env.dataset != 2'000'000) {
    rcfg.total = env.dataset;
    rcfg.region_size = std::max<size_t>(1000, env.dataset / 94);
  }
  const auto ds = workload::BuildRea02Synthetic(env.seed, rcfg);
  Testbed tb = MakeRea02Testbed(ds);
  CellExporter exporter("fig14_rea02", env);
  const StatsEndpoint stats = MaybeServeStats(env);
  std::printf("built rea02 tree: %zu segments, height %u\n\n",
              ds.insert_order.size(), tb.tree->height());

  workload::RequestGen::Config w;
  w.dist = workload::RequestGen::ScaleDist::kRea02;
  w.rea02 = rcfg;

  const size_t client_counts[] = {32, 64, 128, 256};

  std::printf("%-18s %8s %14s %14s\n", "scheme", "clients", "thr_kops",
              "mean_lat_us");
  for (const auto s : kAllSchemes) {
    for (const size_t c : client_counts) {
      const auto r = exporter.Run(tb, s, c, w, env);
      std::printf("%-18s %8zu %14.1f %14.1f\n", model::SchemeName(s), c,
                  r.throughput_kops, r.latency_us.mean());
    }
  }
  std::printf(
      "\nPaper shape: Catfish highest throughput and lowest latency on the\n"
      "real dataset, same trends as the synthetic search-only runs.\n");
  return 0;
}

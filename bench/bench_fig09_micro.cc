// Figure 9: communication micro-benchmark (§V-A).
//
// Ping-pong transfers of 2 B .. 8 MB over the four transports (TCP-1G,
// TCP-40G, RDMA READ, RDMA WRITE on IB), one transfer in flight at a
// time (like perftest). Latency is computed from the calibrated fabric
// profiles — the same model the cluster simulation charges — plus the
// per-side kernel/verbs costs; throughput is size/latency.
//
// Shape targets: WRITE < READ < TCP-40G < TCP-1G for small transfers
// (WRITE is one-directional, READ pays a round trip, TCP pays the kernel
// + higher base latency); all latencies flat below ~2 KB then
// bandwidth-bound; throughput ordering IB >> 40G >> 1G, each reaching
// line rate only for medium/large transfers.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "rdmasim/fabric_profile.h"
#include "telemetry/export.h"

namespace {

using catfish::rdma::FabricProfile;

// One-at-a-time transfer completion time for each method, µs.
double RdmaWriteUs(const FabricProfile& ib, size_t bytes) {
  // One-sided, unidirectional: post + one-way delivery. (perftest
  // measures posted-to-completion; RC write completion needs the NIC
  // ack, folded into the base latency here.)
  return ib.initiator_cpu_us + ib.OneWayUs(bytes);
}

double RdmaReadUs(const FabricProfile& ib, size_t bytes) {
  // Round trip: tiny request there, payload back.
  return ib.initiator_cpu_us + ib.OneWayUs(16) + ib.OneWayUs(bytes);
}

double TcpUs(const FabricProfile& e, size_t bytes) {
  // 1-byte request, `bytes` response, kernel stack on both hosts in both
  // directions.
  return 2 * e.initiator_cpu_us + 2 * e.target_cpu_us + e.OneWayUs(1) +
         e.OneWayUs(bytes);
}

double Gbps(size_t bytes, double us) {
  return static_cast<double>(bytes) * 8.0 / (us * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  using catfish::bench::BenchEnv;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  const auto ib = FabricProfile::InfiniBand100G();
  const auto e40 = FabricProfile::Ethernet40G();
  const auto e1 = FabricProfile::Ethernet1G();

  // This bench is closed-form (no simulation, no registry), so the
  // telemetry export is the computed table itself, one cell per line.
  std::unique_ptr<catfish::telemetry::JsonLinesWriter> out;
  if (!env.telemetry_json.empty()) {
    out = std::make_unique<catfish::telemetry::JsonLinesWriter>(
        env.telemetry_json);
    if (!out->ok()) out.reset();
  }

  std::printf("=== Figure 9: micro benchmark (ping-pong, one in flight) ===\n\n");
  std::printf("%10s | %12s %12s %12s %12s | %10s %10s %10s %10s\n", "size",
              "lat:tcp1g", "lat:tcp40g", "lat:read", "lat:write", "thr:1g",
              "thr:40g", "thr:read", "thr:write");
  std::printf("%10s | %51s | %43s\n", "(bytes)", "(us)", "(Gbps)");

  for (size_t bytes = 2; bytes <= (8u << 20); bytes <<= 2) {
    const double t1 = TcpUs(e1, bytes);
    const double t40 = TcpUs(e40, bytes);
    const double rr = RdmaReadUs(ib, bytes);
    const double rw = RdmaWriteUs(ib, bytes);
    std::printf("%10zu | %12.2f %12.2f %12.2f %12.2f | %10.3f %10.3f %10.3f %10.3f\n",
                bytes, t1, t40, rr, rw, Gbps(bytes, t1), Gbps(bytes, t40),
                Gbps(bytes, rr), Gbps(bytes, rw));
    if (out) {
      catfish::telemetry::JsonWriter j;
      j.BeginObject();
      j.Key("figure").Value("fig09_micro");
      j.Key("bytes").Value(static_cast<uint64_t>(bytes));
      j.Key("lat_us_tcp1g").Value(t1);
      j.Key("lat_us_tcp40g").Value(t40);
      j.Key("lat_us_read").Value(rr);
      j.Key("lat_us_write").Value(rw);
      j.Key("gbps_tcp1g").Value(Gbps(bytes, t1));
      j.Key("gbps_tcp40g").Value(Gbps(bytes, t40));
      j.Key("gbps_read").Value(Gbps(bytes, rr));
      j.Key("gbps_write").Value(Gbps(bytes, rw));
      j.EndObject();
      out->WriteLine(j.str());
    }
  }

  std::printf(
      "\nPaper shape: WRITE lowest latency, then READ (one extra trip),\n"
      "then TCP-40G, then TCP-1G; latency flat for small (<2KB) sizes and\n"
      "bandwidth-bound beyond; throughput only reaches line rate for\n"
      "medium/large transfers.\n");
  return 0;
}

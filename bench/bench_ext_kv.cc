// Extension benchmark: the Catfish framework applied to the other
// link-based structures the paper names (§VI) — B+-tree and cuckoo
// hashing — comparing the two access paths per structure:
//
//   * server-side ops (what fast messaging executes), and
//   * offloaded ops over one-sided reads of the same versioned chunks.
//
// The figure of merit is *reads per remote operation*: a B+-tree lookup
// needs `height` dependent READs (nothing to multi-issue on a single
// path — §IV-C), the cuckoo lookup needs a constant 2 independent READs
// (perfectly multi-issuable), and the R-tree sits in between. This is
// exactly the structural property that decides how expensive offloading
// is for each structure. Both offloaded paths run on the shared remote
// engine (src/remote), so the read counters reported here and the
// `remote.*` metrics in the JSONL sink come from the same source the
// R-tree client uses.
//
//   ./build/bench/bench_ext_kv [--telemetry-json out.jsonl]
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "btree/bplus.h"
#include "btree/remote_reader.h"
#include "common/clock.h"
#include "common/rng.h"
#include "cuckoo/cuckoo.h"
#include "cuckoo/remote_reader.h"
#include "rdmasim/rdma.h"
#include "remote/transport.h"
#include "telemetry/export.h"

namespace {

using namespace catfish;

struct Rig {
  rdma::Fabric fabric{rdma::FabricProfile::Instant()};
  std::shared_ptr<rdma::SimNode> server = fabric.CreateNode("server");
  std::shared_ptr<rdma::SimNode> client = fabric.CreateNode("client");
  std::shared_ptr<rdma::CompletionQueue> cq = client->CreateCq();
  std::shared_ptr<rdma::QueuePair> c_qp, s_qp;
  rdma::MemoryRegionHandle mr;
  std::unique_ptr<remote::QpFetchTransport> transport;

  void Wire(std::span<std::byte> region, size_t chunk_size) {
    mr = server->RegisterMemory(region);
    s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
    c_qp = client->CreateQp(cq, client->CreateCq());
    rdma::QueuePair::Connect(s_qp, c_qp);
    transport = std::make_unique<remote::QpFetchTransport>(
        c_qp, cq, rdma::RemoteAddr{mr.rkey, 0}, chunk_size);
  }
};

/// One JSONL record per offloaded cell: reads/op straight from the
/// shared engine's counters plus the full `remote.*` metric snapshot.
void ExportCell(telemetry::JsonLinesWriter* out, const char* structure,
                size_t lookups, double mops,
                const remote::EngineStats& st) {
  if (!out) return;
  const auto snap = telemetry::Registry::Global().TakeSnapshot();
  telemetry::JsonWriter j;
  j.BeginObject();
  j.Key("bench").Value("ext_kv");
  j.Key("structure").Value(structure);
  j.Key("path").Value("offloaded");
  j.Key("lookups").Value(static_cast<uint64_t>(lookups));
  j.Key("mops").Value(mops);
  j.Key("reads_per_op").Value(static_cast<double>(st.reads) /
                              static_cast<double>(lookups));
  j.Key("version_retries").Value(st.version_retries);
  j.Key("retry_exhausted").Value(st.retry_exhausted);
  j.Key("metrics").Raw(telemetry::SnapshotToJson(snap));
  j.EndObject();
  out->WriteLine(j.str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto env = bench::BenchEnv::Load(argc, argv);
  constexpr size_t kKeys = 200'000;
  constexpr size_t kLookups = 100'000;

  std::unique_ptr<telemetry::JsonLinesWriter> jsonl;
  if (!env.telemetry_json.empty()) {
    jsonl = std::make_unique<telemetry::JsonLinesWriter>(env.telemetry_json);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "warning: cannot open '%s' for telemetry JSON\n",
                   env.telemetry_json.c_str());
      jsonl.reset();
    }
  }

  std::printf("=== Extension: B+-tree & cuckoo hashing on the Catfish "
              "substrate (§VI) ===\n");
  std::printf("%zu keys, %zu lookups per cell\n\n", kKeys, kLookups);
  std::printf("%-26s %12s %14s %14s\n", "structure/path", "Mops/s",
              "reads/op", "retries");

  // --- B+-tree ---
  {
    rtree::NodeArena arena(btree::kChunkSize, 1 << 14);
    btree::BPlusTree tree = btree::BPlusTree::Create(arena);
    Xoshiro256 load_rng(1);
    for (size_t i = 0; i < kKeys; ++i) tree.Put(load_rng.Next() | 1, i);

    Xoshiro256 rng(2);
    uint64_t t0 = NowNanos();
    uint64_t hits = 0;
    for (size_t i = 0; i < kLookups; ++i) {
      hits += tree.Get(rng.Next() | 1).has_value();
    }
    double secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    std::printf("%-26s %12.2f %14s %14s\n", "b+tree/server-side",
                static_cast<double>(kLookups) / secs / 1e6, "0", "-");

    telemetry::Registry::Global().Reset();
    Rig rig;
    rig.Wire(arena.memory(), btree::kChunkSize);
    btree::RemoteBTreeReader reader(rig.transport.get());
    Xoshiro256 rng2(1);  // hit-path: present keys
    std::optional<uint64_t> value;
    t0 = NowNanos();
    for (size_t i = 0; i < kLookups; ++i) {
      (void)reader.Get(rng2.Next() | 1, value);
    }
    secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    const double mops = static_cast<double>(kLookups) / secs / 1e6;
    std::printf("%-26s %12.2f %14.2f %14llu   (height %u: one dependent "
                "READ per level)\n",
                "b+tree/offloaded", mops,
                static_cast<double>(reader.stats().reads) / kLookups,
                static_cast<unsigned long long>(
                    reader.stats().version_retries),
                tree.height());
    ExportCell(jsonl.get(), "btree", kLookups, mops, reader.stats());
  }

  // --- cuckoo ---
  {
    rtree::NodeArena arena(cuckoo::kChunkSize, 1 << 14);
    cuckoo::CuckooTable table =
        cuckoo::CuckooTable::Create(arena, kKeys / 2, /*seed=*/5);
    Xoshiro256 load_rng(1);
    size_t inserted = 0;
    for (size_t i = 0; i < kKeys; ++i) {
      inserted += table.Put(load_rng.Next() | 1, i);
    }

    Xoshiro256 rng(2);
    uint64_t t0 = NowNanos();
    uint64_t hits = 0;
    for (size_t i = 0; i < kLookups; ++i) {
      hits += table.Get(rng.Next() | 1).has_value();
    }
    double secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    std::printf("%-26s %12.2f %14s %14s\n", "cuckoo/server-side",
                static_cast<double>(kLookups) / secs / 1e6, "0", "-");

    telemetry::Registry::Global().Reset();
    Rig rig;
    rig.Wire(arena.memory(), cuckoo::kChunkSize);
    cuckoo::RemoteCuckooReader reader(rig.transport.get(), table.geometry());
    // Hit-path cost: look up keys that are present (misses additionally
    // pay one consistency-confirm READ).
    Xoshiro256 rng2(1);
    std::optional<uint64_t> value;
    t0 = NowNanos();
    for (size_t i = 0; i < kLookups; ++i) {
      (void)reader.Get(rng2.Next() | 1, value);
    }
    secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    const double mops = static_cast<double>(kLookups) / secs / 1e6;
    std::printf("%-26s %12.2f %14.2f %14llu   (constant 2 independent "
                "READs: ideal multi-issue)\n",
                "cuckoo/offloaded", mops,
                static_cast<double>(reader.stats().reads) / kLookups,
                static_cast<unsigned long long>(
                    reader.stats().version_retries));
    ExportCell(jsonl.get(), "cuckoo", kLookups, mops, reader.stats());
    std::printf("\n(loaded %zu/%zu cuckoo keys at %.0f%% table load)\n",
                inserted, kKeys,
                100.0 * static_cast<double>(table.size()) /
                    static_cast<double>(table.capacity()));
  }
  return 0;
}

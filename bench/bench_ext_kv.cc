// Extension benchmark: the Catfish framework applied to the other
// link-based structures the paper names (§VI) — B+-tree and cuckoo
// hashing — comparing the two access paths per structure:
//
//   * server-side ops (what fast messaging executes), and
//   * offloaded ops over one-sided reads of the same versioned chunks.
//
// The figure of merit is *reads per remote operation*: a B+-tree lookup
// needs `height` dependent READs (nothing to multi-issue on a single
// path — §IV-C), the cuckoo lookup needs a constant 2 independent READs
// (perfectly multi-issuable), and the R-tree sits in between. This is
// exactly the structural property that decides how expensive offloading
// is for each structure.
#include <cstdio>

#include "btree/bplus.h"
#include "btree/remote_reader.h"
#include "common/clock.h"
#include "common/rng.h"
#include "cuckoo/cuckoo.h"
#include "cuckoo/remote_reader.h"
#include "rdmasim/rdma.h"

namespace {

using namespace catfish;

struct Rig {
  rdma::Fabric fabric{rdma::FabricProfile::Instant()};
  std::shared_ptr<rdma::SimNode> server = fabric.CreateNode("server");
  std::shared_ptr<rdma::SimNode> client = fabric.CreateNode("client");
  std::shared_ptr<rdma::CompletionQueue> cq = client->CreateCq();
  std::shared_ptr<rdma::QueuePair> c_qp, s_qp;
  rdma::MemoryRegionHandle mr;

  void Wire(std::span<std::byte> region) {
    mr = server->RegisterMemory(region);
    s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
    c_qp = client->CreateQp(cq, client->CreateCq());
    rdma::QueuePair::Connect(s_qp, c_qp);
  }

  void Fetch(rtree::ChunkId id, std::span<std::byte> dst) {
    c_qp->PostRead(1, dst, rdma::RemoteAddr{mr.rkey, id * 1024ull});
    rdma::WorkCompletion wc;
    while (cq->Poll({&wc, 1}) == 0) {
    }
  }
};

}  // namespace

int main() {
  constexpr size_t kKeys = 200'000;
  constexpr size_t kLookups = 100'000;

  std::printf("=== Extension: B+-tree & cuckoo hashing on the Catfish "
              "substrate (§VI) ===\n");
  std::printf("%zu keys, %zu lookups per cell\n\n", kKeys, kLookups);
  std::printf("%-26s %12s %14s %14s\n", "structure/path", "Mops/s",
              "reads/op", "retries");

  // --- B+-tree ---
  {
    rtree::NodeArena arena(btree::kChunkSize, 1 << 14);
    btree::BPlusTree tree = btree::BPlusTree::Create(arena);
    Xoshiro256 load_rng(1);
    for (size_t i = 0; i < kKeys; ++i) tree.Put(load_rng.Next() | 1, i);

    Xoshiro256 rng(2);
    uint64_t t0 = NowNanos();
    uint64_t hits = 0;
    for (size_t i = 0; i < kLookups; ++i) {
      hits += tree.Get(rng.Next() | 1).has_value();
    }
    double secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    std::printf("%-26s %12.2f %14s %14s\n", "b+tree/server-side",
                static_cast<double>(kLookups) / secs / 1e6, "0", "-");

    Rig rig;
    rig.Wire(arena.memory());
    btree::RemoteBTreeReader reader(
        [&rig](btree::ChunkId id, std::span<std::byte> dst) {
          rig.Fetch(id, dst);
        });
    Xoshiro256 rng2(1);  // hit-path: present keys
    t0 = NowNanos();
    for (size_t i = 0; i < kLookups; ++i) {
      (void)reader.Get(rng2.Next() | 1);
    }
    secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    std::printf("%-26s %12.2f %14.2f %14llu   (height %u: one dependent "
                "READ per level)\n",
                "b+tree/offloaded",
                static_cast<double>(kLookups) / secs / 1e6,
                static_cast<double>(reader.stats().reads) / kLookups,
                static_cast<unsigned long long>(
                    reader.stats().version_retries),
                tree.height());
  }

  // --- cuckoo ---
  {
    rtree::NodeArena arena(cuckoo::kChunkSize, 1 << 14);
    cuckoo::CuckooTable table =
        cuckoo::CuckooTable::Create(arena, kKeys / 2, /*seed=*/5);
    Xoshiro256 load_rng(1);
    size_t inserted = 0;
    for (size_t i = 0; i < kKeys; ++i) {
      inserted += table.Put(load_rng.Next() | 1, i);
    }

    Xoshiro256 rng(2);
    uint64_t t0 = NowNanos();
    uint64_t hits = 0;
    for (size_t i = 0; i < kLookups; ++i) {
      hits += table.Get(rng.Next() | 1).has_value();
    }
    double secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    std::printf("%-26s %12.2f %14s %14s\n", "cuckoo/server-side",
                static_cast<double>(kLookups) / secs / 1e6, "0", "-");

    Rig rig;
    rig.Wire(arena.memory());
    cuckoo::RemoteCuckooReader reader(
        [&rig](cuckoo::ChunkId id, std::span<std::byte> dst) {
          rig.Fetch(id, dst);
        },
        table.geometry());
    // Hit-path cost: look up keys that are present (misses additionally
    // pay one consistency-confirm READ).
    Xoshiro256 rng2(1);
    t0 = NowNanos();
    for (size_t i = 0; i < kLookups; ++i) {
      (void)reader.Get(rng2.Next() | 1);
    }
    secs = static_cast<double>(NowNanos() - t0) * 1e-9;
    std::printf("%-26s %12.2f %14.2f %14llu   (constant 2 independent "
                "READs: ideal multi-issue)\n",
                "cuckoo/offloaded",
                static_cast<double>(kLookups) / secs / 1e6,
                static_cast<double>(reader.stats().reads) / kLookups,
                static_cast<unsigned long long>(
                    reader.stats().version_retries));
    std::printf("\n(loaded %zu/%zu cuckoo keys at %.0f%% table load)\n",
                inserted, kKeys,
                100.0 * static_cast<double>(table.size()) /
                    static_cast<double>(table.capacity()));
  }
  return 0;
}

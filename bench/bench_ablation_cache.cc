// Ablation: client-side caching of internal R-tree nodes (§VII contrasts
// Catfish with Cell's client-side cache of top B-tree levels; §VI invites
// such "more intricate functions").
//
// Runs the real client against the emulated fabric and counts RDMA READs
// per offloaded search, with the cache off vs on. READ count is the
// fabric-independent cost driver of offloading: each saved READ is a
// saved round trip (or saved NIC slot under multi-issue). Internal nodes
// are ~1/19 of the tree, so a warm cache should eliminate all non-leaf
// fetches — about `height-1` READs of every search at small scales.
//
// READ counts come from the shared remote engine (src/remote) the
// client's offload path runs on — the same counters every other consumer
// reports — and each (scale, cache) cell can be dumped as one JSON line:
//
//   ./build/bench/bench_ablation_cache [--telemetry-json out.jsonl]
#include <cstdio>

#include "bench_util.h"
#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "telemetry/export.h"
#include "workload/generators.h"

namespace {

/// One JSONL record per cell: the cell coordinates, reads/search from
/// the engine's counters, and the full metric snapshot (remote.*,
/// catfish.*, rdma.*).
void ExportCell(catfish::telemetry::JsonLinesWriter* out, double scale,
                bool cached, int searches,
                const catfish::ClientStats& st,
                const catfish::remote::EngineStats& eng) {
  using namespace catfish;
  if (!out) return;
  const auto snap = telemetry::Registry::Global().TakeSnapshot();
  telemetry::JsonWriter j;
  j.BeginObject();
  j.Key("bench").Value("ablation_cache");
  j.Key("scale").Value(scale);
  j.Key("cache").Value(cached ? "on" : "off");
  j.Key("searches").Value(static_cast<uint64_t>(searches));
  j.Key("reads_per_search").Value(static_cast<double>(eng.reads) /
                                  static_cast<double>(searches));
  j.Key("version_retries").Value(eng.version_retries);
  j.Key("retry_exhausted").Value(eng.retry_exhausted);
  j.Key("cache_hits").Value(st.cache_hits);
  j.Key("cache_invalidations").Value(st.cache_invalidations);
  j.Key("metrics").Raw(telemetry::SnapshotToJson(snap));
  j.EndObject();
  out->WriteLine(j.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace std::chrono_literals;

  const auto env = bench::BenchEnv::Load(argc, argv);
  constexpr size_t kDataset = 300'000;
  constexpr int kSearches = 2000;

  std::unique_ptr<telemetry::JsonLinesWriter> jsonl;
  if (!env.telemetry_json.empty()) {
    jsonl = std::make_unique<telemetry::JsonLinesWriter>(env.telemetry_json);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "warning: cannot open '%s' for telemetry JSON\n",
                   env.telemetry_json.c_str());
      jsonl.reset();
    }
  }

  rtree::NodeArena arena(rtree::kChunkSize, 1 << 16);
  const auto items = workload::UniformDataset(kDataset, 1e-4, 9);
  rtree::RStarTree tree = rtree::BulkLoad(arena, items);

  rdma::Fabric fabric(rdma::FabricProfile::InfiniBand100G());
  ServerConfig scfg;
  scfg.heartbeat_interval_us = 2'000;
  RTreeServer server(fabric.CreateNode("server"), tree, scfg);

  std::printf("=== Ablation: client-side internal-node cache ===\n");
  std::printf("%zu rects, tree height %u, %d offloaded searches per cell\n\n",
              kDataset, tree.height(), kSearches);
  std::printf("%10s %10s %14s %14s %12s %12s\n", "scale", "cache",
              "reads/search", "cache hit/sr", "saved", "results/sr");

  for (const double scale : {1e-4, 1e-3, 1e-2}) {
    double reads_per_search[2] = {0, 0};
    double results_per_search = 0;
    double hits_per_search = 0;
    for (const bool cached : {false, true}) {
      if (jsonl) telemetry::Registry::Global().Reset();
      ClientConfig cfg;
      cfg.cache_internal_nodes = cached;
      RTreeClient client(fabric.CreateNode("client"), server, cfg);
      // Ensure an epoch-bearing heartbeat arrived before measuring.
      std::this_thread::sleep_for(10ms);
      client.SearchFast(geo::Rect{0.5, 0.5, 0.5001, 0.5001});

      Xoshiro256 rng(77);
      uint64_t results = 0;
      for (int i = 0; i < kSearches; ++i) {
        results += client.SearchOffloaded(
            workload::UniformRect(rng, scale)).size();
      }
      const auto st = client.stats();
      // reads/search straight from the shared engine's counter — the
      // same number `remote.rtree.reads` reports.
      reads_per_search[cached] =
          static_cast<double>(client.remote_stats().reads) / kSearches;
      if (cached) {
        hits_per_search = static_cast<double>(st.cache_hits) / kSearches;
      }
      results_per_search = static_cast<double>(results) / kSearches;
      ExportCell(jsonl.get(), scale, cached, kSearches, st,
                 client.remote_stats());
    }
    std::printf("%10g %10s %14.2f %14s %12s %12.1f\n", scale, "off",
                reads_per_search[0], "-", "-", results_per_search);
    std::printf("%10g %10s %14.2f %14.2f %11.1f%% %12.1f\n", scale, "on",
                reads_per_search[1], hits_per_search,
                100.0 * (1.0 - reads_per_search[1] / reads_per_search[0]),
                results_per_search);
  }
  server.Stop();
  std::printf(
      "\nReading: with the cache on, steady-state searches fetch only leaf\n"
      "chunks; the saving equals the internal share of each traversal and\n"
      "is largest for narrow queries (internal reads dominate there).\n");
  return 0;
}
